// service::QueuePolicy disciplines — deterministic, single-threaded
// scheduling-order tests: exact pop sequences for FIFO and deficit round
// robin, hand-traced from the DRR definition (quantum banking, cost-gated
// service, deficit reset on drain).
#include "service/queue_policy.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace nowsched::service {
namespace {

QueuedJob job(JobId id, const std::string& tenant, std::size_t cost) {
  QueuedJob j;
  j.seq = id;  // admission order mirrors id in these tests
  j.id = id;
  j.tenant = tenant;
  j.cost = cost;
  return j;
}

std::vector<JobId> pop_all(QueuePolicy& queue) {
  std::vector<JobId> order;
  while (!queue.empty()) order.push_back(queue.pop().id);
  return order;
}

TEST(FifoQueue, PopsInAdmissionOrderTenantBlind) {
  auto q = make_queue_policy(QueueKind::kFifo);
  EXPECT_STREQ(q->name(), "fifo");
  q->push(job(1, "a", 3));
  q->push(job(2, "b", 1));
  q->push(job(3, "a", 1));
  q->push(job(4, "c", 7));
  EXPECT_EQ(q->size(), 4u);
  EXPECT_EQ(pop_all(*q), (std::vector<JobId>{1, 2, 3, 4}));
  EXPECT_TRUE(q->empty());
}

TEST(FifoQueue, PopOnEmptyThrows) {
  auto q = make_queue_policy(QueueKind::kFifo);
  EXPECT_THROW((void)q->pop(), std::logic_error);
  q->push(job(1, "a", 1));
  (void)q->pop();
  EXPECT_THROW((void)q->pop(), std::logic_error);
}

TEST(DrrQueue, EqualCostQuantumOneInterleavesRoundRobin) {
  // A1 A2 A3 then B1 B2 B3 pushed, all cost 1, quantum 1. Hand trace: each
  // rotation visit banks exactly one job's cost, so service alternates
  // A1 B1 A2 B2 A3 B3 — perfect round robin regardless of burst order.
  auto q = make_queue_policy(QueueKind::kDeficitRoundRobin, 1);
  EXPECT_STREQ(q->name(), "drr");
  for (JobId i = 1; i <= 3; ++i) q->push(job(i, "a", 1));
  for (JobId i = 4; i <= 6; ++i) q->push(job(i, "b", 1));
  EXPECT_EQ(pop_all(*q), (std::vector<JobId>{1, 4, 2, 5, 3, 6}));
}

TEST(DrrQueue, CostWeightedFairShareTrace) {
  // A submits two cost-3 jobs, B six cost-1 jobs, quantum 1. A must bank
  // three visits per job while B serves one job per visit — hand trace
  // yields B1 B2 A1 B3 B4 B5 A2 B6: A gets ~1/4 of the pops because its
  // jobs are 3x the cost, i.e. equal SCENARIO throughput, the DRR currency.
  auto q = make_queue_policy(QueueKind::kDeficitRoundRobin, 1);
  q->push(job(1, "a", 3));
  q->push(job(2, "a", 3));
  for (JobId i = 3; i <= 8; ++i) q->push(job(i, "b", 1));
  EXPECT_EQ(pop_all(*q), (std::vector<JobId>{3, 4, 1, 5, 6, 7, 2, 8}));
}

TEST(DrrQueue, WithinTenantOrderStaysFifo) {
  auto q = make_queue_policy(QueueKind::kDeficitRoundRobin, 100);
  for (JobId i = 1; i <= 4; ++i) q->push(job(i, "a", 2));
  const std::vector<JobId> order = pop_all(*q);
  EXPECT_EQ(order, (std::vector<JobId>{1, 2, 3, 4}));
}

TEST(DrrQueue, OversizedJobEventuallyAccumulatesEnoughDeficit) {
  // cost 10 against quantum 3: the tenant needs four visits. With a cost-1
  // competitor, the big job still lands (no starvation), after the
  // competitor drains.
  auto q = make_queue_policy(QueueKind::kDeficitRoundRobin, 3);
  q->push(job(1, "big", 10));
  q->push(job(2, "small", 1));
  const std::vector<JobId> order = pop_all(*q);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2u);  // small clears while big banks deficit
  EXPECT_EQ(order[1], 1u);
}

TEST(DrrQueue, DeficitResetsWhenTenantDrains) {
  // Phase 1: B banks quantum 3 to serve a cost-1 job; its queue drains, so
  // the leftover 2 credit MUST be forfeited. Phase 2: A and B each queue a
  // cost-2 job, A activating first. With the reset both need a banking
  // visit and rotation order serves A first; a tenant that hoarded credit
  // across idle would serve B first.
  auto q = make_queue_policy(QueueKind::kDeficitRoundRobin, 3);
  q->push(job(1, "b", 1));
  EXPECT_EQ(q->pop().id, 1u);
  q->push(job(2, "a", 2));
  q->push(job(3, "b", 2));
  EXPECT_EQ(pop_all(*q), (std::vector<JobId>{2, 3}));
}

TEST(DrrQueue, PopOnEmptyThrowsAndQuantumClampsToOne) {
  auto q = make_queue_policy(QueueKind::kDeficitRoundRobin, 0);  // clamped to 1
  EXPECT_THROW((void)q->pop(), std::logic_error);
  q->push(job(1, "a", 5));  // cost 5 against quantum 1 still terminates
  EXPECT_EQ(q->pop().id, 1u);
}

TEST(QueuePolicy, DrainHandsJobsInPopOrderAndEmpties) {
  auto q = make_queue_policy(QueueKind::kDeficitRoundRobin, 1);
  q->push(job(1, "a", 1));
  q->push(job(2, "b", 1));
  q->push(job(3, "a", 1));
  std::vector<JobId> order;
  q->drain([&](QueuedJob&& j) { order.push_back(j.id); });
  EXPECT_EQ(order, (std::vector<JobId>{1, 2, 3}));
  EXPECT_TRUE(q->empty());
}

TEST(QueueKindNames, RoundTripAndParse) {
  EXPECT_STREQ(to_string(QueueKind::kFifo), "fifo");
  EXPECT_STREQ(to_string(QueueKind::kDeficitRoundRobin), "drr");
  EXPECT_EQ(queue_kind_from_string("fifo"), QueueKind::kFifo);
  EXPECT_EQ(queue_kind_from_string("drr"), QueueKind::kDeficitRoundRobin);
  EXPECT_EQ(queue_kind_from_string("fair-share"), QueueKind::kDeficitRoundRobin);
  EXPECT_THROW(queue_kind_from_string("lifo"), std::invalid_argument);
  EXPECT_THROW(queue_kind_from_string(""), std::invalid_argument);
}

}  // namespace
}  // namespace nowsched::service
