// util/mmap_file.h — the persistent store's file primitives: the
// platform-stable content checksum, read-only memory mapping, and atomic
// whole-file publication. The table store's integrity story reduces to
// these three, so they are pinned directly.
#include "util/mmap_file.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "temp_dir.h"

namespace nowsched::util {
namespace {

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::filesystem::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

// ---------------------------------------------------------------------------
// checksum_bytes
// ---------------------------------------------------------------------------

TEST(ChecksumBytes, DeterministicAcrossCalls) {
  const std::string data = "the same bytes every time";
  EXPECT_EQ(checksum_bytes(data.data(), data.size()),
            checksum_bytes(data.data(), data.size()));
}

TEST(ChecksumBytes, EverySingleBitFlipChangesTheSum) {
  // Corruption detection must not depend on WHERE the damage lands: flip
  // each bit of a buffer spanning several words plus a ragged tail.
  std::vector<unsigned char> data(21);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<unsigned char>(i * 37 + 5);
  }
  const std::uint64_t clean = checksum_bytes(data.data(), data.size());
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<unsigned char>(1u << bit);
      EXPECT_NE(checksum_bytes(data.data(), data.size()), clean)
          << "flip of byte " << byte << " bit " << bit << " went undetected";
      data[byte] ^= static_cast<unsigned char>(1u << bit);
    }
  }
  EXPECT_EQ(checksum_bytes(data.data(), data.size()), clean);
}

TEST(ChecksumBytes, LengthIsPartOfTheIdentity) {
  // A truncated prefix and a zero-padded extension must both differ from
  // the original — the length seeds the chain.
  const std::vector<unsigned char> data(32, 0);
  const std::uint64_t full = checksum_bytes(data.data(), data.size());
  EXPECT_NE(checksum_bytes(data.data(), 24), full);
  const std::vector<unsigned char> longer(40, 0);
  EXPECT_NE(checksum_bytes(longer.data(), longer.size()), full);
}

TEST(ChecksumBytes, EmptyInputIsWellDefined) {
  EXPECT_EQ(checksum_bytes(nullptr, 0), checksum_bytes(nullptr, 0));
}

TEST(ChecksumBytes, TailBytesAreCovered) {
  // Sizes straddling the 8-byte word boundary: each extra tail byte must
  // produce a distinct sum.
  std::vector<unsigned char> data(16, 0xAB);
  std::uint64_t prev = checksum_bytes(data.data(), 8);
  for (std::size_t size = 9; size <= 16; ++size) {
    const std::uint64_t cur = checksum_bytes(data.data(), size);
    EXPECT_NE(cur, prev) << "size " << size;
    prev = cur;
  }
}

// ---------------------------------------------------------------------------
// MappedFile
// ---------------------------------------------------------------------------

TEST(MappedFile, MissingFileIsNullNotAnError) {
  nowsched::testing::TempDir dir("mmap");
  EXPECT_EQ(MappedFile::open((dir.path() / "absent.bin").string()), nullptr);
}

TEST(MappedFile, MapsExactBytes) {
  nowsched::testing::TempDir dir("mmap");
  const std::string content = "nowsched mapped file roundtrip \0 payload";
  const auto path = dir.path() / "data.bin";
  write_file(path, content);

  auto mapped = MappedFile::open(path.string());
  ASSERT_NE(mapped, nullptr);
  ASSERT_EQ(mapped->size(), content.size());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(mapped->data()),
                        mapped->size()),
            content);
}

TEST(MappedFile, EmptyFileMapsWithSizeZero) {
  nowsched::testing::TempDir dir("mmap");
  const auto path = dir.path() / "empty.bin";
  write_file(path, "");
  auto mapped = MappedFile::open(path.string());
  ASSERT_NE(mapped, nullptr);
  EXPECT_EQ(mapped->size(), 0u);
}

TEST(MappedFile, MappingSurvivesUnlink) {
  // The store unlinks corrupt files while a reader may still hold a view —
  // POSIX keeps the pages alive through the mapping (non-POSIX fallback
  // holds a copy), so the reader must stay valid either way.
  nowsched::testing::TempDir dir("mmap");
  const auto path = dir.path() / "unlinked.bin";
  write_file(path, std::string(4096, 'x'));
  auto mapped = MappedFile::open(path.string());
  ASSERT_NE(mapped, nullptr);
  std::filesystem::remove(path);
  EXPECT_EQ(mapped->data()[0], 'x');
  EXPECT_EQ(mapped->data()[4095], 'x');
}

// ---------------------------------------------------------------------------
// atomic_write_file
// ---------------------------------------------------------------------------

TEST(AtomicWriteFile, PublishesExactPayloadAndCleansTempName) {
  nowsched::testing::TempDir dir("awf");
  const auto path = dir.path() / "out.bin";
  const std::string payload = "published all at once";
  ASSERT_TRUE(atomic_write_file(path.string(), payload.data(), payload.size(),
                                "tag0"));
  EXPECT_EQ(read_file(path), payload);
  EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp.tag0"));
}

TEST(AtomicWriteFile, ReplacesExistingTarget) {
  nowsched::testing::TempDir dir("awf");
  const auto path = dir.path() / "out.bin";
  const std::string old_payload = "old";
  const std::string new_payload = "replacement content, longer";
  ASSERT_TRUE(atomic_write_file(path.string(), old_payload.data(),
                                old_payload.size(), "a"));
  ASSERT_TRUE(atomic_write_file(path.string(), new_payload.data(),
                                new_payload.size(), "b"));
  EXPECT_EQ(read_file(path), new_payload);
}

TEST(AtomicWriteFile, UnwritableDirectoryFailsWithoutPublishing) {
  nowsched::testing::TempDir dir("awf");
  const auto path = dir.path() / "no-such-subdir" / "out.bin";
  const std::string payload = "x";
  EXPECT_FALSE(
      atomic_write_file(path.string(), payload.data(), payload.size(), "t"));
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(AtomicWriteFile, ConcurrentWritersWithDistinctTagsPublishCompleteContent) {
  // The table store's writers all publish IDENTICAL bytes; here writers
  // publish distinct (same-length) payloads to make interleaving visible:
  // the surviving file must equal ONE writer's payload in full — never a
  // mix — no matter how the renames raced.
  nowsched::testing::TempDir dir("awf");
  const auto path = dir.path() / "contended.bin";
  constexpr int kWriters = 8;
  constexpr std::size_t kSize = 1u << 16;
  std::vector<std::string> payloads;
  payloads.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    payloads.emplace_back(kSize, static_cast<char>('A' + w));
  }
  // Tags built with append rather than operator+ to sidestep a GCC 12
  // -Wrestrict false positive (GCC bug 105651) when the concatenation is
  // inlined into the thread lambda under -O2. Retested on GCC 12.2: still
  // fires — keep until the toolchain reaches GCC 13.
  std::vector<std::string> tags;
  tags.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    std::string tag = "w";
    tag += std::to_string(w);
    tags.push_back(std::move(tag));
  }
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      EXPECT_TRUE(atomic_write_file(path.string(), payloads[w].data(),
                                    payloads[w].size(), tags[w]));
    });
  }
  for (auto& t : writers) t.join();

  const std::string survivor = read_file(path);
  ASSERT_EQ(survivor.size(), kSize);
  // All bytes identical (no torn mix) AND equal to some writer's payload.
  EXPECT_EQ(survivor, std::string(kSize, survivor[0]));
  EXPECT_GE(survivor[0], 'A');
  EXPECT_LT(survivor[0], static_cast<char>('A' + kWriters));
  // Every temp name is gone.
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp.w" +
                                         std::to_string(w)));
  }
}

}  // namespace
}  // namespace nowsched::util
