#include "solver/extract.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/closed_form.h"
#include "solver/reference_solver.h"

namespace nowsched::solver {
namespace {

class ExtractFixture : public ::testing::Test {
 protected:
  static constexpr Ticks kC = 8;
  static constexpr Ticks kMaxL = 600;
  static constexpr int kMaxP = 3;
  ExtractFixture()
      : table_(std::make_shared<ValueTable>(solve_reference(kMaxP, kMaxL, Params{kC}))) {}
  std::shared_ptr<ValueTable> table_;
};

TEST_F(ExtractFixture, EpisodeSpansLifespan) {
  for (Ticks l : {Ticks{1}, Ticks{50}, Ticks{333}, kMaxL}) {
    for (int p = 0; p <= kMaxP; ++p) {
      EXPECT_EQ(extract_episode(*table_, p, l).total(), l);
    }
  }
}

TEST_F(ExtractFixture, ZeroLifespanIsEmpty) {
  EXPECT_TRUE(extract_episode(*table_, 2, 0).empty());
}

TEST_F(ExtractFixture, PZeroIsSinglePeriod) {
  const auto s = extract_episode(*table_, 0, 500);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.period(0), 500);
}

TEST_F(ExtractFixture, ExtractedEpisodeAchievesTableValueP1) {
  // For p = 1 the episode's guaranteed work can be evaluated in closed form
  // (optimal continuation = single long period): it must equal W(1)[L].
  const Params params{kC};
  for (Ticks l = 1; l <= kMaxL; l += 7) {
    const auto episode = extract_episode(*table_, 1, l);
    EXPECT_EQ(guaranteed_work_p1(episode, l, params), table_->value(1, l)) << "l=" << l;
  }
}

TEST_F(ExtractFixture, ExtractedEpisodeAchievesTableValueGeneralP) {
  // General p: evaluate min over adversary options using level p−1 values.
  const Params params{kC};
  for (int p = 1; p <= kMaxP; ++p) {
    for (Ticks l = 1; l <= kMaxL; l += 11) {
      const auto episode = extract_episode(*table_, p, l);
      Ticks value = episode.work_if_uninterrupted(params);
      Ticks banked = 0;
      for (std::size_t k = 0; k < episode.size(); ++k) {
        const Ticks rest = positive_sub(l, episode.end(k));
        value = std::min(value, banked + table_->value(p - 1, rest));
        banked += positive_sub(episode.period(k), params.c);
      }
      EXPECT_EQ(value, table_->value(p, l)) << "p=" << p << " l=" << l;
    }
  }
}

TEST_F(ExtractFixture, EqualizationResidualsSmallOnEarlyPeriods) {
  // Thm 4.3: early periods satisfy t_k = c + ΔW(p−1) exactly (up to grid
  // effects). The last few ("immune tail") periods are exempt.
  const Ticks l = 555;
  for (int p = 1; p <= 2; ++p) {
    const auto episode = extract_episode(*table_, p, l);
    const auto residuals = equalization_residuals(*table_, episode, p, l);
    ASSERT_EQ(residuals.size(), episode.size());
    // Count how many early periods deviate by more than 2 ticks.
    std::size_t late_zone = std::min<std::size_t>(episode.size(), 3);
    for (std::size_t k = 0; k + late_zone < episode.size(); ++k) {
      EXPECT_LE(std::llabs(residuals[k]), 2)
          << "p=" << p << " period " << k << " of " << episode.size();
    }
  }
}

TEST_F(ExtractFixture, OptimalPolicyWrapsTable) {
  OptimalPolicy policy(table_);
  EXPECT_EQ(policy.name(), "dp-optimal");
  const auto s = policy.episode(400, 2, Params{kC});
  EXPECT_EQ(s.total(), 400);
  // Clamps p above table range.
  EXPECT_EQ(policy.episode(400, 99, Params{kC}).total(), 400);
  // Rejects mismatched params.
  EXPECT_THROW(policy.episode(400, 1, Params{kC + 1}), std::invalid_argument);
}

TEST_F(ExtractFixture, BoundsChecked) {
  EXPECT_THROW(extract_episode(*table_, 0, kMaxL + 1), std::out_of_range);
  EXPECT_THROW(extract_episode(*table_, kMaxP + 1, 10), std::out_of_range);
  EXPECT_THROW(extract_episode(*table_, -1, 10), std::out_of_range);
  EXPECT_THROW(equalization_residuals(*table_, EpisodeSchedule({10}), 0, 10),
               std::invalid_argument);
}

TEST(OptimalPolicyStandalone, NullTableRejected) {
  EXPECT_THROW(OptimalPolicy(nullptr), std::invalid_argument);
}

// The O(log L) crossover search must pick the bit-identical (longest
// attaining) period the O(L) scan picks on EVERY state — extraction feeds
// committed schedules, so a different tie-break would silently change
// simulation results. Exhaustive over several c regimes, including c = 1
// (no prefix region) and c > L (prefix only).
TEST(BestPeriodLength, FastMatchesLinearScanExhaustively) {
  for (Ticks c : {Ticks{1}, Ticks{2}, Ticks{7}, Ticks{16}, Ticks{33}, Ticks{250}}) {
    constexpr int kMaxP = 3;
    constexpr Ticks kMaxL = 200;
    const ValueTable table = solve_reference(kMaxP, kMaxL, Params{c});
    for (int p = 1; p <= kMaxP; ++p) {
      for (Ticks l = 1; l <= kMaxL; ++l) {
        ASSERT_EQ(best_period_length(table, p, l),
                  best_period_length_linear(table, p, l))
            << "c=" << c << " p=" << p << " l=" << l;
      }
    }
  }
}

}  // namespace
}  // namespace nowsched::solver
