// solver/table_store.h — the storage backends beneath SolveCache.
//
// The persistent tier's promises are exactly what these tests pin:
//   * a stored table round-trips FIELD-FOR-FIELD (the bit-identity the
//     whole tiering design rests on), including across a process boundary;
//   * EVERY defect — truncation, a flipped bit anywhere, a stale format
//     version, a header that does not match the requested key — is
//     rejected and read as a miss, never a crash and never a wrong table;
//   * build-once publication: racing writers (threads or forked processes)
//     produce one valid entry;
//   * rejected files self-heal (unlinked, re-spilled) unless read-only.
#include "solver/table_store.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "solver/solve_cache.h"
#include "temp_dir.h"
#include "util/mmap_file.h"

#if !defined(_WIN32)
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace nowsched::solver {
namespace {

SolveRequest small_request(int max_p = 2, Ticks max_lifespan = 64,
                           Ticks c = 8) {
  SolveRequest req;
  req.max_p = max_p;
  req.max_lifespan = max_lifespan;
  req.params.c = c;
  return req;
}

/// Field-for-field comparison: dims, params, and W(p)[L] at every state.
void expect_tables_identical(const ValueTable& a, const ValueTable& b) {
  ASSERT_EQ(a.max_interrupts(), b.max_interrupts());
  ASSERT_EQ(a.max_lifespan(), b.max_lifespan());
  ASSERT_EQ(a.params().c, b.params().c);
  for (int p = 0; p <= a.max_interrupts(); ++p) {
    for (Ticks l = 0; l <= a.max_lifespan(); ++l) {
      ASSERT_EQ(a.value(p, l), b.value(p, l)) << "W(" << p << ")[" << l << "]";
    }
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

/// Bakes one small table into `store` and returns {key, freshly solved
/// table}. The store file is at store.path_for(key) afterwards.
std::pair<SolveKey, std::shared_ptr<const ValueTable>> bake_one(
    MappedTableStore& store, const SolveRequest& req) {
  const SolveKey key = canonical_key(req);
  auto table = solve_shared(req);
  EXPECT_TRUE(store.store(key, table));
  return {key, table};
}

// ---------------------------------------------------------------------------
// ResidentTableStore — the RAM tier behind the interface
// ---------------------------------------------------------------------------

TEST(ResidentTableStore, RoundTripsThroughTheInterface) {
  ResidentTableStore store;
  TableStore& backend = store;  // exercise through the abstract interface
  const SolveRequest req = small_request();
  const SolveKey key = canonical_key(req);
  EXPECT_EQ(backend.load(key), nullptr);

  auto table = solve_shared(req);
  EXPECT_TRUE(backend.store(key, table));
  auto loaded = backend.load(key);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded.get(), table.get());  // same shared table, not a copy

  const TableStoreStats stats = backend.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.stores, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, table->bytes());
}

TEST(ResidentTableStore, EvictsLeastRecentlyUsedAgainstByteBudget) {
  const SolveRequest a = small_request(1, 64, 8);
  const SolveRequest b = small_request(1, 72, 8);
  auto table_a = solve_shared(a);
  auto table_b = solve_shared(b);
  // One shard; budget fits either table alone but not both.
  ResidentTableStore store(
      {1, table_a->bytes() + table_b->bytes() - 1});
  store.store(canonical_key(a), table_a);
  store.store(canonical_key(b), table_b);
  EXPECT_EQ(store.load(canonical_key(a)), nullptr);  // a was LRU → evicted
  EXPECT_NE(store.load(canonical_key(b)), nullptr);
  EXPECT_EQ(store.stats().evictions, 1u);
}

TEST(ResidentTableStore, ZeroBudgetKeepsTheNewestTable) {
  ResidentTableStore store({1, 0});
  const SolveRequest req = small_request();
  auto table = solve_shared(req);
  store.store(canonical_key(req), table);
  // The just-stored table parks even though it exceeds the (zero) slice.
  EXPECT_NE(store.load(canonical_key(req)), nullptr);
}

// ---------------------------------------------------------------------------
// MappedTableStore — round-trip and format identity
// ---------------------------------------------------------------------------

TEST(MappedTableStore, RoundTripsBitIdentically) {
  nowsched::testing::TempDir dir("store");
  MappedTableStore store({dir.str()});
  const SolveRequest req = small_request();
  auto [key, solved] = bake_one(store, req);

  auto mapped = store.load(key);
  ASSERT_NE(mapped, nullptr);
  expect_tables_identical(*solved, *mapped);

  // The mapped table is a zero-copy view: immutable by construction.
  EXPECT_FALSE(mapped->owns_storage());
  EXPECT_TRUE(solved->owns_storage());
  EXPECT_EQ(mapped->bytes(), solved->bytes());

  const TableStoreStats stats = store.stats();
  EXPECT_EQ(stats.stores, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, solved->bytes());
}

TEST(MappedTableStore, FileNameIsContentAddressedAndStable) {
  const SolveKey key = canonical_key(small_request());
  EXPECT_EQ(MappedTableStore::file_name(key), MappedTableStore::file_name(key));
  EXPECT_EQ(MappedTableStore::file_name(key).size(), 16u + 4u);  // hex16.nwt
  const SolveKey other = canonical_key(small_request(3, 64, 8));
  EXPECT_NE(MappedTableStore::file_name(key), MappedTableStore::file_name(other));
}

TEST(MappedTableStore, StoreIsBuildOnce) {
  nowsched::testing::TempDir dir("store");
  MappedTableStore store({dir.str()});
  const SolveRequest req = small_request();
  auto [key, table] = bake_one(store, req);
  EXPECT_FALSE(store.store(key, table));  // already present → skip
  EXPECT_EQ(store.stats().stores, 1u);
  EXPECT_EQ(store.stats().store_skips, 1u);
}

TEST(MappedTableStore, MissingEntryIsAMiss) {
  nowsched::testing::TempDir dir("store");
  MappedTableStore store({dir.str()});
  EXPECT_EQ(store.load(canonical_key(small_request())), nullptr);
  EXPECT_EQ(store.stats().misses, 1u);
  EXPECT_EQ(store.stats().rejected, 0u);
}

TEST(MappedTableStore, ClearRemovesEveryEntry) {
  nowsched::testing::TempDir dir("store");
  MappedTableStore store({dir.str()});
  bake_one(store, small_request(1, 32, 8));
  bake_one(store, small_request(2, 32, 8));
  EXPECT_EQ(store.stats().entries, 2u);
  store.clear();
  EXPECT_EQ(store.stats().entries, 0u);
}

TEST(MappedTableStore, ReadOnlyRequiresExistingDirectoryAndDeclinesWrites) {
  nowsched::testing::TempDir dir("store");
  const std::string missing = (dir.path() / "absent").string();
  EXPECT_THROW(MappedTableStore({missing, /*read_only=*/true}),
               std::runtime_error);

  // Bake through a writable mount, then reopen read-only.
  MappedTableStore writer({dir.str()});
  auto [key, table] = bake_one(writer, small_request());
  MappedTableStore reader({dir.str(), /*read_only=*/true});
  ASSERT_NE(reader.load(key), nullptr);
  EXPECT_FALSE(reader.store(canonical_key(small_request(3, 32, 8)),
                            solve_shared(small_request(3, 32, 8))));
  EXPECT_EQ(reader.stats().store_skips, 1u);
  reader.clear();  // no-op
  EXPECT_EQ(reader.stats().entries, 1u);
}

// ---------------------------------------------------------------------------
// Corruption battery: every defect rejects, falls back, never crashes
// ---------------------------------------------------------------------------

/// Applies `mutate` to the baked file's bytes, then asserts load() rejects
/// (nullptr + rejected counter), the corrupt file was purged, and a fresh
/// SolveCache mounted on the store falls back to a correct fresh solve.
void expect_rejected_and_healed(
    const std::string& label,
    const std::function<std::string(std::string)>& mutate) {
  SCOPED_TRACE(label);
  nowsched::testing::TempDir dir("corrupt");
  const SolveRequest req = small_request();
  const SolveKey key = canonical_key(req);
  auto expected = solve_shared(req);

  auto store = std::make_shared<MappedTableStore>(
      MappedTableStore::Options{dir.str()});
  ASSERT_TRUE(store->store(key, expected));
  const std::string path = store->path_for(key);
  write_file(path, mutate(read_file(path)));

  // validate_file names the defect; load() rejects and purges.
  EXPECT_FALSE(MappedTableStore::validate_file(path, &key).empty());
  EXPECT_EQ(store->load(key), nullptr);
  EXPECT_EQ(store->stats().rejected, 1u);
  EXPECT_FALSE(std::filesystem::exists(path)) << "corrupt file not purged";

  // The tiered cache above the store falls back to a fresh (correct) solve
  // and re-spills, healing the store.
  SolveCache cache({2, 16u << 20, store});
  auto healed = cache.get_or_solve(req);
  ASSERT_NE(healed, nullptr);
  expect_tables_identical(*expected, *healed);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().store_hits, 0u);  // the store could not supply it
  EXPECT_EQ(cache.stats().spills, 1u);
  EXPECT_TRUE(MappedTableStore::validate_file(path, &key).empty())
      << "re-spill did not heal the store";
}

TEST(MappedTableStoreCorruption, TruncatedBelowHeaderRejected) {
  expect_rejected_and_healed("truncate-to-12-bytes", [](std::string bytes) {
    return bytes.substr(0, 12);
  });
}

TEST(MappedTableStoreCorruption, TruncatedMidSlabRejected) {
  expect_rejected_and_healed("truncate-mid-slab", [](std::string bytes) {
    return bytes.substr(0, bytes.size() - 7);
  });
}

TEST(MappedTableStoreCorruption, BitFlippedSlabFailsChecksum) {
  expect_rejected_and_healed("flip-slab-bit", [](std::string bytes) {
    bytes[bytes.size() - 1] ^= 0x10;  // one bit, last payload byte
    return bytes;
  });
}

TEST(MappedTableStoreCorruption, BitFlippedHeaderFailsChecksum) {
  // GCC 12 under -O2 models an impossible empty-string path through the
  // std::function invocation and flags this in-bounds write (the file is
  // always 64+ bytes here); scoped suppression, not a real overflow.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-overflow"
#endif
  expect_rejected_and_healed("flip-header-bit", [](std::string bytes) {
    if (bytes.size() > 40) {
      bytes[40] ^= 0x01;  // slab_bytes field, in the checksummed span
    }
    return bytes;
  });
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
}

TEST(MappedTableStoreCorruption, WrongMagicRejected) {
  expect_rejected_and_healed("wrong-magic", [](std::string bytes) {
    bytes[0] = 'X';
    return bytes;
  });
}

TEST(MappedTableStoreCorruption, StaleFormatVersionRejected) {
  // A structurally perfect file from "format v2": version patched AND the
  // header checksum recomputed, so the VERSION check itself must fire (the
  // checksum cannot save us from a future format we do not understand).
  expect_rejected_and_healed("stale-version", [](std::string bytes) {
    bytes[8] = 2;  // version u32 at offset 8 (little-endian low byte)
    const std::uint64_t sum = util::checksum_bytes(bytes.data(), 56);
    std::memcpy(bytes.data() + 56, &sum, sizeof(sum));
    return bytes;
  });
}

TEST(MappedTableStoreCorruption, HeaderKeyMismatchRejected) {
  // A VALID file for key A parked at key B's content address (a mis-filed
  // or maliciously renamed entry): internally consistent, but its header
  // identity does not match the request — must be rejected, not served.
  nowsched::testing::TempDir dir("misfiled");
  MappedTableStore store({dir.str()});
  const SolveRequest req_a = small_request(1, 32, 8);
  const SolveRequest req_b = small_request(2, 64, 8);
  auto [key_a, table_a] = bake_one(store, req_a);
  const SolveKey key_b = canonical_key(req_b);
  std::filesystem::rename(store.path_for(key_a), store.path_for(key_b));

  EXPECT_TRUE(MappedTableStore::validate_file(store.path_for(key_b)).empty())
      << "file itself is valid...";
  EXPECT_FALSE(
      MappedTableStore::validate_file(store.path_for(key_b), &key_b).empty())
      << "...but not for key B";
  EXPECT_EQ(store.load(key_b), nullptr);
  EXPECT_EQ(store.stats().rejected, 1u);
  EXPECT_FALSE(std::filesystem::exists(store.path_for(key_b)));
}

TEST(MappedTableStoreCorruption, ReadOnlyStoreRejectsWithoutPurging) {
  nowsched::testing::TempDir dir("ro-corrupt");
  const SolveRequest req = small_request();
  const SolveKey key = canonical_key(req);
  {
    MappedTableStore writer({dir.str()});
    bake_one(writer, req);
  }
  MappedTableStore reader({dir.str(), /*read_only=*/true});
  const std::string path = reader.path_for(key);
  std::string bytes = read_file(path);
  bytes[70] ^= 0x40;
  write_file(path, bytes);

  EXPECT_EQ(reader.load(key), nullptr);
  EXPECT_EQ(reader.stats().rejected, 1u);
  EXPECT_TRUE(std::filesystem::exists(path))
      << "read-only mount must not unlink someone else's file";
}

TEST(MappedTableStoreCorruption, ValidateFileOnMissingPathNamesTheProblem) {
  nowsched::testing::TempDir dir("missing");
  EXPECT_FALSE(
      MappedTableStore::validate_file((dir.path() / "nope.nwt").string())
          .empty());
}

// ---------------------------------------------------------------------------
// Concurrency: read-while-bake (threads) and racing writers (processes)
// ---------------------------------------------------------------------------

TEST(MappedTableStoreConcurrency, ReadWhileBakeIsCleanAndEventuallyHits) {
  // Readers poll while writers bake a disjoint key set; every successful
  // load must be bit-identical to the fresh solve. Runs under TSan in CI.
  nowsched::testing::TempDir dir("race");
  auto store = std::make_shared<MappedTableStore>(
      MappedTableStore::Options{dir.str()});
  constexpr int kKeys = 6;
  std::vector<SolveRequest> requests;
  std::vector<std::shared_ptr<const ValueTable>> solved;
  for (int k = 0; k < kKeys; ++k) {
    requests.push_back(small_request(1 + (k % 3), 32 + 8 * k, 8));
    solved.push_back(solve_shared(requests.back()));
  }

  std::vector<std::thread> threads;
  // Two writer threads contend over every key (exercising build-once skips
  // and temp-tag uniqueness in-process)...
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&] {
      for (int k = 0; k < kKeys; ++k) {
        store->store(canonical_key(requests[k]), solved[k]);
      }
    });
  }
  // ...while reader threads poll until every key serves.
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&] {
      for (int k = 0; k < kKeys; ++k) {
        std::shared_ptr<const ValueTable> table;
        while ((table = store->load(canonical_key(requests[k]))) == nullptr) {
          std::this_thread::yield();
        }
        expect_tables_identical(*solved[k], *table);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(store->stats().rejected, 0u);
  EXPECT_EQ(store->stats().entries, static_cast<std::size_t>(kKeys));
}

#if !defined(_WIN32)
TEST(MappedTableStoreConcurrency, ForkedProcessesRacingBuildOnceProduceOneValidEntry) {
  // N child processes race to solve-and-publish ONE key. Whatever the
  // interleaving of their temp writes and renames, the parent must find
  // exactly one file, fully valid, bit-identical to its own fresh solve —
  // the cross-process half of the determinism story.
  nowsched::testing::TempDir dir("fork");
  const SolveRequest req = small_request(2, 96, 8);
  const SolveKey key = canonical_key(req);

  constexpr int kChildren = 4;
  std::vector<pid_t> children;
  for (int i = 0; i < kChildren; ++i) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      // Child: own store handle, own solve, own spill. _exit (not exit)
      // skips the parent's atexit/gtest teardown.
      int status = 1;
      try {
        MappedTableStore store({dir.str()});
        if (store.store(key, solve_shared(req)) ||
            store.stats().store_skips > 0) {
          status = 0;
        }
      } catch (...) {
      }
      ::_exit(status);
    }
    children.push_back(pid);
  }
  for (const pid_t pid : children) {
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    EXPECT_TRUE(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0)
        << "child " << pid << " failed";
  }

  // Exactly one store file (every temp name cleaned up)...
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path())) {
    EXPECT_EQ(entry.path().extension(), ".nwt")
        << "stray file: " << entry.path();
    ++files;
  }
  EXPECT_EQ(files, 1u);

  // ...fully valid, and bit-identical to a fresh in-process solve: the
  // table solved in process A, mapped in process B.
  MappedTableStore store({dir.str(), /*read_only=*/true});
  EXPECT_TRUE(
      MappedTableStore::validate_file(store.path_for(key), &key).empty());
  auto mapped = store.load(key);
  ASSERT_NE(mapped, nullptr);
  expect_tables_identical(*solve_shared(req), *mapped);
}
#endif  // !_WIN32

}  // namespace
}  // namespace nowsched::solver
