#include <gtest/gtest.h>

#include "adversary/heuristics.h"
#include "adversary/stochastic.h"
#include "adversary/trace.h"

namespace nowsched::adversary {
namespace {

constexpr Params kParams{10};

EpisodeContext make_ctx(Ticks start, Ticks residual, int p) {
  EpisodeContext ctx;
  ctx.episode_start = start;
  ctx.residual = residual;
  ctx.interrupts_left = p;
  ctx.params = kParams;
  return ctx;
}

// ---------------------------------------------------------------------------
// Heuristics
// ---------------------------------------------------------------------------

TEST(NoOp, NeverInterrupts) {
  NoOpAdversary adv;
  EpisodeSchedule s({30, 20, 10});
  EXPECT_FALSE(adv.plan_interrupt(s, make_ctx(0, 60, 3)).has_value());
}

TEST(FirstPeriod, KillsFirstPeriodAtLastInstant) {
  FirstPeriodAdversary adv;
  EpisodeSchedule s({30, 20, 10});
  const auto tick = adv.plan_interrupt(s, make_ctx(0, 60, 1));
  ASSERT_TRUE(tick.has_value());
  EXPECT_EQ(*tick, 30);  // end of period 0
}

TEST(LargestPeriod, PicksLongestEarliest) {
  LargestPeriodAdversary adv;
  EpisodeSchedule s({20, 40, 40, 10});
  const auto tick = adv.plan_interrupt(s, make_ctx(0, 110, 1));
  ASSERT_TRUE(tick.has_value());
  EXPECT_EQ(*tick, 60);  // end of the first 40 (period 1)
}

TEST(Observation, SkipsUnproductiveResiduals) {
  ObservationAdversary adv;
  EpisodeSchedule s({5, 5});
  // residual <= c: not worth interrupting (Obs (b) proviso).
  EXPECT_FALSE(adv.plan_interrupt(s, make_ctx(0, 10, 2)).has_value());
}

TEST(Observation, RespectsObsCWindow) {
  ObservationAdversary adv;
  // residual = 100, p = 2, c = 10: window = 100 − 20 = 80; the latest period
  // starting strictly before 80 is period 2 (starts at 60).
  EpisodeSchedule s({30, 30, 30, 10});
  const auto tick = adv.plan_interrupt(s, make_ctx(0, 100, 2));
  ASSERT_TRUE(tick.has_value());
  EXPECT_EQ(*tick, 90);  // last instant of period 2
}

TEST(Observation, InterruptsAtLastInstants) {
  ObservationAdversary adv;
  EpisodeSchedule s({25, 25, 25, 25});
  const auto tick = adv.plan_interrupt(s, make_ctx(0, 100, 1));
  ASSERT_TRUE(tick.has_value());
  // Must be a period end.
  bool is_end = false;
  for (std::size_t k = 0; k < s.size(); ++k) is_end |= (*tick == s.end(k));
  EXPECT_TRUE(is_end);
}

// ---------------------------------------------------------------------------
// Stochastic owners
// ---------------------------------------------------------------------------

TEST(Poisson, DeterministicUnderSeed) {
  PoissonAdversary a(50.0, 42), b(50.0, 42);
  EpisodeSchedule s({100, 100, 100});
  for (Ticks start : {Ticks{0}, Ticks{300}, Ticks{600}}) {
    EXPECT_EQ(a.plan_interrupt(s, make_ctx(start, 900 - start, 3)),
              b.plan_interrupt(s, make_ctx(start, 900 - start, 3)));
  }
}

TEST(Poisson, TicksAlwaysInsideEpisode) {
  PoissonAdversary adv(30.0, 7);
  EpisodeSchedule s({50, 50});
  for (int trial = 0; trial < 200; ++trial) {
    adv.reset(static_cast<std::uint64_t>(trial));
    const auto tick = adv.plan_interrupt(s, make_ctx(0, 100, 1));
    if (tick) {
      EXPECT_GE(*tick, 1);
      EXPECT_LE(*tick, 100);
    }
  }
}

TEST(Poisson, InterruptFrequencyTracksRate) {
  // Mean gap 100 ticks over a 100-tick episode: ~63% hit probability
  // (1 − e^{−1}); count over many seeds.
  int hits = 0;
  const int trials = 2000;
  EpisodeSchedule s({100});
  for (int trial = 0; trial < trials; ++trial) {
    PoissonAdversary adv(100.0, static_cast<std::uint64_t>(trial) + 1);
    hits += adv.plan_interrupt(s, make_ctx(0, 100, 1)).has_value();
  }
  EXPECT_NEAR(hits / static_cast<double>(trials), 0.632, 0.05);
}

TEST(Poisson, RejectsBadRate) {
  EXPECT_THROW(PoissonAdversary(0.0, 1), std::invalid_argument);
  EXPECT_THROW(PoissonAdversary(-5.0, 1), std::invalid_argument);
}

TEST(Pareto, ArrivalsRespectScaleFloor) {
  ParetoSessionAdversary adv(200.0, 1.2, 99);
  EpisodeSchedule s({100});
  // First arrival can't land before scale=200 > episode end=100.
  EXPECT_FALSE(adv.plan_interrupt(s, make_ctx(0, 100, 1)).has_value());
}

TEST(Pareto, EventuallyInterruptsLongEpisodes) {
  ParetoSessionAdversary adv(50.0, 2.0, 3);
  EpisodeSchedule s({100000});
  const auto tick = adv.plan_interrupt(s, make_ctx(0, 100000, 1));
  EXPECT_TRUE(tick.has_value());
}

TEST(Uniform, ProbabilityZeroNeverFires) {
  UniformEpisodeAdversary adv(0.0, 5);
  EpisodeSchedule s({100});
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(adv.plan_interrupt(s, make_ctx(0, 100, 1)).has_value());
  }
}

TEST(Uniform, ProbabilityOneAlwaysFiresInRange) {
  UniformEpisodeAdversary adv(1.0, 5);
  EpisodeSchedule s({100});
  for (int i = 0; i < 100; ++i) {
    const auto tick = adv.plan_interrupt(s, make_ctx(0, 100, 1));
    ASSERT_TRUE(tick.has_value());
    EXPECT_GE(*tick, 1);
    EXPECT_LE(*tick, 100);
  }
}

TEST(Uniform, RejectsBadProbability) {
  EXPECT_THROW(UniformEpisodeAdversary(-0.1, 1), std::invalid_argument);
  EXPECT_THROW(UniformEpisodeAdversary(1.1, 1), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Traces
// ---------------------------------------------------------------------------

TEST(Trace, RejectsNonIncreasingTimes) {
  EXPECT_THROW(InterruptTrace({10, 10}), std::invalid_argument);
  EXPECT_THROW(InterruptTrace({10, 5}), std::invalid_argument);
  EXPECT_THROW(InterruptTrace({0}), std::invalid_argument);
  InterruptTrace ok({5, 10});
  EXPECT_THROW(ok.append(10), std::invalid_argument);
  ok.append(11);
  EXPECT_EQ(ok.size(), 3u);
}

TEST(TraceAdversary, FiresAtRecordedAbsoluteTimes) {
  TraceAdversary adv(InterruptTrace({70}));
  EpisodeSchedule s({50, 50});
  // Episode starting at absolute 0: interrupt at offset 70.
  const auto tick = adv.plan_interrupt(s, make_ctx(0, 100, 1));
  ASSERT_TRUE(tick.has_value());
  EXPECT_EQ(*tick, 70);
}

TEST(TraceAdversary, TranslatesToEpisodeRelativeOffsets) {
  TraceAdversary adv(InterruptTrace({130}));
  EpisodeSchedule s({50, 50});
  const auto tick = adv.plan_interrupt(s, make_ctx(100, 100, 1));
  ASSERT_TRUE(tick.has_value());
  EXPECT_EQ(*tick, 30);
}

TEST(TraceAdversary, SkipsStaleAndFutureEntries) {
  TraceAdversary adv(InterruptTrace({10, 500}));
  EpisodeSchedule s({50, 50});
  // Episode starts at 100: entry 10 is stale, 500 beyond the episode.
  EXPECT_FALSE(adv.plan_interrupt(s, make_ctx(100, 100, 1)).has_value());
}

TEST(RecordingAdversary, CapturesInnerDecisions) {
  FirstPeriodAdversary inner;
  RecordingAdversary rec(inner);
  EpisodeSchedule s({30, 30});
  rec.plan_interrupt(s, make_ctx(0, 60, 2));
  rec.plan_interrupt(s, make_ctx(60, 60, 1));
  ASSERT_EQ(rec.trace().size(), 2u);
  EXPECT_EQ(rec.trace().times()[0], 30);
  EXPECT_EQ(rec.trace().times()[1], 90);
}

TEST(RecordingAdversary, ReplayReproducesInnerBehaviour) {
  FirstPeriodAdversary inner;
  RecordingAdversary rec(inner);
  EpisodeSchedule s({30, 30});
  const auto direct = rec.plan_interrupt(s, make_ctx(0, 60, 1));
  TraceAdversary replay{rec.trace()};
  const auto replayed = replay.plan_interrupt(s, make_ctx(0, 60, 1));
  EXPECT_EQ(direct, replayed);
}

}  // namespace
}  // namespace nowsched::adversary
