#include "sim/checkpoint.h"

#include <gtest/gtest.h>

#include "adversary/heuristics.h"
#include "adversary/trace.h"
#include "core/baselines.h"
#include "core/guidelines.h"
#include "sim/session.h"

namespace nowsched::sim {
namespace {

constexpr Params kParams{16};

TEST(CheckpointMath, CompletedPeriodPaysPerCycleOverhead) {
  const Checkpointing ckpt{100, 10};
  // w = 330: 3 full cycles of 110 -> 3 checkpoints paid.
  EXPECT_EQ(checkpointed_period_work(330, ckpt), 330 - 30);
  // w = 99: no checkpoint needed before the period-end one.
  EXPECT_EQ(checkpointed_period_work(99, ckpt), 99);
  EXPECT_EQ(checkpointed_period_work(0, ckpt), 0);
}

TEST(CheckpointMath, SalvageCountsCompletedCheckpointsOnly) {
  const Checkpointing ckpt{100, 10};
  EXPECT_EQ(checkpoint_salvage(0, ckpt), 0);
  EXPECT_EQ(checkpoint_salvage(99, ckpt), 0);     // mid first segment
  EXPECT_EQ(checkpoint_salvage(110, ckpt), 100);  // one checkpoint done
  EXPECT_EQ(checkpoint_salvage(219, ckpt), 100);  // second not yet complete
  EXPECT_EQ(checkpoint_salvage(220, ckpt), 200);
}

TEST(CheckpointMath, ZeroCostCheckpointsSalvageEverythingInUnits) {
  const Checkpointing ckpt{50, 0};
  EXPECT_EQ(checkpointed_period_work(500, ckpt), 500);
  EXPECT_EQ(checkpoint_salvage(275, ckpt), 250);  // floor to checkpoint units
}

TEST(CheckpointMath, RejectsInvalidParameters) {
  EXPECT_THROW(checkpointed_period_work(10, Checkpointing{0, 5}), std::invalid_argument);
  EXPECT_THROW(checkpoint_salvage(10, Checkpointing{5, -1}), std::invalid_argument);
}

TEST(CheckpointSession, NoInterruptsOnlyCostsOverhead) {
  adversary::NoOpAdversary owner;
  SingleBlockPolicy policy;
  const Checkpointing ckpt{100, 10};
  const auto with = run_session(policy, owner, Opportunity{1016, 1}, kParams, nullptr,
                                ckpt);
  const auto without = run_session(policy, owner, Opportunity{1016, 1}, kParams);
  // Raw capacity 1000 -> 9 full cycles of 110 -> 90 ticks of overhead.
  EXPECT_EQ(without.banked_work, 1000);
  EXPECT_EQ(with.banked_work, 1000 - 90);
  EXPECT_EQ(with.salvaged_work, 0);
}

TEST(CheckpointSession, InterruptSalvagesCheckpointedPrefix) {
  // Single block of 1016 (capacity 1000), interrupted at absolute tick 600:
  // productive elapsed = 600 − 16 = 584 -> 5 checkpoints -> salvage 500.
  SingleBlockPolicy policy;
  adversary::TraceAdversary owner(adversary::InterruptTrace({600}));
  const Checkpointing ckpt{100, 10};
  const auto metrics = run_session(policy, owner, Opportunity{1016, 1}, kParams,
                                   nullptr, ckpt);
  EXPECT_EQ(metrics.salvaged_work, 500);
  // After the interrupt, residual 416 runs as a fresh single block:
  // capacity 400, 3 cycles -> 30 overhead -> 370 banked.
  EXPECT_EQ(metrics.banked_work, 500 + 370);
  EXPECT_EQ(metrics.lost_work, 1000 - 500);
}

TEST(CheckpointSession, DraconianModelIsTheDefault) {
  SingleBlockPolicy policy;
  adversary::TraceAdversary owner(adversary::InterruptTrace({600}));
  const auto metrics = run_session(policy, owner, Opportunity{1016, 1}, kParams);
  EXPECT_EQ(metrics.salvaged_work, 0);
  EXPECT_EQ(metrics.lost_work, 1000);
}

TEST(CheckpointSession, CheaperCheckpointsNeverHurtUnderFixedTrace) {
  // Against identical interrupts, salvage is monotone in checkpoint density
  // for the single-block policy (pure salvage, same overhead structure).
  SingleBlockPolicy policy;
  const Ticks u = 4096;
  Ticks prev_banked = -1;
  for (Ticks interval : {1024, 512, 256, 128, 64}) {
    adversary::TraceAdversary owner(adversary::InterruptTrace({2000}));
    const auto metrics = run_session(policy, owner, Opportunity{u, 1}, kParams,
                                     nullptr, Checkpointing{interval, 0});
    EXPECT_GE(metrics.banked_work, prev_banked) << "interval=" << interval;
    prev_banked = metrics.banked_work;
  }
}

TEST(CheckpointSession, GuidelineStillWorksWithCheckpointing) {
  AdaptiveGuidelinePolicy policy;
  adversary::FirstPeriodAdversary owner;
  const auto metrics = run_session(policy, owner, Opportunity{2000, 2}, kParams,
                                   nullptr, Checkpointing{64, 4});
  EXPECT_EQ(metrics.lifespan_used, 2000);
  EXPECT_GT(metrics.banked_work, 0);
}

TEST(CheckpointSession, RejectsInvalidSpec) {
  SingleBlockPolicy policy;
  adversary::NoOpAdversary owner;
  EXPECT_THROW(run_session(policy, owner, Opportunity{100, 0}, kParams, nullptr,
                           Checkpointing{0, 1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace nowsched::sim
