#include "sim/checkpoint.h"

#include <gtest/gtest.h>

#include <memory>

#include "adversary/heuristics.h"
#include "adversary/processes.h"
#include "adversary/trace.h"
#include "core/baselines.h"
#include "core/equalized.h"
#include "core/guidelines.h"
#include "sim/scenario_gen.h"
#include "sim/session.h"

namespace nowsched::sim {
namespace {

constexpr Params kParams{16};

TEST(CheckpointMath, CompletedPeriodPaysPerCycleOverhead) {
  const Checkpointing ckpt{100, 10};
  // w = 330: 3 full cycles of 110 -> 3 checkpoints paid.
  EXPECT_EQ(checkpointed_period_work(330, ckpt), 330 - 30);
  // w = 99: no checkpoint needed before the period-end one.
  EXPECT_EQ(checkpointed_period_work(99, ckpt), 99);
  EXPECT_EQ(checkpointed_period_work(0, ckpt), 0);
}

TEST(CheckpointMath, SalvageCountsCompletedCheckpointsOnly) {
  const Checkpointing ckpt{100, 10};
  EXPECT_EQ(checkpoint_salvage(0, ckpt), 0);
  EXPECT_EQ(checkpoint_salvage(99, ckpt), 0);     // mid first segment
  EXPECT_EQ(checkpoint_salvage(110, ckpt), 100);  // one checkpoint done
  EXPECT_EQ(checkpoint_salvage(219, ckpt), 100);  // second not yet complete
  EXPECT_EQ(checkpoint_salvage(220, ckpt), 200);
}

TEST(CheckpointMath, ZeroCostCheckpointsSalvageEverythingInUnits) {
  const Checkpointing ckpt{50, 0};
  EXPECT_EQ(checkpointed_period_work(500, ckpt), 500);
  EXPECT_EQ(checkpoint_salvage(275, ckpt), 250);  // floor to checkpoint units
}

TEST(CheckpointMath, RejectsInvalidParameters) {
  EXPECT_THROW(checkpointed_period_work(10, Checkpointing{0, 5}), std::invalid_argument);
  EXPECT_THROW(checkpoint_salvage(10, Checkpointing{5, -1}), std::invalid_argument);
}

TEST(CheckpointSession, NoInterruptsOnlyCostsOverhead) {
  adversary::NoOpAdversary owner;
  SingleBlockPolicy policy;
  const Checkpointing ckpt{100, 10};
  const auto with = run_session(policy, owner, Opportunity{1016, 1}, kParams, nullptr,
                                ckpt);
  const auto without = run_session(policy, owner, Opportunity{1016, 1}, kParams);
  // Raw capacity 1000 -> 9 full cycles of 110 -> 90 ticks of overhead.
  EXPECT_EQ(without.banked_work, 1000);
  EXPECT_EQ(with.banked_work, 1000 - 90);
  EXPECT_EQ(with.salvaged_work, 0);
}

TEST(CheckpointSession, InterruptSalvagesCheckpointedPrefix) {
  // Single block of 1016 (capacity 1000), interrupted at absolute tick 600:
  // productive elapsed = 600 − 16 = 584 -> 5 checkpoints -> salvage 500.
  SingleBlockPolicy policy;
  adversary::TraceAdversary owner(adversary::InterruptTrace({600}));
  const Checkpointing ckpt{100, 10};
  const auto metrics = run_session(policy, owner, Opportunity{1016, 1}, kParams,
                                   nullptr, ckpt);
  EXPECT_EQ(metrics.salvaged_work, 500);
  // After the interrupt, residual 416 runs as a fresh single block:
  // capacity 400, 3 cycles -> 30 overhead -> 370 banked.
  EXPECT_EQ(metrics.banked_work, 500 + 370);
  EXPECT_EQ(metrics.lost_work, 1000 - 500);
}

TEST(CheckpointSession, DraconianModelIsTheDefault) {
  SingleBlockPolicy policy;
  adversary::TraceAdversary owner(adversary::InterruptTrace({600}));
  const auto metrics = run_session(policy, owner, Opportunity{1016, 1}, kParams);
  EXPECT_EQ(metrics.salvaged_work, 0);
  EXPECT_EQ(metrics.lost_work, 1000);
}

TEST(CheckpointSession, CheaperCheckpointsNeverHurtUnderFixedTrace) {
  // Against identical interrupts, salvage is monotone in checkpoint density
  // for the single-block policy (pure salvage, same overhead structure).
  SingleBlockPolicy policy;
  const Ticks u = 4096;
  Ticks prev_banked = -1;
  for (Ticks interval : {1024, 512, 256, 128, 64}) {
    adversary::TraceAdversary owner(adversary::InterruptTrace({2000}));
    const auto metrics = run_session(policy, owner, Opportunity{u, 1}, kParams,
                                     nullptr, Checkpointing{interval, 0});
    EXPECT_GE(metrics.banked_work, prev_banked) << "interval=" << interval;
    prev_banked = metrics.banked_work;
  }
}

TEST(CheckpointSession, GuidelineStillWorksWithCheckpointing) {
  AdaptiveGuidelinePolicy policy;
  adversary::FirstPeriodAdversary owner;
  const auto metrics = run_session(policy, owner, Opportunity{2000, 2}, kParams,
                                   nullptr, Checkpointing{64, 4});
  EXPECT_EQ(metrics.lifespan_used, 2000);
  EXPECT_GT(metrics.banked_work, 0);
}

TEST(CheckpointSession, RejectsInvalidSpec) {
  SingleBlockPolicy policy;
  adversary::NoOpAdversary owner;
  EXPECT_THROW(run_session(policy, owner, Opportunity{100, 0}, kParams, nullptr,
                           Checkpointing{0, 1}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Checkpoint-restart: serialize/restore mid-session must continue
// bit-identically. The traces come from the generated owner processes
// (adversary/processes.h), not hand-written interrupt lists.
// ---------------------------------------------------------------------------

void expect_metrics_equal(const SessionMetrics& a, const SessionMetrics& b,
                          const std::string& what) {
  EXPECT_EQ(a.banked_work, b.banked_work) << what;
  EXPECT_EQ(a.task_work, b.task_work) << what;
  EXPECT_EQ(a.comm_overhead, b.comm_overhead) << what;
  EXPECT_EQ(a.lost_work, b.lost_work) << what;
  EXPECT_EQ(a.salvaged_work, b.salvaged_work) << what;
  EXPECT_EQ(a.fragmentation, b.fragmentation) << what;
  EXPECT_EQ(a.lifespan_used, b.lifespan_used) << what;
  EXPECT_EQ(a.interrupts, b.interrupts) << what;
  EXPECT_EQ(a.episodes, b.episodes) << what;
  EXPECT_EQ(a.periods_completed, b.periods_completed) << what;
  EXPECT_EQ(a.periods_killed, b.periods_killed) << what;
  EXPECT_EQ(a.tasks_completed, b.tasks_completed) << what;
}

TEST(CheckpointRestart, SerializationRoundTripsExactly) {
  SessionCheckpoint ckpt;
  ckpt.residual = 12345;
  ckpt.interrupts_left = 3;
  ckpt.metrics.banked_work = 999;
  ckpt.metrics.lost_work = 17;
  ckpt.metrics.lifespan_used = 55555;
  ckpt.metrics.episodes = 4;
  ckpt.metrics.periods_killed = 2;
  const SessionCheckpoint back = parse_session_checkpoint(serialize(ckpt));
  EXPECT_EQ(back.residual, ckpt.residual);
  EXPECT_EQ(back.interrupts_left, ckpt.interrupts_left);
  EXPECT_EQ(back.finished, ckpt.finished);
  expect_metrics_equal(back.metrics, ckpt.metrics, "round trip");
}

TEST(CheckpointRestart, ParserRejectsGarbage) {
  EXPECT_THROW(parse_session_checkpoint("bogus"), std::invalid_argument);
  EXPECT_THROW(parse_session_checkpoint("nowsched-session-checkpoint v1\nresidual=x"),
               std::invalid_argument);
  EXPECT_THROW(parse_session_checkpoint("nowsched-session-checkpoint v1\nwhat=1"),
               std::invalid_argument);
  // A truncated record must be an error, never a zeroed session state.
  EXPECT_THROW(parse_session_checkpoint("nowsched-session-checkpoint v1"),
               std::invalid_argument);
  EXPECT_THROW(
      parse_session_checkpoint("nowsched-session-checkpoint v1\nresidual=5"),
      std::invalid_argument);
}

TEST(CheckpointRestart, ResumeContinuesBitIdenticallyUnderGeneratedTraces) {
  // Owner behaviour comes from the generated process adversaries: record
  // each one's interrupt trace against the policy, then check that pausing
  // after EVERY possible interrupt count, serializing, parsing back, and
  // resuming reproduces the uninterrupted session's metrics field-for-field.
  const EqualizedGuidelinePolicy equalized;
  const AdaptiveGuidelinePolicy adaptive;
  const Opportunity opp{6000, 4};
  const Params params{16};

  std::vector<std::unique_ptr<adversary::Adversary>> owners;
  owners.push_back(std::make_unique<adversary::MarkovModulatedAdversary>(
      2000.0, 120.0, 1500.0, 600.0, 0xA1));
  owners.push_back(std::make_unique<adversary::InhomogeneousPoissonAdversary>(
      900.0, 0.8, 2500.0, 1.0, 0xB2));
  owners.push_back(
      std::make_unique<adversary::BurstyAdversary>(1200.0, 1.2, 3.0, 40.0, 0xC3));
  owners.push_back(std::make_unique<adversary::CorrelatedShockAdversary>(
      800.0, 0.9, 0xD4, 0xE5));

  for (auto& owner : owners) {
    for (const SchedulingPolicy* policy :
         {static_cast<const SchedulingPolicy*>(&equalized),
          static_cast<const SchedulingPolicy*>(&adaptive)}) {
      owner->reset(0x5EED);
      adversary::RecordingAdversary recorder(*owner);
      const SessionMetrics full = run_session(*policy, recorder, opp, params);
      const adversary::InterruptTrace trace = recorder.trace();
      ASSERT_GT(full.interrupts, 0) << owner->name() << ": trace never fired — "
                                    << "the round trip would be vacuous";

      for (int k = 1; k <= full.interrupts; ++k) {
        adversary::TraceAdversary replay(trace);
        const SessionCheckpoint ckpt =
            run_session_until_interrupt(*policy, replay, opp, params, k);
        // Serialize / restore through the text format before resuming.
        const SessionCheckpoint restored = parse_session_checkpoint(serialize(ckpt));
        adversary::TraceAdversary tail(trace.shifted(restored.metrics.lifespan_used));
        const SessionMetrics merged =
            resume_session(*policy, tail, restored, params);
        expect_metrics_equal(merged, full,
                             owner->name() + " + " + policy->name() +
                                 " pause_after=" + std::to_string(k));
      }
    }
  }
}

TEST(CheckpointRestart, PauseBeyondLastInterruptJustFinishes) {
  const EqualizedGuidelinePolicy policy;
  adversary::NoOpAdversary owner;
  const SessionCheckpoint ckpt =
      run_session_until_interrupt(policy, owner, Opportunity{2000, 2}, kParams, 1);
  EXPECT_TRUE(ckpt.finished);
  EXPECT_EQ(ckpt.residual, 0);
  // Resuming a finished checkpoint is the identity.
  adversary::NoOpAdversary tail;
  const SessionMetrics merged = resume_session(policy, tail, ckpt, kParams);
  expect_metrics_equal(merged, ckpt.metrics, "finished resume");
}

TEST(CheckpointRestart, ReplayParserRejectsNonFiniteNumbers) {
  // "nan" and "inf" parse whole-string through strtod but poison every
  // range check downstream (a NaN response probability hangs the shock
  // sampler), so the replay parser refuses them outright.
  const auto record = [](const std::string& owner_a) {
    return "nowsched-scenario v1\npolicy=equalized\nowner=poisson\nowner_a=" +
           owner_a + "\nc=16\nlifespan=100\nmax_interrupts=1\nseed=1\n";
  };
  EXPECT_NO_THROW(scenario_from_replay(record("250")));
  EXPECT_THROW(scenario_from_replay(record("nan")), std::invalid_argument);
  EXPECT_THROW(scenario_from_replay(record("inf")), std::invalid_argument);
}

TEST(CheckpointRestart, GeneratedScenarioTracesSurviveReplayFormat) {
  // End-to-end with the scenario layer: a generated spec's serialized form
  // rebuilds a spec whose session produces identical metrics.
  ScenarioDomain domain;
  domain.min_lifespan = 512;
  domain.max_lifespan = 4096;
  domain.max_interrupts = 4;
  domain.policies = {PolicyKind::kEqualized, PolicyKind::kAdaptivePaper};
  ScenarioGenerator gen(domain, 0x7E57);
  for (int i = 0; i < 16; ++i) {
    const ScenarioSpec spec = gen.next();
    const ScenarioSpec back = scenario_from_replay(to_replay_string(spec));
    EXPECT_EQ(back.owner, spec.owner);
    EXPECT_EQ(back.seed, spec.seed);
    EXPECT_EQ(back.lifespan, spec.lifespan);
    EXPECT_EQ(back.owner_a, spec.owner_a);  // bit-exact double round trip
    EXPECT_EQ(back.owner_d, spec.owner_d);
  }
}

}  // namespace
}  // namespace nowsched::sim
