#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace nowsched::util {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(4.5);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 4.5);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 4.5);
  EXPECT_DOUBLE_EQ(acc.max(), 4.5);
}

TEST(Accumulator, KnownMeanAndVariance) {
  Accumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator all, left, right;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(i) * 10.0;
    all.add(v);
    (i < 37 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Accumulator, MergeWithEmptySides) {
  Accumulator a, b;
  a.add(1.0);
  a.add(3.0);
  Accumulator a_copy = a;
  a.merge(b);  // empty right
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), a_copy.mean());
  b.merge(a);  // empty left
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Summary, QuantilesOfKnownData) {
  Summary s({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.75), 4.0);
}

TEST(Summary, InterpolatesBetweenOrderStatistics) {
  Summary s({0.0, 10.0});
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.1), 1.0);
}

TEST(Summary, UnsortedInputHandled) {
  Summary s({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(Summary, EmptyAndSingle) {
  Summary empty({});
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  Summary one({7.0});
  EXPECT_DOUBLE_EQ(one.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(one.quantile(1.0), 7.0);
}

TEST(LinearFit, RecoversExactLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 2.5 * i);
  }
  const auto fit = fit_linear(x, y);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.5, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinearFit, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(fit_linear({}, {}).slope, 0.0);
  EXPECT_DOUBLE_EQ(fit_linear({1.0}, {2.0}).slope, 0.0);
  // Vertical data (all x equal) cannot be fit.
  EXPECT_DOUBLE_EQ(fit_linear({2.0, 2.0}, {1.0, 5.0}).slope, 0.0);
}

TEST(LinearFit, SqrtLawDetectedOnTransformedAxis) {
  // The experiments fit work deficits against sqrt(U); check the recipe:
  // y = 4*sqrt(u) fit against x = sqrt(u) must give slope ~4.
  std::vector<double> x, y;
  for (double u = 100.0; u <= 10000.0; u += 100.0) {
    x.push_back(std::sqrt(u));
    y.push_back(4.0 * std::sqrt(u) + 1.0);
  }
  const auto fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 4.0, 1e-9);
  EXPECT_GT(fit.r2, 0.999);
}

}  // namespace
}  // namespace nowsched::util
