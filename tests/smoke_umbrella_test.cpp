// Umbrella-header hygiene: this TU includes ONLY nowsched.h (plus gtest) and
// must compile under -Wall -Wextra. Every public header has to be
// self-contained and transitively included by the umbrella for this to pass.
#include "nowsched.h"

#include <gtest/gtest.h>

namespace nowsched {
namespace {

// Touch one symbol per layer so the linker pulls each archive member and any
// missing definition (unlinked TU, ODR mishap) surfaces here rather than in a
// downstream consumer.
TEST(UmbrellaHeader, ExposesEveryLayer) {
  const Params params{16};
  require_valid(params);
  EXPECT_EQ(positive_sub(5, 2), 3);     // core
  util::Rng rng(1234);                  // util
  (void)rng;
  SUCCEED();
}

}  // namespace
}  // namespace nowsched
