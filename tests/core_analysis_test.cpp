#include "core/analysis.h"

#include <gtest/gtest.h>

#include "core/closed_form.h"
#include "core/equalized.h"

namespace nowsched {
namespace {

constexpr Params kParams{10};

TEST(Analyze, CountsAndExtremes) {
  const EpisodeSchedule s({30, 15, 8, 12});
  const auto d = analyze(s, kParams);
  EXPECT_EQ(d.periods, 4u);
  EXPECT_EQ(d.total, 65);
  EXPECT_EQ(d.min_period, 8);
  EXPECT_EQ(d.max_period, 30);
  EXPECT_DOUBLE_EQ(d.mean_period, 65.0 / 4.0);
  EXPECT_EQ(d.productive_periods, 3u);      // 30, 15, 12 exceed c=10
  EXPECT_EQ(d.immune_band_periods, 2u);     // 15, 12 in (10, 20]
  EXPECT_EQ(d.setup_overhead, 10 + 10 + 8 + 10);
  EXPECT_EQ(d.uninterrupted_work, 20 + 5 + 0 + 2);
  EXPECT_EQ(d.worst_kill_loss, 30);
}

TEST(Analyze, EmptySchedule) {
  const auto d = analyze(EpisodeSchedule{}, kParams);
  EXPECT_EQ(d.periods, 0u);
  EXPECT_EQ(d.total, 0);
  EXPECT_EQ(d.setup_overhead, 0);
}

TEST(Analyze, OverheadFractionConsistent) {
  const EpisodeSchedule s({20, 20, 20, 20, 20});
  const auto d = analyze(s, kParams);
  EXPECT_DOUBLE_EQ(d.overhead_fraction, 0.5);
  // Conservation: setup + work == total for schedules with no sub-c waste.
  EXPECT_EQ(d.setup_overhead + d.uninterrupted_work, d.total);
}

TEST(Analyze, ToStringMentionsKeyNumbers) {
  const auto d = analyze(EpisodeSchedule({30, 15}), kParams);
  const auto str = d.to_string();
  EXPECT_NE(str.find("m=2"), std::string::npos);
  EXPECT_NE(str.find("total=45"), std::string::npos);
}

TEST(KillProfile, MatchesHandComputation) {
  // U=60, c=10, schedule {30, 20, 10}.
  // k=0: banked 0 + (60−30−10) = 20; k=1: 20 + (60−50−10)=0 → 20;
  // k=2: 20+10 + 0 = 30.
  const EpisodeSchedule s({30, 20, 10});
  const auto profile = kill_option_profile_p1(s, 60, kParams);
  ASSERT_EQ(profile.size(), 3u);
  EXPECT_EQ(profile[0], 20);
  EXPECT_EQ(profile[1], 20);
  EXPECT_EQ(profile[2], 30);
}

TEST(KillProfile, MinimumEqualsGuaranteedWorkWhenBelowUninterrupted) {
  const Params params{16};
  const Ticks u = 16 * 512;
  const auto opt = optimal_p1_schedule(u, params);
  const auto profile = kill_option_profile_p1(opt.schedule, u, params);
  const Ticks min_option = *std::min_element(profile.begin(), profile.end());
  EXPECT_EQ(std::min(min_option, opt.schedule.work_if_uninterrupted(params)),
            guaranteed_work_p1(opt.schedule, u, params));
}

TEST(EqualizationSpread, NearZeroForOptimalSchedules) {
  const Params params{16};
  for (Ticks ratio : {Ticks{128}, Ticks{512}, Ticks{2048}}) {
    const Ticks u = ratio * params.c;
    const auto opt = optimal_p1_schedule(u, params);
    EXPECT_LE(equalization_spread_p1(opt.schedule, u, params), 2 * params.c)
        << "U/c=" << ratio;
    const auto eq = equalized_episode(u, 1, params);
    EXPECT_LE(equalization_spread_p1(eq, u, params), 3 * params.c) << "U/c=" << ratio;
  }
}

TEST(EqualizationSpread, LargeForNaiveSchedules) {
  // A wildly unbalanced schedule has a big spread — the diagnostic flags it.
  const Params params{16};
  const Ticks u = 16 * 512;
  const EpisodeSchedule lopsided({u / 2, u / 4, u / 8, u / 8});
  EXPECT_GT(equalization_spread_p1(lopsided, u, params), u / 8);
}

TEST(EqualizationSpread, DegenerateSchedulesReportZero) {
  const EpisodeSchedule tiny({50});
  EXPECT_EQ(equalization_spread_p1(tiny, 50, kParams), 0);
}

}  // namespace
}  // namespace nowsched
