// The generative owner processes of adversary/processes.h: parameter
// validation, seed determinism, reset semantics, and the correlation
// contract of the shared-shock model.
#include "adversary/processes.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "adversary/trace.h"
#include "core/equalized.h"
#include "sim/session.h"

namespace nowsched::adversary {
namespace {

constexpr Params kParams{16};

/// Records the interrupt trace a session against `owner` produces.
InterruptTrace trace_of(Adversary& owner, Ticks u = 8000, int p = 6) {
  const EqualizedGuidelinePolicy policy;
  RecordingAdversary recorder(owner);
  (void)sim::run_session(policy, recorder, Opportunity{u, p}, kParams);
  return recorder.trace();
}

TEST(Processes, ConstructorsValidateParameters) {
  EXPECT_THROW(MarkovModulatedAdversary(0.0, 1.0, 1.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(MarkovModulatedAdversary(1.0, 1.0, -2.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(InhomogeneousPoissonAdversary(0.0, 0.5, 10.0, 0.0, 1),
               std::invalid_argument);
  EXPECT_THROW(InhomogeneousPoissonAdversary(10.0, 1.5, 10.0, 0.0, 1),
               std::invalid_argument);
  EXPECT_THROW(BurstyAdversary(10.0, 0.0, 2.0, 5.0, 1), std::invalid_argument);
  EXPECT_THROW(BurstyAdversary(10.0, 1.0, 0.5, 5.0, 1), std::invalid_argument);
  EXPECT_THROW(CorrelatedShockAdversary(0.0, 0.5, 1, 2), std::invalid_argument);
  EXPECT_THROW(CorrelatedShockAdversary(10.0, 1.5, 1, 2), std::invalid_argument);

  // NaN must not slide through the range checks: with e.g. response_prob =
  // NaN the arm() loop would never accept a shock and the session would
  // hang — the constructors are the last line of defense.
  const double nan = std::nan("");
  EXPECT_THROW(MarkovModulatedAdversary(nan, 1.0, 1.0, 1.0, 1),
               std::invalid_argument);
  EXPECT_THROW(InhomogeneousPoissonAdversary(10.0, nan, 10.0, 0.0, 1),
               std::invalid_argument);
  EXPECT_THROW(BurstyAdversary(10.0, 1.0, nan, 5.0, 1), std::invalid_argument);
  EXPECT_THROW(CorrelatedShockAdversary(10.0, nan, 1, 2), std::invalid_argument);
}

TEST(Processes, SameSeedSameTraceAcrossAllModels) {
  const auto build = [](int which, std::uint64_t seed) -> std::unique_ptr<Adversary> {
    switch (which) {
      case 0:
        return std::make_unique<MarkovModulatedAdversary>(2500.0, 150.0, 1200.0,
                                                          500.0, seed);
      case 1:
        return std::make_unique<InhomogeneousPoissonAdversary>(700.0, 0.9, 3000.0,
                                                               0.5, seed);
      case 2:
        return std::make_unique<BurstyAdversary>(1500.0, 1.1, 4.0, 30.0, seed);
      default:
        return std::make_unique<CorrelatedShockAdversary>(900.0, 0.8, 0x6A0, seed);
    }
  };
  for (int which = 0; which < 4; ++which) {
    auto a = build(which, 0x111);
    auto b = build(which, 0x111);
    auto c = build(which, 0x222);
    const auto ta = trace_of(*a);
    EXPECT_EQ(ta.times(), trace_of(*b).times()) << a->name();
    // A different seed must actually change the stream (vacuous-determinism
    // guard; all these processes fire several times over U=8000).
    ASSERT_GT(ta.size(), 0u) << a->name();
    EXPECT_NE(ta.times(), trace_of(*c).times()) << a->name();
  }
}

TEST(Processes, ResetReproducesTheStreamFromScratch) {
  MarkovModulatedAdversary owner(2000.0, 100.0, 900.0, 400.0, 0xAB);
  const auto first = trace_of(owner);
  owner.reset(0xAB);
  EXPECT_EQ(trace_of(owner).times(), first.times());
  owner.reset(0xCD);
  EXPECT_NE(trace_of(owner).times(), first.times());
}

TEST(Processes, CorrelatedShockGroupSharesShockTimes) {
  // Full response probability: every station of the group replays the
  // IDENTICAL failure pattern regardless of its private seed.
  CorrelatedShockAdversary a(600.0, 1.0, 0x6006, 0x1);
  CorrelatedShockAdversary b(600.0, 1.0, 0x6006, 0x2);
  const auto ta = trace_of(a);
  ASSERT_GT(ta.size(), 0u);
  EXPECT_EQ(ta.times(), trace_of(b).times());

  // A different group is a different shock stream entirely.
  CorrelatedShockAdversary other(600.0, 1.0, 0x7007, 0x1);
  EXPECT_NE(trace_of(other).times(), ta.times());
}

TEST(Processes, PartialResponseThinsTheSharedStream) {
  // A station responding with prob < 1 interrupts at a SUBSET of the
  // full-response station's shock times (the streams stay in lockstep, the
  // private coin only drops arrivals). Both sessions get an interrupt
  // budget far above the shock count so neither trace is truncated by p.
  CorrelatedShockAdversary full(500.0, 1.0, 0xBEEF, 0x9);
  CorrelatedShockAdversary half(500.0, 0.5, 0xBEEF, 0x9);
  const auto all = trace_of(full, 8000, 64);
  const auto some = trace_of(half, 8000, 64);
  EXPECT_LE(some.size(), all.size());
  for (const Ticks t : some.times()) {
    bool present = false;
    for (const Ticks s : all.times()) present = present || s == t;
    EXPECT_TRUE(present) << "responded shock " << t
                         << " is not a shock of the shared stream";
  }
}

TEST(Processes, ZeroResponseNeverInterrupts) {
  CorrelatedShockAdversary never(100.0, 0.0, 0x5, 0x6);
  EXPECT_EQ(trace_of(never).size(), 0u);
}

TEST(Processes, BurstyProducesClusters) {
  // With near-certain multi-touch bursts and tiny intra-burst gaps, some
  // recorded gap must be far below the inter-burst scale.
  BurstyAdversary owner(2500.0, 1.5, 5.0, 10.0, 0x77);
  const auto trace = trace_of(owner, 30000, 12);
  ASSERT_GT(trace.size(), 2u);
  Ticks min_gap = trace.times()[1] - trace.times()[0];
  for (std::size_t i = 2; i < trace.size(); ++i) {
    min_gap = std::min(min_gap, trace.times()[i] - trace.times()[i - 1]);
  }
  EXPECT_LT(min_gap, 250);  // clusters exist: some gap is burst-scale
}

TEST(Processes, InhomogeneousZeroDepthMatchesArrivalBudget) {
  // depth 0 degenerates to homogeneous Poisson: over a long horizon the
  // arrival count should be within a loose factor of horizon / mean_gap
  // (not a distributional test — a sanity anchor for the thinning loop).
  InhomogeneousPoissonAdversary owner(500.0, 0.0, 1000.0, 0.0, 0x123);
  const auto trace = trace_of(owner, 60000, 200);
  const double expected = 60000.0 / 500.0;
  EXPECT_GT(static_cast<double>(trace.size()), expected / 3.0);
  EXPECT_LT(static_cast<double>(trace.size()), expected * 3.0);
}

}  // namespace
}  // namespace nowsched::adversary
