// service::SchedulerService under real concurrency — the TSan half of the
// battery (CI runs this suite with -DNOWSCHED_TSAN=ON). Assertions follow
// the deflake discipline: conservation laws, permutation/ordering facts, and
// bit-determinism of a canary scenario — never timing values, never "thread
// X won" expectations. All submission goes through the JobTicket API; the
// deprecated future shim keeps its single deterministic test in
// tests/service_scheduler_test.cpp.
#include "service/scheduler_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/batch_runner.h"
#include "sim/metrics.h"

namespace nowsched::service {
namespace {

sim::ScenarioSpec quick_spec(std::uint64_t seed) {
  sim::ScenarioSpec spec;
  spec.policy = sim::PolicyKind::kEqualized;
  spec.owner = sim::OwnerKind::kPoisson;
  spec.owner_a = 400.0;
  spec.params = Params{16};
  spec.lifespan = 256;
  spec.max_interrupts = 1;
  spec.seed = seed;
  return spec;
}

sim::ScenarioSpec dp_spec(Ticks lifespan, std::uint64_t seed) {
  sim::ScenarioSpec spec = quick_spec(seed);
  spec.policy = sim::PolicyKind::kDpOptimal;
  spec.lifespan = lifespan;
  return spec;
}

void expect_metrics_eq(const sim::SessionMetrics& got,
                       const sim::SessionMetrics& want) {
  EXPECT_EQ(got.banked_work, want.banked_work);
  EXPECT_EQ(got.task_work, want.task_work);
  EXPECT_EQ(got.comm_overhead, want.comm_overhead);
  EXPECT_EQ(got.lost_work, want.lost_work);
  EXPECT_EQ(got.salvaged_work, want.salvaged_work);
  EXPECT_EQ(got.fragmentation, want.fragmentation);
  EXPECT_EQ(got.lifespan_used, want.lifespan_used);
  EXPECT_EQ(got.interrupts, want.interrupts);
  EXPECT_EQ(got.episodes, want.episodes);
  EXPECT_EQ(got.periods_completed, want.periods_completed);
  EXPECT_EQ(got.periods_killed, want.periods_killed);
  EXPECT_EQ(got.tasks_completed, want.tasks_completed);
}

TEST(SchedulerServiceStress, ConcurrentSubmittersConserveEveryCounter) {
  ServiceOptions options;
  options.workers = 3;
  options.queue = QueueKind::kDeficitRoundRobin;
  options.drr_quantum = 2;
  // Tight limits so the backpressure paths genuinely fire under the race.
  options.max_queued_jobs_per_tenant = 4;
  options.max_queued_jobs_total = 10;
  options.max_pending_scenarios_per_tenant = 12;
  SchedulerService service(options);

  constexpr int kSubmitters = 6;
  constexpr int kPerThread = 40;
  std::atomic<std::uint64_t> accepted{0}, rejected{0}, invalid{0};

  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&service, &accepted, &rejected, &invalid, t] {
      std::vector<JobId> tickets;
      for (int i = 0; i < kPerThread; ++i) {
        const std::string tenant = "tenant-" + std::to_string(t % 3);
        std::vector<sim::ScenarioSpec> specs;
        const int n = 1 + (t + i) % 3;
        for (int k = 0; k < n; ++k) {
          specs.push_back(quick_spec(static_cast<std::uint64_t>(t * 1000 + i * 10 + k)));
        }
        if (i % 10 == 9) specs[0].params = Params{0};  // exercise the invalid path
        TicketSubmission sub = service.submit_job(tenant, std::move(specs));
        if (sub.accepted()) {
          ++accepted;
          tickets.push_back(sub.ticket.id);
        } else if (sub.status == SubmitStatus::kInvalidScenario) {
          ++invalid;
        } else {
          ASSERT_TRUE(is_backpressure(sub.status)) << to_string(sub.status);
          ++rejected;
        }
      }
      for (const JobId id : tickets) {
        // Every accepted ticket resolves, exactly once.
        const FetchOutcome outcome = service.fetch_result(id);
        ASSERT_TRUE(outcome.done()) << to_string(outcome.state);
        ASSERT_FALSE(outcome.result.batch.per_scenario.empty());
        ASSERT_EQ(service.job_state(id), JobState::kUnknown);
      }
    });
  }
  for (auto& th : submitters) th.join();
  service.drain();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted_jobs,
            static_cast<std::uint64_t>(kSubmitters) * kPerThread);
  EXPECT_EQ(stats.accepted_jobs, accepted.load());
  EXPECT_EQ(stats.rejected_jobs, rejected.load() + invalid.load());
  EXPECT_EQ(stats.completed_jobs, accepted.load());
  EXPECT_EQ(stats.failed_jobs, 0u);
  EXPECT_EQ(stats.queued_jobs, 0u);
  EXPECT_EQ(stats.inflight_jobs, 0u);
  std::uint64_t invalid_sum = 0, completed_scenarios = 0, submitted_scenarios = 0;
  for (const TenantStats& t : stats.tenants) {
    EXPECT_EQ(t.submitted_jobs, t.accepted_jobs + t.rejected_total()) << t.tenant;
    EXPECT_EQ(t.accepted_jobs, t.completed_jobs) << t.tenant;
    EXPECT_EQ(t.pending_scenarios, 0u) << t.tenant;
    invalid_sum += t.rejected_invalid;
    completed_scenarios += t.completed_scenarios;
    submitted_scenarios += t.submitted_scenarios;
  }
  EXPECT_EQ(invalid_sum, invalid.load());
  EXPECT_EQ(completed_scenarios, submitted_scenarios);  // everything accepted ran
  service.shutdown();
}

TEST(SchedulerServiceStress, CanaryScenarioIsBitDeterministicUnderLoad) {
  // One fixed scenario submitted from many racing threads, amid unrelated
  // load: every copy's metrics must equal the direct BatchRunner result
  // field for field — scheduling decides WHEN, never WHAT.
  const sim::ScenarioSpec canary = dp_spec(384, 0xCA7A);
  sim::BatchRunner reference;
  const sim::SessionMetrics want = reference.run({canary}).per_scenario.at(0);

  ServiceOptions options;
  options.workers = 4;
  options.queue = QueueKind::kDeficitRoundRobin;
  SchedulerService service(options);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &canary, &want, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Interleave noise jobs from a different tenant and contract (their
        // tickets are fetched below through the same blocking path).
        TicketSubmission noise = service.submit_job(
            "noise", {dp_spec(256 + 16 * ((t + i) % 4),
                              static_cast<std::uint64_t>(t * 100 + i))});
        TicketSubmission sub =
            service.submit_job("canary-" + std::to_string(t), {canary});
        if (noise.accepted()) (void)service.fetch_result(noise.ticket.id);
        if (!sub.accepted()) continue;  // backpressure is fine; results are not
        const FetchOutcome outcome = service.fetch_result(sub.ticket.id);
        ASSERT_TRUE(outcome.done()) << to_string(outcome.state);
        ASSERT_EQ(outcome.result.batch.per_scenario.size(), 1u);
        expect_metrics_eq(outcome.result.batch.per_scenario[0], want);
      }
    });
  }
  for (auto& th : threads) th.join();
  service.shutdown(SchedulerService::StopMode::kDrain);
}

TEST(SchedulerServiceStress, StatsAndQuotaResizeRaceExecution) {
  // stats() snapshots and live set_tenant_quota churn while workers chew dp
  // jobs — TSan checks the locking; we check snapshot sanity (sums never
  // exceed submissions, monotone completions) and final conservation.
  ServiceOptions options;
  options.workers = 2;
  SchedulerService service(options);

  std::atomic<bool> stop{false};
  std::thread poller([&service, &stop] {
    std::uint64_t last_completed = 0;
    while (!stop.load()) {
      const ServiceStats stats = service.stats();
      EXPECT_LE(stats.accepted_jobs, stats.submitted_jobs);
      EXPECT_GE(stats.completed_jobs, last_completed);  // monotone
      last_completed = stats.completed_jobs;
      for (const TenantStats& t : stats.tenants) {
        EXPECT_LE(t.completed_scenarios, t.submitted_scenarios) << t.tenant;
      }
      std::this_thread::yield();
    }
  });
  std::thread resizer([&service, &stop] {
    std::size_t flip = 0;
    while (!stop.load()) {
      service.set_tenant_quota("t", (flip++ % 2 == 0) ? 0 : (1u << 20));
      std::this_thread::yield();
    }
  });

  std::vector<JobId> tickets;
  for (int i = 0; i < 48; ++i) {
    TicketSubmission sub = service.submit_job(
        "t", {dp_spec(256 + 16 * (i % 6), static_cast<std::uint64_t>(i))});
    if (sub.accepted()) tickets.push_back(sub.ticket.id);
  }
  for (const JobId id : tickets) {
    EXPECT_TRUE(service.fetch_result(id).done());
  }
  stop.store(true);
  poller.join();
  resizer.join();
  service.drain();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed_jobs, tickets.size());
  EXPECT_EQ(stats.failed_jobs, 0u);
  service.shutdown();
}

TEST(SchedulerServiceStress, ShutdownCancelRacingSubmittersLosesNoJob) {
  // Submitters race a cancel-shutdown: every accepted ticket must settle
  // (kDone or kCancelled, never kUnknown/stuck) and completed + cancelled
  // == accepted.
  ServiceOptions options;
  options.workers = 2;
  options.max_queued_jobs_total = 64;
  SchedulerService service(options);

  std::atomic<std::uint64_t> accepted{0};
  constexpr int kSubmitters = 4;
  std::vector<std::thread> submitters;
  std::vector<std::vector<JobId>> tickets(kSubmitters);
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&service, &accepted, &tickets, t] {
      // Assemble via append rather than operator+: string concatenation of
      // a literal with std::to_string trips a GCC 12 -Wrestrict false
      // positive (GCC bug 105651) when inlined under -O2. Retested on GCC
      // 12.2: still fires — keep until the toolchain reaches GCC 13.
      std::string tenant = "t";
      tenant += std::to_string(t);
      for (int i = 0; i < 30; ++i) {
        TicketSubmission sub = service.submit_job(
            tenant, {quick_spec(static_cast<std::uint64_t>(t * 1000 + i))});
        if (sub.accepted()) {
          ++accepted;
          tickets[static_cast<std::size_t>(t)].push_back(sub.ticket.id);
        } else if (sub.status == SubmitStatus::kShuttingDown) {
          break;  // the race is over for this thread
        }
      }
    });
  }
  service.shutdown(SchedulerService::StopMode::kCancelQueued);
  for (auto& th : submitters) th.join();

  std::uint64_t resolved_ok = 0, resolved_cancelled = 0;
  for (const auto& per_thread : tickets) {
    for (const JobId id : per_thread) {
      const FetchOutcome outcome = service.fetch_result(id);
      if (outcome.done()) {
        ++resolved_ok;
      } else {
        ASSERT_EQ(outcome.state, JobState::kCancelled);
        ASSERT_FALSE(outcome.error.empty());
        ++resolved_cancelled;
      }
    }
  }
  EXPECT_EQ(resolved_ok + resolved_cancelled, accepted.load());

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.accepted_jobs, accepted.load());
  EXPECT_EQ(stats.completed_jobs, resolved_ok);
  EXPECT_EQ(stats.cancelled_jobs, resolved_cancelled);
  EXPECT_EQ(stats.queued_jobs, 0u);
  EXPECT_EQ(stats.inflight_jobs, 0u);
}

TEST(SchedulerServiceStress, ConcurrentCancellersSettleEveryTicket) {
  // Submitters and cancellers race the workers for the same tickets: each
  // ticket ends exactly one of kDone/kCancelled, cancel() returning true at
  // most once per ticket, and the counters balance.
  ServiceOptions options;
  options.workers = 2;
  options.max_queued_jobs_total = 128;
  options.max_queued_jobs_per_tenant = 128;
  SchedulerService service(options);

  constexpr int kJobs = 60;
  std::vector<JobId> ids;
  ids.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    TicketSubmission sub = service.submit_job(
        "race", {quick_spec(static_cast<std::uint64_t>(7000 + i))});
    ASSERT_TRUE(sub.accepted());
    ids.push_back(sub.ticket.id);
  }

  std::atomic<std::uint64_t> cancel_wins{0};
  std::vector<std::thread> cancellers;
  for (int t = 0; t < 2; ++t) {
    cancellers.emplace_back([&service, &ids, &cancel_wins, t] {
      // Each canceller attacks a disjoint half — a cancel() that returns
      // true must be the ONLY accepted cancel for that id.
      for (std::size_t i = static_cast<std::size_t>(t); i < ids.size(); i += 2) {
        if (service.cancel(ids[i])) ++cancel_wins;
      }
    });
  }
  for (auto& th : cancellers) th.join();
  service.drain();

  std::uint64_t done = 0, cancelled = 0;
  for (const JobId id : ids) {
    const FetchOutcome outcome = service.fetch_result(id);
    if (outcome.done()) {
      ++done;
    } else {
      ASSERT_EQ(outcome.state, JobState::kCancelled);
      ++cancelled;
    }
    EXPECT_EQ(service.job_state(id), JobState::kUnknown);  // consumed
  }
  EXPECT_EQ(done + cancelled, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(cancelled, cancel_wins.load());

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed_jobs, done);
  EXPECT_EQ(stats.cancelled_jobs, cancelled);
  EXPECT_EQ(stats.queued_jobs, 0u);
  EXPECT_EQ(stats.inflight_jobs, 0u);
  service.shutdown();
}

}  // namespace
}  // namespace nowsched::service
