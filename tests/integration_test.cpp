// Cross-module integration tests: the paper's theorems checked end-to-end on
// exact game values (solver) against the published guidelines (core).
#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.h"
#include "core/closed_form.h"
#include "core/equalized.h"
#include "core/guidelines.h"
#include "solver/extract.h"
#include "solver/fast_solver.h"
#include "solver/nonadaptive_eval.h"
#include "solver/policy_eval.h"
#include "solver/reference_solver.h"

namespace nowsched {
namespace {

constexpr Ticks kC = 16;
constexpr Params kParams{kC};

double sqrt_cu(Ticks u) {
  return std::sqrt(static_cast<double>(kC) * static_cast<double>(u));
}

// ---------------------------------------------------------------------------
// Thm 5.1 and the §5.2 near-optimality claim
// ---------------------------------------------------------------------------

struct Thm51Case {
  Ticks u;
  int p;
};

class Theorem51 : public ::testing::TestWithParam<Thm51Case> {};

TEST_P(Theorem51, OptimumMeetsTheGuaranteedWorkBound) {
  // W(p)[U] >= U − (2 − 2^{1−p})√(2cU) − O(U^{1/4} + pc): the optimum
  // certainly satisfies the bound the guideline is proved to achieve.
  const auto [u, p] = GetParam();
  const auto table = solver::solve_fast(p, u, kParams);
  const double leading = bounds::adaptive_work_leading(static_cast<double>(u), p,
                                                       static_cast<double>(kC));
  const double slack = 6.0 * std::pow(static_cast<double>(u), 0.25) +
                       4.0 * static_cast<double>(p) * static_cast<double>(kC) + 8.0;
  EXPECT_GE(static_cast<double>(table.value(p, u)), leading - slack)
      << "u=" << u << " p=" << p;
}

TEST_P(Theorem51, PrintedGuidelineWithinLowOrderTermsForSmallP) {
  // §5.2: "W(Σ_a(p)[U]) deviates from optimality by only low-order additive
  // terms." The surviving text's §3.2 constants are intact for p <= 2 (they
  // are pinned by Table 2); for p >= 3 they are OCR-garbled and the printed
  // layout drifts (DESIGN.md, EXPERIMENTS.md E5) — the equalized guideline
  // below carries the claim for general p.
  const auto [u, p] = GetParam();
  if (p > 2) return;
  const auto table = solver::solve_fast(p, u, kParams);
  const AdaptiveGuidelinePolicy guideline;
  const Ticks got = solver::evaluate_policy(guideline, u, p, kParams);
  const Ticks opt = table.value(p, u);
  EXPECT_LE(got, opt);
  const double gap = static_cast<double>(opt - got);
  EXPECT_LE(gap, 1.5 * sqrt_cu(u) + 6.0 * static_cast<double>(p) * kC + 24.0)
      << "u=" << u << " p=" << p << " opt=" << opt << " got=" << got;
}

TEST_P(Theorem51, EqualizedGuidelineWithinLowOrderTermsForAllP) {
  // The §4.2 abstract guideline (equalize all interrupt impacts, realized
  // with the paper's analytic W approximation) must track the DP optimum
  // within low-order terms for EVERY p in the sweep.
  const auto [u, p] = GetParam();
  const auto table = solver::solve_fast(p, u, kParams);
  const EqualizedGuidelinePolicy guideline;
  const Ticks got = solver::evaluate_policy(guideline, u, p, kParams);
  const Ticks opt = table.value(p, u);
  EXPECT_LE(got, opt);
  const double gap = static_cast<double>(opt - got);
  EXPECT_LE(gap, 0.75 * sqrt_cu(u) + 6.0 * static_cast<double>(p) * kC + 24.0)
      << "u=" << u << " p=" << p << " opt=" << opt << " got=" << got;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Theorem51,
                         ::testing::Values(Thm51Case{1 << 12, 0}, Thm51Case{1 << 12, 1},
                                           Thm51Case{1 << 13, 1}, Thm51Case{1 << 13, 2},
                                           Thm51Case{1 << 14, 2}, Thm51Case{1 << 14, 3}));

// ---------------------------------------------------------------------------
// Adaptive vs non-adaptive separation (§3 headline comparison)
// ---------------------------------------------------------------------------

TEST(AdaptiveVsNonAdaptive, AdaptiveOptimumDominatesCommittedSchedules) {
  // W(p)[U] is an upper bound for ANY committed schedule's guaranteed work.
  const Ticks u = 1 << 13;
  const auto table = solver::solve_fast(3, u, kParams);
  for (int p = 1; p <= 3; ++p) {
    const auto sched = nonadaptive_guideline(u, p, kParams);
    const Ticks committed = solver::nonadaptive_guaranteed_work(sched, u, p, kParams);
    EXPECT_LE(committed, table.value(p, u)) << "p=" << p;
  }
}

TEST(AdaptiveVsNonAdaptive, DeficitCoefficientsOrderCorrectly) {
  // Deficit (U − W) should scale like 2√(pcU) for the non-adaptive guideline
  // and (2−2^{1−p})√(2cU) for the adaptive optimum — so the adaptive deficit
  // must be strictly smaller for every p >= 1 at large U/c.
  const Ticks u = 1 << 14;
  const auto table = solver::solve_fast(3, u, kParams);
  for (int p = 1; p <= 3; ++p) {
    const auto sched = nonadaptive_guideline(u, p, kParams);
    const Ticks na = solver::nonadaptive_guaranteed_work(sched, u, p, kParams);
    const Ticks ad = table.value(p, u);
    EXPECT_GT(ad, na) << "p=" << p;
    // Deficit ratio: exact optimal coefficient a_p (see
    // bounds::optimal_deficit_coefficient — the recurrence our DP confirms)
    // over the non-adaptive √(2p).
    const double na_deficit = static_cast<double>(u - na);
    const double ad_deficit = static_cast<double>(u - ad);
    const double predicted_ratio = bounds::optimal_deficit_coefficient(p) /
                                   std::sqrt(2.0 * static_cast<double>(p));
    EXPECT_NEAR(ad_deficit / na_deficit, predicted_ratio, 0.08) << "p=" << p;
  }
}

// ---------------------------------------------------------------------------
// Observations (a)-(c) of §4.1
// ---------------------------------------------------------------------------

TEST(Observations, MidPeriodInterruptsNeverHelpTheAdversary) {
  // Obs (a) on a small exhaustive grid: extending the adversary's options to
  // every interior tick of the chosen period does not lower the game value.
  const Ticks max_l = 220;
  const Params params{6};
  const auto standard = solver::solve_reference(2, max_l, params);
  // Recompute with mid-period options: min over x in [1, t] of V_{p-1}(L-x).
  for (int p = 1; p <= 2; ++p) {
    for (Ticks l = 0; l <= max_l; ++l) {
      Ticks best = 0;
      for (Ticks t = 1; t <= l; ++t) {
        Ticks worst_interrupt = std::numeric_limits<Ticks>::max();
        for (Ticks x = 1; x <= t; ++x) {
          worst_interrupt =
              std::min(worst_interrupt, standard.value(p - 1, l - x));
        }
        const Ticks no_int =
            positive_sub(t, params.c) + standard.value(p, l - t);
        best = std::max(best, std::min(no_int, worst_interrupt));
      }
      ASSERT_EQ(best, standard.value(p, l)) << "p=" << p << " l=" << l;
    }
  }
}

TEST(Observations, AdversaryAlwaysSpendsInterruptsWhenProductive) {
  // Obs (b): against the optimal policy with U comfortably above the
  // zero-work threshold, the best response uses every available interrupt.
  const Ticks max_l = 400;
  auto table = std::make_shared<solver::ValueTable>(
      solver::solve_reference(2, max_l, Params{8}));
  solver::OptimalPolicy policy(table);
  const auto br = solver::best_response(policy, max_l, 2, Params{8});
  int used = 0;
  for (const auto& move : br.moves) used += move.killed.has_value();
  EXPECT_EQ(used, 2);
}

TEST(Observations, InterruptedPeriodsBeginInsideTheObsCWindow) {
  // Obs (c): with p interrupts left and residual > (p+1)c, the adversary
  // interrupts a period beginning before residual − p·c.
  const Ticks max_l = 400;
  const Params params{8};
  auto table = std::make_shared<solver::ValueTable>(
      solver::solve_reference(2, max_l, params));
  solver::OptimalPolicy policy(table);
  const auto br = solver::best_response(policy, max_l, 2, params);
  Ticks l = max_l;
  int q = 2;
  for (const auto& move : br.moves) {
    if (!move.killed) break;
    const auto episode = policy.episode(l, q, params);
    if (l > (static_cast<Ticks>(q) + 1) * params.c) {
      EXPECT_LT(episode.start(*move.killed),
                l - static_cast<Ticks>(q) * params.c)
          << "residual " << l << ", q=" << q;
    }
    l = positive_sub(l, episode.end(*move.killed));
    --q;
  }
}

// ---------------------------------------------------------------------------
// Closed form vs DP (Table 2's W column)
// ---------------------------------------------------------------------------

TEST(ClosedFormVsDp, P1ScheduleIsGridOptimal) {
  const Ticks max_l = 1 << 12;
  const auto table = solver::solve_fast(1, max_l, kParams);
  for (Ticks u = 4 * kC; u <= max_l; u += 97) {
    const auto opt = optimal_p1_schedule(u, kParams);
    const Ticks closed = guaranteed_work_p1(opt.schedule, u, kParams);
    const Ticks dp = table.value(1, u);
    EXPECT_LE(closed, dp) << "u=" << u;
    // The continuous optimum rounded to the grid loses at most ~2 ticks.
    EXPECT_GE(closed, dp - 3) << "u=" << u;
  }
}

// ---------------------------------------------------------------------------
// Restarted §3.1 rule as an adaptive policy is also near optimal for p small
// ---------------------------------------------------------------------------

TEST(RestartedNonAdaptive, SandwichedBetweenCommittedAndOptimal) {
  const Ticks u = 1 << 12;
  const auto table = solver::solve_fast(2, u, kParams);
  const NonAdaptiveGuidelinePolicy restart;
  for (int p = 1; p <= 2; ++p) {
    const Ticks restart_value = solver::evaluate_policy(restart, u, p, kParams);
    const auto committed_sched = nonadaptive_guideline(u, p, kParams);
    const Ticks committed =
        solver::nonadaptive_guaranteed_work(committed_sched, u, p, kParams);
    EXPECT_LE(restart_value, table.value(p, u)) << "p=" << p;
    // Adapting (re-planning after interrupts) should not do much worse than
    // the committed rule; allow modest slack for the restart's re-floored m.
    EXPECT_GE(restart_value, committed - 2 * kC) << "p=" << p;
  }
}

}  // namespace
}  // namespace nowsched
