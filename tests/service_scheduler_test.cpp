// service::SchedulerService — the deterministic half of the service battery:
// manual-mode (workers == 0) scheduling-order tests per queue policy,
// admission/backpressure rejection paths, the JobTicket lifecycle
// (exactly-once fetch, cancel, forget), per-tenant cache quota isolation
// and live resize, drain/shutdown semantics, and stats conservation laws.
// Every assertion is an ordering or counting fact — never a timing one
// (tests/service_stress_test.cpp adds the multi-threaded TSan half).
#include "service/scheduler_service.h"

#include <gtest/gtest.h>

#include <future>
#include <stdexcept>
#include <string>
#include <vector>

#include "temp_dir.h"

namespace nowsched::service {
namespace {

// A cheap, valid scenario: closed-form policy (no solve), short lifespan.
sim::ScenarioSpec quick_spec(std::uint64_t seed) {
  sim::ScenarioSpec spec;
  spec.policy = sim::PolicyKind::kEqualized;
  spec.owner = sim::OwnerKind::kPoisson;
  spec.owner_a = 500.0;
  spec.params = Params{16};
  spec.lifespan = 512;
  spec.max_interrupts = 2;
  spec.seed = seed;
  return spec;
}

// A dp-optimal scenario — the kind that exercises the tenant's SolveCache.
// Distinct `lifespan` values produce distinct canonical solve keys.
sim::ScenarioSpec dp_spec(Ticks lifespan, std::uint64_t seed) {
  sim::ScenarioSpec spec = quick_spec(seed);
  spec.policy = sim::PolicyKind::kDpOptimal;
  spec.lifespan = lifespan;
  return spec;
}

std::vector<sim::ScenarioSpec> quick_batch(std::size_t n, std::uint64_t seed0) {
  std::vector<sim::ScenarioSpec> specs;
  for (std::size_t i = 0; i < n; ++i) specs.push_back(quick_spec(seed0 + i));
  return specs;
}

ServiceOptions manual_options(QueueKind queue, std::size_t quantum = 1) {
  ServiceOptions options;
  options.workers = 0;  // manual mode: run_next() drives deterministically
  options.queue = queue;
  options.drr_quantum = quantum;
  return options;
}

/// submit_job that must be admitted; returns the ticket.
JobTicket expect_accepted(SchedulerService& service, const std::string& tenant,
                          std::vector<sim::ScenarioSpec> specs) {
  TicketSubmission sub = service.submit_job(tenant, std::move(specs));
  EXPECT_TRUE(sub.accepted()) << to_string(sub.status) << ": " << sub.reason;
  return sub.ticket;
}

/// fetch_result that must consume a completed job; returns the result.
JobResult fetch_done(SchedulerService& service, JobId id) {
  FetchOutcome outcome = service.fetch_result(id);
  EXPECT_TRUE(outcome.done())
      << to_string(outcome.state) << ": " << outcome.error;
  return std::move(outcome.result);
}

// Checks the per-tenant and global conservation laws the stats snapshot
// promises. Holds at ANY quiescent point (and under load for the sums).
void expect_conservation(const ServiceStats& stats) {
  std::uint64_t sum_submitted = 0, sum_accepted = 0, sum_rejected = 0;
  for (const TenantStats& t : stats.tenants) {
    EXPECT_EQ(t.submitted_jobs, t.accepted_jobs + t.rejected_total()) << t.tenant;
    EXPECT_EQ(t.accepted_jobs, t.completed_jobs + t.failed_jobs +
                                   t.cancelled_jobs + t.queued_jobs +
                                   t.inflight_jobs)
        << t.tenant;
    sum_submitted += t.submitted_jobs;
    sum_accepted += t.accepted_jobs;
    sum_rejected += t.rejected_total();
  }
  EXPECT_EQ(stats.submitted_jobs, sum_submitted);
  EXPECT_EQ(stats.accepted_jobs, sum_accepted);
  EXPECT_EQ(stats.rejected_jobs, sum_rejected);
}

TEST(SchedulerService, ManualModeRunsASubmittedJobToCompletion) {
  SchedulerService service(manual_options(QueueKind::kFifo));
  TicketSubmission sub = service.submit_job("alice", quick_batch(3, 100));
  ASSERT_TRUE(sub.accepted());
  EXPECT_TRUE(sub.ticket.valid());
  EXPECT_EQ(sub.ticket.id, 1u);
  EXPECT_EQ(sub.ticket.tenant, "alice");
  EXPECT_EQ(service.job_state(sub.ticket.id), JobState::kQueued);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queued_jobs, 1u);
  ASSERT_NE(stats.tenant("alice"), nullptr);
  EXPECT_EQ(stats.tenant("alice")->pending_scenarios, 3u);

  EXPECT_TRUE(service.run_next());
  EXPECT_FALSE(service.run_next());  // queue is empty now
  EXPECT_EQ(service.job_state(sub.ticket.id), JobState::kDone);

  JobResult result = fetch_done(service, sub.ticket.id);
  EXPECT_EQ(result.tenant, "alice");
  EXPECT_EQ(result.job_id, 1u);
  EXPECT_EQ(result.completion_index, 0u);
  EXPECT_EQ(result.batch.per_scenario.size(), 3u);
  EXPECT_GT(result.batch.aggregate.lifespan_used, 0);

  stats = service.stats();
  EXPECT_EQ(stats.queued_jobs, 0u);
  EXPECT_EQ(stats.tenant("alice")->completed_jobs, 1u);
  EXPECT_EQ(stats.tenant("alice")->completed_scenarios, 3u);
  expect_conservation(stats);
}

TEST(SchedulerService, FifoCompletionOrderIsAdmissionOrder) {
  SchedulerService service(manual_options(QueueKind::kFifo));
  std::vector<JobTicket> tickets;
  tickets.push_back(expect_accepted(service, "a", quick_batch(1, 1)));
  tickets.push_back(expect_accepted(service, "b", quick_batch(1, 2)));
  tickets.push_back(expect_accepted(service, "a", quick_batch(1, 3)));
  tickets.push_back(expect_accepted(service, "c", quick_batch(1, 4)));
  service.drain();
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    EXPECT_EQ(fetch_done(service, tickets[i].id).completion_index, i) << i;
  }
}

TEST(SchedulerService, DrrInterleavesEqualCostTenantsRoundRobin) {
  // A bursts three 1-spec jobs before B's three: DRR still alternates
  // A B A B A B (quantum 1) — the service-level replay of the queue test.
  SchedulerService service(manual_options(QueueKind::kDeficitRoundRobin, 1));
  std::vector<JobTicket> a_tickets, b_tickets;
  for (int i = 0; i < 3; ++i) {
    a_tickets.push_back(expect_accepted(service, "a", quick_batch(1, 10 + i)));
  }
  for (int i = 0; i < 3; ++i) {
    b_tickets.push_back(expect_accepted(service, "b", quick_batch(1, 20 + i)));
  }
  service.drain();
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(fetch_done(service, a_tickets[i].id).completion_index, 2 * i) << i;
    EXPECT_EQ(fetch_done(service, b_tickets[i].id).completion_index, 2 * i + 1)
        << i;
  }
}

TEST(SchedulerService, DrrMetersByScenarioCostNotJobCount) {
  // A: two 3-scenario jobs; B: six 1-scenario jobs; quantum 1. Expected
  // completion order (hand-traced DRR): B B A B B B A B — indices below.
  SchedulerService service(manual_options(QueueKind::kDeficitRoundRobin, 1));
  std::vector<JobTicket> a_tickets, b_tickets;
  a_tickets.push_back(expect_accepted(service, "a", quick_batch(3, 100)));
  a_tickets.push_back(expect_accepted(service, "a", quick_batch(3, 200)));
  for (int i = 0; i < 6; ++i) {
    b_tickets.push_back(expect_accepted(service, "b", quick_batch(1, 300 + i)));
  }
  service.drain();
  EXPECT_EQ(fetch_done(service, a_tickets[0].id).completion_index, 2u);
  EXPECT_EQ(fetch_done(service, a_tickets[1].id).completion_index, 6u);
  const std::vector<std::uint64_t> b_expected = {0, 1, 3, 4, 5, 7};
  for (std::size_t i = 0; i < b_tickets.size(); ++i) {
    EXPECT_EQ(fetch_done(service, b_tickets[i].id).completion_index,
              b_expected[i])
        << i;
  }
}

TEST(SchedulerService, FifoIsTenantBlindUnderTheSameSkew) {
  // Same submission pattern as the DRR cost test, FIFO queue: A's burst
  // runs first in admission order — the unfairness DRR exists to fix.
  SchedulerService service(manual_options(QueueKind::kFifo));
  std::vector<JobTicket> tickets;
  tickets.push_back(expect_accepted(service, "a", quick_batch(3, 100)));
  tickets.push_back(expect_accepted(service, "a", quick_batch(3, 200)));
  for (int i = 0; i < 6; ++i) {
    tickets.push_back(expect_accepted(service, "b", quick_batch(1, 300 + i)));
  }
  service.drain();
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    EXPECT_EQ(fetch_done(service, tickets[i].id).completion_index, i) << i;
  }
}

TEST(SchedulerService, TenantQueueDepthLimitRejectsWithReason) {
  ServiceOptions options = manual_options(QueueKind::kFifo);
  options.max_queued_jobs_per_tenant = 2;
  SchedulerService service(options);
  (void)expect_accepted(service, "a", quick_batch(1, 1));
  (void)expect_accepted(service, "a", quick_batch(1, 2));

  TicketSubmission rejected = service.submit_job("a", quick_batch(1, 3));
  EXPECT_EQ(rejected.status, SubmitStatus::kQueueFullTenant);
  EXPECT_TRUE(is_backpressure(rejected.status));
  EXPECT_FALSE(rejected.reason.empty());
  EXPECT_FALSE(rejected.ticket.valid());
  EXPECT_EQ(rejected.ticket.id, 0u);

  // Another tenant is unaffected by a's limit.
  (void)expect_accepted(service, "b", quick_batch(1, 4));

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.tenant("a")->rejected_tenant_full, 1u);
  EXPECT_EQ(stats.tenant("a")->submitted_jobs, 3u);
  EXPECT_EQ(stats.tenant("a")->accepted_jobs, 2u);
  expect_conservation(stats);
  service.drain();
}

TEST(SchedulerService, GlobalQueueDepthLimitRejectsAnyTenant) {
  ServiceOptions options = manual_options(QueueKind::kFifo);
  options.max_queued_jobs_total = 2;
  SchedulerService service(options);
  (void)expect_accepted(service, "a", quick_batch(1, 1));
  (void)expect_accepted(service, "b", quick_batch(1, 2));

  TicketSubmission rejected = service.submit_job("c", quick_batch(1, 3));
  EXPECT_EQ(rejected.status, SubmitStatus::kQueueFullGlobal);
  EXPECT_TRUE(is_backpressure(rejected.status));
  EXPECT_EQ(service.stats().tenant("c")->rejected_global_full, 1u);
  expect_conservation(service.stats());
  service.drain();
}

TEST(SchedulerService, ScenarioBudgetThrottlesBigBatches) {
  ServiceOptions options = manual_options(QueueKind::kFifo);
  options.max_pending_scenarios_per_tenant = 4;
  SchedulerService service(options);
  (void)expect_accepted(service, "a", quick_batch(3, 1));

  TicketSubmission throttled = service.submit_job("a", quick_batch(3, 10));
  EXPECT_EQ(throttled.status, SubmitStatus::kThrottled);
  EXPECT_TRUE(is_backpressure(throttled.status));
  // A batch that still fits the budget is fine (3 pending + 1 <= 4)...
  (void)expect_accepted(service, "a", quick_batch(1, 20));
  // ...and now the budget is exactly exhausted.
  EXPECT_EQ(service.submit_job("a", quick_batch(1, 30)).status,
            SubmitStatus::kThrottled);
  EXPECT_EQ(service.stats().tenant("a")->rejected_throttled, 2u);
  service.drain();
}

TEST(SchedulerService, BackpressureRetrySucceedsAfterCapacityFrees) {
  ServiceOptions options = manual_options(QueueKind::kFifo);
  options.max_queued_jobs_per_tenant = 1;
  SchedulerService service(options);
  (void)expect_accepted(service, "a", quick_batch(1, 1));
  TicketSubmission rejected = service.submit_job("a", quick_batch(1, 2));
  ASSERT_TRUE(is_backpressure(rejected.status));

  ASSERT_TRUE(service.run_next());  // frees the tenant's queue slot
  const JobTicket retry = expect_accepted(service, "a", quick_batch(1, 2));
  service.drain();
  EXPECT_EQ(fetch_done(service, retry.id).completion_index, 1u);
  expect_conservation(service.stats());
}

TEST(SchedulerService, InvalidScenarioRejectedAtAdmission) {
  SchedulerService service(manual_options(QueueKind::kFifo));

  std::vector<sim::ScenarioSpec> bad = quick_batch(2, 1);
  bad[1].params = Params{0};  // invalid setup cost
  TicketSubmission invalid = service.submit_job("a", std::move(bad));
  EXPECT_EQ(invalid.status, SubmitStatus::kInvalidScenario);
  EXPECT_FALSE(is_backpressure(invalid.status));
  EXPECT_NE(invalid.reason.find("#1"), std::string::npos) << invalid.reason;

  TicketSubmission empty = service.submit_job("a", {});
  EXPECT_EQ(empty.status, SubmitStatus::kInvalidScenario);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queued_jobs, 0u);  // nothing poisoned the queue
  EXPECT_EQ(stats.tenant("a")->rejected_invalid, 2u);
  expect_conservation(stats);
}

TEST(SchedulerService, EmptyTenantIdIsACallerBug) {
  SchedulerService service(manual_options(QueueKind::kFifo));
  EXPECT_THROW((void)service.submit_job("", quick_batch(1, 1)),
               std::invalid_argument);
  EXPECT_THROW(service.set_tenant_quota("", 1024), std::invalid_argument);
}

TEST(SchedulerService, RunNextThrowsWhenServiceOwnsWorkers) {
  ServiceOptions options;
  options.workers = 1;
  SchedulerService service(options);
  EXPECT_THROW((void)service.run_next(), std::logic_error);
  service.shutdown();
}

// ---------------------------------------------------------------------------
// JobTicket lifecycle: exactly-once fetch, probes, cancel, forget
// ---------------------------------------------------------------------------

TEST(SchedulerService, FetchConsumesTheOutcomeExactlyOnce) {
  SchedulerService service(manual_options(QueueKind::kFifo));
  const JobTicket ticket = expect_accepted(service, "a", quick_batch(2, 1));
  ASSERT_TRUE(service.run_next());

  const JobResult result = fetch_done(service, ticket.id);
  EXPECT_EQ(result.batch.per_scenario.size(), 2u);

  // The first terminal fetch released the record: the id is gone.
  EXPECT_EQ(service.job_state(ticket.id), JobState::kUnknown);
  const FetchOutcome again = service.fetch_result(ticket.id);
  EXPECT_EQ(again.state, JobState::kUnknown);
  EXPECT_FALSE(again.done());

  // Completion counters are untouched by the release.
  EXPECT_EQ(service.stats().tenant("a")->completed_jobs, 1u);
  expect_conservation(service.stats());
}

TEST(SchedulerService, NonWaitingFetchProbesWithoutConsuming) {
  SchedulerService service(manual_options(QueueKind::kFifo));
  const JobTicket ticket = expect_accepted(service, "a", quick_batch(1, 1));

  // Probe while queued: reports kQueued, consumes nothing.
  const FetchOutcome probe = service.fetch_result(ticket.id, /*wait=*/false);
  EXPECT_EQ(probe.state, JobState::kQueued);
  EXPECT_EQ(service.job_state(ticket.id), JobState::kQueued);

  ASSERT_TRUE(service.run_next());
  EXPECT_TRUE(service.fetch_result(ticket.id, /*wait=*/false).done());
  EXPECT_EQ(service.job_state(ticket.id), JobState::kUnknown);
}

TEST(SchedulerService, WaitingFetchBlocksUntilWorkersFinishTheJob) {
  ServiceOptions options;
  options.workers = 2;
  SchedulerService service(options);
  const JobTicket ticket = expect_accepted(service, "a", quick_batch(3, 1));
  // No drain: the fetch itself is the synchronization point.
  const JobResult result = fetch_done(service, ticket.id);
  EXPECT_EQ(result.batch.per_scenario.size(), 3u);
  EXPECT_EQ(service.job_state(ticket.id), JobState::kUnknown);
  service.shutdown();
}

TEST(SchedulerService, UnknownIdsReadUnknownEverywhere) {
  SchedulerService service(manual_options(QueueKind::kFifo));
  EXPECT_EQ(service.job_state(0), JobState::kUnknown);
  EXPECT_EQ(service.job_state(999), JobState::kUnknown);
  EXPECT_EQ(service.fetch_result(999).state, JobState::kUnknown);
  EXPECT_FALSE(service.cancel(999));
  EXPECT_FALSE(service.forget(999));
}

TEST(SchedulerService, CancelQueuedJobSettlesAsCancelledWithConservation) {
  SchedulerService service(manual_options(QueueKind::kFifo));
  const JobTicket first = expect_accepted(service, "a", quick_batch(1, 1));
  const JobTicket victim = expect_accepted(service, "a", quick_batch(2, 2));
  const JobTicket last = expect_accepted(service, "b", quick_batch(1, 3));

  ASSERT_TRUE(service.cancel(victim.id));
  // Visible immediately, before the queue entry is lazily removed.
  EXPECT_EQ(service.job_state(victim.id), JobState::kCancelled);
  EXPECT_FALSE(service.cancel(victim.id));  // second cancel is a no-op

  service.drain();

  // The cancelled job never executed; its neighbours completed in order.
  EXPECT_EQ(fetch_done(service, first.id).completion_index, 0u);
  EXPECT_EQ(fetch_done(service, last.id).completion_index, 1u);
  FetchOutcome cancelled = service.fetch_result(victim.id);
  EXPECT_EQ(cancelled.state, JobState::kCancelled);
  EXPECT_FALSE(cancelled.error.empty());
  EXPECT_EQ(service.job_state(victim.id), JobState::kUnknown);  // consumed

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed_jobs, 2u);
  EXPECT_EQ(stats.cancelled_jobs, 1u);
  EXPECT_EQ(stats.queued_jobs, 0u);
  EXPECT_EQ(stats.tenant("a")->pending_scenarios, 0u);
  expect_conservation(stats);
}

TEST(SchedulerService, CancelRefusesCompletedJobs) {
  SchedulerService service(manual_options(QueueKind::kFifo));
  const JobTicket ticket = expect_accepted(service, "a", quick_batch(1, 1));
  ASSERT_TRUE(service.run_next());
  EXPECT_FALSE(service.cancel(ticket.id));  // already terminal
  EXPECT_EQ(service.job_state(ticket.id), JobState::kDone);
  (void)fetch_done(service, ticket.id);
}

TEST(SchedulerService, ForgetReleasesRecordsInEveryState) {
  SchedulerService service(manual_options(QueueKind::kFifo));

  // Forget a QUEUED job: it is cancelled (visible until the queue entry is
  // lazily settled) and the record is erased at settlement, not handed out.
  const JobTicket queued = expect_accepted(service, "a", quick_batch(1, 1));
  EXPECT_TRUE(service.forget(queued.id));
  EXPECT_EQ(service.job_state(queued.id), JobState::kCancelled);
  while (service.run_next()) {
  }
  EXPECT_EQ(service.job_state(queued.id), JobState::kUnknown);

  // Forget a TERMINAL job: the record is dropped without a fetch.
  const JobTicket done = expect_accepted(service, "a", quick_batch(1, 2));
  ASSERT_TRUE(service.run_next());
  EXPECT_TRUE(service.forget(done.id));
  EXPECT_EQ(service.job_state(done.id), JobState::kUnknown);
  EXPECT_EQ(service.fetch_result(done.id).state, JobState::kUnknown);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cancelled_jobs, 1u);  // the forgotten queued job
  EXPECT_EQ(stats.completed_jobs, 1u);  // the forgotten done job still counts
  EXPECT_EQ(stats.queued_jobs, 0u);
  expect_conservation(stats);
}

TEST(SchedulerService, CancelledQueuedJobFetchIsExactlyOnceBeforeSettlement) {
  SchedulerService service(manual_options(QueueKind::kFifo));
  const JobTicket ticket = expect_accepted(service, "a", quick_batch(1, 1));
  ASSERT_TRUE(service.cancel(ticket.id));

  // First fetch before the pop path settles the record: this IS the fetch.
  const FetchOutcome first = service.fetch_result(ticket.id);
  EXPECT_EQ(first.state, JobState::kCancelled);
  EXPECT_FALSE(first.error.empty());

  // A second fetch of the still-unsettled record must read kUnknown — the
  // same answer it will give once settlement erases the record.
  EXPECT_EQ(service.fetch_result(ticket.id).state, JobState::kUnknown);

  // forget() consumes the fetch too: a later fetch may not resurrect the
  // cancelled outcome while the queue entry lingers.
  const JobTicket forgotten = expect_accepted(service, "a", quick_batch(1, 2));
  EXPECT_TRUE(service.forget(forgotten.id));
  EXPECT_EQ(service.fetch_result(forgotten.id).state, JobState::kUnknown);

  while (service.run_next()) {
  }
  EXPECT_EQ(service.fetch_result(ticket.id).state, JobState::kUnknown);
  expect_conservation(service.stats());
}

// ---------------------------------------------------------------------------
// Shutdown semantics
// ---------------------------------------------------------------------------

TEST(SchedulerService, ShutdownDrainCompletesQueuedWork) {
  SchedulerService service(manual_options(QueueKind::kFifo));
  const JobTicket a = expect_accepted(service, "a", quick_batch(1, 1));
  const JobTicket b = expect_accepted(service, "b", quick_batch(2, 2));
  service.shutdown(SchedulerService::StopMode::kDrain);

  EXPECT_EQ(fetch_done(service, a.id).completion_index, 0u);
  EXPECT_EQ(fetch_done(service, b.id).batch.per_scenario.size(), 2u);

  TicketSubmission late = service.submit_job("a", quick_batch(1, 3));
  EXPECT_EQ(late.status, SubmitStatus::kShuttingDown);
  EXPECT_FALSE(is_backpressure(late.status));

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed_jobs, 2u);
  EXPECT_EQ(stats.tenant("a")->rejected_shutdown, 1u);
  expect_conservation(stats);
}

TEST(SchedulerService, ShutdownCancelSettlesQueuedTickets) {
  SchedulerService service(manual_options(QueueKind::kFifo));
  const JobTicket done = expect_accepted(service, "a", quick_batch(1, 1));
  ASSERT_TRUE(service.run_next());
  const JobTicket q1 = expect_accepted(service, "a", quick_batch(1, 2));
  const JobTicket q2 = expect_accepted(service, "b", quick_batch(1, 3));
  service.shutdown(SchedulerService::StopMode::kCancelQueued);

  EXPECT_EQ(fetch_done(service, done.id).completion_index, 0u);  // work stands
  for (const JobId id : {q1.id, q2.id}) {
    const FetchOutcome outcome = service.fetch_result(id);
    EXPECT_EQ(outcome.state, JobState::kCancelled);
    EXPECT_FALSE(outcome.error.empty());
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed_jobs, 1u);
  EXPECT_EQ(stats.cancelled_jobs, 2u);
  EXPECT_EQ(stats.queued_jobs, 0u);
  expect_conservation(stats);

  service.shutdown();  // idempotent, any mode
}

TEST(SchedulerService, WorkerModeCompletesEverythingOnDrain) {
  ServiceOptions options;
  options.workers = 3;
  SchedulerService service(options);
  std::vector<JobTicket> tickets;
  for (int i = 0; i < 12; ++i) {
    tickets.push_back(expect_accepted(service, i % 2 == 0 ? "even" : "odd",
                                      quick_batch(2, 1000 + i)));
  }
  service.drain();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed_jobs, 12u);
  EXPECT_EQ(stats.queued_jobs, 0u);
  EXPECT_EQ(stats.inflight_jobs, 0u);
  expect_conservation(stats);

  // completion_index values are a permutation of 0..11 (each assigned once
  // under the service lock) even though worker timing is nondeterministic.
  std::vector<bool> seen(tickets.size(), false);
  for (const JobTicket& ticket : tickets) {
    const JobResult result = fetch_done(service, ticket.id);
    ASSERT_LT(result.completion_index, seen.size());
    EXPECT_FALSE(seen[result.completion_index]);
    seen[result.completion_index] = true;
    EXPECT_EQ(result.batch.per_scenario.size(), 2u);
  }
  service.shutdown();
}

// ---------------------------------------------------------------------------
// Deprecated future-based shim (one release — see DESIGN.md §11)
// ---------------------------------------------------------------------------

TEST(SchedulerService, DeprecatedSubmitShimStillResolvesFutures) {
  SchedulerService service(manual_options(QueueKind::kFifo));
  Submission sub = service.submit("legacy", quick_batch(2, 1));
  ASSERT_TRUE(sub.accepted());
  EXPECT_TRUE(sub.result.valid());
  ASSERT_TRUE(service.run_next());
  const JobResult result = sub.result.get();
  EXPECT_EQ(result.tenant, "legacy");
  EXPECT_EQ(result.batch.per_scenario.size(), 2u);

  // Shim submissions are NOT ticketed: the handle API never learns the id,
  // so nothing leaks when the future is the only consumer.
  EXPECT_EQ(service.job_state(sub.job_id), JobState::kUnknown);

  // Cancel-queued shutdown surfaces as a broken future, as it always did.
  Submission cancelled = service.submit("legacy", quick_batch(1, 2));
  ASSERT_TRUE(cancelled.accepted());
  service.shutdown(SchedulerService::StopMode::kCancelQueued);
  EXPECT_THROW((void)cancelled.result.get(), std::runtime_error);
  expect_conservation(service.stats());
}

// ---------------------------------------------------------------------------
// Cache quotas and stats
// ---------------------------------------------------------------------------

TEST(SchedulerService, QuotaIsolationHostileTenantCannotEvictQuietTenant) {
  ServiceOptions options = manual_options(QueueKind::kFifo);
  options.tenant_cache_shards = 1;            // one shard: eviction observable
  options.default_tenant_quota_bytes = 6000;  // holds ~1 of the hog's tables
  SchedulerService service(options);

  // quiet warms its cache with one dp table...
  (void)expect_accepted(service, "quiet", {dp_spec(512, 1)});
  service.drain();

  // ...then hog churns through many DISTINCT tables inside its own quota.
  for (int i = 0; i < 6; ++i) {
    (void)expect_accepted(service, "hog", {dp_spec(512 + 128 * i, 50 + i)});
  }
  service.drain();

  // quiet re-runs the same contract: must be a pure cache hit.
  (void)expect_accepted(service, "quiet", {dp_spec(512, 2)});
  service.drain();

  const ServiceStats stats = service.stats();
  const TenantStats* quiet = stats.tenant("quiet");
  const TenantStats* hog = stats.tenant("hog");
  ASSERT_NE(quiet, nullptr);
  ASSERT_NE(hog, nullptr);
  EXPECT_EQ(quiet->cache.misses, 1u);  // second run re-used the table
  EXPECT_EQ(quiet->cache.hits, 1u);
  EXPECT_EQ(quiet->cache.evictions, 0u);   // hog's churn never touched quiet
  EXPECT_GT(hog->cache.evictions, 0u);     // hog really did churn
  EXPECT_LE(hog->cache.resident_bytes, quiet->cache.resident_bytes * 2 + 6000);
}

TEST(SchedulerService, ZeroQuotaTenantStillCompletesJobs) {
  ServiceOptions options = manual_options(QueueKind::kFifo);
  options.tenant_cache_shards = 1;
  SchedulerService service(options);
  service.set_tenant_quota("z", 0);

  for (int i = 0; i < 3; ++i) {
    (void)expect_accepted(service, "z", {dp_spec(256 + 64 * i, 7 + i)});
  }
  service.drain();

  const ServiceStats stats = service.stats();  // keep the snapshot alive
  const TenantStats* z = stats.tenant("z");
  ASSERT_NE(z, nullptr);
  EXPECT_EQ(z->quota_bytes, 0u);
  EXPECT_EQ(z->completed_jobs, 3u);
  // Keep-newest degrades a zero quota to one table per shard, never zero.
  EXPECT_EQ(z->cache.entries, 1u);
  EXPECT_GE(z->cache.evictions, 2u);
}

TEST(SchedulerService, QuotaResizeShrinksLiveCacheAndGrowKeepsTables) {
  ServiceOptions options = manual_options(QueueKind::kFifo);
  options.tenant_cache_shards = 1;
  options.default_tenant_quota_bytes = 1u << 20;  // roomy: all tables resident
  SchedulerService service(options);

  for (int i = 0; i < 4; ++i) {
    (void)expect_accepted(service, "t", {dp_spec(256 + 128 * i, 90 + i)});
  }
  service.drain();
  const std::size_t resident_before = service.stats().tenant("t")->cache.resident_bytes;
  EXPECT_EQ(service.stats().tenant("t")->cache.entries, 4u);

  service.set_tenant_quota("t", 1);  // shrink: evict down, keep newest
  const ServiceStats shrunk = service.stats();  // keep the snapshot alive
  const TenantStats* after = shrunk.tenant("t");
  EXPECT_EQ(after->quota_bytes, 1u);
  EXPECT_EQ(after->cache.entries, 1u);
  EXPECT_LT(after->cache.resident_bytes, resident_before);

  service.set_tenant_quota("t", 1u << 20);  // grow: nothing more evicted
  EXPECT_EQ(service.stats().tenant("t")->cache.entries, 1u);
  EXPECT_EQ(service.stats().tenant("t")->cache.evictions, 3u);
}

TEST(SchedulerService, LatencyStatsCountCompletionsAndStayOrdered) {
  ServiceOptions options = manual_options(QueueKind::kFifo);
  options.latency_window = 4;  // smaller than the completion count
  SchedulerService service(options);
  for (int i = 0; i < 6; ++i) {
    (void)expect_accepted(service, "a", quick_batch(1, 500 + i));
  }
  service.drain();

  const ServiceStats stats = service.stats();  // keep the snapshot alive
  const TenantStats* a = stats.tenant("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->completed_jobs, 6u);
  // The ring keeps the last `latency_window` samples; only ORDER is
  // asserted about the values themselves (deflake discipline).
  EXPECT_EQ(a->latency.count, 4u);
  EXPECT_LE(a->latency.p50_ms, a->latency.p90_ms);
  EXPECT_LE(a->latency.p90_ms, a->latency.p99_ms);
  EXPECT_LE(a->latency.p99_ms, a->latency.max_ms);
  EXPECT_GE(a->latency.p50_ms, 0.0);
}

TEST(SchedulerService, StatsListsTenantsSortedAndSumsMatch) {
  SchedulerService service(manual_options(QueueKind::kFifo));
  (void)expect_accepted(service, "zeta", quick_batch(1, 1));
  (void)expect_accepted(service, "alpha", quick_batch(2, 2));
  (void)expect_accepted(service, "mid", quick_batch(3, 3));
  service.drain();

  const ServiceStats stats = service.stats();
  ASSERT_EQ(stats.tenants.size(), 3u);
  EXPECT_EQ(stats.tenants[0].tenant, "alpha");
  EXPECT_EQ(stats.tenants[1].tenant, "mid");
  EXPECT_EQ(stats.tenants[2].tenant, "zeta");
  EXPECT_EQ(stats.completed_scenarios, 6u);
  EXPECT_EQ(stats.queue_policy, "fifo");
  EXPECT_EQ(stats.workers, 0u);
  expect_conservation(stats);
}

// ---------------------------------------------------------------------------
// Shared persistent store: one warm mount beneath every tenant's cache
// ---------------------------------------------------------------------------

TEST(SchedulerService, SharedStoreServesAllTenantsAboveTheirPrivateQuotas) {
  nowsched::testing::TempDir dir("svc-store");
  ServiceOptions options = manual_options(QueueKind::kFifo);
  options.shared_store_dir = dir.str();
  SchedulerService service(options);
  ASSERT_NE(service.shared_store(), nullptr);

  // Tenant a solves a dp table — its fresh solve spills to the shared store.
  (void)expect_accepted(service, "a", {dp_spec(512, 1)});
  service.drain();

  // Tenant b runs the same contract: its PRIVATE cache is cold (no
  // cross-tenant RAM sharing — isolation is intact), but the shared store
  // converts its would-be solve into a mapped read.
  (void)expect_accepted(service, "b", {dp_spec(512, 2)});
  service.drain();

  const ServiceStats stats = service.stats();
  const TenantStats* a = stats.tenant("a");
  const TenantStats* b = stats.tenant("b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->cache.misses, 1u);
  EXPECT_EQ(a->cache.spills, 1u);
  EXPECT_EQ(a->cache.store_hits, 0u);
  EXPECT_EQ(b->cache.misses, 1u);       // private caches stay isolated...
  EXPECT_EQ(b->cache.store_hits, 1u);   // ...but the store answered the miss
  EXPECT_EQ(b->cache.spills, 0u);       // a store hit is never re-spilled
  EXPECT_EQ(service.shared_store()->stats().entries, 1u);
}

TEST(SchedulerService, ResultsAreBitIdenticalWithAndWithoutTheSharedStore) {
  // The store changes WHO supplies a table, never what the simulation
  // computes: identical per-scenario metrics with no store, with a cold
  // store, and with a pre-warmed store.
  const std::vector<sim::ScenarioSpec> batch = {
      dp_spec(512, 11), dp_spec(640, 12), dp_spec(512, 13)};

  auto run = [&batch](const std::string& store_dir) {
    ServiceOptions options = manual_options(QueueKind::kFifo);
    options.shared_store_dir = store_dir;
    SchedulerService service(options);
    const JobTicket ticket = expect_accepted(service, "t", batch);
    service.drain();
    return fetch_done(service, ticket.id);
  };

  nowsched::testing::TempDir dir("svc-bitid");
  const JobResult no_store = run("");
  const JobResult cold_store = run(dir.str());   // bakes the store
  const JobResult warm_store = run(dir.str());   // served from the store

  ASSERT_EQ(no_store.batch.per_scenario.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const sim::SessionMetrics& base = no_store.batch.per_scenario[i];
    const sim::SessionMetrics& cold = cold_store.batch.per_scenario[i];
    const sim::SessionMetrics& warm = warm_store.batch.per_scenario[i];
    EXPECT_EQ(base.banked_work, cold.banked_work) << i;
    EXPECT_EQ(base.banked_work, warm.banked_work) << i;
    EXPECT_EQ(base.task_work, cold.task_work) << i;
    EXPECT_EQ(base.task_work, warm.task_work) << i;
    EXPECT_EQ(base.lost_work, cold.lost_work) << i;
    EXPECT_EQ(base.lost_work, warm.lost_work) << i;
    EXPECT_EQ(base.interrupts, cold.interrupts) << i;
    EXPECT_EQ(base.interrupts, warm.interrupts) << i;
  }
}

TEST(SchedulerService, ReadOnlySharedStoreMountRequiresBakedDirectory) {
  ServiceOptions options = manual_options(QueueKind::kFifo);
  options.shared_store_dir = "/nonexistent/nowsched-store";
  options.shared_store_readonly = true;
  // Misconfiguration surfaces at construction, not as per-job failures.
  EXPECT_THROW(SchedulerService{options}, std::runtime_error);
}

}  // namespace
}  // namespace nowsched::service
