// service::SchedulerService — the deterministic half of the service battery:
// manual-mode (workers == 0) scheduling-order tests per queue policy,
// admission/backpressure rejection paths, per-tenant cache quota isolation
// and live resize, drain/shutdown semantics, and stats conservation laws.
// Every assertion is an ordering or counting fact — never a timing one
// (tests/service_stress_test.cpp adds the multi-threaded TSan half).
#include "service/scheduler_service.h"

#include <gtest/gtest.h>

#include <future>
#include <stdexcept>
#include <string>
#include <vector>

#include "temp_dir.h"

namespace nowsched::service {
namespace {

// A cheap, valid scenario: closed-form policy (no solve), short lifespan.
sim::ScenarioSpec quick_spec(std::uint64_t seed) {
  sim::ScenarioSpec spec;
  spec.policy = sim::PolicyKind::kEqualized;
  spec.owner = sim::OwnerKind::kPoisson;
  spec.owner_a = 500.0;
  spec.params = Params{16};
  spec.lifespan = 512;
  spec.max_interrupts = 2;
  spec.seed = seed;
  return spec;
}

// A dp-optimal scenario — the kind that exercises the tenant's SolveCache.
// Distinct `lifespan` values produce distinct canonical solve keys.
sim::ScenarioSpec dp_spec(Ticks lifespan, std::uint64_t seed) {
  sim::ScenarioSpec spec = quick_spec(seed);
  spec.policy = sim::PolicyKind::kDpOptimal;
  spec.lifespan = lifespan;
  return spec;
}

std::vector<sim::ScenarioSpec> quick_batch(std::size_t n, std::uint64_t seed0) {
  std::vector<sim::ScenarioSpec> specs;
  for (std::size_t i = 0; i < n; ++i) specs.push_back(quick_spec(seed0 + i));
  return specs;
}

ServiceOptions manual_options(QueueKind queue, std::size_t quantum = 1) {
  ServiceOptions options;
  options.workers = 0;  // manual mode: run_next() drives deterministically
  options.queue = queue;
  options.drr_quantum = quantum;
  return options;
}

// Checks the per-tenant and global conservation laws the stats snapshot
// promises. Holds at ANY quiescent point (and under load for the sums).
void expect_conservation(const ServiceStats& stats) {
  std::uint64_t sum_submitted = 0, sum_accepted = 0, sum_rejected = 0;
  for (const TenantStats& t : stats.tenants) {
    EXPECT_EQ(t.submitted_jobs, t.accepted_jobs + t.rejected_total()) << t.tenant;
    EXPECT_EQ(t.accepted_jobs, t.completed_jobs + t.failed_jobs +
                                   t.cancelled_jobs + t.queued_jobs +
                                   t.inflight_jobs)
        << t.tenant;
    sum_submitted += t.submitted_jobs;
    sum_accepted += t.accepted_jobs;
    sum_rejected += t.rejected_total();
  }
  EXPECT_EQ(stats.submitted_jobs, sum_submitted);
  EXPECT_EQ(stats.accepted_jobs, sum_accepted);
  EXPECT_EQ(stats.rejected_jobs, sum_rejected);
}

TEST(SchedulerService, ManualModeRunsASubmittedJobToCompletion) {
  SchedulerService service(manual_options(QueueKind::kFifo));
  Submission sub = service.submit("alice", quick_batch(3, 100));
  ASSERT_TRUE(sub.accepted());
  EXPECT_EQ(sub.job_id, 1u);
  EXPECT_TRUE(sub.result.valid());

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queued_jobs, 1u);
  ASSERT_NE(stats.tenant("alice"), nullptr);
  EXPECT_EQ(stats.tenant("alice")->pending_scenarios, 3u);

  EXPECT_TRUE(service.run_next());
  EXPECT_FALSE(service.run_next());  // queue is empty now

  JobResult result = sub.result.get();
  EXPECT_EQ(result.tenant, "alice");
  EXPECT_EQ(result.job_id, 1u);
  EXPECT_EQ(result.completion_index, 0u);
  EXPECT_EQ(result.batch.per_scenario.size(), 3u);
  EXPECT_GT(result.batch.aggregate.lifespan_used, 0);

  stats = service.stats();
  EXPECT_EQ(stats.queued_jobs, 0u);
  EXPECT_EQ(stats.tenant("alice")->completed_jobs, 1u);
  EXPECT_EQ(stats.tenant("alice")->completed_scenarios, 3u);
  expect_conservation(stats);
}

TEST(SchedulerService, FifoCompletionOrderIsAdmissionOrder) {
  SchedulerService service(manual_options(QueueKind::kFifo));
  std::vector<Submission> subs;
  subs.push_back(service.submit("a", quick_batch(1, 1)));
  subs.push_back(service.submit("b", quick_batch(1, 2)));
  subs.push_back(service.submit("a", quick_batch(1, 3)));
  subs.push_back(service.submit("c", quick_batch(1, 4)));
  service.drain();
  for (std::size_t i = 0; i < subs.size(); ++i) {
    EXPECT_EQ(subs[i].result.get().completion_index, i) << i;
  }
}

TEST(SchedulerService, DrrInterleavesEqualCostTenantsRoundRobin) {
  // A bursts three 1-spec jobs before B's three: DRR still alternates
  // A B A B A B (quantum 1) — the service-level replay of the queue test.
  SchedulerService service(manual_options(QueueKind::kDeficitRoundRobin, 1));
  std::vector<Submission> a_subs, b_subs;
  for (int i = 0; i < 3; ++i) a_subs.push_back(service.submit("a", quick_batch(1, 10 + i)));
  for (int i = 0; i < 3; ++i) b_subs.push_back(service.submit("b", quick_batch(1, 20 + i)));
  service.drain();
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(a_subs[i].result.get().completion_index, 2 * i) << i;
    EXPECT_EQ(b_subs[i].result.get().completion_index, 2 * i + 1) << i;
  }
}

TEST(SchedulerService, DrrMetersByScenarioCostNotJobCount) {
  // A: two 3-scenario jobs; B: six 1-scenario jobs; quantum 1. Expected
  // completion order (hand-traced DRR): B B A B B B A B — indices below.
  SchedulerService service(manual_options(QueueKind::kDeficitRoundRobin, 1));
  std::vector<Submission> a_subs, b_subs;
  a_subs.push_back(service.submit("a", quick_batch(3, 100)));
  a_subs.push_back(service.submit("a", quick_batch(3, 200)));
  for (int i = 0; i < 6; ++i) b_subs.push_back(service.submit("b", quick_batch(1, 300 + i)));
  service.drain();
  EXPECT_EQ(a_subs[0].result.get().completion_index, 2u);
  EXPECT_EQ(a_subs[1].result.get().completion_index, 6u);
  const std::vector<std::uint64_t> b_expected = {0, 1, 3, 4, 5, 7};
  for (std::size_t i = 0; i < b_subs.size(); ++i) {
    EXPECT_EQ(b_subs[i].result.get().completion_index, b_expected[i]) << i;
  }
}

TEST(SchedulerService, FifoIsTenantBlindUnderTheSameSkew) {
  // Same submission pattern as the DRR cost test, FIFO queue: A's burst
  // runs first in admission order — the unfairness DRR exists to fix.
  SchedulerService service(manual_options(QueueKind::kFifo));
  std::vector<Submission> subs;
  subs.push_back(service.submit("a", quick_batch(3, 100)));
  subs.push_back(service.submit("a", quick_batch(3, 200)));
  for (int i = 0; i < 6; ++i) subs.push_back(service.submit("b", quick_batch(1, 300 + i)));
  service.drain();
  for (std::size_t i = 0; i < subs.size(); ++i) {
    EXPECT_EQ(subs[i].result.get().completion_index, i) << i;
  }
}

TEST(SchedulerService, TenantQueueDepthLimitRejectsWithReason) {
  ServiceOptions options = manual_options(QueueKind::kFifo);
  options.max_queued_jobs_per_tenant = 2;
  SchedulerService service(options);
  ASSERT_TRUE(service.submit("a", quick_batch(1, 1)).accepted());
  ASSERT_TRUE(service.submit("a", quick_batch(1, 2)).accepted());

  Submission rejected = service.submit("a", quick_batch(1, 3));
  EXPECT_EQ(rejected.status, SubmitStatus::kQueueFullTenant);
  EXPECT_TRUE(is_backpressure(rejected.status));
  EXPECT_FALSE(rejected.reason.empty());
  EXPECT_EQ(rejected.job_id, 0u);
  EXPECT_FALSE(rejected.result.valid());

  // Another tenant is unaffected by a's limit.
  EXPECT_TRUE(service.submit("b", quick_batch(1, 4)).accepted());

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.tenant("a")->rejected_tenant_full, 1u);
  EXPECT_EQ(stats.tenant("a")->submitted_jobs, 3u);
  EXPECT_EQ(stats.tenant("a")->accepted_jobs, 2u);
  expect_conservation(stats);
  service.drain();
}

TEST(SchedulerService, GlobalQueueDepthLimitRejectsAnyTenant) {
  ServiceOptions options = manual_options(QueueKind::kFifo);
  options.max_queued_jobs_total = 2;
  SchedulerService service(options);
  ASSERT_TRUE(service.submit("a", quick_batch(1, 1)).accepted());
  ASSERT_TRUE(service.submit("b", quick_batch(1, 2)).accepted());

  Submission rejected = service.submit("c", quick_batch(1, 3));
  EXPECT_EQ(rejected.status, SubmitStatus::kQueueFullGlobal);
  EXPECT_TRUE(is_backpressure(rejected.status));
  EXPECT_EQ(service.stats().tenant("c")->rejected_global_full, 1u);
  expect_conservation(service.stats());
  service.drain();
}

TEST(SchedulerService, ScenarioBudgetThrottlesBigBatches) {
  ServiceOptions options = manual_options(QueueKind::kFifo);
  options.max_pending_scenarios_per_tenant = 4;
  SchedulerService service(options);
  ASSERT_TRUE(service.submit("a", quick_batch(3, 1)).accepted());

  Submission throttled = service.submit("a", quick_batch(3, 10));
  EXPECT_EQ(throttled.status, SubmitStatus::kThrottled);
  EXPECT_TRUE(is_backpressure(throttled.status));
  // A batch that still fits the budget is fine (3 pending + 1 <= 4)...
  EXPECT_TRUE(service.submit("a", quick_batch(1, 20)).accepted());
  // ...and now the budget is exactly exhausted.
  EXPECT_EQ(service.submit("a", quick_batch(1, 30)).status, SubmitStatus::kThrottled);
  EXPECT_EQ(service.stats().tenant("a")->rejected_throttled, 2u);
  service.drain();
}

TEST(SchedulerService, BackpressureRetrySucceedsAfterCapacityFrees) {
  ServiceOptions options = manual_options(QueueKind::kFifo);
  options.max_queued_jobs_per_tenant = 1;
  SchedulerService service(options);
  ASSERT_TRUE(service.submit("a", quick_batch(1, 1)).accepted());
  Submission rejected = service.submit("a", quick_batch(1, 2));
  ASSERT_TRUE(is_backpressure(rejected.status));

  ASSERT_TRUE(service.run_next());  // frees the tenant's queue slot
  Submission retry = service.submit("a", quick_batch(1, 2));
  EXPECT_TRUE(retry.accepted());
  service.drain();
  EXPECT_EQ(retry.result.get().completion_index, 1u);
  expect_conservation(service.stats());
}

TEST(SchedulerService, InvalidScenarioRejectedAtAdmission) {
  SchedulerService service(manual_options(QueueKind::kFifo));

  std::vector<sim::ScenarioSpec> bad = quick_batch(2, 1);
  bad[1].params = Params{0};  // invalid setup cost
  Submission invalid = service.submit("a", std::move(bad));
  EXPECT_EQ(invalid.status, SubmitStatus::kInvalidScenario);
  EXPECT_FALSE(is_backpressure(invalid.status));
  EXPECT_NE(invalid.reason.find("#1"), std::string::npos) << invalid.reason;

  Submission empty = service.submit("a", {});
  EXPECT_EQ(empty.status, SubmitStatus::kInvalidScenario);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queued_jobs, 0u);  // nothing poisoned the queue
  EXPECT_EQ(stats.tenant("a")->rejected_invalid, 2u);
  expect_conservation(stats);
}

TEST(SchedulerService, EmptyTenantIdIsACallerBug) {
  SchedulerService service(manual_options(QueueKind::kFifo));
  EXPECT_THROW((void)service.submit("", quick_batch(1, 1)), std::invalid_argument);
  EXPECT_THROW(service.set_tenant_quota("", 1024), std::invalid_argument);
}

TEST(SchedulerService, RunNextThrowsWhenServiceOwnsWorkers) {
  ServiceOptions options;
  options.workers = 1;
  SchedulerService service(options);
  EXPECT_THROW((void)service.run_next(), std::logic_error);
  service.shutdown();
}

TEST(SchedulerService, ShutdownDrainCompletesQueuedWork) {
  SchedulerService service(manual_options(QueueKind::kFifo));
  Submission a = service.submit("a", quick_batch(1, 1));
  Submission b = service.submit("b", quick_batch(2, 2));
  service.shutdown(SchedulerService::StopMode::kDrain);

  EXPECT_EQ(a.result.get().completion_index, 0u);
  EXPECT_EQ(b.result.get().batch.per_scenario.size(), 2u);

  Submission late = service.submit("a", quick_batch(1, 3));
  EXPECT_EQ(late.status, SubmitStatus::kShuttingDown);
  EXPECT_FALSE(is_backpressure(late.status));

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed_jobs, 2u);
  EXPECT_EQ(stats.tenant("a")->rejected_shutdown, 1u);
  expect_conservation(stats);
}

TEST(SchedulerService, ShutdownCancelFailsQueuedFutures) {
  SchedulerService service(manual_options(QueueKind::kFifo));
  Submission done = service.submit("a", quick_batch(1, 1));
  ASSERT_TRUE(service.run_next());
  Submission q1 = service.submit("a", quick_batch(1, 2));
  Submission q2 = service.submit("b", quick_batch(1, 3));
  service.shutdown(SchedulerService::StopMode::kCancelQueued);

  EXPECT_EQ(done.result.get().completion_index, 0u);  // completed work stands
  EXPECT_THROW((void)q1.result.get(), std::runtime_error);
  EXPECT_THROW((void)q2.result.get(), std::runtime_error);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed_jobs, 1u);
  EXPECT_EQ(stats.cancelled_jobs, 2u);
  EXPECT_EQ(stats.queued_jobs, 0u);
  expect_conservation(stats);

  service.shutdown();  // idempotent, any mode
}

TEST(SchedulerService, WorkerModeCompletesEverythingOnDrain) {
  ServiceOptions options;
  options.workers = 3;
  SchedulerService service(options);
  std::vector<Submission> subs;
  for (int i = 0; i < 12; ++i) {
    subs.push_back(service.submit(i % 2 == 0 ? "even" : "odd", quick_batch(2, 1000 + i)));
  }
  service.drain();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed_jobs, 12u);
  EXPECT_EQ(stats.queued_jobs, 0u);
  EXPECT_EQ(stats.inflight_jobs, 0u);
  expect_conservation(stats);

  // completion_index values are a permutation of 0..11 (each assigned once
  // under the service lock) even though worker timing is nondeterministic.
  std::vector<bool> seen(subs.size(), false);
  for (Submission& sub : subs) {
    const JobResult result = sub.result.get();
    ASSERT_LT(result.completion_index, seen.size());
    EXPECT_FALSE(seen[result.completion_index]);
    seen[result.completion_index] = true;
    EXPECT_EQ(result.batch.per_scenario.size(), 2u);
  }
  service.shutdown();
}

TEST(SchedulerService, QuotaIsolationHostileTenantCannotEvictQuietTenant) {
  ServiceOptions options = manual_options(QueueKind::kFifo);
  options.tenant_cache_shards = 1;            // one shard: eviction observable
  options.default_tenant_quota_bytes = 6000;  // holds ~1 of the hog's tables
  SchedulerService service(options);

  // quiet warms its cache with one dp table...
  Submission warm = service.submit("quiet", {dp_spec(512, 1)});
  ASSERT_TRUE(warm.accepted());
  service.drain();

  // ...then hog churns through many DISTINCT tables inside its own quota.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(service.submit("hog", {dp_spec(512 + 128 * i, 50 + i)}).accepted());
  }
  service.drain();

  // quiet re-runs the same contract: must be a pure cache hit.
  Submission again = service.submit("quiet", {dp_spec(512, 2)});
  ASSERT_TRUE(again.accepted());
  service.drain();

  const ServiceStats stats = service.stats();
  const TenantStats* quiet = stats.tenant("quiet");
  const TenantStats* hog = stats.tenant("hog");
  ASSERT_NE(quiet, nullptr);
  ASSERT_NE(hog, nullptr);
  EXPECT_EQ(quiet->cache.misses, 1u);  // second run re-used the table
  EXPECT_EQ(quiet->cache.hits, 1u);
  EXPECT_EQ(quiet->cache.evictions, 0u);   // hog's churn never touched quiet
  EXPECT_GT(hog->cache.evictions, 0u);     // hog really did churn
  EXPECT_LE(hog->cache.resident_bytes, quiet->cache.resident_bytes * 2 + 6000);
}

TEST(SchedulerService, ZeroQuotaTenantStillCompletesJobs) {
  ServiceOptions options = manual_options(QueueKind::kFifo);
  options.tenant_cache_shards = 1;
  SchedulerService service(options);
  service.set_tenant_quota("z", 0);

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(service.submit("z", {dp_spec(256 + 64 * i, 7 + i)}).accepted());
  }
  service.drain();

  const ServiceStats stats = service.stats();  // keep the snapshot alive
  const TenantStats* z = stats.tenant("z");
  ASSERT_NE(z, nullptr);
  EXPECT_EQ(z->quota_bytes, 0u);
  EXPECT_EQ(z->completed_jobs, 3u);
  // Keep-newest degrades a zero quota to one table per shard, never zero.
  EXPECT_EQ(z->cache.entries, 1u);
  EXPECT_GE(z->cache.evictions, 2u);
}

TEST(SchedulerService, QuotaResizeShrinksLiveCacheAndGrowKeepsTables) {
  ServiceOptions options = manual_options(QueueKind::kFifo);
  options.tenant_cache_shards = 1;
  options.default_tenant_quota_bytes = 1u << 20;  // roomy: all tables resident
  SchedulerService service(options);

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(service.submit("t", {dp_spec(256 + 128 * i, 90 + i)}).accepted());
  }
  service.drain();
  const std::size_t resident_before = service.stats().tenant("t")->cache.resident_bytes;
  EXPECT_EQ(service.stats().tenant("t")->cache.entries, 4u);

  service.set_tenant_quota("t", 1);  // shrink: evict down, keep newest
  const ServiceStats shrunk = service.stats();  // keep the snapshot alive
  const TenantStats* after = shrunk.tenant("t");
  EXPECT_EQ(after->quota_bytes, 1u);
  EXPECT_EQ(after->cache.entries, 1u);
  EXPECT_LT(after->cache.resident_bytes, resident_before);

  service.set_tenant_quota("t", 1u << 20);  // grow: nothing more evicted
  EXPECT_EQ(service.stats().tenant("t")->cache.entries, 1u);
  EXPECT_EQ(service.stats().tenant("t")->cache.evictions, 3u);
}

TEST(SchedulerService, LatencyStatsCountCompletionsAndStayOrdered) {
  ServiceOptions options = manual_options(QueueKind::kFifo);
  options.latency_window = 4;  // smaller than the completion count
  SchedulerService service(options);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(service.submit("a", quick_batch(1, 500 + i)).accepted());
  }
  service.drain();

  const ServiceStats stats = service.stats();  // keep the snapshot alive
  const TenantStats* a = stats.tenant("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->completed_jobs, 6u);
  // The ring keeps the last `latency_window` samples; only ORDER is
  // asserted about the values themselves (deflake discipline).
  EXPECT_EQ(a->latency.count, 4u);
  EXPECT_LE(a->latency.p50_ms, a->latency.p90_ms);
  EXPECT_LE(a->latency.p90_ms, a->latency.p99_ms);
  EXPECT_LE(a->latency.p99_ms, a->latency.max_ms);
  EXPECT_GE(a->latency.p50_ms, 0.0);
}

TEST(SchedulerService, StatsListsTenantsSortedAndSumsMatch) {
  SchedulerService service(manual_options(QueueKind::kFifo));
  ASSERT_TRUE(service.submit("zeta", quick_batch(1, 1)).accepted());
  ASSERT_TRUE(service.submit("alpha", quick_batch(2, 2)).accepted());
  ASSERT_TRUE(service.submit("mid", quick_batch(3, 3)).accepted());
  service.drain();

  const ServiceStats stats = service.stats();
  ASSERT_EQ(stats.tenants.size(), 3u);
  EXPECT_EQ(stats.tenants[0].tenant, "alpha");
  EXPECT_EQ(stats.tenants[1].tenant, "mid");
  EXPECT_EQ(stats.tenants[2].tenant, "zeta");
  EXPECT_EQ(stats.completed_scenarios, 6u);
  EXPECT_EQ(stats.queue_policy, "fifo");
  EXPECT_EQ(stats.workers, 0u);
  expect_conservation(stats);
}

// ---------------------------------------------------------------------------
// Shared persistent store: one warm mount beneath every tenant's cache
// ---------------------------------------------------------------------------

TEST(SchedulerService, SharedStoreServesAllTenantsAboveTheirPrivateQuotas) {
  nowsched::testing::TempDir dir("svc-store");
  ServiceOptions options = manual_options(QueueKind::kFifo);
  options.shared_store_dir = dir.str();
  SchedulerService service(options);
  ASSERT_NE(service.shared_store(), nullptr);

  // Tenant a solves a dp table — its fresh solve spills to the shared store.
  ASSERT_TRUE(service.submit("a", {dp_spec(512, 1)}).accepted());
  service.drain();

  // Tenant b runs the same contract: its PRIVATE cache is cold (no
  // cross-tenant RAM sharing — isolation is intact), but the shared store
  // converts its would-be solve into a mapped read.
  ASSERT_TRUE(service.submit("b", {dp_spec(512, 2)}).accepted());
  service.drain();

  const ServiceStats stats = service.stats();
  const TenantStats* a = stats.tenant("a");
  const TenantStats* b = stats.tenant("b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->cache.misses, 1u);
  EXPECT_EQ(a->cache.spills, 1u);
  EXPECT_EQ(a->cache.store_hits, 0u);
  EXPECT_EQ(b->cache.misses, 1u);       // private caches stay isolated...
  EXPECT_EQ(b->cache.store_hits, 1u);   // ...but the store answered the miss
  EXPECT_EQ(b->cache.spills, 0u);       // a store hit is never re-spilled
  EXPECT_EQ(service.shared_store()->stats().entries, 1u);
}

TEST(SchedulerService, ResultsAreBitIdenticalWithAndWithoutTheSharedStore) {
  // The store changes WHO supplies a table, never what the simulation
  // computes: identical per-scenario metrics with no store, with a cold
  // store, and with a pre-warmed store.
  const std::vector<sim::ScenarioSpec> batch = {
      dp_spec(512, 11), dp_spec(640, 12), dp_spec(512, 13)};

  auto run = [&batch](const std::string& store_dir) {
    ServiceOptions options = manual_options(QueueKind::kFifo);
    options.shared_store_dir = store_dir;
    SchedulerService service(options);
    Submission sub = service.submit("t", batch);
    EXPECT_TRUE(sub.accepted());
    service.drain();
    return sub.result.get();
  };

  nowsched::testing::TempDir dir("svc-bitid");
  const JobResult no_store = run("");
  const JobResult cold_store = run(dir.str());   // bakes the store
  const JobResult warm_store = run(dir.str());   // served from the store

  ASSERT_EQ(no_store.batch.per_scenario.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const sim::SessionMetrics& base = no_store.batch.per_scenario[i];
    const sim::SessionMetrics& cold = cold_store.batch.per_scenario[i];
    const sim::SessionMetrics& warm = warm_store.batch.per_scenario[i];
    EXPECT_EQ(base.banked_work, cold.banked_work) << i;
    EXPECT_EQ(base.banked_work, warm.banked_work) << i;
    EXPECT_EQ(base.task_work, cold.task_work) << i;
    EXPECT_EQ(base.task_work, warm.task_work) << i;
    EXPECT_EQ(base.lost_work, cold.lost_work) << i;
    EXPECT_EQ(base.lost_work, warm.lost_work) << i;
    EXPECT_EQ(base.interrupts, cold.interrupts) << i;
    EXPECT_EQ(base.interrupts, warm.interrupts) << i;
  }
}

TEST(SchedulerService, ReadOnlySharedStoreMountRequiresBakedDirectory) {
  ServiceOptions options = manual_options(QueueKind::kFifo);
  options.shared_store_dir = "/nonexistent/nowsched-store";
  options.shared_store_readonly = true;
  // Misconfiguration surfaces at construction, not as per-job failures.
  EXPECT_THROW(SchedulerService{options}, std::runtime_error);
}

}  // namespace
}  // namespace nowsched::service
