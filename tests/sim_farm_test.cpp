#include "sim/farm.h"

#include <gtest/gtest.h>

#include <memory>

#include "adversary/heuristics.h"
#include "adversary/stochastic.h"
#include "core/baselines.h"
#include "core/guidelines.h"

namespace nowsched::sim {
namespace {

constexpr Params kParams{16};

WorkstationConfig station(const std::string& name, Ticks u, int p,
                          PolicyPtr policy, std::shared_ptr<adversary::Adversary> owner,
                          Ticks start = 0) {
  WorkstationConfig cfg;
  cfg.name = name;
  cfg.opportunity = Opportunity{u, p};
  cfg.params = kParams;
  cfg.policy = std::move(policy);
  cfg.owner = std::move(owner);
  cfg.start_time = start;
  return cfg;
}

TEST(Farm, SingleStationMatchesStandaloneSession) {
  auto policy = std::make_shared<AdaptiveGuidelinePolicy>();
  auto bag = TaskBag::uniform(200, 5);
  auto owner = std::make_shared<adversary::NoOpAdversary>();
  const auto farm = run_farm({station("b1", 1000, 2, policy, owner)}, bag);

  adversary::NoOpAdversary owner2;
  auto bag2 = TaskBag::uniform(200, 5);
  const auto solo = run_session(*policy, owner2, Opportunity{1000, 2}, kParams, &bag2);
  EXPECT_EQ(farm.aggregate.banked_work, solo.banked_work);
  EXPECT_EQ(farm.aggregate.tasks_completed, solo.tasks_completed);
}

TEST(Farm, MultipleStationsShareOneBag) {
  auto policy = std::make_shared<AdaptiveGuidelinePolicy>();
  auto owner = std::make_shared<adversary::NoOpAdversary>();
  auto bag = TaskBag::uniform(10000, 5);
  const auto farm = run_farm({station("b1", 2000, 1, policy, owner),
                              station("b2", 2000, 1, policy, owner),
                              station("b3", 2000, 1, policy, owner)},
                             bag);
  ASSERT_EQ(farm.per_workstation.size(), 3u);
  // Conservation across the shared bag.
  EXPECT_EQ(farm.aggregate.tasks_completed + farm.tasks_left, 10000u);
  EXPECT_EQ(farm.aggregate.task_work, bag.completed_work());
  // All three consumed their full lifespans.
  for (const auto& m : farm.per_workstation) EXPECT_EQ(m.lifespan_used, 2000);
}

TEST(Farm, ParallelStationsOutproduceOne) {
  auto policy = std::make_shared<AdaptiveGuidelinePolicy>();
  auto owner = std::make_shared<adversary::NoOpAdversary>();
  auto bag1 = TaskBag::uniform(100000, 5);
  const auto one = run_farm({station("b1", 3000, 1, policy, owner)}, bag1);
  auto bag4 = TaskBag::uniform(100000, 5);
  const auto four = run_farm({station("b1", 3000, 1, policy, owner),
                              station("b2", 3000, 1, policy, owner),
                              station("b3", 3000, 1, policy, owner),
                              station("b4", 3000, 1, policy, owner)},
                             bag4);
  EXPECT_GT(four.aggregate.task_work, 3 * one.aggregate.task_work);
}

TEST(Farm, StaggeredStartsExtendMakespan) {
  auto policy = std::make_shared<AdaptiveGuidelinePolicy>();
  auto owner = std::make_shared<adversary::NoOpAdversary>();
  auto bag = TaskBag::uniform(10000, 5);
  const auto farm = run_farm({station("early", 1000, 0, policy, owner, 0),
                              station("late", 1000, 0, policy, owner, 5000)},
                             bag);
  EXPECT_EQ(farm.makespan, 6000);
}

TEST(Farm, HeterogeneousPoliciesAndOwners) {
  auto adaptive = std::make_shared<AdaptiveGuidelinePolicy>();
  auto chunky = std::make_shared<FixedChunkPolicy>(4.0);
  auto noop = std::make_shared<adversary::NoOpAdversary>();
  auto poisson = std::make_shared<adversary::PoissonAdversary>(200.0, 17);
  auto bag = TaskBag::uniform(5000, 3);
  const auto farm = run_farm({station("a", 2500, 2, adaptive, noop),
                              station("b", 2500, 2, chunky, poisson)},
                             bag);
  ASSERT_EQ(farm.per_workstation.size(), 2u);
  EXPECT_EQ(farm.aggregate.episodes,
            farm.per_workstation[0].episodes + farm.per_workstation[1].episodes);
  EXPECT_EQ(farm.aggregate.tasks_completed + farm.tasks_left, 5000u);
}

TEST(Farm, RejectsMisconfiguration) {
  auto bag = TaskBag::uniform(10, 1);
  EXPECT_THROW(run_farm({}, bag), std::invalid_argument);

  WorkstationConfig missing;
  missing.name = "x";
  missing.opportunity = Opportunity{10, 0};
  missing.params = kParams;
  EXPECT_THROW(run_farm({missing}, bag), std::invalid_argument);

  auto cfg = station("neg", 10, 0, std::make_shared<SingleBlockPolicy>(),
                     std::make_shared<adversary::NoOpAdversary>());
  cfg.start_time = -5;
  EXPECT_THROW(run_farm({cfg}, bag), std::invalid_argument);
}

TEST(Farm, EventCountIsPositiveAndBounded) {
  auto policy = std::make_shared<AdaptiveGuidelinePolicy>();
  auto owner = std::make_shared<adversary::NoOpAdversary>();
  auto bag = TaskBag::uniform(100, 5);
  const auto farm = run_farm({station("b1", 1000, 1, policy, owner)}, bag);
  EXPECT_GT(farm.events, 0u);
  // At most one start + one event per period boundary + slack.
  EXPECT_LT(farm.events, 4000u);
}

}  // namespace
}  // namespace nowsched::sim
