#include "sim/taskbag.h"

#include <gtest/gtest.h>

namespace nowsched::sim {
namespace {

TEST(TaskBag, UniformConstruction) {
  auto bag = TaskBag::uniform(10, 5);
  EXPECT_EQ(bag.pending(), 10u);
  EXPECT_EQ(bag.pending_work(), 50);
  EXPECT_EQ(bag.completed(), 0u);
  EXPECT_FALSE(bag.done());
}

TEST(TaskBag, RejectsZeroDurationTasks) {
  EXPECT_THROW(TaskBag({Task{0, 0}}), std::invalid_argument);
}

TEST(TaskBag, GreedyFifoPacking) {
  TaskBag bag({{0, 30}, {1, 30}, {2, 30}});
  const auto batch = bag.take_batch(70);
  ASSERT_EQ(batch.size(), 2u);  // 30+30 fits, third would exceed
  EXPECT_EQ(TaskBag::batch_work(batch), 60);
  EXPECT_EQ(bag.pending(), 1u);
  EXPECT_EQ(bag.pending_work(), 30);
}

TEST(TaskBag, PackingStopsAtFirstNonFit) {
  // FIFO semantics: a big head task blocks smaller ones behind it.
  TaskBag bag({{0, 100}, {1, 1}});
  const auto batch = bag.take_batch(50);
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(bag.pending(), 2u);
}

TEST(TaskBag, ZeroCapacityTakesNothing) {
  auto bag = TaskBag::uniform(5, 10);
  EXPECT_TRUE(bag.take_batch(0).empty());
}

TEST(TaskBag, ReturnBatchPreservesOrderAtFront) {
  TaskBag bag({{0, 10}, {1, 10}, {2, 10}});
  const auto batch = bag.take_batch(20);  // tasks 0, 1
  bag.return_batch(batch);
  EXPECT_EQ(bag.pending(), 3u);
  const auto again = bag.take_batch(10);
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0].id, 0u);  // original head restored
}

TEST(TaskBag, CompletionAccounting) {
  auto bag = TaskBag::uniform(4, 25);
  const auto batch = bag.take_batch(50);
  bag.mark_completed(batch);
  EXPECT_EQ(bag.completed(), 2u);
  EXPECT_EQ(bag.completed_work(), 50);
  EXPECT_EQ(bag.pending(), 2u);
  bag.mark_completed(bag.take_batch(100));
  EXPECT_TRUE(bag.done());
  EXPECT_EQ(bag.completed_work(), 100);
}

TEST(TaskBag, RandomDurationsWithinRange) {
  util::Rng rng(11);
  auto bag = TaskBag::random(100, 5, 15, rng);
  EXPECT_EQ(bag.pending(), 100u);
  Ticks total = 0;
  while (!bag.done()) {
    const auto batch = bag.take_batch(15);
    ASSERT_FALSE(batch.empty());
    for (const auto& t : batch) {
      EXPECT_GE(t.duration, 5);
      EXPECT_LE(t.duration, 15);
    }
    total += TaskBag::batch_work(batch);
    bag.mark_completed(batch);
  }
  EXPECT_EQ(total, bag.completed_work());
}

TEST(TaskBag, RandomRejectsBadRange) {
  util::Rng rng(1);
  EXPECT_THROW(TaskBag::random(5, 0, 10, rng), std::invalid_argument);
  EXPECT_THROW(TaskBag::random(5, 10, 9, rng), std::invalid_argument);
}

}  // namespace
}  // namespace nowsched::sim
