#include "core/equalized.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.h"
#include "core/closed_form.h"

namespace nowsched {
namespace {

constexpr Params kParams{16};

TEST(AnalyticW, ExactBaseCase) {
  EXPECT_DOUBLE_EQ(analytic_guaranteed_work(0, 100.0, 16.0), 84.0);
  EXPECT_DOUBLE_EQ(analytic_guaranteed_work(0, 10.0, 16.0), 0.0);
  EXPECT_DOUBLE_EQ(analytic_guaranteed_work(0, -5.0, 16.0), 0.0);
}

TEST(AnalyticW, MatchesTableTwoAtPEqualsOne) {
  // W(1)[U] ≈ U − √(2cU) − c/2.
  const double u = 16384.0, c = 16.0;
  EXPECT_NEAR(analytic_guaranteed_work(1, u, c), u - std::sqrt(2 * c * u) - c / 2,
              1e-9);
}

TEST(AnalyticW, DeficitCoefficientGrowsWithQ) {
  const double u = 1e6, c = 16.0;
  for (int q = 1; q < 6; ++q) {
    EXPECT_GT(analytic_guaranteed_work(q, u, c), 0.0);
    EXPECT_GT(analytic_guaranteed_work(q, u, c), analytic_guaranteed_work(q + 1, u, c));
  }
}

TEST(AnalyticW, ClampedAtZeroForTinyLifespans) {
  EXPECT_DOUBLE_EQ(analytic_guaranteed_work(2, 10.0, 16.0), 0.0);
}

class InverseRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(InverseRoundTrip, InverseIsRightInverseOnPositiveBranch) {
  const int q = GetParam();
  const double c = 16.0;
  for (double v : {0.0, 1.0, 10.0, 100.0, 5000.0, 1e6}) {
    const double x = analytic_guaranteed_work_inverse(q, v, c);
    EXPECT_NEAR(analytic_guaranteed_work(q, x, c), v, 1e-6 * (1.0 + v)) << "v=" << v;
  }
}

TEST_P(InverseRoundTrip, InverseIsMonotone) {
  const int q = GetParam();
  const double c = 16.0;
  double prev = analytic_guaranteed_work_inverse(q, 0.0, c);
  for (double v = 10.0; v < 1e5; v *= 3.0) {
    const double x = analytic_guaranteed_work_inverse(q, v, c);
    EXPECT_GT(x, prev);
    prev = x;
  }
}

INSTANTIATE_TEST_SUITE_P(Qs, InverseRoundTrip, ::testing::Values(0, 1, 2, 3, 4, 5));

TEST(EqualizedEpisode, ZeroInterruptsIsSinglePeriod) {
  const auto s = equalized_episode(1000, 0, kParams);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.total(), 1000);
}

struct EqCase {
  Ticks u;
  int p;
};

class EqualizedProperty : public ::testing::TestWithParam<EqCase> {};

TEST_P(EqualizedProperty, SpansLifespan) {
  const auto [u, p] = GetParam();
  EXPECT_EQ(equalized_episode(u, p, kParams).total(), u);
}

TEST_P(EqualizedProperty, ForcedPeriodsAreProductive) {
  const auto [u, p] = GetParam();
  if (p == 0) return;
  const auto s = equalized_episode(u, p, kParams);
  if (s.size() < 3) return;
  // Prefix periods (before the immune tail of ~3c/2 pieces) must exceed c —
  // the Thm 4.1 "fully productive" discipline. Monotone descent is a p=1
  // structural fact only (for larger p the √-curvature of W(p−1) lets
  // lengths wobble a few ticks mid-episode) and is asserted below.
  std::size_t k = 0;
  while (k + 1 < s.size() && s.period(k) > 2 * kParams.c) {
    EXPECT_GT(s.period(k), kParams.c) << "k=" << k;
    if (p <= 2) {
      EXPECT_GE(s.period(k) + 1, s.period(k + 1)) << "k=" << k;
    }
    ++k;
  }
}

TEST_P(EqualizedProperty, RealizedValueMatchesP1Evaluator) {
  const auto [u, p] = GetParam();
  if (p != 1) return;
  double v = 0.0;
  const auto s = equalized_episode(u, p, kParams, &v);
  const Ticks exact = guaranteed_work_p1(s, u, kParams);
  // The bisected analytic V and the exact game value agree to low order.
  EXPECT_NEAR(static_cast<double>(exact), v, 2.0 * kParams.c + 4.0);
}

TEST_P(EqualizedProperty, InterruptOptionsAreEqualizedAtP1) {
  // The defining property: for p=1, every kill-period-k option costs the
  // adversary nearly the same.
  const auto [u, p] = GetParam();
  if (p != 1 || u < 64 * kParams.c) return;
  const auto s = equalized_episode(u, p, kParams);
  const Ticks value = guaranteed_work_p1(s, u, kParams);
  for (std::size_t k = 0; k + 2 < s.size(); ++k) {
    const Ticks option =
        s.banked_work(k, kParams) + positive_sub(positive_sub(u, s.end(k)), kParams.c);
    EXPECT_GE(option + 1, value);
    EXPECT_LE(option - value, 3 * kParams.c) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EqualizedProperty,
                         ::testing::Values(EqCase{512, 1}, EqCase{4096, 1},
                                           EqCase{16384, 1}, EqCase{4096, 2},
                                           EqCase{16384, 3}, EqCase{16384, 5},
                                           EqCase{100, 2}, EqCase{33, 1},
                                           EqCase{65536, 4}, EqCase{9999, 0}));

TEST(EqualizedEpisode, TinyLifespanDegradesToSinglePeriod) {
  for (Ticks u : {1, 8, 16, 32, 48}) {
    const auto s = equalized_episode(u, 2, kParams);
    EXPECT_EQ(s.total(), u);
  }
}

TEST(EqualizedEpisode, RejectsBadInputs) {
  EXPECT_THROW(equalized_episode(0, 1, kParams), std::invalid_argument);
  EXPECT_THROW(equalized_episode(10, -1, kParams), std::invalid_argument);
  EXPECT_THROW(analytic_guaranteed_work(-1, 10.0, 16.0), std::invalid_argument);
  EXPECT_THROW(analytic_guaranteed_work_inverse(1, -1.0, 16.0), std::invalid_argument);
}

TEST(EqualizedPolicy, NameAndSpanning) {
  EqualizedGuidelinePolicy policy;
  EXPECT_EQ(policy.name(), "equalized-guideline");
  for (Ticks l : {1, 100, 10000}) {
    for (int q : {0, 1, 3}) {
      EXPECT_EQ(policy.episode(l, q, kParams).total(), l);
    }
  }
}

}  // namespace
}  // namespace nowsched
