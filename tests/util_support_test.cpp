#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/flags.h"
#include "util/table.h"

namespace nowsched::util {
namespace {

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

TEST(Table, AlignsColumnsAndUnderlinesHeader) {
  Table t({"a", "bb"}, {Align::kLeft, Align::kRight});
  t.add_row({"x", "1"});
  t.add_row({"yy", "22"});
  const std::string out = t.to_string();
  std::istringstream is(out);
  std::string l1, l2, l3, l4;
  std::getline(is, l1);
  std::getline(is, l2);
  std::getline(is, l3);
  std::getline(is, l4);
  EXPECT_EQ(l1, "a  | bb");
  EXPECT_EQ(l2, "-------");
  EXPECT_EQ(l3, "x  |  1");
  EXPECT_EQ(l4, "yy | 22");
}

TEST(Table, TitleAndRulePrinted) {
  Table t({"v"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  const std::string out = t.to_string("My Title");
  EXPECT_NE(out.find("My Title"), std::string::npos);
  // A rule row appears between the data rows.
  EXPECT_NE(out.find("\n1\n-"), std::string::npos);
}

TEST(Table, FmtIntegralDoubleHasNoDecimals) {
  EXPECT_EQ(Table::fmt(42.0), "42");
  EXPECT_EQ(Table::fmt(-3.0), "-3");
}

TEST(Table, FmtRoundsToPrecision) {
  EXPECT_EQ(Table::fmt(3.14159265, 3), "3.14");
  EXPECT_EQ(Table::fmt(1234.5678, 6), "1234.57");
}

TEST(Table, MarkdownRendersAlignmentEscapingAndDropsRules) {
  Table t({"name", "w"}, {Align::kLeft, Align::kRight});
  t.add_row({"pipe|cell", "1"});
  t.add_rule();
  t.add_row({"y", "22"});
  EXPECT_EQ(t.to_markdown(),
            "| name | w |\n"
            "| :--- | ---: |\n"
            "| pipe\\|cell | 1 |\n"
            "| y | 22 |\n");
}

TEST(Table, RowCountTracksDataRows) {
  Table t({"v"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_rule();
  EXPECT_EQ(t.rows(), 2u);  // rule counts as a stored row marker
}

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "nowsched_csv_test.csv";
  {
    CsvWriter csv(path, {"u", "w"});
    csv.write_row(std::vector<double>{1.0, 2.5});
    csv.write_row(std::vector<std::string>{"a", "b"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "u,w");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5");
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::remove(path.c_str());
}

TEST(Csv, EscapesSpecialCharacters) {
  const std::string path = ::testing::TempDir() + "nowsched_csv_escape.csv";
  {
    CsvWriter csv(path, {"x"});
    csv.write_row(std::vector<std::string>{"has,comma"});
    csv.write_row(std::vector<std::string>{"has\"quote"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);  // header
  std::getline(in, line);
  EXPECT_EQ(line, "\"has,comma\"");
  std::getline(in, line);
  EXPECT_EQ(line, "\"has\"\"quote\"");
  std::remove(path.c_str());
}

TEST(Csv, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv", {"a"}), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Flags
// ---------------------------------------------------------------------------

TEST(Flags, ParsesKeyValueAndBooleans) {
  const char* argv[] = {"prog", "--u=1024", "--verbose", "pos1", "--ratio=2.5"};
  Flags flags(5, argv);
  EXPECT_EQ(flags.program(), "prog");
  EXPECT_EQ(flags.get_int("u", 0), 1024);
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(flags.get_double("ratio", 0.0), 2.5);
  ASSERT_EQ(flags.positionals().size(), 1u);
  EXPECT_EQ(flags.positionals()[0], "pos1");
}

TEST(Flags, FallbacksUsedWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags flags(1, argv);
  EXPECT_EQ(flags.get("name", "dflt"), "dflt");
  EXPECT_EQ(flags.get_int("n", -7), -7);
  EXPECT_FALSE(flags.get_bool("b", false));
  EXPECT_FALSE(flags.has("n"));
}

TEST(Flags, BoolSpellings) {
  const char* argv[] = {"prog", "--a=true", "--b=1", "--c=yes", "--d=false",
                        "--e=on", "--f=off", "--g=no", "--h=0"};
  Flags flags(9, argv);
  EXPECT_TRUE(flags.get_bool("a", false));
  EXPECT_TRUE(flags.get_bool("b", false));
  EXPECT_TRUE(flags.get_bool("c", false));
  EXPECT_FALSE(flags.get_bool("d", true));
  EXPECT_TRUE(flags.get_bool("e", false));
  EXPECT_FALSE(flags.get_bool("f", true));
  EXPECT_FALSE(flags.get_bool("g", true));
  EXPECT_FALSE(flags.get_bool("h", true));
}

TEST(Flags, DoubleDashEndsFlagParsing) {
  const char* argv[] = {"prog", "--u=5", "--", "--not-a-flag", "file.txt"};
  Flags flags(5, argv);
  EXPECT_EQ(flags.get_int("u", 0), 5);
  EXPECT_FALSE(flags.has("not-a-flag"));
  ASSERT_EQ(flags.positionals().size(), 2u);
  EXPECT_EQ(flags.positionals()[0], "--not-a-flag");
  EXPECT_EQ(flags.positionals()[1], "file.txt");
}

TEST(Flags, NegativeAndWhitespaceFreeNumbersParse) {
  const char* argv[] = {"prog", "--n=-42", "--x=-2.5e3", "--big=9223372036854775807"};
  Flags flags(4, argv);
  EXPECT_EQ(flags.get_int("n", 0), -42);
  EXPECT_DOUBLE_EQ(flags.get_double("x", 0.0), -2500.0);
  EXPECT_EQ(flags.get_int("big", 0), INT64_MAX);
}

using FlagsDeathTest = ::testing::Test;

TEST(FlagsDeathTest, GarbageIntIsAUsageErrorNotZero) {
  const char* argv[] = {"prog", "--u=garbage"};
  Flags flags(2, argv);
  EXPECT_EXIT(flags.get_int("u", 0), ::testing::ExitedWithCode(2),
              "usage error: --u expects an integer, got \"garbage\"");
}

TEST(FlagsDeathTest, TrailingJunkIntIsAUsageErrorNotPrefix) {
  const char* argv[] = {"prog", "--u=12abc"};
  Flags flags(2, argv);
  EXPECT_EXIT(flags.get_int("u", 0), ::testing::ExitedWithCode(2),
              "usage error: --u expects an integer, got \"12abc\"");
}

TEST(FlagsDeathTest, EmptyAndOverflowingIntsAreUsageErrors) {
  const char* argv[] = {"prog", "--a=", "--b=99999999999999999999"};
  Flags flags(3, argv);
  EXPECT_EXIT(flags.get_int("a", 0), ::testing::ExitedWithCode(2), "--a expects");
  EXPECT_EXIT(flags.get_int("b", 0), ::testing::ExitedWithCode(2), "--b expects");
}

TEST(FlagsDeathTest, ValuelessFlagReadAsIntNamesTheFlag) {
  // `--u` (no value) stores "true"; asking for an int must not yield 0.
  const char* argv[] = {"prog", "--u"};
  Flags flags(2, argv);
  EXPECT_EXIT(flags.get_int("u", 0), ::testing::ExitedWithCode(2),
              "--u expects an integer, got \"true\"");
}

TEST(FlagsDeathTest, GarbageDoubleAndBoolAreUsageErrors) {
  const char* argv[] = {"prog", "--ratio=2.5x", "--flag=maybe"};
  Flags flags(3, argv);
  EXPECT_EXIT(flags.get_double("ratio", 0.0), ::testing::ExitedWithCode(2),
              "--ratio expects a number, got \"2.5x\"");
  EXPECT_EXIT(flags.get_bool("flag", false), ::testing::ExitedWithCode(2),
              "--flag expects a boolean");
}

TEST(FlagsDeathTest, EmptyKeyIsRejectedAtParseTime) {
  const char* argv_eq[] = {"prog", "--=v"};
  EXPECT_EXIT(Flags(2, argv_eq), ::testing::ExitedWithCode(2),
              "empty flag name in \"--=v\"");
}

}  // namespace
}  // namespace nowsched::util
