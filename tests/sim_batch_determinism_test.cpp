// The BatchRunner determinism contract, tested end to end: one scenario
// list, same seeds ⇒ byte-identical per-scenario and aggregated metrics at
// 1, 2, and 8 pool threads, serial (no pool), and cache enabled vs disabled.
// This is the property that makes batched results citable — EXPERIMENTS.md
// numbers cannot depend on the machine's core count. (Run under TSan in CI.)
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "sim/batch_runner.h"
#include "util/thread_pool.h"

namespace nowsched::sim {
namespace {

/// A heterogeneous 60-scenario mix: every policy kind, every owner kind,
/// several contracts, dp-optimal scenarios spread over 3 solver keys.
std::vector<ScenarioSpec> mixed_specs() {
  std::vector<ScenarioSpec> specs;
  const PolicyKind policies[] = {PolicyKind::kEqualized, PolicyKind::kAdaptivePaper,
                                 PolicyKind::kNonAdaptiveRestart,
                                 PolicyKind::kDpOptimal};
  const OwnerKind owners[] = {OwnerKind::kPoisson, OwnerKind::kPareto,
                              OwnerKind::kUniform};
  for (int i = 0; i < 60; ++i) {
    ScenarioSpec spec;
    spec.policy = policies[i % 4];
    spec.owner = owners[i % 3];
    spec.owner_a = spec.owner == OwnerKind::kUniform ? 0.4 : 400.0 + 100.0 * (i % 5);
    spec.owner_b = 1.25;
    spec.params = Params{16};
    spec.lifespan = 768 + 256 * (i % 3);
    spec.max_interrupts = 1 + (i % 3);
    spec.seed = 0xABC0 + static_cast<std::uint64_t>(i);
    specs.push_back(spec);
  }
  return specs;
}

/// Every field of every metric, serialized — "byte-identical" made literal.
std::string fingerprint(const BatchResult& result) {
  std::ostringstream os;
  os << result.scenarios << '\n' << result.aggregate.to_string() << '\n';
  for (const SessionMetrics& m : result.per_scenario) os << m.to_string() << '\n';
  return os.str();
}

BatchResult run_with(const std::vector<ScenarioSpec>& specs, util::ThreadPool* pool,
                     bool cache_enabled) {
  BatchOptions options;
  options.pool = pool;
  options.cache_enabled = cache_enabled;
  BatchRunner runner(options);
  return runner.run(specs);
}

TEST(BatchDeterminism, IdenticalAcrossThreadCountsAndCacheModes) {
  const auto specs = mixed_specs();
  const std::string reference = fingerprint(run_with(specs, nullptr, true));
  ASSERT_FALSE(reference.empty());

  // Cache disabled, serial.
  EXPECT_EQ(fingerprint(run_with(specs, nullptr, false)), reference);

  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    util::ThreadPool pool(threads);
    EXPECT_EQ(fingerprint(run_with(specs, &pool, true)), reference)
        << threads << " threads, cached";
    EXPECT_EQ(fingerprint(run_with(specs, &pool, false)), reference)
        << threads << " threads, naive";
  }
}

TEST(BatchDeterminism, RepeatedRunsOnOneRunnerAreIdentical) {
  // A warm cache (second run) must not change results, only counters.
  const auto specs = mixed_specs();
  util::ThreadPool pool(4);
  BatchOptions options;
  options.pool = &pool;
  BatchRunner runner(options);
  const BatchResult cold = runner.run(specs);
  const BatchResult warm = runner.run(specs);
  EXPECT_EQ(fingerprint(cold), fingerprint(warm));
  EXPECT_GT(warm.cache.hits, cold.cache.hits);
}

TEST(BatchDeterminism, SubmissionOrderOnlyPermutesSlots) {
  // Reversing the scenario list permutes per_scenario accordingly and
  // leaves every individual result unchanged — scheduling leaks nothing.
  const auto specs = mixed_specs();
  std::vector<ScenarioSpec> reversed(specs.rbegin(), specs.rend());

  util::ThreadPool pool(4);
  const BatchResult forward = run_with(specs, &pool, true);
  const BatchResult backward = run_with(reversed, &pool, true);
  ASSERT_EQ(forward.per_scenario.size(), backward.per_scenario.size());
  const std::size_t n = forward.per_scenario.size();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(forward.per_scenario[i].to_string(),
              backward.per_scenario[n - 1 - i].to_string())
        << i;
  }
  // Aggregate merge is commutative over these fields.
  EXPECT_EQ(forward.aggregate.to_string(), backward.aggregate.to_string());
}

}  // namespace
}  // namespace nowsched::sim
