// Properties of the exact W(p)[L] tables — Prop 4.1 and the structural facts
// the fast solver relies on, checked on reference-solver output.
#include <gtest/gtest.h>

#include <memory>

#include "core/bounds.h"
#include "solver/reference_solver.h"

namespace nowsched::solver {
namespace {

struct GridCase {
  int max_p;
  Ticks max_l;
  Ticks c;
};

class ValueTableProperty : public ::testing::TestWithParam<GridCase> {
 protected:
  void SetUp() override {
    const auto [max_p, max_l, c] = GetParam();
    table_ = std::make_unique<ValueTable>(solve_reference(max_p, max_l, Params{c}));
  }
  std::unique_ptr<ValueTable> table_;
};

TEST_P(ValueTableProperty, LevelZeroIsPositiveSubtraction) {
  // Prop 4.1(d): W(0)[U] = U − c (and the optimum is the single period U).
  const auto [max_p, max_l, c] = GetParam();
  for (Ticks l = 0; l <= max_l; ++l) {
    EXPECT_EQ(table_->value(0, l), positive_sub(l, c));
  }
}

TEST_P(ValueTableProperty, NonDecreasingInLifespan) {
  // Prop 4.1(a).
  const auto [max_p, max_l, c] = GetParam();
  for (int p = 0; p <= max_p; ++p) {
    for (Ticks l = 1; l <= max_l; ++l) {
      EXPECT_GE(table_->value(p, l), table_->value(p, l - 1))
          << "p=" << p << " l=" << l;
    }
  }
}

TEST_P(ValueTableProperty, OneLipschitzInLifespan) {
  // Work gained per extra tick of lifespan is at most one tick — the
  // structural fact behind the fast solver's crossover argument.
  const auto [max_p, max_l, c] = GetParam();
  for (int p = 0; p <= max_p; ++p) {
    for (Ticks l = 1; l <= max_l; ++l) {
      EXPECT_LE(table_->value(p, l) - table_->value(p, l - 1), 1)
          << "p=" << p << " l=" << l;
    }
  }
}

TEST_P(ValueTableProperty, NonIncreasingInInterrupts) {
  // Prop 4.1(b).
  const auto [max_p, max_l, c] = GetParam();
  for (int p = 1; p <= max_p; ++p) {
    for (Ticks l = 0; l <= max_l; ++l) {
      EXPECT_LE(table_->value(p, l), table_->value(p - 1, l))
          << "p=" << p << " l=" << l;
    }
  }
}

TEST_P(ValueTableProperty, ZeroWorkThreshold) {
  // Prop 4.1(c): W(p)[U] = 0 whenever U <= (p+1)c...
  const auto [max_p, max_l, c] = GetParam();
  for (int p = 0; p <= max_p; ++p) {
    const Ticks threshold = bounds::zero_work_threshold(p, c);
    for (Ticks l = 0; l <= std::min(threshold, max_l); ++l) {
      EXPECT_EQ(table_->value(p, l), 0) << "p=" << p << " l=" << l;
    }
    // ... and strictly positive once every one of the p+1 forced periods can
    // exceed c by a tick.
    const Ticks productive = (static_cast<Ticks>(p) + 1) * (c + 1);
    if (productive <= max_l) {
      EXPECT_GT(table_->value(p, productive), 0) << "p=" << p;
    }
  }
}

TEST_P(ValueTableProperty, WorkNeverExceedsLifespanMinusSetup) {
  const auto [max_p, max_l, c] = GetParam();
  for (int p = 0; p <= max_p; ++p) {
    for (Ticks l = 0; l <= max_l; ++l) {
      EXPECT_LE(table_->value(p, l), positive_sub(l, c));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, ValueTableProperty,
                         ::testing::Values(GridCase{3, 300, 8}, GridCase{2, 500, 16},
                                           GridCase{4, 200, 4}, GridCase{1, 800, 32},
                                           GridCase{5, 150, 2}));

TEST(ValueTable, AccessorsAndBounds) {
  const auto table = solve_reference(2, 100, Params{8});
  EXPECT_EQ(table.max_interrupts(), 2);
  EXPECT_EQ(table.max_lifespan(), 100);
  EXPECT_EQ(table.params().c, 8);
  EXPECT_EQ(table.level(0).size(), 101u);
  EXPECT_THROW(table.value(3, 50), std::out_of_range);
  EXPECT_THROW(table.value(0, 101), std::out_of_range);
  EXPECT_THROW(table.value(-1, 0), std::out_of_range);
  EXPECT_THROW(table.level(5), std::out_of_range);
}

TEST(ValueTable, RejectsInvalidConstruction) {
  EXPECT_THROW(ValueTable(-1, 10, Params{8}), std::invalid_argument);
  EXPECT_THROW(ValueTable(1, -1, Params{8}), std::invalid_argument);
  EXPECT_THROW(ValueTable(1, 10, Params{0}), std::invalid_argument);
}

TEST(ValueTable, HandComputedTinyInstance) {
  // c=2, p=1. V_1(L) = max_t min((t⊖2)+V_1(L−t), L−t⊖2).
  // V_1(6): split 3+3: adversary kills one 3 → residual 3 run long = 1;
  // no-interrupt = 1+1 = 2 → min 1. Check the solver agrees.
  const auto table = solve_reference(1, 12, Params{2});
  EXPECT_EQ(table.value(1, 6), 1);
  // V_1(4) = 0 (threshold (p+1)c = 4).
  EXPECT_EQ(table.value(1, 4), 0);
  EXPECT_GT(table.value(1, 6), table.value(1, 5));
}

TEST(ValueTable, ViewReadsExternalSlabWithoutCopying) {
  // The mapped-store read path: a view over an externally owned slab must
  // be indistinguishable from the owning table on every read accessor.
  const auto owner = solve_reference(2, 60, Params{8});
  const auto slab = owner.slab();
  const ValueTable view =
      ValueTable::view(2, 60, Params{8}, slab, nullptr);
  EXPECT_FALSE(view.owns_storage());
  EXPECT_TRUE(owner.owns_storage());
  EXPECT_EQ(view.bytes(), owner.bytes());
  EXPECT_EQ(view.slab().data(), slab.data());  // zero-copy: same memory
  for (int p = 0; p <= 2; ++p) {
    for (Ticks l = 0; l <= 60; ++l) {
      ASSERT_EQ(view.value(p, l), owner.value(p, l));
    }
  }
  EXPECT_THROW(view.value(3, 0), std::out_of_range);  // bounds still apply
}

TEST(ValueTable, ViewIsImmutableByConstruction) {
  const auto owner = solve_reference(1, 20, Params{4});
  ValueTable view = ValueTable::view(1, 20, Params{4}, owner.slab(), nullptr);
  EXPECT_THROW(view.mutable_level(0), std::logic_error);
}

TEST(ValueTable, ViewRejectsDimensionMismatch) {
  const auto owner = solve_reference(1, 20, Params{4});
  EXPECT_THROW(ValueTable::view(2, 20, Params{4}, owner.slab(), nullptr),
               std::invalid_argument);
  EXPECT_THROW(ValueTable::view(1, 21, Params{4}, owner.slab(), nullptr),
               std::invalid_argument);
  EXPECT_THROW(ValueTable::view(1, -1, Params{4}, owner.slab(), nullptr),
               std::invalid_argument);
}

TEST(ValueTable, ViewKeepaliveOutlivesTheSource) {
  // The keepalive is the view's ONLY lifetime anchor: hand it a buffer
  // owned by a shared_ptr, drop every other reference, and the view (and
  // its copies) must keep reading valid data.
  const auto owner = solve_reference(1, 30, Params{4});
  auto backing = std::make_shared<std::vector<Ticks>>(
      owner.slab().begin(), owner.slab().end());
  ValueTable view = ValueTable::view(
      1, 30, Params{4}, std::span<const Ticks>(*backing), backing);
  const Ticks expect = owner.value(1, 30);
  backing.reset();                  // view's keepalive is now the only owner
  ValueTable copy = view;           // copies share the keepalive
  EXPECT_EQ(view.value(1, 30), expect);
  EXPECT_EQ(copy.value(1, 30), expect);
}

TEST(ValueTable, P1AgreesWithDirectMinimaxScan) {
  // Independent O(N^2) check of level 1 against a from-scratch formula:
  // V_1(L) = max_t min( (t⊖c) + V_1(L−t), (L−t) ⊖ c ) computed here without
  // reusing the solver's code path (guards against shared-bug blindness).
  const Ticks c = 8, max_l = 400;
  const auto table = solve_reference(1, max_l, Params{c});
  std::vector<Ticks> v1(static_cast<std::size_t>(max_l) + 1, 0);
  for (Ticks l = 1; l <= max_l; ++l) {
    Ticks best = 0;
    for (Ticks t = 1; t <= l; ++t) {
      const Ticks a = positive_sub(t, c) + v1[static_cast<std::size_t>(l - t)];
      const Ticks b = positive_sub(l - t, c);
      best = std::max(best, std::min(a, b));
    }
    v1[static_cast<std::size_t>(l)] = best;
    ASSERT_EQ(table.value(1, l), best) << "l=" << l;
  }
}

}  // namespace
}  // namespace nowsched::solver
