#include "solver/nonadaptive_opt.h"

#include <gtest/gtest.h>

#include "core/bounds.h"
#include "core/guidelines.h"
#include "solver/fast_solver.h"

namespace nowsched::solver {
namespace {

constexpr Params kParams{16};

TEST(CommittedSearch, NeverWorseThanSeed) {
  for (Ticks u : {Ticks{512}, Ticks{2048}, Ticks{8192}}) {
    for (int p : {1, 2, 3}) {
      const auto result = optimize_committed(u, p, kParams);
      EXPECT_GE(result.value, result.start_value) << "u=" << u << " p=" << p;
      EXPECT_EQ(result.schedule.total(), u);
    }
  }
}

TEST(CommittedSearch, ResultValueMatchesReEvaluation) {
  const auto result = optimize_committed(4096, 2, kParams);
  EXPECT_EQ(result.value,
            nonadaptive_guaranteed_work(result.schedule, 4096, 2, kParams));
}

TEST(CommittedSearch, EqualPeriodFamilyIsNearGloballyOptimal) {
  // §3.1's optimality claim, probed beyond the equal family: free-form local
  // search must not beat the best equal-period schedule by more than a
  // low-order sliver (a couple of c).
  for (Ticks u : {Ticks{1024}, Ticks{4096}}) {
    for (int p : {1, 2, 3}) {
      const auto search = best_equal_period_count(u, p, kParams);
      const auto freeform = optimize_committed(u, p, kParams);
      EXPECT_LE(freeform.value, search.best_value + 3 * kParams.c)
          << "u=" << u << " p=" << p << " (free-form found a big improvement)";
    }
  }
}

TEST(CommittedSearch, NeverExceedsAdaptiveOptimum) {
  const Ticks u = 4096;
  const auto table = solve_fast(3, u, kParams);
  for (int p : {1, 2, 3}) {
    const auto result = optimize_committed(u, p, kParams);
    EXPECT_LE(result.value, table.value(p, u)) << "p=" << p;
  }
}

TEST(CommittedSearch, DeterministicUnderSeed) {
  CommittedSearchOptions opts;
  opts.seed = 99;
  const auto a = optimize_committed(2048, 2, kParams, opts);
  const auto b = optimize_committed(2048, 2, kParams, opts);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.schedule, b.schedule);
}

TEST(CommittedSearch, ImprovesClearlySuboptimalSeedsViaMoves) {
  // With p=0 the guideline is already the optimum (single period); the
  // search must simply keep it.
  const auto result = optimize_committed(1000, 0, kParams);
  EXPECT_EQ(result.value, 1000 - kParams.c);
}

TEST(CommittedSearch, TracksCorrectedClosedForm) {
  const Ticks u = 8192;
  const int p = 2;
  const auto result = optimize_committed(u, p, kParams);
  const double formula = bounds::nonadaptive_work(static_cast<double>(u), p, 16.0);
  // The committed optimum sits within ~2c + grid slack of the formula.
  EXPECT_NEAR(static_cast<double>(result.value), formula, 3.0 * 16.0 + 8.0);
}

}  // namespace
}  // namespace nowsched::solver
