// nowsched-rpc v1 framing under adversity: round-trips, partial delivery
// split at every byte boundary, truncation, oversized-length rejection,
// garbage magic/version/reserved bytes, and a NOWSCHED_FUZZ_CASES-tiered
// random-split battery. The contract under test: malformed input yields
// DecodeStatus::kError with a diagnostic — never a crash, hang, or silent
// resync — and fragmentation never changes what decodes.
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rpc/frame.h"
#include "util/parse.h"
#include "util/rng.h"

namespace nowsched {
namespace {

using rpc::DecodeStatus;
using rpc::Frame;
using rpc::FrameDecoder;

/// Generated-case count: NOWSCHED_FUZZ_CASES when set (strictly parsed, a
/// malformed value throws), else `fallback` — same tiering as the
/// conformance suite so nightly runs deepen this battery too.
int fuzz_cases(int fallback) {
  const char* env = std::getenv("NOWSCHED_FUZZ_CASES");
  if (env == nullptr || *env == '\0') return fallback;
  const auto v = util::parse_int64(env);
  if (!v || *v < 1 || *v > std::numeric_limits<int>::max()) {
    throw std::runtime_error(
        "NOWSCHED_FUZZ_CASES must be a positive int-range integer, got '" +
        std::string(env) + "'");
  }
  return static_cast<int>(*v);
}

std::string wire(std::uint8_t type, const std::string& payload) {
  return rpc::encode_frame(type, payload);
}

TEST(RpcFrame, EncodesHeaderLayoutExactly) {
  const std::string bytes = wire(7, "hi");
  ASSERT_EQ(bytes.size(), rpc::kHeaderSize + 2);
  EXPECT_EQ(bytes.substr(0, 4), "NWRP");
  EXPECT_EQ(static_cast<unsigned char>(bytes[4]), rpc::kProtocolVersion);
  EXPECT_EQ(static_cast<unsigned char>(bytes[5]), 7);
  EXPECT_EQ(bytes[6], '\0');
  EXPECT_EQ(bytes[7], '\0');
  // Little-endian length.
  EXPECT_EQ(static_cast<unsigned char>(bytes[8]), 2);
  EXPECT_EQ(bytes[9], '\0');
  EXPECT_EQ(bytes[10], '\0');
  EXPECT_EQ(bytes[11], '\0');
  EXPECT_EQ(bytes.substr(12), "hi");
}

TEST(RpcFrame, RoundTripsSingleAndEmptyPayload) {
  for (const std::string& payload : {std::string("nowsched-submit v1\nx=1\n"),
                                     std::string(), std::string(1000, 'z')}) {
    FrameDecoder decoder;
    decoder.append(wire(3, payload));
    Frame frame;
    ASSERT_EQ(decoder.next(frame), DecodeStatus::kFrame);
    EXPECT_EQ(frame.type, 3);
    EXPECT_EQ(frame.payload, payload);
    EXPECT_EQ(decoder.next(frame), DecodeStatus::kNeedMore);
    EXPECT_EQ(decoder.buffered(), 0u);
  }
}

TEST(RpcFrame, DecodesBackToBackFramesFromOneAppend) {
  FrameDecoder decoder;
  decoder.append(wire(1, "first") + wire(2, "second") + wire(3, ""));
  Frame frame;
  ASSERT_EQ(decoder.next(frame), DecodeStatus::kFrame);
  EXPECT_EQ(frame.type, 1);
  EXPECT_EQ(frame.payload, "first");
  ASSERT_EQ(decoder.next(frame), DecodeStatus::kFrame);
  EXPECT_EQ(frame.type, 2);
  EXPECT_EQ(frame.payload, "second");
  ASSERT_EQ(decoder.next(frame), DecodeStatus::kFrame);
  EXPECT_EQ(frame.type, 3);
  EXPECT_TRUE(frame.payload.empty());
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kNeedMore);
}

TEST(RpcFrame, SplitAtEveryByteBoundaryDecodesIdentically) {
  // Two frames; the stream is cut into [0,k) + [k,end) for EVERY k. Any
  // fragmentation-sensitive bug (header straddling a read, payload split,
  // frame boundary split) shows up as a k where decoding diverges.
  const std::string stream = wire(9, "payload-one\nline2\n") + wire(10, "xy");
  for (std::size_t k = 0; k <= stream.size(); ++k) {
    FrameDecoder decoder;
    std::vector<Frame> got;
    for (const std::string& part :
         {stream.substr(0, k), stream.substr(k)}) {
      decoder.append(part);
      Frame frame;
      while (decoder.next(frame) == DecodeStatus::kFrame) got.push_back(frame);
    }
    ASSERT_EQ(got.size(), 2u) << "split at " << k;
    EXPECT_EQ(got[0].type, 9) << "split at " << k;
    EXPECT_EQ(got[0].payload, "payload-one\nline2\n") << "split at " << k;
    EXPECT_EQ(got[1].type, 10) << "split at " << k;
    EXPECT_EQ(got[1].payload, "xy") << "split at " << k;
  }
}

TEST(RpcFrame, TruncatedFrameReportsNeedMoreNotError) {
  const std::string bytes = wire(4, "truncated-payload");
  for (std::size_t k = 0; k < bytes.size(); ++k) {
    FrameDecoder decoder;
    decoder.append(bytes.substr(0, k));
    Frame frame;
    EXPECT_EQ(decoder.next(frame), DecodeStatus::kNeedMore) << "prefix " << k;
    EXPECT_TRUE(decoder.error().empty());
  }
}

TEST(RpcFrame, GarbageMagicIsATypedError) {
  std::string bytes = wire(1, "x");
  bytes[0] = 'X';
  FrameDecoder decoder;
  decoder.append(bytes);
  Frame frame;
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kError);
  EXPECT_NE(decoder.error().find("magic"), std::string::npos);
}

TEST(RpcFrame, WrongVersionIsATypedError) {
  std::string bytes = wire(1, "x");
  bytes[4] = 2;
  FrameDecoder decoder;
  decoder.append(bytes);
  Frame frame;
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kError);
  EXPECT_NE(decoder.error().find("version"), std::string::npos);
}

TEST(RpcFrame, NonzeroReservedBytesAreATypedError) {
  for (const int offset : {6, 7}) {
    std::string bytes = wire(1, "x");
    bytes[static_cast<std::size_t>(offset)] = 1;
    FrameDecoder decoder;
    decoder.append(bytes);
    Frame frame;
    EXPECT_EQ(decoder.next(frame), DecodeStatus::kError);
    EXPECT_NE(decoder.error().find("reserved"), std::string::npos);
  }
}

TEST(RpcFrame, OversizedDeclaredLengthRejectedBeforePayloadArrives) {
  // Header declares kMaxPayload + 1: the decoder must reject on the header
  // alone — waiting for 16 MiB that will never come is the hang this guards.
  std::string bytes = wire(1, "");
  const std::uint32_t huge = rpc::kMaxPayload + 1;
  bytes[8] = static_cast<char>(huge & 0xff);
  bytes[9] = static_cast<char>((huge >> 8) & 0xff);
  bytes[10] = static_cast<char>((huge >> 16) & 0xff);
  bytes[11] = static_cast<char>((huge >> 24) & 0xff);
  FrameDecoder decoder;
  decoder.append(bytes);
  Frame frame;
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kError);
  EXPECT_NE(decoder.error().find("cap"), std::string::npos);
}

TEST(RpcFrame, EncodeRejectsOversizedPayload) {
  EXPECT_THROW(rpc::encode_frame(1, std::string(rpc::kMaxPayload + 1, 'a')),
               std::length_error);
}

TEST(RpcFrame, PoisonedDecoderStaysPoisonedAndIgnoresAppends) {
  std::string bytes = wire(1, "x");
  bytes[0] = '?';
  FrameDecoder decoder;
  decoder.append(bytes);
  Frame frame;
  ASSERT_EQ(decoder.next(frame), DecodeStatus::kError);
  const std::string reason = decoder.error();
  decoder.append(wire(2, "perfectly valid"));  // must not resync
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kError);
  EXPECT_EQ(decoder.error(), reason);
}

TEST(RpcFrame, RandomSplitBatteryPreservesEveryFrame) {
  // Tiered fuzz: random frame sequences delivered in random fragments must
  // decode to exactly the encoded sequence, regardless of fragmentation.
  const int cases = fuzz_cases(200);
  util::Rng rng(20260809);
  for (int c = 0; c < cases; ++c) {
    const std::size_t frames = 1 + rng.next_below(5);
    std::string stream;
    std::vector<Frame> expected(frames);
    for (std::size_t f = 0; f < frames; ++f) {
      expected[f].type = static_cast<std::uint8_t>(rng.next_below(256));
      const std::size_t len = rng.next_below(512);
      expected[f].payload.resize(len);
      for (std::size_t i = 0; i < len; ++i) {
        expected[f].payload[i] = static_cast<char>(rng.next_below(256));
      }
      stream += rpc::encode_frame(expected[f].type, expected[f].payload);
    }

    FrameDecoder decoder;
    std::vector<Frame> got;
    std::size_t pos = 0;
    while (pos < stream.size()) {
      const std::size_t chunk = 1 + rng.next_below(64);
      const std::size_t end = std::min(stream.size(), pos + chunk);
      decoder.append(std::string_view(stream).substr(pos, end - pos));
      pos = end;
      Frame frame;
      while (decoder.next(frame) == DecodeStatus::kFrame) {
        got.push_back(std::move(frame));
      }
    }
    ASSERT_EQ(got.size(), frames) << "case " << c;
    for (std::size_t f = 0; f < frames; ++f) {
      EXPECT_EQ(got[f].type, expected[f].type) << "case " << c;
      EXPECT_EQ(got[f].payload, expected[f].payload) << "case " << c;
    }
  }
}

TEST(RpcFrame, RandomGarbageNeverCrashesOrFalselyDecodes) {
  // Pure noise: the decoder must reach kError or kNeedMore, never emit a
  // frame whose bytes were not a valid encoding, and never throw.
  const int cases = fuzz_cases(200);
  util::Rng rng(977);
  for (int c = 0; c < cases; ++c) {
    const std::size_t len = rng.next_below(256);
    std::string noise(len, '\0');
    for (std::size_t i = 0; i < len; ++i) {
      noise[i] = static_cast<char>(rng.next_below(256));
    }
    // Avoid the astronomically-unlikely-but-valid case of noise that forms
    // a real header: force a bad magic byte when 12+ bytes are present.
    if (len >= 12 && noise.compare(0, 4, "NWRP") == 0) noise[0] = '!';
    FrameDecoder decoder;
    decoder.append(noise);
    Frame frame;
    const DecodeStatus status = decoder.next(frame);
    EXPECT_TRUE(status == DecodeStatus::kError || status == DecodeStatus::kNeedMore)
        << "case " << c;
  }
}

}  // namespace
}  // namespace nowsched
