#include "core/transforms.h"

#include <gtest/gtest.h>

#include "core/closed_form.h"

namespace nowsched {
namespace {

constexpr Params kParams{10};

// ---------------------------------------------------------------------------
// Thm 4.1 — make_productive
// ---------------------------------------------------------------------------

TEST(MakeProductive, MergesShortNonTerminalPeriods) {
  // 5 <= c merges into the next period.
  const auto out = make_productive(EpisodeSchedule({5, 20, 30}), kParams);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.period(0), 25);
  EXPECT_EQ(out.period(1), 30);
}

TEST(MakeProductive, KeepsShortTerminalPeriod) {
  const auto out = make_productive(EpisodeSchedule({20, 30, 5}), kParams);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out.period(2), 5);
  EXPECT_TRUE(out.is_productive(kParams));
}

TEST(MakeProductive, CascadingMerges) {
  // 3,3,3 all merge forward into the 20.
  const auto out = make_productive(EpisodeSchedule({3, 3, 3, 20}), kParams);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.period(0), 29);
}

TEST(MakeProductive, PreservesTotalLifespan) {
  const EpisodeSchedule in({1, 9, 10, 11, 2, 30, 10});
  const auto out = make_productive(in, kParams);
  EXPECT_EQ(out.total(), in.total());
  EXPECT_TRUE(out.is_productive(kParams));
}

TEST(MakeProductive, IdempotentOnProductiveSchedules) {
  const EpisodeSchedule in({30, 20, 11, 5});
  ASSERT_TRUE(in.is_productive(kParams));
  EXPECT_EQ(make_productive(in, kParams), in);
}

TEST(MakeProductive, NeverDecreasesGuaranteedWorkP1) {
  // Thm 4.1's guarantee, checked with the exact 1-interrupt evaluator on a
  // batch of deliberately awkward schedules.
  const std::vector<std::vector<Ticks>> cases = {
      {5, 20, 30, 2, 40},        {1, 1, 1, 1, 96},      {10, 10, 10, 10, 10, 50},
      {9, 11, 9, 11, 9, 11, 40}, {2, 98}, {50, 3, 47},
  };
  for (const auto& periods : cases) {
    const EpisodeSchedule in{std::vector<Ticks>(periods)};
    const Ticks u = in.total();
    const auto out = make_productive(in, kParams);
    EXPECT_GE(guaranteed_work_p1(out, u, kParams), guaranteed_work_p1(in, u, kParams))
        << "case " << in.to_string();
  }
}

// ---------------------------------------------------------------------------
// Thm 4.2 — split_immune_tail
// ---------------------------------------------------------------------------

TEST(SplitImmuneTail, ShortPeriodsUntouched) {
  const EpisodeSchedule in({50, 15, 18});
  const auto out = split_immune_tail(in, 2, kParams);
  // 15 and 18 are both <= 2c = 20, so nothing changes.
  EXPECT_EQ(out, in);
}

TEST(SplitImmuneTail, LongImmunePeriodSplitsIntoBand) {
  const EpisodeSchedule in({50, 45});
  const auto out = split_immune_tail(in, 1, kParams);
  // 45 > 2c=20 splits into ⌈45/20⌉ = 3 pieces of 15 — inside (c, 2c].
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out.period(0), 50);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_GT(out.period(i), kParams.c);
    EXPECT_LE(out.period(i), 2 * kParams.c);
  }
  EXPECT_EQ(out.total(), in.total());
}

TEST(SplitImmuneTail, NonImmunePrefixPreserved) {
  const EpisodeSchedule in({100, 100, 100});
  const auto out = split_immune_tail(in, 1, kParams);
  EXPECT_EQ(out.period(0), 100);
  EXPECT_EQ(out.period(1), 100);
  EXPECT_GT(out.size(), 3u);
}

TEST(SplitImmuneTail, ImmuneCountLargerThanScheduleIsWholeSchedule) {
  const EpisodeSchedule in({100, 100});
  const auto out = split_immune_tail(in, 99, kParams);
  EXPECT_EQ(out.total(), 200);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_GT(out.period(i), kParams.c);
    EXPECT_LE(out.period(i), 2 * kParams.c);
  }
}

TEST(SplitImmuneTail, ZeroImmuneIsIdentity) {
  const EpisodeSchedule in({100, 100});
  EXPECT_EQ(split_immune_tail(in, 0, kParams), in);
}

TEST(SplitImmuneTail, SplitPiecesBalanced) {
  const EpisodeSchedule in({41});
  const auto out = split_immune_tail(in, 1, kParams);
  // ⌈41/20⌉ = 3 pieces: 14,14,13 or similar; all in (c, 2c].
  ASSERT_EQ(out.size(), 3u);
  Ticks lo = out.period(0), hi = out.period(0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    lo = std::min(lo, out.period(i));
    hi = std::max(hi, out.period(i));
  }
  EXPECT_LE(hi - lo, 1);
}

TEST(SplitImmuneTail, IncreasesUninterruptedWorkOfImmuneRegion) {
  // Splitting a long period into (c, 2c] pieces pays more setup but the
  // adversary never interrupts an immune region — what matters for Thm 4.2
  // is that work production does not DECREASE when the region's killed
  // exposure shrinks. With no interrupts the split costs extra setup:
  const EpisodeSchedule in({100});
  const auto out = split_immune_tail(in, 1, kParams);
  // uninterrupted: in = 90, out = 5 pieces of 20 -> 5*(20-10) = 50.
  EXPECT_LT(out.work_if_uninterrupted(kParams), in.work_if_uninterrupted(kParams));
  // BUT against an interrupt anywhere in the region, the split banks the
  // completed pieces where the single long period banks nothing:
  EXPECT_EQ(in.banked_work(0, kParams), 0);
  EXPECT_GT(out.banked_work(out.size() - 1, kParams), 0);
}

}  // namespace
}  // namespace nowsched
