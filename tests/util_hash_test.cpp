// util/hash.h and util/striped_lock.h: the deterministic hashing and lock
// striping the solve cache is keyed and guarded by.
#include "util/hash.h"
#include "util/striped_lock.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <thread>
#include <vector>

namespace nowsched::util {
namespace {

TEST(HashMix, IsAFixedPublishedFunction) {
  // SplitMix64 finalizer reference values — these pin the exact function, so
  // cache shard layouts and derived seeds are identical on every platform.
  EXPECT_EQ(hash_mix(0), 0ull);
  EXPECT_EQ(hash_mix(1), 0x5692161D100B05E5ull);
  // hash_combine(0, 0) == mix(golden ratio) == the first output of the
  // SplitMix64 stream seeded with 0 (published reference value).
  EXPECT_EQ(hash_combine(0, 0), 0xE220A8397B1DCDAFull);
  // Bijectivity spot check: distinct inputs map to distinct outputs.
  std::set<std::uint64_t> seen;
  for (std::uint64_t x = 0; x < 4096; ++x) seen.insert(hash_mix(x));
  EXPECT_EQ(seen.size(), 4096u);
}

TEST(HashMix, SelfConsistencyAcrossCalls) {
  EXPECT_EQ(hash_mix(42), hash_mix(42));
  EXPECT_NE(hash_mix(42), hash_mix(43));
}

TEST(HashCombine, OrderSensitiveAndZeroSafe) {
  EXPECT_NE(hash_combine(hash_combine(0, 1), 2), hash_combine(hash_combine(0, 2), 1));
  EXPECT_NE(hash_combine(0, 0), 0u);  // golden-ratio offset keeps zeros alive
  // Distinct multi-field keys stay distinct (no trivial collapsing).
  std::set<std::uint64_t> seen;
  for (std::uint64_t a = 0; a < 64; ++a) {
    for (std::uint64_t b = 0; b < 64; ++b) {
      seen.insert(hash_combine(hash_combine(0, a), b));
    }
  }
  EXPECT_EQ(seen.size(), 64u * 64u);
}

TEST(StripedMutex, RoundsUpToPowerOfTwo) {
  EXPECT_EQ(StripedMutex(0).stripes(), 1u);
  EXPECT_EQ(StripedMutex(1).stripes(), 1u);
  EXPECT_EQ(StripedMutex(3).stripes(), 4u);
  EXPECT_EQ(StripedMutex(8).stripes(), 8u);
  EXPECT_EQ(StripedMutex(9).stripes(), 16u);
}

TEST(StripedMutex, IndexIsStableAndInRange) {
  StripedMutex striped(8);
  for (std::uint64_t h : {0ull, 1ull, 7ull, 8ull, 0xDEADBEEFull, ~0ull}) {
    const std::size_t i = striped.index_for(h);
    EXPECT_LT(i, striped.stripes());
    EXPECT_EQ(i, striped.index_for(h));  // stable
  }
  // Mask semantics: hashes equal mod stripes share a stripe.
  EXPECT_EQ(striped.index_for(5), striped.index_for(5 + 8));
}

TEST(StripedMutex, LockGuardsTheSelectedStripe) {
  StripedMutex striped(4);
  auto guard = striped.lock(0x123);
  EXPECT_TRUE(guard.owns_lock());
  // A different stripe stays lockable while this one is held.
  const std::size_t held = striped.index_for(0x123);
  const std::size_t other = (held + 1) % striped.stripes();
  EXPECT_TRUE(striped.stripe(other).try_lock());
  striped.stripe(other).unlock();
}

TEST(StripedMutex, SerializesContendingWriters) {
  // 4 threads × 10k increments on counters guarded by their stripe: any
  // lost update (or TSan report) fails. Keys map onto 2 stripes.
  StripedMutex striped(2);
  std::vector<std::uint64_t> counters(striped.stripes(), 0);
  constexpr int kThreads = 4;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&striped, &counters, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::uint64_t h = hash_combine(static_cast<std::uint64_t>(t),
                                             static_cast<std::uint64_t>(i));
        auto guard = striped.lock(h);
        counters[striped.index_for(h)] += 1;
      }
    });
  }
  for (auto& th : threads) th.join();
  std::uint64_t total = 0;
  for (std::uint64_t v : counters) total += v;
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace nowsched::util
