// RAII scratch directory for tests that exercise on-disk state (the mmap
// primitives, the persistent table store, the warm-start service mount).
// Each instance gets a process-unique path under the system temp directory
// and removes the whole tree on destruction, so parallel ctest invocations
// and crashed runs cannot poison each other.
#pragma once

#include <atomic>
#include <filesystem>
#include <string>

#if defined(_WIN32)
#include <process.h>
#else
#include <unistd.h>
#endif

namespace nowsched::testing {

class TempDir {
 public:
  explicit TempDir(const std::string& label) {
    static std::atomic<std::uint64_t> counter{0};
#if defined(_WIN32)
    const auto pid = static_cast<unsigned long>(::_getpid());
#else
    const auto pid = static_cast<unsigned long>(::getpid());
#endif
    path_ = std::filesystem::temp_directory_path() /
            ("nowsched-test-" + label + "-" + std::to_string(pid) + "-" +
             std::to_string(counter.fetch_add(1)));
    std::filesystem::create_directories(path_);
  }

  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);  // best effort
  }

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::filesystem::path& path() const noexcept { return path_; }
  std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

}  // namespace nowsched::testing
