// `nowsched-stats v1` text serialization: strict round-trips (the format
// the Stats RPC and sched_service both serve), and hard rejection of
// malformed snapshots — unknown keys, duplicates, missing fields, tenant
// count mismatches. Same contract style as the `nowsched-scenario v1`
// replay format.
#include "service/stats_format.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "service/scheduler_service.h"
#include "service/service_stats.h"

namespace nowsched::service {
namespace {

ServiceStats sample_stats() {
  ServiceStats stats;
  stats.queue_policy = "drr";
  stats.workers = 4;
  stats.queued_jobs = 2;
  stats.inflight_jobs = 1;
  stats.submitted_jobs = 40;
  stats.accepted_jobs = 37;
  stats.rejected_jobs = 3;
  stats.completed_jobs = 30;
  stats.failed_jobs = 1;
  stats.cancelled_jobs = 3;
  stats.completed_scenarios = 240;
  stats.latency = {30, 1.5, 4.0, 9.0 + 1e-13, 12.5};

  TenantStats a;
  a.tenant = "alpha";
  a.quota_bytes = 4 << 20;
  a.submitted_jobs = 25;
  a.accepted_jobs = 23;
  a.rejected_tenant_full = 1;
  a.rejected_throttled = 1;
  a.completed_jobs = 20;
  a.failed_jobs = 1;
  a.cancelled_jobs = 1;
  a.submitted_scenarios = 184;
  a.completed_scenarios = 160;
  a.queued_jobs = 1;
  a.inflight_jobs = 0;
  a.pending_scenarios = 8;
  a.cache = {100, 20, 5, 2, 3, 17, 123456};
  a.latency = {20, 1.25, 3.5, 8.75, 12.5};

  TenantStats b;
  b.tenant = "beta";
  b.submitted_jobs = 15;
  b.accepted_jobs = 14;
  b.rejected_global_full = 1;
  b.completed_jobs = 10;
  b.cancelled_jobs = 2;
  b.submitted_scenarios = 112;
  b.completed_scenarios = 80;
  b.queued_jobs = 1;
  b.inflight_jobs = 1;
  b.pending_scenarios = 16;
  b.latency = {10, 2.0, 5.0, 9.5, 11.0};

  stats.tenants = {a, b};
  return stats;
}

TEST(StatsFormat, HeaderAndRoundTripAreExact) {
  const ServiceStats stats = sample_stats();
  const std::string text = to_stats_string(stats);
  EXPECT_EQ(text.rfind("nowsched-stats v1\n", 0), 0u);

  // Strict round-trip: parse then re-serialize reproduces the text byte for
  // byte — %.17g doubles survive, field order is canonical.
  const ServiceStats parsed = stats_from_string(text);
  EXPECT_EQ(to_stats_string(parsed), text);

  EXPECT_EQ(parsed.queue_policy, "drr");
  EXPECT_EQ(parsed.workers, 4u);
  EXPECT_EQ(parsed.submitted_jobs, 40u);
  EXPECT_EQ(parsed.latency.count, 30u);
  EXPECT_EQ(parsed.latency.p99_ms, stats.latency.p99_ms);  // bit-exact
  ASSERT_EQ(parsed.tenants.size(), 2u);
  EXPECT_EQ(parsed.tenants[0].tenant, "alpha");
  EXPECT_EQ(parsed.tenants[0].cache.resident_bytes, 123456u);
  EXPECT_EQ(parsed.tenants[0].rejected_total(), 2u);
  EXPECT_EQ(parsed.tenants[1].tenant, "beta");
  EXPECT_EQ(parsed.tenants[1].pending_scenarios, 16u);
}

TEST(StatsFormat, ZeroTenantSnapshotRoundTrips) {
  ServiceStats stats;
  stats.queue_policy = "fifo";
  const std::string text = to_stats_string(stats);
  const ServiceStats parsed = stats_from_string(text);
  EXPECT_EQ(to_stats_string(parsed), text);
  EXPECT_TRUE(parsed.tenants.empty());
}

TEST(StatsFormat, LiveServiceSnapshotRoundTrips) {
  // Not just hand-built structs: a snapshot from a real service (manual
  // mode, one completed job) must survive the round trip too.
  ServiceOptions options;
  options.workers = 0;
  SchedulerService service(options);
  sim::ScenarioSpec spec;
  spec.policy = sim::PolicyKind::kEqualized;
  spec.owner = sim::OwnerKind::kPoisson;
  spec.owner_a = 500.0;
  spec.params = Params{16};
  spec.lifespan = 512;
  spec.max_interrupts = 2;
  spec.seed = 11;
  TicketSubmission sub = service.submit_job("gamma", {spec});
  ASSERT_TRUE(sub.accepted());
  ASSERT_TRUE(service.run_next());
  (void)service.fetch_result(sub.ticket.id);

  const std::string text = to_stats_string(service.stats());
  EXPECT_EQ(to_stats_string(stats_from_string(text)), text);
}

TEST(StatsFormat, RejectsMalformedText) {
  EXPECT_THROW(stats_from_string(""), std::invalid_argument);
  EXPECT_THROW(stats_from_string("nowsched-stats v2\n"), std::invalid_argument);
  EXPECT_THROW(stats_from_string("nowsched-stats v1"), std::invalid_argument);

  const std::string good = to_stats_string(sample_stats());

  // Unknown key.
  EXPECT_THROW(stats_from_string(good + "bogus_key=1\n"), std::invalid_argument);

  // Duplicate key: repeat the workers= line.
  {
    std::string dup = good;
    const std::size_t pos = dup.find("workers=");
    const std::size_t end = dup.find('\n', pos);
    dup.insert(end + 1, dup.substr(pos, end - pos + 1));
    EXPECT_THROW(stats_from_string(dup), std::invalid_argument);
  }

  // Missing key: drop the queued_jobs= line entirely.
  {
    std::string missing = good;
    const std::size_t pos = missing.find("queued_jobs=");
    const std::size_t end = missing.find('\n', pos);
    missing.erase(pos, end - pos + 1);
    EXPECT_THROW(stats_from_string(missing), std::invalid_argument);
  }

  // Tenant count mismatch: claim one more tenant than is present.
  {
    std::string short_count = good;
    const std::size_t pos = short_count.find("tenants=2");
    ASSERT_NE(pos, std::string::npos);
    short_count.replace(pos, 9, "tenants=3");
    EXPECT_THROW(stats_from_string(short_count), std::invalid_argument);
  }

  // Non-numeric counter.
  {
    std::string bad = good;
    const std::size_t pos = bad.find("submitted_jobs=");
    const std::size_t end = bad.find('\n', pos);
    bad.replace(pos, end - pos, "submitted_jobs=many");
    EXPECT_THROW(stats_from_string(bad), std::invalid_argument);
  }
}

}  // namespace
}  // namespace nowsched::service
