// The experiment-runner harness: registry contents, tier behaviour, and the
// three synchronized emitters (CSV / markdown / JSON) round-tripping a
// sample record.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/harness.h"

namespace nowsched::bench::harness {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::size_t count_lines(const std::string& text) {
  std::size_t lines = 0;
  for (char ch : text) lines += (ch == '\n');
  return lines;
}

util::Flags no_flags() {
  static const char* argv[] = {"bench_harness_test"};
  return util::Flags(1, argv);
}

std::string fresh_outdir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "nowsched_harness_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(Registry, KnowsAllSeventeenExperimentsInOrder) {
  register_all_experiments();
  const auto& registry = Registry::instance();
  ASSERT_EQ(registry.size(), 17u);
  for (std::size_t i = 0; i < registry.size(); ++i) {
    const Experiment& e = registry.experiments()[i];
    EXPECT_EQ(e.id, "E" + std::to_string(i + 1));
    EXPECT_EQ(e.binary, "bench_" + e.slug);
    EXPECT_FALSE(e.title.empty());
    EXPECT_FALSE(e.summary.empty());
    EXPECT_TRUE(e.run != nullptr) << e.id;
  }
  // Lookup works by id and by slug, and misses return nullptr.
  EXPECT_NE(registry.find("E5"), nullptr);
  EXPECT_EQ(registry.find("E5"), registry.find("adaptive_vs_optimal"));
  EXPECT_EQ(registry.find("E14"), registry.find("scenario_sweep"));
  EXPECT_EQ(registry.find("E15"), registry.find("sched_service"));
  EXPECT_EQ(registry.find("E16"), registry.find("policy_racing"));
  EXPECT_EQ(registry.find("E17"), registry.find("rpc_roundtrip"));
  EXPECT_EQ(registry.find("E18"), nullptr);
  EXPECT_EQ(registry.find(""), nullptr);
}

TEST(Registry, RegistrationIsIdempotentAndRejectsDuplicates) {
  register_all_experiments();
  register_all_experiments();  // second call must be a no-op
  auto& registry = Registry::instance();
  EXPECT_EQ(registry.size(), 17u);
  EXPECT_THROW(registry.add(registry.experiments()[0]), std::logic_error);
  EXPECT_EQ(registry.size(), 17u);
}

TEST(Tier, ParsesQuickAndFullSpellings) {
  {
    const char* argv[] = {"prog", "--tier=quick"};
    EXPECT_EQ(tier_from_flags(util::Flags(2, argv)), Tier::kQuick);
  }
  {
    const char* argv[] = {"prog", "--quick"};
    EXPECT_EQ(tier_from_flags(util::Flags(2, argv)), Tier::kQuick);
  }
  {
    const char* argv[] = {"prog"};
    EXPECT_EQ(tier_from_flags(util::Flags(1, argv)), Tier::kFull);
  }
  {
    const char* argv[] = {"prog", "--tier=bogus"};
    const util::Flags flags(2, argv);
    EXPECT_EXIT(tier_from_flags(flags), ::testing::ExitedWithCode(2),
                "--tier expects quick or full");
  }
}

TEST(Runner, EmittersRoundTripASampleRecord) {
  register_all_experiments();
  const Experiment* e = Registry::instance().find("E2");
  ASSERT_NE(e, nullptr);
  const util::Flags flags = no_flags();
  const std::string outdir = fresh_outdir("roundtrip");

  const RunResult result =
      run_experiment(*e, Tier::kQuick, flags, outdir, /*echo=*/false);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.wall_ms, 0.0);
  EXPECT_GT(result.csv_rows, 0u);

  // CSV: one header line plus exactly csv_rows data rows.
  ASSERT_EQ(result.csv_path, outdir + "/table2.csv");
  const std::string csv = read_file(result.csv_path);
  EXPECT_EQ(count_lines(csv), result.csv_rows + 1);
  EXPECT_EQ(csv.substr(0, csv.find('\n')),
            "U_over_c,m_opt_formula,m_opt_real,alpha,W_opt_exact,"
            "W_opt_paper_approx,m_guideline_paper,m_guideline_real,"
            "W_guideline_exact,W_dp");

  // JSON record: names the experiment, the tier, and the CSV row count.
  ASSERT_EQ(result.json_path, outdir + "/BENCH_table2.json");
  const std::string json = read_file(result.json_path);
  EXPECT_NE(json.find("\"id\": \"E2\""), std::string::npos);
  EXPECT_NE(json.find("\"slug\": \"table2\""), std::string::npos);
  EXPECT_NE(json.find("\"tier\": \"quick\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\": true"), std::string::npos);
  EXPECT_NE(json.find("\"csv\": \"table2.csv\""), std::string::npos);
  EXPECT_NE(json.find("\"csv_rows\": " + std::to_string(result.csv_rows)),
            std::string::npos);
  // Host-class stamp: "<threads>t-<isa>", the key compare_baselines.py uses
  // to refuse cross-machine ratio comparisons.
  EXPECT_NE(json.find("\"host_class\": \"" + host_class() + "\""),
            std::string::npos);
  EXPECT_NE(json.find("\"host_threads\": "), std::string::npos);
  EXPECT_NE(host_class().find("t-"), std::string::npos);

  // Markdown section: heading, artifact pointers, and a pipe-table row.
  EXPECT_EQ(result.markdown.rfind("## E2 — ", 0), 0u) << result.markdown;
  EXPECT_NE(result.markdown.find("`bench_table2`"), std::string::npos);
  EXPECT_NE(result.markdown.find("BENCH_table2.json"), std::string::npos);
  EXPECT_NE(result.markdown.find("| U/c |"), std::string::npos);
}

TEST(Runner, FailingExperimentIsCapturedNotPropagated) {
  const Experiment boom{"EX", "boom", "always throws", "bench_boom", "kaboom",
                        [](Context&) { throw std::runtime_error("kaboom"); }};
  const util::Flags flags = no_flags();
  const std::string outdir = fresh_outdir("boom");
  const RunResult result =
      run_experiment(boom, Tier::kQuick, flags, outdir, /*echo=*/false);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, "kaboom");
  // The JSON record is still written so CI can tell "crashed" from "absent".
  const std::string json = read_file(result.json_path);
  EXPECT_NE(json.find("\"ok\": false"), std::string::npos);
  EXPECT_NE(json.find("\"error\": \"kaboom\""), std::string::npos);
  EXPECT_NE(result.markdown.find("**RUN FAILED:** kaboom"), std::string::npos);
}

TEST(Runner, QuickTierRunsAllExperimentsUnderTimeBudget) {
  register_all_experiments();
  const util::Flags flags = no_flags();
  const std::string outdir = fresh_outdir("quick_all");

  const auto start = std::chrono::steady_clock::now();
  for (const Experiment& e : Registry::instance().experiments()) {
    const RunResult result =
        run_experiment(e, Tier::kQuick, flags, outdir, /*echo=*/false);
    EXPECT_TRUE(result.ok) << e.id << ": " << result.error;
    EXPECT_FALSE(result.markdown.empty()) << e.id;
    EXPECT_TRUE(std::filesystem::exists(result.json_path)) << e.id;
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // The quick tier is the CI smoke: the whole registry must stay comfortably
  // inside the ctest timeout even in a Debug build (Release runs in ~1 s).
  EXPECT_LT(seconds, 120.0);
}

TEST(Context, MetricsAndTablesFeedTheMarkdownSection) {
  const util::Flags flags = no_flags();
  Context ctx("sample", Tier::kFull, flags, fresh_outdir("ctx"), /*echo=*/false);
  EXPECT_FALSE(ctx.quick());

  util::Table t({"a", "b"});
  t.add_row({"1", "2"});
  ctx.table(t, "caption");
  ctx.text("a note");
  ctx.metric("speed", 12.5);

  EXPECT_NE(ctx.markdown().find("**caption**"), std::string::npos);
  EXPECT_NE(ctx.markdown().find("| 1 | 2 |"), std::string::npos);
  EXPECT_NE(ctx.markdown().find("a note"), std::string::npos);
  ASSERT_EQ(ctx.metrics().count("speed"), 1u);
  EXPECT_DOUBLE_EQ(ctx.metrics().at("speed"), 12.5);
  // No CSV was opened: writing a row without a header is a logic error and
  // the context reports no CSV path.
  EXPECT_EQ(ctx.csv_path(), "");
  EXPECT_THROW(ctx.write_csv_row(std::vector<double>{1.0}), std::logic_error);
}

}  // namespace
}  // namespace nowsched::bench::harness
