#include "sim/session.h"

#include <gtest/gtest.h>

#include "adversary/heuristics.h"
#include "adversary/stochastic.h"
#include "adversary/trace.h"
#include "core/baselines.h"
#include "core/guidelines.h"
#include "solver/policy_eval.h"

namespace nowsched::sim {
namespace {

constexpr Params kParams{16};

/// Converts a solver BestResponse into an absolute-time interrupt trace by
/// replaying the policy's episodes move by move.
adversary::InterruptTrace to_trace(const solver::BestResponse& br,
                                   const SchedulingPolicy& policy, Ticks lifespan,
                                   int p, const Params& params) {
  adversary::InterruptTrace trace;
  Ticks consumed = 0;
  Ticks l = lifespan;
  int q = p;
  for (const auto& move : br.moves) {
    const auto episode = policy.episode(l, q, params);
    if (!move.killed) break;
    const Ticks tick = episode.end(*move.killed);
    trace.append(consumed + tick);
    consumed += tick;
    l -= tick;
    --q;
  }
  return trace;
}

TEST(Session, UninterruptedRunBanksAllWork) {
  adversary::NoOpAdversary owner;
  AdaptiveGuidelinePolicy policy;
  const Opportunity opp{1000, 3};
  const auto metrics = run_session(policy, owner, opp, kParams);
  const auto episode = policy.episode(1000, 3, kParams);
  EXPECT_EQ(metrics.banked_work, episode.work_if_uninterrupted(kParams));
  EXPECT_EQ(metrics.interrupts, 0);
  EXPECT_EQ(metrics.episodes, 1u);
  EXPECT_EQ(metrics.periods_completed, episode.size());
  EXPECT_EQ(metrics.lifespan_used, 1000);
}

TEST(Session, LifespanConservation) {
  // banked + comm + killed-capacity bookkeeping must add back to U.
  adversary::FirstPeriodAdversary owner;
  AdaptiveGuidelinePolicy policy;
  const auto metrics = run_session(policy, owner, Opportunity{2000, 2}, kParams);
  EXPECT_EQ(metrics.lifespan_used, 2000);
  EXPECT_EQ(metrics.interrupts, 2);
  EXPECT_EQ(metrics.episodes, 3u);  // 2 interrupted + 1 final
}

TEST(Session, ZeroLifespanFinishesImmediately) {
  adversary::NoOpAdversary owner;
  SingleBlockPolicy policy;
  const auto metrics = run_session(policy, owner, Opportunity{0, 1}, kParams);
  EXPECT_EQ(metrics.banked_work, 0);
  EXPECT_EQ(metrics.episodes, 0u);
}

TEST(Session, MinimaxTraceReproducesAnalyticGuaranteedWork) {
  // The keystone integration check: the DES run under the solver's optimal
  // adversary play must bank EXACTLY the analytic guaranteed work.
  const AdaptiveGuidelinePolicy policy;
  for (Ticks u : {Ticks{500}, Ticks{1000}, Ticks{1777}}) {
    for (int p : {0, 1, 2, 3}) {
      const auto br = solver::best_response(policy, u, p, kParams);
      adversary::TraceAdversary owner(to_trace(br, policy, u, p, kParams));
      const auto metrics = run_session(policy, owner, Opportunity{u, p}, kParams);
      EXPECT_EQ(metrics.banked_work, br.value) << "u=" << u << " p=" << p;
      EXPECT_EQ(metrics.lifespan_used, u);
    }
  }
}

TEST(Session, MinimaxTraceReproducesAnalyticForBaselines) {
  const FixedChunkPolicy chunks(3.0);
  const GeometricPolicy geo(2.0, 2.0);
  for (const SchedulingPolicy* policy :
       {static_cast<const SchedulingPolicy*>(&chunks),
        static_cast<const SchedulingPolicy*>(&geo)}) {
    const Ticks u = 1200;
    const int p = 2;
    const auto br = solver::best_response(*policy, u, p, kParams);
    adversary::TraceAdversary owner(to_trace(br, *policy, u, p, kParams));
    const auto metrics = run_session(*policy, owner, Opportunity{u, p}, kParams);
    EXPECT_EQ(metrics.banked_work, br.value) << policy->name();
  }
}

TEST(Session, HeuristicOwnersNeverPushBelowGuaranteed) {
  // The guaranteed value is a floor across ALL owner behaviours.
  const AdaptiveGuidelinePolicy policy;
  const Ticks u = 1500;
  const int p = 2;
  const Ticks floor_value = solver::evaluate_policy(policy, u, p, kParams);
  adversary::FirstPeriodAdversary first;
  adversary::LargestPeriodAdversary largest;
  adversary::ObservationAdversary observed;
  adversary::NoOpAdversary noop;
  for (adversary::Adversary* owner :
       {static_cast<adversary::Adversary*>(&first),
        static_cast<adversary::Adversary*>(&largest),
        static_cast<adversary::Adversary*>(&observed),
        static_cast<adversary::Adversary*>(&noop)}) {
    const auto metrics = run_session(policy, *owner, Opportunity{u, p}, kParams);
    EXPECT_GE(metrics.banked_work, floor_value) << owner->name();
  }
}

TEST(Session, StochasticOwnersRespectInterruptBudget) {
  AdaptiveGuidelinePolicy policy;
  adversary::PoissonAdversary owner(100.0, 31);
  for (int p : {0, 1, 2, 5}) {
    owner.reset(static_cast<std::uint64_t>(p) * 7 + 1);
    const auto metrics = run_session(policy, owner, Opportunity{3000, p}, kParams);
    EXPECT_LE(metrics.interrupts, p);
    EXPECT_EQ(metrics.lifespan_used, 3000);
  }
}

TEST(Session, TaskBagDrainsAndAccountsFragmentation) {
  adversary::NoOpAdversary owner;
  AdaptiveGuidelinePolicy policy;
  auto bag = TaskBag::uniform(40, 7);
  const auto metrics = run_session(policy, owner, Opportunity{1000, 2}, kParams, &bag);
  // Every completed task's work is counted once; fragmentation is what the
  // periods could have held but tasks didn't fill.
  EXPECT_EQ(metrics.task_work, bag.completed_work());
  EXPECT_EQ(metrics.tasks_completed, bag.completed());
  EXPECT_EQ(metrics.task_work + metrics.fragmentation, metrics.banked_work);
}

TEST(Session, KilledBatchesReturnToBag) {
  adversary::FirstPeriodAdversary owner;
  AdaptiveGuidelinePolicy policy;
  auto bag = TaskBag::uniform(1000, 3);  // plenty of tasks
  const auto metrics = run_session(policy, owner, Opportunity{800, 2}, kParams, &bag);
  // Conservation: completed + pending == total tasks.
  EXPECT_EQ(bag.completed() + bag.pending(), 1000u);
  EXPECT_EQ(metrics.tasks_completed, bag.completed());
  EXPECT_GT(metrics.lost_work, 0);
}

TEST(Session, PolicyNotSpanningResidualIsAnError) {
  // A policy returning a schedule shorter than the residual violates §2.2.
  class BrokenPolicy final : public SchedulingPolicy {
   public:
    std::string name() const override { return "broken"; }
    EpisodeSchedule episode(Ticks residual, int, const Params&) const override {
      return EpisodeSchedule({std::max<Ticks>(1, residual / 2)});
    }
  };
  BrokenPolicy policy;
  adversary::NoOpAdversary owner;
  EXPECT_THROW(run_session(policy, owner, Opportunity{100, 1}, kParams),
               std::logic_error);
}

TEST(SessionMetrics, MergeAddsFields) {
  SessionMetrics a, b;
  a.banked_work = 10;
  a.interrupts = 1;
  a.episodes = 2;
  b.banked_work = 5;
  b.interrupts = 2;
  b.episodes = 1;
  a.merge(b);
  EXPECT_EQ(a.banked_work, 15);
  EXPECT_EQ(a.interrupts, 3);
  EXPECT_EQ(a.episodes, 3u);
}

TEST(SessionMetrics, ToStringMentionsKeyFields) {
  SessionMetrics m;
  m.banked_work = 42;
  const auto str = m.to_string();
  EXPECT_NE(str.find("banked=42"), std::string::npos);
  EXPECT_NE(str.find("interrupts="), std::string::npos);
}

}  // namespace
}  // namespace nowsched::sim
