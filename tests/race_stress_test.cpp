// Determinism stress for the racing layer: the same (domain, seed, budget)
// must produce IDENTICAL verdicts, elimination sequences, and pull counts
// across thread counts and cache configurations — the race engine's
// allocation decisions read only banked statistics, and the banked scores
// inherit BatchRunner's bit-identical-across-threads contract.
//
// This suite runs under TSan in CI (like service_stress_test): the racing
// pulls fan sessions out over a real ThreadPool while dp-optimal arms hit
// the shared solve cache concurrently, so a data race in the scoring path
// surfaces here, not in production.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "race/policy_race.h"
#include "race/race.h"
#include "util/thread_pool.h"

namespace nowsched::race {
namespace {

Region stress_region(const std::string& name, sim::OwnerKind owner) {
  Region region;
  region.name = name;
  region.domain.owners = {owner};
  region.domain.min_c = 2;
  region.domain.max_c = 24;
  region.domain.min_lifespan = 64;
  region.domain.max_lifespan = 768;
  region.domain.min_interrupts = 0;
  region.domain.max_interrupts = 3;
  region.domain.contract_classes = 4;  // fold contracts → real cache sharing
  region.domain.class_fraction = 0.5;
  return region;
}

std::vector<Region> stress_regions() {
  return {stress_region("poisson", sim::OwnerKind::kPoisson),
          stress_region("bursty", sim::OwnerKind::kBursty)};
}

std::vector<PolicyArm> stress_arms() {
  // dp-optimal arms exercise the solve cache; guideline arms are closed-form.
  return {{sim::PolicyKind::kDpOptimal, 0},
          {sim::PolicyKind::kEqualized, 0},
          {sim::PolicyKind::kDpOptimal, 1},
          {sim::PolicyKind::kAdaptivePaper, 1}};
}

struct Fingerprint {
  std::size_t best = 0;
  bool confident = false;
  std::size_t total_pulls = 0;
  std::vector<std::size_t> elimination_order;
  std::vector<std::string> verdicts;   ///< full bit-exact serializations
  std::vector<double> means;           ///< per-arm banked means (bit-exact)
  std::vector<std::size_t> pull_counts;

  bool operator==(const Fingerprint&) const = default;
};

Fingerprint run_fingerprint(Mode mode, util::ThreadPool* pool, bool cache_enabled) {
  PolicyRaceOptions options;
  options.race.mode = mode;
  options.race.budget = 64;          // successive halving
  options.race.batch = 8;            // lucb
  options.race.max_total_pulls = 256;
  options.race.delta = 0.05;
  options.seed = 0xD15C0;
  options.batch.pool = pool;
  options.batch.cache_enabled = cache_enabled;
  PolicyRace race(stress_regions(), stress_arms(), options);
  const PolicyRaceResult result = race.run();

  Fingerprint fp;
  fp.best = result.race.best;
  fp.confident = result.race.confident;
  fp.total_pulls = result.race.total_pulls;
  fp.elimination_order = result.race.elimination_order;
  for (const VerdictRecord& v : result.verdicts) {
    fp.verdicts.push_back(to_verdict_string(v));
  }
  for (const ArmOutcome& arm : result.race.arms) {
    fp.means.push_back(arm.stats.mean);
    fp.pull_counts.push_back(arm.stats.n);
  }
  return fp;
}

TEST(RaceStress, IdenticalAcrossThreadCountsAndCacheConfig) {
  for (const Mode mode : {Mode::kSuccessiveHalving, Mode::kLucb}) {
    const Fingerprint baseline = run_fingerprint(mode, nullptr, true);

    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      util::ThreadPool pool(threads);
      EXPECT_EQ(run_fingerprint(mode, &pool, true), baseline)
          << to_string(mode) << " threads=" << threads;
    }

    // Cache off: every dp-optimal session re-solves privately; scores (and
    // therefore the whole race trajectory) must not move.
    util::ThreadPool pool(4);
    EXPECT_EQ(run_fingerprint(mode, &pool, false), baseline)
        << to_string(mode) << " cache off";
  }
}

TEST(RaceStress, RepeatedRunsAreFixedPoints) {
  // Same configuration twice in one process (warm global state, fresh
  // runner each time): bit-identical results.
  util::ThreadPool pool(8);
  const Fingerprint first = run_fingerprint(Mode::kSuccessiveHalving, &pool, true);
  const Fingerprint second = run_fingerprint(Mode::kSuccessiveHalving, &pool, true);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace nowsched::race
