#include "sim/event.h"

#include <gtest/gtest.h>

#include <vector>

namespace nowsched::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&](Simulator&) { order.push_back(3); });
  sim.schedule_at(10, [&](Simulator&) { order.push_back(1); });
  sim.schedule_at(20, [&](Simulator&) { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, SameTimeEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i](Simulator&) { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, CallbacksMayScheduleMore) {
  Simulator sim;
  int fired = 0;
  std::function<void(Simulator&)> chain = [&](Simulator& s) {
    ++fired;
    if (fired < 5) s.schedule_after(10, chain);
  };
  sim.schedule_at(0, chain);
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), 40);
}

TEST(Simulator, ScheduleInPastThrows) {
  Simulator sim;
  sim.schedule_at(10, [](Simulator& s) {
    EXPECT_THROW(s.schedule_at(5, [](Simulator&) {}), std::invalid_argument);
  });
  sim.run();
  EXPECT_THROW(sim.schedule_after(-1, [](Simulator&) {}), std::invalid_argument);
}

TEST(Simulator, MaxEventsLimitsProcessing) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(i, [&](Simulator&) { ++fired; });
  }
  EXPECT_EQ(sim.run(4), 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(sim.pending(), 6u);
  sim.run();
  EXPECT_EQ(fired, 10);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, NowAdvancesOnlyWithEvents) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  sim.schedule_at(100, [](Simulator&) {});
  sim.run();
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, ZeroDelaySelfScheduleProgresses) {
  Simulator sim;
  int count = 0;
  std::function<void(Simulator&)> f = [&](Simulator& s) {
    if (++count < 3) s.schedule_after(0, f);
  };
  sim.schedule_at(1, f);
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(sim.now(), 1);
}

}  // namespace
}  // namespace nowsched::sim
