#include "solver/nonadaptive_eval.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <vector>

#include "core/bounds.h"
#include "core/guidelines.h"

namespace nowsched::solver {
namespace {

constexpr Ticks kC = 10;
constexpr Params kParams{kC};

/// Brute force over every interrupt subset (with the §2.2 tail-merge rule)
/// for small schedules — the oracle for the O(m·p) DP.
Ticks brute_force_value(const EpisodeSchedule& s, Ticks u, int p, const Params& params) {
  const std::size_t m = s.size();
  Ticks best = s.work_if_uninterrupted(params);
  // Enumerate subsets of killed periods of size 1..p.
  std::vector<std::size_t> killed;
  const std::uint64_t limit = 1ull << m;
  for (std::uint64_t mask = 1; mask < limit; ++mask) {
    if (std::popcount(mask) > p) continue;
    killed.clear();
    for (std::size_t k = 0; k < m; ++k) {
      if (mask & (1ull << k)) killed.push_back(k);
    }
    Ticks work = 0;
    if (static_cast<int>(killed.size()) == p) {
      // Long-period rule: everything after the last killed period collapses.
      const std::size_t last = killed.back();
      for (std::size_t k = 0; k < last; ++k) {
        if (!(mask & (1ull << k))) work += positive_sub(s.period(k), params.c);
      }
      work += positive_sub(positive_sub(u, s.end(last)), params.c);
    } else {
      for (std::size_t k = 0; k < m; ++k) {
        if (!(mask & (1ull << k))) work += positive_sub(s.period(k), params.c);
      }
    }
    best = std::min(best, work);
  }
  return best;
}

TEST(NonAdaptiveEval, MatchesBruteForceOnSmallSchedules) {
  const std::vector<std::vector<Ticks>> cases = {
      {25, 25, 25, 25},       {40, 30, 20, 10}, {12, 12, 12, 12, 12, 12, 12, 16},
      {100},                  {55, 45},         {30, 11, 29, 10, 20},
      {13, 14, 15, 16, 17, 25},
  };
  for (const auto& periods : cases) {
    const EpisodeSchedule s{std::vector<Ticks>(periods)};
    const Ticks u = s.total();
    for (int p = 0; p <= 4; ++p) {
      EXPECT_EQ(nonadaptive_guaranteed_work(s, u, p, kParams),
                brute_force_value(s, u, p, kParams))
          << s.to_string() << " p=" << p;
    }
  }
}

TEST(NonAdaptiveEval, ZeroInterruptsIsFullWork) {
  const EpisodeSchedule s({25, 25, 25, 25});
  EXPECT_EQ(nonadaptive_guaranteed_work(s, 100, 0, kParams), 4 * 15);
}

TEST(NonAdaptiveEval, KillingLastPeriodsIsOptimalForEqualSchedules) {
  // §3.1 analysis: against equal periods, killing the LAST p periods is an
  // optimal adversary strategy (the final long period degenerates to zero
  // length), so the best-response value equals (m − p) completed periods.
  // Ties with other interrupt sets are possible on the grid, so assert the
  // value, not the specific argmin.
  const auto s = EpisodeSchedule::equal_split(1000, 10);
  for (int p = 1; p <= 3; ++p) {
    const auto br = nonadaptive_best_response(s, 1000, p, kParams);
    EXPECT_EQ(br.value, static_cast<Ticks>(10 - p) * (100 - kC)) << "p=" << p;
    EXPECT_LE(static_cast<int>(br.killed_periods.size()), p);
    // Killing the last p periods attains the same value: recompute directly.
    Ticks direct = 0;
    for (int k = 0; k < 10 - p; ++k) direct += 100 - kParams.c;
    EXPECT_EQ(br.value, direct);
  }
}

TEST(NonAdaptiveEval, BestResponseNeverWorseThanAnyHeuristic) {
  const auto s = nonadaptive_guideline(2000, 2, kParams);
  const Ticks dp = nonadaptive_guaranteed_work(s, 2000, 2, kParams);
  EXPECT_LE(dp, brute_force_value(s, 2000, 2, kParams));
}

TEST(NonAdaptiveEval, RequiresSpanningSchedule) {
  EXPECT_THROW(nonadaptive_guaranteed_work(EpisodeSchedule({10}), 20, 1, kParams),
               std::invalid_argument);
  EXPECT_THROW(nonadaptive_guaranteed_work(EpisodeSchedule({10}), 10, -1, kParams),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Equal-period search: §3.1's "cannot be improved" claim on the grid
// ---------------------------------------------------------------------------

struct SearchCase {
  Ticks u;
  int p;
};

class EqualPeriodSearchProperty : public ::testing::TestWithParam<SearchCase> {};

TEST_P(EqualPeriodSearchProperty, GuidelineCountNearExhaustiveOptimum) {
  const auto [u, p] = GetParam();
  const auto search = best_equal_period_count(u, p, kParams);
  const std::size_t guideline_m = nonadaptive_period_count(u, p, kParams);
  // The guideline's m is within one period of the exhaustive argmax, OR its
  // value is within one tick-of-c of the optimum (plateaus are wide).
  const auto sched = EpisodeSchedule::equal_split(u, guideline_m);
  const Ticks guideline_value = nonadaptive_guaranteed_work(sched, u, p, kParams);
  EXPECT_GE(guideline_value, search.best_value - 2 * kC)
      << "guideline m=" << guideline_m << " best m=" << search.best_m;
}

TEST_P(EqualPeriodSearchProperty, MeasuredValueTracksClosedFormFormula) {
  const auto [u, p] = GetParam();
  const auto search = best_equal_period_count(u, p, kParams);
  const double formula = bounds::nonadaptive_work(static_cast<double>(u), p,
                                                  static_cast<double>(kC));
  // Grid effects and the floor in m cost at most ~m ticks + O(c).
  EXPECT_NEAR(static_cast<double>(search.best_value), formula,
              0.05 * static_cast<double>(u) + 3.0 * kC);
  // The OCR reading U − √(2pcU) + pc over-promises; measured work must stay
  // BELOW it by roughly (2−√2)√(pcU) — confirming the corrected constant.
  const double ocr = bounds::nonadaptive_work_ocr(static_cast<double>(u), p,
                                                  static_cast<double>(kC));
  EXPECT_LT(static_cast<double>(search.best_value), ocr);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EqualPeriodSearchProperty,
                         ::testing::Values(SearchCase{4000, 1}, SearchCase{4000, 2},
                                           SearchCase{8000, 3}, SearchCase{16000, 4},
                                           SearchCase{2500, 1}, SearchCase{12000, 2}));

TEST(EqualPeriodSearch, ValueByMHasSingleRoughPeak) {
  // The §3.1 calculus optimum implies a unimodal-ish value curve in m;
  // verify the exhaustive curve rises then falls (allowing plateau noise of
  // one tick from integer splits).
  const auto search = best_equal_period_count(10000, 2, kParams);
  const auto& v = search.value_by_m;
  ASSERT_GT(v.size(), 10u);
  const std::size_t peak = search.best_m - 1;
  // Strictly before the peak, no dip below (value - 2); after, no rise above.
  for (std::size_t i = 0; i + 1 < peak; ++i) EXPECT_LE(v[i], v[peak]);
  for (std::size_t i = peak; i + 1 < v.size(); ++i) EXPECT_GE(v[peak], v[i]);
}

TEST(EqualPeriodSearch, CapsAtLifespan) {
  const auto search = best_equal_period_count(12, 1, kParams, 100);
  EXPECT_LE(search.value_by_m.size(), 12u);
}

}  // namespace
}  // namespace nowsched::solver
