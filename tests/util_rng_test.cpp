#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace nowsched::util {
namespace {

TEST(Rng, SplitMix64ReferenceStream) {
  // Reference outputs of SplitMix64 seeded with 0 (published test vector;
  // e.g. the values used by the xoshiro project's seeding docs).
  Rng rng(0);
  EXPECT_EQ(rng.next(), 0xE220A8397B1DCDAFull);
  EXPECT_EQ(rng.next(), 0x6E789E6AA1B965F4ull);
  EXPECT_EQ(rng.next(), 0x06C45D188009454Full);
}

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DistinctSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowZeroIsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextBelowCoversSmallRangeUniformly) {
  Rng rng(123);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) counts[rng.next_below(8)]++;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 8.0, 5.0 * std::sqrt(n / 8.0));
  }
}

TEST(Rng, UniformIntInclusiveEndpointsReached) {
  Rng rng(9);
  bool lo_seen = false, hi_seen = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 6);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 6);
    lo_seen |= (v == 3);
    hi_seen |= (v == 6);
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(11);
  double mean = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    mean += u;
  }
  EXPECT_NEAR(mean / n, 0.5, 0.01);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(13);
  const double lambda = 0.25;
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(lambda);
  EXPECT_NEAR(sum / n, 1.0 / lambda, 0.15);
}

TEST(Rng, ParetoRespectsScaleFloor) {
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) EXPECT_GE(rng.pareto(3.0, 1.5), 3.0);
}

TEST(Rng, ParetoMedianMatchesTheory) {
  // Median of Pareto(x_m, alpha) is x_m * 2^(1/alpha).
  Rng rng(19);
  std::vector<double> xs;
  const int n = 40001;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) xs.push_back(rng.pareto(1.0, 2.0));
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[n / 2], std::pow(2.0, 0.5), 0.03);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, SplitStreamsAreIndependentlySeeded) {
  Rng parent(5);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (child1.next() == child2.next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, SampleDistinctProducesSortedDistinct) {
  Rng rng(31);
  for (std::uint64_t k : {0ull, 1ull, 5ull, 20ull}) {
    const auto sample = rng.sample_distinct(20, k);
    ASSERT_EQ(sample.size(), k);
    std::set<std::uint64_t> uniq(sample.begin(), sample.end());
    EXPECT_EQ(uniq.size(), k);
    EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
    for (auto v : sample) EXPECT_LT(v, 20u);
  }
}

TEST(Rng, SampleDistinctFullRangeIsPermutationOfAll) {
  Rng rng(37);
  const auto sample = rng.sample_distinct(10, 10);
  ASSERT_EQ(sample.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

}  // namespace
}  // namespace nowsched::util
