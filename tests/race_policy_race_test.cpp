// The racing engine and the PolicyRace layer, pinned by hand-traced and
// planted-ground-truth statistics:
//
//   * successive halving is hand-traced on planted arm means — elimination
//     order, per-round pull counts, and pull conservation are asserted
//     exactly (orderings and counts, never wall clocks);
//   * LUCB identification on planted Bernoulli arms with a known best arm
//     and gap: over NOWSCHED_FUZZ_CASES-tiered repetitions the
//     mis-identification rate must stay within δ AND the adaptive race must
//     spend at most half the fixed-allocation (kUniform) budget — the
//     acceptance bar of the racing layer;
//   * PolicyRace wiring: matched scenario draws across arms of one region,
//     verdict distillation, and the bit-exact "nowsched-verdict v1"
//     round-trip.
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "race/policy_race.h"
#include "race/regret_hunt.h"
#include "race/race.h"
#include "util/hash.h"
#include "util/parse.h"
#include "util/rng.h"

namespace nowsched::race {
namespace {

/// Tier knob, same semantics as conformance::fuzz_cases (kept local so this
/// suite does not link the conformance harness).
int fuzz_cases(int fallback) {
  const char* env = std::getenv("NOWSCHED_FUZZ_CASES");
  if (env == nullptr || *env == '\0') return fallback;
  const auto v = util::parse_int64(env);
  if (!v || *v < 1 || *v > std::numeric_limits<int>::max()) {
    throw std::runtime_error(
        "NOWSCHED_FUZZ_CASES must be a positive int-range integer, got '" +
        std::string(env) + "'");
  }
  return static_cast<int>(*v);
}

/// Deterministic constant-score sampler: arm a always scores means[a].
ArmSampler constant_sampler(std::vector<double> means) {
  return [means](std::size_t arm, std::uint64_t, std::size_t count) {
    return std::vector<double>(count, means[arm]);
  };
}

/// Planted Bernoulli arms: sample i of arm a is a deterministic coin with
/// P(1) = means[a], derived from (seed, a, i) — random-access pure, so the
/// race may draw in any batching.
ArmSampler bernoulli_sampler(std::vector<double> means, std::uint64_t seed) {
  return [means, seed](std::size_t arm, std::uint64_t start, std::size_t count) {
    std::vector<double> scores;
    scores.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      util::Rng rng(util::hash_combine(util::hash_combine(seed, arm), start + i));
      scores.push_back(rng.uniform01() < means[arm] ? 1.0 : 0.0);
    }
    return scores;
  };
}

// ---------------------------------------------------------------------------
// Successive halving, hand-traced
// ---------------------------------------------------------------------------

TEST(Race, SuccessiveHalvingHandTrace) {
  // 4 arms, planted means {0.9, 0.5, 0.3, 0.1}, budget 16.
  // rounds_total = ceil(log2 4) = 2.
  //   Round 1: |active| = 4 → 16/(4·2) = 2 pulls per arm (8 total).
  //            Keep ceil(4/2) = 2 → {0, 1}; eliminate 3 (mean .1) then 2.
  //   Round 2: |active| = 2 → 16/(2·2) = 4 pulls per arm (8 more).
  //            Keep ceil(2/2) = 1 → {0}; eliminate 1.
  RaceOptions options;
  options.mode = Mode::kSuccessiveHalving;
  options.budget = 16;
  options.delta = 0.1;
  const RaceResult r =
      run_race(4, options, constant_sampler({0.9, 0.5, 0.3, 0.1}));

  EXPECT_EQ(r.best, 0u);
  EXPECT_EQ(r.rounds, 2u);
  EXPECT_EQ(r.total_pulls, 16u);
  ASSERT_EQ(r.elimination_order, (std::vector<std::size_t>{3, 2, 1}));

  // Pull conservation, arm by arm.
  EXPECT_EQ(r.arms[0].stats.n, 6u);  // 2 + 4
  EXPECT_EQ(r.arms[1].stats.n, 6u);
  EXPECT_EQ(r.arms[2].stats.n, 2u);
  EXPECT_EQ(r.arms[3].stats.n, 2u);
  EXPECT_EQ(r.arms[0].batches, 2u);
  EXPECT_EQ(r.arms[3].batches, 1u);

  EXPECT_EQ(r.arms[0].round_eliminated, 0u);  // survived
  EXPECT_EQ(r.arms[1].round_eliminated, 2u);
  EXPECT_EQ(r.arms[2].round_eliminated, 1u);
  EXPECT_EQ(r.arms[3].round_eliminated, 1u);

  // Constant scores: means are exact, intervals bracket them.
  EXPECT_DOUBLE_EQ(r.arms[0].stats.mean, 0.9);
  EXPECT_DOUBLE_EQ(r.arms[1].stats.mean, 0.5);
  EXPECT_LE(r.arms[0].lower, 0.9);
  EXPECT_GE(r.arms[0].upper, 0.9);
}

TEST(Race, SuccessiveHalvingTieEliminatesHigherIndex) {
  // Arms 1 and 2 tie; the higher index must go first, and the survivor
  // ranking must keep the lower index.
  RaceOptions options;
  options.mode = Mode::kSuccessiveHalving;
  options.budget = 16;
  const RaceResult r =
      run_race(4, options, constant_sampler({0.9, 0.5, 0.5, 0.1}));
  EXPECT_EQ(r.best, 0u);
  ASSERT_EQ(r.elimination_order, (std::vector<std::size_t>{3, 2, 1}));
}

TEST(Race, SuccessiveHalvingTinyBudgetStillPullsEveryActiveArm) {
  // budget 1 << arms·rounds: the per-round allocation clamps to 1 pull per
  // active arm, so every arm still gets sampled before elimination.
  RaceOptions options;
  options.mode = Mode::kSuccessiveHalving;
  options.budget = 1;
  const RaceResult r =
      run_race(4, options, constant_sampler({0.9, 0.5, 0.3, 0.1}));
  EXPECT_EQ(r.best, 0u);
  EXPECT_EQ(r.total_pulls, 4u + 2u);  // round 1: 4 arms ×1, round 2: 2 arms ×1
  EXPECT_FALSE(r.confident);          // 1-2 pulls cannot separate at δ = 0.01
}

// ---------------------------------------------------------------------------
// LUCB / uniform stopping
// ---------------------------------------------------------------------------

TEST(Race, LucbStopsAndIdentifiesOnSeparatedConstantArms) {
  // Constant arms have zero variance: the empirical-Bernstein radius decays
  // as 1/n, so the (δ, ε) rule must trigger and declare arm 0.
  RaceOptions options;
  options.mode = Mode::kLucb;
  options.delta = 0.05;
  options.batch = 4;
  const RaceResult r = run_race(3, options, constant_sampler({0.8, 0.4, 0.2}));
  EXPECT_EQ(r.best, 0u);
  EXPECT_TRUE(r.confident);
  EXPECT_LT(r.total_pulls, options.max_total_pulls);
  // The leader's lower bound cleared every other upper bound (ε = 0).
  EXPECT_GE(r.arms[0].lower, r.arms[1].upper);
  EXPECT_GE(r.arms[0].lower, r.arms[2].upper);
}

TEST(Race, LucbConcentratesPullsOnContenders) {
  // Arms 0/1 are close; arm 2 is far behind. LUCB must spend most of its
  // budget on the contenders and starve the clear loser.
  RaceOptions options;
  options.mode = Mode::kLucb;
  options.delta = 0.1;
  options.epsilon = 0.02;
  options.batch = 8;
  const RaceResult r =
      run_race(3, options, bernoulli_sampler({0.7, 0.55, 0.1}, 0xFEED));
  EXPECT_EQ(r.best, 0u);
  EXPECT_TRUE(r.confident);
  EXPECT_GT(r.arms[0].stats.n, r.arms[2].stats.n);
  EXPECT_GT(r.arms[1].stats.n, r.arms[2].stats.n);
}

TEST(Race, BudgetCapEndsRaceUnconfident) {
  // Identical arms can never separate at ε = 0: the cap must end the race
  // with confident == false and total pulls within the cap.
  RaceOptions options;
  options.mode = Mode::kUniform;
  options.batch = 4;
  options.max_total_pulls = 64;
  const RaceResult r = run_race(4, options, constant_sampler({0.5, 0.5, 0.5, 0.5}));
  EXPECT_FALSE(r.confident);
  EXPECT_LE(r.total_pulls, 64u);
  EXPECT_EQ(r.best, 0u);  // tie → lowest index, deterministically
}

// ---------------------------------------------------------------------------
// Planted ground truth: identification error within δ, budget within half
// of fixed allocation.
// ---------------------------------------------------------------------------

TEST(Race, PlantedBestArmWithinDeltaAtHalfTheFixedBudget) {
  const int reps = fuzz_cases(200);
  // 8 arms, one planted best (gap 0.3 to the runner-up), the rest spread
  // out below — the regime racing is FOR. Fixed allocation keeps pulling
  // every arm until the hardest challenger separates; LUCB starves the
  // clearly-bad arms after a handful of batches and spends the budget on
  // the one contender, which is where the >= 2x budget-to-verdict win
  // comes from.
  const std::vector<double> means = {0.8, 0.5, 0.4, 0.35, 0.3, 0.25, 0.2, 0.15};
  RaceOptions lucb;
  lucb.mode = Mode::kLucb;
  lucb.delta = 0.1;
  lucb.epsilon = 0.1;  // well under the 0.3 gap: arm 0 is the only ε-best arm
  lucb.batch = 8;
  lucb.max_total_pulls = 1u << 18;
  RaceOptions uniform = lucb;
  uniform.mode = Mode::kUniform;

  int lucb_errors = 0;
  int uniform_errors = 0;
  std::uint64_t lucb_pulls = 0;
  std::uint64_t uniform_pulls = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto planted = bernoulli_sampler(
        means, util::hash_combine(0xBE57A4, static_cast<std::uint64_t>(rep)));
    const RaceResult r = run_race(means.size(), lucb, planted);
    const RaceResult u = run_race(means.size(), uniform, planted);
    if (!(r.best == 0 && r.confident)) ++lucb_errors;
    if (!(u.best == 0 && u.confident)) ++uniform_errors;
    lucb_pulls += r.total_pulls;
    uniform_pulls += u.total_pulls;
  }

  // Mis-identification within δ (the bounds are conservative, so the real
  // rate is far below; δ·reps is the contract, not the expectation).
  EXPECT_LE(lucb_errors, static_cast<int>(lucb.delta * reps));
  EXPECT_LE(uniform_errors, static_cast<int>(uniform.delta * reps));

  // The adaptive race reaches its verdicts on at most HALF the fixed
  // allocation's simulations — the racing layer's acceptance bar.
  EXPECT_LE(2 * lucb_pulls, uniform_pulls)
      << "lucb=" << lucb_pulls << " uniform=" << uniform_pulls;
}

// ---------------------------------------------------------------------------
// Engine contract checks
// ---------------------------------------------------------------------------

TEST(Race, RejectsInvalidOptionsAndMalformedSamplers) {
  RaceOptions options;
  const auto ok = constant_sampler({0.5, 0.6});
  EXPECT_THROW(run_race(1, options, ok), std::invalid_argument);
  options.delta = 0.0;
  EXPECT_THROW(run_race(2, options, ok), std::invalid_argument);
  options.delta = 0.01;
  options.epsilon = -0.5;
  EXPECT_THROW(run_race(2, options, ok), std::invalid_argument);
  options.epsilon = 0.0;
  options.batch = 0;
  EXPECT_THROW(run_race(2, options, ok), std::invalid_argument);
  options.batch = 16;
  options.mode = Mode::kLucb;
  options.max_total_pulls = 8;  // below arms · batch warm-up
  EXPECT_THROW(run_race(2, options, ok), std::invalid_argument);

  RaceOptions sh;
  sh.budget = 8;
  // Wrong batch length.
  EXPECT_THROW(
      run_race(2, sh,
               [](std::size_t, std::uint64_t, std::size_t) {
                 return std::vector<double>{};
               }),
      std::logic_error);
  // Score outside [0, score_range].
  EXPECT_THROW(
      run_race(2, sh,
               [](std::size_t, std::uint64_t, std::size_t count) {
                 return std::vector<double>(count, 1.5);
               }),
      std::logic_error);
}

TEST(Race, ModeNamesRoundTrip) {
  EXPECT_STREQ(to_string(Mode::kSuccessiveHalving), "successive-halving");
  EXPECT_STREQ(to_string(Mode::kLucb), "lucb");
  EXPECT_STREQ(to_string(Mode::kUniform), "uniform");
}

// ---------------------------------------------------------------------------
// PolicyRace: matched draws, verdicts, serialization
// ---------------------------------------------------------------------------

Region small_region(const std::string& name) {
  Region region;
  region.name = name;
  region.domain.owners = {sim::OwnerKind::kPoisson, sim::OwnerKind::kUniform};
  region.domain.min_c = 2;
  region.domain.max_c = 16;
  region.domain.min_lifespan = 64;
  region.domain.max_lifespan = 512;
  region.domain.min_interrupts = 0;
  region.domain.max_interrupts = 3;
  return region;
}

PolicyRaceOptions small_race_options() {
  PolicyRaceOptions options;
  options.race.mode = Mode::kSuccessiveHalving;
  options.race.budget = 48;
  options.race.delta = 0.1;
  options.seed = 7;
  return options;
}

TEST(PolicyRace, ArmsSharingARegionFaceIdenticalScenarioDraws) {
  // The matched-design contract: same region → identical contract, owner,
  // and seed sequences; only the forced policy differs.
  const std::vector<Region> regions = {small_region("mixed")};
  const std::vector<PolicyArm> arms = {
      {sim::PolicyKind::kEqualized, 0},
      {sim::PolicyKind::kAdaptivePaper, 0},
  };
  const PolicyRace race(regions, arms, small_race_options());
  for (std::uint64_t i = 0; i < 32; ++i) {
    const sim::ScenarioSpec a = race.sample_spec(0, i);
    const sim::ScenarioSpec b = race.sample_spec(1, i);
    EXPECT_EQ(a.policy, sim::PolicyKind::kEqualized);
    EXPECT_EQ(b.policy, sim::PolicyKind::kAdaptivePaper);
    EXPECT_EQ(a.owner, b.owner) << i;
    EXPECT_EQ(a.params.c, b.params.c) << i;
    EXPECT_EQ(a.lifespan, b.lifespan) << i;
    EXPECT_EQ(a.max_interrupts, b.max_interrupts) << i;
    EXPECT_EQ(a.seed, b.seed) << i;
    EXPECT_DOUBLE_EQ(a.owner_a, b.owner_a) << i;
  }
}

TEST(PolicyRace, RunProducesVerdictPerLoserWithWinnerFirst) {
  const std::vector<Region> regions = {small_region("mixed")};
  const std::vector<PolicyArm> arms = {
      {sim::PolicyKind::kDpOptimal, 0},
      {sim::PolicyKind::kEqualized, 0},
      {sim::PolicyKind::kNonAdaptiveRestart, 0},
  };
  PolicyRace race(regions, arms, small_race_options());
  const PolicyRaceResult result = race.run();

  ASSERT_EQ(result.verdicts.size(), arms.size() - 1);
  const std::string winner_policy =
      sim::to_string(arms[result.race.best].policy);
  for (const VerdictRecord& v : result.verdicts) {
    EXPECT_EQ(v.kind, "race");
    EXPECT_EQ(v.policy_a, winner_policy);
    EXPECT_EQ(v.region_a, "mixed");
    EXPECT_DOUBLE_EQ(v.gap_mean, v.mean_a - v.mean_b);
    EXPECT_LE(v.gap_lower, v.gap_mean);
    EXPECT_GE(v.gap_upper, v.gap_mean);
    EXPECT_EQ(v.delta, 0.1);
  }
  // Note: the winner is whichever arm banks the most work against THIS
  // region's stochastic owners — dp-optimal maximizes the worst case, so it
  // need not win a mean-score race. The race's job is only to be right
  // about the sample means, which the conformance differential pins.
  EXPECT_LT(result.race.best, arms.size());
}

TEST(PolicyRace, VerdictSerializationRoundTripsBitExactly) {
  VerdictRecord v;
  v.kind = "race";
  v.policy_a = "dp-optimal";
  v.region_a = "mixed/lo";
  v.policy_b = "equalized";
  v.region_b = "mixed/hi";
  v.mean_a = 0.7231896349106623;
  v.mean_b = 1.0 / 3.0;
  v.gap_mean = v.mean_a - v.mean_b;
  v.gap_lower = -0.0123456789012345678;
  v.gap_upper = 0.987654321;
  v.delta = 0.01;
  v.epsilon = 1e-3;
  v.pulls_a = 12345678901234567ull;
  v.pulls_b = 42;
  v.confident = true;

  const std::string text = to_verdict_string(v);
  EXPECT_EQ(text.rfind("nowsched-verdict v1\n", 0), 0u);
  const VerdictRecord back = verdict_from_string(text);
  EXPECT_EQ(back.kind, v.kind);
  EXPECT_EQ(back.policy_a, v.policy_a);
  EXPECT_EQ(back.region_a, v.region_a);
  EXPECT_EQ(back.policy_b, v.policy_b);
  EXPECT_EQ(back.region_b, v.region_b);
  EXPECT_EQ(back.mean_a, v.mean_a);  // bit-exact, not NEAR
  EXPECT_EQ(back.mean_b, v.mean_b);
  EXPECT_EQ(back.gap_mean, v.gap_mean);
  EXPECT_EQ(back.gap_lower, v.gap_lower);
  EXPECT_EQ(back.gap_upper, v.gap_upper);
  EXPECT_EQ(back.delta, v.delta);
  EXPECT_EQ(back.epsilon, v.epsilon);
  EXPECT_EQ(back.pulls_a, v.pulls_a);
  EXPECT_EQ(back.pulls_b, v.pulls_b);
  EXPECT_EQ(back.confident, v.confident);
  // And the round-trip is textually a fixed point.
  EXPECT_EQ(to_verdict_string(back), text);
}

TEST(PolicyRace, VerdictParserIsStrict) {
  EXPECT_THROW(verdict_from_string("nope\n"), std::invalid_argument);
  EXPECT_THROW(verdict_from_string("nowsched-verdict v1\nbogus_key=1\n"),
               std::invalid_argument);
  EXPECT_THROW(verdict_from_string("nowsched-verdict v1\nkind=race\n"),
               std::invalid_argument);  // incomplete
  EXPECT_THROW(
      verdict_from_string("nowsched-verdict v1\nkind=race\npolicy_a=x\n"
                          "policy_b=y\ngap_mean=zzz\ndelta=0.1\n"),
      std::invalid_argument);  // malformed number
  EXPECT_THROW(
      verdict_from_string("nowsched-verdict v1\nkind=race\npolicy_a=x\n"
                          "policy_b=y\ngap_mean=0.5\ndelta=0.1\nconfident=2\n"),
      std::invalid_argument);  // confident must be 0/1
}

TEST(PolicyRace, ConstructorValidates) {
  const std::vector<Region> regions = {small_region("mixed")};
  const std::vector<PolicyArm> one_arm = {{sim::PolicyKind::kEqualized, 0}};
  const std::vector<PolicyArm> bad_region = {
      {sim::PolicyKind::kEqualized, 0}, {sim::PolicyKind::kDpOptimal, 3}};
  EXPECT_THROW(PolicyRace({}, one_arm, small_race_options()),
               std::invalid_argument);
  EXPECT_THROW(PolicyRace(regions, one_arm, small_race_options()),
               std::invalid_argument);
  EXPECT_THROW(PolicyRace(regions, bad_region, small_race_options()),
               std::invalid_argument);
  EXPECT_THROW(arm_label({sim::PolicyKind::kEqualized, 9}, regions),
               std::invalid_argument);
  EXPECT_EQ(arm_label({sim::PolicyKind::kAdaptivePaper, 0}, regions),
            "adaptive-paper@mixed");
}

// ---------------------------------------------------------------------------
// Regret hunt
// ---------------------------------------------------------------------------

TEST(RegretHunt, SplitRegionHalvesTheWidestAxisGeometrically) {
  Region region = small_region("root");
  region.domain.min_lifespan = 64;
  region.domain.max_lifespan = 1024;  // log-width ln(16) — the widest axis
  region.domain.min_c = 2;
  region.domain.max_c = 8;
  const std::vector<Region> children = split_region(region);
  ASSERT_EQ(children.size(), 2u);
  EXPECT_EQ(children[0].name, "root/lo");
  EXPECT_EQ(children[1].name, "root/hi");
  // Geometric midpoint of [64, 1024] is sqrt(65536) = 256.
  EXPECT_EQ(children[0].domain.max_lifespan, 256);
  EXPECT_EQ(children[1].domain.min_lifespan, 257);
  // Untouched axes survive verbatim, and both children validate.
  EXPECT_EQ(children[0].domain.max_c, 8);
  children[0].domain.validate();
  children[1].domain.validate();
}

TEST(RegretHunt, SplitFallsBackToNarrowerAxes) {
  Region region = small_region("pt");
  region.domain.min_lifespan = region.domain.max_lifespan = 256;
  region.domain.min_c = 2;
  region.domain.max_c = 32;  // now the widest axis
  const std::vector<Region> children = split_region(region);
  EXPECT_EQ(children[0].domain.max_c, 8);  // sqrt(64) = 8
  EXPECT_EQ(children[1].domain.min_c, 9);

  // Fully degenerate region: children are probe-able copies, not an error.
  region.domain.min_c = region.domain.max_c = 4;
  region.domain.min_interrupts = region.domain.max_interrupts = 2;
  const std::vector<Region> copies = split_region(region);
  EXPECT_EQ(copies[0].domain.min_c, copies[1].domain.min_c);
  copies[0].domain.validate();
}

TEST(RegretHunt, FindsRegretAndIsDeterministic) {
  Region root = small_region("root");
  root.domain.max_lifespan = 384;  // exact-regret probes stay cheap
  const std::vector<sim::PolicyKind> policies = {
      sim::PolicyKind::kEqualized, sim::PolicyKind::kNonAdaptiveRestart};
  RegretHuntOptions options;
  options.probes_per_region = 8;
  options.rounds = 3;
  options.beam = 2;
  options.seed = 11;

  solver::SolveCache cache;
  const RegretHuntResult a = hunt_regret(root, policies, options, cache);
  // round 1: 1 region × 2 policies; rounds 2..3: <= beam-split frontier.
  EXPECT_EQ(a.scenarios_evaluated, a.ranked.size() * options.probes_per_region);
  ASSERT_FALSE(a.ranked.empty());
  ASSERT_EQ(a.verdicts.size(), options.beam);

  // Ranked by mean regret, descending; regret is a normalized score.
  for (std::size_t i = 1; i < a.ranked.size(); ++i) {
    EXPECT_GE(a.ranked[i - 1].regret.mean, a.ranked[i].regret.mean);
  }
  for (const RegionRegret& rr : a.ranked) {
    EXPECT_GE(rr.worst_regret, 0.0);
    EXPECT_LE(rr.worst_regret, 1.0);
    EXPECT_GE(rr.worst_regret, rr.regret.mean - 1e-12);
    EXPECT_NEAR(rr.regret.mean, rr.mean_dp - rr.mean_guideline, 1e-12);
    // The banked worst spec replays to the same exact regret.
    const sim::ScenarioSpec replayed =
        sim::scenario_from_replay(sim::to_replay_string(rr.worst));
    EXPECT_DOUBLE_EQ(regret_score(replayed, cache), rr.worst_regret);
  }
  for (const VerdictRecord& v : a.verdicts) {
    EXPECT_EQ(v.kind, "regret");
    EXPECT_EQ(v.policy_a, std::string("dp-optimal"));
    EXPECT_EQ(v.region_a, v.region_b);
    // Bit-exact serialization round-trip for artifact banking.
    EXPECT_EQ(to_verdict_string(verdict_from_string(to_verdict_string(v))),
              to_verdict_string(v));
  }

  // Deterministic: a second hunt (fresh cache) reproduces everything.
  solver::SolveCache cold;
  const RegretHuntResult b = hunt_regret(root, policies, options, cold);
  ASSERT_EQ(b.ranked.size(), a.ranked.size());
  for (std::size_t i = 0; i < a.ranked.size(); ++i) {
    EXPECT_EQ(b.ranked[i].region.name, a.ranked[i].region.name);
    EXPECT_EQ(b.ranked[i].policy, a.ranked[i].policy);
    EXPECT_EQ(b.ranked[i].regret.mean, a.ranked[i].regret.mean);  // bit-exact
    EXPECT_EQ(sim::to_replay_string(b.ranked[i].worst),
              sim::to_replay_string(a.ranked[i].worst));
  }
  ASSERT_EQ(b.verdicts.size(), a.verdicts.size());
  for (std::size_t i = 0; i < a.verdicts.size(); ++i) {
    EXPECT_EQ(to_verdict_string(b.verdicts[i]), to_verdict_string(a.verdicts[i]));
  }
}

TEST(RegretHunt, RejectsNonsense) {
  const Region root = small_region("root");
  solver::SolveCache cache;
  RegretHuntOptions options;
  EXPECT_THROW(hunt_regret(root, {}, options, cache), std::invalid_argument);
  EXPECT_THROW(hunt_regret(root, {sim::PolicyKind::kDpOptimal}, options, cache),
               std::invalid_argument);
  options.beam = 0;
  EXPECT_THROW(hunt_regret(root, {sim::PolicyKind::kEqualized}, options, cache),
               std::invalid_argument);
  options.beam = 2;
  options.delta = 1.5;
  EXPECT_THROW(hunt_regret(root, {sim::PolicyKind::kEqualized}, options, cache),
               std::invalid_argument);
}

}  // namespace
}  // namespace nowsched::race
