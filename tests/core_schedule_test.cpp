#include "core/schedule.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace nowsched {
namespace {

constexpr Params kParams{10};

TEST(EpisodeSchedule, ConstructionAndAccessors) {
  EpisodeSchedule s({30, 20, 10});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.total(), 60);
  EXPECT_EQ(s.period(0), 30);
  EXPECT_EQ(s.period(2), 10);
  EXPECT_EQ(s.start(0), 0);
  EXPECT_EQ(s.start(1), 30);
  EXPECT_EQ(s.start(3), 60);
  EXPECT_EQ(s.end(0), 30);
  EXPECT_EQ(s.end(2), 60);
}

TEST(EpisodeSchedule, EmptySchedule) {
  EpisodeSchedule s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.total(), 0);
  EXPECT_EQ(s.work_if_uninterrupted(kParams), 0);
}

TEST(EpisodeSchedule, RejectsNonPositivePeriods) {
  EXPECT_THROW(EpisodeSchedule({10, 0, 5}), std::invalid_argument);
  EXPECT_THROW(EpisodeSchedule({-1}), std::invalid_argument);
}

TEST(EpisodeSchedule, WorkAccountingUsesPositiveSubtraction) {
  // Periods 30, 8, 12 with c=10 yield 20 + 0 + 2 work.
  EpisodeSchedule s({30, 8, 12});
  EXPECT_EQ(s.work_if_uninterrupted(kParams), 22);
  EXPECT_EQ(s.banked_work(0, kParams), 0);
  EXPECT_EQ(s.banked_work(1, kParams), 20);
  EXPECT_EQ(s.banked_work(2, kParams), 20);
  EXPECT_EQ(s.banked_work(3, kParams), 22);
  EXPECT_THROW(s.banked_work(4, kParams), std::out_of_range);
}

TEST(EpisodeSchedule, ProductivePredicates) {
  EXPECT_TRUE(EpisodeSchedule({11, 12, 5}).is_productive(kParams));   // last may be short
  EXPECT_FALSE(EpisodeSchedule({11, 12, 5}).is_fully_productive(kParams));
  EXPECT_FALSE(EpisodeSchedule({10, 12, 11}).is_productive(kParams));  // 10 == c
  EXPECT_TRUE(EpisodeSchedule({11, 12, 11}).is_fully_productive(kParams));
  EXPECT_TRUE(EpisodeSchedule{}.is_productive(kParams));
}

// --- equal_split ------------------------------------------------------------

class EqualSplitProperty
    : public ::testing::TestWithParam<std::pair<Ticks, std::size_t>> {};

TEST_P(EqualSplitProperty, SumsExactlyAndBalanced) {
  const auto [total, m] = GetParam();
  const auto s = EpisodeSchedule::equal_split(total, m);
  ASSERT_EQ(s.size(), m);
  EXPECT_EQ(s.total(), total);
  Ticks lo = s.period(0), hi = s.period(0);
  for (std::size_t i = 0; i < s.size(); ++i) {
    lo = std::min(lo, s.period(i));
    hi = std::max(hi, s.period(i));
  }
  EXPECT_LE(hi - lo, 1);  // balanced within one tick
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EqualSplitProperty,
    ::testing::Values(std::pair<Ticks, std::size_t>{1, 1},
                      std::pair<Ticks, std::size_t>{10, 3},
                      std::pair<Ticks, std::size_t>{100, 7},
                      std::pair<Ticks, std::size_t>{1000, 999},
                      std::pair<Ticks, std::size_t>{1024, 32},
                      std::pair<Ticks, std::size_t>{65537, 255}));

TEST(EqualSplit, RejectsInfeasible) {
  EXPECT_THROW(EpisodeSchedule::equal_split(5, 6), std::invalid_argument);
  EXPECT_THROW(EpisodeSchedule::equal_split(5, 0), std::invalid_argument);
}

// --- from_real --------------------------------------------------------------

TEST(FromReal, ExactIntegersPreserved) {
  const auto s = EpisodeSchedule::from_real({30.0, 20.0, 10.0}, 60);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.period(0), 30);
  EXPECT_EQ(s.period(1), 20);
  EXPECT_EQ(s.period(2), 10);
}

TEST(FromReal, ScalesToRequestedTotal) {
  const auto s = EpisodeSchedule::from_real({1.0, 1.0, 2.0}, 100);
  EXPECT_EQ(s.total(), 100);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.period(0), 25);
  EXPECT_EQ(s.period(1), 25);
  EXPECT_EQ(s.period(2), 50);
}

TEST(FromReal, DropsNonPositiveLengths) {
  const auto s = EpisodeSchedule::from_real({-5.0, 10.0, 0.0, 10.0}, 40);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.period(0), 20);
}

TEST(FromReal, AllNonPositiveFallsBackToSinglePeriod) {
  const auto s = EpisodeSchedule::from_real({-1.0, 0.0}, 17);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.total(), 17);
}

TEST(FromReal, MorePeriodsThanTicksCollapses) {
  const auto s = EpisodeSchedule::from_real({1.0, 1.0, 1.0, 1.0, 1.0}, 3);
  EXPECT_EQ(s.total(), 3);
  EXPECT_LE(s.size(), 3u);
}

class FromRealProperty : public ::testing::TestWithParam<Ticks> {};

TEST_P(FromRealProperty, AlwaysSumsToTotalWithPositivePeriods) {
  const Ticks total = GetParam();
  const std::vector<double> shapes = {3.7, 2.9, 2.1, 1.6, 1.5, 1.5};
  const auto s = EpisodeSchedule::from_real(shapes, total);
  EXPECT_EQ(s.total(), total);
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_GE(s.period(i), 1);
}

INSTANTIATE_TEST_SUITE_P(Totals, FromRealProperty,
                         ::testing::Values(6, 7, 13, 100, 101, 9999, 65536));

// --- outcomes ---------------------------------------------------------------

TEST(Outcomes, UninterruptedEpisode) {
  EpisodeSchedule s({30, 20, 10});
  const auto out = run_uninterrupted(s, 60, kParams);
  EXPECT_FALSE(out.interrupted);
  EXPECT_EQ(out.work, 20 + 10 + 0);
  EXPECT_EQ(out.residual, 0);
}

TEST(Outcomes, InterruptAtPeriodEndBanksPrefixOnly) {
  EpisodeSchedule s({30, 20, 10});
  const auto out = interrupt_at_period_end(s, 1, 60, kParams);
  EXPECT_TRUE(out.interrupted);
  EXPECT_EQ(out.period, 1u);
  EXPECT_EQ(out.work, 20);           // only period 0 banked
  EXPECT_EQ(out.residual, 60 - 50);  // T_2 = 50 consumed
}

TEST(Outcomes, InterruptFirstPeriodBanksNothing) {
  EpisodeSchedule s({30, 20, 10});
  const auto out = interrupt_at_period_end(s, 0, 60, kParams);
  EXPECT_EQ(out.work, 0);
  EXPECT_EQ(out.residual, 30);
}

TEST(Outcomes, InterruptAtTimeFindsContainingPeriod) {
  EpisodeSchedule s({30, 20, 10});
  // Tick 31 lies in period 1 (ticks 31..50).
  const auto out = interrupt_at_time(s, 31, 60, kParams);
  EXPECT_EQ(out.period, 1u);
  EXPECT_EQ(out.work, 20);
  EXPECT_EQ(out.residual, 60 - 31);
}

TEST(Outcomes, LastInstantTickMatchesPeriodEndSemantics) {
  EpisodeSchedule s({30, 20, 10});
  for (std::size_t k = 0; k < s.size(); ++k) {
    const auto by_tick = interrupt_at_time(s, s.end(k), 60, kParams);
    const auto by_period = interrupt_at_period_end(s, k, 60, kParams);
    EXPECT_EQ(by_tick.period, by_period.period);
    EXPECT_EQ(by_tick.work, by_period.work);
    EXPECT_EQ(by_tick.residual, by_period.residual);
  }
}

TEST(Outcomes, MidPeriodInterruptIsDominated) {
  // Observation (a): same banked work, strictly more residual destroyed at
  // the last instant; so for the adversary, last instant is at least as bad
  // for us in residual terms.
  EpisodeSchedule s({30, 20, 10});
  const auto mid = interrupt_at_time(s, 35, 60, kParams);
  const auto last = interrupt_at_time(s, 50, 60, kParams);
  EXPECT_EQ(mid.work, last.work);
  EXPECT_GT(mid.residual, last.residual);
}

TEST(Outcomes, BoundsChecked) {
  EpisodeSchedule s({30, 20, 10});
  EXPECT_THROW(interrupt_at_period_end(s, 3, 60, kParams), std::out_of_range);
  EXPECT_THROW(interrupt_at_time(s, 0, 60, kParams), std::out_of_range);
  EXPECT_THROW(interrupt_at_time(s, 61, 60, kParams), std::out_of_range);
}

TEST(EpisodeSchedule, ToStringShowsCountAndSum) {
  EpisodeSchedule s({30, 20, 10});
  const std::string str = s.to_string();
  EXPECT_NE(str.find("m=3"), std::string::npos);
  EXPECT_NE(str.find("sum=60"), std::string::npos);
}

TEST(EpisodeSchedule, EqualityComparesPeriods) {
  EXPECT_EQ(EpisodeSchedule({5, 5}), EpisodeSchedule({5, 5}));
  EXPECT_FALSE(EpisodeSchedule({5, 5}) == EpisodeSchedule({5, 6}));
}

}  // namespace
}  // namespace nowsched
