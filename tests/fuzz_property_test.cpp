// Randomized cross-checks: every component validated against an independent
// implementation or invariant on randomly generated instances. Seeds are
// fixed, so failures reproduce.
//
// The scenario-driven suites at the bottom are tier-controlled: they run
// NOWSCHED_FUZZ_CASES generated cases (default 200 — the quick tier; the
// nightly job raises it to >= 5000), each case a ScenarioSpec drawn by the
// seed-deterministic ScenarioGenerator, so "case #173 failed" reproduces
// anywhere from the seed and index alone.
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <map>

#include "core/equalized.h"
#include "core/guidelines.h"
#include "core/transforms.h"
#include "sim/batch_runner.h"
#include "sim/scenario_gen.h"
#include "solver/extract.h"
#include "solver/fast_solver.h"
#include "solver/nonadaptive_eval.h"
#include "solver/policy_eval.h"
#include "solver/reference_solver.h"
#include "util/parse.h"
#include "util/rng.h"

namespace nowsched {
namespace {

/// A policy that cuts episodes pseudo-randomly (but deterministically per
/// (L, q)) — a worst-case stress for the evaluator's assumptions.
class RandomPolicy final : public SchedulingPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : seed_(seed) {}
  std::string name() const override { return "random-policy"; }
  EpisodeSchedule episode(Ticks residual, int q, const Params&) const override {
    util::Rng rng(seed_ ^ (static_cast<std::uint64_t>(residual) * 31 +
                           static_cast<std::uint64_t>(q)));
    std::vector<Ticks> periods;
    Ticks left = residual;
    while (left > 0) {
      const Ticks t = rng.uniform_int(1, std::max<Ticks>(1, left / 2 + 1));
      periods.push_back(t);
      left -= t;
      if (periods.size() > 40) {  // cap length; dump the rest in one period
        if (left > 0) periods.push_back(left);
        break;
      }
    }
    return EpisodeSchedule(std::move(periods));
  }

 private:
  std::uint64_t seed_;
};

/// Independent, memoized game-tree evaluation of a policy (plain recursion,
/// no level tables) — the oracle for evaluate_policy.
Ticks game_tree_value(const SchedulingPolicy& policy, Ticks lifespan, int q,
                      const Params& params,
                      std::map<std::pair<Ticks, int>, Ticks>& memo) {
  if (lifespan <= 0) return 0;
  const auto key = std::make_pair(lifespan, q);
  if (const auto it = memo.find(key); it != memo.end()) return it->second;
  const auto episode = policy.episode(lifespan, q, params);
  Ticks best = episode.work_if_uninterrupted(params);
  if (q > 0) {
    Ticks banked = 0;
    for (std::size_t k = 0; k < episode.size(); ++k) {
      const Ticks rest = positive_sub(lifespan, episode.end(k));
      best = std::min(best,
                      banked + game_tree_value(policy, rest, q - 1, params, memo));
      banked += positive_sub(episode.period(k), params.c);
    }
  }
  memo[key] = best;
  return best;
}

TEST(Fuzz, PolicyEvaluatorMatchesGameTreeOnRandomPolicies) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 24; ++trial) {
    const Params params{static_cast<Ticks>(rng.uniform_int(2, 24))};
    const Ticks u = rng.uniform_int(20, 400);
    const int p = static_cast<int>(rng.uniform_int(0, 3));
    const RandomPolicy policy(rng.next());
    std::map<std::pair<Ticks, int>, Ticks> memo;
    const Ticks expected = game_tree_value(policy, u, p, params, memo);
    EXPECT_EQ(solver::evaluate_policy(policy, u, p, params), expected)
        << "trial " << trial << " c=" << params.c << " u=" << u << " p=" << p;
  }
}

TEST(Fuzz, SolversAgreeOnRandomParameters) {
  util::Rng rng(7);
  for (int trial = 0; trial < 12; ++trial) {
    const Params params{static_cast<Ticks>(rng.uniform_int(1, 40))};
    const Ticks max_l = rng.uniform_int(50, 500);
    const int max_p = static_cast<int>(rng.uniform_int(0, 4));
    const auto ref = solver::solve_reference(max_p, max_l, params);
    const auto fast = solver::solve_fast(max_p, max_l, params);
    for (int p = 0; p <= max_p; ++p) {
      for (Ticks l = 0; l <= max_l; ++l) {
        ASSERT_EQ(fast.value(p, l), ref.value(p, l))
            << "trial " << trial << " c=" << params.c << " p=" << p << " l=" << l;
      }
    }
  }
}

TEST(Fuzz, FromRealAlwaysSpansTotal) {
  util::Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const Ticks total = rng.uniform_int(1, 100000);
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 30));
    std::vector<double> lengths(n);
    for (auto& x : lengths) x = rng.uniform(-2.0, 50.0);
    const auto sched = EpisodeSchedule::from_real(lengths, total);
    ASSERT_EQ(sched.total(), total) << "trial " << trial;
    for (std::size_t i = 0; i < sched.size(); ++i) ASSERT_GE(sched.period(i), 1);
  }
}

TEST(Fuzz, MakeProductiveNeverDecreasesCommittedValue) {
  util::Rng rng(13);
  for (int trial = 0; trial < 60; ++trial) {
    const Params params{static_cast<Ticks>(rng.uniform_int(2, 20))};
    std::vector<Ticks> periods;
    Ticks total = 0;
    const auto m = static_cast<std::size_t>(rng.uniform_int(1, 14));
    for (std::size_t i = 0; i < m; ++i) {
      const Ticks t = rng.uniform_int(1, 3 * params.c);
      periods.push_back(t);
      total += t;
    }
    const EpisodeSchedule raw(std::move(periods));
    const auto productive = make_productive(raw, params);
    for (int p = 0; p <= 3; ++p) {
      ASSERT_GE(solver::nonadaptive_guaranteed_work(productive, total, p, params),
                solver::nonadaptive_guaranteed_work(raw, total, p, params))
          << "trial " << trial << " p=" << p;
    }
  }
}

TEST(Fuzz, GuidelinePoliciesNeverBeatTheTable) {
  util::Rng rng(17);
  for (int trial = 0; trial < 8; ++trial) {
    const Params params{static_cast<Ticks>(rng.uniform_int(4, 32))};
    const Ticks u = rng.uniform_int(200, 1500);
    const int p = static_cast<int>(rng.uniform_int(1, 3));
    const auto table = solver::solve_reference(p, u, params);
    const AdaptiveGuidelinePolicy printed;
    const EqualizedGuidelinePolicy equalized;
    const NonAdaptiveGuidelinePolicy restart;
    for (const SchedulingPolicy* policy :
         {static_cast<const SchedulingPolicy*>(&printed),
          static_cast<const SchedulingPolicy*>(&equalized),
          static_cast<const SchedulingPolicy*>(&restart)}) {
      ASSERT_LE(solver::evaluate_policy(*policy, u, p, params), table.value(p, u))
          << policy->name() << " trial " << trial;
    }
  }
}

TEST(Fuzz, SplitImmuneTailPreservesTotalAndBand) {
  util::Rng rng(19);
  for (int trial = 0; trial < 100; ++trial) {
    const Params params{static_cast<Ticks>(rng.uniform_int(2, 30))};
    std::vector<Ticks> periods;
    const auto m = static_cast<std::size_t>(rng.uniform_int(1, 10));
    for (std::size_t i = 0; i < m; ++i) {
      periods.push_back(rng.uniform_int(1, 8 * params.c));
    }
    const EpisodeSchedule raw(std::move(periods));
    const auto immune = static_cast<std::size_t>(rng.uniform_int(0, 12));
    const auto out = split_immune_tail(raw, immune, params);
    ASSERT_EQ(out.total(), raw.total());
    // Every split piece in the immune region obeys the band where feasible:
    // pieces longer than 2c may only appear among non-immune prefix periods.
    const std::size_t kept_prefix = raw.size() - std::min(immune, raw.size());
    std::size_t j = 0;
    for (std::size_t i = 0; i < kept_prefix; ++i, ++j) {
      ASSERT_EQ(out.period(j), raw.period(i));
    }
    for (; j < out.size(); ++j) ASSERT_LE(out.period(j), 2 * params.c);
  }
}

// ---------------------------------------------------------------------------
// Scenario-driven, tier-controlled properties (NOWSCHED_FUZZ_CASES).
// ---------------------------------------------------------------------------

/// Generated-case count: NOWSCHED_FUZZ_CASES when set (strictly parsed, a
/// malformed value throws — same semantics as conformance::fuzz_cases),
/// else `fallback`. Kept local so this suite stays independent of the
/// conformance harness; the strict parsing is shared via util/parse.h.
int fuzz_cases(int fallback) {
  const char* env = std::getenv("NOWSCHED_FUZZ_CASES");
  if (env == nullptr || *env == '\0') return fallback;
  const auto v = util::parse_int64(env);
  if (!v || *v < 1 || *v > std::numeric_limits<int>::max()) {
    throw std::runtime_error(
        "NOWSCHED_FUZZ_CASES must be a positive int-range integer, got '" +
        std::string(env) + "'");
  }
  return static_cast<int>(*v);
}

TEST(Fuzz, GeneratedScenarioSolversAgreeAndExtractionMatchesOracle) {
  // Per generated scenario: solve_fast vs the O(P·N²) reference, every
  // table entry, plus best_period_length (O(log L) crossover search) vs
  // best_period_length_linear (O(L) oracle scan) on sampled states.
  // Contracts are capped so the quadratic oracle stays affordable.
  sim::ScenarioDomain domain;
  domain.min_c = 1;
  domain.max_c = 48;
  domain.min_lifespan = 8;
  domain.max_lifespan = 288;
  domain.max_interrupts = 3;
  sim::ScenarioGenerator gen(domain, 0xFA22);

  const int cases = fuzz_cases(200);
  util::Rng sample_rng(0x5A);
  for (int i = 0; i < cases; ++i) {
    const sim::ScenarioSpec spec = gen.next();
    const int p = spec.max_interrupts;
    const Ticks u = spec.lifespan;
    const auto fast = solver::solve_fast(p, u, spec.params);
    const auto ref = solver::solve_reference(p, u, spec.params);
    for (int q = 0; q <= p; ++q) {
      for (Ticks l = 0; l <= u; ++l) {
        ASSERT_EQ(fast.value(q, l), ref.value(q, l))
            << "case " << i << " c=" << spec.params.c << " q=" << q << " l=" << l;
      }
    }
    if (p >= 1) {
      for (int s = 0; s < 8; ++s) {
        const int q = static_cast<int>(sample_rng.uniform_int(1, p));
        const Ticks l = sample_rng.uniform_int(1, u);
        ASSERT_EQ(solver::best_period_length(fast, q, l),
                  solver::best_period_length_linear(fast, q, l))
            << "case " << i << " q=" << q << " l=" << l;
      }
    }
  }
}

TEST(Fuzz, ScenarioGeneratorIsRandomAccessDeterministic) {
  sim::ScenarioDomain domain;
  domain.contract_classes = 4;
  domain.class_fraction = 0.5;
  sim::ScenarioGenerator a(domain, 0x1234);
  sim::ScenarioGenerator b(domain, 0x1234);
  sim::ScenarioGenerator other(domain, 0x9999);

  // next() is at(cursor): sequences from equal seeds agree element-wise,
  // and at(i) is independent of how the cursor got there.
  const auto batch = a.batch(64);
  bool any_difference_from_other_seed = false;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const sim::ScenarioSpec direct = b.at(i);
    EXPECT_EQ(batch[i].seed, direct.seed) << i;
    EXPECT_EQ(batch[i].lifespan, direct.lifespan) << i;
    EXPECT_EQ(batch[i].owner, direct.owner) << i;
    EXPECT_EQ(batch[i].owner_a, direct.owner_a) << i;
    EXPECT_EQ(batch[i].params.c, direct.params.c) << i;
    const sim::ScenarioSpec foreign = other.at(i);
    any_difference_from_other_seed =
        any_difference_from_other_seed || foreign.seed != direct.seed;
  }
  EXPECT_TRUE(any_difference_from_other_seed);

  // Replay strings round-trip every spec bit-exactly.
  for (const auto& spec : batch) {
    const sim::ScenarioSpec back = sim::scenario_from_replay(to_replay_string(spec));
    EXPECT_EQ(back.owner_a, spec.owner_a);
    EXPECT_EQ(back.owner_d, spec.owner_d);
    EXPECT_EQ(back.seed, spec.seed);
    EXPECT_EQ(back.group_seed, spec.group_seed);
  }
}

TEST(Fuzz, GeneratedSpecsAlwaysPassBatchValidationAndRun) {
  // Every generated spec must be runnable as-is: the batch layer's
  // validation throws on none of them, and a small batch through
  // BatchRunner completes with the lifespan fully consumed per session.
  sim::ScenarioDomain domain;
  domain.max_lifespan = 2048;
  domain.contract_classes = 5;
  domain.farm_size = 4;
  sim::ScenarioGenerator gen(domain, 0xABCD);
  const int cases = std::max(32, fuzz_cases(200) / 4);

  auto specs = gen.batch(static_cast<std::size_t>(cases) / 2);
  while (specs.size() < static_cast<std::size_t>(cases)) {
    for (auto& spec : gen.farm_group(domain.farm_size)) specs.push_back(spec);
  }
  sim::BatchRunner runner;
  const auto result = runner.run(specs);
  ASSERT_EQ(result.per_scenario.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(result.per_scenario[i].lifespan_used, specs[i].lifespan) << i;
    EXPECT_LE(result.per_scenario[i].interrupts, specs[i].max_interrupts) << i;
  }
}

TEST(Fuzz, EqualizedEpisodeAlwaysFeasible) {
  util::Rng rng(23);
  for (int trial = 0; trial < 120; ++trial) {
    const Params params{static_cast<Ticks>(rng.uniform_int(1, 64))};
    const Ticks u = rng.uniform_int(1, 60000);
    const int p = static_cast<int>(rng.uniform_int(0, 6));
    const auto sched = equalized_episode(u, p, params);
    ASSERT_EQ(sched.total(), u) << "c=" << params.c << " u=" << u << " p=" << p;
    ASSERT_GE(sched.size(), 1u);
  }
}

}  // namespace
}  // namespace nowsched
