// Randomized cross-checks: every component validated against an independent
// implementation or invariant on randomly generated instances. Seeds are
// fixed, so failures reproduce.
#include <gtest/gtest.h>

#include <map>

#include "core/equalized.h"
#include "core/guidelines.h"
#include "core/transforms.h"
#include "solver/fast_solver.h"
#include "solver/nonadaptive_eval.h"
#include "solver/policy_eval.h"
#include "solver/reference_solver.h"
#include "util/rng.h"

namespace nowsched {
namespace {

/// A policy that cuts episodes pseudo-randomly (but deterministically per
/// (L, q)) — a worst-case stress for the evaluator's assumptions.
class RandomPolicy final : public SchedulingPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : seed_(seed) {}
  std::string name() const override { return "random-policy"; }
  EpisodeSchedule episode(Ticks residual, int q, const Params&) const override {
    util::Rng rng(seed_ ^ (static_cast<std::uint64_t>(residual) * 31 +
                           static_cast<std::uint64_t>(q)));
    std::vector<Ticks> periods;
    Ticks left = residual;
    while (left > 0) {
      const Ticks t = rng.uniform_int(1, std::max<Ticks>(1, left / 2 + 1));
      periods.push_back(t);
      left -= t;
      if (periods.size() > 40) {  // cap length; dump the rest in one period
        if (left > 0) periods.push_back(left);
        break;
      }
    }
    return EpisodeSchedule(std::move(periods));
  }

 private:
  std::uint64_t seed_;
};

/// Independent, memoized game-tree evaluation of a policy (plain recursion,
/// no level tables) — the oracle for evaluate_policy.
Ticks game_tree_value(const SchedulingPolicy& policy, Ticks lifespan, int q,
                      const Params& params,
                      std::map<std::pair<Ticks, int>, Ticks>& memo) {
  if (lifespan <= 0) return 0;
  const auto key = std::make_pair(lifespan, q);
  if (const auto it = memo.find(key); it != memo.end()) return it->second;
  const auto episode = policy.episode(lifespan, q, params);
  Ticks best = episode.work_if_uninterrupted(params);
  if (q > 0) {
    Ticks banked = 0;
    for (std::size_t k = 0; k < episode.size(); ++k) {
      const Ticks rest = positive_sub(lifespan, episode.end(k));
      best = std::min(best,
                      banked + game_tree_value(policy, rest, q - 1, params, memo));
      banked += positive_sub(episode.period(k), params.c);
    }
  }
  memo[key] = best;
  return best;
}

TEST(Fuzz, PolicyEvaluatorMatchesGameTreeOnRandomPolicies) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 24; ++trial) {
    const Params params{static_cast<Ticks>(rng.uniform_int(2, 24))};
    const Ticks u = rng.uniform_int(20, 400);
    const int p = static_cast<int>(rng.uniform_int(0, 3));
    const RandomPolicy policy(rng.next());
    std::map<std::pair<Ticks, int>, Ticks> memo;
    const Ticks expected = game_tree_value(policy, u, p, params, memo);
    EXPECT_EQ(solver::evaluate_policy(policy, u, p, params), expected)
        << "trial " << trial << " c=" << params.c << " u=" << u << " p=" << p;
  }
}

TEST(Fuzz, SolversAgreeOnRandomParameters) {
  util::Rng rng(7);
  for (int trial = 0; trial < 12; ++trial) {
    const Params params{static_cast<Ticks>(rng.uniform_int(1, 40))};
    const Ticks max_l = rng.uniform_int(50, 500);
    const int max_p = static_cast<int>(rng.uniform_int(0, 4));
    const auto ref = solver::solve_reference(max_p, max_l, params);
    const auto fast = solver::solve_fast(max_p, max_l, params);
    for (int p = 0; p <= max_p; ++p) {
      for (Ticks l = 0; l <= max_l; ++l) {
        ASSERT_EQ(fast.value(p, l), ref.value(p, l))
            << "trial " << trial << " c=" << params.c << " p=" << p << " l=" << l;
      }
    }
  }
}

TEST(Fuzz, FromRealAlwaysSpansTotal) {
  util::Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const Ticks total = rng.uniform_int(1, 100000);
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 30));
    std::vector<double> lengths(n);
    for (auto& x : lengths) x = rng.uniform(-2.0, 50.0);
    const auto sched = EpisodeSchedule::from_real(lengths, total);
    ASSERT_EQ(sched.total(), total) << "trial " << trial;
    for (std::size_t i = 0; i < sched.size(); ++i) ASSERT_GE(sched.period(i), 1);
  }
}

TEST(Fuzz, MakeProductiveNeverDecreasesCommittedValue) {
  util::Rng rng(13);
  for (int trial = 0; trial < 60; ++trial) {
    const Params params{static_cast<Ticks>(rng.uniform_int(2, 20))};
    std::vector<Ticks> periods;
    Ticks total = 0;
    const auto m = static_cast<std::size_t>(rng.uniform_int(1, 14));
    for (std::size_t i = 0; i < m; ++i) {
      const Ticks t = rng.uniform_int(1, 3 * params.c);
      periods.push_back(t);
      total += t;
    }
    const EpisodeSchedule raw(std::move(periods));
    const auto productive = make_productive(raw, params);
    for (int p = 0; p <= 3; ++p) {
      ASSERT_GE(solver::nonadaptive_guaranteed_work(productive, total, p, params),
                solver::nonadaptive_guaranteed_work(raw, total, p, params))
          << "trial " << trial << " p=" << p;
    }
  }
}

TEST(Fuzz, GuidelinePoliciesNeverBeatTheTable) {
  util::Rng rng(17);
  for (int trial = 0; trial < 8; ++trial) {
    const Params params{static_cast<Ticks>(rng.uniform_int(4, 32))};
    const Ticks u = rng.uniform_int(200, 1500);
    const int p = static_cast<int>(rng.uniform_int(1, 3));
    const auto table = solver::solve_reference(p, u, params);
    const AdaptiveGuidelinePolicy printed;
    const EqualizedGuidelinePolicy equalized;
    const NonAdaptiveGuidelinePolicy restart;
    for (const SchedulingPolicy* policy :
         {static_cast<const SchedulingPolicy*>(&printed),
          static_cast<const SchedulingPolicy*>(&equalized),
          static_cast<const SchedulingPolicy*>(&restart)}) {
      ASSERT_LE(solver::evaluate_policy(*policy, u, p, params), table.value(p, u))
          << policy->name() << " trial " << trial;
    }
  }
}

TEST(Fuzz, SplitImmuneTailPreservesTotalAndBand) {
  util::Rng rng(19);
  for (int trial = 0; trial < 100; ++trial) {
    const Params params{static_cast<Ticks>(rng.uniform_int(2, 30))};
    std::vector<Ticks> periods;
    const auto m = static_cast<std::size_t>(rng.uniform_int(1, 10));
    for (std::size_t i = 0; i < m; ++i) {
      periods.push_back(rng.uniform_int(1, 8 * params.c));
    }
    const EpisodeSchedule raw(std::move(periods));
    const auto immune = static_cast<std::size_t>(rng.uniform_int(0, 12));
    const auto out = split_immune_tail(raw, immune, params);
    ASSERT_EQ(out.total(), raw.total());
    // Every split piece in the immune region obeys the band where feasible:
    // pieces longer than 2c may only appear among non-immune prefix periods.
    const std::size_t kept_prefix = raw.size() - std::min(immune, raw.size());
    std::size_t j = 0;
    for (std::size_t i = 0; i < kept_prefix; ++i, ++j) {
      ASSERT_EQ(out.period(j), raw.period(i));
    }
    for (; j < out.size(); ++j) ASSERT_LE(out.period(j), 2 * params.c);
  }
}

TEST(Fuzz, EqualizedEpisodeAlwaysFeasible) {
  util::Rng rng(23);
  for (int trial = 0; trial < 120; ++trial) {
    const Params params{static_cast<Ticks>(rng.uniform_int(1, 64))};
    const Ticks u = rng.uniform_int(1, 60000);
    const int p = static_cast<int>(rng.uniform_int(0, 6));
    const auto sched = equalized_episode(u, p, params);
    ASSERT_EQ(sched.total(), u) << "c=" << params.c << " u=" << u << " p=" << p;
    ASSERT_GE(sched.size(), 1u);
  }
}

}  // namespace
}  // namespace nowsched
