// Fixed-seed statistical unit tests for the racing bounds (race/bounds.h)
// and the streaming moments that feed them (util/welford.h). The bound
// checks are HAND-COMPUTED on small fixed samples — closed-form expected
// values, never re-derived through the code under test — so a silent change
// to a constant (the 2 in Hoeffding's log, the 3s in Bernstein's) fails
// loudly.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "race/bounds.h"
#include "util/welford.h"

namespace nowsched::race {
namespace {

using util::Welford;

Welford welford_of(const std::vector<double>& xs) {
  Welford w;
  for (double x : xs) w.add(x);
  return w;
}

// ---------------------------------------------------------------------------
// util::Welford
// ---------------------------------------------------------------------------

TEST(Welford, MatchesTwoPassMeanAndVariance) {
  const std::vector<double> xs = {0.1, 0.9, 0.4, 0.4, 0.7, 0.2, 0.95, 0.05};
  const Welford w = welford_of(xs);

  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  const double var = ss / static_cast<double>(xs.size() - 1);

  ASSERT_EQ(w.n, xs.size());
  EXPECT_NEAR(w.mean, mean, 1e-15);
  EXPECT_NEAR(w.variance(), var, 1e-15);
  EXPECT_NEAR(w.stddev(), std::sqrt(var), 1e-15);
}

TEST(Welford, HandComputedSmallSample) {
  // {0, 1, 1, 0, 1}: mean 3/5; Σ(x − mean)² = 2·(0.6)² + 3·(0.4)² = 1.2;
  // unbiased variance 1.2 / 4 = 0.3.
  const Welford w = welford_of({0, 1, 1, 0, 1});
  ASSERT_EQ(w.n, 5u);
  EXPECT_DOUBLE_EQ(w.mean, 0.6);
  EXPECT_NEAR(w.m2, 1.2, 1e-15);
  EXPECT_NEAR(w.variance(), 0.3, 1e-15);
}

TEST(Welford, DegenerateCounts) {
  Welford w;
  EXPECT_EQ(w.n, 0u);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  w.add(42.0);
  EXPECT_DOUBLE_EQ(w.mean, 42.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);  // n == 1: no spread information
}

TEST(Welford, MergeEqualsSequentialFeed) {
  const std::vector<double> xs = {3.0, 1.5, -2.0, 8.25, 0.0, 4.5, -1.25, 7.0, 2.5};
  for (std::size_t cut = 0; cut <= xs.size(); ++cut) {
    Welford left, right;
    for (std::size_t i = 0; i < cut; ++i) left.add(xs[i]);
    for (std::size_t i = cut; i < xs.size(); ++i) right.add(xs[i]);
    left.merge(right);

    const Welford all = welford_of(xs);
    ASSERT_EQ(left.n, all.n) << "cut=" << cut;
    EXPECT_NEAR(left.mean, all.mean, 1e-12) << "cut=" << cut;
    EXPECT_NEAR(left.m2, all.m2, 1e-12) << "cut=" << cut;
  }
}

TEST(Welford, MergeIsAssociative) {
  const Welford a = welford_of({0.1, 0.2, 0.3});
  const Welford b = welford_of({5.0, 7.0});
  const Welford c = welford_of({-3.0, -1.0, -2.0, -4.0});

  Welford ab = a;
  ab.merge(b);
  Welford ab_c = ab;
  ab_c.merge(c);

  Welford bc = b;
  bc.merge(c);
  Welford a_bc = a;
  a_bc.merge(bc);

  ASSERT_EQ(ab_c.n, a_bc.n);
  EXPECT_NEAR(ab_c.mean, a_bc.mean, 1e-12);
  EXPECT_NEAR(ab_c.m2, a_bc.m2, 1e-12);
}

TEST(Welford, MergeWithEmptyIsIdentity) {
  const Welford a = welford_of({1.0, 2.0, 4.0});
  Welford left = a;
  left.merge(Welford{});
  EXPECT_EQ(left.n, a.n);
  EXPECT_DOUBLE_EQ(left.mean, a.mean);
  EXPECT_DOUBLE_EQ(left.m2, a.m2);

  Welford right;
  right.merge(a);
  EXPECT_EQ(right.n, a.n);
  EXPECT_DOUBLE_EQ(right.mean, a.mean);
  EXPECT_DOUBLE_EQ(right.m2, a.m2);
}

// ---------------------------------------------------------------------------
// Hoeffding
// ---------------------------------------------------------------------------

TEST(Bounds, HoeffdingHandComputed) {
  // n = 8, range = 1, δ = 0.05: sqrt(ln(40) / 16) = 0.4801614…
  EXPECT_NEAR(hoeffding_radius(8, 1.0, 0.05), 0.4801614, 1e-6);
  // Exact closed form at a second point: n = 2, range = 2, δ = 0.5 gives
  // 2·sqrt(ln(4)/4) = sqrt(ln 4) = sqrt(2 ln 2).
  EXPECT_DOUBLE_EQ(hoeffding_radius(2, 2.0, 0.5), std::sqrt(2.0 * std::log(2.0)));
}

TEST(Bounds, HoeffdingScalesAsInverseSqrtN) {
  const double r1 = hoeffding_radius(25, 1.0, 0.1);
  const double r4 = hoeffding_radius(100, 1.0, 0.1);
  EXPECT_NEAR(r1, 2.0 * r4, 1e-12);  // 4x samples → half the radius
}

TEST(Bounds, HoeffdingNoDataIsVacuous) {
  EXPECT_EQ(hoeffding_radius(0, 1.0, 0.1), std::numeric_limits<double>::infinity());
}

// ---------------------------------------------------------------------------
// Empirical Bernstein
// ---------------------------------------------------------------------------

TEST(Bounds, EmpiricalBernsteinHandComputed) {
  // {0,1,1,0,1}: n = 5, V̂ = 0.3, range = 1, δ = 0.05:
  //   sqrt(2·0.3·ln(60)/5) + 3·ln(60)/5 = 0.7009432 + 2.4566067 = 3.1575499
  EXPECT_NEAR(empirical_bernstein_radius(5, 0.3, 1.0, 0.05), 3.1575499, 1e-6);
}

TEST(Bounds, EmpiricalBernsteinZeroVarianceLeavesOnlyRangeTerm) {
  // V̂ = 0 kills the sqrt term: radius = 3·range·ln(3/δ)/n exactly.
  const double r = empirical_bernstein_radius(100, 0.0, 1.0, 0.1);
  EXPECT_DOUBLE_EQ(r, 3.0 * std::log(30.0) / 100.0);
}

TEST(Bounds, EmpiricalBernsteinBeatsHoeffdingAtLowVariance) {
  // Large n, tiny variance: Bernstein's sqrt(V̂/n) term crushes Hoeffding's
  // range·sqrt(1/n) — the regime the regret hunt lives in.
  const std::size_t n = 10000;
  const double eb = empirical_bernstein_radius(n, 1e-4, 1.0, 0.05);
  const double hf = hoeffding_radius(n, 1.0, 0.05);
  EXPECT_LT(eb, hf);
}

// ---------------------------------------------------------------------------
// Combined radius and intervals
// ---------------------------------------------------------------------------

TEST(Bounds, CombinedRadiusIsMinOfBothAtHalvedDelta) {
  const Welford w = welford_of({0, 1, 1, 0, 1});
  // Small n: Hoeffding wins (no 1/n slack term). Both at δ/2 = 0.025.
  EXPECT_DOUBLE_EQ(confidence_radius(w, 1.0, 0.05), hoeffding_radius(5, 1.0, 0.025));
  EXPECT_LT(confidence_radius(w, 1.0, 0.05),
            empirical_bernstein_radius(5, w.variance(), 1.0, 0.025));
  // Hand value: sqrt(ln(80)/10) = 0.6619688…
  EXPECT_NEAR(confidence_radius(w, 1.0, 0.05), 0.6619688, 1e-6);
}

TEST(Bounds, IntervalClampsToScoreRange) {
  const Welford w = welford_of({0.95, 1.0, 0.9});
  const Interval ci = confidence_interval(w, 1.0, 0.1);
  EXPECT_GE(ci.lower, 0.0);
  EXPECT_LE(ci.upper, 1.0);
  EXPECT_LE(ci.lower, w.mean);
  EXPECT_GE(ci.upper, w.mean);
}

TEST(Bounds, IntervalNoDataIsFullRange) {
  const Interval ci = confidence_interval(Welford{}, 2.5, 0.1);
  EXPECT_DOUBLE_EQ(ci.lower, 0.0);
  EXPECT_DOUBLE_EQ(ci.upper, 2.5);
}

// ---------------------------------------------------------------------------
// Anytime δ schedule
// ---------------------------------------------------------------------------

TEST(Bounds, AnytimeDeltaHandComputed) {
  // δ = 0.05, 4 arms, t = 3: 0.05 / (4·3·4) = 0.05/48.
  EXPECT_DOUBLE_EQ(anytime_delta(0.05, 4, 3), 0.05 / 48.0);
  EXPECT_DOUBLE_EQ(anytime_delta(0.2, 1, 1), 0.1);  // δ/(1·1·2)
}

TEST(Bounds, AnytimeDeltaTelescopesToDelta) {
  // Σ_t δ/(arms·t·(t+1)) over all arms → δ · Σ 1/(t(t+1)) = δ (as T → ∞).
  const double delta = 0.05;
  const std::size_t arms = 3;
  double spent = 0.0;
  for (std::size_t t = 1; t <= 4000; ++t) {
    spent += static_cast<double>(arms) * anytime_delta(delta, arms, t);
  }
  EXPECT_LT(spent, delta);                 // never overspends at any horizon
  EXPECT_NEAR(spent, delta, delta / 500);  // …and converges to exactly δ
}

// ---------------------------------------------------------------------------
// Domain checks
// ---------------------------------------------------------------------------

TEST(Bounds, RejectsNonsenseArguments) {
  const Welford w = welford_of({0.5});
  EXPECT_THROW(hoeffding_radius(4, 0.0, 0.1), std::invalid_argument);
  EXPECT_THROW(hoeffding_radius(4, -1.0, 0.1), std::invalid_argument);
  EXPECT_THROW(hoeffding_radius(4, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(hoeffding_radius(4, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(empirical_bernstein_radius(4, -0.1, 1.0, 0.1), std::invalid_argument);
  EXPECT_THROW(confidence_radius(w, 1.0, 1.5), std::invalid_argument);
  EXPECT_THROW(confidence_interval(w, -2.0, 0.1), std::invalid_argument);
  EXPECT_THROW(anytime_delta(0.1, 0, 1), std::invalid_argument);
  EXPECT_THROW(anytime_delta(0.1, 2, 0), std::invalid_argument);
  EXPECT_THROW(anytime_delta(0.0, 2, 1), std::invalid_argument);
}

}  // namespace
}  // namespace nowsched::race
