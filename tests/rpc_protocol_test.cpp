// nowsched-rpc v1 message vocabulary: every payload codec must round-trip
// exactly, every frozen wire code must stay frozen (renumbering an enum is a
// protocol break even if every test still "passes"), and malformed payloads
// must throw std::invalid_argument — the typed error the server converts
// into an Error frame.
#include "rpc/protocol.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "service/job.h"
#include "service/scheduler_service.h"
#include "sim/batch_runner.h"
#include "sim/scenario_gen.h"

namespace nowsched::rpc {
namespace {

sim::ScenarioSpec sample_spec(std::uint64_t seed) {
  sim::ScenarioSpec spec;
  spec.policy = sim::PolicyKind::kDpOptimal;
  spec.owner = sim::OwnerKind::kPareto;
  spec.owner_a = 1250.5;
  spec.owner_b = 1.75;
  spec.params = Params{32};
  spec.lifespan = 2048;
  spec.max_interrupts = 3;
  spec.seed = seed;
  spec.group_seed = seed * 3 + 1;
  return spec;
}

sim::SessionMetrics sample_metrics(std::int64_t base) {
  sim::SessionMetrics m;
  m.banked_work = base + 1;
  m.task_work = base + 2;
  m.comm_overhead = base + 3;
  m.lost_work = base + 4;
  m.salvaged_work = base + 5;
  m.fragmentation = base + 6;
  m.lifespan_used = base + 7;
  m.interrupts = base % 7;
  m.episodes = base % 5 + 1;
  m.periods_completed = base + 8;
  m.periods_killed = base % 3;
  m.tasks_completed = base + 9;
  return m;
}

void expect_metrics_eq(const sim::SessionMetrics& a, const sim::SessionMetrics& b) {
  EXPECT_EQ(a.banked_work, b.banked_work);
  EXPECT_EQ(a.task_work, b.task_work);
  EXPECT_EQ(a.comm_overhead, b.comm_overhead);
  EXPECT_EQ(a.lost_work, b.lost_work);
  EXPECT_EQ(a.salvaged_work, b.salvaged_work);
  EXPECT_EQ(a.fragmentation, b.fragmentation);
  EXPECT_EQ(a.lifespan_used, b.lifespan_used);
  EXPECT_EQ(a.interrupts, b.interrupts);
  EXPECT_EQ(a.episodes, b.episodes);
  EXPECT_EQ(a.periods_completed, b.periods_completed);
  EXPECT_EQ(a.periods_killed, b.periods_killed);
  EXPECT_EQ(a.tasks_completed, b.tasks_completed);
}

// --------------------------------------------------------------------------
// Frozen wire codes. These literals ARE the protocol; a failure here means
// an enum was renumbered and every deployed peer would misparse.
// --------------------------------------------------------------------------

TEST(RpcProtocol, MsgTypeWireCodesAreFrozen) {
  EXPECT_EQ(wire_code(MsgType::kSubmitBatch), 1);
  EXPECT_EQ(wire_code(MsgType::kSubmitReply), 2);
  EXPECT_EQ(wire_code(MsgType::kJobStatus), 3);
  EXPECT_EQ(wire_code(MsgType::kJobStatusReply), 4);
  EXPECT_EQ(wire_code(MsgType::kJobResult), 5);
  EXPECT_EQ(wire_code(MsgType::kJobResultReply), 6);
  EXPECT_EQ(wire_code(MsgType::kStats), 7);
  EXPECT_EQ(wire_code(MsgType::kStatsReply), 8);
  EXPECT_EQ(wire_code(MsgType::kCancelJob), 9);
  EXPECT_EQ(wire_code(MsgType::kCancelReply), 10);
  EXPECT_EQ(wire_code(MsgType::kShutdown), 11);
  EXPECT_EQ(wire_code(MsgType::kShutdownReply), 12);
  EXPECT_EQ(wire_code(MsgType::kError), 13);
  for (std::uint8_t code = 1; code <= 13; ++code) {
    const auto type = msg_type_from_wire(code);
    ASSERT_TRUE(type.has_value()) << static_cast<int>(code);
    EXPECT_EQ(wire_code(*type), code);
    EXPECT_NE(std::string(to_string(*type)), "");
  }
  EXPECT_FALSE(msg_type_from_wire(0).has_value());
  EXPECT_FALSE(msg_type_from_wire(14).has_value());
  EXPECT_FALSE(msg_type_from_wire(255).has_value());
}

TEST(RpcProtocol, SubmitStatusWireCodesAreFrozenAndRoundTrip) {
  using service::SubmitStatus;
  EXPECT_EQ(service::wire_code(SubmitStatus::kAccepted), 0);
  EXPECT_EQ(service::wire_code(SubmitStatus::kQueueFullTenant), 1);
  EXPECT_EQ(service::wire_code(SubmitStatus::kQueueFullGlobal), 2);
  EXPECT_EQ(service::wire_code(SubmitStatus::kThrottled), 3);
  EXPECT_EQ(service::wire_code(SubmitStatus::kInvalidScenario), 4);
  EXPECT_EQ(service::wire_code(SubmitStatus::kShuttingDown), 5);
  for (int code = 0; code <= 5; ++code) {
    const auto status = service::submit_status_from_wire(code);
    ASSERT_TRUE(status.has_value()) << code;
    EXPECT_EQ(service::wire_code(*status), code);
    // to_string / from_string round-trip — the acceptance-criteria pin.
    EXPECT_EQ(service::submit_status_from_string(service::to_string(*status)),
              *status);
  }
  EXPECT_FALSE(service::submit_status_from_wire(-1).has_value());
  EXPECT_FALSE(service::submit_status_from_wire(6).has_value());
  EXPECT_THROW(service::submit_status_from_string("bogus"), std::invalid_argument);
  EXPECT_THROW(service::submit_status_from_string(""), std::invalid_argument);
}

TEST(RpcProtocol, JobStateWireCodesAreFrozenAndRoundTrip) {
  using service::JobState;
  EXPECT_EQ(service::wire_code(JobState::kUnknown), 0);
  EXPECT_EQ(service::wire_code(JobState::kQueued), 1);
  EXPECT_EQ(service::wire_code(JobState::kRunning), 2);
  EXPECT_EQ(service::wire_code(JobState::kDone), 3);
  EXPECT_EQ(service::wire_code(JobState::kFailed), 4);
  EXPECT_EQ(service::wire_code(JobState::kCancelled), 5);
  for (int code = 0; code <= 5; ++code) {
    const auto state = service::job_state_from_wire(code);
    ASSERT_TRUE(state.has_value()) << code;
    EXPECT_EQ(service::wire_code(*state), code);
    EXPECT_EQ(service::job_state_from_string(service::to_string(*state)), *state);
  }
  EXPECT_FALSE(service::job_state_from_wire(-1).has_value());
  EXPECT_FALSE(service::job_state_from_wire(6).has_value());
  EXPECT_THROW(service::job_state_from_string("bogus"), std::invalid_argument);
}

// --------------------------------------------------------------------------
// Payload codec round-trips.
// --------------------------------------------------------------------------

TEST(RpcProtocol, SubmitBatchRoundTripsScenariosBitIdentically) {
  SubmitBatchRequest req;
  req.tenant = "tenant-alpha";
  for (std::uint64_t s = 1; s <= 4; ++s) req.specs.push_back(sample_spec(s));

  const SubmitBatchRequest got = decode_submit_batch(encode_submit_batch(req));
  EXPECT_EQ(got.tenant, req.tenant);
  ASSERT_EQ(got.specs.size(), req.specs.size());
  for (std::size_t i = 0; i < req.specs.size(); ++i) {
    // The wire embeds unmodified `nowsched-scenario v1` records, so the
    // replay serialization must match byte for byte.
    EXPECT_EQ(sim::to_replay_string(got.specs[i]),
              sim::to_replay_string(req.specs[i]))
        << i;
  }
}

TEST(RpcProtocol, SubmitBatchWithZeroScenariosRoundTrips) {
  SubmitBatchRequest req;
  req.tenant = "t";
  const SubmitBatchRequest got = decode_submit_batch(encode_submit_batch(req));
  EXPECT_EQ(got.tenant, "t");
  EXPECT_TRUE(got.specs.empty());
}

TEST(RpcProtocol, SubmitReplyRoundTripsEveryStatus) {
  for (int code = 0; code <= 5; ++code) {
    SubmitReply reply;
    reply.status = *service::submit_status_from_wire(code);
    reply.reason = code == 0 ? "" : "queue depth reached";
    reply.job_id = code == 0 ? 42u : 0u;
    const SubmitReply got = decode_submit_reply(encode_submit_reply(reply));
    EXPECT_EQ(got.status, reply.status) << code;
    EXPECT_EQ(got.reason, reply.reason) << code;
    EXPECT_EQ(got.job_id, reply.job_id) << code;
  }
}

TEST(RpcProtocol, JobStatusRoundTrips) {
  JobStatusRequest req;
  req.job_id = 7;
  EXPECT_EQ(decode_job_status(encode_job_status(req)).job_id, 7u);
  for (int code = 0; code <= 5; ++code) {
    JobStatusReply reply;
    reply.state = *service::job_state_from_wire(code);
    EXPECT_EQ(decode_job_status_reply(encode_job_status_reply(reply)).state,
              reply.state);
  }
}

TEST(RpcProtocol, JobResultRequestRoundTripsWaitFlag) {
  for (const bool wait : {false, true}) {
    JobResultRequest req;
    req.job_id = 13;
    req.wait = wait;
    const JobResultRequest got = decode_job_result(encode_job_result(req));
    EXPECT_EQ(got.job_id, 13u);
    EXPECT_EQ(got.wait, wait);
  }
}

TEST(RpcProtocol, DoneResultReplyRoundTripsFieldForField) {
  JobResultReply reply;
  reply.state = service::JobState::kDone;
  reply.tenant = "tenant-beta";
  reply.job_id = 99;
  reply.completion_index = 12;
  reply.latency_ms = 0.1 + 0.2;  // a value with no short decimal form
  reply.per_scenario = {sample_metrics(10), sample_metrics(300),
                        sample_metrics(7000)};
  reply.aggregate = sample_metrics(123456789);
  reply.cache.hits = 11;
  reply.cache.misses = 3;
  reply.cache.store_hits = 2;
  reply.cache.spills = 1;
  reply.cache.evictions = 4;
  reply.cache.entries = 5;
  reply.cache.resident_bytes = 1 << 20;

  const JobResultReply got =
      decode_job_result_reply(encode_job_result_reply(reply));
  EXPECT_EQ(got.state, service::JobState::kDone);
  EXPECT_TRUE(got.error.empty());
  EXPECT_EQ(got.tenant, reply.tenant);
  EXPECT_EQ(got.job_id, reply.job_id);
  EXPECT_EQ(got.completion_index, reply.completion_index);
  EXPECT_EQ(got.latency_ms, reply.latency_ms);  // %.17g: bit-exact
  ASSERT_EQ(got.per_scenario.size(), reply.per_scenario.size());
  for (std::size_t i = 0; i < reply.per_scenario.size(); ++i) {
    expect_metrics_eq(got.per_scenario[i], reply.per_scenario[i]);
  }
  expect_metrics_eq(got.aggregate, reply.aggregate);
  EXPECT_EQ(got.cache.hits, reply.cache.hits);
  EXPECT_EQ(got.cache.misses, reply.cache.misses);
  EXPECT_EQ(got.cache.store_hits, reply.cache.store_hits);
  EXPECT_EQ(got.cache.spills, reply.cache.spills);
  EXPECT_EQ(got.cache.evictions, reply.cache.evictions);
  EXPECT_EQ(got.cache.entries, reply.cache.entries);
  EXPECT_EQ(got.cache.resident_bytes, reply.cache.resident_bytes);
}

TEST(RpcProtocol, NonDoneResultRepliesCarryStateAndError) {
  for (const service::JobState state :
       {service::JobState::kUnknown, service::JobState::kQueued,
        service::JobState::kRunning, service::JobState::kFailed,
        service::JobState::kCancelled}) {
    JobResultReply reply;
    reply.state = state;
    if (state == service::JobState::kFailed ||
        state == service::JobState::kCancelled) {
      reply.error = "diagnostic text";
    }
    const JobResultReply got =
        decode_job_result_reply(encode_job_result_reply(reply));
    EXPECT_EQ(got.state, state);
    EXPECT_EQ(got.error, reply.error);
    EXPECT_TRUE(got.per_scenario.empty());
  }
}

TEST(RpcProtocol, StatsCancelShutdownErrorRoundTrip) {
  EXPECT_TRUE(encode_stats_request().empty());
  EXPECT_NO_THROW(decode_stats_request(""));
  EXPECT_THROW(decode_stats_request("x"), std::invalid_argument);

  CancelRequest cancel;
  cancel.job_id = 5;
  EXPECT_EQ(decode_cancel(encode_cancel(cancel)).job_id, 5u);
  for (const bool cancelled : {false, true}) {
    CancelReply reply;
    reply.cancelled = cancelled;
    EXPECT_EQ(decode_cancel_reply(encode_cancel_reply(reply)).cancelled,
              cancelled);
  }

  for (const auto mode : {service::SchedulerService::StopMode::kDrain,
                          service::SchedulerService::StopMode::kCancelQueued}) {
    ShutdownRequest req;
    req.mode = mode;
    EXPECT_EQ(decode_shutdown(encode_shutdown(req)).mode, mode);
  }
  EXPECT_NO_THROW(decode_shutdown_reply(encode_shutdown_reply()));

  ErrorReply error;
  error.message = "nowsched-rpc payload: something went wrong";
  EXPECT_EQ(decode_error(encode_error(error)).message, error.message);
}

TEST(RpcProtocol, DiagnosticTextWithNewlinesIsFlattenedNotCorrupting) {
  // reason=/error=/message= are single-line fields; embedded newlines would
  // desynchronize the line-oriented payload. The encoder flattens them.
  SubmitReply reply;
  reply.status = service::SubmitStatus::kInvalidScenario;
  reply.reason = "line one\nline two\r\nline three";
  const SubmitReply got = decode_submit_reply(encode_submit_reply(reply));
  EXPECT_EQ(got.status, reply.status);
  EXPECT_EQ(got.reason.find('\n'), std::string::npos);
  EXPECT_NE(got.reason.find("line one"), std::string::npos);
  EXPECT_NE(got.reason.find("line three"), std::string::npos);
}

// --------------------------------------------------------------------------
// Malformed payloads: every decoder throws std::invalid_argument, never
// crashes or mis-decodes.
// --------------------------------------------------------------------------

TEST(RpcProtocol, MalformedPayloadsThrowTypedErrors) {
  EXPECT_THROW(decode_submit_batch(""), std::invalid_argument);
  EXPECT_THROW(decode_submit_batch("garbage\n"), std::invalid_argument);
  EXPECT_THROW(decode_submit_batch("nowsched-submit v2\n"), std::invalid_argument);
  EXPECT_THROW(decode_submit_batch("nowsched-submit v1\ntenant=t\nscenarios=x\n"),
               std::invalid_argument);
  // Declared two scenarios, delivered none.
  EXPECT_THROW(
      decode_submit_batch("nowsched-submit v1\ntenant=t\nscenarios=2\n\n"),
      std::invalid_argument);

  EXPECT_THROW(decode_submit_reply("nowsched-submit-reply v1\nstatus=9\n"),
               std::invalid_argument);
  EXPECT_THROW(decode_submit_reply("nowsched-submit-reply v1\nstatus=-1\n"),
               std::invalid_argument);
  EXPECT_THROW(decode_job_status("nowsched-job-status v1\njob_id=nan\n"),
               std::invalid_argument);
  EXPECT_THROW(decode_job_status_reply("nowsched-job-status-reply v1\nstate=6\n"),
               std::invalid_argument);
  EXPECT_THROW(decode_job_result("nowsched-job-result v1\njob_id=1\nwait=2\n"),
               std::invalid_argument);
  EXPECT_THROW(decode_cancel("nowsched-cancel v1\n"), std::invalid_argument);
  EXPECT_THROW(decode_shutdown("nowsched-shutdown v1\nmode=explode\n"),
               std::invalid_argument);
  EXPECT_THROW(decode_error("wrong-header v1\nmessage=x\n"),
               std::invalid_argument);

  // Trailing junk after a complete record is also an error (strict EOF).
  const std::string ok = encode_cancel(CancelRequest{5});
  EXPECT_THROW(decode_cancel(ok + "extra=1\n"), std::invalid_argument);
}

TEST(RpcProtocol, AbsurdCountsAreRejectedBeforeAllocation) {
  // A correctly framed payload claiming 2^64-1 records must draw the typed
  // error, not a std::length_error/bad_alloc out of vector::reserve — those
  // would escape the server's invalid_argument catch and kill the daemon.
  EXPECT_THROW(decode_submit_batch("nowsched-submit v1\ntenant=t\n"
                                   "scenarios=18446744073709551615\n"),
               std::invalid_argument);

  // Client side has the same exposure through the result-reply decoder.
  JobResultReply reply;
  reply.state = service::JobState::kDone;
  reply.tenant = "t";
  reply.job_id = 1;
  reply.per_scenario = {sample_metrics(1)};
  std::string payload = encode_job_result_reply(reply);
  const std::size_t pos = payload.find("scenarios=1\n");
  ASSERT_NE(pos, std::string::npos);
  payload.replace(pos, 12, "scenarios=18446744073709551615\n");
  EXPECT_THROW(decode_job_result_reply(payload), std::invalid_argument);
}

TEST(RpcProtocol, TenantWithNewlineIsRejectedAtEncode) {
  // The tenant id is an identifier, not free text: flattening would bill a
  // different quota bucket, and passing it raw would inject protocol lines
  // into the record. Encode refuses instead.
  SubmitBatchRequest req;
  req.tenant = "alpha\nscenarios=0";
  EXPECT_THROW((void)encode_submit_batch(req), std::invalid_argument);
  req.tenant = "alpha\rbeta";
  EXPECT_THROW((void)encode_submit_batch(req), std::invalid_argument);
  // Decode rejects a smuggled carriage return too ('\n' cannot survive the
  // line split, so '\r' is the only one that needs an explicit check).
  EXPECT_THROW(
      decode_submit_batch("nowsched-submit v1\ntenant=a\rb\nscenarios=0\n"),
      std::invalid_argument);
}

TEST(RpcProtocol, ResultReplyRejectsWrongMetricsArity) {
  JobResultReply reply;
  reply.state = service::JobState::kDone;
  reply.tenant = "t";
  reply.job_id = 1;
  reply.per_scenario = {sample_metrics(1)};
  std::string payload = encode_job_result_reply(reply);
  // Truncate the (only) metrics line by one field: 12 integers is the
  // contract, 11 must throw rather than zero-fill.
  const std::size_t metrics_pos = payload.find("metrics=");
  ASSERT_NE(metrics_pos, std::string::npos);
  const std::size_t line_end = payload.find('\n', metrics_pos);
  const std::size_t last_space = payload.rfind(' ', line_end);
  ASSERT_NE(last_space, std::string::npos);
  payload.erase(last_space, line_end - last_space);
  EXPECT_THROW(decode_job_result_reply(payload), std::invalid_argument);
}

}  // namespace
}  // namespace nowsched::rpc
