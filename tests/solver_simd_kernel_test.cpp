// SIMD-vs-scalar kernel battery: every compiled level-fill kernel must be
// bit-identical to the scalar two-pointer kernel (and to the legacy binary
// search) on generated scenarios, adversarial partial ranges, odd tails and
// vector-unfriendly c values — plus the dispatch, calibration and cost-model
// contracts of solver/fast_solver.h.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

#include "sim/scenario_gen.h"
#include "solver/fast_solver.h"
#include "solver/reference_solver.h"
#include "util/parse.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace nowsched::solver {
namespace {

/// Restores the un-forced dispatch state however a test exits.
struct KernelForceGuard {
  ~KernelForceGuard() { clear_forced_solver_kernel(); }
};

int fuzz_cases(int fallback) {
  const char* env = std::getenv("NOWSCHED_FUZZ_CASES");
  if (env == nullptr || *env == '\0') return fallback;
  const auto v = util::parse_int64(env);
  if (!v || *v < 1 || *v > std::numeric_limits<int>::max()) {
    throw std::runtime_error(
        "NOWSCHED_FUZZ_CASES must be a positive int-range integer, got '" +
        std::string(env) + "'");
  }
  return static_cast<int>(*v);
}

/// Fills one level over [lo, hi) with `kernel` on a fresh copy of `cur0`,
/// returning the filled level.
std::vector<Ticks> fill_with(SolverKernel kernel, const std::vector<Ticks>& cur0,
                             const std::vector<Ticks>& prev, Ticks lo, Ticks hi,
                             Ticks c) {
  std::vector<Ticks> cur = cur0;
  run_fill_kernel(kernel, cur, prev, lo, hi, c);
  return cur;
}

// ---------------------------------------------------------------------------
// Dispatch registry
// ---------------------------------------------------------------------------

TEST(KernelDispatch, NamesRoundTrip) {
  for (SolverKernel k : {SolverKernel::kLegacy, SolverKernel::kScalar,
                         SolverKernel::kAvx2, SolverKernel::kNeon}) {
    const auto back = solver_kernel_from_name(solver_kernel_name(k));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, k);
  }
  EXPECT_FALSE(solver_kernel_from_name("").has_value());
  EXPECT_FALSE(solver_kernel_from_name("avx512").has_value());
  EXPECT_FALSE(solver_kernel_from_name("Scalar").has_value());
}

TEST(KernelDispatch, PortableKernelsAlwaysSupported) {
  EXPECT_TRUE(solver_kernel_supported(SolverKernel::kLegacy));
  EXPECT_TRUE(solver_kernel_supported(SolverKernel::kScalar));
  const auto supported = supported_solver_kernels();
  EXPECT_GE(supported.size(), 2u);
  for (SolverKernel k : supported) EXPECT_TRUE(solver_kernel_supported(k));
}

TEST(KernelDispatch, AutoNeverPicksLegacy) {
  KernelForceGuard guard;
  clear_forced_solver_kernel();
  EXPECT_NE(active_solver_kernel(), SolverKernel::kLegacy);
}

TEST(KernelDispatch, ForceAndClear) {
  KernelForceGuard guard;
  for (SolverKernel k : supported_solver_kernels()) {
    force_solver_kernel(k);
    EXPECT_EQ(active_solver_kernel(), k);
  }
  clear_forced_solver_kernel();
  EXPECT_NE(active_solver_kernel(), SolverKernel::kLegacy);
}

TEST(KernelDispatch, ForcingUnsupportedKernelThrows) {
  KernelForceGuard guard;
  for (SolverKernel k : {SolverKernel::kAvx2, SolverKernel::kNeon}) {
    if (!solver_kernel_supported(k)) {
      EXPECT_THROW(force_solver_kernel(k), std::invalid_argument);
      EXPECT_THROW(
          run_fill_kernel(k, std::span<Ticks>{}, std::span<const Ticks>{}, 1, 1, 1),
          std::invalid_argument);
    }
  }
}

TEST(KernelDispatch, EnvValueParsing) {
  std::string warning;
  EXPECT_FALSE(solver_kernel_from_env_value(nullptr, &warning).has_value());
  EXPECT_TRUE(warning.empty());
  EXPECT_FALSE(solver_kernel_from_env_value("auto", &warning).has_value());
  EXPECT_TRUE(warning.empty());

  const auto scalar = solver_kernel_from_env_value("scalar", &warning);
  ASSERT_TRUE(scalar.has_value());
  EXPECT_EQ(*scalar, SolverKernel::kScalar);
  EXPECT_TRUE(warning.empty());

  EXPECT_FALSE(solver_kernel_from_env_value("", &warning).has_value());
  EXPECT_NE(warning.find("empty"), std::string::npos);
  EXPECT_FALSE(solver_kernel_from_env_value("sse9", &warning).has_value());
  EXPECT_NE(warning.find("not a known kernel"), std::string::npos);

  // Whichever of the SIMD kernels this host cannot run must warn, not pin.
  for (SolverKernel k : {SolverKernel::kAvx2, SolverKernel::kNeon}) {
    if (!solver_kernel_supported(k)) {
      EXPECT_FALSE(
          solver_kernel_from_env_value(solver_kernel_name(k), &warning).has_value());
      EXPECT_NE(warning.find("cannot run"), std::string::npos);
    }
  }
}

// ---------------------------------------------------------------------------
// Differential battery
// ---------------------------------------------------------------------------

TEST(KernelDifferential, GeneratedScenariosBitIdenticalAcrossKernels) {
  // NOWSCHED_FUZZ_CASES generated scenarios; per scenario, each supported
  // kernel (plus legacy) builds every level over the same inputs and must
  // match the scalar build entry-for-entry. The domain spans c values that
  // are not multiples of any vector width and lifespans with odd tails.
  sim::ScenarioDomain domain;
  domain.min_c = 1;
  domain.max_c = 49;
  domain.min_lifespan = 3;
  domain.max_lifespan = 301;
  domain.max_interrupts = 3;
  sim::ScenarioGenerator gen(domain, 0x51D3);

  const int cases = fuzz_cases(200);
  for (int i = 0; i < cases; ++i) {
    const sim::ScenarioSpec spec = gen.next();
    const Ticks n = spec.lifespan;
    const Ticks c = spec.params.c;
    std::vector<Ticks> prev(static_cast<std::size_t>(n) + 1);
    for (Ticks l = 0; l <= n; ++l) {
      prev[static_cast<std::size_t>(l)] = positive_sub(l, c);
    }
    const std::vector<Ticks> zero(static_cast<std::size_t>(n) + 1, 0);
    const int max_q = std::max(1, spec.max_interrupts);
    for (int q = 1; q <= max_q; ++q) {
      const auto scalar = fill_with(SolverKernel::kScalar, zero, prev, 1, n + 1, c);
      const auto legacy = fill_with(SolverKernel::kLegacy, zero, prev, 1, n + 1, c);
      ASSERT_EQ(scalar, legacy) << "case " << i << " q=" << q << " c=" << c;
      for (SolverKernel k : supported_solver_kernels()) {
        if (k == SolverKernel::kScalar || k == SolverKernel::kLegacy) continue;
        const auto vec = fill_with(k, zero, prev, 1, n + 1, c);
        ASSERT_EQ(scalar, vec)
            << "case " << i << " q=" << q << " c=" << c << " kernel "
            << solver_kernel_name(k);
      }
      prev = scalar;
    }
  }
}

TEST(KernelDifferential, SyntheticMonotoneTablesAndPartialRanges) {
  // Random non-decreasing prev tables (arbitrary step sizes — prev need not
  // be Lipschitz) and wavefront-shaped partial [lo, hi) ranges, including
  // single-lifespan ranges and tails not divisible by any vector width.
  util::Rng rng(0xB10C);
  for (int iter = 0; iter < 60; ++iter) {
    const Ticks n = rng.uniform_int(2, 400);
    const Ticks c = rng.uniform_int(1, 60);
    std::vector<Ticks> prev(static_cast<std::size_t>(n) + 1, 0);
    for (Ticks l = 1; l <= n; ++l) {
      prev[static_cast<std::size_t>(l)] =
          prev[static_cast<std::size_t>(l - 1)] + rng.uniform_int(0, 3);
    }
    // Blockwise fill with ragged block boundaries: every kernel must agree
    // with the legacy scan under the same partial-range call pattern.
    std::vector<std::vector<Ticks>> levels;
    levels.push_back(
        fill_with(SolverKernel::kLegacy,
                  std::vector<Ticks>(static_cast<std::size_t>(n) + 1, 0), prev,
                  1, n + 1, c));
    for (SolverKernel k : supported_solver_kernels()) {
      if (k == SolverKernel::kLegacy) continue;
      std::vector<Ticks> cur(static_cast<std::size_t>(n) + 1, 0);
      Ticks lo = 1;
      while (lo <= n) {
        const Ticks hi = std::min<Ticks>(n + 1, lo + rng.uniform_int(1, c));
        run_fill_kernel(k, cur, prev, lo, hi, c);
        lo = hi;
      }
      ASSERT_EQ(levels.front(), cur)
          << "iter " << iter << " c=" << c << " n=" << n << " kernel "
          << solver_kernel_name(k);
    }
  }
}

TEST(KernelDifferential, ForcedDispatchSolvesMatchReference) {
  // Whole-solve path: force each supported kernel through the public
  // dispatcher (sequential AND forced-wavefront on an oversubscribed pool)
  // and demand bit-identity with the O(P·N²) oracle.
  KernelForceGuard guard;
  util::ThreadPool pool(4);
  const Params params{13};
  const int max_p = 3;
  const Ticks n = 400;
  const auto ref = solve_reference(max_p, n, params);
  for (SolverKernel k : supported_solver_kernels()) {
    force_solver_kernel(k);
    const auto seq = solve_fast(max_p, n, params, nullptr,
                                ParallelMode::kForceSequential);
    const auto wave = solve_fast(max_p, n, params, &pool,
                                 ParallelMode::kForceWavefront);
    ASSERT_TRUE(std::equal(seq.slab().begin(), seq.slab().end(),
                           ref.slab().begin()))
        << "sequential kernel " << solver_kernel_name(k);
    ASSERT_TRUE(std::equal(wave.slab().begin(), wave.slab().end(),
                           ref.slab().begin()))
        << "wavefront kernel " << solver_kernel_name(k);
  }
}

TEST(KernelDifferential, DegenerateGrids) {
  // c = 1, c >= n, n = 1 — the boundary geometries where blocked scans
  // historically break.
  for (const auto& [n, c] : std::vector<std::pair<Ticks, Ticks>>{
           {1, 1}, {1, 5}, {2, 1}, {3, 7}, {7, 7}, {8, 7}, {9, 2}, {257, 1},
           {300, 299}, {300, 300}, {300, 301}}) {
    std::vector<Ticks> prev(static_cast<std::size_t>(n) + 1);
    for (Ticks l = 0; l <= n; ++l) {
      prev[static_cast<std::size_t>(l)] = positive_sub(l, c);
    }
    const std::vector<Ticks> zero(static_cast<std::size_t>(n) + 1, 0);
    const auto legacy = fill_with(SolverKernel::kLegacy, zero, prev, 1, n + 1, c);
    for (SolverKernel k : supported_solver_kernels()) {
      if (k == SolverKernel::kLegacy) continue;
      ASSERT_EQ(legacy, fill_with(k, zero, prev, 1, n + 1, c))
          << "n=" << n << " c=" << c << " kernel " << solver_kernel_name(k);
    }
  }
}

// ---------------------------------------------------------------------------
// Slab alignment
// ---------------------------------------------------------------------------

TEST(ValueTableSlab, OwningSlabIsVectorAligned) {
  for (const auto& [p, n] : std::vector<std::pair<int, Ticks>>{
           {0, 0}, {1, 7}, {3, 1000}, {5, 4097}}) {
    const ValueTable table(p, n, Params{8});
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(table.slab().data()) %
                  kSlabAlignment,
              0u)
        << "p=" << p << " n=" << n;
  }
}

// ---------------------------------------------------------------------------
// Cost model + calibration
// ---------------------------------------------------------------------------

TEST(CostModel, ModeledStepsTrackCountedSteps) {
  // The model must predict the kernels' actual probe counters within a
  // small constant factor — this is what pins the "log2(l − c), not
  // log2(table size)" fix. Synthetic tables, deterministic counts.
  for (const auto& [n, c] : std::vector<std::pair<Ticks, Ticks>>{
           {1 << 12, 64}, {1 << 12, 1024}, {5000, 7}, {300, 120}}) {
    std::vector<Ticks> prev(static_cast<std::size_t>(n) + 1);
    for (Ticks l = 0; l <= n; ++l) {
      prev[static_cast<std::size_t>(l)] = positive_sub(l, c);
    }
    for (SolverKernel k : {SolverKernel::kLegacy, SolverKernel::kScalar}) {
      std::vector<Ticks> cur(static_cast<std::size_t>(n) + 1, 0);
      std::size_t counted = 0;
      run_fill_kernel(k, cur, prev, 1, n + 1, c, &counted);
      const double modeled = modeled_scan_steps(k, c, 1, n + 1);
      ASSERT_GT(counted, 0u);
      EXPECT_GT(static_cast<double>(counted), modeled / 3.0)
          << "n=" << n << " c=" << c << " kernel " << solver_kernel_name(k);
      EXPECT_LT(static_cast<double>(counted), modeled * 3.0)
          << "n=" << n << " c=" << c << " kernel " << solver_kernel_name(k);
    }
  }
}

TEST(CostModel, LegacyModelReflectsSearchRangeNotTableSize) {
  // With c close to N the scans search tiny [c, l] ranges: the fixed model
  // must charge far fewer steps than the old kN·log2(kN) formula did, while
  // still upper-bounding the constant-step kernels.
  const Ticks n = 1 << 14;
  const double wide = modeled_scan_steps(SolverKernel::kLegacy, 16, 1, n + 1);
  const double narrow =
      modeled_scan_steps(SolverKernel::kLegacy, n - 64, 1, n + 1);
  const double old_model =
      static_cast<double>(n) * std::log2(static_cast<double>(n));
  EXPECT_LT(narrow, 0.5 * old_model);
  EXPECT_LT(narrow, wide);
  EXPECT_GT(modeled_scan_steps(SolverKernel::kLegacy, 16, 1, n + 1),
            modeled_scan_steps(SolverKernel::kScalar, 16, 1, n + 1));
  EXPECT_EQ(modeled_scan_steps(SolverKernel::kScalar, 16, 5, 5), 0.0);
}

TEST(Calibration, ClampedRecalibratableAndKernelTagged) {
  KernelForceGuard guard;
  const ScanCalibration first = scan_calibration();
  EXPECT_GT(first.generation, 0u);
  EXPECT_GE(first.step_ns, 0.05);
  EXPECT_LE(first.step_ns, 25.0);
  const std::string source = first.source;
  EXPECT_TRUE(source == "measured" || source == "clamped-low" ||
              source == "clamped-high")
      << source;
  EXPECT_EQ(first.kernel, active_solver_kernel());

  // Explicit recalibration bumps the generation; a cached read does not.
  EXPECT_EQ(scan_calibration().generation, first.generation);
  const ScanCalibration redo = recalibrate_scan_cost();
  EXPECT_GT(redo.generation, first.generation);

  // Switching the active kernel re-measures under the new kernel.
  force_solver_kernel(SolverKernel::kLegacy);
  const ScanCalibration legacy = scan_calibration();
  EXPECT_EQ(legacy.kernel, SolverKernel::kLegacy);
  EXPECT_GT(legacy.generation, redo.generation);
}

TEST(Calibration, PlanWavefrontReportsCalibrationSource) {
  util::ThreadPool pool(4);
  const WavefrontPlan plan = plan_wavefront(3, 1 << 14, Params{256}, &pool);
  EXPECT_NE(plan.calibration.generation, 0u);
  EXPECT_NE(plan.reason.find(plan.calibration.source), std::string::npos)
      << plan.reason;
  EXPECT_NE(plan.reason.find(solver_kernel_name(plan.calibration.kernel)),
            std::string::npos)
      << plan.reason;
  EXPECT_GT(plan.cell_ns_estimate, 0.0);
}

}  // namespace
}  // namespace nowsched::solver
