#include "core/guidelines.h"

#include <gtest/gtest.h>

#include <cmath>

namespace nowsched {
namespace {

// ---------------------------------------------------------------------------
// §3.1 non-adaptive guideline
// ---------------------------------------------------------------------------

TEST(NonAdaptive, PeriodCountMatchesFormula) {
  const Params params{16};
  // m = floor(sqrt(p*U/c)).
  EXPECT_EQ(nonadaptive_period_count(16 * 100, 1, params), 10u);
  EXPECT_EQ(nonadaptive_period_count(16 * 100, 4, params), 20u);
  EXPECT_EQ(nonadaptive_period_count(16 * 99, 1, params), 9u);  // floor
}

TEST(NonAdaptive, ZeroInterruptsIsSinglePeriod) {
  const Params params{16};
  EXPECT_EQ(nonadaptive_period_count(10000, 0, params), 1u);
  const auto s = nonadaptive_guideline(10000, 0, params);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.total(), 10000);
}

TEST(NonAdaptive, ClampsToAtLeastOnePeriod) {
  const Params params{100};
  // sqrt(1*5/100) < 1 -> clamp to 1.
  EXPECT_EQ(nonadaptive_period_count(5, 1, params), 1u);
}

TEST(NonAdaptive, RejectsBadInputs) {
  EXPECT_THROW(nonadaptive_period_count(0, 1, Params{16}), std::invalid_argument);
  EXPECT_THROW(nonadaptive_period_count(10, -1, Params{16}), std::invalid_argument);
  EXPECT_THROW(nonadaptive_period_count(10, 1, Params{0}), std::invalid_argument);
}

struct NaCase {
  Ticks u;
  int p;
  Ticks c;
};

class NonAdaptiveProperty : public ::testing::TestWithParam<NaCase> {};

TEST_P(NonAdaptiveProperty, SchedulesSpanLifespanWithEqualPeriods) {
  const auto [u, p, c] = GetParam();
  const Params params{c};
  const auto s = nonadaptive_guideline(u, p, params);
  EXPECT_EQ(s.total(), u);
  EXPECT_EQ(s.size(), nonadaptive_period_count(u, p, params));
  Ticks lo = s.period(0), hi = s.period(0);
  for (std::size_t i = 0; i < s.size(); ++i) {
    lo = std::min(lo, s.period(i));
    hi = std::max(hi, s.period(i));
  }
  EXPECT_LE(hi - lo, 1);
}

TEST_P(NonAdaptiveProperty, PeriodLengthTracksSqrtCUOverP) {
  const auto [u, p, c] = GetParam();
  if (p == 0) return;
  const Params params{c};
  const auto s = nonadaptive_guideline(u, p, params);
  const double expected = std::sqrt(static_cast<double>(c) * static_cast<double>(u) /
                                    static_cast<double>(p));
  // Floor effects in m shift the realized length; stay within 30%.
  EXPECT_NEAR(static_cast<double>(s.period(0)), expected, 0.3 * expected + 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NonAdaptiveProperty,
    ::testing::Values(NaCase{1024, 1, 16}, NaCase{1024, 3, 16}, NaCase{4096, 2, 16},
                      NaCase{65536, 1, 16}, NaCase{65536, 8, 16}, NaCase{100000, 5, 64},
                      NaCase{333, 2, 7}, NaCase{50, 4, 3}));

// ---------------------------------------------------------------------------
// §3.2 adaptive guideline
// ---------------------------------------------------------------------------

TEST(AdaptiveTail, MatchesCeilTwoThirds) {
  EXPECT_EQ(adaptive_tail_count(0), 0u);
  EXPECT_EQ(adaptive_tail_count(1), 1u);  // ⌈2/3⌉
  EXPECT_EQ(adaptive_tail_count(2), 2u);  // ⌈4/3⌉
  EXPECT_EQ(adaptive_tail_count(3), 2u);  // ⌈6/3⌉
  EXPECT_EQ(adaptive_tail_count(4), 3u);  // ⌈8/3⌉
  EXPECT_EQ(adaptive_tail_count(6), 4u);
}

TEST(AdaptivePivot, PinnedByTableTwoAtPEqualsOne) {
  // (1 − 0·√2 + ½) = 3/2 — this is what pins the OCR parse (DESIGN.md).
  EXPECT_NEAR(adaptive_pivot_factor(1), 1.5, 1e-12);
}

TEST(AdaptivePivot, PrintedFormulaDipsNegative) {
  // Documented OCR anomaly: the literal formula is negative for p in 3..6.
  EXPECT_LT(adaptive_pivot_factor(3), 0.0);
  EXPECT_LT(adaptive_pivot_factor(4), 0.0);
  EXPECT_GT(adaptive_pivot_factor(2), 0.0);
}

TEST(AdaptivePaperCount, MatchesTableTwoAtPEqualsOne) {
  const Params params{16};
  const Ticks u = 16 * 512;  // U/c = 512
  // ⌊2^{1/2}·√512⌋ + 2 = ⌊32⌋ + 2.
  EXPECT_EQ(adaptive_period_count_paper(u, 1, params), 34u);
}

TEST(AdaptiveEpisode, ZeroInterruptsIsSingleLongPeriod) {
  const auto s = adaptive_episode_guideline(5000, 0, Params{16});
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.total(), 5000);
}

struct AdCase {
  Ticks u;
  int p;
  Ticks c;
};

class AdaptiveEpisodeProperty : public ::testing::TestWithParam<AdCase> {};

TEST_P(AdaptiveEpisodeProperty, SpansLifespanExactly) {
  const auto [u, p, c] = GetParam();
  const auto s = adaptive_episode_guideline(u, p, Params{c});
  EXPECT_EQ(s.total(), u);
}

TEST_P(AdaptiveEpisodeProperty, TailPeriodsAreShortAndInImmuneBand) {
  const auto [u, p, c] = GetParam();
  AdaptiveLayout layout;
  const auto s = adaptive_episode_guideline(u, p, Params{c}, PivotRule::kAsPrinted,
                                            &layout);
  if (p == 0 || layout.degenerate) return;
  ASSERT_GE(s.size(), layout.tail_count);
  for (std::size_t i = s.size() - layout.tail_count; i < s.size(); ++i) {
    // 3c/2 up to rounding: the Thm 4.2 band (c, 2c].
    EXPECT_GE(s.period(i), c);
    EXPECT_LE(s.period(i), 2 * c);
  }
}

TEST_P(AdaptiveEpisodeProperty, RampIsNonIncreasingDownToPivot) {
  const auto [u, p, c] = GetParam();
  AdaptiveLayout layout;
  const auto s = adaptive_episode_guideline(u, p, Params{c}, PivotRule::kAsPrinted,
                                            &layout);
  if (p == 0 || layout.degenerate) return;
  // The ramp (periods 0..ramp_count-1) descends by ~4^{1-p}c into the pivot
  // at index ramp_count; rounding allows 1-tick jitter. (The tail after the
  // pivot jumps back up to 3c/2 when the printed pivot is below c — that is
  // the documented OCR anomaly, not a monotonicity bug.)
  ASSERT_EQ(layout.ramp_count + 1 + layout.tail_count, s.size());
  for (std::size_t i = 0; i < layout.ramp_count; ++i) {
    EXPECT_GE(s.period(i) + 1, s.period(i + 1)) << "i=" << i;
  }
}

TEST_P(AdaptiveEpisodeProperty, PeriodCountWithinFactorOfPaperFormulaSqrtPart) {
  const auto [u, p, c] = GetParam();
  if (p == 0) return;
  AdaptiveLayout layout;
  adaptive_episode_guideline(u, p, Params{c}, PivotRule::kAsPrinted, &layout);
  if (layout.degenerate) return;
  // Our constructive m must scale like 2^{p−1/2}√(U/c) (the sqrt part of the
  // printed formula; the printed additive term over-fills L — DESIGN.md).
  const double sqrt_part = std::pow(2.0, static_cast<double>(p) - 0.5) *
                           std::sqrt(static_cast<double>(u) / static_cast<double>(c));
  const double m = static_cast<double>(layout.total_periods);
  EXPECT_GT(m, 0.4 * sqrt_part);
  EXPECT_LT(m, 2.5 * sqrt_part + 16.0);
}

TEST_P(AdaptiveEpisodeProperty, RationalizedVariantIsFullyProductive) {
  const auto [u, p, c] = GetParam();
  AdaptiveLayout layout;
  const auto s = adaptive_episode_guideline(u, p, Params{c}, PivotRule::kRationalized,
                                            &layout);
  if (p == 0 || layout.degenerate) return;
  // With the pivot clamped to 3c/2 every period should exceed c (up to
  // 1-tick rounding on the tail).
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_GE(s.period(i), c) << "period " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AdaptiveEpisodeProperty,
    ::testing::Values(AdCase{16 * 256, 1, 16}, AdCase{16 * 1024, 1, 16},
                      AdCase{16 * 1024, 2, 16}, AdCase{16 * 4096, 3, 16},
                      AdCase{16 * 4096, 4, 16}, AdCase{64 * 512, 2, 64},
                      AdCase{10000, 5, 8}, AdCase{7777, 3, 13}, AdCase{100000, 0, 16}));

TEST(AdaptiveEpisode, DegeneratesGracefullyOnTinyLifespans) {
  const Params params{16};
  for (Ticks u : {1, 5, 16, 24, 40, 64}) {
    for (int p : {1, 2, 3}) {
      AdaptiveLayout layout;
      const auto s =
          adaptive_episode_guideline(u, p, params, PivotRule::kAsPrinted, &layout);
      EXPECT_EQ(s.total(), u);
      EXPECT_GE(s.size(), 1u);
    }
  }
}

// ---------------------------------------------------------------------------
// Policies
// ---------------------------------------------------------------------------

TEST(GuidelinePolicies, EpisodesSpanResidualForAllStates) {
  const Params params{16};
  const AdaptiveGuidelinePolicy adaptive;
  const NonAdaptiveGuidelinePolicy nonadaptive;
  for (Ticks l : {1, 17, 100, 1000, 5000}) {
    for (int q : {0, 1, 2, 4}) {
      EXPECT_EQ(adaptive.episode(l, q, params).total(), l);
      EXPECT_EQ(nonadaptive.episode(l, q, params).total(), l);
    }
  }
}

TEST(GuidelinePolicies, NamesDistinguishVariants) {
  EXPECT_EQ(AdaptiveGuidelinePolicy{}.name(), "adaptive-guideline");
  EXPECT_EQ(AdaptiveGuidelinePolicy{PivotRule::kRationalized}.name(),
            "adaptive-guideline-rationalized");
  EXPECT_EQ(NonAdaptiveGuidelinePolicy{}.name(), "nonadaptive-restart");
}

}  // namespace
}  // namespace nowsched
