#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace nowsched::util {
namespace {

TEST(ThreadPool, SizeDefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyAndSingletonRanges) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(5, 5, [&](std::size_t) { calls++; });
  EXPECT_EQ(calls.load(), 0);
  pool.parallel_for(5, 6, [&](std::size_t i) {
    EXPECT_EQ(i, 5u);
    calls++;
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ChunkVariantSumsCorrectly) {
  ThreadPool pool(8);
  const std::size_t n = 100000;
  std::atomic<long long> total{0};
  pool.parallel_for_chunks(1, n + 1, [&](std::size_t lo, std::size_t hi) {
    long long local = 0;
    for (std::size_t i = lo; i < hi; ++i) local += static_cast<long long>(i);
    total.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), static_cast<long long>(n) * (n + 1) / 2);
}

TEST(ThreadPool, ChunksAreDisjointAndOrderedWithin) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4096);
  pool.parallel_for_chunks(0, hits.size(), [&](std::size_t lo, std::size_t hi) {
    ASSERT_LE(lo, hi);
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 1000,
                        [&](std::size_t i) {
                          if (i == 357) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, PoolSurvivesExceptionAndRunsAgain) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(0, 500, [&](std::size_t) { throw std::runtime_error("x"); });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> count{0};
  pool.parallel_for(0, 500, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, SingleThreadPoolRunsSerially) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_for(0, 100, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  ASSERT_EQ(order.size(), 100u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  ThreadPool& a = global_pool();
  ThreadPool& b = global_pool();
  EXPECT_EQ(&a, &b);
}

TEST(ThreadPool, ManySmallDispatchesComplete) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(0, 64, [&](std::size_t) { total++; });
  }
  EXPECT_EQ(total.load(), 50 * 64);
}

}  // namespace
}  // namespace nowsched::util
