#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace nowsched::util {
namespace {

TEST(ThreadPool, SizeDefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyAndSingletonRanges) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(5, 5, [&](std::size_t) { calls++; });
  EXPECT_EQ(calls.load(), 0);
  pool.parallel_for(5, 6, [&](std::size_t i) {
    EXPECT_EQ(i, 5u);
    calls++;
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ChunkVariantSumsCorrectly) {
  ThreadPool pool(8);
  const std::size_t n = 100000;
  std::atomic<long long> total{0};
  pool.parallel_for_chunks(1, n + 1, [&](std::size_t lo, std::size_t hi) {
    long long local = 0;
    for (std::size_t i = lo; i < hi; ++i) local += static_cast<long long>(i);
    total.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), static_cast<long long>(n) * (n + 1) / 2);
}

TEST(ThreadPool, ChunksAreDisjointAndOrderedWithin) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4096);
  pool.parallel_for_chunks(0, hits.size(), [&](std::size_t lo, std::size_t hi) {
    ASSERT_LE(lo, hi);
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 1000,
                        [&](std::size_t i) {
                          if (i == 357) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, PoolSurvivesExceptionAndRunsAgain) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(0, 500, [&](std::size_t) { throw std::runtime_error("x"); });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> count{0};
  pool.parallel_for(0, 500, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, SingleThreadPoolRunsSerially) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_for(0, 100, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  ASSERT_EQ(order.size(), 100u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  ThreadPool& a = global_pool();
  ThreadPool& b = global_pool();
  EXPECT_EQ(&a, &b);
}

TEST(ThreadPool, ManySmallDispatchesComplete) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(0, 64, [&](std::size_t) { total++; });
  }
  EXPECT_EQ(total.load(), 50 * 64);
}

// ---- TaskGraph / run_dag ---------------------------------------------------

TEST(TaskGraph, RunDagExecutesEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kLevels = 5, kBlocks = 40;
  std::vector<std::atomic<int>> hits(kLevels * kBlocks);
  TaskGraph g;
  // The solver's grid shape: (p, b) depends on (p, b−1) and (p−1, b−1).
  auto id = [&](std::size_t p, std::size_t b) { return p * kBlocks + b; };
  for (std::size_t p = 0; p < kLevels; ++p) {
    for (std::size_t b = 0; b < kBlocks; ++b) {
      g.add_task([&hits, &id, p, b] { hits[id(p, b)].fetch_add(1); });
    }
  }
  for (std::size_t p = 0; p < kLevels; ++p) {
    for (std::size_t b = 1; b < kBlocks; ++b) {
      g.add_edge(id(p, b - 1), id(p, b));
      if (p > 0) g.add_edge(id(p - 1, b - 1), id(p, b));
    }
  }
  pool.run_dag(g);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TaskGraph, RunDagStartsDependentsOnlyAfterAllPredecessors) {
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 64;
  std::vector<std::atomic<bool>> done(kTasks);
  for (auto& d : done) d.store(false);
  TaskGraph g;
  std::vector<std::vector<std::size_t>> deps_of(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    deps_of[i] = i == 0 ? std::vector<std::size_t>{}
                        : std::vector<std::size_t>{i - 1, i / 2};
    g.add_task([&done, &deps_of, i] {
      for (const std::size_t d : deps_of[i]) {
        EXPECT_TRUE(done[d].load(std::memory_order_acquire))
            << "task " << i << " started before dependency " << d;
      }
      done[i].store(true, std::memory_order_release);
    });
  }
  for (std::size_t i = 1; i < kTasks; ++i) {
    g.add_edge(i - 1, i);
    if (i / 2 != i - 1) g.add_edge(i / 2, i);
  }
  pool.run_dag(g);
  for (const auto& d : done) EXPECT_TRUE(d.load());
}

TEST(TaskGraph, RunDagHasNoGenerationBarrier) {
  // B (a root) blocks until C (depth 1, on another worker) completes. Any
  // barrier-between-generations scheme runs roots to completion first and
  // deadlocks here; true wavefront dispatch lets C start while B waits.
  ThreadPool pool(2);
  std::atomic<bool> c_done{false};
  TaskGraph g;
  const auto a = g.add_task([] {});
  g.add_task([&c_done] {  // B
    while (!c_done.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  const auto c = g.add_task([&c_done] { c_done.store(true, std::memory_order_release); });
  g.add_edge(a, c);
  pool.run_dag(g);
  EXPECT_TRUE(c_done.load());
}

TEST(TaskGraph, RunDagPropagatesMidDagExceptionAndCancelsDownstream) {
  ThreadPool pool(4);
  TaskGraph g;
  std::atomic<bool> tail_ran{false};
  const auto head = g.add_task([] {});
  const auto thrower = g.add_task([] { throw std::runtime_error("mid-DAG boom"); });
  const auto tail = g.add_task([&tail_ran] { tail_ran.store(true); });
  g.add_edge(head, thrower);
  g.add_edge(thrower, tail);
  EXPECT_THROW(pool.run_dag(g), std::runtime_error);
  EXPECT_FALSE(tail_ran.load()) << "downstream of a failed cell must be cancelled";

  // The pool must stay usable after a failed graph.
  std::atomic<int> count{0};
  pool.parallel_for(0, 100, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 100);
}

TEST(TaskGraph, RunDagSingleThreadIsDeterministicTopologicalOrder) {
  // With size() <= 1 the graph runs inline: among ready tasks, lowest id
  // first. Edges are inserted out of id order to exercise the ordering.
  ThreadPool pool(1);
  TaskGraph g;
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < 6; ++i) {
    g.add_task([&order, i] { order.push_back(i); });
  }
  g.add_edge(4, 0);  // 0 late despite its low id
  g.add_edge(2, 1);
  g.add_edge(5, 3);
  pool.run_dag(g);
  // Ready at start: {2, 4, 5}; each release unblocks its dependent.
  const std::vector<std::size_t> expected{2, 1, 4, 0, 5, 3};
  EXPECT_EQ(order, expected);

  // Same graph shape again: the order must reproduce bit-for-bit.
  TaskGraph g2;
  std::vector<std::size_t> order2;
  for (std::size_t i = 0; i < 6; ++i) {
    g2.add_task([&order2, i] { order2.push_back(i); });
  }
  g2.add_edge(4, 0);
  g2.add_edge(2, 1);
  g2.add_edge(5, 3);
  pool.run_dag(g2);
  EXPECT_EQ(order2, expected);
}

TEST(TaskGraph, RunDagEmptyAndSingleton) {
  ThreadPool pool(2);
  TaskGraph empty;
  pool.run_dag(empty);  // must not hang
  TaskGraph one;
  std::atomic<int> calls{0};
  one.add_task([&calls] { calls++; });
  pool.run_dag(one);
  EXPECT_EQ(calls.load(), 1);
}

TEST(TaskGraph, RunDagRejectsCyclesWithoutRunningAnything) {
  ThreadPool pool(2);
  TaskGraph g;
  std::atomic<int> ran{0};
  const auto a = g.add_task([&ran] { ran++; });
  const auto b = g.add_task([&ran] { ran++; });
  const auto c = g.add_task([&ran] { ran++; });  // not on the cycle
  g.add_edge(a, b);
  g.add_edge(b, a);
  (void)c;
  EXPECT_THROW(pool.run_dag(g), std::logic_error);
  EXPECT_EQ(ran.load(), 0);
}

TEST(TaskGraph, AddEdgeValidatesIds) {
  TaskGraph g;
  const auto a = g.add_task([] {});
  EXPECT_THROW(g.add_edge(a, 7), std::out_of_range);
  EXPECT_THROW(g.add_edge(7, a), std::out_of_range);
  EXPECT_THROW(g.add_edge(a, a), std::logic_error);
}

TEST(ThreadPool, DispatchOverheadIsPositiveAndMemoized) {
  ThreadPool pool(2);
  const double first = pool.dispatch_overhead_ns();
  EXPECT_GT(first, 0.0);
  EXPECT_EQ(pool.dispatch_overhead_ns(), first);
}

// ---- NOWSCHED_THREADS parsing ---------------------------------------------

TEST(ThreadsFromEnv, UnsetMeansHardwareDefault) {
  std::string warning = "sentinel";
  EXPECT_EQ(threads_from_env_value(nullptr, &warning), 0u);
  EXPECT_TRUE(warning.empty());
}

TEST(ThreadsFromEnv, ValidPositiveInteger) {
  std::string warning;
  EXPECT_EQ(threads_from_env_value("4", &warning), 4u);
  EXPECT_TRUE(warning.empty());
  EXPECT_EQ(threads_from_env_value("1", &warning), 1u);
  EXPECT_TRUE(warning.empty());
}

TEST(ThreadsFromEnv, RejectsTrailingGarbage) {
  // The old atol parser read "4abc" as 4; full-string validation must not.
  std::string warning;
  EXPECT_EQ(threads_from_env_value("4abc", &warning), 0u);
  EXPECT_FALSE(warning.empty());
  EXPECT_NE(warning.find("4abc"), std::string::npos);
}

TEST(ThreadsFromEnv, RejectsNonPositiveEmptyAndOverflow) {
  std::string warning;
  EXPECT_EQ(threads_from_env_value("-1", &warning), 0u);
  EXPECT_FALSE(warning.empty());
  EXPECT_EQ(threads_from_env_value("0", &warning), 0u);
  EXPECT_FALSE(warning.empty());
  EXPECT_EQ(threads_from_env_value("", &warning), 0u);
  EXPECT_FALSE(warning.empty());
  EXPECT_EQ(threads_from_env_value("99999999999999999999", &warning), 0u);
  EXPECT_FALSE(warning.empty());
  EXPECT_EQ(threads_from_env_value("two", &warning), 0u);
  EXPECT_FALSE(warning.empty());
}

}  // namespace
}  // namespace nowsched::util
