// solver::SolveCache — canonicalization, sharing, counters, eviction, error
// recovery, and the concurrent single-solve guarantee (run under TSan in CI).
#include "solver/solve_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/batch_runner.h"
#include "solver/fast_solver.h"
#include "solver/table_store.h"
#include "temp_dir.h"

namespace nowsched::solver {
namespace {

TEST(CanonicalKey, ClampsAndRoundsUpToBlockMultiple) {
  const SolveKey k = canonical_key({3, 100, Params{16}});
  EXPECT_EQ(k.max_p, 3);
  EXPECT_EQ(k.c, 16);
  EXPECT_EQ(k.max_lifespan, 112);  // next multiple of 16

  EXPECT_EQ(canonical_key({3, 112, Params{16}}).max_lifespan, 112);  // exact stays
  EXPECT_EQ(canonical_key({-2, -5, Params{16}}).max_p, 0);
  EXPECT_EQ(canonical_key({-2, -5, Params{16}}).max_lifespan, 0);
  EXPECT_THROW(canonical_key({1, 10, Params{0}}), std::invalid_argument);
}

TEST(CanonicalKey, FoldsNearbyRequestsOntoOneKeyTransparently) {
  // Requests within one c-block share a key, and the bigger canonical table
  // answers every lookup of the smaller request bit-identically.
  const SolveRequest a{2, 97, Params{16}};
  const SolveRequest b{2, 112, Params{16}};
  ASSERT_EQ(canonical_key(a), canonical_key(b));

  const ValueTable exact = solve_fast(2, 97, Params{16});
  const auto canonical = solve_shared(a);
  for (int p = 0; p <= 2; ++p) {
    for (Ticks l = 0; l <= 97; ++l) {
      ASSERT_EQ(canonical->value(p, l), exact.value(p, l)) << p << " " << l;
    }
  }
}

TEST(CanonicalKey, HashIsPlatformStableAndFieldSensitive) {
  const SolveKey k{2, 64, 16};
  EXPECT_EQ(k.hash(), (SolveKey{2, 64, 16}.hash()));
  EXPECT_NE(k.hash(), (SolveKey{3, 64, 16}.hash()));
  EXPECT_NE(k.hash(), (SolveKey{2, 80, 16}.hash()));
  EXPECT_NE(k.hash(), (SolveKey{2, 64, 32}.hash()));
}

TEST(SolveCache, HitsShareOneTableAndCountersTrack) {
  SolveCache cache;
  const SolveRequest req{2, 200, Params{16}};
  const auto first = cache.get_or_solve(req);
  const auto second = cache.get_or_solve(req);
  EXPECT_EQ(first.get(), second.get());  // same object, not an equal copy

  // A rounding-equivalent request is a hit too.
  const auto third = cache.get_or_solve({2, 195, Params{16}});
  EXPECT_EQ(first.get(), third.get());

  const SolveCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 2.0 / 3.0);
}

TEST(SolveCache, DistinctKeysGetDistinctTables) {
  SolveCache cache;
  const auto a = cache.get_or_solve({2, 64, Params{16}});
  const auto b = cache.get_or_solve({3, 64, Params{16}});
  const auto c = cache.get_or_solve({2, 64, Params{32}});
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().entries, 3u);
}

// Canonical table slab sizes used by the byte-budget tests below:
// key (max_p, L, c) costs (max_p+1) * (L+1) * sizeof(Ticks) bytes.
constexpr std::size_t table_bytes(int max_p, Ticks l) {
  return static_cast<std::size_t>(max_p + 1) * static_cast<std::size_t>(l + 1) *
         sizeof(Ticks);
}

TEST(SolveCache, EvictsLeastRecentlyUsedOverByteBudget) {
  SolveCache::Options options;
  options.shards = 1;  // one shard makes the LRU order observable
  // a (272 B) + b (528 B) fit; adding c (784 B) breaches and must evict
  // exactly the LRU entry.
  options.max_bytes = table_bytes(1, 16) + table_bytes(1, 32) + 300;
  SolveCache cache(options);

  const SolveRequest a{1, 16, Params{16}};
  const SolveRequest b{1, 32, Params{16}};
  const SolveRequest c{1, 48, Params{16}};
  const auto ta = cache.get_or_solve(a);
  (void)cache.get_or_solve(b);
  (void)cache.get_or_solve(a);  // refresh a: b becomes LRU
  (void)cache.get_or_solve(c);  // breaches the budget -> evicts b

  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().resident_bytes, table_bytes(1, 16) + table_bytes(1, 48));
  // a survived (hit, same object); b was evicted (miss, re-solved).
  EXPECT_EQ(cache.get_or_solve(a).get(), ta.get());
  const auto before = cache.stats().misses;
  (void)cache.get_or_solve(b);
  EXPECT_EQ(cache.stats().misses, before + 1);
}

TEST(SolveCache, ByteAccountingIsExactUnderMixedSizes) {
  SolveCache::Options options;
  options.shards = 1;
  options.max_bytes = 1u << 20;  // roomy: nothing evicts
  SolveCache cache(options);

  std::size_t expected = 0;
  for (const SolveRequest req : {SolveRequest{1, 64, Params{16}},
                                 SolveRequest{3, 512, Params{16}},
                                 SolveRequest{2, 4096, Params{32}}}) {
    const auto table = cache.get_or_solve(req);
    expected += table->bytes();
    EXPECT_EQ(cache.stats().resident_bytes, expected);
  }
  EXPECT_EQ(cache.stats().entries, 3u);
  EXPECT_EQ(cache.stats().evictions, 0u);

  cache.clear();
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
}

TEST(SolveCache, OversizedTableParksInsteadOfThrashing) {
  SolveCache::Options options;
  options.shards = 1;
  options.max_bytes = 64;  // smaller than ANY table
  SolveCache cache(options);

  const auto big = cache.get_or_solve({2, 1024, Params{16}});
  // The most recent table always stays resident, even over budget...
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().resident_bytes, big->bytes());
  EXPECT_EQ(cache.get_or_solve({2, 1024, Params{16}}).get(), big.get());  // hit

  // ...and the next completion displaces it (budget still binds).
  const auto next = cache.get_or_solve({1, 64, Params{16}});
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().resident_bytes, next->bytes());
}

TEST(SolveCache, MixedLifespanBatchEvictsButStaysDeterministic) {
  // A BatchRunner over widely mixed N with a budget that can only hold a
  // few tables: eviction churns, counters add up, and the batch aggregate
  // matches the cache-disabled baseline bit-for-bit (the cache only changes
  // who solves, never what).
  std::vector<sim::ScenarioSpec> specs;
  for (int i = 0; i < 24; ++i) {
    sim::ScenarioSpec spec;
    spec.policy = sim::PolicyKind::kDpOptimal;
    spec.owner = sim::OwnerKind::kPoisson;
    spec.owner_a = 900.0;
    spec.params = Params{16};
    spec.lifespan = 256 + 1024 * (i % 6);  // mixed N: 256 .. 5376
    spec.max_interrupts = 2;
    spec.seed = 0xABC0 + static_cast<std::uint64_t>(i);
    specs.push_back(spec);
  }

  sim::BatchOptions tight;
  tight.cache.shards = 1;
  tight.cache.max_bytes = 3 * 6200 * sizeof(Ticks) / 2;  // ~1.5 of the larger tables
  sim::BatchRunner constrained(tight);
  const auto got = constrained.run(specs);

  sim::BatchOptions naive;
  naive.cache_enabled = false;
  sim::BatchRunner baseline(naive);
  const auto want = baseline.run(specs);

  EXPECT_EQ(got.aggregate.banked_work, want.aggregate.banked_work);
  EXPECT_EQ(got.aggregate.lifespan_used, want.aggregate.lifespan_used);
  // Every dp session goes through the cache exactly once...
  EXPECT_EQ(got.cache.hits + got.cache.misses, specs.size());
  // ...the budget forced real churn...
  EXPECT_GT(got.cache.evictions, 0u);
  // ...and the resident set honors the accounting invariant.
  EXPECT_LE(got.cache.entries, 6u);
  EXPECT_GT(got.cache.resident_bytes, 0u);
}

TEST(SolveCache, ZeroBudgetFromConstructionParksNewestOnly) {
  // A zero quota from birth degrades to keep-newest-per-shard, never to an
  // always-cold cache: each completion displaces the previous table.
  SolveCache::Options options;
  options.shards = 1;
  options.max_bytes = 0;
  SolveCache cache(options);

  (void)cache.get_or_solve({1, 16, Params{16}});
  (void)cache.get_or_solve({1, 32, Params{16}});
  const auto last = cache.get_or_solve({1, 48, Params{16}});
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_EQ(cache.stats().resident_bytes, last->bytes());
  // The parked table still serves hits.
  EXPECT_EQ(cache.get_or_solve({1, 48, Params{16}}).get(), last.get());
}

TEST(SolveCache, SetMaxBytesShrinkEvictsImmediatelyKeepingNewestUsed) {
  SolveCache::Options options;
  options.shards = 1;
  options.max_bytes = 1u << 20;  // roomy: everything resident
  SolveCache cache(options);

  const auto a = cache.get_or_solve({1, 16, Params{16}});
  const auto b = cache.get_or_solve({1, 32, Params{16}});
  const auto c = cache.get_or_solve({1, 48, Params{16}});
  (void)cache.get_or_solve({1, 32, Params{16}});  // touch b: b is newest-USED
  ASSERT_EQ(cache.stats().entries, 3u);

  // Shrink to exactly b's size: a and c go, b (most recently used) stays.
  cache.set_max_bytes(b->bytes());
  EXPECT_EQ(cache.max_bytes(), b->bytes());
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_EQ(cache.stats().resident_bytes, b->bytes());
  const auto hits_before = cache.stats().hits;
  EXPECT_EQ(cache.get_or_solve({1, 32, Params{16}}).get(), b.get());
  EXPECT_EQ(cache.stats().hits, hits_before + 1);
}

TEST(SolveCache, SetMaxBytesToZeroKeepsOneTablePerShard) {
  // Quota smaller than ANY table: keep-newest is honored through the
  // resize, exactly like construction-time zero budgets.
  SolveCache::Options options;
  options.shards = 1;
  options.max_bytes = 1u << 20;
  SolveCache cache(options);
  (void)cache.get_or_solve({1, 16, Params{16}});
  const auto newest = cache.get_or_solve({1, 64, Params{16}});

  cache.set_max_bytes(0);
  EXPECT_EQ(cache.max_bytes(), 0u);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().resident_bytes, newest->bytes());
  EXPECT_EQ(cache.get_or_solve({1, 64, Params{16}}).get(), newest.get());
}

TEST(SolveCache, SetMaxBytesGrowNeverEvictsAndRaisesHeadroom) {
  SolveCache::Options options;
  options.shards = 1;
  options.max_bytes = table_bytes(1, 16) + 8;  // holds exactly one small table
  SolveCache cache(options);
  (void)cache.get_or_solve({1, 16, Params{16}});
  ASSERT_EQ(cache.stats().entries, 1u);

  cache.set_max_bytes(1u << 20);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);

  // The raised budget really applies: more tables now coexist.
  (void)cache.get_or_solve({1, 32, Params{16}});
  (void)cache.get_or_solve({1, 48, Params{16}});
  EXPECT_EQ(cache.stats().entries, 3u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(SolveCache, ResizeWhileTablesResidentAcrossShards) {
  // Multi-shard resize: the budget re-splits evenly and EVERY shard evicts
  // down to its slice, each keeping its newest table.
  SolveCache::Options options;
  options.shards = 4;
  options.max_bytes = 1u << 20;
  SolveCache cache(options);
  for (int k = 0; k < 12; ++k) {
    (void)cache.get_or_solve({1, 16 * (k + 1), Params{16}});
  }
  const std::size_t entries_before = cache.stats().entries;
  ASSERT_EQ(entries_before, 12u);

  cache.set_max_bytes(0);
  const SolveCacheStats after = cache.stats();
  // Keep-newest is per shard, so at most shard_count() tables survive (a
  // shard that never held a table keeps none).
  EXPECT_LE(after.entries, cache.shard_count());
  EXPECT_GE(after.entries, 1u);
  EXPECT_EQ(after.evictions, 12u - after.entries);
  EXPECT_GT(after.resident_bytes, 0u);
}

TEST(SolveCache, ClearDropsTablesButKeepsLifetimeCounters) {
  SolveCache cache;
  (void)cache.get_or_solve({1, 64, Params{16}});
  (void)cache.get_or_solve({1, 64, Params{16}});
  cache.clear();
  const SolveCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  // Re-request re-solves.
  (void)cache.get_or_solve({1, 64, Params{16}});
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(SolveCache, FailedSolveIsNotCachedAndRetries) {
  SolveCache cache;
  // Invalid params throw inside canonicalization — before any map entry.
  EXPECT_THROW((void)cache.get_or_solve({1, 10, Params{0}}), std::invalid_argument);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  // A healthy request for a nearby key still works afterwards.
  EXPECT_NE(cache.get_or_solve({1, 10, Params{16}}), nullptr);
}

TEST(SolveCache, ConcurrentRequestsForOneKeySolveExactlyOnce) {
  // 8 threads hammer 4 keys; per key exactly one miss, and every thread for
  // a key receives the SAME table object. TSan checks the locking.
  SolveCache cache;
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 50;
  std::vector<std::shared_ptr<const ValueTable>> first_seen(4);
  std::atomic<bool> mismatch{false};

  {
    // Resolve each key once up front on this thread to have a comparison
    // object that does not race with the worker threads' first resolution.
    for (int k = 0; k < 4; ++k) {
      first_seen[static_cast<std::size_t>(k)] =
          cache.get_or_solve({2, 64 + 16 * k, Params{16}});
    }
  }

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &first_seen, &mismatch, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const int k = (t + i) % 4;
        const auto table = cache.get_or_solve({2, 64 + 16 * k, Params{16}});
        if (table.get() != first_seen[static_cast<std::size_t>(k)].get()) {
          mismatch.store(true);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_FALSE(mismatch.load());
  const SolveCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads) * kItersPerThread);
  EXPECT_EQ(stats.entries, 4u);
}

TEST(SolveCache, ColdConcurrentRaceStillSolvesOncePerKey) {
  // Unlike the test above, the cache starts COLD and all threads race the
  // first resolution — the in-flight future must dedupe the solves.
  SolveCache cache;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache] {
      for (int k = 0; k < 4; ++k) {
        const auto table = cache.get_or_solve({2, 64 + 16 * k, Params{16}});
        ASSERT_NE(table, nullptr);
        ASSERT_EQ(table->value(0, 32), 16);  // 32 − c
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(cache.stats().misses, 4u);
}

// ---------------------------------------------------------------------------
// Tiering: the persistent store beneath the RAM tier
// ---------------------------------------------------------------------------

/// Field-for-field equality — the cross-tier bit-identity guarantee.
void expect_tables_identical(const ValueTable& a, const ValueTable& b) {
  ASSERT_EQ(a.max_interrupts(), b.max_interrupts());
  ASSERT_EQ(a.max_lifespan(), b.max_lifespan());
  ASSERT_EQ(a.params().c, b.params().c);
  for (int p = 0; p <= a.max_interrupts(); ++p) {
    for (Ticks l = 0; l <= a.max_lifespan(); ++l) {
      ASSERT_EQ(a.value(p, l), b.value(p, l)) << "W(" << p << ")[" << l << "]";
    }
  }
}

TEST(SolveCacheTiered, LookupWalksRamThenStoreThenSolves) {
  nowsched::testing::TempDir dir("tier");
  auto store = std::make_shared<MappedTableStore>(
      MappedTableStore::Options{dir.str()});
  SolveCache cache({2, 16u << 20, store});
  const SolveRequest req{2, 200, Params{16}};

  // Cold everywhere: miss → fresh solve → spill to the store.
  const auto solved = cache.get_or_solve(req);
  EXPECT_TRUE(solved->owns_storage());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().store_hits, 0u);
  EXPECT_EQ(cache.stats().spills, 1u);

  // Warm RAM: a plain hit, the store is not consulted.
  EXPECT_EQ(cache.get_or_solve(req).get(), solved.get());
  EXPECT_EQ(cache.stats().hits, 1u);

  // Drop RAM, keep the store: the miss is answered by a mapped read — a
  // zero-copy view, counted as store_hit, NOT a second spill — and the
  // mapped table is bit-identical to the solved one.
  cache.clear();
  const auto mapped = cache.get_or_solve(req);
  EXPECT_FALSE(mapped->owns_storage());
  expect_tables_identical(*solved, *mapped);
  const SolveCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.store_hits, 1u);
  EXPECT_EQ(stats.spills, 1u);

  // The mapped table is now RAM-resident: hit again.
  EXPECT_EQ(cache.get_or_solve(req).get(), mapped.get());
}

TEST(SolveCacheTiered, MissesEqualSolvesPlusStoreHits) {
  nowsched::testing::TempDir dir("tier");
  auto store = std::make_shared<MappedTableStore>(
      MappedTableStore::Options{dir.str()});
  SolveCache cache({2, 16u << 20, store});
  for (int k = 0; k < 3; ++k) cache.get_or_solve({1, 64 + 16 * k, Params{16}});
  cache.clear();
  for (int k = 0; k < 5; ++k) cache.get_or_solve({1, 64 + 16 * k, Params{16}});

  const SolveCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 8u);       // 3 cold + 5 after clear
  EXPECT_EQ(stats.store_hits, 3u);   // the 3 spilled tables came back mapped
  EXPECT_EQ(stats.spills, 5u);       // every fresh solve spilled exactly once
  EXPECT_EQ(stats.misses, (stats.misses - stats.store_hits) + stats.store_hits);
  EXPECT_EQ(store->stats().entries, 5u);
}

TEST(SolveCacheTiered, WarmStartAcrossCaches) {
  // Process A bakes through its cache; process B (modeled by a second cache
  // over the same directory) starts cold in RAM but warm on disk — no
  // solves, bit-identical tables. This is the multi-process warm-start
  // story in-process; the fork test in solver_table_store_test.cpp does it
  // across a real process boundary.
  nowsched::testing::TempDir dir("warm");
  const SolveRequest req{3, 300, Params{16}};

  std::shared_ptr<const ValueTable> solved;
  {
    auto store = std::make_shared<MappedTableStore>(
        MappedTableStore::Options{dir.str()});
    SolveCache first({2, 16u << 20, store});
    solved = first.get_or_solve(req);
    EXPECT_EQ(first.stats().spills, 1u);
  }

  auto store = std::make_shared<MappedTableStore>(
      MappedTableStore::Options{dir.str(), /*read_only=*/true});
  SolveCache second({2, 16u << 20, store});
  const auto warm = second.get_or_solve(req);
  expect_tables_identical(*solved, *warm);
  EXPECT_EQ(second.stats().store_hits, 1u);
  EXPECT_EQ(second.stats().spills, 0u);
}

TEST(SolveCacheTiered, ClearDropsRamButNeverTheSharedStore) {
  nowsched::testing::TempDir dir("tier");
  auto store = std::make_shared<MappedTableStore>(
      MappedTableStore::Options{dir.str()});
  SolveCache cache({2, 16u << 20, store});
  cache.get_or_solve({1, 64, Params{16}});
  cache.get_or_solve({1, 96, Params{16}});
  ASSERT_EQ(store->stats().entries, 2u);
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(store->stats().entries, 2u)
      << "clear() must not touch shared persistent state";
}

TEST(SolveCacheTiered, EvictedTableComesBackFromTheStoreNotASolve) {
  nowsched::testing::TempDir dir("tier");
  auto store = std::make_shared<MappedTableStore>(
      MappedTableStore::Options{dir.str()});
  // Budget below one table: every arrival evicts the previous resident.
  SolveCache cache({1, 0, store});
  cache.set_max_bytes(0);
  const SolveRequest a{1, 64, Params{16}};
  const SolveRequest b{1, 96, Params{16}};
  cache.get_or_solve(a);
  cache.get_or_solve(b);  // evicts a (zero budget keeps only newest)
  cache.get_or_solve(a);  // must return via the store, not a re-solve
  const SolveCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.store_hits, 1u);
  EXPECT_EQ(stats.spills, 2u);  // a and b each solved (and spilled) once
}

TEST(SolveCacheTiered, ConcurrentColdStartOverASharedStoreStaysExactlyOnce) {
  // Many caches (tenants) over ONE store, all cold, racing the same key:
  // each cache misses exactly once (solve or store-hit), the store ends up
  // with exactly one entry, and every table is bit-identical. TSan-checked
  // in CI.
  nowsched::testing::TempDir dir("fleet");
  auto store = std::make_shared<MappedTableStore>(
      MappedTableStore::Options{dir.str()});
  constexpr int kCaches = 4;
  std::vector<std::unique_ptr<SolveCache>> caches;
  for (int i = 0; i < kCaches; ++i) {
    caches.push_back(std::make_unique<SolveCache>(
        SolveCache::Options{2, 16u << 20, store}));
  }
  const auto reference = solve_shared({2, 128, Params{16}});

  std::vector<std::thread> threads;
  std::atomic<bool> mismatch{false};
  for (int i = 0; i < kCaches; ++i) {
    threads.emplace_back([&, i] {
      for (int iter = 0; iter < 8; ++iter) {
        const auto table = caches[static_cast<std::size_t>(i)]->get_or_solve(
            {2, 128, Params{16}});
        if (table->value(2, 128) != reference->value(2, 128) ||
            table->bytes() != reference->bytes()) {
          mismatch.store(true);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(mismatch.load());
  for (const auto& cache : caches) {
    EXPECT_EQ(cache->stats().misses, 1u);  // exactly-once per cache
  }
  EXPECT_EQ(store->stats().entries, 1u);   // build-once across the fleet
}

}  // namespace
}  // namespace nowsched::solver
