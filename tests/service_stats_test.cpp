// service stats helpers — pure-function tests on FIXED samples (the deflake
// anchor: percentile math is pinned here on explicit vectors, so the service
// and stress tests never need to assert a timing value).
#include "service/service_stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace nowsched::service {
namespace {

TEST(SummarizeLatency, FixedHundredSamplesInterpolatedQuantiles) {
  std::vector<double> ms;
  for (int i = 1; i <= 100; ++i) ms.push_back(static_cast<double>(i));
  const LatencySummary s = summarize_latency(ms);
  EXPECT_EQ(s.count, 100u);
  // util::Summary interpolates at q*(n-1): p50 -> 50.5, p90 -> 90.1,
  // p99 -> 99.01.
  EXPECT_DOUBLE_EQ(s.p50_ms, 50.5);
  EXPECT_DOUBLE_EQ(s.p90_ms, 90.1);
  EXPECT_DOUBLE_EQ(s.p99_ms, 99.01);
  EXPECT_DOUBLE_EQ(s.max_ms, 100.0);
}

TEST(SummarizeLatency, OrderInsensitiveAndEdgeCases) {
  std::vector<double> ms = {5.0, 1.0, 3.0, 2.0, 4.0};
  const LatencySummary sorted_in = summarize_latency({1.0, 2.0, 3.0, 4.0, 5.0});
  const LatencySummary shuffled_in = summarize_latency(ms);
  EXPECT_DOUBLE_EQ(sorted_in.p50_ms, shuffled_in.p50_ms);
  EXPECT_DOUBLE_EQ(sorted_in.p99_ms, shuffled_in.p99_ms);

  const LatencySummary empty = summarize_latency({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.p50_ms, 0.0);
  EXPECT_DOUBLE_EQ(empty.max_ms, 0.0);

  const LatencySummary one = summarize_latency({7.25});
  EXPECT_EQ(one.count, 1u);
  EXPECT_DOUBLE_EQ(one.p50_ms, 7.25);
  EXPECT_DOUBLE_EQ(one.p99_ms, 7.25);
  EXPECT_DOUBLE_EQ(one.max_ms, 7.25);
}

TEST(SummarizeLatency, QuantilesAreOrdered) {
  const std::vector<double> ms = {12.0, 3.0, 44.0, 0.5, 19.0, 19.0, 7.5};
  const LatencySummary s = summarize_latency(ms);
  EXPECT_LE(s.p50_ms, s.p90_ms);
  EXPECT_LE(s.p90_ms, s.p99_ms);
  EXPECT_LE(s.p99_ms, s.max_ms);
  EXPECT_DOUBLE_EQ(s.max_ms, 44.0);
}

TEST(JainsFairness, KnownValues) {
  EXPECT_DOUBLE_EQ(jains_fairness({5.0, 5.0, 5.0, 5.0}), 1.0);
  EXPECT_DOUBLE_EQ(jains_fairness({8.0, 0.0, 0.0, 0.0}), 0.25);  // 1/n
  EXPECT_DOUBLE_EQ(jains_fairness({1.0, 2.0, 3.0}), 36.0 / 42.0);
  EXPECT_DOUBLE_EQ(jains_fairness({3.0}), 1.0);
  // Defined corners: nothing allocated is not unfair.
  EXPECT_DOUBLE_EQ(jains_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(jains_fairness({0.0, 0.0}), 1.0);
}

TEST(JainsFairness, ScaleInvariantAndBounded) {
  const std::vector<double> x = {1.0, 4.0, 2.0, 9.0};
  std::vector<double> scaled;
  for (double v : x) scaled.push_back(v * 1000.0);
  EXPECT_NEAR(jains_fairness(x), jains_fairness(scaled), 1e-12);
  EXPECT_GT(jains_fairness(x), 1.0 / 4.0);
  EXPECT_LT(jains_fairness(x), 1.0);
}

TEST(LatencyRing, FillsThenOverwritesOldest) {
  LatencyRing ring(3);
  for (double v : {1.0, 2.0, 3.0}) ring.add(v);
  EXPECT_EQ(ring.recorded(), 3u);
  std::vector<double> got = ring.samples();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<double>{1.0, 2.0, 3.0}));

  ring.add(4.0);  // displaces 1.0 (the oldest)
  ring.add(5.0);  // displaces 2.0
  EXPECT_EQ(ring.recorded(), 5u);
  got = ring.samples();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<double>{3.0, 4.0, 5.0}));
}

TEST(LatencyRing, CapacityClampsToOne) {
  LatencyRing ring(0);
  ring.add(1.0);
  ring.add(2.0);
  EXPECT_EQ(ring.recorded(), 2u);
  EXPECT_EQ(ring.samples(), std::vector<double>{2.0});
}

TEST(ServiceStats, TenantLookupAndRejectedTotal) {
  ServiceStats stats;
  TenantStats a;
  a.tenant = "alpha";
  a.rejected_tenant_full = 2;
  a.rejected_throttled = 1;
  a.rejected_shutdown = 4;
  TenantStats b;
  b.tenant = "beta";
  stats.tenants = {a, b};

  ASSERT_NE(stats.tenant("alpha"), nullptr);
  EXPECT_EQ(stats.tenant("alpha")->rejected_total(), 7u);
  ASSERT_NE(stats.tenant("beta"), nullptr);
  EXPECT_EQ(stats.tenant("beta")->rejected_total(), 0u);
  EXPECT_EQ(stats.tenant("gamma"), nullptr);
}

}  // namespace
}  // namespace nowsched::service
