// The fast crossover solver must agree bit-for-bit with the O(N²) oracle,
// serial or parallel.
#include <gtest/gtest.h>

#include "solver/fast_solver.h"
#include "solver/reference_solver.h"
#include "util/thread_pool.h"

namespace nowsched::solver {
namespace {

struct GridCase {
  int max_p;
  Ticks max_l;
  Ticks c;
};

class CrossCheck : public ::testing::TestWithParam<GridCase> {};

TEST_P(CrossCheck, FastMatchesReferenceExactly) {
  const auto [max_p, max_l, c] = GetParam();
  const auto ref = solve_reference(max_p, max_l, Params{c});
  const auto fast = solve_fast(max_p, max_l, Params{c});
  for (int p = 0; p <= max_p; ++p) {
    for (Ticks l = 0; l <= max_l; ++l) {
      ASSERT_EQ(fast.value(p, l), ref.value(p, l)) << "p=" << p << " l=" << l;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, CrossCheck,
                         ::testing::Values(GridCase{1, 400, 8}, GridCase{2, 400, 16},
                                           GridCase{3, 300, 4}, GridCase{4, 250, 2},
                                           GridCase{2, 600, 1}, GridCase{1, 1000, 64},
                                           GridCase{5, 200, 8}, GridCase{0, 100, 8},
                                           GridCase{3, 512, 100}));

TEST(CrossCheckParallel, ForcedWavefrontMatchesSerial) {
  // Force the wavefront path regardless of what plan_wavefront would decide
  // and compare against the serial fast solver (itself validated against the
  // oracle above).
  util::ThreadPool pool(4);
  const Params params{300};
  const Ticks max_l = 300 * 24;
  const auto serial = solve_fast(3, max_l, params, nullptr);
  const auto parallel =
      solve_fast(3, max_l, params, &pool, ParallelMode::kForceWavefront);
  for (int p = 0; p <= 3; ++p) {
    for (Ticks l = 0; l <= max_l; ++l) {
      ASSERT_EQ(parallel.value(p, l), serial.value(p, l)) << "p=" << p << " l=" << l;
    }
  }
}

TEST(CrossCheckParallel, ForcedWavefrontMatchesReferenceOracle) {
  // Force the wavefront path and compare against the O(N²) oracle directly,
  // not just the serial fast solver — this is where the parallel path meets
  // ground truth.
  util::ThreadPool pool(4);
  const Params params{256};
  const Ticks max_l = 256 * 9;  // 9 full blocks per level, plus pipeline slack
  const auto ref = solve_reference(3, max_l, params);
  const auto parallel =
      solve_fast(3, max_l, params, &pool, ParallelMode::kForceWavefront);
  for (int p = 0; p <= 3; ++p) {
    for (Ticks l = 0; l <= max_l; ++l) {
      ASSERT_EQ(parallel.value(p, l), ref.value(p, l)) << "p=" << p << " l=" << l;
    }
  }
}

TEST(CrossCheckParallel, ForcedWavefrontSmallCManyCellsMatchesReference) {
  // Small c makes narrow blocks and a tall, skinny DAG (many cells, little
  // work each) — the regime the auto mode would refuse; forcing it exercises
  // heavy inter-cell traffic on the dependency counters.
  util::ThreadPool pool(4);
  const Params params{8};
  const Ticks max_l = 500;  // 63 blocks x 2 levels
  const auto ref = solve_reference(2, max_l, params);
  const auto parallel =
      solve_fast(2, max_l, params, &pool, ParallelMode::kForceWavefront);
  for (int p = 0; p <= 2; ++p) {
    for (Ticks l = 0; l <= max_l; ++l) {
      ASSERT_EQ(parallel.value(p, l), ref.value(p, l)) << "p=" << p << " l=" << l;
    }
  }
}

TEST(CrossCheckParallel, ForcedWavefrontPartialFinalBlockMatchesReference) {
  // max_l one tick past a block boundary: the last block of every level is a
  // single lifespan, so the final cells are nearly empty.
  util::ThreadPool pool(2);
  const Params params{256};
  const Ticks max_l = 4 * 256 + 1;
  const auto ref = solve_reference(2, max_l, params);
  const auto parallel =
      solve_fast(2, max_l, params, &pool, ParallelMode::kForceWavefront);
  for (int p = 0; p <= 2; ++p) {
    for (Ticks l = 0; l <= max_l; ++l) {
      ASSERT_EQ(parallel.value(p, l), ref.value(p, l)) << "p=" << p << " l=" << l;
    }
  }
}

TEST(CrossCheckParallel, SingleThreadWavefrontIsDeterministicallySequential) {
  // ThreadPool(1): run_dag runs the cells inline in a fixed topological
  // order, so the forced wavefront must reproduce the sequential solve
  // bit-for-bit, twice in a row.
  util::ThreadPool pool(1);
  const Params params{32};
  const Ticks max_l = 32 * 20;
  const auto sequential =
      solve_fast(3, max_l, params, nullptr, ParallelMode::kForceSequential);
  for (int round = 0; round < 2; ++round) {
    const auto wavefront =
        solve_fast(3, max_l, params, &pool, ParallelMode::kForceWavefront);
    for (int p = 0; p <= 3; ++p) {
      for (Ticks l = 0; l <= max_l; ++l) {
        ASSERT_EQ(wavefront.value(p, l), sequential.value(p, l))
            << "round=" << round << " p=" << p << " l=" << l;
      }
    }
  }
}

TEST(CrossCheckParallel, AutoModeWithPoolMatchesReference) {
  // Whatever plan_wavefront decides on this machine, auto mode must be
  // exact. (On a 1-core host the plan declines and this runs sequentially —
  // still the right answer.)
  util::ThreadPool pool(4);
  const Params params{8};
  const auto with_pool = solve_fast(2, 500, params, &pool);
  const auto ref = solve_reference(2, 500, params);
  for (Ticks l = 0; l <= 500; ++l) {
    ASSERT_EQ(with_pool.value(2, l), ref.value(2, l));
  }
}

TEST(CrossCheckParallel, PlanWavefrontDeclinesDegenerateGrids) {
  util::ThreadPool pool(4);
  // Single level: DAG width 1, parallelism impossible.
  EXPECT_FALSE(plan_wavefront(1, 1 << 14, Params{256}, &pool).engage);
  // No pool.
  EXPECT_FALSE(plan_wavefront(3, 1 << 14, Params{256}, nullptr).engage);
  // Two blocks cannot fill a pipeline.
  EXPECT_FALSE(plan_wavefront(3, 512, Params{256}, &pool).engage);
  // Reasons are always set, and (once the plan got far enough to calibrate)
  // name the scan-step calibration source.
  EXPECT_FALSE(plan_wavefront(3, 1 << 14, Params{256}, nullptr).reason.empty());
  const auto planned = plan_wavefront(3, 1 << 14, Params{256}, &pool);
  EXPECT_NE(planned.reason.find("scan-step"), std::string::npos)
      << planned.reason;
  EXPECT_NE(planned.calibration.generation, 0u);
}

TEST(FastSolver, LargeGridSelfConsistency) {
  // On a grid too big for the oracle, check internal invariants instead:
  // monotone, 1-Lipschitz, level ordering, and spot equalities at
  // lifespans where the recurrence can be verified against level p−1.
  const Params params{16};
  const Ticks max_l = 1 << 16;
  const auto table = solve_fast(3, max_l, params);
  for (int p = 1; p <= 3; ++p) {
    for (Ticks l = 1; l <= max_l; ++l) {
      const Ticks v = table.value(p, l);
      ASSERT_GE(v, table.value(p, l - 1));
      ASSERT_LE(v - table.value(p, l - 1), 1);
      ASSERT_LE(v, table.value(p - 1, l));
    }
  }
  // Spot check the recurrence at a few lifespans via a full scan.
  for (Ticks l : {Ticks{1000}, Ticks{4096}, Ticks{30000}, max_l}) {
    for (int p : {1, 2, 3}) {
      Ticks best = 0;
      for (Ticks t = 1; t <= l; ++t) {
        const Ticks a = positive_sub(t, params.c) + table.value(p, l - t);
        const Ticks b = table.value(p - 1, l - t);
        best = std::max(best, std::min(a, b));
      }
      EXPECT_EQ(table.value(p, l), best) << "p=" << p << " l=" << l;
    }
  }
}

}  // namespace
}  // namespace nowsched::solver
