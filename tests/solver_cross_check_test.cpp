// The fast crossover solver must agree bit-for-bit with the O(N²) oracle,
// serial or parallel.
#include <gtest/gtest.h>

#include "solver/fast_solver.h"
#include "solver/reference_solver.h"
#include "util/thread_pool.h"

namespace nowsched::solver {
namespace {

struct GridCase {
  int max_p;
  Ticks max_l;
  Ticks c;
};

class CrossCheck : public ::testing::TestWithParam<GridCase> {};

TEST_P(CrossCheck, FastMatchesReferenceExactly) {
  const auto [max_p, max_l, c] = GetParam();
  const auto ref = solve_reference(max_p, max_l, Params{c});
  const auto fast = solve_fast(max_p, max_l, Params{c});
  for (int p = 0; p <= max_p; ++p) {
    for (Ticks l = 0; l <= max_l; ++l) {
      ASSERT_EQ(fast.value(p, l), ref.value(p, l)) << "p=" << p << " l=" << l;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, CrossCheck,
                         ::testing::Values(GridCase{1, 400, 8}, GridCase{2, 400, 16},
                                           GridCase{3, 300, 4}, GridCase{4, 250, 2},
                                           GridCase{2, 600, 1}, GridCase{1, 1000, 64},
                                           GridCase{5, 200, 8}, GridCase{0, 100, 8},
                                           GridCase{3, 512, 100}));

TEST(CrossCheckParallel, BlockParallelMatchesSerial) {
  // The parallel path engages when c >= 256; compare against the serial fast
  // solver (itself validated against the oracle above).
  util::ThreadPool pool(4);
  const Params params{300};
  const Ticks max_l = 300 * 24;
  const auto serial = solve_fast(3, max_l, params, nullptr);
  const auto parallel = solve_fast(3, max_l, params, &pool);
  for (int p = 0; p <= 3; ++p) {
    for (Ticks l = 0; l <= max_l; ++l) {
      ASSERT_EQ(parallel.value(p, l), serial.value(p, l)) << "p=" << p << " l=" << l;
    }
  }
}

TEST(CrossCheckParallel, ForcedBlockParallelPathMatchesReferenceOracle) {
  // Force the block-parallel branch (pool size > 1, c >= 256, max_l > 4c) and
  // compare against the O(N²) oracle directly, not just the serial fast
  // solver — this is the only place the parallel path meets ground truth.
  util::ThreadPool pool(4);
  const Params params{256};
  const Ticks max_l = 256 * 9;  // 9c: several parallel blocks plus a stub
  const auto ref = solve_reference(3, max_l, params);
  const auto parallel = solve_fast(3, max_l, params, &pool);
  for (int p = 0; p <= 3; ++p) {
    for (Ticks l = 0; l <= max_l; ++l) {
      ASSERT_EQ(parallel.value(p, l), ref.value(p, l)) << "p=" << p << " l=" << l;
    }
  }
}

TEST(CrossCheckParallel, BoundaryCJustAtThresholdMatchesReference) {
  // c exactly at the 256 threshold with max_l exactly one tick past 4c — the
  // smallest grid that still takes the parallel branch.
  util::ThreadPool pool(2);
  const Params params{256};
  const Ticks max_l = 4 * 256 + 1;
  const auto ref = solve_reference(2, max_l, params);
  const auto parallel = solve_fast(2, max_l, params, &pool);
  for (int p = 0; p <= 2; ++p) {
    for (Ticks l = 0; l <= max_l; ++l) {
      ASSERT_EQ(parallel.value(p, l), ref.value(p, l)) << "p=" << p << " l=" << l;
    }
  }
}

TEST(CrossCheckParallel, SmallCFallsBackToSerialPathCorrectly) {
  util::ThreadPool pool(4);
  const Params params{8};
  const auto with_pool = solve_fast(2, 500, params, &pool);
  const auto ref = solve_reference(2, 500, params);
  for (Ticks l = 0; l <= 500; ++l) {
    ASSERT_EQ(with_pool.value(2, l), ref.value(2, l));
  }
}

TEST(FastSolver, LargeGridSelfConsistency) {
  // On a grid too big for the oracle, check internal invariants instead:
  // monotone, 1-Lipschitz, level ordering, and spot equalities at
  // lifespans where the recurrence can be verified against level p−1.
  const Params params{16};
  const Ticks max_l = 1 << 16;
  const auto table = solve_fast(3, max_l, params);
  for (int p = 1; p <= 3; ++p) {
    for (Ticks l = 1; l <= max_l; ++l) {
      const Ticks v = table.value(p, l);
      ASSERT_GE(v, table.value(p, l - 1));
      ASSERT_LE(v - table.value(p, l - 1), 1);
      ASSERT_LE(v, table.value(p - 1, l));
    }
  }
  // Spot check the recurrence at a few lifespans via a full scan.
  for (Ticks l : {Ticks{1000}, Ticks{4096}, Ticks{30000}, max_l}) {
    for (int p : {1, 2, 3}) {
      Ticks best = 0;
      for (Ticks t = 1; t <= l; ++t) {
        const Ticks a = positive_sub(t, params.c) + table.value(p, l - t);
        const Ticks b = table.value(p - 1, l - t);
        best = std::max(best, std::min(a, b));
      }
      EXPECT_EQ(table.value(p, l), best) << "p=" << p << " l=" << l;
    }
  }
}

}  // namespace
}  // namespace nowsched::solver
