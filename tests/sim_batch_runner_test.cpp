// sim::BatchRunner — spec validation, per-scenario fidelity against
// run_session, cache wiring, and aggregation (run under TSan in CI).
#include "sim/batch_runner.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "adversary/stochastic.h"
#include "core/equalized.h"
#include "sim/session.h"
#include "solver/extract.h"
#include "solver/solve_cache.h"
#include "util/thread_pool.h"

namespace nowsched::sim {
namespace {

ScenarioSpec basic_spec(std::uint64_t seed) {
  ScenarioSpec spec;
  spec.policy = PolicyKind::kEqualized;
  spec.owner = OwnerKind::kPoisson;
  spec.owner_a = 500.0;
  spec.params = Params{16};
  spec.lifespan = 2000;
  spec.max_interrupts = 2;
  spec.seed = seed;
  return spec;
}

TEST(BatchRunner, EmptyBatchIsEmptyResult) {
  BatchRunner runner;
  const BatchResult result = runner.run({});
  EXPECT_EQ(result.scenarios, 0u);
  EXPECT_TRUE(result.per_scenario.empty());
  EXPECT_EQ(result.aggregate.banked_work, 0);
}

TEST(BatchRunner, MatchesStandaloneRunSessionPerScenario) {
  // A batch entry must be exactly run_session with the same policy and the
  // scenario_stream_seed-derived adversary — slot by slot.
  std::vector<ScenarioSpec> specs = {basic_spec(1), basic_spec(2), basic_spec(99)};
  BatchRunner runner;
  const BatchResult result = runner.run(specs);
  ASSERT_EQ(result.per_scenario.size(), 3u);

  for (std::size_t i = 0; i < specs.size(); ++i) {
    EqualizedGuidelinePolicy policy;
    adversary::PoissonAdversary owner(specs[i].owner_a,
                                      scenario_stream_seed(specs[i]));
    const SessionMetrics expected =
        run_session(policy, owner,
                    Opportunity{specs[i].lifespan, specs[i].max_interrupts},
                    specs[i].params);
    EXPECT_EQ(result.per_scenario[i].banked_work, expected.banked_work) << i;
    EXPECT_EQ(result.per_scenario[i].interrupts, expected.interrupts) << i;
    EXPECT_EQ(result.per_scenario[i].episodes, expected.episodes) << i;
  }

  // Aggregate is the index-order merge of the slots.
  SessionMetrics merged;
  for (const auto& m : result.per_scenario) merged.merge(m);
  EXPECT_EQ(result.aggregate.banked_work, merged.banked_work);
  EXPECT_EQ(result.aggregate.episodes, merged.episodes);
}

TEST(BatchRunner, DistinctSeedsGetDistinctAdversaryStreams) {
  std::vector<ScenarioSpec> specs = {basic_spec(1), basic_spec(2)};
  const BatchResult result = BatchRunner().run(specs);
  // Streams differ, so (with interrupts likely at U=2000, gap=500) the two
  // sessions should not be tick-identical. Compare full metric tuples.
  EXPECT_NE(result.per_scenario[0].to_string(), result.per_scenario[1].to_string());
}

TEST(BatchRunner, StreamSeedMixesContractNotJustSeed) {
  ScenarioSpec a = basic_spec(7);
  ScenarioSpec b = basic_spec(7);
  b.lifespan = 3000;
  EXPECT_NE(scenario_stream_seed(a), scenario_stream_seed(b));
}

TEST(BatchRunner, AllPolicyAndOwnerKindsRun) {
  std::vector<ScenarioSpec> specs;
  for (PolicyKind policy : {PolicyKind::kEqualized, PolicyKind::kAdaptivePaper,
                            PolicyKind::kNonAdaptiveRestart, PolicyKind::kDpOptimal}) {
    for (OwnerKind owner :
         {OwnerKind::kPoisson, OwnerKind::kPareto, OwnerKind::kUniform}) {
      ScenarioSpec spec = basic_spec(specs.size());
      spec.policy = policy;
      spec.owner = owner;
      if (owner == OwnerKind::kPareto) {
        spec.owner_a = 200.0;
        spec.owner_b = 1.5;
      } else if (owner == OwnerKind::kUniform) {
        spec.owner_a = 0.5;
      }
      specs.push_back(spec);
    }
  }
  const BatchResult result = BatchRunner().run(specs);
  ASSERT_EQ(result.per_scenario.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    // Every session consumed its whole lifespan and banked something
    // (U = 2000 >> c with at most 2 interrupts cannot strand everything).
    EXPECT_EQ(result.per_scenario[i].lifespan_used, 2000) << i;
    EXPECT_GT(result.per_scenario[i].banked_work, 0) << i;
  }
}

TEST(BatchRunner, DpOptimalScenariosDedupeThroughTheCache) {
  std::vector<ScenarioSpec> specs;
  for (int i = 0; i < 12; ++i) {
    ScenarioSpec spec = basic_spec(100 + i);
    spec.policy = PolicyKind::kDpOptimal;
    spec.lifespan = 512 + 128 * (i % 2);  // two canonical keys
    specs.push_back(spec);
  }
  BatchRunner runner;
  const BatchResult result = runner.run(specs);
  EXPECT_EQ(result.cache.misses, 2u);
  EXPECT_EQ(result.cache.hits, 10u);
  EXPECT_DOUBLE_EQ(result.cache.hit_rate(), 10.0 / 12.0);

  // The cache persists across run() calls on one runner: re-running the
  // same batch is all hits.
  const BatchResult again = runner.run(specs);
  EXPECT_EQ(again.cache.misses, 2u);
  EXPECT_EQ(again.cache.hits, 22u);
  EXPECT_EQ(again.aggregate.banked_work, result.aggregate.banked_work);
}

TEST(BatchRunner, CacheDisabledStillRunsAndCountsNothing) {
  std::vector<ScenarioSpec> specs;
  for (int i = 0; i < 4; ++i) {
    ScenarioSpec spec = basic_spec(7 + i);
    spec.policy = PolicyKind::kDpOptimal;
    spec.lifespan = 512;
    specs.push_back(spec);
  }
  BatchOptions options;
  options.cache_enabled = false;
  const BatchResult result = BatchRunner(options).run(specs);
  EXPECT_EQ(result.cache.hits, 0u);
  EXPECT_EQ(result.cache.misses, 0u);
  EXPECT_GT(result.aggregate.banked_work, 0);
}

TEST(BatchRunner, InvalidSpecThrowsNamingTheIndexBeforeAnySessionRuns) {
  std::vector<ScenarioSpec> specs = {basic_spec(1), basic_spec(2)};
  specs[1].params = Params{0};
  try {
    BatchRunner().run(specs);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("#1"), std::string::npos) << e.what();
  }

  ScenarioSpec bad_owner = basic_spec(3);
  bad_owner.owner = OwnerKind::kUniform;
  bad_owner.owner_a = 1.5;  // probability > 1
  EXPECT_THROW(BatchRunner().run({bad_owner}), std::invalid_argument);

  ScenarioSpec bad_pareto = basic_spec(4);
  bad_pareto.owner = OwnerKind::kPareto;
  bad_pareto.owner_b = 0.0;  // shape must be > 0
  EXPECT_THROW(BatchRunner().run({bad_pareto}), std::invalid_argument);
}

TEST(BatchRunner, RunsOnAPoolWithTaskErrorPropagation) {
  // Pooled execution returns the same data as serial; exceptions inside
  // run_one (thrown by a policy on an oversized lifespan) surface.
  std::vector<ScenarioSpec> specs;
  for (int i = 0; i < 16; ++i) specs.push_back(basic_spec(i));

  const BatchResult serial = BatchRunner().run(specs);

  util::ThreadPool pool(4);
  BatchOptions options;
  options.pool = &pool;
  const BatchResult pooled = BatchRunner(options).run(specs);
  ASSERT_EQ(pooled.per_scenario.size(), serial.per_scenario.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(pooled.per_scenario[i].to_string(), serial.per_scenario[i].to_string())
        << i;
  }
}

TEST(BatchRunner, ToStringNamesAreStable) {
  EXPECT_STREQ(to_string(PolicyKind::kDpOptimal), "dp-optimal");
  EXPECT_STREQ(to_string(PolicyKind::kEqualized), "equalized");
  EXPECT_STREQ(to_string(OwnerKind::kPareto), "pareto");
}

}  // namespace
}  // namespace nowsched::sim
