#include "core/types.h"

#include <gtest/gtest.h>

namespace nowsched {
namespace {

TEST(PositiveSub, BasicCases) {
  EXPECT_EQ(positive_sub(5, 3), 2);
  EXPECT_EQ(positive_sub(3, 5), 0);
  EXPECT_EQ(positive_sub(4, 4), 0);
  EXPECT_EQ(positive_sub(0, 0), 0);
  EXPECT_EQ(positive_sub(7, 0), 7);
}

TEST(PositiveSub, IsConstexpr) {
  static_assert(positive_sub(10, 4) == 6);
  static_assert(positive_sub(4, 10) == 0);
  SUCCEED();
}

// ⊖ properties the paper's accounting relies on, exercised over a grid.
class PositiveSubProperty : public ::testing::TestWithParam<std::pair<Ticks, Ticks>> {};

TEST_P(PositiveSubProperty, NeverNegative) {
  const auto [x, y] = GetParam();
  EXPECT_GE(positive_sub(x, y), 0);
}

TEST_P(PositiveSubProperty, BoundedByMinuend) {
  const auto [x, y] = GetParam();
  EXPECT_LE(positive_sub(x, y), x >= 0 ? x : 0);
}

TEST_P(PositiveSubProperty, AgreesWithPlainSubtractionWhenLarge) {
  const auto [x, y] = GetParam();
  if (x >= y) {
    EXPECT_EQ(positive_sub(x, y), x - y);
  }
}

TEST_P(PositiveSubProperty, MonotoneInMinuend) {
  const auto [x, y] = GetParam();
  EXPECT_LE(positive_sub(x, y), positive_sub(x + 1, y));
  EXPECT_LE(positive_sub(x + 1, y) - positive_sub(x, y), 1);
}

TEST_P(PositiveSubProperty, AntitoneInSubtrahend) {
  const auto [x, y] = GetParam();
  EXPECT_GE(positive_sub(x, y), positive_sub(x, y + 1));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PositiveSubProperty,
    ::testing::Values(std::pair<Ticks, Ticks>{0, 0}, std::pair<Ticks, Ticks>{0, 5},
                      std::pair<Ticks, Ticks>{5, 0}, std::pair<Ticks, Ticks>{5, 5},
                      std::pair<Ticks, Ticks>{100, 16}, std::pair<Ticks, Ticks>{16, 100},
                      std::pair<Ticks, Ticks>{1'000'000, 999'999},
                      std::pair<Ticks, Ticks>{999'999, 1'000'000}));

TEST(Params, ValidityAndRequire) {
  EXPECT_TRUE(Params{1}.valid());
  EXPECT_TRUE(Params{16}.valid());
  EXPECT_FALSE(Params{0}.valid());
  EXPECT_FALSE(Params{-3}.valid());
  EXPECT_NO_THROW(require_valid(Params{4}));
  EXPECT_THROW(require_valid(Params{0}), std::invalid_argument);
}

TEST(Params, DefaultIsValid) {
  Params p;
  EXPECT_TRUE(p.valid());
  EXPECT_EQ(p.c, 16);
}

TEST(Opportunity, ValidityAndRequire) {
  EXPECT_TRUE((Opportunity{100, 2}.valid()));
  EXPECT_TRUE((Opportunity{0, 0}.valid()));
  EXPECT_FALSE((Opportunity{-1, 0}.valid()));
  EXPECT_FALSE((Opportunity{10, -1}.valid()));
  EXPECT_THROW(require_valid(Opportunity{10, -1}), std::invalid_argument);
  EXPECT_NO_THROW(require_valid(Opportunity{10, 1}));
}

}  // namespace
}  // namespace nowsched
