#include "core/closed_form.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.h"

namespace nowsched {
namespace {

TEST(OptP1Count, MatchesEquationFiveOne) {
  const Params params{16};
  // U/c = 512: sqrt(2*512 - 1.75) - 0.5 = sqrt(1022.25) - 0.5 ≈ 31.47 → ⌈⌉ = 32.
  EXPECT_EQ(opt_p1_period_count_raw(16 * 512, params), 32u);
}

TEST(OptP1Count, TinyLifespanGivesOnePeriod) {
  const Params params{100};
  EXPECT_EQ(opt_p1_period_count_raw(50, params), 1u);
}

struct P1Case {
  Ticks u;
  Ticks c;
};

class OptP1Property : public ::testing::TestWithParam<P1Case> {};

TEST_P(OptP1Property, AlphaLandsInHalfOpenUnitInterval) {
  const auto [u, c] = GetParam();
  const auto opt = optimal_p1_schedule(u, Params{c});
  if (opt.m < 2) return;  // degenerate short lifespans carry no α
  EXPECT_GT(opt.alpha, 0.0);
  EXPECT_LE(opt.alpha, 1.0);
}

TEST_P(OptP1Property, ScheduleSpansLifespan) {
  const auto [u, c] = GetParam();
  const auto opt = optimal_p1_schedule(u, Params{c});
  EXPECT_EQ(opt.schedule.total(), u);
}

TEST_P(OptP1Property, TwinTailAndUnitStepsStructure) {
  const auto [u, c] = GetParam();
  const auto opt = optimal_p1_schedule(u, Params{c});
  if (opt.m < 3) return;
  const auto& s = opt.schedule;
  const std::size_t m = s.size();
  // t_m == t_{m-1} == (1+α)c up to rounding.
  EXPECT_LE(std::llabs(s.period(m - 1) - s.period(m - 2)), 1);
  // Early periods descend by exactly c (up to ±1 rounding).
  for (std::size_t k = 0; k + 3 < m; ++k) {
    const Ticks diff = s.period(k) - s.period(k + 1);
    EXPECT_GE(diff, c - 1) << "k=" << k;
    EXPECT_LE(diff, c + 1) << "k=" << k;
  }
}

TEST_P(OptP1Property, GuaranteedWorkMatchesTableTwoApproximation) {
  const auto [u, c] = GetParam();
  if (u < 16 * c) return;  // approximation regime
  const auto opt = optimal_p1_schedule(u, Params{c});
  const Ticks exact = guaranteed_work_p1(opt.schedule, u, Params{c});
  const double approx =
      bounds::optimal_p1_work(static_cast<double>(u), static_cast<double>(c));
  // Table 2 is accurate to O(U^{1/4} + c).
  const double slack =
      2.0 * std::pow(static_cast<double>(u), 0.25) + 2.0 * static_cast<double>(c);
  EXPECT_NEAR(static_cast<double>(exact), approx, slack);
}

TEST_P(OptP1Property, EqualizedImpacts) {
  // Thm 4.3 equalization: for the optimal schedule, every adversary option
  // (kill period k, then run the residual as one long period) should cost us
  // nearly the same — the minimum over options is within ~2c of every early
  // option's value.
  const auto [u, c] = GetParam();
  if (u < 32 * c) return;
  const auto opt = optimal_p1_schedule(u, Params{c});
  const auto& s = opt.schedule;
  const Params params{c};
  const Ticks value = guaranteed_work_p1(s, u, params);
  for (std::size_t k = 0; k + 2 < s.size(); ++k) {
    const Ticks option = s.banked_work(k, params) +
                         positive_sub(positive_sub(u, s.end(k)), c);
    EXPECT_GE(option, value);
    EXPECT_LE(option - value, 2 * c + 2) << "option k=" << k << " unbalanced";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, OptP1Property,
                         ::testing::Values(P1Case{16 * 64, 16}, P1Case{16 * 256, 16},
                                           P1Case{16 * 1024, 16}, P1Case{16 * 4096, 16},
                                           P1Case{64 * 333, 64}, P1Case{1000, 10},
                                           P1Case{12345, 17}, P1Case{100, 16},
                                           P1Case{40, 16}));

TEST(GuaranteedWorkP1, KnownTinyInstanceByHand) {
  // U=30, c=10, schedule {15, 15}: no-interrupt work = 10;
  // kill period 0 -> residual 15 run long: (15-10)=5; kill period 1 -> 5 + 0.
  const Params params{10};
  EpisodeSchedule s({15, 15});
  EXPECT_EQ(guaranteed_work_p1(s, 30, params), 5);
}

TEST(GuaranteedWorkP1, SinglePeriodIsWorthless) {
  // One period: the adversary kills it at the last instant; residual 0.
  const Params params{10};
  EpisodeSchedule s({100});
  EXPECT_EQ(guaranteed_work_p1(s, 100, params), 0);
}

TEST(GuaranteedWorkP1, RequiresSpanningSchedule) {
  const Params params{10};
  EpisodeSchedule s({50});
  EXPECT_THROW(guaranteed_work_p1(s, 100, params), std::invalid_argument);
}

TEST(GuaranteedWorkP1, BeatsEqualSplitBaseline) {
  // The closed-form schedule should (weakly) beat naive equal splits of the
  // same lifespan for nearly all m.
  const Params params{16};
  const Ticks u = 16 * 1024;
  const auto opt = optimal_p1_schedule(u, params);
  const Ticks opt_work = guaranteed_work_p1(opt.schedule, u, params);
  for (std::size_t m : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    const auto equal = EpisodeSchedule::equal_split(u, m);
    EXPECT_GE(opt_work + 1, guaranteed_work_p1(equal, u, params)) << "m=" << m;
  }
}

}  // namespace
}  // namespace nowsched
