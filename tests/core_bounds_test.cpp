#include "core/bounds.h"

#include <gtest/gtest.h>

#include <cmath>

#include "solver/fast_solver.h"

namespace nowsched::bounds {
namespace {

TEST(NonAdaptiveFormula, CorrectedAtKnownPoint) {
  // U=1600, p=1, c=16: U − 2√(pcU) + pc = 1600 − 2·160 + 16.
  EXPECT_NEAR(nonadaptive_work(1600.0, 1, 16.0), 1296.0, 1e-9);
}

TEST(NonAdaptiveFormula, OcrReadingIsAlwaysMoreOptimistic) {
  for (double u : {100.0, 1000.0, 1e6}) {
    for (int p : {1, 2, 5}) {
      EXPECT_GT(nonadaptive_work_ocr(u, p, 16.0), nonadaptive_work(u, p, 16.0));
    }
  }
}

TEST(AdaptiveCoefficient, PaperValues) {
  EXPECT_NEAR(adaptive_deficit_coefficient(1), std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(adaptive_deficit_coefficient(2), 1.5 * std::sqrt(2.0), 1e-12);
  // Bounded above by 2√2 for all p.
  for (int p = 1; p < 20; ++p) {
    EXPECT_LT(adaptive_deficit_coefficient(p), 2.0 * std::sqrt(2.0));
  }
}

TEST(OptimalCoefficient, RecurrenceValues) {
  EXPECT_DOUBLE_EQ(optimal_deficit_coefficient(0), 0.0);
  EXPECT_NEAR(optimal_deficit_coefficient(1), 1.0, 1e-12);
  EXPECT_NEAR(optimal_deficit_coefficient(2), (1.0 + std::sqrt(5.0)) / 2.0, 1e-12);
  EXPECT_NEAR(optimal_deficit_coefficient(3), 2.09529, 1e-4);
  EXPECT_NEAR(optimal_deficit_coefficient(4), 2.49594, 1e-4);
}

TEST(OptimalCoefficient, SatisfiesFixedPointEquation) {
  // a_p² − a_{p−1}·a_p − 1 = 0.
  for (int p = 1; p <= 10; ++p) {
    const double a = optimal_deficit_coefficient(p);
    const double prev = optimal_deficit_coefficient(p - 1);
    EXPECT_NEAR(a * a - prev * a - 1.0, 0.0, 1e-9) << "p=" << p;
  }
}

TEST(OptimalCoefficient, GrowsLikeSqrtTwoP) {
  // a_p ~ √(2p): check the ratio stabilizes near 1.
  const double a64 = optimal_deficit_coefficient(64);
  EXPECT_NEAR(a64 / std::sqrt(2.0 * 64.0), 1.0, 0.05);
}

TEST(OptimalCoefficient, ExceedsPrintedCoefficientForPAtLeastTwo) {
  // The reproduction's headline discrepancy: the printed Thm 5.1 constant
  // (2 − 2^{1−p}) understates the exact optimal deficit for p >= 2.
  EXPECT_NEAR(optimal_deficit_coefficient(1), 2.0 - 1.0, 1e-9);  // agree at p=1
  for (int p = 2; p <= 8; ++p) {
    EXPECT_GT(optimal_deficit_coefficient(p),
              2.0 - std::pow(2.0, 1.0 - static_cast<double>(p)))
        << "p=" << p;
  }
}

TEST(OptimalCoefficient, MatchesExactDpMeasurement) {
  // Ground truth from the exact solver at U/c = 16384: the measured deficit
  // coefficient must match the recurrence to ~1.5% (finite-U correction).
  const Params params{16};
  const Ticks u = 16384 * 16;
  const auto table = nowsched::solver::solve_fast(3, u, params);
  for (int p = 1; p <= 3; ++p) {
    const double measured =
        static_cast<double>(u - table.value(p, u)) /
        std::sqrt(2.0 * 16.0 * static_cast<double>(u));
    EXPECT_NEAR(measured, optimal_deficit_coefficient(p),
                0.015 * optimal_deficit_coefficient(p))
        << "p=" << p;
  }
}

TEST(ZeroWorkThreshold, PropFourOneC) {
  EXPECT_EQ(zero_work_threshold(0, 16), 16);
  EXPECT_EQ(zero_work_threshold(3, 16), 64);
  EXPECT_EQ(zero_work_threshold(7, 5), 40);
}

TEST(OptimalP1, FormulaConsistency) {
  // W(1)[U] approx and m(1)[U] approx agree with Table 2's structure:
  // at U = c·2k², m ≈ 2k and W ≈ U − 2kc.
  const double c = 16.0;
  const double u = c * 2.0 * 15.0 * 15.0;  // k = 15
  EXPECT_NEAR(optimal_p1_period_count(u, c), 30.0, 1.0);
  EXPECT_NEAR(optimal_p1_work(u, c), u - 30.0 * c - c / 2.0, 1e-9);
}

}  // namespace
}  // namespace nowsched::bounds
