#include "solver/policy_eval.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/baselines.h"
#include "core/closed_form.h"
#include "core/guidelines.h"
#include "solver/extract.h"
#include "solver/reference_solver.h"
#include "util/thread_pool.h"

namespace nowsched::solver {
namespace {

constexpr Ticks kC = 8;
constexpr Params kParams{kC};

TEST(PolicyEval, SingleBlockGuaranteesZeroUnderAnyInterrupt) {
  SingleBlockPolicy policy;
  for (int p : {1, 2, 3}) {
    EXPECT_EQ(evaluate_policy(policy, 1000, p, kParams), 0) << "p=" << p;
  }
}

TEST(PolicyEval, SingleBlockOptimalForZeroInterrupts) {
  SingleBlockPolicy policy;
  EXPECT_EQ(evaluate_policy(policy, 1000, 0, kParams), 1000 - kC);
}

TEST(PolicyEval, MatchesClosedFormP1Evaluator) {
  // For any policy, the p=1 evaluator must agree with the closed-form
  // one-episode game: first episode per policy, then the p=0 continuation
  // which (for these policies) is NOT necessarily one long period — so run
  // the check with SingleBlockPolicy continuation semantics via a policy
  // whose p=0 episode is a single period.
  AdaptiveGuidelinePolicy policy;  // p=0 episode is the single period U
  for (Ticks u : {Ticks{100}, Ticks{500}, Ticks{1000}}) {
    const auto episode = policy.episode(u, 1, kParams);
    const Ticks direct = guaranteed_work_p1(episode, u, kParams);
    EXPECT_EQ(evaluate_policy(policy, u, 1, kParams), direct) << "u=" << u;
  }
}

TEST(PolicyEval, OptimalPolicyReproducesValueTable) {
  // Feeding the DP-optimal policy back through the independent policy
  // evaluator must reproduce W(p)[L] exactly — a strong end-to-end check
  // that solver, extraction, and evaluation share one game semantics.
  const int max_p = 2;
  const Ticks max_l = 260;
  auto table = std::make_shared<ValueTable>(solve_reference(max_p, max_l, kParams));
  OptimalPolicy policy(table);
  for (int p = 0; p <= max_p; ++p) {
    const auto grid = evaluate_policy_grid(policy, max_l, p, kParams);
    for (Ticks l = 0; l <= max_l; ++l) {
      ASSERT_EQ(grid[static_cast<std::size_t>(l)], table->value(p, l))
          << "p=" << p << " l=" << l;
    }
  }
}

TEST(PolicyEval, NoPolicyBeatsTheOptimum) {
  const int max_p = 2;
  const Ticks max_l = 300;
  const auto table = solve_reference(max_p, max_l, kParams);
  const AdaptiveGuidelinePolicy adaptive;
  const NonAdaptiveGuidelinePolicy nonadaptive;
  const FixedChunkPolicy chunks(3.0);
  const GeometricPolicy geometric(2.0, 2.0);
  for (const SchedulingPolicy* policy :
       {static_cast<const SchedulingPolicy*>(&adaptive),
        static_cast<const SchedulingPolicy*>(&nonadaptive),
        static_cast<const SchedulingPolicy*>(&chunks),
        static_cast<const SchedulingPolicy*>(&geometric)}) {
    for (int p = 0; p <= max_p; ++p) {
      const auto grid = evaluate_policy_grid(*policy, max_l, p, kParams);
      for (Ticks l = 0; l <= max_l; ++l) {
        ASSERT_LE(grid[static_cast<std::size_t>(l)], table.value(p, l))
            << policy->name() << " p=" << p << " l=" << l;
      }
    }
  }
}

TEST(PolicyEval, ParallelMatchesSerial) {
  util::ThreadPool pool(4);
  const AdaptiveGuidelinePolicy policy;
  const auto serial = evaluate_policy_grid(policy, 800, 2, kParams, nullptr);
  const auto parallel = evaluate_policy_grid(policy, 800, 2, kParams, &pool);
  EXPECT_EQ(serial, parallel);
}

TEST(PolicyEval, GridIsMonotoneForGuideline) {
  // Guaranteed work of the adaptive guideline should be (weakly) monotone in
  // lifespan — more borrowed time never hurts under this policy family.
  const AdaptiveGuidelinePolicy policy;
  const auto grid = evaluate_policy_grid(policy, 600, 2, kParams);
  int drops = 0;
  for (std::size_t l = 1; l < grid.size(); ++l) {
    if (grid[l] < grid[l - 1]) ++drops;
  }
  // Rounding in the constructive layout can cause isolated 1-tick dips;
  // anything systematic is a bug.
  EXPECT_LE(drops, static_cast<int>(grid.size() / 50));
}

TEST(PolicyEval, RejectsBadInputs) {
  SingleBlockPolicy policy;
  EXPECT_THROW(evaluate_policy_grid(policy, -1, 1, kParams), std::invalid_argument);
  EXPECT_THROW(evaluate_policy_grid(policy, 10, -1, kParams), std::invalid_argument);
  EXPECT_THROW(evaluate_policy_grid(policy, 10, 1, Params{0}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// best_response traces
// ---------------------------------------------------------------------------

TEST(BestResponse, ValueMatchesEvaluator) {
  const AdaptiveGuidelinePolicy policy;
  for (Ticks u : {Ticks{200}, Ticks{500}, Ticks{777}}) {
    for (int p : {0, 1, 2, 3}) {
      const auto br = best_response(policy, u, p, kParams);
      EXPECT_EQ(br.value, evaluate_policy(policy, u, p, kParams))
          << "u=" << u << " p=" << p;
    }
  }
}

TEST(BestResponse, MovesAreConsistentReplays) {
  const AdaptiveGuidelinePolicy policy;
  const Ticks u = 600;
  const int p = 2;
  const auto br = best_response(policy, u, p, kParams);

  // Replay the moves by hand and re-derive the total work.
  Ticks l = u;
  int q = p;
  Ticks work = 0;
  for (const auto& move : br.moves) {
    ASSERT_EQ(move.episode_lifespan, l);
    ASSERT_EQ(move.interrupts_left, q);
    const auto episode = policy.episode(l, q, kParams);
    if (move.killed) {
      ASSERT_LT(*move.killed, episode.size());
      ASSERT_EQ(move.banked, episode.banked_work(*move.killed, kParams));
      work += move.banked;
      l = positive_sub(l, episode.end(*move.killed));
      --q;
    } else {
      ASSERT_EQ(move.banked, episode.work_if_uninterrupted(kParams));
      work += move.banked;
      l = 0;
    }
  }
  EXPECT_EQ(l, 0);
  EXPECT_EQ(work, br.value);
}

TEST(BestResponse, UsesAtMostPInterrupts) {
  const NonAdaptiveGuidelinePolicy policy;
  for (int p : {0, 1, 3}) {
    const auto br = best_response(policy, 512, p, kParams);
    int used = 0;
    for (const auto& move : br.moves) used += move.killed.has_value();
    EXPECT_LE(used, p);
  }
}

TEST(BestResponse, AdversaryInterruptsWheneverProfitable) {
  // Obs (b): with interrupts in hand and a productive lifespan, the optimal
  // adversary interrupts every episode. For the adaptive guideline at a
  // comfortably large U the trace should use ALL p interrupts.
  const AdaptiveGuidelinePolicy policy;
  const auto br = best_response(policy, 1000, 2, kParams);
  int used = 0;
  for (const auto& move : br.moves) used += move.killed.has_value();
  EXPECT_EQ(used, 2);
}

}  // namespace
}  // namespace nowsched::solver
