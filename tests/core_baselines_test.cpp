#include "core/baselines.h"

#include <gtest/gtest.h>

namespace nowsched {
namespace {

constexpr Params kParams{16};

TEST(SingleBlock, OnePeriodAlways) {
  SingleBlockPolicy policy;
  for (Ticks l : {1, 100, 99999}) {
    const auto s = policy.episode(l, 3, kParams);
    ASSERT_EQ(s.size(), 1u);
    EXPECT_EQ(s.total(), l);
  }
  EXPECT_EQ(policy.name(), "single-block");
}

TEST(FixedChunk, ChunksOfRequestedSizePlusRemainder) {
  FixedChunkPolicy policy(4.0);  // 64-tick chunks
  const auto s = policy.episode(1000, 2, kParams);
  EXPECT_EQ(s.total(), 1000);
  for (std::size_t i = 0; i + 1 < s.size(); ++i) EXPECT_EQ(s.period(i), 64);
  // Final remainder period in [chunk, 2*chunk).
  EXPECT_GE(s.period(s.size() - 1), 64);
  EXPECT_LT(s.period(s.size() - 1), 128);
}

TEST(FixedChunk, ResidualSmallerThanChunkIsOnePeriod) {
  FixedChunkPolicy policy(4.0);
  const auto s = policy.episode(50, 1, kParams);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.total(), 50);
}

TEST(FixedChunk, RejectsNonPositiveChunk) {
  EXPECT_THROW(FixedChunkPolicy{0.0}, std::invalid_argument);
  EXPECT_THROW(FixedChunkPolicy{-1.0}, std::invalid_argument);
}

TEST(FixedChunk, SubTickChunkClampsToOneTick) {
  FixedChunkPolicy policy(0.001);
  const auto s = policy.episode(10, 1, Params{1});
  EXPECT_EQ(s.total(), 10);
  EXPECT_EQ(s.period(0), 1);
}

TEST(Geometric, PeriodsShrinkByDivisor) {
  GeometricPolicy policy(2.0, 2.0);
  const auto s = policy.episode(10000, 3, kParams);
  EXPECT_EQ(s.total(), 10000);
  ASSERT_GE(s.size(), 3u);
  EXPECT_EQ(s.period(0), 5000);
  EXPECT_EQ(s.period(1), 2500);
  // Non-increasing until the merged tail.
  for (std::size_t i = 0; i + 2 < s.size(); ++i) {
    EXPECT_GE(s.period(i), s.period(i + 1));
  }
}

TEST(Geometric, FloorsAtRequestedMinimum) {
  GeometricPolicy policy(2.0, 2.0);  // floor 32 ticks
  const auto s = policy.episode(10000, 3, kParams);
  for (std::size_t i = 0; i + 1 < s.size(); ++i) {
    EXPECT_GE(s.period(i), 32);
  }
}

TEST(Geometric, RejectsBadParameters) {
  EXPECT_THROW(GeometricPolicy(1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(GeometricPolicy(2.0, 0.0), std::invalid_argument);
}

TEST(Geometric, TinyResidualSinglePeriod) {
  GeometricPolicy policy(2.0, 2.0);
  const auto s = policy.episode(10, 1, kParams);
  EXPECT_EQ(s.total(), 10);
  EXPECT_EQ(s.size(), 1u);
}

TEST(EqualSplit, FixedPeriodCount) {
  EqualSplitPolicy policy(8);
  const auto s = policy.episode(1000, 1, kParams);
  EXPECT_EQ(s.size(), 8u);
  EXPECT_EQ(s.total(), 1000);
}

TEST(EqualSplit, ClampsWhenResidualTooSmall) {
  EqualSplitPolicy policy(8);
  const auto s = policy.episode(3, 1, kParams);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.total(), 3);
}

TEST(EqualSplit, RejectsZeroPeriods) {
  EXPECT_THROW(EqualSplitPolicy{0}, std::invalid_argument);
}

TEST(BaselineNames, AreDescriptive) {
  EXPECT_EQ(FixedChunkPolicy{4.0}.name().substr(0, 11), "fixed-chunk");
  EXPECT_EQ(GeometricPolicy(2.0, 2.0).name().substr(0, 9), "geometric");
  EXPECT_EQ(EqualSplitPolicy{4}.name(), "equal-split-4");
}

}  // namespace
}  // namespace nowsched
