// rpc::Server against a real Unix-domain socket, two ways:
//
//   1. Deterministic manual mode — a workers=0 service, a raw nonblocking
//      client fd, and explicit poll_once()/run_next() pumping. Every
//      assertion is an ordering/counting fact: parked wait-fetches release
//      in completion order, bad payloads draw Error replies without killing
//      the connection, framing errors close it, disconnects forget owned
//      tickets.
//   2. Threaded — serve() on a background thread with the blocking
//      rpc::Client, covering the wake-pipe path, multi-client interleaving,
//      and the Shutdown RPC handshake.
#include "rpc/server.h"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>

#include "rpc/client.h"
#include "rpc/frame.h"
#include "rpc/protocol.h"
#include "service/scheduler_service.h"
#include "temp_dir.h"
#include "util/socket.h"

namespace nowsched::rpc {
namespace {

sim::ScenarioSpec quick_spec(std::uint64_t seed) {
  sim::ScenarioSpec spec;
  spec.policy = sim::PolicyKind::kEqualized;
  spec.owner = sim::OwnerKind::kPoisson;
  spec.owner_a = 500.0;
  spec.params = Params{16};
  spec.lifespan = 512;
  spec.max_interrupts = 2;
  spec.seed = seed;
  return spec;
}

std::vector<sim::ScenarioSpec> quick_batch(std::size_t n, std::uint64_t seed0) {
  std::vector<sim::ScenarioSpec> specs;
  for (std::size_t i = 0; i < n; ++i) specs.push_back(quick_spec(seed0 + i));
  return specs;
}

service::ServiceOptions manual_options() {
  service::ServiceOptions options;
  options.workers = 0;  // run_next() drives job execution deterministically
  return options;
}

/// A raw nonblocking client for manual-mode tests: sends frames directly,
/// receives via its own FrameDecoder, and pumps the server between reads so
/// one thread drives both ends deterministically.
class RawClient {
 public:
  explicit RawClient(const std::string& socket_path)
      : fd_(util::unix_connect(socket_path)) {
    util::set_nonblocking(fd_.get(), true);
  }

  void send(MsgType type, const std::string& payload) {
    const std::string bytes = encode_frame(wire_code(type), payload);
    std::size_t written = 0;
    while (written < bytes.size()) {
      (void)util::write_some(fd_.get(), bytes.data() + written,
                             bytes.size() - written, written);
    }
  }

  void send_raw(const std::string& bytes) {
    std::size_t written = 0;
    while (written < bytes.size()) {
      if (util::write_some(fd_.get(), bytes.data() + written,
                           bytes.size() - written,
                           written) == util::IoStatus::kEof) {
        break;
      }
    }
  }

  /// Pumps `server` until a reply frame arrives. `pump` runs between poll
  /// passes (e.g. service.run_next in manual mode). Fails the test after
  /// `max_iters` fruitless passes instead of hanging.
  Frame await_reply(Server& server, const std::function<void()>& pump = {},
                    int max_iters = 2000) {
    Frame frame;
    for (int i = 0; i < max_iters; ++i) {
      if (decoder_.next(frame) == DecodeStatus::kFrame) return frame;
      if (pump) pump();
      (void)server.poll_once(1);
      char buf[4096];
      std::size_t n = 0;
      while (util::read_some(fd_.get(), buf, sizeof buf, n) ==
             util::IoStatus::kOk) {
        decoder_.append(std::string_view(buf, n));
      }
    }
    ADD_FAILURE() << "no reply after " << max_iters << " pump iterations";
    return frame;
  }

  /// True once the server has closed its side (orderly EOF observed).
  bool eof_seen(Server& server, int max_iters = 2000) {
    for (int i = 0; i < max_iters; ++i) {
      (void)server.poll_once(1);
      char buf[4096];
      std::size_t n = 0;
      const util::IoStatus status = util::read_some(fd_.get(), buf, sizeof buf, n);
      if (status == util::IoStatus::kEof) return true;
      if (status == util::IoStatus::kOk) decoder_.append(std::string_view(buf, n));
    }
    return false;
  }

  void disconnect() { fd_.reset(); }

  /// shutdown(SHUT_WR): done sending, still reading replies.
  void half_close() { ::shutdown(fd_.get(), SHUT_WR); }

 private:
  util::Fd fd_;
  FrameDecoder decoder_;
};

service::JobId submit_one(RawClient& client, Server& server,
                          const std::string& tenant, std::size_t scenarios,
                          std::uint64_t seed) {
  SubmitBatchRequest req;
  req.tenant = tenant;
  req.specs = quick_batch(scenarios, seed);
  client.send(MsgType::kSubmitBatch, encode_submit_batch(req));
  const Frame frame = client.await_reply(server);
  EXPECT_EQ(frame.type, wire_code(MsgType::kSubmitReply));
  const SubmitReply reply = decode_submit_reply(frame.payload);
  EXPECT_EQ(reply.status, service::SubmitStatus::kAccepted);
  return reply.job_id;
}

struct ManualRig {
  testing::TempDir dir{"rpc-server"};
  service::SchedulerService service{manual_options()};
  Server server{service, {(dir.path() / "daemon.sock").string(), 4}};
};

TEST(RpcServer, SubmitPollRunFetchLifecycleOverTheSocket) {
  ManualRig rig;
  RawClient client(rig.server.socket_path());

  const service::JobId id = submit_one(client, rig.server, "alpha", 3, 100);
  EXPECT_EQ(id, 1u);

  // Queued before any run_next.
  client.send(MsgType::kJobStatus, encode_job_status({id}));
  Frame frame = client.await_reply(rig.server);
  ASSERT_EQ(frame.type, wire_code(MsgType::kJobStatusReply));
  EXPECT_EQ(decode_job_status_reply(frame.payload).state,
            service::JobState::kQueued);

  ASSERT_TRUE(rig.service.run_next());

  // Nonblocking fetch now returns the full result.
  client.send(MsgType::kJobResult, encode_job_result({id, /*wait=*/false}));
  frame = client.await_reply(rig.server);
  ASSERT_EQ(frame.type, wire_code(MsgType::kJobResultReply));
  const JobResultReply result = decode_job_result_reply(frame.payload);
  EXPECT_EQ(result.state, service::JobState::kDone);
  EXPECT_EQ(result.tenant, "alpha");
  EXPECT_EQ(result.job_id, id);
  EXPECT_EQ(result.per_scenario.size(), 3u);

  // Exactly-once: the job is unknown after its result crossed the wire.
  client.send(MsgType::kJobStatus, encode_job_status({id}));
  frame = client.await_reply(rig.server);
  EXPECT_EQ(decode_job_status_reply(frame.payload).state,
            service::JobState::kUnknown);
}

TEST(RpcServer, WaitFetchParksUntilTheJobCompletes) {
  ManualRig rig;
  RawClient client(rig.server.socket_path());
  const service::JobId id = submit_one(client, rig.server, "alpha", 2, 200);

  // wait=1 on a queued job: the reply must NOT arrive until run_next.
  client.send(MsgType::kJobResult, encode_job_result({id, /*wait=*/true}));
  for (int i = 0; i < 50; ++i) (void)rig.server.poll_once(0);

  bool ran = false;
  const Frame frame = client.await_reply(rig.server, [&] {
    if (!ran) ran = rig.service.run_next();
  });
  ASSERT_TRUE(ran);
  ASSERT_EQ(frame.type, wire_code(MsgType::kJobResultReply));
  EXPECT_EQ(decode_job_result_reply(frame.payload).state,
            service::JobState::kDone);
}

TEST(RpcServer, RequestsQueuedBehindAParkedFetchAnswerInOrder) {
  ManualRig rig;
  RawClient client(rig.server.socket_path());
  const service::JobId id = submit_one(client, rig.server, "alpha", 1, 300);

  // A parked fetch, then a Stats request behind it on the same connection.
  // The replies must come back in request order: result first, stats second.
  client.send(MsgType::kJobResult, encode_job_result({id, /*wait=*/true}));
  client.send(MsgType::kStats, encode_stats_request());

  bool ran = false;
  const Frame first = client.await_reply(rig.server, [&] {
    if (!ran) ran = rig.service.run_next();
  });
  EXPECT_EQ(first.type, wire_code(MsgType::kJobResultReply));
  const Frame second = client.await_reply(rig.server);
  EXPECT_EQ(second.type, wire_code(MsgType::kStatsReply));
  EXPECT_EQ(second.payload.rfind("nowsched-stats v1\n", 0), 0u);
}

TEST(RpcServer, CancelQueuedJobSettlesAsCancelled) {
  ManualRig rig;
  RawClient client(rig.server.socket_path());
  const service::JobId id = submit_one(client, rig.server, "alpha", 1, 400);

  client.send(MsgType::kCancelJob, encode_cancel({id}));
  Frame frame = client.await_reply(rig.server);
  ASSERT_EQ(frame.type, wire_code(MsgType::kCancelReply));
  EXPECT_TRUE(decode_cancel_reply(frame.payload).cancelled);

  // Second cancel is a no-op (already requested).
  client.send(MsgType::kCancelJob, encode_cancel({id}));
  frame = client.await_reply(rig.server);
  EXPECT_FALSE(decode_cancel_reply(frame.payload).cancelled);

  // The fetch reports kCancelled with the diagnostic.
  client.send(MsgType::kJobResult, encode_job_result({id, /*wait=*/false}));
  frame = client.await_reply(rig.server);
  const JobResultReply result = decode_job_result_reply(frame.payload);
  EXPECT_EQ(result.state, service::JobState::kCancelled);
  EXPECT_FALSE(result.error.empty());
}

TEST(RpcServer, BadPayloadDrawsErrorReplyAndConnectionSurvives) {
  ManualRig rig;
  RawClient client(rig.server.socket_path());

  // Valid frame, garbage payload: typed Error reply, connection lives.
  client.send(MsgType::kSubmitBatch, "this is not a submit payload\n");
  Frame frame = client.await_reply(rig.server);
  ASSERT_EQ(frame.type, wire_code(MsgType::kError));
  EXPECT_FALSE(decode_error(frame.payload).message.empty());

  // Unknown message type is a payload-level error too.
  client.send_raw(encode_frame(200, ""));
  frame = client.await_reply(rig.server);
  EXPECT_EQ(frame.type, wire_code(MsgType::kError));

  // The connection still works for real requests afterwards.
  const service::JobId id = submit_one(client, rig.server, "alpha", 1, 500);
  EXPECT_GT(id, 0u);
  EXPECT_EQ(rig.server.connection_count(), 1u);
}

TEST(RpcServer, FramingErrorClosesTheConnection) {
  ManualRig rig;
  RawClient client(rig.server.socket_path());
  client.send_raw("GARBAGE-NOT-A-FRAME-HEADER--");
  EXPECT_TRUE(client.eof_seen(rig.server));
  for (int i = 0; i < 50 && rig.server.connection_count() > 0; ++i) {
    (void)rig.server.poll_once(0);
  }
  EXPECT_EQ(rig.server.connection_count(), 0u);
}

TEST(RpcServer, DisconnectForgetsOwnedTicketsAndCancelsQueuedOnes) {
  ManualRig rig;
  RawClient client(rig.server.socket_path());
  (void)submit_one(client, rig.server, "alpha", 1, 600);
  (void)submit_one(client, rig.server, "alpha", 1, 601);
  client.disconnect();
  for (int i = 0; i < 200 && rig.server.connection_count() > 0; ++i) {
    (void)rig.server.poll_once(1);
  }
  EXPECT_EQ(rig.server.connection_count(), 0u);

  // Drain whatever survived; the forgotten queued jobs must settle as
  // cancelled, never completed, and no record may leak.
  while (rig.service.run_next()) {
  }
  const service::ServiceStats stats = rig.service.stats();
  EXPECT_EQ(stats.accepted_jobs, 2u);
  EXPECT_EQ(stats.completed_jobs, 0u);
  EXPECT_EQ(stats.cancelled_jobs, 2u);
  EXPECT_EQ(stats.queued_jobs, 0u);
  EXPECT_EQ(stats.inflight_jobs, 0u);
}

TEST(RpcServer, HalfClosedClientStillGetsPipelinedReplies) {
  ManualRig rig;
  RawClient client(rig.server.socket_path());
  const service::JobId id = submit_one(client, rig.server, "alpha", 1, 700);

  // Pipeline a wait-fetch and a stats request, then half-close: the peer is
  // done sending but still reads. Both replies must arrive, in order, even
  // though the server's read side saw EOF before either was produced.
  client.send(MsgType::kJobResult, encode_job_result({id, /*wait=*/true}));
  client.send(MsgType::kStats, encode_stats_request());
  client.half_close();

  bool ran = false;
  const Frame first = client.await_reply(rig.server, [&] {
    if (!ran) ran = rig.service.run_next();
  });
  ASSERT_EQ(first.type, wire_code(MsgType::kJobResultReply));
  EXPECT_EQ(decode_job_result_reply(first.payload).state,
            service::JobState::kDone);
  const Frame second = client.await_reply(rig.server);
  EXPECT_EQ(second.type, wire_code(MsgType::kStatsReply));

  // Everything delivered: now the server closes its side.
  EXPECT_TRUE(client.eof_seen(rig.server));
  EXPECT_EQ(rig.server.connection_count(), 0u);
}

TEST(RpcServer, ShutdownPipelinedBeforeImmediateCloseIsNotLost) {
  ManualRig rig;
  RawClient client(rig.server.socket_path());
  client.send(MsgType::kShutdown, encode_shutdown(
      {service::SchedulerService::StopMode::kDrain}));
  client.disconnect();  // full close, no grace — the frame must still land
  for (int i = 0; i < 200 && !rig.server.shutdown_requested(); ++i) {
    (void)rig.server.poll_once(1);
  }
  EXPECT_TRUE(rig.server.shutdown_requested());
  EXPECT_EQ(rig.server.shutdown_mode(),
            service::SchedulerService::StopMode::kDrain);
}

TEST(RpcServer, AbsurdScenarioCountDrawsTypedErrorAndServerSurvives) {
  ManualRig rig;
  RawClient client(rig.server.socket_path());
  // Correctly framed, structurally bogus: the claimed count must be caught
  // before reserve() can throw something the daemon does not catch.
  client.send(MsgType::kSubmitBatch,
              "nowsched-submit v1\ntenant=t\nscenarios=18446744073709551615\n");
  const Frame frame = client.await_reply(rig.server);
  ASSERT_EQ(frame.type, wire_code(MsgType::kError));
  EXPECT_FALSE(decode_error(frame.payload).message.empty());
  // The daemon survived and the connection still serves real work.
  const service::JobId id = submit_one(client, rig.server, "alpha", 1, 800);
  EXPECT_GT(id, 0u);
}

TEST(RpcServer, ShutdownRpcRepliesThenStopsTheLoop) {
  ManualRig rig;
  RawClient client(rig.server.socket_path());
  client.send(MsgType::kShutdown, encode_shutdown(
      {service::SchedulerService::StopMode::kCancelQueued}));
  const Frame frame = client.await_reply(rig.server);
  EXPECT_EQ(frame.type, wire_code(MsgType::kShutdownReply));
  EXPECT_TRUE(rig.server.shutdown_requested());
  EXPECT_EQ(rig.server.shutdown_mode(),
            service::SchedulerService::StopMode::kCancelQueued);
}

// ---------------------------------------------------------------------------
// Threaded coverage: serve() + blocking rpc::Client.
// ---------------------------------------------------------------------------

struct ThreadedRig {
  testing::TempDir dir{"rpc-served"};
  service::ServiceOptions options;
  ThreadedRig() { options.workers = 2; }
};

TEST(RpcServer, ServedClientsSubmitAndFetchConcurrently) {
  ThreadedRig rig;
  service::SchedulerService service(rig.options);
  Server server(service, {(rig.dir.path() / "daemon.sock").string(), 8});
  std::thread serve_thread([&] { server.serve(); });

  constexpr std::size_t kClients = 3;
  constexpr std::size_t kJobs = 4;
  std::vector<std::size_t> done(kClients, 0);
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client(server.socket_path());
      std::vector<service::JobId> ids;
      for (std::size_t j = 0; j < kJobs; ++j) {
        const SubmitReply reply = client.submit_batch(
            "tenant-" + std::to_string(c), quick_batch(2, 1000 * c + j));
        if (reply.status != service::SubmitStatus::kAccepted) return;
        ids.push_back(reply.job_id);
      }
      for (const service::JobId id : ids) {
        const JobResultReply result = client.fetch_result(id, /*wait=*/true);
        if (result.state != service::JobState::kDone) return;
        if (result.per_scenario.size() != 2) return;
        if (client.job_state(id) != service::JobState::kUnknown) return;
        ++done[c];
      }
    });
  }
  for (std::thread& t : threads) t.join();

  Client control(server.socket_path());
  const service::ServiceStats stats = control.stats();
  control.shutdown_server(service::SchedulerService::StopMode::kDrain);
  serve_thread.join();

  for (std::size_t c = 0; c < kClients; ++c) EXPECT_EQ(done[c], kJobs) << c;
  EXPECT_EQ(stats.completed_jobs, kClients * kJobs);
  EXPECT_EQ(stats.submitted_jobs, stats.accepted_jobs + stats.rejected_jobs);
}

TEST(RpcServer, ClientSurfacesServerErrorAsRpcError) {
  ThreadedRig rig;
  service::SchedulerService service(rig.options);
  Server server(service, {(rig.dir.path() / "daemon.sock").string(), 4});
  std::thread serve_thread([&] { server.serve(); });

  Client client(server.socket_path());
  // Empty tenant id is rejected at decode time -> Error frame -> RpcError.
  EXPECT_THROW((void)client.submit_batch("", quick_batch(1, 1)), RpcError);
  // The connection survived the typed error.
  const SubmitReply reply = client.submit_batch("alpha", quick_batch(1, 2));
  EXPECT_EQ(reply.status, service::SubmitStatus::kAccepted);
  const JobResultReply result = client.fetch_result(reply.job_id);
  EXPECT_EQ(result.state, service::JobState::kDone);

  server.stop();
  serve_thread.join();
}

TEST(RpcServer, BindRefusesWhenAnotherDaemonIsLive) {
  ThreadedRig rig;
  service::SchedulerService service(rig.options);
  const std::string path = (rig.dir.path() / "daemon.sock").string();
  Server first(service, {path, 4});
  EXPECT_THROW(Server(service, {path, 4}), std::system_error);
}

}  // namespace
}  // namespace nowsched::rpc
