// The differential conformance suite: generated scenarios through fast
// solver vs. reference solver vs. policy-eval vs. closed-form bounds plus
// the checkpoint-restart and monotonicity theorems, with auto-minimized
// replay files on failure and a self-test proving the pipeline catches an
// injected solver bug. Quick tier runs >= 200 generated cases; set
// NOWSCHED_FUZZ_CASES (nightly uses >= 5000) to scale.
//
// One-command repro of any failure:
//     NOWSCHED_REPLAY=<replay file> ./build/tests/conformance_test
#include "conformance/conformance_harness.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace nowsched::conformance {
namespace {

/// Restores an environment variable on scope exit — the CI jobs drive this
/// binary through NOWSCHED_* variables, so tests that mutate them must not
/// leak the change into later tests (or --gtest_repeat re-runs).
class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) {
    const char* v = std::getenv(name);
    had_ = v != nullptr;
    if (had_) saved_ = v;
  }
  ~EnvGuard() {
    if (had_) {
      setenv(name_, saved_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

/// The domain the suite fuzzes: every policy, every owner process, contracts
/// spanning two orders of magnitude with a class mix (half the scenarios
/// fold onto 6 canonical contracts, like a production batch would).
sim::ScenarioDomain conformance_domain() {
  sim::ScenarioDomain domain;
  domain.min_c = 2;
  domain.max_c = 64;
  domain.min_lifespan = 32;
  domain.max_lifespan = 4096;
  domain.min_interrupts = 0;
  domain.max_interrupts = 5;
  domain.contract_classes = 6;
  domain.class_fraction = 0.5;
  return domain;
}

/// Shared failure path: minimize against the SAME check that fired, write
/// the replay file, and fail the test with the one-command repro.
void report_failure(const sim::ScenarioSpec& spec, const CheckResult& result,
                    const Options& options) {
  const auto still_fails = [&](const sim::ScenarioSpec& candidate) {
    return run_all_checks(candidate, options).check == result.check;
  };
  const sim::ScenarioSpec minimized = minimize(spec, still_fails);
  const CheckResult final_result = run_all_checks(minimized, options);
  const std::string path =
      write_repro(minimized, final_result.check, final_result.detail);
  ADD_FAILURE() << "conformance check '" << result.check << "' failed: "
                << result.detail << "\nminimized repro written to " << path
                << "\nre-run with: NOWSCHED_REPLAY=" << path
                << " ./build/tests/conformance_test";
}

TEST(Conformance, GeneratedScenariosAllConform) {
  const int cases = fuzz_cases(200);
  const Options options;
  sim::ScenarioGenerator gen(conformance_domain(), 0xC0FF);
  int failures = 0;
  for (int i = 0; i < cases && failures < 3; ++i) {
    const sim::ScenarioSpec spec = gen.next();
    const CheckResult result = run_all_checks(spec, options);
    if (!result.ok) {
      report_failure(spec, result, options);
      ++failures;  // keep scanning a little, but don't drown the log
    }
  }
}

TEST(Conformance, CorrelatedFarmGroupsConformToo) {
  const int groups = std::max(4, fuzz_cases(200) / 16);
  const Options options;
  sim::ScenarioDomain domain = conformance_domain();
  domain.farm_size = 4;
  sim::ScenarioGenerator gen(domain, 0xFA53);
  int failures = 0;
  for (int g = 0; g < groups && failures < 3; ++g) {
    for (const sim::ScenarioSpec& spec : gen.farm_group(domain.farm_size)) {
      const CheckResult result = run_all_checks(spec, options);
      if (!result.ok) {
        report_failure(spec, result, options);
        ++failures;
      }
    }
  }
}

TEST(Conformance, InjectedSolverBugIsCaughtAndMinimized) {
  // The pipeline self-test (and the development-time mutation check, kept
  // executable): perturb the fast solver's answers wherever p >= 1 and
  // L >= 64 and demand that (a) the differential suite notices, (b) the
  // minimizer shrinks the catch to the smallest failing contract, and
  // (c) the emitted replay file round-trips to a spec that still fails.
  Options mutated;
  mutated.mutate_fast_solver = true;

  sim::ScenarioGenerator gen(conformance_domain(), 0xB06);
  sim::ScenarioSpec caught;
  CheckResult result;
  bool found = false;
  for (int i = 0; i < 64 && !found; ++i) {
    caught = gen.next();
    result = run_all_checks(caught, mutated);
    found = !result.ok;
  }
  ASSERT_TRUE(found) << "the injected solver bug slipped through 64 scenarios";
  EXPECT_EQ(result.check, "fast-vs-reference");

  const auto still_fails = [&](const sim::ScenarioSpec& candidate) {
    return run_all_checks(candidate, mutated).check == result.check;
  };
  const sim::ScenarioSpec minimized = minimize(caught, still_fails);
  ASSERT_TRUE(still_fails(minimized));
  // The mutation fires iff p >= 1 and L >= 64 — a correct minimizer lands
  // on (or next to) that boundary from whatever scenario it started at.
  EXPECT_EQ(minimized.max_interrupts, 1);
  EXPECT_GE(minimized.lifespan, 64);
  EXPECT_LE(minimized.lifespan, 96);
  EXPECT_EQ(minimized.params.c, 1);
  EXPECT_EQ(minimized.owner, sim::OwnerKind::kPoisson);

  // The replay file is a complete, parseable repro of the minimized catch.
  const EnvGuard guard("NOWSCHED_REPLAY_DIR");
  ASSERT_EQ(setenv("NOWSCHED_REPLAY_DIR", "conformance-repros", 1), 0);
  const CheckResult minimized_result = run_all_checks(minimized, mutated);
  const std::string path =
      write_repro(minimized, minimized_result.check, minimized_result.detail);
  std::ifstream in(path);
  ASSERT_TRUE(in) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const sim::ScenarioSpec replayed = sim::scenario_from_replay(buffer.str());
  EXPECT_EQ(replayed.lifespan, minimized.lifespan);
  EXPECT_EQ(replayed.max_interrupts, minimized.max_interrupts);
  EXPECT_EQ(replayed.params.c, minimized.params.c);
  EXPECT_EQ(replayed.seed, minimized.seed);
  EXPECT_TRUE(still_fails(replayed));
}

TEST(Conformance, ReplayFileFromEnvironment) {
  // The one-command repro entry: NOWSCHED_REPLAY=<file> conformance_test
  // re-runs exactly that scenario through the whole battery.
  const char* path = std::getenv("NOWSCHED_REPLAY");
  if (path == nullptr || *path == '\0') {
    GTEST_SKIP() << "NOWSCHED_REPLAY not set";
  }
  std::ifstream in(path);
  ASSERT_TRUE(in) << "cannot open replay file " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const sim::ScenarioSpec spec = sim::scenario_from_replay(buffer.str());
  const CheckResult result = run_all_checks(spec, Options{});
  EXPECT_TRUE(result.ok) << "replayed scenario still fails '" << result.check
                         << "': " << result.detail;
}

TEST(Conformance, CommittedExampleReplayParsesAndPasses) {
  // The committed replay under tests/conformance/replays/ documents the
  // format (it was emitted by the mutation pipeline above). Without the
  // mutation the scenario must pass — the real solver is not buggy.
  const std::string path = std::string(NOWSCHED_REPLAY_EXAMPLES_DIR) +
                           "/example-minimized-divergence.scenario";
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing committed example replay: " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const sim::ScenarioSpec spec = sim::scenario_from_replay(buffer.str());
  EXPECT_EQ(spec.max_interrupts, 1);
  EXPECT_GE(spec.lifespan, 64);
  const CheckResult result = run_all_checks(spec, Options{});
  EXPECT_TRUE(result.ok) << result.check << ": " << result.detail;

  // Under the recorded mutation the same scenario fails again — the file
  // really is a repro, not just a parseable record.
  Options mutated;
  mutated.mutate_fast_solver = true;
  EXPECT_FALSE(run_all_checks(spec, mutated).ok);
}

TEST(Conformance, FuzzCasesEnvControlsTier) {
  const EnvGuard guard("NOWSCHED_FUZZ_CASES");
  ASSERT_EQ(setenv("NOWSCHED_FUZZ_CASES", "5000", 1), 0);
  EXPECT_EQ(fuzz_cases(200), 5000);
  ASSERT_EQ(setenv("NOWSCHED_FUZZ_CASES", "12abc", 1), 0);
  EXPECT_THROW(fuzz_cases(200), std::runtime_error);
  ASSERT_EQ(setenv("NOWSCHED_FUZZ_CASES", "0", 1), 0);
  EXPECT_THROW(fuzz_cases(200), std::runtime_error);
  ASSERT_EQ(unsetenv("NOWSCHED_FUZZ_CASES"), 0);
  EXPECT_EQ(fuzz_cases(200), 200);
}

TEST(Conformance, MinimizerIsDeterministicAndMonotone) {
  // Against a synthetic predicate ("fails whenever U >= 100 and p >= 2")
  // the minimizer must land exactly on the boundary, twice identically.
  const auto fails = [](const sim::ScenarioSpec& s) {
    return s.lifespan >= 100 && s.max_interrupts >= 2;
  };
  sim::ScenarioSpec spec;
  spec.owner = sim::OwnerKind::kBursty;
  spec.policy = sim::PolicyKind::kDpOptimal;
  spec.lifespan = 4096;
  spec.max_interrupts = 5;
  spec.params = Params{48};
  spec.seed = 0xDEAD;
  const sim::ScenarioSpec a = minimize(spec, fails);
  const sim::ScenarioSpec b = minimize(spec, fails);
  EXPECT_EQ(a.lifespan, 100);
  EXPECT_EQ(a.max_interrupts, 2);
  EXPECT_EQ(a.params.c, 1);
  EXPECT_EQ(a.owner, sim::OwnerKind::kPoisson);
  EXPECT_EQ(a.seed, 0u);
  EXPECT_EQ(b.lifespan, a.lifespan);
  EXPECT_EQ(b.seed, a.seed);
}

}  // namespace
}  // namespace nowsched::conformance
