// Persistent-store conformance differential: a generated workload run with
// the tiered cache's persistent store enabled — cold (baking the store),
// warm (served from mapped files), and through the multi-tenant service
// with a shared store mount — must produce per-scenario metrics
// BIT-IDENTICAL to a plain cached run with no store anywhere. The store
// changes which tier supplies a W(p)[L] table, never the table's contents
// (src/solver/table_store.h, "identical in every tier by construction").
//
// Rides the same NOWSCHED_FUZZ_CASES tier knob as the rest of the
// conformance binary, so the nightly 5000-case tier fuzzes the store format
// and tiering with it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "conformance/conformance_harness.h"
#include "service/scheduler_service.h"
#include "sim/batch_runner.h"
#include "sim/metrics.h"
#include "sim/scenario_gen.h"
#include "solver/table_store.h"

#if defined(_WIN32)
#include <process.h>
#else
#include <unistd.h>
#endif

namespace nowsched::conformance {
namespace {

/// dp-optimal-only domain: every scenario's table goes through the solve
/// cache (and therefore the store tier under test). Contract classes give
/// real key re-use; lifespans capped so the quick tier stays quick.
sim::ScenarioDomain store_domain() {
  sim::ScenarioDomain domain;
  domain.policies = {sim::PolicyKind::kDpOptimal};
  domain.min_c = 2;
  domain.max_c = 48;
  domain.min_lifespan = 32;
  domain.max_lifespan = 1536;
  domain.min_interrupts = 0;
  domain.max_interrupts = 4;
  domain.contract_classes = 6;
  domain.class_fraction = 0.5;
  return domain;
}

void expect_metrics_eq(const sim::SessionMetrics& got,
                       const sim::SessionMetrics& want, const std::string& where) {
  EXPECT_EQ(got.banked_work, want.banked_work) << where;
  EXPECT_EQ(got.task_work, want.task_work) << where;
  EXPECT_EQ(got.comm_overhead, want.comm_overhead) << where;
  EXPECT_EQ(got.lost_work, want.lost_work) << where;
  EXPECT_EQ(got.salvaged_work, want.salvaged_work) << where;
  EXPECT_EQ(got.fragmentation, want.fragmentation) << where;
  EXPECT_EQ(got.lifespan_used, want.lifespan_used) << where;
  EXPECT_EQ(got.interrupts, want.interrupts) << where;
  EXPECT_EQ(got.episodes, want.episodes) << where;
  EXPECT_EQ(got.periods_completed, want.periods_completed) << where;
  EXPECT_EQ(got.periods_killed, want.periods_killed) << where;
  EXPECT_EQ(got.tasks_completed, want.tasks_completed) << where;
}

/// Scratch store directory under the system temp dir, removed on scope
/// exit (process-unique so parallel ctest shards cannot collide).
struct StoreDir {
  StoreDir() {
#if defined(_WIN32)
    const auto pid = static_cast<unsigned long>(::_getpid());
#else
    const auto pid = static_cast<unsigned long>(::getpid());
#endif
    path = std::filesystem::temp_directory_path() /
           ("nowsched-conformance-store-" + std::to_string(pid));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~StoreDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::filesystem::path path;
};

TEST(StoreDifferential, TieredRunsMatchStorelessBaselineExactly) {
  const int cases = fuzz_cases(200);
  const sim::ScenarioGenerator generator(store_domain(), /*seed=*/0x57047ED1);
  std::vector<sim::ScenarioSpec> specs;
  specs.reserve(static_cast<std::size_t>(cases));
  for (int i = 0; i < cases; ++i) {
    specs.push_back(generator.at(static_cast<std::uint64_t>(i)));
  }

  // Ground truth: plain cached run, no persistent tier anywhere.
  sim::BatchRunner baseline_runner;
  const sim::BatchResult want = baseline_runner.run(specs);
  ASSERT_EQ(want.per_scenario.size(), specs.size());

  StoreDir dir;
  auto run_with_store = [&specs](const std::string& store_dir,
                                 bool read_only) {
    sim::BatchOptions options;
    options.cache.store = std::make_shared<solver::MappedTableStore>(
        solver::MappedTableStore::Options{store_dir, read_only});
    sim::BatchRunner runner(options);
    return runner.run(specs);
  };

  // COLD: every fresh solve spills; results must not notice.
  const sim::BatchResult cold = run_with_store(dir.path.string(), false);
  ASSERT_EQ(cold.per_scenario.size(), specs.size());
  EXPECT_GT(cold.cache.spills, 0u) << "dp-only workload must bake the store";
  EXPECT_EQ(cold.cache.store_hits, 0u);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_metrics_eq(cold.per_scenario[i], want.per_scenario[i],
                      "cold-store scenario #" + std::to_string(i));
  }

  // WARM (read-only mount): every miss is a mapped read, zero solves —
  // and still bit-identical.
  const sim::BatchResult warm = run_with_store(dir.path.string(), true);
  EXPECT_EQ(warm.cache.store_hits, warm.cache.misses)
      << "a fully baked store must answer every miss";
  EXPECT_EQ(warm.cache.spills, 0u);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_metrics_eq(warm.per_scenario[i], want.per_scenario[i],
                      "warm-store scenario #" + std::to_string(i));
  }

  // SERVICE: two tenants over the shared (already warm) store, worker
  // threads in play — the full deployment shape.
  service::ServiceOptions service_options;
  service_options.workers = 2;
  service_options.shared_store_dir = dir.path.string();
  service_options.shared_store_readonly = true;
  service_options.max_queued_jobs_per_tenant = specs.size() + 1;
  service_options.max_queued_jobs_total = specs.size() + 1;
  service_options.max_pending_scenarios_per_tenant = specs.size() + 1;
  service::SchedulerService service(service_options);

  struct PendingJob {
    std::size_t first_index;
    std::size_t count;
    std::future<service::JobResult> result;
  };
  std::vector<PendingJob> jobs;
  std::size_t cursor = 0;
  std::size_t job_number = 0;
  while (cursor < specs.size()) {
    const std::size_t count = std::min<std::size_t>(
        1 + (cursor * 5 + job_number) % 9, specs.size() - cursor);
    std::vector<sim::ScenarioSpec> batch(specs.begin() + cursor,
                                         specs.begin() + cursor + count);
    service::Submission sub = service.submit(
        job_number % 2 == 0 ? "even" : "odd", std::move(batch));
    ASSERT_TRUE(sub.accepted()) << "job " << job_number << ": " << sub.reason;
    jobs.push_back({cursor, count, std::move(sub.result)});
    cursor += count;
    ++job_number;
  }
  for (PendingJob& job : jobs) {
    const service::JobResult result = job.result.get();
    ASSERT_EQ(result.batch.per_scenario.size(), job.count);
    for (std::size_t i = 0; i < job.count; ++i) {
      expect_metrics_eq(result.batch.per_scenario[i],
                        want.per_scenario[job.first_index + i],
                        "service/shared-store scenario #" +
                            std::to_string(job.first_index + i));
    }
  }
  service.shutdown(service::SchedulerService::StopMode::kDrain);
}

}  // namespace
}  // namespace nowsched::conformance
