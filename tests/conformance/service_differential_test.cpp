// Service-vs-batch conformance differential: a generated multi-tenant
// workload pushed through service::SchedulerService must produce
// per-scenario metrics BIT-IDENTICAL to a direct sim::BatchRunner::run over
// the same specs — for any queue policy, worker count, tenant split, or
// cache quota. Scheduling decides WHEN a job runs, never what it computes
// (src/service/scheduler_service.h, "Determinism").
//
// Rides the same NOWSCHED_FUZZ_CASES tier knob as the rest of the
// conformance binary: the quick tier generates 200 scenarios per
// configuration; the nightly 5000-case tier scales this suite with it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "conformance/conformance_harness.h"
#include "service/scheduler_service.h"
#include "sim/batch_runner.h"
#include "sim/metrics.h"
#include "sim/scenario_gen.h"

namespace nowsched::conformance {
namespace {

/// The service differential's workload space. dp-optimal heavy (that is the
/// policy whose solves go through the per-tenant caches) but with every
/// policy represented; lifespans capped so the quick tier stays quick, and a
/// contract-class mix so the caches see real re-use.
sim::ScenarioDomain service_domain() {
  sim::ScenarioDomain domain;
  domain.min_c = 2;
  domain.max_c = 48;
  domain.min_lifespan = 32;
  domain.max_lifespan = 2048;
  domain.min_interrupts = 0;
  domain.max_interrupts = 4;
  domain.contract_classes = 4;
  domain.class_fraction = 0.6;
  return domain;
}

void expect_metrics_eq(const sim::SessionMetrics& got,
                       const sim::SessionMetrics& want, const std::string& where) {
  EXPECT_EQ(got.banked_work, want.banked_work) << where;
  EXPECT_EQ(got.task_work, want.task_work) << where;
  EXPECT_EQ(got.comm_overhead, want.comm_overhead) << where;
  EXPECT_EQ(got.lost_work, want.lost_work) << where;
  EXPECT_EQ(got.salvaged_work, want.salvaged_work) << where;
  EXPECT_EQ(got.fragmentation, want.fragmentation) << where;
  EXPECT_EQ(got.lifespan_used, want.lifespan_used) << where;
  EXPECT_EQ(got.interrupts, want.interrupts) << where;
  EXPECT_EQ(got.episodes, want.episodes) << where;
  EXPECT_EQ(got.periods_completed, want.periods_completed) << where;
  EXPECT_EQ(got.periods_killed, want.periods_killed) << where;
  EXPECT_EQ(got.tasks_completed, want.tasks_completed) << where;
}

struct ServiceConfig {
  const char* label;
  service::QueueKind queue;
  std::size_t workers;
  std::size_t quota_bytes;  ///< per-tenant; small values force cache churn
};

/// Carves `specs` into jobs of 1..13 scenarios, dealt to 3 tenants round
/// robin, submits everything, and compares every per-scenario result with
/// the direct-runner baseline (index-aligned, so a mismatch names the exact
/// generated scenario).
void run_differential(const std::vector<sim::ScenarioSpec>& specs,
                      const std::vector<sim::SessionMetrics>& baseline,
                      const ServiceConfig& config) {
  service::ServiceOptions options;
  options.workers = config.workers;
  options.queue = config.queue;
  options.drr_quantum = 4;
  options.max_queued_jobs_per_tenant = specs.size() + 1;  // admission open
  options.max_queued_jobs_total = specs.size() + 1;
  options.max_pending_scenarios_per_tenant = specs.size() + 1;
  options.tenant_cache_shards = 1;
  service::SchedulerService service(options);
  for (const char* tenant : {"t0", "t1", "t2"}) {
    service.set_tenant_quota(tenant, config.quota_bytes);
  }

  struct PendingJob {
    std::size_t first_index;  ///< position of the job's first spec in `specs`
    std::size_t count;
    service::JobId ticket;
  };
  std::vector<PendingJob> jobs;
  std::size_t cursor = 0;
  std::size_t job_number = 0;
  while (cursor < specs.size()) {
    const std::size_t count =
        std::min<std::size_t>(1 + (cursor * 7 + job_number * 3) % 13,
                              specs.size() - cursor);
    std::vector<sim::ScenarioSpec> batch(specs.begin() + cursor,
                                         specs.begin() + cursor + count);
    const char* tenants[] = {"t0", "t1", "t2"};
    service::TicketSubmission sub =
        service.submit_job(tenants[job_number % 3], std::move(batch));
    ASSERT_TRUE(sub.accepted())
        << config.label << ": job " << job_number << " rejected: " << sub.reason;
    jobs.push_back({cursor, count, sub.ticket.id});
    cursor += count;
    ++job_number;
  }
  if (config.workers == 0) service.drain();

  for (const PendingJob& job : jobs) {
    service::FetchOutcome outcome = service.fetch_result(job.ticket);
    ASSERT_TRUE(outcome.done())
        << config.label << ": " << to_string(outcome.state) << " "
        << outcome.error;
    const service::JobResult result = std::move(outcome.result);
    ASSERT_EQ(result.batch.per_scenario.size(), job.count) << config.label;
    for (std::size_t i = 0; i < job.count; ++i) {
      expect_metrics_eq(result.batch.per_scenario[i],
                        baseline[job.first_index + i],
                        std::string(config.label) + ": scenario #" +
                            std::to_string(job.first_index + i));
    }
  }
  service.shutdown(service::SchedulerService::StopMode::kDrain);
}

TEST(ServiceDifferential, MatchesDirectBatchRunnerAcrossPoliciesAndWorkers) {
  const int cases = fuzz_cases(200);
  const sim::ScenarioGenerator generator(service_domain(), /*seed=*/0x5EBF1CE);
  std::vector<sim::ScenarioSpec> specs;
  specs.reserve(static_cast<std::size_t>(cases));
  for (int i = 0; i < cases; ++i) {
    specs.push_back(generator.at(static_cast<std::uint64_t>(i)));
  }

  // The ground truth: one direct run, default cache, no service in sight.
  sim::BatchRunner direct;
  const sim::BatchResult want = direct.run(specs);
  ASSERT_EQ(want.per_scenario.size(), specs.size());

  const ServiceConfig configs[] = {
      // Manual single-thread FIFO: the minimal service path.
      {"fifo/manual", service::QueueKind::kFifo, 0, 1u << 20},
      // Fair-share queueing, real worker threads, and a TIGHT quota that
      // forces mid-workload eviction churn — none of it may leak into the
      // results.
      {"drr/3-workers/tight-quota", service::QueueKind::kDeficitRoundRobin, 3,
       64u << 10},
  };
  for (const ServiceConfig& config : configs) {
    SCOPED_TRACE(config.label);
    run_differential(specs, want.per_scenario, config);
  }
}

}  // namespace
}  // namespace nowsched::conformance
