// Daemon-vs-direct conformance differential: a generated multi-tenant
// workload submitted through the FULL nowsched-rpc v1 stack (rpc::Client →
// Unix socket → rpc::Server → SchedulerService) must hand back results
// BIT-IDENTICAL to the same workload run against SchedulerService
// in-process — per-scenario metrics field for field, latency excluded by
// construction (it is the one field the wire cannot and must not pin).
//
// This is the acceptance test for the wire protocol: the SubmitBatch payload
// embeds unmodified `nowsched-scenario v1` records and the JobResultReply
// carries every metric as exact text, so any drift between the two paths is
// a codec bug, not noise. Rides the same NOWSCHED_FUZZ_CASES tier knob as
// the rest of the conformance binary.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <unistd.h>

#include "conformance/conformance_harness.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "service/scheduler_service.h"
#include "sim/batch_runner.h"
#include "sim/metrics.h"
#include "sim/scenario_gen.h"

namespace nowsched::conformance {
namespace {

sim::ScenarioDomain rpc_domain() {
  sim::ScenarioDomain domain;
  domain.min_c = 2;
  domain.max_c = 48;
  domain.min_lifespan = 32;
  domain.max_lifespan = 2048;
  domain.min_interrupts = 0;
  domain.max_interrupts = 4;
  domain.contract_classes = 4;
  domain.class_fraction = 0.6;
  return domain;
}

void expect_metrics_eq(const sim::SessionMetrics& got,
                       const sim::SessionMetrics& want, const std::string& where) {
  EXPECT_EQ(got.banked_work, want.banked_work) << where;
  EXPECT_EQ(got.task_work, want.task_work) << where;
  EXPECT_EQ(got.comm_overhead, want.comm_overhead) << where;
  EXPECT_EQ(got.lost_work, want.lost_work) << where;
  EXPECT_EQ(got.salvaged_work, want.salvaged_work) << where;
  EXPECT_EQ(got.fragmentation, want.fragmentation) << where;
  EXPECT_EQ(got.lifespan_used, want.lifespan_used) << where;
  EXPECT_EQ(got.interrupts, want.interrupts) << where;
  EXPECT_EQ(got.episodes, want.episodes) << where;
  EXPECT_EQ(got.periods_completed, want.periods_completed) << where;
  EXPECT_EQ(got.periods_killed, want.periods_killed) << where;
  EXPECT_EQ(got.tasks_completed, want.tasks_completed) << where;
}

/// One job per wire: first spec index, count, and the ticket on whichever
/// surface issued it.
struct PendingJob {
  std::size_t first_index;
  std::size_t count;
  service::JobId ticket;
};

/// Deals `specs` into jobs of 1..13 scenarios across 3 tenants — the same
/// carving for both surfaces, so job boundaries can't explain a divergence.
template <typename SubmitFn>
std::vector<PendingJob> deal_jobs(const std::vector<sim::ScenarioSpec>& specs,
                                  SubmitFn&& submit) {
  std::vector<PendingJob> jobs;
  std::size_t cursor = 0;
  std::size_t job_number = 0;
  while (cursor < specs.size()) {
    const std::size_t count =
        std::min<std::size_t>(1 + (cursor * 7 + job_number * 3) % 13,
                              specs.size() - cursor);
    std::vector<sim::ScenarioSpec> batch(specs.begin() + cursor,
                                         specs.begin() + cursor + count);
    const char* tenants[] = {"t0", "t1", "t2"};
    const service::JobId id =
        submit(tenants[job_number % 3], std::move(batch));
    if (id == 0) {
      ADD_FAILURE() << "job " << job_number << " rejected";
      return jobs;
    }
    jobs.push_back({cursor, count, id});
    cursor += count;
    ++job_number;
  }
  return jobs;
}

service::ServiceOptions open_admission(std::size_t jobs_bound) {
  service::ServiceOptions options;
  options.workers = 2;
  options.queue = service::QueueKind::kDeficitRoundRobin;
  options.drr_quantum = 4;
  options.max_queued_jobs_per_tenant = jobs_bound + 1;
  options.max_queued_jobs_total = jobs_bound + 1;
  options.max_pending_scenarios_per_tenant = jobs_bound + 1;
  options.tenant_cache_shards = 1;
  return options;
}

TEST(RpcDifferential, DaemonMediatedResultsMatchDirectServiceBitForBit) {
  const int cases = fuzz_cases(200);
  const sim::ScenarioGenerator generator(rpc_domain(), /*seed=*/0x29C0FFEE);
  std::vector<sim::ScenarioSpec> specs;
  specs.reserve(static_cast<std::size_t>(cases));
  for (int i = 0; i < cases; ++i) {
    specs.push_back(generator.at(static_cast<std::uint64_t>(i)));
  }

  // Surface 1: SchedulerService in-process, JobTicket API.
  std::vector<std::vector<sim::SessionMetrics>> direct_results;
  {
    service::SchedulerService service(open_admission(specs.size()));
    const std::vector<PendingJob> jobs =
        deal_jobs(specs, [&service](const char* tenant,
                                    std::vector<sim::ScenarioSpec> batch) {
          service::TicketSubmission sub =
              service.submit_job(tenant, std::move(batch));
          return sub.accepted() ? sub.ticket.id : 0;
        });
    ASSERT_FALSE(jobs.empty());
    for (const PendingJob& job : jobs) {
      service::FetchOutcome outcome = service.fetch_result(job.ticket);
      ASSERT_TRUE(outcome.done()) << to_string(outcome.state);
      ASSERT_EQ(outcome.result.batch.per_scenario.size(), job.count);
      direct_results.push_back(std::move(outcome.result.batch.per_scenario));
    }
    service.shutdown(service::SchedulerService::StopMode::kDrain);
  }

  // Surface 2: the same workload through a live daemon over a real socket.
  const std::string socket_path =
      (std::filesystem::temp_directory_path() /
       ("nowsched-rpc-diff-" + std::to_string(::getpid()) + ".sock"))
          .string();
  service::SchedulerService service(open_admission(specs.size()));
  rpc::Server server(service, {socket_path, 8});
  std::thread serve_thread([&server] { server.serve(); });

  {
    rpc::Client client(socket_path);
    const std::vector<PendingJob> jobs =
        deal_jobs(specs, [&client](const char* tenant,
                                   std::vector<sim::ScenarioSpec> batch) {
          const rpc::SubmitReply reply = client.submit_batch(tenant, batch);
          return reply.status == service::SubmitStatus::kAccepted
                     ? reply.job_id
                     : 0;
        });
    ASSERT_EQ(jobs.size(), direct_results.size());

    for (std::size_t j = 0; j < jobs.size(); ++j) {
      const rpc::JobResultReply reply =
          client.fetch_result(jobs[j].ticket, /*wait=*/true);
      ASSERT_EQ(reply.state, service::JobState::kDone)
          << "job " << j << ": " << reply.error;
      ASSERT_EQ(reply.per_scenario.size(), jobs[j].count) << "job " << j;
      // Exactly-once survived the wire: the ticket is consumed.
      EXPECT_EQ(client.job_state(jobs[j].ticket), service::JobState::kUnknown);

      for (std::size_t i = 0; i < jobs[j].count; ++i) {
        expect_metrics_eq(reply.per_scenario[i], direct_results[j][i],
                          "scenario #" +
                              std::to_string(jobs[j].first_index + i));
      }
    }

    client.shutdown_server(service::SchedulerService::StopMode::kDrain);
  }
  serve_thread.join();

  // Both surfaces also agree with the ground-truth direct BatchRunner on a
  // spot-check prefix (the service differential pins the full sweep).
  const std::size_t spot = std::min<std::size_t>(specs.size(), 16);
  sim::BatchRunner runner;
  const sim::BatchResult want = runner.run(
      std::vector<sim::ScenarioSpec>(specs.begin(), specs.begin() + spot));
  std::size_t flat = 0;
  for (std::size_t j = 0; j < direct_results.size() && flat < spot; ++j) {
    for (std::size_t i = 0; i < direct_results[j].size() && flat < spot; ++i) {
      expect_metrics_eq(direct_results[j][i], want.per_scenario[flat],
                        "spot-check #" + std::to_string(flat));
      ++flat;
    }
  }
}

}  // namespace
}  // namespace nowsched::conformance
