#include "conformance/conformance_harness.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <optional>
#include <span>
#include <sstream>
#include <stdexcept>

#include "adversary/trace.h"
#include "core/bounds.h"
#include "core/equalized.h"
#include "core/guidelines.h"
#include "sim/batch_runner.h"
#include "sim/session.h"
#include "solver/extract.h"
#include "solver/fast_solver.h"
#include "solver/policy_eval.h"
#include "solver/reference_solver.h"
#include "solver/solve_cache.h"
#include "util/hash.h"
#include "util/parse.h"

namespace nowsched::conformance {

namespace {

/// The contract the solver-differential checks actually run: the reference
/// oracle is O(P·N²), so big generated contracts are clamped. Every check
/// derives its grid from this ONE place so they all talk about the same
/// clamped scenario.
struct ClampedContract {
  int p;
  Ticks l;
  Params params;
};

ClampedContract clamp_contract(const sim::ScenarioSpec& spec, const Options& options) {
  return {std::min(spec.max_interrupts, options.max_solver_p),
          std::min(spec.lifespan, options.max_solver_lifespan), spec.params};
}

/// One-entry memo of the clamped fast table: the four solver checks of a
/// scenario all read the identical (p, L, c) grid, so one solve serves the
/// whole battery (and the minimizer's repeated probes of one candidate).
/// Thread-local for safety if a future harness fans checks out.
const solver::ValueTable& clamped_fast_table(const ClampedContract& g) {
  thread_local std::optional<solver::ValueTable> memo;
  thread_local int memo_p = -1;
  thread_local Ticks memo_l = -1;
  thread_local Ticks memo_c = -1;
  if (!memo || memo_p != g.p || memo_l != g.l || memo_c != g.params.c) {
    memo.emplace(solver::solve_fast(g.p, g.l, g.params));
    memo_p = g.p;
    memo_l = g.l;
    memo_c = g.params.c;
  }
  return *memo;
}

/// The injected bug: the fast solver "miscounts" every state with at least
/// one interrupt and a lifespan past one c-block of 64 — the shape of a
/// real boundary off-by-one. Applied to the fast READ, not the table, so
/// the mutation cannot leak into other checks.
Ticks fast_value(const solver::ValueTable& fast, int q, Ticks l, const Options& options) {
  const Ticks v = fast.value(q, l);
  if (options.mutate_fast_solver && q >= 1 && l >= 64) return v + 1;
  return v;
}

CheckResult fail(const char* check, std::string detail) {
  return CheckResult{false, check, std::move(detail)};
}

CheckResult check_fast_vs_reference(const sim::ScenarioSpec& spec,
                                    const Options& options) {
  const ClampedContract g = clamp_contract(spec, options);
  const solver::ValueTable& fast = clamped_fast_table(g);
  const auto ref = solver::solve_reference(g.p, g.l, g.params);
  for (int q = 0; q <= g.p; ++q) {
    for (Ticks l = 0; l <= g.l; ++l) {
      const Ticks fv = fast_value(fast, q, l, options);
      const Ticks rv = ref.value(q, l);
      if (fv != rv) {
        std::ostringstream os;
        os << "W(" << q << ")[" << l << "] fast=" << fv << " reference=" << rv
           << " (c=" << g.params.c << ")";
        return fail("fast-vs-reference", os.str());
      }
    }
  }
  return {};
}

CheckResult check_kernel_differential(const sim::ScenarioSpec& spec,
                                      const Options& options) {
  const ClampedContract g = clamp_contract(spec, options);
  // Build the table level-by-level through run_fill_kernel for every
  // supported kernel and demand bit-identity against the scalar build. No
  // global kernel forcing: explicit dispatch keeps this check reentrant.
  const std::size_t stride = static_cast<std::size_t>(g.l) + 1;
  auto build = [&](solver::SolverKernel kernel) {
    std::vector<Ticks> slab(static_cast<std::size_t>(g.p + 1) * stride, 0);
    for (Ticks l = 0; l <= g.l; ++l) {
      slab[static_cast<std::size_t>(l)] = positive_sub(l, g.params.c);
    }
    for (int q = 1; q <= g.p; ++q) {
      const std::span<Ticks> whole(slab);
      run_fill_kernel(kernel, whole.subspan(static_cast<std::size_t>(q) * stride, stride),
                      whole.subspan(static_cast<std::size_t>(q - 1) * stride, stride),
                      1, g.l + 1, g.params.c);
    }
    return slab;
  };
  const std::vector<Ticks> scalar = build(solver::SolverKernel::kScalar);
  for (const solver::SolverKernel kernel : solver::supported_solver_kernels()) {
    if (kernel == solver::SolverKernel::kScalar) continue;
    const std::vector<Ticks> other = build(kernel);
    for (std::size_t i = 0; i < scalar.size(); ++i) {
      if (other[i] != scalar[i]) {
        std::ostringstream os;
        os << "W(" << i / stride << ")[" << i % stride << "] "
           << solver::solver_kernel_name(kernel) << "=" << other[i]
           << " scalar=" << scalar[i] << " (c=" << g.params.c << ")";
        return fail("kernel-differential", os.str());
      }
    }
  }
  return {};
}

CheckResult check_policy_eval(const sim::ScenarioSpec& spec, const Options& options) {
  const ClampedContract g = clamp_contract(spec, options);
  // OptimalPolicy needs shared ownership; copying the memoized table is
  // O(P·N), cheaper than the O(P·N·log N) re-solve it replaces.
  auto table = std::make_shared<const solver::ValueTable>(clamped_fast_table(g));
  const Ticks w = fast_value(*table, g.p, g.l, options);

  // The independent game-tree evaluator must score the extracted optimal
  // policy at exactly the table value...
  const solver::OptimalPolicy optimal(table);
  const Ticks scored = solver::evaluate_policy(optimal, g.l, g.p, g.params);
  if (scored != w) {
    std::ostringstream os;
    os << "policy-eval scores dp-optimal at " << scored << " but the table says "
       << w << " (p=" << g.p << " U=" << g.l << " c=" << g.params.c << ")";
    return fail("policy-eval", os.str());
  }

  // ...and no fixed guideline above the optimum.
  const EqualizedGuidelinePolicy equalized;
  const AdaptiveGuidelinePolicy adaptive;
  const NonAdaptiveGuidelinePolicy restart;
  for (const SchedulingPolicy* policy :
       {static_cast<const SchedulingPolicy*>(&equalized),
        static_cast<const SchedulingPolicy*>(&adaptive),
        static_cast<const SchedulingPolicy*>(&restart)}) {
    const Ticks v = solver::evaluate_policy(*policy, g.l, g.p, g.params);
    if (v > w) {
      std::ostringstream os;
      os << policy->name() << " evaluates to " << v << " > optimal " << w
         << " (p=" << g.p << " U=" << g.l << " c=" << g.params.c << ")";
      return fail("policy-eval", os.str());
    }
  }
  return {};
}

CheckResult check_bounds_sandwich(const sim::ScenarioSpec& spec,
                                  const Options& options) {
  const ClampedContract g = clamp_contract(spec, options);
  const solver::ValueTable& table = clamped_fast_table(g);
  const Ticks w = fast_value(table, g.p, g.l, options);

  // Upper: one setup is always paid (V_p <= V_0 = U ⊖ c).
  const Ticks upper = positive_sub(g.l, g.params.c);
  if (w > upper) {
    std::ostringstream os;
    os << "W(" << g.p << ")[" << g.l << "]=" << w << " exceeds U-c=" << upper;
    return fail("bounds-sandwich", os.str());
  }

  // Lower: the equalized guideline is a feasible policy.
  const EqualizedGuidelinePolicy equalized;
  const Ticks lower = solver::evaluate_policy(equalized, g.l, g.p, g.params);
  if (w < lower) {
    std::ostringstream os;
    os << "W(" << g.p << ")[" << g.l << "]=" << w << " below the equalized "
       << "guideline's evaluated guarantee " << lower;
    return fail("bounds-sandwich", os.str());
  }

  // Zero-work characterization, both directions. Prop 4.1(c) puts the
  // continuous-time boundary at U <= (p+1)c; on the integer grid a banked
  // tick needs a completed period of >= c+1, and the adversary forces p+1
  // such periods, so the exact discrete boundary sits at (p+1)(c+1) — one
  // of the discretization effects this suite itself first caught (the naive
  // (p+1)c iff-check fails on e.g. U=37, p=2, c=12).
  const Ticks paper_threshold = bounds::zero_work_threshold(g.p, g.params.c);
  const Ticks grid_threshold =
      static_cast<Ticks>(g.p + 1) * (g.params.c + 1);
  if (g.l <= paper_threshold && w != 0) {
    std::ostringstream os;
    os << "Prop 4.1(c) violated: U=" << g.l << " <= " << paper_threshold
       << " but W=" << w;
    return fail("bounds-sandwich", os.str());
  }
  if ((g.l >= grid_threshold) != (w > 0)) {
    std::ostringstream os;
    os << "grid zero-threshold mismatch: U=" << g.l << " threshold="
       << grid_threshold << " W=" << w;
    return fail("bounds-sandwich", os.str());
  }
  return {};
}

CheckResult check_monotonicity(const sim::ScenarioSpec& spec, const Options& options) {
  const ClampedContract g = clamp_contract(spec, options);
  const solver::ValueTable& table = clamped_fast_table(g);
  for (int q = 0; q <= g.p; ++q) {
    for (Ticks l = 0; l <= g.l; ++l) {
      const Ticks v = fast_value(table, q, l, options);
      if (l > 0) {
        const Ticks prev = fast_value(table, q, l - 1, options);
        if (v < prev) {
          std::ostringstream os;
          os << "W(" << q << ") not monotone at L=" << l << ": " << v << " < " << prev;
          return fail("monotonicity", os.str());
        }
        if (v > prev + 1) {
          std::ostringstream os;
          os << "W(" << q << ") not 1-Lipschitz at L=" << l << ": " << v << " vs "
             << prev;
          return fail("monotonicity", os.str());
        }
      }
      if (q > 0 && v > fast_value(table, q - 1, l, options)) {
        std::ostringstream os;
        os << "more interrupts helped: W(" << q << ")[" << l << "]=" << v
           << " > W(" << q - 1 << ")[" << l << "]";
        return fail("monotonicity", os.str());
      }
    }
  }
  return {};
}

CheckResult check_checkpoint_restart(const sim::ScenarioSpec& spec,
                                     const Options& options) {
  (void)options;  // the mutation targets the solver reads, not the sim
  const auto policy = sim::make_policy(spec);
  const auto owner = sim::make_owner(spec);
  const Opportunity opp{spec.lifespan, spec.max_interrupts};

  adversary::RecordingAdversary recorder(*owner);
  const sim::SessionMetrics full =
      sim::run_session(*policy, recorder, opp, spec.params);
  if (full.interrupts == 0) return {};  // no boundary to pause at

  // Deterministic pause point derived from the spec.
  const int k = 1 + static_cast<int>(spec.seed %
                                     static_cast<std::uint64_t>(full.interrupts));
  adversary::TraceAdversary replay(recorder.trace());
  const sim::SessionCheckpoint ckpt =
      sim::run_session_until_interrupt(*policy, replay, opp, spec.params, k);
  const sim::SessionCheckpoint restored =
      sim::parse_session_checkpoint(sim::serialize(ckpt));
  adversary::TraceAdversary tail(
      recorder.trace().shifted(restored.metrics.lifespan_used));
  const sim::SessionMetrics merged =
      sim::resume_session(*policy, tail, restored, spec.params);

  const auto diff = [&](const char* field, Ticks a, Ticks b) {
    std::ostringstream os;
    os << "resumed session diverged at " << field << ": " << a << " != " << b
       << " (paused after interrupt " << k << " of " << full.interrupts << ")";
    return fail("checkpoint-restart", os.str());
  };
  if (merged.banked_work != full.banked_work) {
    return diff("banked_work", merged.banked_work, full.banked_work);
  }
  if (merged.lifespan_used != full.lifespan_used) {
    return diff("lifespan_used", merged.lifespan_used, full.lifespan_used);
  }
  if (merged.comm_overhead != full.comm_overhead) {
    return diff("comm_overhead", merged.comm_overhead, full.comm_overhead);
  }
  if (merged.lost_work != full.lost_work) {
    return diff("lost_work", merged.lost_work, full.lost_work);
  }
  if (merged.interrupts != full.interrupts ||
      merged.episodes != full.episodes ||
      merged.periods_completed != full.periods_completed ||
      merged.periods_killed != full.periods_killed) {
    std::ostringstream os;
    os << "resumed session diverged in event counts (paused after interrupt " << k
       << ")";
    return fail("checkpoint-restart", os.str());
  }
  return {};
}

}  // namespace

const std::vector<NamedCheck>& all_checks() {
  static const std::vector<NamedCheck> kChecks = {
      {"fast-vs-reference", check_fast_vs_reference},
      {"kernel-differential", check_kernel_differential},
      {"policy-eval", check_policy_eval},
      {"bounds-sandwich", check_bounds_sandwich},
      {"monotonicity", check_monotonicity},
      {"checkpoint-restart", check_checkpoint_restart},
  };
  return kChecks;
}

CheckResult run_all_checks(const sim::ScenarioSpec& spec, const Options& options) {
  for (const NamedCheck& check : all_checks()) {
    try {
      const CheckResult result = check.run(spec, options);
      if (!result.ok) return result;
    } catch (const std::exception& e) {
      // A spec the components reject is a different failure class than a
      // divergence; the minimizer relies on the distinction to avoid
      // shrinking into the invalid region.
      return fail("spec-invalid", std::string(check.name) + ": " + e.what());
    }
  }
  return {};
}

int fuzz_cases(int fallback) {
  const char* env = std::getenv("NOWSCHED_FUZZ_CASES");
  if (env == nullptr || *env == '\0') return fallback;
  const auto v = util::parse_int64(env);
  if (!v || *v < 1 || *v > std::numeric_limits<int>::max()) {
    throw std::runtime_error(
        "NOWSCHED_FUZZ_CASES must be a positive int-range integer, got '" +
        std::string(env) + "'");
  }
  return static_cast<int>(*v);
}

namespace {

/// Smaller is simpler. Lifespan dominates (it is what makes instances slow
/// to reason about), then interrupts, then c, then owner-model complexity,
/// then nonzero seeds.
double size_score(const sim::ScenarioSpec& spec) {
  return static_cast<double>(spec.lifespan) +
         64.0 * static_cast<double>(spec.max_interrupts) +
         static_cast<double>(spec.params.c) +
         16.0 * static_cast<double>(static_cast<int>(spec.owner)) +
         8.0 * static_cast<double>(static_cast<int>(spec.policy)) +
         (spec.seed != 0 ? 1.0 : 0.0) + (spec.group_seed != 0 ? 1.0 : 0.0);
}

std::vector<sim::ScenarioSpec> shrink_candidates(const sim::ScenarioSpec& spec) {
  std::vector<sim::ScenarioSpec> out;
  const auto push = [&](auto&& edit) {
    sim::ScenarioSpec candidate = spec;
    edit(candidate);
    out.push_back(candidate);
  };
  if (spec.lifespan > 1) {
    push([&](sim::ScenarioSpec& s) { s.lifespan = std::max<Ticks>(1, s.lifespan / 2); });
    push([&](sim::ScenarioSpec& s) {
      s.lifespan = std::max<Ticks>(1, (3 * s.lifespan) / 4);
    });
    push([&](sim::ScenarioSpec& s) { s.lifespan -= 1; });
  }
  if (spec.max_interrupts > 0) {
    push([&](sim::ScenarioSpec& s) { s.max_interrupts /= 2; });
    push([&](sim::ScenarioSpec& s) { s.max_interrupts -= 1; });
  }
  if (spec.params.c > 1) {
    push([&](sim::ScenarioSpec& s) { s.params.c = std::max<Ticks>(1, s.params.c / 2); });
    push([&](sim::ScenarioSpec& s) { s.params.c -= 1; });
  }
  if (spec.owner != sim::OwnerKind::kPoisson) {
    push([&](sim::ScenarioSpec& s) {
      s.owner = sim::OwnerKind::kPoisson;
      s.owner_a = std::max<double>(1.0, static_cast<double>(s.lifespan) / 4.0);
      s.owner_b = s.owner_c = s.owner_d = 0.0;
      s.group_seed = 0;
    });
  }
  if (spec.policy != sim::PolicyKind::kEqualized) {
    push([&](sim::ScenarioSpec& s) { s.policy = sim::PolicyKind::kEqualized; });
  }
  if (spec.seed != 0) {
    push([&](sim::ScenarioSpec& s) { s.seed = 0; });
  }
  if (spec.group_seed != 0) {
    push([&](sim::ScenarioSpec& s) { s.group_seed = 0; });
  }
  return out;
}

}  // namespace

sim::ScenarioSpec minimize(
    const sim::ScenarioSpec& spec,
    const std::function<bool(const sim::ScenarioSpec&)>& still_fails, int budget) {
  sim::ScenarioSpec current = spec;
  bool improved = true;
  while (improved && budget > 0) {
    improved = false;
    for (const sim::ScenarioSpec& candidate : shrink_candidates(current)) {
      if (budget-- <= 0) break;
      if (size_score(candidate) >= size_score(current)) continue;
      if (still_fails(candidate)) {
        current = candidate;
        improved = true;
        break;  // restart the pass from the new, smaller scenario
      }
    }
  }
  return current;
}

std::string replay_dir() {
  const char* env = std::getenv("NOWSCHED_REPLAY_DIR");
  return (env != nullptr && *env != '\0') ? env : ".";
}

std::string write_repro(const sim::ScenarioSpec& spec, const std::string& check,
                        const std::string& detail) {
  const std::string body = sim::to_replay_string(spec);
  const std::string dir = replay_dir();
  std::filesystem::create_directories(dir);

  std::uint64_t h = util::hash_combine(0, spec.seed);
  for (const char ch : body) h = util::hash_combine(h, static_cast<std::uint64_t>(ch));
  std::ostringstream name;
  name << dir << "/repro-" << check << "-" << std::hex << (h & 0xFFFFFF)
       << ".scenario";

  // Header line first (the parser demands it), then the annotation comments.
  const auto header_end = body.find('\n') + 1;
  std::ofstream out(name.str());
  out << body.substr(0, header_end);
  out << "# check: " << check << "\n";
  out << "# detail: " << detail << "\n";
  out << "# repro: NOWSCHED_REPLAY=" << name.str() << " ./conformance_test\n";
  out << body.substr(header_end);
  if (!out) {
    throw std::runtime_error("conformance: cannot write replay file " + name.str());
  }
  return name.str();
}

}  // namespace nowsched::conformance
