// Differential conformance harness: every generated scenario is pushed
// through INDEPENDENT implementations and paper theorems, and any mutual
// disagreement is a bug by construction (DESIGN.md §8).
//
// The checks, per scenario:
//   * fast-vs-reference   — solve_fast and the O(P·N²) oracle agree
//                           bit-for-bit on the (clamped) contract grid;
//   * kernel-differential — every supported level-fill kernel (legacy
//                           binary search, scalar two-pointer, AVX2/NEON)
//                           builds a bit-identical table on that grid;
//   * policy-eval         — the independent fixed-policy evaluator scores
//                           OptimalPolicy exactly at the table value, and
//                           no guideline policy above it;
//   * bounds-sandwich     — W(p)[U] sits between the equalized guideline's
//                           evaluated guarantee and U ⊖ c, and vanishes
//                           exactly on the Prop 4.1(c) threshold;
//   * monotonicity        — W non-decreasing and 1-Lipschitz in L,
//                           non-increasing in p (paper Prop 4.1);
//   * checkpoint-restart  — pausing the scenario's session at an interrupt,
//                           serializing, restoring, and resuming reproduces
//                           the uninterrupted run field-for-field.
//
// A failing scenario is auto-minimized (greedy coordinate shrink re-running
// the failing check) and serialized to a replay file, so any red run hands
// you a one-command repro:
//
//     NOWSCHED_REPLAY=<file> ./build/tests/conformance_test
//
// Tier control: NOWSCHED_FUZZ_CASES sets the generated-case count (default
// 200 — the quick tier; nightly runs >= 5000).
//
// The harness can also INJECT a solver bug (Options::mutate_fast_solver):
// the fast table is perturbed wherever p >= 1 and L >= 64, imitating a real
// off-by-one. The pipeline test proves the suite catches it, minimizes it
// to the smallest failing contract, and emits a valid replay — so "the
// fuzzer would catch a solver regression" is itself a tested property, not
// a hope.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/scenario_gen.h"

namespace nowsched::conformance {

struct Options {
  /// Clamp applied to the solver-differential checks: the reference oracle
  /// is O(P·N²), so spec contracts are capped at this grid for comparison.
  Ticks max_solver_lifespan = 320;
  int max_solver_p = 3;

  /// Deliberate fast-solver mutation (see header comment). Only the
  /// pipeline self-test sets this.
  bool mutate_fast_solver = false;
};

struct CheckResult {
  bool ok = true;
  std::string check;   ///< name of the failed invariant (empty when ok)
  std::string detail;  ///< first divergence, human-readable
};

struct NamedCheck {
  const char* name;
  std::function<CheckResult(const sim::ScenarioSpec&, const Options&)> run;
};

/// The check battery, in execution order.
const std::vector<NamedCheck>& all_checks();

/// Runs the battery; returns the FIRST failure (or ok). Validation errors
/// from a malformed spec surface as a failed "spec-valid" pseudo-check
/// rather than an exception, so the minimizer can probe freely.
CheckResult run_all_checks(const sim::ScenarioSpec& spec, const Options& options);

/// Number of generated cases for this process: NOWSCHED_FUZZ_CASES when set
/// (>= 1, strictly parsed — a malformed value aborts rather than silently
/// shrinking coverage), else `fallback`.
int fuzz_cases(int fallback);

/// Greedy scenario shrinking: repeatedly tries smaller candidates (halved /
/// decremented lifespan, fewer interrupts, smaller c, simpler owner, zeroed
/// seeds) and accepts any that still satisfies `still_fails`, until a pass
/// over all moves yields nothing or `budget` probes are spent. Deterministic.
sim::ScenarioSpec minimize(
    const sim::ScenarioSpec& spec,
    const std::function<bool(const sim::ScenarioSpec&)>& still_fails,
    int budget = 400);

/// Directory replay files land in: $NOWSCHED_REPLAY_DIR or "." (created on
/// demand).
std::string replay_dir();

/// Writes `spec` as a replay file named after the failed check (annotated
/// with # comment lines the parser ignores); returns the path.
std::string write_repro(const sim::ScenarioSpec& spec, const std::string& check,
                        const std::string& detail);

}  // namespace nowsched::conformance
