// Racing-layer conformance differential: every score the race banks must be
// BIT-IDENTICAL to a direct sim::BatchRunner run of the same spec, and every
// regret the hunt banks must match solver::evaluate_policy against the DP
// value table EXACTLY. The racing layer is bookkeeping over existing engines
// — any divergence means it corrupted a score on the way into the Welford
// accumulators, which would silently invalidate every verdict.
//
// Rides the NOWSCHED_FUZZ_CASES tier knob like the rest of the conformance
// binary; a failing spec is written as a replay file for a one-command repro.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "conformance/conformance_harness.h"
#include "race/policy_race.h"
#include "race/regret_hunt.h"
#include "sim/batch_runner.h"
#include "sim/scenario_gen.h"
#include "solver/policy_eval.h"
#include "solver/solve_cache.h"

namespace nowsched::conformance {
namespace {

using race::PolicyArm;
using race::PolicyRace;
using race::PolicyRaceOptions;
using race::Region;

/// Contracts capped so the exact-regret differential (a DP solve plus a
/// fixed-policy evaluation per spec) stays affordable at the nightly tier.
Region race_region(const std::string& name, sim::OwnerKind owner) {
  Region region;
  region.name = name;
  region.domain.owners = {owner};
  region.domain.min_c = 2;
  region.domain.max_c = 32;
  region.domain.min_lifespan = 32;
  region.domain.max_lifespan = 640;
  region.domain.min_interrupts = 0;
  region.domain.max_interrupts = 4;
  region.domain.contract_classes = 5;
  region.domain.class_fraction = 0.5;
  return region;
}

TEST(RaceConformance, BankedScoresMatchDirectBatchRunnerBitExactly) {
  const std::vector<Region> regions = {
      race_region("poisson", sim::OwnerKind::kPoisson),
      race_region("markov", sim::OwnerKind::kMarkovModulated)};
  const std::vector<PolicyArm> arms = {
      {sim::PolicyKind::kDpOptimal, 0},
      {sim::PolicyKind::kEqualized, 0},
      {sim::PolicyKind::kAdaptivePaper, 1},
      {sim::PolicyKind::kNonAdaptiveRestart, 1}};
  PolicyRaceOptions options;
  options.seed = 0xCAFE;
  PolicyRace race(regions, arms, options);

  const std::size_t per_arm = static_cast<std::size_t>(
      std::max(8, fuzz_cases(200) / static_cast<int>(arms.size())));
  for (std::size_t arm = 0; arm < arms.size(); ++arm) {
    // What the race banks…
    const std::vector<double> banked = race.score_batch(arm, 0, per_arm);

    // …vs an independent BatchRunner over the same specs (fresh runner,
    // fresh cache — whichever tier solves, the bits must agree).
    std::vector<sim::ScenarioSpec> specs;
    for (std::size_t i = 0; i < per_arm; ++i) {
      specs.push_back(race.sample_spec(arm, i));
    }
    sim::BatchRunner direct;
    const sim::BatchResult batch = direct.run(specs);

    for (std::size_t i = 0; i < per_arm; ++i) {
      const double expected =
          PolicyRace::score_of(batch.per_scenario[i], specs[i]);
      if (banked[i] != expected) {
        const std::string path = write_repro(
            specs[i], "race-score-differential",
            "race banked " + std::to_string(banked[i]) + " direct " +
                std::to_string(expected));
        FAIL() << "arm " << arm << " pull " << i
               << ": banked score diverged from direct BatchRunner (repro: "
               << path << ")";
      }
      EXPECT_GE(banked[i], 0.0);
      EXPECT_LE(banked[i], 1.0);
    }
  }
}

TEST(RaceConformance, RegretMatchesPolicyEvalAgainstDpTableExactly) {
  // Guideline scenarios from the generated space: regret through the hunt's
  // cached path must equal the uncached solver::solve_shared +
  // evaluate_policy computation tick-for-tick, and be non-negative (W is
  // the maximum over all policies).
  sim::ScenarioDomain domain = race_region("regret", sim::OwnerKind::kPoisson).domain;
  domain.policies = {sim::PolicyKind::kEqualized, sim::PolicyKind::kAdaptivePaper,
                     sim::PolicyKind::kNonAdaptiveRestart};
  const sim::ScenarioGenerator gen(domain, 0xD1FF);
  solver::SolveCache cache;

  const int cases = std::max(16, fuzz_cases(200) / 4);
  for (int i = 0; i < cases; ++i) {
    const sim::ScenarioSpec spec = gen.at(static_cast<std::uint64_t>(i));
    const Ticks got = race::regret_ticks(spec, cache);

    const auto table = solver::solve_shared(
        solver::SolveRequest{spec.max_interrupts, spec.lifespan, spec.params});
    const Ticks w = table->value(spec.max_interrupts, spec.lifespan);
    const auto policy = sim::make_policy(spec);
    const Ticks guaranteed = solver::evaluate_policy(
        *policy, spec.lifespan, spec.max_interrupts, spec.params);

    if (got != w - guaranteed || got < 0) {
      const std::string path = write_repro(
          spec, "race-regret-differential",
          "regret_ticks " + std::to_string(got) + " direct W " +
              std::to_string(w) + " R " + std::to_string(guaranteed));
      FAIL() << "case " << i << ": regret diverged (repro: " << path << ")";
    }
  }
}

TEST(RaceConformance, DpOptimalSpecsHaveZeroRegret) {
  sim::ScenarioDomain domain = race_region("dp", sim::OwnerKind::kUniform).domain;
  domain.policies = {sim::PolicyKind::kDpOptimal};
  const sim::ScenarioGenerator gen(domain, 0xD0);
  solver::SolveCache cache;
  for (int i = 0; i < 8; ++i) {
    const sim::ScenarioSpec spec = gen.at(static_cast<std::uint64_t>(i));
    EXPECT_EQ(race::regret_ticks(spec, cache), 0) << i;
    EXPECT_DOUBLE_EQ(race::regret_score(spec, cache), 0.0) << i;
  }
}

}  // namespace
}  // namespace nowsched::conformance
