// E17 — RPC round trip: what the nowsched-rpc v1 wire costs over the
// in-process JobTicket API. Two surfaces run the SAME workload:
//   * in-process — service::SchedulerService::submit_job / fetch_result;
//   * rpc        — rpc::Client → Unix socket → rpc::Server → an identical
//                  service instance, one daemon thread serving the socket.
// Two sections per surface: submit→result LATENCY of single-scenario jobs
// (p50/p99/max over per-call wall clocks) and batched THROUGHPUT (all jobs
// submitted before any result is fetched — the pipelined shape a real
// client uses). Banked totals are asserted bit-identical across surfaces:
// the wire moves results, it never changes them.
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "harness/harness.h"

#include "rpc/client.h"
#include "rpc/server.h"
#include "service/scheduler_service.h"
#include "sim/batch_runner.h"
#include "util/stats.h"

namespace nowsched::bench {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Cheap equalized scenarios: the session work is microseconds, so the
// measured gap between the surfaces is the wire, not the simulator.
std::vector<sim::ScenarioSpec> job_specs(std::size_t scenarios,
                                         std::uint64_t seed) {
  std::vector<sim::ScenarioSpec> specs;
  specs.reserve(scenarios);
  for (std::size_t i = 0; i < scenarios; ++i) {
    sim::ScenarioSpec spec;
    spec.policy = sim::PolicyKind::kEqualized;
    spec.owner = sim::OwnerKind::kPoisson;
    spec.owner_a = 900.0;
    spec.params = Params{24};
    spec.lifespan = 4096;
    spec.max_interrupts = 3;
    spec.seed = seed * 977 + i;
    specs.push_back(spec);
  }
  return specs;
}

service::ServiceOptions service_options(std::size_t jobs_bound) {
  service::ServiceOptions options;
  options.workers = 2;
  options.queue = service::QueueKind::kFifo;
  options.max_queued_jobs_per_tenant = jobs_bound + 1;  // admission open:
  options.max_queued_jobs_total = jobs_bound + 1;       // we bench the wire,
  options.max_pending_scenarios_per_tenant =            // not backpressure
      (jobs_bound + 1) * 64;
  return options;
}

struct SurfaceResult {
  util::Summary latency{std::vector<double>{}};  ///< per-call ms, latency section
  double throughput_wall_ms = 0.0;
  std::size_t throughput_scenarios = 0;
  Ticks banked_total = 0;  ///< across BOTH sections — the determinism pin
};

/// One submit→result call pair, abstracted over the surface. `submit`
/// returns the ticket (throws on rejection); `fetch` blocks until the job
/// is done and returns the job's banked work.
template <typename SubmitFn, typename FetchFn>
SurfaceResult run_surface(std::size_t latency_iters, std::size_t batch_jobs,
                          std::size_t batch_scenarios, SubmitFn&& submit,
                          FetchFn&& fetch) {
  SurfaceResult out;

  // Latency: one single-scenario job at a time, timed call-by-call.
  std::vector<double> samples;
  samples.reserve(latency_iters);
  for (std::size_t i = 0; i < latency_iters; ++i) {
    const auto start = Clock::now();
    const service::JobId id = submit(job_specs(1, /*seed=*/i));
    out.banked_total += fetch(id);
    samples.push_back(ms_since(start));
  }
  out.latency = util::Summary(std::move(samples));

  // Throughput: every job in flight before the first fetch.
  const auto start = Clock::now();
  std::vector<service::JobId> tickets;
  tickets.reserve(batch_jobs);
  for (std::size_t j = 0; j < batch_jobs; ++j) {
    tickets.push_back(submit(job_specs(batch_scenarios, /*seed=*/1000 + j)));
  }
  for (const service::JobId id : tickets) out.banked_total += fetch(id);
  out.throughput_wall_ms = ms_since(start);
  out.throughput_scenarios = batch_jobs * batch_scenarios;
  return out;
}

SurfaceResult run_inprocess(std::size_t latency_iters, std::size_t batch_jobs,
                            std::size_t batch_scenarios) {
  service::SchedulerService service(
      service_options(latency_iters + batch_jobs));
  SurfaceResult out = run_surface(
      latency_iters, batch_jobs, batch_scenarios,
      [&service](std::vector<sim::ScenarioSpec> specs) {
        service::TicketSubmission sub =
            service.submit_job("bench", std::move(specs));
        if (!sub.accepted()) {
          throw std::logic_error("E17: in-process submission rejected: " +
                                 sub.reason);
        }
        return sub.ticket.id;
      },
      [&service](service::JobId id) {
        service::FetchOutcome outcome = service.fetch_result(id);
        if (!outcome.done()) {
          throw std::logic_error("E17: in-process fetch not done: " +
                                 std::string(to_string(outcome.state)));
        }
        return outcome.result.batch.aggregate.banked_work;
      });
  service.shutdown(service::SchedulerService::StopMode::kDrain);
  return out;
}

SurfaceResult run_rpc(std::size_t latency_iters, std::size_t batch_jobs,
                      std::size_t batch_scenarios,
                      const std::string& socket_path) {
  service::SchedulerService service(
      service_options(latency_iters + batch_jobs));
  rpc::Server server(service, {socket_path, 16});
  std::thread serve_thread([&server] { server.serve(); });

  SurfaceResult out;
  {
    rpc::Client client(socket_path);
    out = run_surface(
        latency_iters, batch_jobs, batch_scenarios,
        [&client](std::vector<sim::ScenarioSpec> specs) {
          const rpc::SubmitReply reply = client.submit_batch("bench", specs);
          if (reply.status != service::SubmitStatus::kAccepted) {
            throw std::logic_error("E17: rpc submission rejected: " +
                                   reply.reason);
          }
          return reply.job_id;
        },
        [&client](service::JobId id) {
          const rpc::JobResultReply reply =
              client.fetch_result(id, /*wait=*/true);
          if (reply.state != service::JobState::kDone) {
            throw std::logic_error("E17: rpc fetch not done: " + reply.error);
          }
          return reply.aggregate.banked_work;
        });
    client.shutdown_server(service::SchedulerService::StopMode::kDrain);
  }
  serve_thread.join();
  return out;
}

void emit_surface(harness::Context& ctx, util::Table& out,
                  const std::string& surface, const SurfaceResult& r,
                  std::size_t batch_jobs, std::size_t batch_scenarios) {
  const double per_sec =
      r.throughput_wall_ms > 0
          ? static_cast<double>(r.throughput_scenarios) /
                (r.throughput_wall_ms / 1000.0)
          : 0.0;
  ctx.write_csv_row(
      {surface, std::to_string(r.latency.count()),
       util::Table::fmt(r.latency.quantile(0.5), 5),
       util::Table::fmt(r.latency.quantile(0.99), 5),
       util::Table::fmt(r.latency.max(), 5), std::to_string(batch_jobs),
       std::to_string(batch_scenarios),
       util::Table::fmt(r.throughput_wall_ms, 5), util::Table::fmt(per_sec, 5),
       std::to_string(static_cast<long long>(r.banked_total))});
  out.add_row({surface, util::Table::fmt(r.latency.quantile(0.5), 5),
               util::Table::fmt(r.latency.quantile(0.99), 5),
               util::Table::fmt(r.latency.max(), 5),
               util::Table::fmt(r.throughput_wall_ms, 5),
               util::Table::fmt(per_sec, 5)});
  ctx.metric(surface + "_latency_p50_ms", r.latency.quantile(0.5));
  ctx.metric(surface + "_latency_p99_ms", r.latency.quantile(0.99));
  ctx.metric(surface + "_scenarios_per_sec", per_sec);
}

void run(harness::Context& ctx) {
  const util::Flags& flags = ctx.flags();
  const std::size_t latency_iters = static_cast<std::size_t>(
      flags.get_int("latency-iters", ctx.quick() ? 48 : 400));
  const std::size_t batch_jobs = static_cast<std::size_t>(
      flags.get_int("batch-jobs", ctx.quick() ? 16 : 64));
  const std::size_t batch_scenarios = static_cast<std::size_t>(
      flags.get_int("batch-scenarios", ctx.quick() ? 4 : 8));

  harness::ScratchDir scratch("rpc_roundtrip");
  const std::string socket_path =
      (std::filesystem::path(scratch.path()) /
       ("e17-" + std::to_string(::getpid()) + ".sock"))
          .string();

  ctx.csv({"surface", "latency_calls", "latency_p50_ms", "latency_p99_ms",
           "latency_max_ms", "batch_jobs", "batch_scenarios", "batch_wall_ms",
           "scenarios_per_sec", "banked_total"});
  util::Table out({"surface", "p50 ms", "p99 ms", "max ms", "batch wall ms",
                   "scen/s"});

  const SurfaceResult inproc =
      run_inprocess(latency_iters, batch_jobs, batch_scenarios);
  const SurfaceResult rpc =
      run_rpc(latency_iters, batch_jobs, batch_scenarios, socket_path);
  if (inproc.banked_total != rpc.banked_total) {
    throw std::logic_error(
        "E17: rpc-mediated banked total diverged from in-process: wire "
        "protocol changed a result");
  }

  emit_surface(ctx, out, "inprocess", inproc, batch_jobs, batch_scenarios);
  emit_surface(ctx, out, "rpc", rpc, batch_jobs, batch_scenarios);
  const double overhead_p50 =
      rpc.latency.quantile(0.5) - inproc.latency.quantile(0.5);
  ctx.metric("wire_overhead_p50_ms", overhead_p50);

  ctx.table(out, std::to_string(latency_iters) +
                     " timed single-scenario submit->result calls, then " +
                     std::to_string(batch_jobs) + " jobs x " +
                     std::to_string(batch_scenarios) +
                     " scenarios submitted before any fetch");
  ctx.text(
      "Reading: both surfaces run the identical workload on identical\n"
      "service configurations; `banked_total` is asserted bit-identical, so\n"
      "every row difference is transport cost. The latency section is the\n"
      "per-call price of the socket round trip (frame encode + write +\n"
      "poll wakeup + reply); the batch section shows how pipelining many\n"
      "jobs before the first fetch amortizes it. wire_overhead_p50_ms in\n"
      "the JSON record is the headline number: rpc p50 minus in-process\n"
      "p50 for a single-scenario job.");
}

}  // namespace

const harness::Experiment& experiment_rpc_roundtrip() {
  static const harness::Experiment e{
      "E17", "rpc_roundtrip",
      "RPC round trip: wire-protocol cost over the in-process ticket API",
      "bench_rpc_roundtrip",
      "Drives the same workload through the in-process JobTicket API and "
      "through the full nowsched-rpc v1 stack (rpc::Client over a Unix "
      "socket to a one-thread rpc::Server daemon); reports p50/p99/max "
      "submit-to-result latency for single-scenario jobs, batched "
      "throughput with every job in flight before the first fetch, and "
      "asserts banked totals are bit-identical across surfaces — the wire "
      "moves results, it never changes them.",
      run};
  return e;
}

}  // namespace nowsched::bench
