#!/usr/bin/env python3
"""Compare a fresh set of BENCH_*.json records against committed baselines.

Usage:
    python3 bench/compare_baselines.py --candidate <dir> [--baseline bench/baselines]
                                       [--tolerance 4.0] [--strict]

For every BENCH_<slug>.json in the baseline directory the script checks the
candidate directory for the matching record and compares:

  * ok          — a candidate that crashed is always an error (even warn-only);
  * wall_ms     — flagged when candidate/baseline falls outside
                  [1/tolerance, tolerance]. Wall clocks are only compared when
                  the two records ran the same tier. Runs where either side
                  is under --min-wall-ms (default 5 ms) are exempt from the
                  ratio (sub-millisecond timings are dominated by cold-start
                  and scheduler noise), but the exemption is capped both
                  ways: a candidate above min-wall-ms x tolerance^2 (180 ms
                  at the defaults) is a blowup, and a candidate under the
                  floor against a baseline above min-wall-ms x tolerance
                  (30 ms at the defaults) is a collapse — neither can hide
                  under the floor;
  * host_class  — records are stamped with the machine class that produced
                  them ("<threads>t-<isa>", e.g. "8t-avx2"; records predating
                  the stamp count as "unknown"). When candidate and baseline
                  classes differ, every timing/metric ratio check is SKIPPED
                  and a non-failing note is printed instead — a laptop
                  baseline must not gate a CI runner's wall clocks, in either
                  direction. Structural checks (ok, metric presence,
                  finiteness) still apply;
  * metrics     — same keys must exist; values must be finite; same-tier
                  values are ratio-checked like wall_ms, with two exemptions:
                  keys ending in `_ms` get the same --min-wall-ms noise floor
                  (capped the same way), and keys ending in `_per_sec` are
                  never ratio-checked — absolute throughput is a property of
                  the machine, and the regressions it would catch are already
                  gated through the record's wall_ms. When either side is 0
                  no ratio is defined, so any change from/to zero warns with
                  its own message (e.g. `wavefront_crossover_c` becoming
                  measurable on a multicore host).

Default mode is warn-only (exit 0 with warnings printed) so the CI gate can
run before run-to-run variance data has accumulated; --strict turns warnings
into a non-zero exit for local use. Note the `experiments` CMake target
regenerates bench/baselines *in place* — to check drift locally, run the
driver into a scratch directory and compare that against the committed
baselines:

    ./build/bench/run_experiments --tier=full --outdir=/tmp/fresh \
        --doc=/tmp/fresh/EXPERIMENTS.md
    python3 bench/compare_baselines.py --candidate /tmp/fresh --strict
"""

import argparse
import json
import math
import sys
from pathlib import Path


def load_records(directory: Path):
    records = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            records[path.name] = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            records[path.name] = {"_unreadable": str(exc)}
    return records


def compare_values(candidate: float, baseline: float, tolerance: float):
    """None when within tolerance, else a short reason for the warning."""
    if baseline <= 0.0 or candidate <= 0.0:
        if candidate == baseline:
            return None
        return "changed from/to zero — no ratio defined"
    r = candidate / baseline
    if (1.0 / tolerance) <= r <= tolerance:
        return None
    return f"outside {tolerance:g}x tolerance"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--candidate", required=True, type=Path,
                        help="directory with freshly generated BENCH_*.json")
    parser.add_argument("--baseline", default=Path("bench/baselines"), type=Path,
                        help="directory with committed baselines")
    parser.add_argument("--tolerance", default=4.0, type=float,
                        help="allowed wall_ms / metric ratio either way")
    parser.add_argument("--min-wall-ms", default=5.0, type=float,
                        help="skip the wall_ms ratio check when either side "
                             "is below this (too noisy to gate on)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on warnings, not just errors")
    args = parser.parse_args()

    baselines = load_records(args.baseline)
    candidates = load_records(args.candidate)
    if not baselines:
        print(f"error: no BENCH_*.json baselines under {args.baseline}")
        return 1

    errors, warnings, notes = [], [], []

    for name, base in sorted(baselines.items()):
        cand = candidates.get(name)
        if cand is None:
            errors.append(f"{name}: missing from candidate dir {args.candidate}")
            continue
        if "_unreadable" in cand or "_unreadable" in base:
            errors.append(f"{name}: unreadable JSON "
                          f"({cand.get('_unreadable', base.get('_unreadable'))})")
            continue
        if not cand.get("ok", False):
            errors.append(f"{name}: candidate record has ok=false "
                          f"({cand.get('error', 'no error text')!r})")
            continue

        same_tier = cand.get("tier") == base.get("tier")
        cand_class = cand.get("host_class", "unknown")
        base_class = base.get("host_class", "unknown")
        same_class = cand_class == base_class
        if not same_class:
            notes.append(
                f"{name}: host class mismatch (candidate {cand_class!r} vs "
                f"baseline {base_class!r}) — timing/metric ratios not compared; "
                f"regenerate the baseline on this host class to re-arm the gate")
        skip_ceiling = args.min_wall_ms * args.tolerance * args.tolerance

        def check_timing(label, cand_ms, base_ms):
            if cand_ms >= args.min_wall_ms and base_ms >= args.min_wall_ms:
                why = compare_values(cand_ms, base_ms, args.tolerance)
                if why:
                    warnings.append(f"{name}: {label} {cand_ms:.1f} vs baseline "
                                    f"{base_ms:.1f} ({why})")
            elif cand_ms > skip_ceiling:
                # Either side under the noise floor exempts the ratio, but a
                # candidate this far above it is a real blowup, not noise.
                warnings.append(
                    f"{name}: {label} {cand_ms:.1f} vs baseline {base_ms:.1f} "
                    f"(baseline under the {args.min_wall_ms:g} ms noise floor, "
                    f"candidate above the {skip_ceiling:g} ms blowup ceiling)")
            elif base_ms > args.min_wall_ms * args.tolerance:
                # Collapse check: a candidate under the floor against a
                # comfortably-above-floor baseline means the measured work
                # vanished (skipped sweep, misparsed grid) — too fast to be
                # true. This ceiling is one tolerance above the floor, not
                # tolerance^2 like the blowup side: cold-start can inflate a
                # tiny run, but nothing legitimately deflates a real one.
                warnings.append(
                    f"{name}: {label} {cand_ms:.1f} vs baseline {base_ms:.1f} "
                    f"(candidate under the {args.min_wall_ms:g} ms noise floor "
                    f"while the baseline is above "
                    f"{args.min_wall_ms * args.tolerance:g} ms — measured work "
                    f"collapsed)")

        if not same_class:
            pass  # noted above; no ratio is meaningful across host classes
        elif same_tier:
            check_timing("wall_ms", cand.get("wall_ms", 0.0),
                         base.get("wall_ms", 0.0))
        else:
            warnings.append(
                f"{name}: tier mismatch (candidate {cand.get('tier')!r} vs "
                f"baseline {base.get('tier')!r}) — wall clocks not compared")

        base_metrics = base.get("metrics", {})
        cand_metrics = cand.get("metrics", {})
        for key in sorted(base_metrics):
            if key not in cand_metrics:
                warnings.append(f"{name}: metric {key!r} missing from candidate")
                continue
            value = cand_metrics[key]
            if not isinstance(value, (int, float)) or not math.isfinite(value):
                errors.append(f"{name}: metric {key!r} is not finite: {value!r}")
                continue
            if same_tier and same_class:
                if key.endswith("_per_sec"):
                    continue  # machine-absolute throughput; wall_ms gates it
                if key.endswith("_ms"):
                    check_timing(f"metric {key!r}", float(value),
                                 float(base_metrics[key]))
                    continue
                why = compare_values(float(value), float(base_metrics[key]),
                                     args.tolerance)
                if why:
                    warnings.append(
                        f"{name}: metric {key!r} = {value:g} vs baseline "
                        f"{base_metrics[key]:g} ({why})")

    for name in sorted(set(candidates) - set(baselines)):
        warnings.append(f"{name}: no committed baseline (new experiment?) — "
                        f"regenerate bench/baselines to adopt it")

    for line in errors:
        print(f"error: {line}")
    for line in warnings:
        print(f"warning: {line}")
    for line in notes:
        print(f"note: {line}")
    compared = len(baselines)
    print(f"compared {compared} records: {len(errors)} error(s), "
          f"{len(warnings)} warning(s), {len(notes)} note(s)"
          + ("" if errors or warnings else " — all within tolerance"))

    if errors:
        return 1
    if warnings and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
