// E5 — §5.2's claim: the adaptive guidelines deviate from optimality by only
// low-order additive terms.
//
// Reports W(p)[U] − W(guideline) for the printed, rationalized, and
// equalized guidelines across a U sweep, normalized two ways:
//   /√(cU)  — must vanish for a "low-order" deviation,
//   /U      — relative work loss.
// Also fits gap ~ a + b·√U to expose the growth order empirically.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/equalized.h"
#include "core/guidelines.h"
#include "solver/fast_solver.h"
#include "solver/policy_eval.h"
#include "util/stats.h"
#include "util/thread_pool.h"

using namespace nowsched;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const Params params{flags.get_int("c", 16)};
  const int max_p = static_cast<int>(flags.get_int("max_p", 4));
  util::ThreadPool& pool = util::global_pool();

  bench::print_header("E5 / §5.2", "guideline deviation from the DP optimum");
  util::CsvWriter csv(bench::csv_path(flags, "adaptive_vs_optimal.csv"),
                      {"U_over_c", "p", "gap_printed", "gap_equalized",
                       "gap_printed_norm_sqrt", "gap_equalized_norm_sqrt"});

  util::Table out({"U/c", "p", "gap printed", "gap equalzd", "prt/√(cU)", "eq/√(cU)",
                   "eq/U %"});

  std::vector<Ticks> ratios = {128, 256, 512, 1024, 2048, 4096};
  std::vector<double> sqrt_u, eq_gaps;
  for (const Ticks ratio : ratios) {
    const Ticks u = ratio * params.c;
    const double ud = static_cast<double>(u);
    const double scale = std::sqrt(static_cast<double>(params.c) * ud);
    const auto table = solver::solve_fast(max_p, u, params, &pool);
    for (int p = 1; p <= max_p; ++p) {
      const AdaptiveGuidelinePolicy printed(PivotRule::kAsPrinted);
      const EqualizedGuidelinePolicy equalized;
      const Ticks gap_pr =
          table.value(p, u) - solver::evaluate_policy(printed, u, p, params, &pool);
      const Ticks gap_eq =
          table.value(p, u) - solver::evaluate_policy(equalized, u, p, params, &pool);
      out.add_row({util::Table::fmt(static_cast<long long>(ratio)),
                   util::Table::fmt(static_cast<long long>(p)),
                   util::Table::fmt(static_cast<long long>(gap_pr)),
                   util::Table::fmt(static_cast<long long>(gap_eq)),
                   util::Table::fmt(static_cast<double>(gap_pr) / scale, 3),
                   util::Table::fmt(static_cast<double>(gap_eq) / scale, 3),
                   util::Table::fmt(100.0 * static_cast<double>(gap_eq) / ud, 3)});
      csv.write_row({static_cast<double>(ratio), static_cast<double>(p),
                     static_cast<double>(gap_pr), static_cast<double>(gap_eq),
                     static_cast<double>(gap_pr) / scale,
                     static_cast<double>(gap_eq) / scale});
      if (p == 2) {
        sqrt_u.push_back(std::sqrt(ud));
        eq_gaps.push_back(static_cast<double>(gap_eq));
      }
    }
    out.add_rule();
  }
  out.print(std::cout, "\nDeviation from optimality, c = " +
                           std::to_string(params.c) + " ticks");

  const auto fit = util::fit_linear(sqrt_u, eq_gaps);
  std::cout << "\nequalized gap (p=2) ≈ " << fit.intercept << " + " << fit.slope
            << "·√U   (r²=" << fit.r2 << ")\n"
            << "A near-zero √U slope for the equalized guideline is the\n"
               "empirical form of '§5.2: optimal up to low-order additive terms'.\n";
  std::cout << "CSV written to " << csv.path() << "\n";
  return 0;
}
