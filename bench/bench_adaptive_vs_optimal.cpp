// E5 — §5.2's claim: the adaptive guidelines deviate from optimality by only
// low-order additive terms.
//
// Reports W(p)[U] − W(guideline) for the printed, rationalized, and
// equalized guidelines across a U sweep, normalized two ways:
//   /√(cU)  — must vanish for a "low-order" deviation,
//   /U      — relative work loss.
// Also fits gap ~ a + b·√U to expose the growth order empirically.
#include <cmath>
#include <vector>

#include "harness/harness.h"

#include "core/equalized.h"
#include "core/guidelines.h"
#include "solver/fast_solver.h"
#include "solver/policy_eval.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace nowsched::bench {
namespace {

void run(harness::Context& ctx) {
  const util::Flags& flags = ctx.flags();
  const Params params{flags.get_int("c", 16)};
  const int max_p = static_cast<int>(flags.get_int("max_p", ctx.quick() ? 2 : 4));
  util::ThreadPool& pool = util::global_pool();

  ctx.csv({"U_over_c", "p", "gap_printed", "gap_equalized", "gap_printed_norm_sqrt",
           "gap_equalized_norm_sqrt"});

  util::Table out({"U/c", "p", "gap printed", "gap equalzd", "prt/√(cU)", "eq/√(cU)",
                   "eq/U %"});

  const std::vector<Ticks> ratios =
      ctx.quick() ? std::vector<Ticks>{64, 128, 256}
                  : std::vector<Ticks>{128, 256, 512, 1024, 2048, 4096};
  std::vector<double> sqrt_u, eq_gaps;
  for (const Ticks ratio : ratios) {
    const Ticks u = ratio * params.c;
    const double ud = static_cast<double>(u);
    const double scale = std::sqrt(static_cast<double>(params.c) * ud);
    const auto table = solver::solve_fast(max_p, u, params, &pool);
    for (int p = 1; p <= max_p; ++p) {
      const AdaptiveGuidelinePolicy printed(PivotRule::kAsPrinted);
      const EqualizedGuidelinePolicy equalized;
      const Ticks gap_pr =
          table.value(p, u) - solver::evaluate_policy(printed, u, p, params, &pool);
      const Ticks gap_eq =
          table.value(p, u) - solver::evaluate_policy(equalized, u, p, params, &pool);
      out.add_row({util::Table::fmt(static_cast<long long>(ratio)),
                   util::Table::fmt(static_cast<long long>(p)),
                   util::Table::fmt(static_cast<long long>(gap_pr)),
                   util::Table::fmt(static_cast<long long>(gap_eq)),
                   util::Table::fmt(static_cast<double>(gap_pr) / scale, 3),
                   util::Table::fmt(static_cast<double>(gap_eq) / scale, 3),
                   util::Table::fmt(100.0 * static_cast<double>(gap_eq) / ud, 3)});
      ctx.write_csv_row({static_cast<double>(ratio), static_cast<double>(p),
                         static_cast<double>(gap_pr), static_cast<double>(gap_eq),
                         static_cast<double>(gap_pr) / scale,
                         static_cast<double>(gap_eq) / scale});
      if (p == 2) {
        sqrt_u.push_back(std::sqrt(ud));
        eq_gaps.push_back(static_cast<double>(gap_eq));
      }
    }
    out.add_rule();
  }
  ctx.table(out, "Deviation from optimality, c = " + std::to_string(params.c) +
                     " ticks");

  if (sqrt_u.size() >= 2) {
    const auto fit = util::fit_linear(sqrt_u, eq_gaps);
    ctx.metric("equalized_gap_p2_sqrtU_slope", fit.slope);
    ctx.text("equalized gap (p=2) ≈ " + util::Table::fmt(fit.intercept, 6) + " + " +
             util::Table::fmt(fit.slope, 6) + "·√U   (r²=" +
             util::Table::fmt(fit.r2, 4) +
             ")\nA near-zero √U slope for the equalized guideline is the\n"
             "empirical form of '§5.2: optimal up to low-order additive terms'.");
  }
}

}  // namespace

const harness::Experiment& experiment_adaptive_vs_optimal() {
  static const harness::Experiment e{
      "E5", "adaptive_vs_optimal", "§5.2 guideline deviation from the DP optimum",
      "bench_adaptive_vs_optimal",
      "W(p)[U] − W(guideline) for the printed and equalized guidelines across a "
      "U sweep, normalized by √(cU) and by U, plus a gap ≈ a + b·√U fit whose "
      "near-zero slope is the empirical form of '§5.2: optimal up to low-order "
      "additive terms'.",
      run};
  return e;
}

}  // namespace nowsched::bench
