// E14 — scenario sweep: sim::BatchRunner throughput across the GENERATED
// workload space. Where E13 hand-builds one cache-friendly mix, this
// experiment asks the ScenarioGenerator for batches along the axes the
// generator opens: contract-class folding (fully folded -> fully
// heterogeneous), the owner-process mix (including the Markov-modulated /
// inhomogeneous / bursty processes), and correlated farm groups — and
// measures sessions/sec and solve-cache behaviour for each profile — cold
// (fresh RAM cache) and warm-start (cold RAM cache over a per-profile
// pre-baked read-only persistent store, solver/table_store.h). Every
// profile is also run with and without the pool and checked for the batch
// determinism contract (bit-identical aggregates, including the mapped
// tier), so the sweep doubles as an end-to-end exercise of the generator ->
// batch -> cache -> store pipeline on every regeneration.
#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/harness.h"

#include "sim/batch_runner.h"
#include "sim/scenario_gen.h"
#include "solver/table_store.h"
#include "util/thread_pool.h"

namespace nowsched::bench {
namespace {

struct Profile {
  const char* name;
  sim::ScenarioDomain domain;
  bool farms = false;  ///< draw correlated farm groups instead of batch()
};

std::vector<Profile> make_profiles(bool quick) {
  const Ticks max_u = quick ? 4096 : 16384;

  Profile folded;
  folded.name = "folded";
  folded.domain.policies = {sim::PolicyKind::kDpOptimal};
  folded.domain.max_lifespan = max_u;
  folded.domain.contract_classes = 4;
  folded.domain.class_fraction = 1.0;  // every contract from a class

  Profile mixed;
  mixed.name = "mixed";
  mixed.domain.max_lifespan = max_u;
  mixed.domain.contract_classes = 8;
  mixed.domain.class_fraction = 0.5;

  Profile hetero;
  hetero.name = "heterogeneous";
  hetero.domain.policies = {sim::PolicyKind::kDpOptimal};
  hetero.domain.max_lifespan = max_u;
  hetero.domain.contract_classes = 0;  // every session its own contract

  Profile farms;
  farms.name = "correlated-farms";
  farms.domain.max_lifespan = max_u;
  farms.domain.contract_classes = 6;
  farms.domain.farm_size = 8;
  farms.farms = true;

  return {folded, mixed, hetero, farms};
}

std::vector<sim::ScenarioSpec> draw(const Profile& profile, std::size_t sessions,
                                    std::uint64_t seed) {
  sim::ScenarioGenerator gen(profile.domain, seed);
  if (!profile.farms) return gen.batch(sessions);
  std::vector<sim::ScenarioSpec> specs;
  while (specs.size() < sessions) {
    for (auto& spec : gen.farm_group(profile.domain.farm_size)) {
      specs.push_back(spec);
    }
  }
  specs.resize(sessions);
  return specs;
}

void run(harness::Context& ctx) {
  const util::Flags& flags = ctx.flags();
  const std::size_t sessions = static_cast<std::size_t>(
      flags.get_int("sessions", ctx.quick() ? 96 : 768));
  const std::size_t threads =
      static_cast<std::size_t>(flags.get_int("threads", 4));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 0xE14));
  const int reps = ctx.quick() ? 1 : 2;

  ctx.csv({"profile", "sessions", "wall_ms", "sessions_per_sec", "hit_rate",
           "resident_mb", "mapped_sessions_per_sec", "store_hits",
           "banked_total"});
  util::Table out({"profile", "wall ms", "sessions/s", "hit rate", "resident MB",
                   "mapped s/s", "store hits", "banked total"});

  double folded_per_sec = 0.0, hetero_per_sec = 0.0, folded_hit = 0.0;
  double folded_mapped_per_sec = 0.0, hetero_mapped_per_sec = 0.0;
  util::ThreadPool pool(threads);
  harness::ScratchDir store_root("e14-store");

  for (const Profile& profile : make_profiles(ctx.quick())) {
    const auto specs = draw(profile, sessions, seed);
    std::string store_dir = store_root.path();
    store_dir += "/";
    store_dir += profile.name;

    // Determinism gate: pooled and serial runs must agree bit-for-bit. The
    // serial run also bakes this profile's persistent store (its spills
    // fill the directory the warm-start run below mounts read-only).
    sim::BatchOptions serial_opts;
    serial_opts.cache.store = std::make_shared<solver::MappedTableStore>(
        solver::MappedTableStore::Options{store_dir, false});
    sim::BatchRunner serial_runner(serial_opts);
    const auto serial = serial_runner.run(specs);

    sim::BatchResult result;
    const double ms = harness::time_best_of_ms(reps, [&] {
      sim::BatchOptions opts;
      opts.pool = &pool;
      sim::BatchRunner runner(opts);
      result = runner.run(specs);
    });
    if (result.aggregate.banked_work != serial.aggregate.banked_work ||
        result.aggregate.lifespan_used != serial.aggregate.lifespan_used) {
      throw std::logic_error(std::string("scenario sweep profile '") +
                             profile.name +
                             "' diverged between pooled and serial runs");
    }

    // Warm-start tier: a cold RAM cache over the baked store — dp-optimal
    // misses become mmap reads. Must stay bit-identical too.
    sim::BatchResult mapped;
    auto warm_store = std::make_shared<solver::MappedTableStore>(
        solver::MappedTableStore::Options{store_dir, /*read_only=*/true});
    const double mapped_ms = harness::time_best_of_ms(reps, [&] {
      sim::BatchOptions opts;
      opts.pool = &pool;
      opts.cache.store = warm_store;
      sim::BatchRunner runner(opts);
      mapped = runner.run(specs);
    });
    if (mapped.aggregate.banked_work != serial.aggregate.banked_work ||
        mapped.aggregate.lifespan_used != serial.aggregate.lifespan_used) {
      throw std::logic_error(std::string("scenario sweep profile '") +
                             profile.name +
                             "' diverged between mapped-store and serial runs");
    }

    const double per_sec =
        ms > 0 ? static_cast<double>(sessions) / (ms / 1000.0) : 0.0;
    const double mapped_per_sec =
        mapped_ms > 0 ? static_cast<double>(sessions) / (mapped_ms / 1000.0)
                      : 0.0;
    const double hit_rate = result.cache.hit_rate();
    const double resident_mb =
        static_cast<double>(result.cache.resident_bytes) / (1024.0 * 1024.0);
    if (std::string(profile.name) == "folded") {
      folded_per_sec = per_sec;
      folded_mapped_per_sec = mapped_per_sec;
      folded_hit = hit_rate;
    }
    if (std::string(profile.name) == "heterogeneous") {
      hetero_per_sec = per_sec;
      hetero_mapped_per_sec = mapped_per_sec;
    }

    ctx.write_csv_row({profile.name, std::to_string(sessions),
                       util::Table::fmt(ms, 5), util::Table::fmt(per_sec, 5),
                       util::Table::fmt(hit_rate, 4),
                       util::Table::fmt(resident_mb, 4),
                       util::Table::fmt(mapped_per_sec, 5),
                       std::to_string(mapped.cache.store_hits),
                       std::to_string(static_cast<long long>(
                           result.aggregate.banked_work))});
    out.add_row({profile.name, util::Table::fmt(ms, 5),
                 util::Table::fmt(per_sec, 5), util::Table::fmt(hit_rate, 4),
                 util::Table::fmt(resident_mb, 4),
                 util::Table::fmt(mapped_per_sec, 5),
                 util::Table::fmt(static_cast<unsigned long long>(
                     mapped.cache.store_hits)),
                 util::Table::fmt(static_cast<long long>(
                     result.aggregate.banked_work))});
  }

  ctx.metric("folded_sessions_per_sec", folded_per_sec);
  ctx.metric("hetero_sessions_per_sec", hetero_per_sec);
  ctx.metric("folded_hit_rate", folded_hit);
  ctx.metric("folded_over_hetero",
             hetero_per_sec > 0 ? folded_per_sec / hetero_per_sec : 0.0);
  ctx.metric("folded_mapped_sessions_per_sec", folded_mapped_per_sec);
  ctx.metric("hetero_mapped_over_cold",
             hetero_per_sec > 0 ? hetero_mapped_per_sec / hetero_per_sec : 0.0);

  ctx.table(out, std::to_string(sessions) +
                     " generated sessions per profile, pool of " +
                     std::to_string(threads) + " threads, seed " +
                     std::to_string(seed));
  ctx.text(
      "Reading: `folded` draws every dp-optimal contract from 4 canonical\n"
      "classes (the cache-friendliest shape the generator emits),\n"
      "`heterogeneous` gives every session its own contract (worst case for\n"
      "the solve cache: hit rate ~0, every table solved once),\n"
      "`mixed` and `correlated-farms` sit in between with the full owner-\n"
      "process mix (Markov-modulated, inhomogeneous, bursty, shared-shock\n"
      "farms). `folded_over_hetero` is the headline: how much workload\n"
      "structure the cache converts into throughput. `mapped s/s` reruns the\n"
      "profile with a cold RAM cache over its pre-baked read-only persistent\n"
      "store — the warm-start tier pays off most where the RAM cache helps\n"
      "least (`hetero_mapped_over_cold`: every one-off table becomes an mmap\n"
      "read instead of a solve). Every profile's pooled and mapped-store\n"
      "aggregates matched its serial aggregate bit-for-bit.");
}

}  // namespace

const harness::Experiment& experiment_scenario_sweep() {
  static const harness::Experiment e{
      "E14", "scenario_sweep",
      "Scenario sweep: batch throughput across the generated workload space",
      "bench_scenario_sweep",
      "sim::BatchRunner throughput over ScenarioGenerator batches along the "
      "cache-affinity axis (contract classes folded -> fully heterogeneous), "
      "the owner-process mix, and correlated farm groups — each profile cold "
      "and warm-started from a pre-baked mapped table store — with "
      "bit-identical pooled / mapped / serial aggregates asserted per "
      "profile.",
      run};
  return e;
}

}  // namespace nowsched::bench
