// P2 — simulator throughput: event engine, single sessions, and farms.
#include <benchmark/benchmark.h>

#include <memory>

#include "adversary/heuristics.h"
#include "adversary/stochastic.h"
#include "core/equalized.h"
#include "core/guidelines.h"
#include "sim/farm.h"
#include "sim/session.h"

using namespace nowsched;

namespace {

void BM_EventQueueChurn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    for (std::size_t i = 0; i < n; ++i) {
      sim.schedule_at(static_cast<Ticks>((i * 2654435761u) % (4 * n)),
                      [](sim::Simulator&) {});
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueChurn)->Range(1 << 10, 1 << 16);

void BM_SessionModelOnly(benchmark::State& state) {
  const AdaptiveGuidelinePolicy policy;
  adversary::PoissonAdversary owner(500.0, 42);
  const Opportunity opp{16 * 4096, 4};
  for (auto _ : state) {
    owner.reset(42);
    benchmark::DoNotOptimize(sim::run_session(policy, owner, opp, Params{16}));
  }
}
BENCHMARK(BM_SessionModelOnly);

void BM_SessionWithTaskBag(benchmark::State& state) {
  const EqualizedGuidelinePolicy policy;
  adversary::PoissonAdversary owner(500.0, 42);
  const Opportunity opp{16 * 4096, 4};
  for (auto _ : state) {
    owner.reset(42);
    auto bag = sim::TaskBag::uniform(4096, 13);
    benchmark::DoNotOptimize(sim::run_session(policy, owner, opp, Params{16}, &bag));
  }
}
BENCHMARK(BM_SessionWithTaskBag);

void BM_FarmScaling(benchmark::State& state) {
  const auto stations = static_cast<std::size_t>(state.range(0));
  auto policy = std::make_shared<EqualizedGuidelinePolicy>();
  for (auto _ : state) {
    std::vector<sim::WorkstationConfig> cfgs;
    for (std::size_t i = 0; i < stations; ++i) {
      sim::WorkstationConfig cfg;
      // Assemble via append rather than operator+: string concatenation of a
      // literal with std::to_string trips a GCC 12 -Wrestrict false positive
      // (GCC bug 105651) when inlined under -O2.
      cfg.name = "b";
      cfg.name += std::to_string(i);
      cfg.opportunity = Opportunity{16 * 1024, 2};
      cfg.params = Params{16};
      cfg.policy = policy;
      cfg.owner = std::make_shared<adversary::PoissonAdversary>(3000.0, 7 + i);
      cfgs.push_back(std::move(cfg));
    }
    auto bag = sim::TaskBag::uniform(stations * 2048, 11);
    benchmark::DoNotOptimize(sim::run_farm(cfgs, bag));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stations));
}
BENCHMARK(BM_FarmScaling)->RangeMultiplier(2)->Range(1, 64);

void BM_TaskBagPacking(benchmark::State& state) {
  for (auto _ : state) {
    auto bag = sim::TaskBag::uniform(1 << 14, 7);
    while (!bag.done()) {
      auto batch = bag.take_batch(700);
      bag.mark_completed(batch);
    }
    benchmark::DoNotOptimize(bag.completed_work());
  }
}
BENCHMARK(BM_TaskBagPacking);

}  // namespace

BENCHMARK_MAIN();
