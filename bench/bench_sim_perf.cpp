// E11 — simulator throughput: event engine, single sessions, and task-bag
// packing. Self-timed on the harness clock; the farm-scale sweep lives in
// E12 (bench_farm_scaling).
#include <memory>
#include <vector>

#include "harness/harness.h"

#include "adversary/stochastic.h"
#include "core/equalized.h"
#include "core/guidelines.h"
#include "sim/session.h"
#include "sim/taskbag.h"

namespace nowsched::bench {
namespace {

void run(harness::Context& ctx) {
  const int reps = ctx.quick() ? 1 : 3;

  // 1. Raw event-queue churn: schedule n callbacks in scrambled time order,
  //    drain the queue.
  {
    util::Table out({"events", "ms", "events/s"});
    const std::vector<std::size_t> sizes =
        ctx.quick() ? std::vector<std::size_t>{1u << 10, 1u << 12}
                    : std::vector<std::size_t>{1u << 10, 1u << 13, 1u << 16};
    for (std::size_t n : sizes) {
      const double ms = harness::time_best_of_ms(reps, [&] {
        sim::Simulator sim;
        for (std::size_t i = 0; i < n; ++i) {
          sim.schedule_at(static_cast<Ticks>((i * 2654435761u) % (4 * n)),
                          [](sim::Simulator&) {});
        }
        sim.run();
      });
      harness::write_perf_row(ctx, "event_churn", static_cast<double>(n), ms, static_cast<double>(n));
      out.add_row({util::Table::fmt(static_cast<unsigned long long>(n)),
                   util::Table::fmt(ms, 5),
                   util::Table::fmt(ms > 0 ? static_cast<double>(n) / (ms / 1000.0)
                                           : 0.0,
                                    5)});
      if (n == sizes.back()) {
        ctx.metric("event_churn_events_per_sec",
                   ms > 0 ? static_cast<double>(n) / (ms / 1000.0) : 0.0);
      }
    }
    ctx.table(out, "event-queue churn (schedule + drain)");
  }

  // 2. Full sessions: model-only and with a task bag attached.
  {
    const int sessions = ctx.quick() ? 100 : 1000;
    const Opportunity opp{16 * 4096, 4};
    const AdaptiveGuidelinePolicy adaptive;
    const EqualizedGuidelinePolicy equalized;

    const double model_ms = harness::time_best_of_ms(reps, [&] {
      adversary::PoissonAdversary owner(500.0, 42);
      for (int i = 0; i < sessions; ++i) {
        owner.reset(42);
        sim::run_session(adaptive, owner, opp, Params{16});
      }
    });
    const double bag_ms = harness::time_best_of_ms(reps, [&] {
      adversary::PoissonAdversary owner(500.0, 42);
      for (int i = 0; i < sessions; ++i) {
        owner.reset(42);
        auto bag = sim::TaskBag::uniform(4096, 13);
        sim::run_session(equalized, owner, opp, Params{16}, &bag);
      }
    });
    harness::write_perf_row(ctx, "session_model_only", static_cast<double>(sessions), model_ms,
           static_cast<double>(sessions));
    harness::write_perf_row(ctx, "session_with_taskbag", static_cast<double>(sessions), bag_ms,
           static_cast<double>(sessions));
    ctx.metric("sessions_per_sec_model_only",
               model_ms > 0 ? sessions / (model_ms / 1000.0) : 0.0);

    util::Table out({"variant", "sessions", "ms", "us/session"});
    out.add_row({"model only", util::Table::fmt(static_cast<long long>(sessions)),
                 util::Table::fmt(model_ms, 5),
                 util::Table::fmt(model_ms * 1000.0 / sessions, 5)});
    out.add_row({"with task bag", util::Table::fmt(static_cast<long long>(sessions)),
                 util::Table::fmt(bag_ms, 5),
                 util::Table::fmt(bag_ms * 1000.0 / sessions, 5)});
    ctx.table(out, "single sessions, U = 65536, p = 4, Poisson owner");
  }

  // 3. Task-bag packing: draining a bag through batched take/complete.
  {
    const std::size_t tasks = ctx.quick() ? (1u << 12) : (1u << 14);
    const double ms = harness::time_best_of_ms(reps, [&] {
      auto bag = sim::TaskBag::uniform(tasks, 7);
      while (!bag.done()) {
        auto batch = bag.take_batch(700);
        bag.mark_completed(batch);
      }
    });
    harness::write_perf_row(ctx, "taskbag_packing", static_cast<double>(tasks), ms,
           static_cast<double>(tasks));
    util::Table out({"tasks", "ms", "tasks/s"});
    out.add_row({util::Table::fmt(static_cast<unsigned long long>(tasks)),
                 util::Table::fmt(ms, 5),
                 util::Table::fmt(ms > 0 ? static_cast<double>(tasks) / (ms / 1000.0)
                                         : 0.0,
                                  5)});
    ctx.table(out, "task-bag packing (batch = 700 ticks)");
  }
}

}  // namespace

const harness::Experiment& experiment_sim_perf() {
  static const harness::Experiment e{
      "E11", "sim_perf", "Simulator throughput baselines",
      "bench_sim_perf",
      "Wall-clock baselines for the discrete-event simulator: raw event-queue "
      "churn, full scheduling sessions with and without a task bag attached, "
      "and task-bag packing throughput.",
      run};
  return e;
}

}  // namespace nowsched::bench
