// Experiment-runner harness shared by all bench binaries.
//
// Each experiment E1–E14 declares its grids ONCE inside a run function that
// receives a Context. The Context tees every table and note to three
// synchronized artifacts:
//   * the console (same ASCII layout the standalone binaries always printed),
//   * a markdown section for EXPERIMENTS.md (tables via util::Table::to_markdown),
//   * a CSV series under <outdir>/<slug>.csv (via util::CsvWriter),
// and the runner wraps the whole run in a wall clock, writing a
// BENCH_<slug>.json timing record next to the CSV.
//
// Tiers: --tier=full reproduces the paper-scale grids committed in
// EXPERIMENTS.md; --tier=quick (or --quick) shrinks every grid to a CI smoke
// that must finish in seconds. Experiments branch on Context::quick() at the
// single place their grid is declared.
//
// Registration is explicit — bench_<slug>.cpp defines
// `const Experiment& experiment_<slug>()` and all_experiments.cpp lists them
// in E-order — so no static-initializer/linker-GC tricks are involved and the
// registry contents are identical in every binary that links the harness.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/csv.h"
#include "util/flags.h"
#include "util/table.h"

namespace nowsched::bench::harness {

enum class Tier { kQuick, kFull };

/// "quick" / "full".
std::string tier_name(Tier tier);

/// Parses --tier=quick|full (or the --quick shorthand); defaults to kFull.
/// An unknown tier name is a usage error (exit 2), like malformed numbers.
Tier tier_from_flags(const util::Flags& flags);

class Context {
 public:
  /// Artifacts land in `outdir` (created on demand). `echo` mirrors tables
  /// and notes to stdout — on for standalone binaries and the driver, off in
  /// unit tests.
  Context(std::string slug, Tier tier, const util::Flags& flags, std::string outdir,
          bool echo = true);

  Tier tier() const noexcept { return tier_; }
  bool quick() const noexcept { return tier_ == Tier::kQuick; }
  const util::Flags& flags() const noexcept { return flags_; }
  const std::string& outdir() const noexcept { return outdir_; }

  /// Opens <outdir>/<slug>.csv with this header on first call and returns the
  /// writer. Subsequent calls return the same writer (the header argument is
  /// ignored); rows written through it are counted for the JSON record.
  util::CsvWriter& csv(const std::vector<std::string>& header);
  void write_csv_row(const std::vector<std::string>& cells);
  void write_csv_row(const std::vector<double>& values);

  /// Emit a table: ASCII to the console, pipe-table to the markdown section.
  void table(const util::Table& t, const std::string& caption = "");

  /// Emit a prose paragraph (shape checks, reading guides) to both sinks.
  void text(const std::string& paragraph);

  /// Record a named scalar for the BENCH_<slug>.json `metrics` object
  /// (e.g. headline throughput numbers worth tracking across commits).
  void metric(const std::string& key, double value);

  // -- accessors used by the runner --------------------------------------
  const std::string& markdown() const noexcept { return markdown_; }
  std::size_t csv_rows() const noexcept { return csv_rows_; }
  std::string csv_path() const;
  const std::map<std::string, double>& metrics() const noexcept { return metrics_; }

 private:
  std::string slug_;
  Tier tier_;
  const util::Flags& flags_;
  std::string outdir_;
  bool echo_;
  std::unique_ptr<util::CsvWriter> csv_;
  std::size_t csv_rows_ = 0;
  std::string markdown_;
  std::map<std::string, double> metrics_;
};

struct Experiment {
  std::string id;       ///< "E1" … "E14" — EXPERIMENTS.md section order.
  std::string slug;     ///< artifact basename: <slug>.csv, BENCH_<slug>.json
  std::string title;    ///< section heading
  std::string binary;   ///< standalone executable name
  std::string summary;  ///< one paragraph under the heading
  std::function<void(Context&)> run;
};

class Registry {
 public:
  static Registry& instance();

  /// Id and slug must be unique; duplicates throw std::logic_error.
  void add(const Experiment& e);

  /// Lookup by id ("E3") or slug ("nonadaptive"); nullptr when absent.
  const Experiment* find(const std::string& id_or_slug) const;
  const std::vector<Experiment>& experiments() const noexcept { return experiments_; }
  std::size_t size() const noexcept { return experiments_.size(); }

 private:
  std::vector<Experiment> experiments_;
};

/// Registers E1–E14 in order. Idempotent (second call is a no-op), so tests,
/// standalone binaries, and the driver can all call it unconditionally.
void register_all_experiments();

struct RunResult {
  std::string id;
  std::string slug;
  bool ok = false;
  std::string error;       ///< exception text when !ok
  double wall_ms = 0.0;
  std::size_t csv_rows = 0;
  std::string markdown;    ///< full "## E<n> — title" section
  std::string csv_path;    ///< empty when the experiment wrote no CSV
  std::string json_path;   ///< BENCH_<slug>.json written by the runner
};

/// Runs one experiment under a wall clock: builds the Context, invokes
/// e.run, assembles the markdown section, and writes BENCH_<slug>.json.
/// Exceptions from the experiment are captured into the result (ok=false);
/// a JSON record is still written so CI can see the failure.
/// `artifact_prefix` is the directory prefix the markdown section uses when
/// linking the CSV/JSON artifacts — the driver passes the outdir relative to
/// the document it writes; empty means use `outdir` as-is.
RunResult run_experiment(const Experiment& e, Tier tier, const util::Flags& flags,
                         const std::string& outdir, bool echo = true,
                         const std::string& artifact_prefix = "");

/// Shared main() body for the standalone bench binaries: registers all
/// experiments, parses flags (--tier/--quick/--outdir), runs `id_or_slug`,
/// and returns a process exit code.
int standalone_main(const std::string& id_or_slug, int argc, const char* const* argv);

/// Hardware-class tag stamped into every BENCH_<slug>.json:
/// "<hardware threads>t-<best ISA the CPU can run>", e.g. "8t-avx2",
/// "4t-neon", "1t-scalar". Built from the CPU's capabilities (not the
/// kernel actually dispatched), so two runs on the same machine always
/// share a class regardless of NOWSCHED_KERNEL overrides.
/// compare_baselines.py refuses (warn-only) to ratio-gate records from
/// different classes — a laptop baseline must not fail CI's timings.
std::string host_class();

/// Best-of-`reps` wall time of fn in milliseconds (fn runs reps times).
/// The perf experiments (E10/E11) use this instead of Google Benchmark so
/// they share the tier/CSV/JSON plumbing with the model experiments.
double time_best_of_ms(int reps, const std::function<void()>& fn);

/// Process-unique scratch directory under the system temp dir, removed on
/// destruction. The store-tier experiments (E13/E14) bake persistent table
/// stores into one so baseline regeneration leaves no residue behind.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& label);
  ~ScratchDir();
  ScratchDir(const ScratchDir&) = delete;
  ScratchDir& operator=(const ScratchDir&) = delete;
  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

/// The shared CSV schema of the timing experiments:
/// section,x,ms,items_per_sec. Opens the context's CSV with that header on
/// first use, so a perf experiment's whole series goes through this one
/// formatter.
void write_perf_row(Context& ctx, const std::string& section, double x, double ms,
                    double items);

}  // namespace nowsched::bench::harness
