// Shared main() for the standalone bench binaries. CMake compiles this file
// once per binary with NOWSCHED_EXPERIMENT_ID set to the experiment it runs:
//
//   ./bench_table1 --tier=quick --outdir=out --c=32
//
// All experiments are linked in, so `--experiment=E5` can redirect any
// binary, but the baked-in id is the default (and what the CMake target
// name promises).
#include "harness/harness.h"

#ifndef NOWSCHED_EXPERIMENT_ID
#error "compile with -DNOWSCHED_EXPERIMENT_ID=\"E<n>\""
#endif

int main(int argc, char** argv) {
  const nowsched::util::Flags flags(argc, argv);
  const std::string id = flags.get("experiment", NOWSCHED_EXPERIMENT_ID);
  return nowsched::bench::harness::standalone_main(id, argc, argv);
}
