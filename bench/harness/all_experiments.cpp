// The single authoritative list of experiments, in EXPERIMENTS.md order.
// Each bench_<slug>.cpp defines its experiment_<slug>() factory; adding an
// experiment means adding one line here (the registry test counts them).
#include "harness/harness.h"

namespace nowsched::bench {

const harness::Experiment& experiment_table1();
const harness::Experiment& experiment_table2();
const harness::Experiment& experiment_nonadaptive();
const harness::Experiment& experiment_theorem51();
const harness::Experiment& experiment_adaptive_vs_optimal();
const harness::Experiment& experiment_policy_comparison();
const harness::Experiment& experiment_observations();
const harness::Experiment& experiment_stochastic();
const harness::Experiment& experiment_checkpoint();
const harness::Experiment& experiment_solver_perf();
const harness::Experiment& experiment_sim_perf();
const harness::Experiment& experiment_farm_scaling();
const harness::Experiment& experiment_batch_scaling();
const harness::Experiment& experiment_scenario_sweep();
const harness::Experiment& experiment_sched_service();
const harness::Experiment& experiment_policy_racing();
const harness::Experiment& experiment_rpc_roundtrip();

}  // namespace nowsched::bench

namespace nowsched::bench::harness {

void register_all_experiments() {
  static const bool registered = [] {
    auto& registry = Registry::instance();
    registry.add(experiment_table1());              // E1
    registry.add(experiment_table2());              // E2
    registry.add(experiment_nonadaptive());         // E3
    registry.add(experiment_theorem51());           // E4
    registry.add(experiment_adaptive_vs_optimal()); // E5
    registry.add(experiment_policy_comparison());   // E6
    registry.add(experiment_observations());        // E7
    registry.add(experiment_stochastic());          // E8
    registry.add(experiment_checkpoint());          // E9
    registry.add(experiment_solver_perf());         // E10
    registry.add(experiment_sim_perf());            // E11
    registry.add(experiment_farm_scaling());        // E12
    registry.add(experiment_batch_scaling());       // E13
    registry.add(experiment_scenario_sweep());      // E14
    registry.add(experiment_sched_service());       // E15
    registry.add(experiment_policy_racing());       // E16
    registry.add(experiment_rpc_roundtrip());       // E17
    return true;
  }();
  (void)registered;
}

}  // namespace nowsched::bench::harness
