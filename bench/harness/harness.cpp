#include "harness/harness.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/simd.h"

#if defined(_WIN32)
#include <process.h>
#else
#include <unistd.h>
#endif

namespace nowsched::bench::harness {

namespace {

/// Minimal JSON string escape (quotes, backslashes, control chars).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

}  // namespace

std::string host_class() {
  const unsigned threads = std::max(1u, std::thread::hardware_concurrency());
  const char* isa = "scalar";
  if (util::simd::cpu_supports_avx2()) {
    isa = "avx2";
  } else if (util::simd::cpu_supports_neon()) {
    isa = "neon";
  }
  return std::to_string(threads) + "t-" + isa;
}

std::string tier_name(Tier tier) {
  return tier == Tier::kQuick ? "quick" : "full";
}

Tier tier_from_flags(const util::Flags& flags) {
  if (flags.get_bool("quick", false)) return Tier::kQuick;
  const std::string name = flags.get("tier", "full");
  if (name == "quick") return Tier::kQuick;
  if (name == "full") return Tier::kFull;
  flags.usage_error("tier", "quick or full", name);
}

// ---------------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------------

Context::Context(std::string slug, Tier tier, const util::Flags& flags,
                 std::string outdir, bool echo)
    : slug_(std::move(slug)),
      tier_(tier),
      flags_(flags),
      outdir_(std::move(outdir)),
      echo_(echo) {}

util::CsvWriter& Context::csv(const std::vector<std::string>& header) {
  if (!csv_) {
    std::error_code ec;
    std::filesystem::create_directories(outdir_, ec);
    csv_ = std::make_unique<util::CsvWriter>(outdir_ + "/" + slug_ + ".csv", header);
  }
  return *csv_;
}

void Context::write_csv_row(const std::vector<std::string>& cells) {
  if (!csv_) throw std::logic_error("Context::csv(header) must be called first");
  csv_->write_row(cells);
  ++csv_rows_;
}

void Context::write_csv_row(const std::vector<double>& values) {
  if (!csv_) throw std::logic_error("Context::csv(header) must be called first");
  csv_->write_row(values);
  ++csv_rows_;
}

void Context::table(const util::Table& t, const std::string& caption) {
  if (echo_) t.print(std::cout, caption.empty() ? "" : "\n" + caption);
  if (!caption.empty()) markdown_ += "**" + caption + "**\n\n";
  markdown_ += t.to_markdown();
  markdown_ += '\n';
}

void Context::text(const std::string& paragraph) {
  if (echo_) std::cout << paragraph << '\n';
  markdown_ += paragraph;
  markdown_ += "\n\n";
}

void Context::metric(const std::string& key, double value) {
  metrics_[key] = value;
}

std::string Context::csv_path() const {
  return csv_ ? csv_->path() : std::string{};
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::add(const Experiment& e) {
  for (const auto& existing : experiments_) {
    if (existing.id == e.id || existing.slug == e.slug) {
      throw std::logic_error("duplicate experiment registration: " + e.id + "/" +
                             e.slug);
    }
  }
  experiments_.push_back(e);
}

const Experiment* Registry::find(const std::string& id_or_slug) const {
  for (const auto& e : experiments_) {
    if (e.id == id_or_slug || e.slug == id_or_slug) return &e;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

RunResult run_experiment(const Experiment& e, Tier tier, const util::Flags& flags,
                         const std::string& outdir, bool echo,
                         const std::string& artifact_prefix) {
  RunResult result;
  result.id = e.id;
  result.slug = e.slug;

  Context ctx(e.slug, tier, flags, outdir, echo);
  if (echo) {
    std::cout << "=== " << e.id << " — " << e.title << " ===\n";
  }

  const auto start = std::chrono::steady_clock::now();
  try {
    e.run(ctx);
    result.ok = true;
  } catch (const std::exception& ex) {
    result.error = ex.what();
  } catch (...) {
    result.error = "unknown exception";
  }
  const auto stop = std::chrono::steady_clock::now();
  result.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  result.csv_rows = ctx.csv_rows();
  result.csv_path = ctx.csv_path();

  // Markdown section. Wall-clock goes only into the JSON record so that
  // regenerating EXPERIMENTS.md on a different machine produces a clean diff.
  const std::string prefix = artifact_prefix.empty() ? outdir : artifact_prefix;
  std::ostringstream md;
  md << "## " << e.id << " — " << e.title << "\n\n";
  md << "*Binary:* `" << e.binary << "` · *tier:* " << tier_name(tier);
  if (!result.csv_path.empty()) {
    md << " · *series:* `" << prefix << "/" << e.slug << ".csv`";
  }
  md << " · *timing:* `" << prefix << "/BENCH_" << e.slug << ".json`\n\n";
  md << e.summary << "\n\n";
  if (!result.ok) {
    md << "**RUN FAILED:** " << result.error << "\n\n";
  }
  md << ctx.markdown();
  result.markdown = md.str();

  // JSON timing record — written even on failure so the perf gate can tell
  // "crashed" from "never ran".
  std::error_code ec;
  std::filesystem::create_directories(outdir, ec);
  result.json_path = outdir + "/BENCH_" + e.slug + ".json";
  std::ofstream json(result.json_path);
  if (json) {
    json << "{\n"
         << "  \"id\": \"" << json_escape(e.id) << "\",\n"
         << "  \"slug\": \"" << json_escape(e.slug) << "\",\n"
         << "  \"title\": \"" << json_escape(e.title) << "\",\n"
         << "  \"binary\": \"" << json_escape(e.binary) << "\",\n"
         << "  \"tier\": \"" << tier_name(tier) << "\",\n"
         << "  \"host_threads\": "
         << std::max(1u, std::thread::hardware_concurrency()) << ",\n"
         << "  \"host_class\": \"" << json_escape(host_class()) << "\",\n"
         << "  \"ok\": " << (result.ok ? "true" : "false") << ",\n"
         << "  \"error\": \"" << json_escape(result.error) << "\",\n"
         << "  \"wall_ms\": " << json_number(result.wall_ms) << ",\n"
         << "  \"csv\": \""
         << json_escape(result.csv_path.empty() ? "" : e.slug + ".csv") << "\",\n"
         << "  \"csv_rows\": " << result.csv_rows << ",\n"
         << "  \"metrics\": {";
    bool first = true;
    for (const auto& [key, value] : ctx.metrics()) {
      if (!first) json << ",";
      json << "\n    \"" << json_escape(key) << "\": " << json_number(value);
      first = false;
    }
    if (!first) json << "\n  ";
    json << "}\n}\n";
  }

  if (echo) {
    if (result.ok) {
      std::cout << "\n[" << e.id << " " << tier_name(tier) << " tier: "
                << util::Table::fmt(result.wall_ms, 4) << " ms";
      if (!result.csv_path.empty()) {
        std::cout << ", " << result.csv_rows << " CSV rows -> " << result.csv_path;
      }
      std::cout << ", timing -> " << result.json_path << "]\n";
    } else {
      std::cout << "\n[" << e.id << " FAILED: " << result.error << "]\n";
    }
  }
  return result;
}

int standalone_main(const std::string& id_or_slug, int argc,
                    const char* const* argv) {
  register_all_experiments();
  const util::Flags flags(argc, argv);
  const Experiment* e = Registry::instance().find(id_or_slug);
  if (e == nullptr) {
    std::fprintf(stderr, "unknown experiment \"%s\"\n", id_or_slug.c_str());
    return 1;
  }
  const Tier tier = tier_from_flags(flags);
  const std::string outdir = flags.get("outdir", "bench_results");
  const RunResult result = run_experiment(*e, tier, flags, outdir);
  return result.ok ? 0 : 1;
}

void write_perf_row(Context& ctx, const std::string& section, double x, double ms,
                    double items) {
  ctx.csv({"section", "x", "ms", "items_per_sec"});
  ctx.write_csv_row({section, util::Table::fmt(x, 9), util::Table::fmt(ms, 6),
                     util::Table::fmt(ms > 0 ? items / (ms / 1000.0) : 0.0, 6)});
}

double time_best_of_ms(int reps, const std::function<void()>& fn) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (rep == 0 || ms < best) best = ms;
  }
  return best;
}

ScratchDir::ScratchDir(const std::string& label) {
#if defined(_WIN32)
  const auto pid = static_cast<unsigned long>(::_getpid());
#else
  const auto pid = static_cast<unsigned long>(::getpid());
#endif
  std::string name = "nowsched-bench-";
  name += label;
  name += "-";
  name += std::to_string(pid);
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  path_ = dir.string();
}

ScratchDir::~ScratchDir() {
  std::error_code ec;
  std::filesystem::remove_all(path_, ec);  // best-effort cleanup
}

}  // namespace nowsched::bench::harness
