// E16 — policy racing: adaptive budget allocation vs fixed allocation on
// the SAME verdict, plus the adversarial regret hunt.
//
// Section 1 races (policy, region) arms under all three allocation modes
// with one (δ, ε) criterion. kUniform is the fixed-allocation baseline —
// every arm pulled every round until the leader separates — so the
// budget-to-verdict ratio uniform_pulls / lucb_pulls is measured INSIDE one
// engine, one scoring path, one scenario stream: the only difference is who
// gets pulled. Racing pays off exactly when most arms are clearly bad; the
// arm set here plants that shape (dp-optimal and guidelines across easy and
// hostile owner regions).
//
// Section 2 runs race::hunt_regret over a guideline-policy root region and
// reports the worst mean-regret (region, policy) pairs — the regions where
// the closed-form guidelines give up the most guaranteed work vs the DP
// optimum. Regret is exact (solver-side), so every number here is
// deterministic and diffable across runs.
#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/harness.h"

#include "race/policy_race.h"
#include "race/regret_hunt.h"
#include "solver/solve_cache.h"
#include "util/thread_pool.h"

namespace nowsched::bench {
namespace {

// Race regions are kept NARROW (tight c and lifespan ranges) so the
// within-arm scenario variance does not drown the between-policy gaps —
// wide-open regions need orders of magnitude more pulls before any
// allocation rule can separate arms.
race::Region bench_region(const std::string& name, sim::OwnerKind owner,
                          Ticks max_lifespan) {
  race::Region region;
  region.name = name;
  region.domain.owners = {owner};
  region.domain.min_c = 8;
  region.domain.max_c = 16;
  region.domain.min_lifespan = max_lifespan / 2;
  region.domain.max_lifespan = max_lifespan;
  region.domain.min_interrupts = 1;
  region.domain.max_interrupts = 3;
  region.domain.contract_classes = 6;
  region.domain.class_fraction = 0.5;
  return region;
}

struct RaceCell {
  race::PolicyRaceResult result;
  double wall_ms = 0.0;
};

constexpr double kDelta = 0.05;
constexpr double kEpsilon = 0.1;

RaceCell run_mode(race::Mode mode, const std::vector<race::Region>& regions,
                  const std::vector<race::PolicyArm>& arms, std::size_t batch,
                  std::size_t cap, util::ThreadPool* pool) {
  race::PolicyRaceOptions options;
  options.race.mode = mode;
  options.race.delta = kDelta;
  options.race.epsilon = kEpsilon;
  options.race.batch = batch;
  options.race.max_total_pulls = cap;
  // Successive halving is fixed-budget by construction; give it a spend in
  // the same ballpark as what LUCB needs to reach its (delta, epsilon) stop,
  // so the table compares like against like.
  options.race.budget = cap / 4;
  options.seed = 0xE16;
  options.batch.pool = pool;
  race::PolicyRace race(regions, arms, options);
  RaceCell cell;
  cell.wall_ms = harness::time_best_of_ms(1, [&] { cell.result = race.run(); });
  return cell;
}

void run(harness::Context& ctx) {
  const util::Flags& flags = ctx.flags();
  const Ticks max_u = flags.get_int("u", ctx.quick() ? 512 : 1024);
  const std::size_t batch =
      static_cast<std::size_t>(flags.get_int("batch", 8));
  const std::size_t cap = static_cast<std::size_t>(
      flags.get_int("cap", ctx.quick() ? 16384 : 32768));
  const std::size_t threads =
      static_cast<std::size_t>(flags.get_int("threads", 4));
  util::ThreadPool pool(threads);

  // ------------------------------------------------------------------
  // Section 1: the same verdict under three allocation modes.
  // ------------------------------------------------------------------
  const std::vector<race::Region> regions = {
      bench_region("poisson", sim::OwnerKind::kPoisson, max_u),
      bench_region("bursty", sim::OwnerKind::kBursty, max_u)};
  const std::vector<race::PolicyArm> arms = {
      {sim::PolicyKind::kDpOptimal, 0},      {sim::PolicyKind::kEqualized, 0},
      {sim::PolicyKind::kAdaptivePaper, 0},  {sim::PolicyKind::kDpOptimal, 1},
      {sim::PolicyKind::kEqualized, 1},      {sim::PolicyKind::kAdaptivePaper, 1}};

  ctx.csv({"mode", "arms", "total_pulls", "rounds", "confident", "best_arm",
           "confident_verdicts", "wall_ms"});
  util::Table race_table(
      {"mode", "pulls", "rounds", "confident", "best arm", "wall ms"});

  std::size_t lucb_pulls = 0, uniform_pulls = 0;
  std::size_t lucb_best = 0, uniform_best = 0;
  for (const race::Mode mode :
       {race::Mode::kLucb, race::Mode::kUniform, race::Mode::kSuccessiveHalving}) {
    const RaceCell cell = run_mode(mode, regions, arms, batch, cap, &pool);
    const race::RaceResult& r = cell.result.race;
    const std::string best = race::arm_label(arms[r.best], regions);
    std::size_t confident_verdicts = 0;
    for (const race::VerdictRecord& v : cell.result.verdicts) {
      if (v.confident) ++confident_verdicts;
    }
    if (mode == race::Mode::kLucb) {
      lucb_pulls = r.total_pulls;
      lucb_best = r.best;
    }
    if (mode == race::Mode::kUniform) {
      uniform_pulls = r.total_pulls;
      uniform_best = r.best;
    }

    ctx.write_csv_row({race::to_string(mode), std::to_string(arms.size()),
                       std::to_string(r.total_pulls), std::to_string(r.rounds),
                       r.confident ? "1" : "0", best,
                       std::to_string(confident_verdicts),
                       util::Table::fmt(cell.wall_ms, 5)});
    race_table.add_row({race::to_string(mode),
                        util::Table::fmt(static_cast<unsigned long long>(r.total_pulls)),
                        util::Table::fmt(static_cast<unsigned long long>(r.rounds)),
                        r.confident ? "yes" : "no", best,
                        util::Table::fmt(cell.wall_ms, 5)});
  }
  if (lucb_best != uniform_best) {
    throw std::logic_error(
        "policy racing: adaptive and fixed allocation disagreed on the best "
        "arm — determinism or bounds bug");
  }
  const double budget_ratio =
      lucb_pulls > 0
          ? static_cast<double>(uniform_pulls) / static_cast<double>(lucb_pulls)
          : 0.0;
  ctx.metric("lucb_pulls", static_cast<double>(lucb_pulls));
  ctx.metric("uniform_pulls", static_cast<double>(uniform_pulls));
  ctx.metric("budget_ratio_uniform_over_lucb", budget_ratio);

  ctx.table(race_table,
            std::to_string(arms.size()) +
                " (policy, region) arms, shared (delta=" +
                util::Table::fmt(kDelta, 2) + ", epsilon=" +
                util::Table::fmt(kEpsilon, 2) + ") stopping rule, batch " +
                std::to_string(batch) + ", cap " + std::to_string(cap) +
                " pulls");

  // ------------------------------------------------------------------
  // Section 2: the regret hunt — where guidelines give up the most.
  // ------------------------------------------------------------------
  race::Region root = bench_region("all", sim::OwnerKind::kPoisson, max_u);
  root.domain.contract_classes = 0;  // hunt the raw contract space
  const std::vector<sim::PolicyKind> hunted = {
      sim::PolicyKind::kEqualized, sim::PolicyKind::kAdaptivePaper,
      sim::PolicyKind::kNonAdaptiveRestart};
  race::RegretHuntOptions hunt_options;
  hunt_options.probes_per_region =
      static_cast<std::size_t>(flags.get_int("probes", ctx.quick() ? 8 : 24));
  hunt_options.rounds =
      static_cast<std::size_t>(flags.get_int("rounds", ctx.quick() ? 2 : 4));
  hunt_options.beam = 2;
  hunt_options.seed = 0x4E6;

  solver::SolveCache cache;
  race::RegretHuntResult hunt;
  const double hunt_ms = harness::time_best_of_ms(
      1, [&] { hunt = race::hunt_regret(root, hunted, hunt_options, cache); });

  util::Table hunt_table(
      {"region", "policy", "mean regret", "worst regret", "probes"});
  const std::size_t shown = std::min<std::size_t>(hunt.ranked.size(), 6);
  for (std::size_t i = 0; i < shown; ++i) {
    const race::RegionRegret& rr = hunt.ranked[i];
    hunt_table.add_row(
        {rr.region.name, sim::to_string(rr.policy),
         util::Table::fmt(rr.regret.mean, 5), util::Table::fmt(rr.worst_regret, 5),
         util::Table::fmt(static_cast<unsigned long long>(rr.regret.n))});
  }
  ctx.metric("hunt_scenarios", static_cast<double>(hunt.scenarios_evaluated));
  ctx.metric("hunt_worst_mean_regret",
             hunt.ranked.empty() ? 0.0 : hunt.ranked.front().regret.mean);
  ctx.metric("hunt_wall_ms", hunt_ms);

  ctx.table(hunt_table,
            "regret hunt over " + std::to_string(hunt.scenarios_evaluated) +
                " exact-regret probes (beam " + std::to_string(hunt_options.beam) +
                ", " + std::to_string(hunt_options.rounds) +
                " split rounds); regret normalized by lifespan");
  std::string verdict_text =
      "Reading: `budget_ratio_uniform_over_lucb` is how many sims fixed\n"
      "allocation spends per sim the adaptive race spends to reach the SAME\n"
      "verdict under the same stopping rule — the racing win. Successive\n"
      "halving shows the budgeted-elimination profile on the same arms. The\n"
      "hunt table lists where the closed-form guidelines trail the DP\n"
      "optimum worst (exact solver-side regret, deterministic).";
  if (!hunt.verdicts.empty()) {
    verdict_text += "\n\nWorst-region verdict record:\n";
    verdict_text += race::to_verdict_string(hunt.verdicts.front());
  }
  ctx.text(verdict_text);
}

}  // namespace

const harness::Experiment& experiment_policy_racing() {
  static const harness::Experiment e{
      "E16", "policy_racing",
      "Policy racing: adaptive vs fixed simulation budgets, and regret hunting",
      "bench_policy_racing",
      "Races (policy, scenario-region) arms with successive halving and "
      "LUCB-style best-arm identification against the fixed-allocation "
      "baseline under one (delta, epsilon) stopping rule, reporting the "
      "budget-to-verdict ratio; then hunts the generated scenario space for "
      "the regions where each guideline policy's exact regret against the DP "
      "optimum is worst.",
      run};
  return e;
}

}  // namespace nowsched::bench
