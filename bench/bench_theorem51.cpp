// E4 — Theorem 5.1: guaranteed work of the adaptive guidelines.
//
//   W(Σ_a(p)[U]) >= U − (2 − 2^{1−p})√(2cU) − O(U^{1/4} + pc).
//
// For each (U/c, p) the bench evaluates, exactly (policy-evaluation DP):
//   * the printed §3.2 guideline Σ_a(p)[U] (as-printed pivot),
//   * the rationalized-pivot variant,
//   * the §4.2 equalized guideline,
// against the leading-order bound and the DP optimum, and reports each
// deficit (U − W) normalized by √(2cU) — Thm 5.1 predicts the normalized
// deficit converges to (2 − 2^{1−p}) from above as U grows.
#include <cmath>
#include <vector>

#include "harness/harness.h"

#include "core/bounds.h"
#include "core/equalized.h"
#include "core/guidelines.h"
#include "solver/fast_solver.h"
#include "solver/policy_eval.h"
#include "util/thread_pool.h"

namespace nowsched::bench {
namespace {

void run(harness::Context& ctx) {
  const util::Flags& flags = ctx.flags();
  const Params params{flags.get_int("c", 16)};
  const double c = static_cast<double>(params.c);
  const int max_p = static_cast<int>(flags.get_int("max_p", ctx.quick() ? 2 : 4));
  util::ThreadPool& pool = util::global_pool();

  ctx.csv({"U_over_c", "p", "W_opt", "W_printed", "W_rationalized", "W_equalized",
           "bound_leading", "coeff_predicted", "coeff_printed", "coeff_equalized"});

  util::Table out({"U/c", "p", "W opt", "W printed", "W rationalzd", "W equalized",
                   "bound", "(2−2^{1−p})", "a_p exact", "opt def", "printed def",
                   "equalzd def"});

  const std::vector<Ticks> ratios = ctx.quick()
                                        ? std::vector<Ticks>{64, 256}
                                        : std::vector<Ticks>{256, 1024, 4096};
  for (Ticks ratio : ratios) {
    const Ticks u = ratio * params.c;
    const double ud = static_cast<double>(u);
    const double scale = std::sqrt(2.0 * c * ud);
    const auto table = solver::solve_fast(max_p, u, params, &pool);
    for (int p = 0; p <= max_p; ++p) {
      const AdaptiveGuidelinePolicy printed(PivotRule::kAsPrinted);
      const AdaptiveGuidelinePolicy rational(PivotRule::kRationalized);
      const EqualizedGuidelinePolicy equalized;
      const Ticks w_pr = solver::evaluate_policy(printed, u, p, params, &pool);
      const Ticks w_ra = solver::evaluate_policy(rational, u, p, params, &pool);
      const Ticks w_eq = solver::evaluate_policy(equalized, u, p, params, &pool);
      const Ticks w_opt = table.value(p, u);
      const double bound = bounds::adaptive_work_leading(ud, p, c);
      const double coeff = 2.0 - std::pow(2.0, 1.0 - static_cast<double>(p));
      const double a_exact = bounds::optimal_deficit_coefficient(p);
      const double def_opt = (ud - static_cast<double>(w_opt)) / scale;
      const double def_pr = (ud - static_cast<double>(w_pr)) / scale;
      const double def_eq = (ud - static_cast<double>(w_eq)) / scale;

      out.add_row({util::Table::fmt(static_cast<long long>(ratio)),
                   util::Table::fmt(static_cast<long long>(p)),
                   util::Table::fmt(static_cast<long long>(w_opt)),
                   util::Table::fmt(static_cast<long long>(w_pr)),
                   util::Table::fmt(static_cast<long long>(w_ra)),
                   util::Table::fmt(static_cast<long long>(w_eq)),
                   util::Table::fmt(bound, 6), util::Table::fmt(coeff, 3),
                   util::Table::fmt(a_exact, 4), util::Table::fmt(def_opt, 3),
                   util::Table::fmt(def_pr, 3), util::Table::fmt(def_eq, 3)});
      ctx.write_csv_row({static_cast<double>(ratio), static_cast<double>(p),
                         static_cast<double>(w_opt), static_cast<double>(w_pr),
                         static_cast<double>(w_ra), static_cast<double>(w_eq), bound,
                         coeff, def_pr, def_eq});
    }
    out.add_rule();
  }
  ctx.table(out, "Thm 5.1 sweep, c = " + std::to_string(params.c) + " ticks");
  ctx.text(
      "Shape checks (E4):\n"
      "  * 'opt def' and 'equalzd def' converge to the EXACT coefficient a_p\n"
      "    (a_p = a_{p−1} + 1/a_p: 1, φ=1.618, 2.095, 2.496, …) — they agree\n"
      "    with the printed Thm 5.1 constant (2 − 2^{1−p}) only at p <= 1;\n"
      "    for p >= 2 the printed constant is unachievable (E4);\n"
      "  * the printed §3.2 schedule constants track the optimum for p <= 2\n"
      "    but drift for p >= 3 (OCR-garbled pivot/count; DESIGN.md §1);\n"
      "  * p = 0 reproduces Prop 4.1(d): W = U − c for every variant.");
}

}  // namespace

const harness::Experiment& experiment_theorem51() {
  static const harness::Experiment e{
      "E4", "theorem51", "Theorem 5.1: guaranteed work of the adaptive guidelines",
      "bench_theorem51",
      "Exact policy-evaluation of the printed, rationalized-pivot, and "
      "equalized guidelines against the Thm 5.1 leading-order bound and the DP "
      "optimum; deficits are normalized by √(2cU) to expose the limiting "
      "coefficient as U grows.",
      run};
  return e;
}

}  // namespace nowsched::bench
