// E9 — ablation: how much of the draconian model's cost is the checkpointing
// assumption? The paper's contract makes period boundaries the only
// checkpoints; this bench adds intra-period checkpoints of varying density
// and cost and measures banked work under the worst-case trace recorded
// against the paper's model, plus a stochastic owner.
//
// Expected shape: with free checkpoints the single-block policy becomes
// competitive (the whole short-vs-long-period tension dissolves), while at
// realistic checkpoint costs the paper's period-granular guidelines remain
// the right tool.
#include <memory>
#include <optional>
#include <vector>

#include "harness/harness.h"

#include "adversary/stochastic.h"
#include "core/baselines.h"
#include "core/equalized.h"
#include "sim/session.h"
#include "util/stats.h"

namespace nowsched::bench {
namespace {

void run(harness::Context& ctx) {
  const util::Flags& flags = ctx.flags();
  const Params params{flags.get_int("c", 16)};
  const Ticks u = flags.get_int("u", ctx.quick() ? 16 * 512 : 16 * 2048);
  const int p = static_cast<int>(flags.get_int("p", 3));
  const int trials =
      static_cast<int>(flags.get_int("trials", ctx.quick() ? 40 : 200));

  ctx.csv({"policy", "interval", "cost", "mean_banked", "mean_salvaged"});

  std::vector<std::pair<std::string, PolicyPtr>> policies;
  policies.emplace_back("single-block", std::make_shared<SingleBlockPolicy>());
  policies.emplace_back("equalized", std::make_shared<EqualizedGuidelinePolicy>());

  struct Spec {
    std::string label;
    std::optional<sim::Checkpointing> ckpt;
  };
  std::vector<Spec> specs = {
      {"none (paper model)", std::nullopt},
      {"every 16c, cost c", sim::Checkpointing{16 * params.c, params.c}},
      {"every 4c, cost c", sim::Checkpointing{4 * params.c, params.c}},
      {"every 4c, free", sim::Checkpointing{4 * params.c, 0}},
      {"every c, free", sim::Checkpointing{params.c, 0}},
  };

  util::Table out({"policy", "checkpointing", "E[banked]", "E[salvaged]"},
                  {util::Align::kLeft, util::Align::kLeft, util::Align::kRight,
                   util::Align::kRight});
  for (const auto& [pname, policy] : policies) {
    for (const auto& spec : specs) {
      util::Accumulator banked, salvaged;
      for (int t = 0; t < trials; ++t) {
        adversary::PoissonAdversary owner(static_cast<double>(u) /
                                              static_cast<double>(p + 1),
                                          7777 + static_cast<std::uint64_t>(t));
        const auto metrics = sim::run_session(*policy, owner, Opportunity{u, p},
                                              params, nullptr, spec.ckpt);
        banked.add(static_cast<double>(metrics.banked_work));
        salvaged.add(static_cast<double>(metrics.salvaged_work));
      }
      out.add_row({pname, spec.label, util::Table::fmt(banked.mean(), 6),
                   util::Table::fmt(salvaged.mean(), 5)});
      ctx.write_csv_row({pname, spec.label,
                         util::Table::fmt(
                             static_cast<double>(spec.ckpt ? spec.ckpt->cost : 0), 4),
                         util::Table::fmt(banked.mean(), 9),
                         util::Table::fmt(salvaged.mean(), 9)});
    }
    out.add_rule();
  }
  ctx.table(out, "Poisson owner, U = " + std::to_string(u) + ", p = " +
                     std::to_string(p) + ", " + std::to_string(trials) + " trials");
  ctx.text(
      "Reading: free dense checkpoints rescue the single-block plan (its\n"
      "salvage column approaches the guideline's banked work), vindicating\n"
      "the paper's framing — the guidelines ARE the checkpointing strategy\n"
      "when mid-period snapshots are impossible or costly.");
}

}  // namespace

const harness::Experiment& experiment_checkpoint() {
  static const harness::Experiment e{
      "E9", "checkpoint", "Checkpoint ablation: value of intra-period checkpoints",
      "bench_checkpoint",
      "The paper's model makes period boundaries the only checkpoints. Adding "
      "intra-period checkpoints of varying density and cost shows free dense "
      "checkpoints rescuing the single-block plan, while at realistic costs "
      "the period-granular guidelines remain the right tool.",
      run};
  return e;
}

}  // namespace nowsched::bench
