// Ablation — how much of the draconian model's cost is the checkpointing
// assumption? The paper's contract makes period boundaries the only
// checkpoints; this bench adds intra-period checkpoints of varying density
// and cost and measures banked work under the worst-case trace recorded
// against the paper's model, plus a stochastic owner.
//
// Expected shape: with free checkpoints the single-block policy becomes
// competitive (the whole short-vs-long-period tension dissolves), while at
// realistic checkpoint costs the paper's period-granular guidelines remain
// the right tool.
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "adversary/stochastic.h"
#include "core/baselines.h"
#include "core/equalized.h"
#include "sim/session.h"
#include "util/stats.h"

using namespace nowsched;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const Params params{flags.get_int("c", 16)};
  const Ticks u = flags.get_int("u", 16 * 2048);
  const int p = static_cast<int>(flags.get_int("p", 3));
  const int trials = static_cast<int>(flags.get_int("trials", 200));

  bench::print_header("EXT / checkpoint ablation",
                      "value of intra-period checkpoints (paper model = none)");
  util::CsvWriter csv(bench::csv_path(flags, "checkpoint.csv"),
                      {"policy", "interval", "cost", "mean_banked", "mean_salvaged"});

  std::vector<std::pair<std::string, PolicyPtr>> policies;
  policies.emplace_back("single-block", std::make_shared<SingleBlockPolicy>());
  policies.emplace_back("equalized", std::make_shared<EqualizedGuidelinePolicy>());

  struct Spec {
    std::string label;
    std::optional<sim::Checkpointing> ckpt;
  };
  std::vector<Spec> specs = {
      {"none (paper model)", std::nullopt},
      {"every 16c, cost c", sim::Checkpointing{16 * params.c, params.c}},
      {"every 4c, cost c", sim::Checkpointing{4 * params.c, params.c}},
      {"every 4c, free", sim::Checkpointing{4 * params.c, 0}},
      {"every c, free", sim::Checkpointing{params.c, 0}},
  };

  util::Table out({"policy", "checkpointing", "E[banked]", "E[salvaged]"},
                  {util::Align::kLeft, util::Align::kLeft, util::Align::kRight,
                   util::Align::kRight});
  for (const auto& [pname, policy] : policies) {
    for (const auto& spec : specs) {
      util::Accumulator banked, salvaged;
      for (int t = 0; t < trials; ++t) {
        adversary::PoissonAdversary owner(static_cast<double>(u) /
                                              static_cast<double>(p + 1),
                                          7777 + static_cast<std::uint64_t>(t));
        const auto metrics = sim::run_session(*policy, owner, Opportunity{u, p},
                                              params, nullptr, spec.ckpt);
        banked.add(static_cast<double>(metrics.banked_work));
        salvaged.add(static_cast<double>(metrics.salvaged_work));
      }
      out.add_row({pname, spec.label, util::Table::fmt(banked.mean(), 6),
                   util::Table::fmt(salvaged.mean(), 5)});
      csv.write_row({pname, spec.label,
                     util::Table::fmt(static_cast<double>(spec.ckpt ? spec.ckpt->cost
                                                                    : 0),
                                      4),
                     util::Table::fmt(banked.mean(), 9),
                     util::Table::fmt(salvaged.mean(), 9)});
    }
    out.add_rule();
  }
  out.print(std::cout, "\nPoisson owner, U = " + std::to_string(u) + ", p = " +
                           std::to_string(p) + ", " + std::to_string(trials) +
                           " trials");
  std::cout <<
      "\nReading: free dense checkpoints rescue the single-block plan (its\n"
      "salvage column approaches the guideline's banked work), vindicating\n"
      "the paper's framing — the guidelines ARE the checkpointing strategy\n"
      "when mid-period snapshots are impossible or costly.\n";
  std::cout << "CSV written to " << csv.path() << "\n";
  return 0;
}
