// E15 — scheduler service: multi-tenant throughput and fairness of
// service::SchedulerService under SKEWED tenant load, sweeping queue policy
// (FIFO vs deficit round robin) x worker count. One hog tenant bursts many
// jobs ahead of three modest tenants; the quantity under test is Jain's
// fairness index over per-tenant completed scenarios WITHIN THE FIRST HALF
// of the completion order — the window where queueing discipline matters
// (by the end of a drained run every tenant has finished everything, so
// end-state shares are trivially equal). FIFO serves the hog's burst first
// (fairness tracks offered load); DRR holds the index near 1.0 regardless
// of skew. Total banked work is asserted bit-identical across every cell:
// scheduling decides when, never what.
#include <algorithm>
#include <cstdint>
#include <future>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/harness.h"

#include "service/scheduler_service.h"
#include "sim/batch_runner.h"

namespace nowsched::bench {
namespace {

struct CompletionRecord {
  std::uint64_t completion_index;
  std::size_t tenant;  ///< 0 is the hog
  std::size_t scenarios;
};

struct CellResult {
  double fairness_half = 0.0;
  double hog_share_half = 0.0;
  double pooled_hit_rate = 0.0;
  Ticks banked_total = 0;
  std::size_t scenarios_total = 0;
};

// dp-optimal scenarios over `keys` contract classes so the per-tenant
// caches see re-use; tenant-distinct seeds keep sessions independent.
std::vector<sim::ScenarioSpec> job_specs(std::size_t scenarios, std::size_t keys,
                                         Ticks base_u, std::uint64_t seed) {
  std::vector<sim::ScenarioSpec> specs;
  specs.reserve(scenarios);
  for (std::size_t i = 0; i < scenarios; ++i) {
    sim::ScenarioSpec spec;
    spec.policy = sim::PolicyKind::kDpOptimal;
    spec.owner = sim::OwnerKind::kPoisson;
    spec.owner_a = 2500.0;
    spec.params = Params{32};
    spec.lifespan = base_u + static_cast<Ticks>((seed + i) % keys) * 256;
    spec.max_interrupts = 3;
    spec.seed = seed * 131 + i;
    specs.push_back(spec);
  }
  return specs;
}

CellResult run_cell(service::QueueKind queue, std::size_t workers,
                    std::size_t hog_jobs, std::size_t other_jobs,
                    std::size_t scenarios, std::size_t keys, Ticks base_u,
                    std::size_t tenants) {
  service::ServiceOptions options;
  options.workers = workers;
  options.queue = queue;
  options.drr_quantum = scenarios;  // one job's worth of credit per visit
  const std::size_t total_jobs = hog_jobs + (tenants - 1) * other_jobs;
  options.max_queued_jobs_per_tenant = total_jobs + 1;  // admission open:
  options.max_queued_jobs_total = total_jobs + 1;       // we bench queueing,
  options.max_pending_scenarios_per_tenant =            // not backpressure
      (total_jobs + 1) * scenarios;
  service::SchedulerService service(options);
  for (std::size_t t = 0; t < tenants; ++t) {
    service.set_tenant_quota("tenant-" + std::to_string(t), 4u << 20);
  }

  // The hog bursts all its jobs FIRST — the arrival pattern FIFO is blind
  // to and DRR exists for.
  struct Pending {
    std::size_t tenant;
    std::future<service::JobResult> result;
  };
  std::vector<Pending> pending;
  pending.reserve(total_jobs);
  std::uint64_t job_seed = 1;
  auto submit = [&](std::size_t tenant) {
    service::Submission sub =
        service.submit("tenant-" + std::to_string(tenant),
                       job_specs(scenarios, keys, base_u, job_seed++));
    if (!sub.accepted()) {
      throw std::logic_error("sched_service bench: submission rejected: " +
                             sub.reason);
    }
    pending.push_back({tenant, std::move(sub.result)});
  };
  for (std::size_t j = 0; j < hog_jobs; ++j) submit(0);
  for (std::size_t j = 0; j < other_jobs; ++j) {
    for (std::size_t t = 1; t < tenants; ++t) submit(t);
  }

  CellResult cell;
  std::vector<CompletionRecord> completions;
  completions.reserve(total_jobs);
  for (Pending& p : pending) {
    const service::JobResult result = p.result.get();
    completions.push_back(
        {result.completion_index, p.tenant, result.batch.per_scenario.size()});
    cell.banked_total += result.batch.aggregate.banked_work;
    cell.scenarios_total += result.batch.per_scenario.size();
  }
  service.shutdown(service::SchedulerService::StopMode::kDrain);

  // Fairness window: per-tenant completed scenarios within the first half
  // of the completion ORDER (an ordering fact, not a timing one).
  std::sort(completions.begin(), completions.end(),
            [](const CompletionRecord& a, const CompletionRecord& b) {
              return a.completion_index < b.completion_index;
            });
  std::vector<double> share(tenants, 0.0);
  std::size_t in_window = 0;
  for (const CompletionRecord& record : completions) {
    if (in_window >= cell.scenarios_total / 2) break;
    share[record.tenant] += static_cast<double>(record.scenarios);
    in_window += record.scenarios;
  }
  cell.fairness_half = service::jains_fairness(share);
  cell.hog_share_half = in_window > 0
                            ? share[0] / static_cast<double>(in_window)
                            : 0.0;

  std::uint64_t hits = 0, misses = 0;
  const service::ServiceStats stats = service.stats();  // outlive the loop
  for (const service::TenantStats& t : stats.tenants) {
    hits += t.cache.hits;
    misses += t.cache.misses;
  }
  cell.pooled_hit_rate =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0.0;
  return cell;
}

void run(harness::Context& ctx) {
  const util::Flags& flags = ctx.flags();
  const std::size_t tenants =
      static_cast<std::size_t>(flags.get_int("tenants", 4));
  const std::size_t scenarios =
      static_cast<std::size_t>(flags.get_int("scenarios", ctx.quick() ? 4 : 6));
  const std::size_t hog_jobs = static_cast<std::size_t>(
      flags.get_int("hog-jobs", ctx.quick() ? 16 : 48));
  const std::size_t other_jobs = static_cast<std::size_t>(
      flags.get_int("other-jobs", ctx.quick() ? 4 : 12));
  const std::size_t keys =
      static_cast<std::size_t>(flags.get_int("keys", 4));
  const Ticks base_u = flags.get_int("u", ctx.quick() ? 1024 : 2048);
  if (tenants < 2) throw std::invalid_argument("E15 needs --tenants >= 2");

  const std::vector<std::size_t> worker_counts =
      ctx.quick() ? std::vector<std::size_t>{1, 2}
                  : std::vector<std::size_t>{1, 2, 4};

  ctx.csv({"queue", "workers", "jobs", "scenarios_total", "wall_ms",
           "scenarios_per_sec", "fairness_half", "hog_share_half",
           "pooled_hit_rate", "banked_total"});
  util::Table out({"queue", "workers", "wall ms", "scen/s", "fairness@half",
                   "hog share", "hit rate"});

  const std::size_t total_jobs = hog_jobs + (tenants - 1) * other_jobs;
  Ticks banked_reference = -1;
  double fairness_fifo_1w = 0.0, fairness_drr_1w = 0.0, best_per_sec = 0.0;

  for (const service::QueueKind queue :
       {service::QueueKind::kFifo, service::QueueKind::kDeficitRoundRobin}) {
    for (const std::size_t workers : worker_counts) {
      CellResult cell;
      const double ms = harness::time_best_of_ms(1, [&] {
        cell = run_cell(queue, workers, hog_jobs, other_jobs, scenarios, keys,
                        base_u, tenants);
      });
      if (banked_reference < 0) banked_reference = cell.banked_total;
      if (cell.banked_total != banked_reference) {
        throw std::logic_error(
            "service results diverged across queue policies/worker counts: "
            "determinism contract broken");
      }
      const double per_sec =
          ms > 0 ? static_cast<double>(cell.scenarios_total) / (ms / 1000.0)
                 : 0.0;
      best_per_sec = std::max(best_per_sec, per_sec);
      if (workers == 1 && queue == service::QueueKind::kFifo) {
        fairness_fifo_1w = cell.fairness_half;
      }
      if (workers == 1 && queue == service::QueueKind::kDeficitRoundRobin) {
        fairness_drr_1w = cell.fairness_half;
      }

      const char* name = service::to_string(queue);
      ctx.write_csv_row(
          {name, std::to_string(workers), std::to_string(total_jobs),
           std::to_string(cell.scenarios_total), util::Table::fmt(ms, 5),
           util::Table::fmt(per_sec, 5), util::Table::fmt(cell.fairness_half, 4),
           util::Table::fmt(cell.hog_share_half, 4),
           util::Table::fmt(cell.pooled_hit_rate, 4),
           std::to_string(static_cast<long long>(cell.banked_total))});
      out.add_row({name, util::Table::fmt(static_cast<unsigned long long>(workers)),
                   util::Table::fmt(ms, 5), util::Table::fmt(per_sec, 5),
                   util::Table::fmt(cell.fairness_half, 4),
                   util::Table::fmt(cell.hog_share_half, 4),
                   util::Table::fmt(cell.pooled_hit_rate, 4)});
    }
  }

  ctx.metric("fairness_half_fifo_1w", fairness_fifo_1w);
  ctx.metric("fairness_half_drr_1w", fairness_drr_1w);
  ctx.metric("best_scenarios_per_sec", best_per_sec);

  ctx.table(out, std::to_string(total_jobs) + " jobs (" +
                     std::to_string(hog_jobs) + " from the hog, " +
                     std::to_string(other_jobs) + " from each of " +
                     std::to_string(tenants - 1) + " modest tenants), " +
                     std::to_string(scenarios) + " dp-optimal scenarios/job over " +
                     std::to_string(keys) + " contract classes");
  ctx.text(
      "Reading: the hog submits its whole burst before anyone else.\n"
      "`fairness@half` is Jain's index over per-tenant completed scenarios\n"
      "within the first half of the completion order — FIFO lets the burst\n"
      "monopolize that window (hog share near 1), deficit round robin meters\n"
      "it back toward an even split (index near 1.0). `banked_total` is\n"
      "bit-identical in every cell: the queue policy and worker count decide\n"
      "when a job runs, never what it computes.");
}

}  // namespace

const harness::Experiment& experiment_sched_service() {
  static const harness::Experiment e{
      "E15", "sched_service",
      "Scheduler service: multi-tenant fairness and throughput under skew",
      "bench_sched_service",
      "service::SchedulerService under a skewed multi-tenant load — one hog "
      "bursting ahead of modest tenants — sweeping queue policy (FIFO vs "
      "deficit round robin) and worker count; reports Jain's fairness index "
      "over the first-half completion window, scenario throughput, per-tenant "
      "cache hit rates, and asserts results are bit-identical in every cell.",
      run};
  return e;
}

}  // namespace nowsched::bench
