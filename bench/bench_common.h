// Shared plumbing for the experiment harnesses.
#pragma once

#include <filesystem>
#include <iostream>
#include <string>

#include "util/csv.h"
#include "util/flags.h"
#include "util/table.h"

namespace nowsched::bench {

/// Where CSV series land (next to the binary unless --outdir is given).
inline std::string csv_path(const util::Flags& flags, const std::string& name) {
  const std::string dir = flags.get("outdir", "bench_results");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir + "/" + name;
}

inline void print_header(const std::string& id, const std::string& what) {
  std::cout << "=== " << id << " — " << what << " ===\n";
}

}  // namespace nowsched::bench
