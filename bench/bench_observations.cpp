// E7 — §4.1 Observations (a), (b), (c), verified exhaustively on small grids
// and illustrated against the optimal policy.
#include <algorithm>
#include <memory>
#include <string>

#include "harness/harness.h"

#include "solver/extract.h"
#include "solver/policy_eval.h"
#include "solver/reference_solver.h"

namespace nowsched::bench {
namespace {

void run(harness::Context& ctx) {
  const util::Flags& flags = ctx.flags();
  const Params params{flags.get_int("c", 8)};
  const Ticks max_l = flags.get_int("max_l", ctx.quick() ? 160 : 320);
  const int max_p = static_cast<int>(flags.get_int("max_p", 2));

  ctx.csv({"observation", "checked", "violations"});
  const auto table = solver::solve_reference(max_p, max_l, params);

  // (a) last-instant interrupts: allowing mid-period interrupts changes no
  // game value (computed exhaustively).
  std::size_t states = 0, changed = 0;
  for (int p = 1; p <= max_p; ++p) {
    for (Ticks l = 0; l <= max_l; ++l) {
      Ticks best = 0;
      for (Ticks t = 1; t <= l; ++t) {
        Ticks worst = table.value(p - 1, l - t);  // last instant
        for (Ticks x = 1; x < t; ++x) {           // interior ticks
          worst = std::min(worst, table.value(p - 1, l - x));
        }
        best = std::max(best,
                        std::min(positive_sub(t, params.c) + table.value(p, l - t),
                                 worst));
      }
      ++states;
      changed += (best != table.value(p, l));
    }
  }
  ctx.text("(a) last-instant dominance: " + std::to_string(states) +
           " states checked with interior-tick interrupts allowed; " +
           std::to_string(changed) + " game values changed (expected 0)");
  ctx.write_csv_row({std::string("last_instant_dominance"),
                     std::to_string(states), std::to_string(changed)});

  // (b) the adversary interrupts every episode while p > 0 and U > c.
  auto shared = std::make_shared<solver::ValueTable>(table);
  solver::OptimalPolicy policy(shared);
  std::size_t opportunities = 0, full_use = 0;
  for (Ticks l = 4 * params.c * (max_p + 1); l <= max_l; l += 17) {
    const auto br = solver::best_response(policy, l, max_p, params);
    int used = 0;
    for (const auto& move : br.moves) used += move.killed.has_value();
    ++opportunities;
    full_use += (used == max_p);
  }
  ctx.text("(b) always-interrupt: " + std::to_string(full_use) + "/" +
           std::to_string(opportunities) + " opportunities used all p=" +
           std::to_string(max_p) +
           " interrupts (expected all, for U above the threshold)");
  ctx.write_csv_row({std::string("always_interrupt"), std::to_string(opportunities),
                     std::to_string(opportunities - full_use)});

  // (c) interrupted periods begin before residual − p·c.
  std::size_t interrupts = 0, inside_window = 0;
  for (Ticks l = 4 * params.c * (max_p + 1); l <= max_l; l += 17) {
    Ticks residual = l;
    int q = max_p;
    const auto br = solver::best_response(policy, l, max_p, params);
    for (const auto& move : br.moves) {
      if (!move.killed) break;
      const auto episode = policy.episode(residual, q, params);
      if (residual > (static_cast<Ticks>(q) + 1) * params.c) {
        ++interrupts;
        inside_window += (episode.start(*move.killed) <
                          residual - static_cast<Ticks>(q) * params.c);
      }
      residual = positive_sub(residual, episode.end(*move.killed));
      --q;
    }
  }
  ctx.text("(c) early-window interrupts: " + std::to_string(inside_window) + "/" +
           std::to_string(interrupts) +
           " optimal-play interrupts began before residual − p·c (expected all)");
  ctx.write_csv_row({std::string("early_window_interrupts"),
                     std::to_string(interrupts),
                     std::to_string(interrupts - inside_window)});

  // Illustrative table: one optimal episode with the adversary's options.
  const Ticks demo_l = std::min<Ticks>(max_l, 40 * params.c);
  const auto episode = solver::extract_episode(table, 1, demo_l);
  util::Table out({"period", "t_k", "starts", "kill option value"});
  for (std::size_t k = 0; k < episode.size(); ++k) {
    const Ticks option = episode.banked_work(k, params) +
                         table.value(0, positive_sub(demo_l, episode.end(k)));
    out.add_row({util::Table::fmt(static_cast<long long>(k + 1)),
                 util::Table::fmt(static_cast<long long>(episode.period(k))),
                 util::Table::fmt(static_cast<long long>(episode.start(k))),
                 util::Table::fmt(static_cast<long long>(option))});
  }
  ctx.table(out, "optimal 1-interrupt episode at U = " + std::to_string(demo_l) +
                     " — note the equalized kill-option column (Thm 4.3)");
}

}  // namespace

const harness::Experiment& experiment_observations() {
  static const harness::Experiment e{
      "E7", "observations", "§4.1 Observations (a)–(c) verified exhaustively",
      "bench_observations",
      "Exhaustive small-grid verification of the three §4.1 observations — "
      "last-instant interrupt dominance, the adversary always spending its "
      "interrupts, and interrupts landing in the early window — plus one "
      "optimal episode with its equalized kill-option column (Thm 4.3).",
      run};
  return e;
}

}  // namespace nowsched::bench
