// E1 — regenerates Table 1: "The consequences of the adversary's options".
//
// For a concrete cycle-stealing opportunity (U, p) and the episode-schedule
// S(p)[U] actually played (DP-optimal by default), enumerate the adversary's
// m(p)+1 options and print, per option:
//   episode work-output   T_{k−1} − (k−1)c
//   residual lifespan     U − T_k          (last-instant interrupts)
//   opportunity work      episode output + W(p−1)[U − T_k]
// The no-interrupt row produces U − mc with residual 0.
//
// The paper's Table 1 is symbolic; this bench instantiates it numerically
// and verifies the row identities hold exactly on the tick grid.
#include <vector>

#include "harness/harness.h"

#include "core/equalized.h"
#include "solver/extract.h"
#include "solver/fast_solver.h"

namespace nowsched::bench {
namespace {

void emit_instance(harness::Context& ctx, Ticks u, int p, const Params& params,
                   bool use_equalized) {
  const auto table = solver::solve_fast(p, u, params);
  const EpisodeSchedule episode =
      use_equalized ? equalized_episode(u, p, params)
                    : solver::extract_episode(table, p, u);
  const std::size_t m = episode.size();

  util::Table out({"option", "interrupt time", "episode work", "residual lifespan",
                   "opportunity work"},
                  {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
                   util::Align::kRight, util::Align::kRight});

  // No-interrupt row: work U − mc, residual 0.
  const Ticks no_int = episode.work_if_uninterrupted(params);
  out.add_row({"no interrupt", "-", util::Table::fmt(static_cast<long long>(no_int)),
               "0", util::Table::fmt(static_cast<long long>(no_int))});
  out.add_rule();

  Ticks worst = no_int;
  const std::size_t head = 4, tail = 4;
  for (std::size_t k = 0; k < m; ++k) {
    const Ticks episode_work = episode.banked_work(k, params);
    const Ticks residual = positive_sub(u, episode.end(k));
    const Ticks total = episode_work + table.value(p - 1, residual);
    worst = std::min(worst, total);
    ctx.write_csv_row({static_cast<double>(u), static_cast<double>(p),
                       static_cast<double>(k + 1), static_cast<double>(episode.end(k)),
                       static_cast<double>(episode_work), static_cast<double>(residual),
                       static_cast<double>(total)});
    if (m > head + tail + 1 && k == head) {
      out.add_row({"...", "...", "...", "...", "..."});
    }
    if (m > head + tail + 1 && k >= head && k + tail < m) continue;
    out.add_row({"interrupt period " + std::to_string(k + 1),
                 util::Table::fmt(static_cast<long long>(episode.end(k))),
                 util::Table::fmt(static_cast<long long>(episode_work)),
                 util::Table::fmt(static_cast<long long>(residual)),
                 util::Table::fmt(static_cast<long long>(total))});
  }

  ctx.table(out, "U = " + std::to_string(u) + " (U/c = " +
                     std::to_string(u / params.c) + "), p = " + std::to_string(p) +
                     ", schedule " + (use_equalized ? "equalized" : "dp-optimal") +
                     " with m = " + std::to_string(m) + " periods");
  ctx.text("adversary's best option value = " +
           util::Table::fmt(static_cast<long long>(worst)) + "   (exact W(p)[U] = " +
           util::Table::fmt(static_cast<long long>(table.value(p, u))) + ")");
}

void run(harness::Context& ctx) {
  const util::Flags& flags = ctx.flags();
  const Params params{flags.get_int("c", 16)};
  const bool use_equalized = flags.get_bool("equalized", false);

  ctx.csv({"U", "p", "period", "interrupt_time", "episode_work", "residual",
           "opportunity_work"});

  const std::vector<Ticks> ratios =
      ctx.quick() ? std::vector<Ticks>{64} : std::vector<Ticks>{256, 1024};
  const int max_p = ctx.quick() ? 2 : 3;
  for (Ticks ratio : ratios) {
    for (int p = 1; p <= max_p; ++p) {
      emit_instance(ctx, ratio * params.c, p, params, use_equalized);
    }
  }
}

}  // namespace

const harness::Experiment& experiment_table1() {
  static const harness::Experiment e{
      "E1", "table1", "Table 1: the consequences of the adversary's options",
      "bench_table1",
      "For each opportunity (U, p) and the DP-optimal episode schedule, every "
      "adversary option (interrupt period k, or never) is enumerated with its "
      "episode work, residual lifespan, and total opportunity work. The paper's "
      "Table 1 is symbolic; these instances make it numeric and check that the "
      "adversary's best option equals the exact game value W(p)[U].",
      run};
  return e;
}

}  // namespace nowsched::bench
