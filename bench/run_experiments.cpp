// Experiment driver: runs the registered experiments E1–E14 in order and
// regenerates EXPERIMENTS.md plus the per-experiment CSV series and
// BENCH_<slug>.json timing records in one command.
//
//   run_experiments                         # full tier into bench_results/
//   run_experiments --tier=quick            # CI smoke grids
//   run_experiments --only=E3,E5            # subset (doc still written)
//   run_experiments --list                  # show the registry and exit
//   run_experiments --outdir=bench/baselines --doc=EXPERIMENTS.md
//
// Exit status is non-zero when any experiment throws, crashes the run, or
// produces an empty section — that is the whole CI perf-smoke gate.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/harness.h"

using nowsched::bench::harness::Registry;
using nowsched::bench::harness::RunResult;
using nowsched::bench::harness::Tier;

namespace {

std::vector<std::string> split_csv_list(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  nowsched::bench::harness::register_all_experiments();
  const nowsched::util::Flags flags(argc, argv);
  const auto& registry = Registry::instance();

  if (flags.get_bool("list", false)) {
    for (const auto& e : registry.experiments()) {
      std::cout << e.id << "  " << e.slug << "  (" << e.binary << ")  " << e.title
                << "\n";
    }
    return 0;
  }

  const Tier tier = nowsched::bench::harness::tier_from_flags(flags);
  const std::string outdir = flags.get("outdir", "bench_results");
  const std::string doc = flags.get("doc", outdir + "/EXPERIMENTS.md");

  // Artifact links in the document are written relative to the document's
  // own directory, so the doc is correct wherever the outdir lands.
  std::string artifact_prefix;
  {
    std::error_code ec;
    const auto doc_dir = std::filesystem::path(doc).parent_path();
    const auto rel = std::filesystem::proximate(outdir, doc_dir, ec);
    artifact_prefix = ec ? outdir : rel.generic_string();
    if (artifact_prefix.empty()) artifact_prefix = ".";
  }

  std::vector<const nowsched::bench::harness::Experiment*> selected;
  if (flags.has("only")) {
    for (const auto& token : split_csv_list(flags.get("only", ""))) {
      const auto* e = registry.find(token);
      if (e == nullptr) {
        std::cerr << "unknown experiment \"" << token << "\" (try --list)\n";
        return 2;
      }
      selected.push_back(e);
    }
  } else {
    for (const auto& e : registry.experiments()) selected.push_back(&e);
  }
  if (selected.empty()) {
    std::cerr << "no experiments selected\n";
    return 2;
  }

  std::vector<RunResult> results;
  bool all_ok = true;
  for (const auto* e : selected) {
    RunResult result = nowsched::bench::harness::run_experiment(
        *e, tier, flags, outdir, /*echo=*/true, artifact_prefix);
    // An "ok" run that emitted nothing is a broken experiment, not a pass.
    if (result.ok && result.markdown.empty()) {
      result.ok = false;
      result.error = "experiment produced no output";
    }
    all_ok = all_ok && result.ok;
    results.push_back(std::move(result));
    std::cout << "\n";
  }

  std::ofstream md(doc);
  if (!md) {
    std::cerr << "cannot open " << doc << " for writing\n";
    return 1;
  }
  md << "# EXPERIMENTS\n\n"
     << "Regenerable record of the paper's Tables 1–2 / Theorem 5.1 numbers and\n"
     << "the repo's own performance baselines. **Do not edit by hand** — this\n"
     << "whole file, the CSV series, and the `BENCH_*.json` timing records are\n"
     << "regenerated top to bottom by one command:\n\n"
     << "```sh\n"
     << "cmake --build build --target experiments\n"
     << "# equivalently:\n"
     << "# ./build/bench/run_experiments --tier=full --outdir=bench/baselines "
        "--doc=EXPERIMENTS.md\n"
     << "```\n\n"
     << "Tier: **" << nowsched::bench::harness::tier_name(tier) << "**. "
     << "`--tier=quick` shrinks every grid to the CI smoke sizes; `--tier=full`\n"
     << "is the committed record. Model sections (E1–E9) are deterministic\n"
     << "(fixed-seed `util::rng`, exact integer DP) and must reproduce\n"
     << "bit-for-bit on any machine; the performance sections (E10–E14) report\n"
     << "this machine's wall clocks, so treat their absolute numbers as one\n"
     << "sample and their shapes (scaling exponents, thread speedups) as the\n"
     << "claims. Wall-clock per experiment lives in `" << artifact_prefix
     << "/BENCH_<slug>.json`.\n\n";

  md << "| # | experiment | binary | CSV rows |\n"
     << "| :--- | :--- | :--- | ---: |\n";
  for (const auto& r : results) {
    const auto* e = registry.find(r.id);
    md << "| " << r.id << " | " << e->title << " | `" << e->binary << "` | "
       << r.csv_rows << " |\n";
  }
  md << "\n";

  for (const auto& r : results) {
    md << r.markdown << "\n";
  }
  md.close();

  std::cout << "wrote " << doc << "\n";
  for (const auto& r : results) {
    std::cout << "  " << r.id << "  "
              << (r.ok ? "ok    " : "FAILED") << "  "
              << nowsched::util::Table::fmt(r.wall_ms, 4) << " ms  "
              << r.csv_rows << " rows"
              << (r.ok ? "" : "  (" + r.error + ")") << "\n";
  }
  return all_ok ? 0 : 1;
}
