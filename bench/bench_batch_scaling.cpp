// E13 — batch scaling: sim::BatchRunner driving a large mix of dp-optimal
// sessions, sweeping pool threads × solve-cache tier. The cache-friendly mix
// (many sessions over few distinct canonical solver inputs) is the shape a
// production service sees — thousands of contracts drawn from a handful of
// (c, U, p) classes — and the quantity under test is sessions/sec. The four
// modes walk the tiering ladder of solver/table_store.h: `naive` re-solves
// per session, `cold-ram` fills a fresh RAM cache, `warm-ram` reruns on the
// already-hot cache, and `mapped` starts a cold RAM cache over a pre-baked
// read-only persistent store (every miss answered by an mmap read, zero
// solves). The aggregate metrics are asserted bit-identical across every
// (threads, mode) cell, so this bench doubles as a live determinism check —
// including across persistence tiers — on real workloads.
#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/harness.h"

#include "sim/batch_runner.h"
#include "solver/table_store.h"
#include "util/thread_pool.h"

namespace nowsched::bench {
namespace {

std::vector<sim::ScenarioSpec> make_mix(std::size_t sessions, std::size_t keys,
                                        Ticks base_u, Ticks step_u, int p, Ticks c) {
  std::vector<sim::ScenarioSpec> specs;
  specs.reserve(sessions);
  for (std::size_t i = 0; i < sessions; ++i) {
    sim::ScenarioSpec spec;
    spec.policy = sim::PolicyKind::kDpOptimal;
    spec.owner = sim::OwnerKind::kPoisson;
    spec.owner_a = 3000.0;
    spec.params = Params{c};
    spec.lifespan = base_u + static_cast<Ticks>(i % keys) * step_u;
    spec.max_interrupts = p;
    spec.seed = 0x9E00 + i;
    specs.push_back(spec);
  }
  return specs;
}

void run(harness::Context& ctx) {
  const util::Flags& flags = ctx.flags();
  const Ticks c = flags.get_int("c", 32);
  const int p = static_cast<int>(flags.get_int("p", ctx.quick() ? 3 : 4));
  const std::size_t keys =
      static_cast<std::size_t>(flags.get_int("keys", ctx.quick() ? 4 : 8));
  const std::size_t sessions = static_cast<std::size_t>(
      flags.get_int("sessions", ctx.quick() ? 96 : 1024));
  const Ticks base_u = flags.get_int("u", ctx.quick() ? 2048 : 4096);
  const Ticks step_u = flags.get_int("step", 512);
  const int reps = ctx.quick() ? 1 : 2;

  const auto specs = make_mix(sessions, keys, base_u, step_u, p, c);
  const std::vector<std::size_t> thread_counts =
      ctx.quick() ? std::vector<std::size_t>{1, 2, 4}
                  : std::vector<std::size_t>{1, 2, 4, 8};

  // Bake the persistent store once so every `mapped` cell below mounts it
  // read-only and warm: misses become mmap reads instead of solves.
  harness::ScratchDir store_dir("e13-store");
  {
    sim::BatchOptions bake;
    bake.cache.store = std::make_shared<solver::MappedTableStore>(
        solver::MappedTableStore::Options{store_dir.path(), false});
    sim::BatchRunner baker(bake);
    baker.run(specs);
  }
  auto warm_store = std::make_shared<solver::MappedTableStore>(
      solver::MappedTableStore::Options{store_dir.path(), /*read_only=*/true});

  const std::vector<std::string> modes = {"naive", "cold-ram", "warm-ram",
                                          "mapped"};

  ctx.csv({"threads", "mode", "sessions", "wall_ms", "sessions_per_sec",
           "hit_rate", "store_hits", "banked_total"});
  util::Table out({"threads", "mode", "wall ms", "sessions/s", "hit rate",
                   "store hits", "banked total"});

  // Every cell must report this aggregate; the first run sets it.
  Ticks banked_reference = -1;
  double naive_per_sec_1t = 0.0, cold_per_sec_1t = 0.0;
  double warm_per_sec_1t = 0.0, mapped_per_sec_1t = 0.0;
  double best_per_sec = 0.0, hit_rate = 0.0;

  for (std::size_t threads : thread_counts) {
    util::ThreadPool pool(threads);
    for (const std::string& mode : modes) {
      // `warm-ram` keeps one runner hot across reps (the timed run hits RAM
      // for every key); every other mode gets a fresh runner per rep so its
      // cache starts cold and the hit rate is the deterministic
      // (sessions − keys) / sessions of one batch.
      sim::BatchOptions opts;
      opts.pool = &pool;
      opts.cache_enabled = mode != "naive";
      if (mode == "mapped") opts.cache.store = warm_store;
      std::unique_ptr<sim::BatchRunner> warm_runner;
      if (mode == "warm-ram") {
        warm_runner = std::make_unique<sim::BatchRunner>(opts);
        warm_runner->run(specs);  // warm-up: not timed
      }

      sim::BatchResult result;
      const double ms = harness::time_best_of_ms(reps, [&] {
        if (warm_runner != nullptr) {
          result = warm_runner->run(specs);
          return;
        }
        sim::BatchRunner runner(opts);
        result = runner.run(specs);
      });

      if (banked_reference < 0) banked_reference = result.aggregate.banked_work;
      if (result.aggregate.banked_work != banked_reference) {
        throw std::logic_error(
            "batch aggregate diverged across threads/cache tiers: determinism "
            "contract broken");
      }
      if (mode == "mapped" && result.cache.store_hits == 0) {
        throw std::logic_error(
            "mapped mode answered no miss from the baked store");
      }

      const double per_sec =
          ms > 0 ? static_cast<double>(sessions) / (ms / 1000.0) : 0.0;
      const double rate = mode == "naive" ? 0.0 : result.cache.hit_rate();
      if (threads == 1) {
        if (mode == "naive") naive_per_sec_1t = per_sec;
        if (mode == "cold-ram") cold_per_sec_1t = per_sec;
        if (mode == "warm-ram") warm_per_sec_1t = per_sec;
        if (mode == "mapped") mapped_per_sec_1t = per_sec;
      }
      if (mode != "naive") {
        best_per_sec = std::max(best_per_sec, per_sec);
        if (mode == "cold-ram") hit_rate = rate;
      }

      ctx.write_csv_row({std::to_string(threads), mode, std::to_string(sessions),
                         util::Table::fmt(ms, 5), util::Table::fmt(per_sec, 5),
                         util::Table::fmt(rate, 4),
                         std::to_string(result.cache.store_hits),
                         std::to_string(static_cast<long long>(
                             result.aggregate.banked_work))});
      out.add_row({util::Table::fmt(static_cast<unsigned long long>(threads)), mode,
                   util::Table::fmt(ms, 5), util::Table::fmt(per_sec, 5),
                   util::Table::fmt(rate, 4),
                   util::Table::fmt(static_cast<unsigned long long>(
                       result.cache.store_hits)),
                   util::Table::fmt(static_cast<long long>(
                       result.aggregate.banked_work))});
    }
  }

  const auto ratio = [](double a, double b) { return b > 0 ? a / b : 0.0; };
  ctx.metric("cache_hit_rate", hit_rate);
  ctx.metric("speedup_vs_naive", ratio(cold_per_sec_1t, naive_per_sec_1t));
  ctx.metric("warm_ram_speedup_vs_naive",
             ratio(warm_per_sec_1t, naive_per_sec_1t));
  ctx.metric("mapped_speedup_vs_naive",
             ratio(mapped_per_sec_1t, naive_per_sec_1t));
  ctx.metric("mapped_over_cold_ram", ratio(mapped_per_sec_1t, cold_per_sec_1t));
  ctx.metric("best_sessions_per_sec", best_per_sec);

  ctx.table(out, std::to_string(sessions) + " dp-optimal sessions over " +
                     std::to_string(keys) + " solver keys, c = " + std::to_string(c) +
                     ", p = " + std::to_string(p) + ", Poisson owners");
  ctx.text(
      "Reading: `naive` re-solves W(p)[U] per session; `cold-ram` resolves\n"
      "each of the " + std::to_string(keys) + " canonical keys once and shares\n"
      "the table (hit rate (sessions − keys) / sessions); `warm-ram` reruns\n"
      "the batch on the already-hot cache (every session a RAM hit);\n"
      "`mapped` starts a COLD RAM cache over a pre-baked read-only persistent\n"
      "store, so every miss is answered by an mmap read and zero tables are\n"
      "solved — the warm-start deployment shape. `mapped_over_cold_ram` is\n"
      "the headline warm-start win (solves avoided entirely); the 1-thread\n"
      "cold-ram/naive ratio remains the pure RAM-cache win. Every cell\n"
      "reproduced the same aggregate banked work — the batch is\n"
      "bit-deterministic across thread counts and cache tiers by contract.");
}

}  // namespace

const harness::Experiment& experiment_batch_scaling() {
  static const harness::Experiment e{
      "E13", "batch_scaling",
      "Batch scaling: many-session engine across the solve-cache tiers",
      "bench_batch_scaling",
      "Throughput of sim::BatchRunner on a cache-friendly scenario mix — many "
      "dp-optimal sessions over few distinct canonical solver inputs — "
      "sweeping pool threads against the full cache-tier ladder (naive, "
      "cold RAM, warm RAM, pre-baked mapped store) and asserting the batch "
      "aggregate is bit-identical in every cell.",
      run};
  return e;
}

}  // namespace nowsched::bench
