// E13 — batch scaling: sim::BatchRunner driving a large mix of dp-optimal
// sessions, sweeping pool threads × solve-cache mode. The cache-friendly mix
// (many sessions over few distinct canonical solver inputs) is the shape a
// production service sees — thousands of contracts drawn from a handful of
// (c, U, p) classes — and the quantity under test is sessions/sec: how much
// the sharded solve cache buys over naive per-session re-solving, and how
// the batch scales with the pool. The aggregate metrics are asserted
// bit-identical across every (threads, mode) cell, so this bench doubles as
// a live determinism check on real workloads.
#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/harness.h"

#include "sim/batch_runner.h"
#include "util/thread_pool.h"

namespace nowsched::bench {
namespace {

std::vector<sim::ScenarioSpec> make_mix(std::size_t sessions, std::size_t keys,
                                        Ticks base_u, Ticks step_u, int p, Ticks c) {
  std::vector<sim::ScenarioSpec> specs;
  specs.reserve(sessions);
  for (std::size_t i = 0; i < sessions; ++i) {
    sim::ScenarioSpec spec;
    spec.policy = sim::PolicyKind::kDpOptimal;
    spec.owner = sim::OwnerKind::kPoisson;
    spec.owner_a = 3000.0;
    spec.params = Params{c};
    spec.lifespan = base_u + static_cast<Ticks>(i % keys) * step_u;
    spec.max_interrupts = p;
    spec.seed = 0x9E00 + i;
    specs.push_back(spec);
  }
  return specs;
}

void run(harness::Context& ctx) {
  const util::Flags& flags = ctx.flags();
  const Ticks c = flags.get_int("c", 32);
  const int p = static_cast<int>(flags.get_int("p", ctx.quick() ? 3 : 4));
  const std::size_t keys =
      static_cast<std::size_t>(flags.get_int("keys", ctx.quick() ? 4 : 8));
  const std::size_t sessions = static_cast<std::size_t>(
      flags.get_int("sessions", ctx.quick() ? 96 : 1024));
  const Ticks base_u = flags.get_int("u", ctx.quick() ? 2048 : 4096);
  const Ticks step_u = flags.get_int("step", 512);
  const int reps = ctx.quick() ? 1 : 2;

  const auto specs = make_mix(sessions, keys, base_u, step_u, p, c);
  const std::vector<std::size_t> thread_counts =
      ctx.quick() ? std::vector<std::size_t>{1, 2, 4}
                  : std::vector<std::size_t>{1, 2, 4, 8};

  ctx.csv({"threads", "mode", "sessions", "wall_ms", "sessions_per_sec",
           "hit_rate", "banked_total"});
  util::Table out({"threads", "mode", "wall ms", "sessions/s", "hit rate",
                   "banked total"});

  // Every cell must report this aggregate; the first run sets it.
  Ticks banked_reference = -1;
  double naive_per_sec_1t = 0.0, cached_per_sec_1t = 0.0;
  double best_per_sec = 0.0, hit_rate = 0.0;

  for (std::size_t threads : thread_counts) {
    util::ThreadPool pool(threads);
    for (const bool cached : {false, true}) {
      // A fresh runner per measured run: the cache starts cold, so hit rate
      // is the deterministic (sessions − keys) / sessions of one batch.
      sim::BatchResult result;
      const double ms = harness::time_best_of_ms(reps, [&] {
        sim::BatchOptions opts;
        opts.pool = &pool;
        opts.cache_enabled = cached;
        sim::BatchRunner runner(opts);
        result = runner.run(specs);
      });

      if (banked_reference < 0) banked_reference = result.aggregate.banked_work;
      if (result.aggregate.banked_work != banked_reference) {
        throw std::logic_error(
            "batch aggregate diverged across threads/cache modes: determinism "
            "contract broken");
      }

      const double per_sec =
          ms > 0 ? static_cast<double>(sessions) / (ms / 1000.0) : 0.0;
      const double rate = cached ? result.cache.hit_rate() : 0.0;
      const std::string mode = cached ? "cached" : "naive";
      if (threads == 1 && cached) cached_per_sec_1t = per_sec;
      if (threads == 1 && !cached) naive_per_sec_1t = per_sec;
      if (cached) {
        best_per_sec = std::max(best_per_sec, per_sec);
        hit_rate = rate;
      }

      ctx.write_csv_row({std::to_string(threads), mode, std::to_string(sessions),
                         util::Table::fmt(ms, 5), util::Table::fmt(per_sec, 5),
                         util::Table::fmt(rate, 4),
                         std::to_string(static_cast<long long>(
                             result.aggregate.banked_work))});
      out.add_row({util::Table::fmt(static_cast<unsigned long long>(threads)), mode,
                   util::Table::fmt(ms, 5), util::Table::fmt(per_sec, 5),
                   util::Table::fmt(rate, 4),
                   util::Table::fmt(static_cast<long long>(
                       result.aggregate.banked_work))});
    }
  }

  const double speedup =
      naive_per_sec_1t > 0 ? cached_per_sec_1t / naive_per_sec_1t : 0.0;
  ctx.metric("cache_hit_rate", hit_rate);
  ctx.metric("speedup_vs_naive", speedup);
  ctx.metric("best_sessions_per_sec", best_per_sec);

  ctx.table(out, std::to_string(sessions) + " dp-optimal sessions over " +
                     std::to_string(keys) + " solver keys, c = " + std::to_string(c) +
                     ", p = " + std::to_string(p) + ", Poisson owners");
  ctx.text(
      "Reading: `naive` re-solves W(p)[U] per session; `cached` resolves each\n"
      "of the " + std::to_string(keys) + " canonical keys once and shares the\n"
      "table (hit rate (sessions − keys) / sessions). The 1-thread\n"
      "cached/naive ratio is the pure cache win, reported as\n"
      "`speedup_vs_naive`; extra threads then scale the session loop on top.\n"
      "Every cell reproduced the same aggregate banked work — the batch is\n"
      "bit-deterministic across thread counts and cache modes by contract.");
}

}  // namespace

const harness::Experiment& experiment_batch_scaling() {
  static const harness::Experiment e{
      "E13", "batch_scaling",
      "Batch scaling: many-session engine with the sharded solve cache",
      "bench_batch_scaling",
      "Throughput of sim::BatchRunner on a cache-friendly scenario mix — many "
      "dp-optimal sessions over few distinct canonical solver inputs — "
      "sweeping pool threads and solve-cache mode, and asserting the batch "
      "aggregate is bit-identical in every cell.",
      run};
  return e;
}

}  // namespace nowsched::bench
