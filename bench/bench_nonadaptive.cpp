// E3 — §3.1 non-adaptive guideline analysis.
//
// Sweeps U/c and p; for each point reports
//   * the guideline's measured guaranteed work (exact best-response DP under
//     the §2.2 committed-schedule + tail-merge semantics),
//   * the corrected closed form  U − 2√(pcU) + pc,
//   * the OCR reading            U − √(2pcU) + pc   (shown to over-promise),
//   * the exhaustive best equal-period count vs the guideline's ⌊√(pU/c)⌋.
#include <cmath>
#include <vector>

#include "harness/harness.h"

#include "core/bounds.h"
#include "core/guidelines.h"
#include "solver/nonadaptive_eval.h"
#include "solver/nonadaptive_opt.h"

namespace nowsched::bench {
namespace {

void run(harness::Context& ctx) {
  const util::Flags& flags = ctx.flags();
  const Params params{flags.get_int("c", 16)};
  const double c = static_cast<double>(params.c);
  const int max_p = static_cast<int>(flags.get_int("max_p", ctx.quick() ? 4 : 8));

  ctx.csv({"U_over_c", "p", "m_guideline", "m_best", "W_guideline", "W_best_equal",
           "formula_corrected", "formula_ocr"});

  util::Table out({"U/c", "p", "m gd", "m best", "W gd", "W best", "W freeform",
                   "U−2√(pcU)+pc", "U−√(2pcU)+pc", "gd/corr"});

  const std::vector<Ticks> ratios =
      ctx.quick() ? std::vector<Ticks>{64, 256}
                  : std::vector<Ticks>{64, 256, 1024, 4096, 16384};
  for (Ticks ratio : ratios) {
    const Ticks u = ratio * params.c;
    const double ud = static_cast<double>(u);
    for (int p = 1; p <= max_p; p *= 2) {
      const auto sched = nonadaptive_guideline(u, p, params);
      const Ticks w = solver::nonadaptive_guaranteed_work(sched, u, p, params);
      const auto search = solver::best_equal_period_count(u, p, params);
      // Free-form local search over ALL committed schedules — probes the
      // "cannot be improved" claim beyond the equal-period family.
      const auto freeform = solver::optimize_committed(u, p, params);
      const double corrected = bounds::nonadaptive_work(ud, p, c);
      const double ocr = bounds::nonadaptive_work_ocr(ud, p, c);
      out.add_row({util::Table::fmt(static_cast<long long>(ratio)),
                   util::Table::fmt(static_cast<long long>(p)),
                   util::Table::fmt(static_cast<long long>(sched.size())),
                   util::Table::fmt(static_cast<long long>(search.best_m)),
                   util::Table::fmt(static_cast<long long>(w)),
                   util::Table::fmt(static_cast<long long>(search.best_value)),
                   util::Table::fmt(static_cast<long long>(freeform.value)),
                   util::Table::fmt(corrected, 6), util::Table::fmt(ocr, 6),
                   util::Table::fmt(corrected > 0 ? static_cast<double>(w) / corrected
                                                  : 0.0,
                                    4)});
      ctx.write_csv_row({static_cast<double>(ratio), static_cast<double>(p),
                         static_cast<double>(sched.size()),
                         static_cast<double>(search.best_m), static_cast<double>(w),
                         static_cast<double>(search.best_value), corrected, ocr});
    }
    out.add_rule();
  }
  ctx.table(out, "Non-adaptive guideline S_na(p)[U], c = " +
                     std::to_string(params.c) + " ticks");
  ctx.text(
      "Shape checks (E3):\n"
      "  * measured W matches U − 2√(pcU) + pc (ratio column → 1), NOT the OCR\n"
      "    reading U − √(2pcU) + pc, which exceeds every measured value;\n"
      "  * the guideline m = ⌊√(pU/c)⌋ matches the exhaustive best m (wide\n"
      "    plateau: small deviations cost < c of work).");
}

}  // namespace

const harness::Experiment& experiment_nonadaptive() {
  static const harness::Experiment e{
      "E3", "nonadaptive", "§3.1 non-adaptive guideline vs closed form",
      "bench_nonadaptive",
      "The committed equal-period guideline S_na(p)[U] evaluated exactly "
      "(best-response DP) against the corrected closed form U − 2√(pcU) + pc, "
      "the OCR misreading U − √(2pcU) + pc, the exhaustive best equal-period "
      "count, and a free-form local search over all committed schedules.",
      run};
  return e;
}

}  // namespace nowsched::bench
