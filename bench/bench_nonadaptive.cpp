// E3 — §3.1 non-adaptive guideline analysis.
//
// Sweeps U/c and p; for each point reports
//   * the guideline's measured guaranteed work (exact best-response DP under
//     the §2.2 committed-schedule + tail-merge semantics),
//   * the corrected closed form  U − 2√(pcU) + pc,
//   * the OCR reading            U − √(2pcU) + pc   (shown to over-promise),
//   * the exhaustive best equal-period count vs the guideline's ⌊√(pU/c)⌋.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "core/bounds.h"
#include "core/guidelines.h"
#include "solver/nonadaptive_eval.h"
#include "solver/nonadaptive_opt.h"

using namespace nowsched;

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const Params params{flags.get_int("c", 16)};
  const double c = static_cast<double>(params.c);
  const int max_p = static_cast<int>(flags.get_int("max_p", 8));

  bench::print_header("E3 / §3.1", "non-adaptive guideline vs closed form");
  util::CsvWriter csv(bench::csv_path(flags, "nonadaptive.csv"),
                      {"U_over_c", "p", "m_guideline", "m_best", "W_guideline",
                       "W_best_equal", "formula_corrected", "formula_ocr"});

  util::Table out({"U/c", "p", "m gd", "m best", "W gd", "W best", "W freeform",
                   "U−2√(pcU)+pc", "U−√(2pcU)+pc", "gd/corr"});

  for (Ticks ratio : {Ticks{64}, Ticks{256}, Ticks{1024}, Ticks{4096}, Ticks{16384}}) {
    const Ticks u = ratio * params.c;
    const double ud = static_cast<double>(u);
    for (int p = 1; p <= max_p; p *= 2) {
      const auto sched = nonadaptive_guideline(u, p, params);
      const Ticks w = solver::nonadaptive_guaranteed_work(sched, u, p, params);
      const auto search = solver::best_equal_period_count(u, p, params);
      // Free-form local search over ALL committed schedules — probes the
      // "cannot be improved" claim beyond the equal-period family.
      const auto freeform = solver::optimize_committed(u, p, params);
      const double corrected = bounds::nonadaptive_work(ud, p, c);
      const double ocr = bounds::nonadaptive_work_ocr(ud, p, c);
      out.add_row({util::Table::fmt(static_cast<long long>(ratio)),
                   util::Table::fmt(static_cast<long long>(p)),
                   util::Table::fmt(static_cast<long long>(sched.size())),
                   util::Table::fmt(static_cast<long long>(search.best_m)),
                   util::Table::fmt(static_cast<long long>(w)),
                   util::Table::fmt(static_cast<long long>(search.best_value)),
                   util::Table::fmt(static_cast<long long>(freeform.value)),
                   util::Table::fmt(corrected, 6), util::Table::fmt(ocr, 6),
                   util::Table::fmt(corrected > 0 ? static_cast<double>(w) / corrected
                                                  : 0.0,
                                    4)});
      csv.write_row({static_cast<double>(ratio), static_cast<double>(p),
                     static_cast<double>(sched.size()), static_cast<double>(search.best_m),
                     static_cast<double>(w), static_cast<double>(search.best_value),
                     corrected, ocr});
    }
    out.add_rule();
  }
  out.print(std::cout, "\nNon-adaptive guideline S_na(p)[U], c = " +
                           std::to_string(params.c) + " ticks");
  std::cout <<
      "\nShape checks (EXPERIMENTS.md E3):\n"
      "  * measured W matches U − 2√(pcU) + pc (ratio column → 1), NOT the OCR\n"
      "    reading U − √(2pcU) + pc, which exceeds every measured value;\n"
      "  * the guideline m = ⌊√(pU/c)⌋ matches the exhaustive best m (wide\n"
      "    plateau: small deviations cost < c of work).\n";
  std::cout << "CSV written to " << csv.path() << "\n";
  return 0;
}
