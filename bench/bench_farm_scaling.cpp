// E12 — farm scaling: a network of borrowed workstations draining one shared
// task bag (the §1 setting, at production scale). Sweeps the farm size and
// reports both the model outputs (total banked work, makespan, DES events —
// deterministic, fixed seeds) and this machine's wall clock per farm run.
#include <memory>
#include <vector>

#include "harness/harness.h"

#include "adversary/stochastic.h"
#include "core/equalized.h"
#include "sim/farm.h"
#include "sim/taskbag.h"

namespace nowsched::bench {
namespace {

void run(harness::Context& ctx) {
  const util::Flags& flags = ctx.flags();
  const Params params{flags.get_int("c", 16)};
  const Ticks u = flags.get_int("u", 16 * 1024);
  const int p = static_cast<int>(flags.get_int("p", 2));
  const int reps = ctx.quick() ? 1 : 3;

  ctx.csv({"stations", "banked_total", "makespan", "events", "tasks_left",
           "wall_ms", "stations_per_sec"});

  auto policy = std::make_shared<EqualizedGuidelinePolicy>();
  const std::vector<std::size_t> farm_sizes =
      ctx.quick() ? std::vector<std::size_t>{1, 4, 8}
                  : std::vector<std::size_t>{1, 2, 4, 8, 16, 32, 64};

  util::Table out({"stations", "banked total", "makespan", "events", "wall ms",
                   "stations/s"});
  for (std::size_t stations : farm_sizes) {
    auto build_farm = [&] {
      std::vector<sim::WorkstationConfig> cfgs;
      cfgs.reserve(stations);
      for (std::size_t i = 0; i < stations; ++i) {
        sim::WorkstationConfig cfg;
        // Assemble via append rather than operator+: string concatenation of
        // a literal with std::to_string trips a GCC 12 -Wrestrict false
        // positive (GCC bug 105651) when inlined under -O2. Retested on GCC
        // 12.2: still fires — keep until the toolchain reaches GCC 13.
        cfg.name = "b";
        cfg.name += std::to_string(i);
        cfg.opportunity = Opportunity{u, p};
        cfg.params = params;
        cfg.policy = policy;
        cfg.owner = std::make_shared<adversary::PoissonAdversary>(3000.0, 7 + i);
        cfgs.push_back(std::move(cfg));
      }
      return cfgs;
    };

    // Model outputs once (deterministic), wall clock best-of-reps.
    auto cfgs = build_farm();
    auto bag = sim::TaskBag::uniform(stations * 2048, 11);
    const auto result = sim::run_farm(cfgs, bag);

    const double ms = harness::time_best_of_ms(reps, [&] {
      auto timed_cfgs = build_farm();
      auto timed_bag = sim::TaskBag::uniform(stations * 2048, 11);
      sim::run_farm(timed_cfgs, timed_bag);
    });

    const double per_sec =
        ms > 0 ? static_cast<double>(stations) / (ms / 1000.0) : 0.0;
    ctx.write_csv_row({static_cast<double>(stations),
                       static_cast<double>(result.aggregate.banked_work),
                       static_cast<double>(result.makespan),
                       static_cast<double>(result.events),
                       static_cast<double>(result.tasks_left), ms, per_sec});
    out.add_row({util::Table::fmt(static_cast<unsigned long long>(stations)),
                 util::Table::fmt(static_cast<long long>(result.aggregate.banked_work)),
                 util::Table::fmt(static_cast<long long>(result.makespan)),
                 util::Table::fmt(static_cast<unsigned long long>(result.events)),
                 util::Table::fmt(ms, 5), util::Table::fmt(per_sec, 5)});
    if (stations == farm_sizes.back()) {
      ctx.metric("largest_farm_stations", static_cast<double>(stations));
      ctx.metric("largest_farm_wall_ms", ms);
      ctx.metric("largest_farm_stations_per_sec", per_sec);
    }
  }
  ctx.table(out, "equalized policy, U = " + std::to_string(u) + ", p = " +
                     std::to_string(p) + ", Poisson owners, shared bag of 2048 "
                     "tasks/station");
  ctx.text(
      "Reading: banked work and events scale linearly with the farm (each\n"
      "workstation's contract is independent; only the bag is shared), so\n"
      "stations/s holding steady across the sweep means the DES core costs\n"
      "O(events) with no superlinear queue or bag contention.");
}

}  // namespace

const harness::Experiment& experiment_farm_scaling() {
  static const harness::Experiment e{
      "E12", "farm_scaling", "Farm scaling: shared task bag across workstations",
      "bench_farm_scaling",
      "Farm-size sweep of the discrete-event simulator in the paper's §1 "
      "setting — many borrowed workstations draining one shared task bag — "
      "reporting deterministic model outputs (banked work, makespan, events) "
      "alongside this machine's wall clock per farm run.",
      run};
  return e;
}

}  // namespace nowsched::bench
