// P1 — solver performance: reference O(P·N²) vs fast O(P·N·log N), thread
// scaling of the block-parallel fast solver and of the policy evaluator.
#include <benchmark/benchmark.h>

#include "core/equalized.h"
#include "core/guidelines.h"
#include "solver/fast_solver.h"
#include "solver/policy_eval.h"
#include "solver/reference_solver.h"
#include "util/thread_pool.h"

using namespace nowsched;

namespace {

void BM_ReferenceSolver(benchmark::State& state) {
  const auto max_l = static_cast<Ticks>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver::solve_reference(2, max_l, Params{16}));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ReferenceSolver)->Range(1 << 8, 1 << 12)->Complexity(benchmark::oNSquared);

void BM_FastSolver(benchmark::State& state) {
  const auto max_l = static_cast<Ticks>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver::solve_fast(2, max_l, Params{16}));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FastSolver)->Range(1 << 10, 1 << 18)->Complexity(benchmark::oNLogN);

void BM_FastSolverHighP(benchmark::State& state) {
  const auto p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver::solve_fast(p, 1 << 15, Params{16}));
  }
}
BENCHMARK(BM_FastSolverHighP)->DenseRange(1, 8);

void BM_FastSolverParallel(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  util::ThreadPool pool(threads);
  // Large c engages the block-parallel path (blocks of c lifespans).
  const Params params{1024};
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver::solve_fast(3, 1 << 18, params, &pool));
  }
}
BENCHMARK(BM_FastSolverParallel)->RangeMultiplier(2)->Range(1, 4)->UseRealTime();

void BM_PolicyEvalEqualized(benchmark::State& state) {
  const auto max_l = static_cast<Ticks>(state.range(0));
  const EqualizedGuidelinePolicy policy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solver::evaluate_policy_grid(policy, max_l, 2, Params{16}));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PolicyEvalEqualized)->Range(1 << 9, 1 << 13);

void BM_PolicyEvalParallel(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  util::ThreadPool pool(threads);
  const AdaptiveGuidelinePolicy policy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solver::evaluate_policy_grid(policy, 1 << 13, 3, Params{16}, &pool));
  }
}
BENCHMARK(BM_PolicyEvalParallel)->RangeMultiplier(2)->Range(1, 4)->UseRealTime();

void BM_EqualizedEpisodeConstruction(benchmark::State& state) {
  const auto p = static_cast<int>(state.range(0));
  Ticks l = 16 * 4096;
  for (auto _ : state) {
    benchmark::DoNotOptimize(equalized_episode(l, p, Params{16}));
  }
}
BENCHMARK(BM_EqualizedEpisodeConstruction)->DenseRange(1, 6);

void BM_PrintedGuidelineConstruction(benchmark::State& state) {
  const auto p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(adaptive_episode_guideline(16 * 4096, p, Params{16}));
  }
}
BENCHMARK(BM_PrintedGuidelineConstruction)->DenseRange(1, 6);

}  // namespace

BENCHMARK_MAIN();
