// E10 — solver performance: reference O(P·N²) vs fast O(P·N), the level-fill
// kernel ladder (legacy binary search vs scalar two-pointer vs the SIMD
// kernels, fill-only on preallocated tables), thread scaling of the
// wavefront-parallel fast solver (plus the sequential-vs-wavefront c-sweep
// that locates the profitable crossover), the policy evaluator, and
// guideline-construction throughput.
//
// Self-timed on the harness clock (best-of-`reps` wall time) so the perf
// record shares the tier/CSV/JSON plumbing with the model experiments; the
// absolute numbers are one machine's sample, the shapes (scaling exponents,
// kernel ratios, thread speedups) are the claims.
#include <algorithm>
#include <cmath>
#include <vector>

#include "harness/harness.h"

#include "core/equalized.h"
#include "core/guidelines.h"
#include "solver/fast_solver.h"
#include "solver/policy_eval.h"
#include "solver/reference_solver.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace nowsched::bench {
namespace {

void run(harness::Context& ctx) {
  const Params params{16};
  const int reps = ctx.quick() ? 1 : 3;

  // 1. Reference O(N²) vs fast O(N log N) on the same grids.
  {
    util::Table out({"N", "reference ms", "fast ms", "speedup"});
    const std::vector<Ticks> sizes =
        ctx.quick() ? std::vector<Ticks>{256, 1024}
                    : std::vector<Ticks>{256, 1024, 4096};
    std::vector<double> log_n, log_ref, log_fast;
    for (Ticks n : sizes) {
      const double ref_ms = harness::time_best_of_ms(
          reps, [&] { solver::solve_reference(2, n, params); });
      const double fast_ms =
          harness::time_best_of_ms(reps, [&] { solver::solve_fast(2, n, params); });
      harness::write_perf_row(ctx, "reference", static_cast<double>(n), ref_ms, static_cast<double>(n));
      harness::write_perf_row(ctx, "fast", static_cast<double>(n), fast_ms, static_cast<double>(n));
      log_n.push_back(std::log(static_cast<double>(n)));
      log_ref.push_back(std::log(std::max(ref_ms, 1e-6)));
      log_fast.push_back(std::log(std::max(fast_ms, 1e-6)));
      out.add_row({util::Table::fmt(static_cast<long long>(n)),
                   util::Table::fmt(ref_ms, 5), util::Table::fmt(fast_ms, 5),
                   util::Table::fmt(fast_ms > 0 ? ref_ms / fast_ms : 0.0, 4)});
    }
    ctx.table(out, "reference vs fast solver, max_p = 2, c = 16");
    const auto ref_fit = util::fit_linear(log_n, log_ref);
    const auto fast_fit = util::fit_linear(log_n, log_fast);
    ctx.metric("reference_scaling_exponent", ref_fit.slope);
    // Full tier only: the quick grid gives the fast solver two sub-0.1 ms
    // points, and a log-log slope fitted through that much noise flips sign
    // run to run — it would flap the strict same-tier CI gate. (The
    // reference fit stays: its points are ms-scale even at quick tier.)
    if (!ctx.quick()) {
      ctx.metric("fast_scaling_exponent", fast_fit.slope);
    }
    ctx.text("empirical scaling exponents (log-log slope): reference " +
             util::Table::fmt(ref_fit.slope, 3) + " (theory 2), fast " +
             util::Table::fmt(fast_fit.slope, 3) + " (theory ~1)");
  }

  // 1b. Level-fill kernel ladder: every compiled kernel re-fills the SAME
  //     preallocated level pair (level 2 from a real level-1 table, the
  //     regime the diagonal fast path is built for). Fill-only by design —
  //     no slab allocation, no first-touch page faults — so the ratios are
  //     the kernel speedups the scan restructuring buys, not allocator
  //     noise. Re-filling an already-final level is idempotent under the
  //     kernel read contract (see solver/fill_kernel.h), so one warm fill
  //     precedes the timed repetitions.
  {
    const Params big_c{1024};
    const Ticks n = ctx.quick() ? (1 << 15) : (1 << 18);
    std::vector<Ticks> level0(static_cast<std::size_t>(n) + 1);
    for (Ticks l = 0; l <= n; ++l) {
      level0[static_cast<std::size_t>(l)] = positive_sub(l, big_c.c);
    }
    std::vector<Ticks> level1(static_cast<std::size_t>(n) + 1, 0);
    solver::run_fill_kernel(solver::SolverKernel::kLegacy, level1, level0, 1,
                            n + 1, big_c.c);
    std::vector<Ticks> level2(static_cast<std::size_t>(n) + 1, 0);

    std::vector<solver::SolverKernel> ladder{solver::SolverKernel::kLegacy};
    for (solver::SolverKernel k : solver::supported_solver_kernels()) {
      if (k != solver::SolverKernel::kLegacy) ladder.push_back(k);
    }
    util::Table out({"kernel", "fill ms/level", "speedup vs legacy"});
    double legacy_ms = 0.0, scalar_ms = 0.0, best_simd_ms = 0.0, active_ms = 0.0;
    const solver::SolverKernel active = solver::active_solver_kernel();
    for (solver::SolverKernel k : ladder) {
      std::fill(level2.begin(), level2.end(), 0);
      solver::run_fill_kernel(k, level2, level1, 1, n + 1, big_c.c);  // warm
      const double ms = harness::time_best_of_ms(std::max(reps, 3), [&] {
        solver::run_fill_kernel(k, level2, level1, 1, n + 1, big_c.c);
      });
      if (k == solver::SolverKernel::kLegacy) legacy_ms = ms;
      if (k == solver::SolverKernel::kScalar) scalar_ms = ms;
      if (k == solver::SolverKernel::kAvx2 || k == solver::SolverKernel::kNeon) {
        if (best_simd_ms == 0.0 || ms < best_simd_ms) best_simd_ms = ms;
      }
      if (k == active) active_ms = ms;
      harness::write_perf_row(ctx, std::string("kernel_") + solver::solver_kernel_name(k),
                              static_cast<double>(n), ms, static_cast<double>(n));
      out.add_row({solver::solver_kernel_name(k), util::Table::fmt(ms, 5),
                   util::Table::fmt(legacy_ms > 0 && ms > 0 ? legacy_ms / ms : 0.0, 4)});
    }
    ctx.table(out, "level-fill kernel ladder, c = 1024, N = " + std::to_string(n) +
                       " (fill-only, preallocated)");
    // The speedup ratios are same-run, same-machine quantities — stable
    // enough to gate in both tiers (unlike absolute wall clocks).
    if (legacy_ms > 0 && active_ms > 0) {
      ctx.metric("kernel_speedup_vs_legacy", legacy_ms / active_ms);
    }
    if (scalar_ms > 0 && best_simd_ms > 0) {
      ctx.metric("simd_speedup_vs_scalar", scalar_ms / best_simd_ms);
    }
    ctx.text("active kernel on this host: " +
             std::string(solver::solver_kernel_name(active)) +
             (legacy_ms > 0 && active_ms > 0
                  ? ", " + util::Table::fmt(legacy_ms / active_ms, 3) +
                        "x over the legacy binary-search scan"
                  : ""));
  }

  // 2. Fast solver across interrupt budgets at a fixed grid.
  {
    const Ticks n = ctx.quick() ? (1 << 12) : (1 << 15);
    util::Table out({"p", "ms", "states/s"});
    for (int p = 1; p <= 8; p += (ctx.quick() ? 3 : 1)) {
      const double ms =
          harness::time_best_of_ms(reps, [&] { solver::solve_fast(p, n, params); });
      const double states = static_cast<double>(n) * (p + 1);
      harness::write_perf_row(ctx, "fast_high_p", static_cast<double>(p), ms, states);
      out.add_row({util::Table::fmt(static_cast<long long>(p)),
                   util::Table::fmt(ms, 5),
                   util::Table::fmt(ms > 0 ? states / (ms / 1000.0) : 0.0, 5)});
    }
    ctx.table(out, "fast solver, N = " + std::to_string(n) + " lifespans");
  }

  // 3. Wavefront thread scaling: sequential solve vs the forced wavefront
  //    path at 1/2/4/8 pool threads, all against the same sequential
  //    baseline. max_p = 7 gives the DAG 8 levels of width to spread, so an
  //    8-thread pool can actually be saturated once the one-block pipeline
  //    fill completes. (Forced, so the shape is measured even on machines
  //    where the auto plan would decline; the plan's own decision — and the
  //    scan-step calibration it priced cells with — is reported below.)
  {
    const Params big_c{1024};
    const int wave_p = 7;
    const Ticks n = ctx.quick() ? (1 << 15) : (1 << 18);
    const double seq_ms = harness::time_best_of_ms(reps, [&] {
      solver::solve_fast(wave_p, n, big_c, nullptr,
                         solver::ParallelMode::kForceSequential);
    });
    harness::write_perf_row(ctx, "fast_sequential", 0.0, seq_ms, static_cast<double>(n));
    util::Table out({"threads", "ms", "speedup vs sequential"});
    out.add_row({"(sequential)", util::Table::fmt(seq_ms, 5), "1.000"});
    for (std::size_t threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
      util::ThreadPool pool(threads);
      const double ms = harness::time_best_of_ms(reps, [&] {
        solver::solve_fast(wave_p, n, big_c, &pool,
                           solver::ParallelMode::kForceWavefront);
      });
      harness::write_perf_row(ctx, "fast_wavefront", static_cast<double>(threads), ms,
             static_cast<double>(n));
      out.add_row({util::Table::fmt(static_cast<unsigned long long>(threads)),
                   util::Table::fmt(ms, 5),
                   util::Table::fmt(ms > 0 ? seq_ms / ms : 0.0, 3)});
      if (threads == 4) ctx.metric("fast_parallel_speedup_4t", ms > 0 ? seq_ms / ms : 0.0);
    }
    ctx.table(out, "wavefront fast solver, max_p = " + std::to_string(wave_p) +
                       ", c = 1024, N = " + std::to_string(n));

    // The engagement decision the auto mode would take on this grid, with
    // the two calibrated quantities it weighed. A declined plan on a machine
    // without real parallelism (e.g. a 1-core CI box) is the *correct*
    // outcome — the threshold exists so the parallel path never engages a
    // losing configuration.
    util::ThreadPool pool4(4);
    const auto plan = solver::plan_wavefront(wave_p, n, big_c, &pool4);
    // Full tier only: whether auto mode engages is a property of the host's
    // core count (0 on 1-core, typically 1 on multicore), so comparing it
    // across machines in the strict same-tier quick gate would fail on
    // hardware class, not on regressions.
    if (!ctx.quick()) {
      ctx.metric("wavefront_engaged_auto", plan.engage ? 1.0 : 0.0);
    }
    ctx.metric("wavefront_width", static_cast<double>(plan.width));
    ctx.text("auto engagement plan on this grid: " + std::string(plan.reason) +
             " (DAG width " + util::Table::fmt(static_cast<long long>(plan.width)) +
             ", est. cell cost " + util::Table::fmt(plan.cell_ns_estimate / 1000.0, 1) +
             " us vs measured dispatch " +
             util::Table::fmt(plan.dispatch_ns / 1000.0, 1) + " us/task)");
  }

  // 3b. Sequential-vs-wavefront sweep over the setup cost c: per-cell work
  //     grows with c (blocks are c wide), so the profitable crossover is a
  //     c threshold on a given machine. The smallest swept c where the
  //     4-thread wavefront beats sequential is recorded as
  //     `wavefront_crossover_c` (0 = never profitable here, the threshold
  //     keeps the parallel path disengaged).
  {
    const Ticks n = ctx.quick() ? (1 << 14) : (1 << 17);
    const std::vector<Ticks> cs = ctx.quick() ? std::vector<Ticks>{64, 512}
                                              : std::vector<Ticks>{32, 128, 512, 2048};
    util::ThreadPool pool(4);
    util::Table out({"c", "sequential ms", "wavefront ms (4t)", "speedup"});
    Ticks crossover = 0;
    for (Ticks c : cs) {
      const Params params_c{c};
      const double seq_ms = harness::time_best_of_ms(reps, [&] {
        solver::solve_fast(3, n, params_c, nullptr,
                           solver::ParallelMode::kForceSequential);
      });
      const double wf_ms = harness::time_best_of_ms(reps, [&] {
        solver::solve_fast(3, n, params_c, &pool,
                           solver::ParallelMode::kForceWavefront);
      });
      const double speedup = wf_ms > 0 ? seq_ms / wf_ms : 0.0;
      if (crossover == 0 && speedup > 1.0) crossover = c;
      harness::write_perf_row(ctx, "sweep_sequential", static_cast<double>(c), seq_ms,
             static_cast<double>(n));
      harness::write_perf_row(ctx, "sweep_wavefront", static_cast<double>(c), wf_ms,
             static_cast<double>(n));
      out.add_row({util::Table::fmt(static_cast<long long>(c)),
                   util::Table::fmt(seq_ms, 5), util::Table::fmt(wf_ms, 5),
                   util::Table::fmt(speedup, 3)});
    }
    // Full tier only: near parity (1-core hosts) the >1.0 test is a coin
    // flip, and a flapping metric would make the strict same-tier CI gate
    // fail on noise. The nightly full-tier comparison still tracks it.
    if (!ctx.quick()) {
      ctx.metric("wavefront_crossover_c", static_cast<double>(crossover));
    }
    ctx.table(out, "sequential vs forced 4-thread wavefront, max_p = 3, N = " +
                       std::to_string(n));
    ctx.text(crossover > 0
                 ? "measured crossover: wavefront profitable from c = " +
                       util::Table::fmt(static_cast<long long>(crossover)) +
                       " on this machine"
                 : "wavefront never profitable on this machine (hardware "
                   "parallelism unavailable); the auto threshold keeps it "
                   "disengaged");
  }

  // 4. Policy-evaluation DP: serial grid sweep and thread scaling.
  {
    const EqualizedGuidelinePolicy equalized;
    const AdaptiveGuidelinePolicy printed;
    util::Table out({"evaluator", "x", "ms"});
    const Ticks grid = ctx.quick() ? (1 << 10) : (1 << 13);
    const double eq_ms = harness::time_best_of_ms(reps, [&] {
      solver::evaluate_policy_grid(equalized, grid, 2, params);
    });
    harness::write_perf_row(ctx, "policy_eval_equalized", static_cast<double>(grid), eq_ms,
           static_cast<double>(grid));
    out.add_row({"equalized, serial", util::Table::fmt(static_cast<long long>(grid)),
                 util::Table::fmt(eq_ms, 5)});
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      util::ThreadPool pool(threads);
      const double ms = harness::time_best_of_ms(reps, [&] {
        solver::evaluate_policy_grid(printed, grid, 3, params, &pool);
      });
      harness::write_perf_row(ctx, "policy_eval_parallel", static_cast<double>(threads), ms,
             static_cast<double>(grid));
      out.add_row({"printed, " + std::to_string(threads) + " threads",
                   util::Table::fmt(static_cast<long long>(grid)),
                   util::Table::fmt(ms, 5)});
    }
    ctx.table(out, "policy-evaluation DP");
  }

  // 5. Guideline construction throughput (episodes built per second).
  {
    const Ticks l = 16 * 4096;
    const int iters = ctx.quick() ? 200 : 2000;
    util::Table out({"builder", "p", "ns/episode"});
    for (int p = 1; p <= 6; p += (ctx.quick() ? 5 : 1)) {
      const double eq_ms = harness::time_best_of_ms(reps, [&] {
        for (int i = 0; i < iters; ++i) equalized_episode(l, p, params);
      });
      const double pr_ms = harness::time_best_of_ms(reps, [&] {
        for (int i = 0; i < iters; ++i) adaptive_episode_guideline(l, p, params);
      });
      harness::write_perf_row(ctx, "equalized_episode", static_cast<double>(p), eq_ms,
             static_cast<double>(iters));
      harness::write_perf_row(ctx, "printed_episode", static_cast<double>(p), pr_ms,
             static_cast<double>(iters));
      out.add_row({"equalized", util::Table::fmt(static_cast<long long>(p)),
                   util::Table::fmt(eq_ms * 1e6 / iters, 5)});
      out.add_row({"printed", util::Table::fmt(static_cast<long long>(p)),
                   util::Table::fmt(pr_ms * 1e6 / iters, 5)});
    }
    ctx.table(out, "episode construction, U = " + std::to_string(l));
  }
}

}  // namespace

const harness::Experiment& experiment_solver_perf() {
  static const harness::Experiment e{
      "E10", "solver_perf", "Solver performance baselines",
      "bench_solver_perf",
      "Wall-clock baselines for the solvers: reference O(P·N²) vs fast "
      "O(P·N) with empirical scaling exponents, the level-fill kernel ladder "
      "(legacy binary-search scan vs scalar two-pointer vs SIMD, fill-only "
      "on preallocated tables), thread scaling of the wavefront-parallel "
      "fast solver with its auto-engagement plan and the "
      "sequential-vs-wavefront crossover sweep, the policy-evaluation DP, "
      "and guideline construction throughput.",
      run};
  return e;
}

}  // namespace nowsched::bench
