// E8 — stochastic owners (the companion expected-output model's territory):
// Monte-Carlo expected work of each policy under Poisson / Pareto / uniform
// owners, run on the discrete-event simulator. Guaranteed-output schedules
// are designed for the worst case; this bench measures what they give up —
// or don't — against benign owners.
#include <functional>
#include <memory>
#include <vector>

#include "harness/harness.h"

#include "adversary/stochastic.h"
#include "core/baselines.h"
#include "core/equalized.h"
#include "core/guidelines.h"
#include "sim/session.h"
#include "solver/policy_eval.h"
#include "util/stats.h"

namespace nowsched::bench {
namespace {

struct OwnerSpec {
  std::string name;
  std::function<std::unique_ptr<adversary::Adversary>(std::uint64_t seed)> make;
};

void run(harness::Context& ctx) {
  const util::Flags& flags = ctx.flags();
  const Params params{flags.get_int("c", 16)};
  const Ticks u = flags.get_int("u", ctx.quick() ? 16 * 512 : 16 * 2048);
  const int p = static_cast<int>(flags.get_int("p", 3));
  const int trials =
      static_cast<int>(flags.get_int("trials", ctx.quick() ? 50 : 400));

  ctx.csv({"policy", "owner", "mean_work", "p5_work", "guaranteed"});

  std::vector<std::pair<std::string, PolicyPtr>> policies;
  policies.emplace_back("single-block", std::make_shared<SingleBlockPolicy>());
  policies.emplace_back("fixed-chunk-8c", std::make_shared<FixedChunkPolicy>(8.0));
  policies.emplace_back("adaptive-printed", std::make_shared<AdaptiveGuidelinePolicy>());
  policies.emplace_back("equalized", std::make_shared<EqualizedGuidelinePolicy>());

  const double mean_gap = static_cast<double>(u) / static_cast<double>(p + 1);
  std::vector<OwnerSpec> owners;
  owners.push_back({"poisson", [&](std::uint64_t seed) {
                      return std::make_unique<adversary::PoissonAdversary>(mean_gap,
                                                                           seed);
                    }});
  owners.push_back({"pareto", [&](std::uint64_t seed) {
                      return std::make_unique<adversary::ParetoSessionAdversary>(
                          mean_gap / 4.0, 1.2, seed);
                    }});
  owners.push_back({"uniform-40%", [&](std::uint64_t seed) {
                      return std::make_unique<adversary::UniformEpisodeAdversary>(0.4,
                                                                                  seed);
                    }});

  util::Table out({"policy", "owner", "E[work]", "p5", "p95", "guaranteed (minimax)"},
                  {util::Align::kLeft, util::Align::kLeft, util::Align::kRight,
                   util::Align::kRight, util::Align::kRight, util::Align::kRight});

  for (const auto& [pname, policy] : policies) {
    const Ticks guaranteed = solver::evaluate_policy(*policy, u, p, params);
    for (const auto& owner : owners) {
      std::vector<double> works;
      works.reserve(static_cast<std::size_t>(trials));
      for (int trial = 0; trial < trials; ++trial) {
        auto adv = owner.make(0x9E3779B9u + static_cast<std::uint64_t>(trial));
        const auto metrics =
            sim::run_session(*policy, *adv, Opportunity{u, p}, params);
        works.push_back(static_cast<double>(metrics.banked_work));
      }
      const util::Summary summary(std::move(works));
      out.add_row({pname, owner.name, util::Table::fmt(summary.mean(), 6),
                   util::Table::fmt(summary.quantile(0.05), 6),
                   util::Table::fmt(summary.quantile(0.95), 6),
                   util::Table::fmt(static_cast<long long>(guaranteed))});
      ctx.write_csv_row({pname, owner.name, util::Table::fmt(summary.mean(), 9),
                         util::Table::fmt(summary.quantile(0.05), 9),
                         util::Table::fmt(static_cast<long long>(guaranteed))});
    }
    out.add_rule();
  }
  ctx.table(out, "U = " + std::to_string(u) + ", p = " + std::to_string(p) +
                     ", c = " + std::to_string(params.c) + ", " +
                     std::to_string(trials) + " trials/cell");
  ctx.text(
      "Shape checks (E8):\n"
      "  * single-block has the best expectation under benign owners but a\n"
      "    worthless guarantee — the §1.1 tension in one row;\n"
      "  * the guideline policies' expected work dominates their guarantee\n"
      "    and concentrates (p5 close to mean): insurance priced at the\n"
      "    setup overhead only.");
}

}  // namespace

const harness::Experiment& experiment_stochastic() {
  static const harness::Experiment e{
      "E8", "stochastic", "Stochastic owners: expected vs guaranteed output",
      "bench_stochastic",
      "Monte-Carlo expected work of each policy under Poisson, Pareto, and "
      "uniform owners on the discrete-event simulator, next to the minimax "
      "guarantee — what worst-case insurance costs against benign owners.",
      run};
  return e;
}

}  // namespace nowsched::bench
