// E6 — the §1.1 tension: many short periods (interrupt-safe, setup-heavy)
// versus few long periods (setup-light, interrupt-fragile).
//
// Compares guaranteed work across the whole policy zoo — the paper's
// guidelines, the DP optimum, and the naive baselines the introduction and
// related work (§1.3) argue against — plus an ablation of the Thm 4.1/4.2
// transforms applied to a deliberately bad committed schedule.
#include <memory>
#include <vector>

#include "harness/harness.h"

#include "core/baselines.h"
#include "core/equalized.h"
#include "core/guidelines.h"
#include "core/transforms.h"
#include "solver/extract.h"
#include "solver/fast_solver.h"
#include "solver/nonadaptive_eval.h"
#include "solver/policy_eval.h"
#include "util/thread_pool.h"

namespace nowsched::bench {
namespace {

void run(harness::Context& ctx) {
  const util::Flags& flags = ctx.flags();
  const Params params{flags.get_int("c", 16)};
  const int max_p = static_cast<int>(flags.get_int("max_p", 3));
  util::ThreadPool& pool = util::global_pool();

  ctx.csv({"U_over_c", "p", "policy", "guaranteed_work"});

  std::vector<std::pair<std::string, PolicyPtr>> policies;
  policies.emplace_back("single-block", std::make_shared<SingleBlockPolicy>());
  policies.emplace_back("fixed-chunk-2c", std::make_shared<FixedChunkPolicy>(2.0));
  policies.emplace_back("fixed-chunk-8c", std::make_shared<FixedChunkPolicy>(8.0));
  policies.emplace_back("fixed-chunk-32c", std::make_shared<FixedChunkPolicy>(32.0));
  policies.emplace_back("geometric-1/2", std::make_shared<GeometricPolicy>(2.0, 2.0));
  policies.emplace_back("nonadaptive-restart",
                        std::make_shared<NonAdaptiveGuidelinePolicy>());
  policies.emplace_back("adaptive-printed",
                        std::make_shared<AdaptiveGuidelinePolicy>(PivotRule::kAsPrinted));
  policies.emplace_back("equalized", std::make_shared<EqualizedGuidelinePolicy>());

  const std::vector<Ticks> ratios = ctx.quick()
                                        ? std::vector<Ticks>{256}
                                        : std::vector<Ticks>{256, 1024, 4096};
  for (Ticks ratio : ratios) {
    const Ticks u = ratio * params.c;
    const auto table = solver::solve_fast(max_p, u, params, &pool);

    util::Table out({"policy", "p=1", "p=2", "p=3", "% of opt (p=3)"},
                    {util::Align::kLeft, util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight});
    for (const auto& [name, policy] : policies) {
      std::vector<std::string> row = {name};
      Ticks w3 = 0;
      for (int p = 1; p <= max_p; ++p) {
        const Ticks w = solver::evaluate_policy(*policy, u, p, params, &pool);
        if (p == 3) w3 = w;
        row.push_back(util::Table::fmt(static_cast<long long>(w)));
        ctx.write_csv_row({util::Table::fmt(static_cast<long long>(ratio)),
                           util::Table::fmt(static_cast<long long>(p)), name,
                           util::Table::fmt(static_cast<long long>(w))});
      }
      const Ticks opt3 = table.value(std::min(3, max_p), u);
      row.push_back(util::Table::fmt(
          opt3 > 0 ? 100.0 * static_cast<double>(w3) / static_cast<double>(opt3) : 0.0,
          4));
      out.add_row(std::move(row));
    }
    // Committed §3.1 schedule under true non-adaptive semantics, as a row.
    {
      std::vector<std::string> row = {"nonadaptive-committed"};
      Ticks w3 = 0;
      for (int p = 1; p <= max_p; ++p) {
        const auto sched = nonadaptive_guideline(u, p, params);
        const Ticks w = solver::nonadaptive_guaranteed_work(sched, u, p, params);
        if (p == 3) w3 = w;
        row.push_back(util::Table::fmt(static_cast<long long>(w)));
        ctx.write_csv_row({util::Table::fmt(static_cast<long long>(ratio)),
                           util::Table::fmt(static_cast<long long>(p)),
                           "nonadaptive-committed",
                           util::Table::fmt(static_cast<long long>(w))});
      }
      const Ticks opt3 = table.value(std::min(3, max_p), u);
      row.push_back(util::Table::fmt(
          opt3 > 0 ? 100.0 * static_cast<double>(w3) / static_cast<double>(opt3) : 0.0,
          4));
      out.add_row(std::move(row));
    }
    // DP optimum.
    {
      std::vector<std::string> row = {"dp-optimal"};
      for (int p = 1; p <= max_p; ++p) {
        row.push_back(util::Table::fmt(static_cast<long long>(table.value(p, u))));
        ctx.write_csv_row({util::Table::fmt(static_cast<long long>(ratio)),
                           util::Table::fmt(static_cast<long long>(p)), "dp-optimal",
                           util::Table::fmt(static_cast<long long>(table.value(p, u)))});
      }
      row.push_back("100");
      out.add_row(std::move(row));
    }
    ctx.table(out, "U/c = " + std::to_string(ratio) + " (guaranteed work; c = " +
                       std::to_string(params.c) + " ticks)");
  }

  // Ablation: Thm 4.1/4.2 transforms rescue a pathological committed schedule.
  const Ticks ablation_ratio = ctx.quick() ? 256 : 1024;
  const Ticks u = ablation_ratio * params.c;
  std::vector<Ticks> bad;
  for (int i = 0; i < 64; ++i) bad.push_back(params.c / 2 + (i % 3));  // unproductive
  Ticks used = 0;
  for (Ticks t : bad) used += t;
  bad.push_back(u - used);  // one giant period
  const EpisodeSchedule pathological(std::move(bad));
  const auto productive = make_productive(pathological, params);
  const auto banded = split_immune_tail(productive, productive.size(), params);
  util::Table ab({"schedule", "m", "guaranteed work (p=2)"},
                 {util::Align::kLeft, util::Align::kRight, util::Align::kRight});
  for (const auto& [name, sched] :
       std::vector<std::pair<std::string, const EpisodeSchedule*>>{
           {"pathological (64 runt periods + 1 giant)", &pathological},
           {"after Thm 4.1 make_productive", &productive},
           {"after Thm 4.2 split into (c,2c]", &banded}}) {
    ab.add_row({name, util::Table::fmt(static_cast<long long>(sched->size())),
                util::Table::fmt(static_cast<long long>(
                    solver::nonadaptive_guaranteed_work(*sched, u, 2, params)))});
  }
  ctx.table(ab, "Ablation — Thm 4.1/4.2 transforms on a pathological committed "
                "schedule (U/c = " +
                    std::to_string(ablation_ratio) + ", p = 2)");
}

}  // namespace

const harness::Experiment& experiment_policy_comparison() {
  static const harness::Experiment e{
      "E6", "policy_comparison", "§1.1 policy comparison under the malicious adversary",
      "bench_policy_comparison",
      "Guaranteed work of the whole policy zoo — naive baselines, the paper's "
      "guidelines, and the DP optimum — plus an ablation showing the Thm "
      "4.1/4.2 transforms rescuing a pathological committed schedule.",
      run};
  return e;
}

}  // namespace nowsched::bench
