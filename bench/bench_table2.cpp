// E2 — regenerates Table 2: "Parameter values for the case p = 1".
//
// Per lifespan ratio U/c, prints the paper's columns for both S_opt(1)[U]
// (closed form, §5.2) and the adaptive guideline S_a(1)[U] (§3.2):
//   m(1)[U], α, t_1, t_{m−2}, t_{m−1} = t_m, and W(1)[U],
// with the paper's approximations alongside our exact grid values, plus the
// DP optimum as ground truth.
#include <cmath>
#include <vector>

#include "harness/harness.h"

#include "core/bounds.h"
#include "core/closed_form.h"
#include "core/guidelines.h"
#include "solver/fast_solver.h"

namespace nowsched::bench {
namespace {

void run(harness::Context& ctx) {
  const util::Flags& flags = ctx.flags();
  const Params params{flags.get_int("c", 16)};
  const double c = static_cast<double>(params.c);

  ctx.csv({"U_over_c", "m_opt_formula", "m_opt_real", "alpha", "W_opt_exact",
           "W_opt_paper_approx", "m_guideline_paper", "m_guideline_real",
           "W_guideline_exact", "W_dp"});

  util::Table out({"U/c", "m_opt (5.1)", "m_opt", "alpha", "t_1/c", "t_m/c",
                   "W_opt", "W approx", "m_a paper", "m_a", "W(S_a)", "W dp"});

  const std::vector<Ticks> ratios =
      ctx.quick() ? std::vector<Ticks>{64, 256}
                  : std::vector<Ticks>{64, 256, 1024, 4096, 16384};
  for (Ticks ratio : ratios) {
    const Ticks u = ratio * params.c;
    const double ud = static_cast<double>(u);

    // Closed-form optimum.
    const auto opt = optimal_p1_schedule(u, params);
    const Ticks w_opt = guaranteed_work_p1(opt.schedule, u, params);
    const double w_approx = bounds::optimal_p1_work(ud, c);

    // §3.2 guideline.
    AdaptiveLayout layout;
    const auto guideline = adaptive_episode_guideline(u, 1, params,
                                                      PivotRule::kAsPrinted, &layout);
    const Ticks w_guideline = guaranteed_work_p1(guideline, u, params);
    const std::size_t m_paper = adaptive_period_count_paper(u, 1, params);

    // DP ground truth.
    const auto table = solver::solve_fast(1, u, params);
    const Ticks w_dp = table.value(1, u);

    out.add_row({util::Table::fmt(static_cast<long long>(ratio)),
                 util::Table::fmt(bounds::optimal_p1_period_count(ud, c), 4),
                 util::Table::fmt(static_cast<long long>(opt.m)),
                 util::Table::fmt(opt.alpha, 3),
                 util::Table::fmt(static_cast<double>(opt.schedule.period(0)) / c, 4),
                 util::Table::fmt(
                     static_cast<double>(opt.schedule.period(opt.schedule.size() - 1)) / c,
                     3),
                 util::Table::fmt(static_cast<long long>(w_opt)),
                 util::Table::fmt(w_approx, 6),
                 util::Table::fmt(static_cast<long long>(m_paper)),
                 util::Table::fmt(static_cast<long long>(layout.total_periods)),
                 util::Table::fmt(static_cast<long long>(w_guideline)),
                 util::Table::fmt(static_cast<long long>(w_dp))});

    ctx.write_csv_row({static_cast<double>(ratio),
                       bounds::optimal_p1_period_count(ud, c),
                       static_cast<double>(opt.m), opt.alpha,
                       static_cast<double>(w_opt), w_approx,
                       static_cast<double>(m_paper),
                       static_cast<double>(layout.total_periods),
                       static_cast<double>(w_guideline), static_cast<double>(w_dp)});
  }
  ctx.table(out, "Table 2 (c = " + std::to_string(params.c) + " ticks)");
  ctx.text(
      "Paper shape checks:\n"
      "  * m_opt tracks sqrt(2U/c − 7/4) − 1/2 (eq. 5.1)\n"
      "  * t_m = t_{m−1} = (1+alpha)c with alpha in (0,1]\n"
      "  * W_opt ≈ U − sqrt(2cU) − c/2 (Table 2 approximation column)\n"
      "  * the S_a(1) guideline stays within low-order terms of W_opt and both\n"
      "    match the DP ground truth column.");
}

}  // namespace

const harness::Experiment& experiment_table2() {
  static const harness::Experiment e{
      "E2", "table2", "Table 2: parameter values for the case p = 1",
      "bench_table2",
      "Per lifespan ratio U/c: the closed-form optimal 1-interrupt schedule "
      "(period count m, pivot α, first/last periods, guaranteed work) next to "
      "the paper's approximations, the §3.2 adaptive guideline, and the DP "
      "optimum as ground truth.",
      run};
  return e;
}

}  // namespace nowsched::bench
