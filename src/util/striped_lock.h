// Mutex striping: spread lock contention over a fixed array of mutexes.
//
// A StripedMutex owns S mutexes (S rounded up to a power of two so stripe
// selection is a mask, and the same hash always lands on the same stripe).
// Callers hash their key, lock the stripe the hash selects, and touch only
// state belonging to that stripe. This is the concurrency skeleton of
// solver::SolveCache: stripe i guards shard i's map, so threads resolving
// different keys proceed in parallel and threads racing on one key serialize
// on exactly one mutex.
//
// Locking two stripes at once is not supported by this interface (a single
// lock() call locks exactly one) — which is precisely what makes it
// deadlock-free by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>

namespace nowsched::util {

class StripedMutex {
 public:
  /// `stripes` is rounded up to the next power of two; 0 selects 1.
  explicit StripedMutex(std::size_t stripes)
      : count_(round_up_pow2(stripes)),
        mutexes_(std::make_unique<std::mutex[]>(count_)) {}

  std::size_t stripes() const noexcept { return count_; }

  /// Which stripe a hash selects; stable for the lifetime of the object.
  std::size_t index_for(std::uint64_t hash) const noexcept {
    return static_cast<std::size_t>(hash) & (count_ - 1);
  }

  std::mutex& stripe(std::size_t index) noexcept { return mutexes_[index]; }

  /// Locks the stripe `hash` selects; the guard releases on destruction.
  [[nodiscard]] std::unique_lock<std::mutex> lock(std::uint64_t hash) {
    return std::unique_lock<std::mutex>(mutexes_[index_for(hash)]);
  }

 private:
  static std::size_t round_up_pow2(std::size_t n) noexcept {
    std::size_t p = 1;
    while (p < n && p < (std::size_t{1} << 20)) p <<= 1;
    return p;
  }

  std::size_t count_;
  std::unique_ptr<std::mutex[]> mutexes_;
};

}  // namespace nowsched::util
