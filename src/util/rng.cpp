#include "util/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/hash.h"

namespace nowsched::util {

std::uint64_t Rng::next() noexcept {
  // Canonical SplitMix64: golden-ratio counter through the shared finalizer
  // (util/hash.h owns the mixer constants; one definition, one stream).
  return hash_mix(state_ += 0x9E3779B97F4A7C15ull);
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire 2019: unbiased multiply-shift with rejection.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  if (span == 0) return static_cast<std::int64_t>(next());
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform01() noexcept {
  // 53 random mantissa bits -> uniform on [0,1) with full double resolution.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

double Rng::exponential(double lambda) noexcept {
  assert(lambda > 0.0);
  // 1 - U in (0,1] avoids log(0).
  return -std::log1p(-uniform01()) / lambda;
}

double Rng::pareto(double x_m, double alpha) noexcept {
  assert(x_m > 0.0 && alpha > 0.0);
  const double u = 1.0 - uniform01();  // (0, 1]
  return x_m / std::pow(u, 1.0 / alpha);
}

bool Rng::bernoulli(double p) noexcept { return uniform01() < p; }

Rng Rng::split() noexcept { return Rng(next()); }

std::vector<std::uint64_t> Rng::sample_distinct(std::uint64_t n, std::uint64_t k) {
  assert(k <= n);
  // Floyd's algorithm: for j in [n-k, n), pick t in [0, j]; insert t or j.
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(k));
  for (std::uint64_t j = n - k; j < n; ++j) {
    const std::uint64_t t = next_below(j + 1);
    if (std::find(out.begin(), out.end(), t) == out.end()) {
      out.push_back(t);
    } else {
      out.push_back(j);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace nowsched::util
