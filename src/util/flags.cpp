#include "util/flags.h"

#include <cstdlib>

namespace nowsched::util {

Flags::Flags(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "true";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positionals_.push_back(std::move(arg));
    }
  }
}

bool Flags::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Flags::get(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace nowsched::util
