#include "util/flags.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace nowsched::util {

namespace {

[[noreturn]] void parse_error(const std::string& program, const std::string& detail) {
  std::fprintf(stderr, "%s: usage error: %s\n",
               program.empty() ? "nowsched" : program.c_str(), detail.c_str());
  std::exit(2);
}

}  // namespace

Flags::Flags(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  bool flags_ended = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!flags_ended && arg == "--") {
      // Conventional end-of-flags separator: not a flag, not a positional.
      flags_ended = true;
      continue;
    }
    if (!flags_ended && arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      std::string key =
          eq == std::string::npos ? arg.substr(2) : arg.substr(2, eq - 2);
      if (key.empty()) {
        parse_error(program_, "empty flag name in \"" + arg + "\"");
      }
      values_[std::move(key)] =
          eq == std::string::npos ? "true" : arg.substr(eq + 1);
    } else {
      positionals_.push_back(std::move(arg));
    }
  }
}

void Flags::usage_error(const std::string& key, const char* expected,
                        const std::string& value) const {
  parse_error(program_,
              "--" + key + " expects " + expected + ", got \"" + value + "\"");
}

bool Flags::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Flags::get(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& value = it->second;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (value.empty() || end != value.c_str() + value.size() || errno == ERANGE) {
    usage_error(key, "an integer", value);
  }
  return parsed;
}

double Flags::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& value = it->second;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (value.empty() || end != value.c_str() + value.size() || errno == ERANGE) {
    usage_error(key, "a number", value);
  }
  return parsed;
}

bool Flags::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& value = it->second;
  if (value == "true" || value == "1" || value == "yes" || value == "on") return true;
  if (value == "false" || value == "0" || value == "no" || value == "off") {
    return false;
  }
  usage_error(key, "a boolean (true/false, 1/0, yes/no, on/off)", value);
}

}  // namespace nowsched::util
