#include "util/csv.h"

#include <cassert>
#include <sstream>
#include <stdexcept>

namespace nowsched::util {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : path_(path), out_(path), arity_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  write_row(header);
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string quoted = "\"";
  for (char ch : field) {
    if (ch == '"') quoted += "\"\"";
    else quoted += ch;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  assert(cells.size() == arity_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    std::ostringstream os;
    os.precision(12);
    os << v;
    cells.push_back(os.str());
  }
  write_row(cells);
}

}  // namespace nowsched::util
