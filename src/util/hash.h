// Deterministic 64-bit hashing for cache keys and stream derivation.
//
// std::hash's exact output is implementation-defined, which would make
// anything keyed on it (shard assignment, derived RNG seeds) differ across
// standard libraries — the same trap rng.h avoids with std::mt19937. These
// mixers are fixed published constants (SplitMix64's finalizer, the same
// function Rng::next applies), so shard layouts and per-scenario seed
// derivations are identical on every platform.
#pragma once

#include <cstdint>

namespace nowsched::util {

/// SplitMix64 finalizer (Stafford's Mix13 variant): a bijective avalanche
/// mix of a 64-bit value. hash_mix(x) == 0 only for one specific x, so
/// zero-valued fields do not collapse combined hashes.
[[nodiscard]] constexpr std::uint64_t hash_mix(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

/// Folds `value` into `seed`. Order-sensitive: combine(combine(s, a), b)
/// differs from combine(combine(s, b), a), so field order in a key is part
/// of the key. The golden-ratio offset keeps combine(0, 0) != 0.
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                                   std::uint64_t value) noexcept {
  return hash_mix(seed + 0x9E3779B97F4A7C15ull + value);
}

}  // namespace nowsched::util
