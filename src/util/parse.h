// Strict whole-string number parsing, shared by every text-record reader
// (scenario replay files, session checkpoints, environment tier knobs).
//
// The repo-wide rule since PR 2 is that a malformed number is a hard error,
// never a silently-consumed prefix — util::Flags enforces it for CLI flags
// with exit(2); these helpers are the throwing/optional building blocks for
// parsers that must not exit. nullopt means "not a valid number of this
// type" (empty input, trailing junk, out of range, or a sign that the type
// forbids); the caller owns the diagnostic.
#pragma once

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>

namespace nowsched::util {

[[nodiscard]] inline std::optional<std::int64_t> parse_int64(const std::string& s) {
  if (s.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno == ERANGE) return std::nullopt;
  return static_cast<std::int64_t>(v);
}

[[nodiscard]] inline std::optional<std::uint64_t> parse_uint64(const std::string& s) {
  // strtoull happily wraps negative inputs; forbid the sign explicitly.
  if (s.empty() || s[0] == '-') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno == ERANGE) return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

[[nodiscard]] inline std::optional<double> parse_double(const std::string& s) {
  if (s.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || errno == ERANGE) return std::nullopt;
  // "nan" and "inf" parse whole-string but are poison for every consumer
  // (NaN slides through range checks of the `x < lo || x > hi` shape and
  // can hang arrival-sampling loops); a text record never needs them.
  if (!std::isfinite(v)) return std::nullopt;
  return v;
}

}  // namespace nowsched::util
