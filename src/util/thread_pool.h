// Fixed-size thread pool with a blocking parallel_for.
//
// The solver's policy-evaluation DP is level-synchronous: within a level all
// states are independent, so a chunked parallel_for over the state index is
// the natural parallelization (cf. the message-passing discipline of the HPC
// guides: explicit decomposition, no shared mutable state inside a chunk).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace nowsched::util {

class ThreadPool {
 public:
  /// threads == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Run fn(i) for i in [begin, end), split into ~4x-oversubscribed chunks,
  /// blocking until all complete. Exceptions from fn propagate (first one
  /// wins). Serial fallback when the range is small or the pool has 1 thread.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Run fn(chunk_begin, chunk_end) over contiguous chunks; lower dispatch
  /// overhead for very cheap per-index bodies.
  void parallel_for_chunks(std::size_t begin, std::size_t end,
                           const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Process-wide pool for library internals (lazily constructed, never torn
/// down before exit). Size honours NOWSCHED_THREADS when set.
ThreadPool& global_pool();

}  // namespace nowsched::util
