// Fixed-size thread pool with a blocking parallel_for and a counter-based
// task-graph (DAG) executor.
//
// Two execution disciplines, matched to the two shapes the solvers have:
//   * parallel_for / parallel_for_chunks — level-synchronous: all iterations
//     of one dispatch are independent and the call is a full barrier. Right
//     for the policy-evaluation DP, whose states within a level are
//     independent.
//   * run_dag(TaskGraph) — wavefront: tasks carry explicit dependency edges
//     and start the moment their last predecessor finishes, with no global
//     barrier anywhere. Right for the fast solver's (level, block) grid,
//     where a per-block barrier per level was measured to cost more than the
//     blocks' own work (see DESIGN.md "Parallel solver architecture").
//
// Thread-safety contract: a ThreadPool object may be driven from one
// submitting thread at a time (parallel_for*/run_dag are blocking calls and
// are not reentrant — do not call them from inside a task running on the
// same pool). Worker threads only ever touch the tasks handed to them.
// Happens-before: everything a task wrote is visible to every task that
// depends on it (run_dag releases dependents through an acq_rel counter
// decrement, and the task queue hands tasks over under a mutex), and
// everything any task wrote is visible to the submitting thread when the
// blocking call returns.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

namespace nowsched::util {

/// A directed acyclic graph of tasks for ThreadPool::run_dag. Build it on
/// one thread: add_task() returns dense ids 0, 1, 2, …; add_edge(a, b)
/// declares "b runs after a". The builder itself does not reject cycles;
/// run_dag verifies acyclicity with a counter pass before executing
/// anything and throws std::logic_error on a cyclic graph (no task runs).
class TaskGraph {
 public:
  using TaskId = std::size_t;

  /// Adds a task; returns its id. `fn` must be invocable exactly once.
  TaskId add_task(std::function<void()> fn);

  /// Declares that `after` must not start until `before` has finished.
  /// Both ids must already exist. Duplicate edges are allowed (each one
  /// counts — callers should add an edge at most once per ordered pair).
  void add_edge(TaskId before, TaskId after);

  std::size_t size() const noexcept { return nodes_.size(); }

 private:
  friend class ThreadPool;
  struct Node {
    std::function<void()> fn;
    std::vector<TaskId> dependents;  // edges out of this node
    std::size_t num_deps = 0;        // edges into this node
  };
  std::vector<Node> nodes_;
};

class ThreadPool {
 public:
  /// threads == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Run fn(i) for i in [begin, end), split into ~4x-oversubscribed chunks,
  /// blocking until all complete. Exceptions from fn propagate (first one
  /// wins). Serial fallback when the range is smaller than two grains or
  /// the pool has 1 thread.
  ///
  /// `grain` is the minimum indices per dispatched chunk — the knob that
  /// matches dispatch overhead to body weight. The default (64) suits
  /// cheap table-index bodies like the DP loops; pass 1 for heavy bodies
  /// (e.g. BatchRunner's whole-session tasks, ms-scale each), where a
  /// 64-wide grain would leave small ranges entirely serial and large ones
  /// load-imbalanced.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 64);

  /// Run fn(chunk_begin, chunk_end) over contiguous chunks; lower dispatch
  /// overhead for very cheap per-index bodies. Same `grain` semantics as
  /// parallel_for.
  void parallel_for_chunks(std::size_t begin, std::size_t end,
                           const std::function<void(std::size_t, std::size_t)>& fn,
                           std::size_t grain = 64);

  /// Execute every task in `graph` respecting its edges, blocking until all
  /// have finished. Tasks with no unfinished predecessors run concurrently;
  /// there is no barrier of any kind between "generations" — a task starts
  /// the instant its own dependency counter reaches zero.
  ///
  /// Determinism: with size() <= 1 the graph runs inline on the calling
  /// thread in a fixed topological order (ready tasks execute in ascending
  /// id order), so a 1-thread pool is bit-for-bit reproducible.
  ///
  /// Errors: the first exception thrown by a task is captured and rethrown
  /// to the caller after the graph drains. Transitive dependents of the
  /// failed task are reliably cancelled (their bodies are skipped — the
  /// failure is published before their counters release); cancellation of
  /// concurrently-starting tasks on *independent* branches is best-effort
  /// only, so side-effectful tasks may still run after another branch threw.
  /// Cancelled tasks still release their dependents, so the drain always
  /// terminates and the pool stays usable afterwards.
  ///
  /// The graph is consumed: task functions may be destroyed by execution;
  /// reuse of a TaskGraph object after run_dag is undefined.
  void run_dag(TaskGraph& graph);

  /// Measured per-task dispatch overhead of THIS pool in nanoseconds —
  /// enqueue, wake, run-empty-task, completion accounting — sampled once
  /// (lazily, on first call) by timing a batch of no-op tasks through
  /// run_dag. The fast solver's engagement heuristic compares this against
  /// its modeled per-block work so the parallel path is only taken when a
  /// block amortizes its own dispatch (see solver::plan_wavefront).
  double dispatch_overhead_ns();

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  double dispatch_overhead_ns_ = -1.0;  // < 0 until first measured
};

/// Parses a NOWSCHED_THREADS-style value. Returns the thread count (0 means
/// "use the hardware default") and leaves *warning empty on success; on a
/// malformed value ("4abc", "-1", "", overflow) returns 0 and stores a
/// one-line diagnostic in *warning. Exposed for tests; global_pool() applies
/// it to the real environment variable.
std::size_t threads_from_env_value(const char* value, std::string* warning);

/// Process-wide pool for library internals (lazily constructed, never torn
/// down before exit). Size honours NOWSCHED_THREADS when set; a malformed
/// value is diagnosed once on stderr and falls back to the hardware default
/// rather than being silently misread.
ThreadPool& global_pool();

}  // namespace nowsched::util
