// Mergeable streaming moments — the statistical primitive under the racing
// layer (race/bounds.h) and util::Accumulator.
//
// A Welford is the minimal sufficient statistic (n, mean, M2) of a sample
// stream, updated one observation at a time with Welford's numerically
// stable recurrence and combined across streams with the Chan et al.
// parallel update. Both operations are exact in the algebraic sense: any
// split of one stream into chunks, added chunk-wise and merged in any
// grouping, describes the same sample set (tests/race_bounds_test.cpp pins
// merge associativity and agreement with the two-pass variance).
//
// Kept deliberately tiny — three doubles of state, header-only, aggregate-
// initializable — so per-arm statistics in a race are cheap to copy into
// result records and to reason about in tests. util::Accumulator layers
// min/max/sum bookkeeping on top for the experiment harnesses.
#pragma once

#include <cmath>
#include <cstddef>

namespace nowsched::util {

struct Welford {
  std::size_t n = 0;
  double mean = 0.0;
  double m2 = 0.0;  ///< sum of squared deviations from the running mean

  void add(double x) noexcept {
    ++n;
    const double delta = x - mean;
    mean += delta / static_cast<double>(n);
    m2 += delta * (x - mean);
  }

  /// Chan et al. pairwise combination: *this afterwards describes the union
  /// of both sample sets.
  void merge(const Welford& other) noexcept {
    if (other.n == 0) return;
    if (n == 0) {
      *this = other;
      return;
    }
    const auto n1 = static_cast<double>(n);
    const auto n2 = static_cast<double>(other.n);
    const double delta = other.mean - mean;
    const double total = n1 + n2;
    mean += delta * n2 / total;
    m2 += other.m2 + delta * delta * n1 * n2 / total;
    n += other.n;
  }

  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const noexcept {
    return n > 1 ? m2 / static_cast<double>(n - 1) : 0.0;
  }

  double stddev() const noexcept { return std::sqrt(variance()); }
};

}  // namespace nowsched::util
