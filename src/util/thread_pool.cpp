#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

namespace nowsched::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t min_chunk = 64;
  if (size() <= 1 || n < 2 * min_chunk) {
    fn(begin, end);
    return;
  }
  const std::size_t target_chunks = std::min(n / min_chunk, 4 * size());
  const std::size_t chunk = (n + target_chunks - 1) / target_chunks;

  struct State {
    std::atomic<std::size_t> remaining{0};
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::exception_ptr error;
    std::mutex error_mutex;
  } state;

  std::size_t chunks = 0;
  for (std::size_t lo = begin; lo < end; lo += chunk) ++chunks;
  state.remaining.store(chunks, std::memory_order_relaxed);

  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(end, lo + chunk);
    enqueue([&state, &fn, lo, hi] {
      try {
        fn(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state.error_mutex);
        if (!state.error) state.error = std::current_exception();
      }
      if (state.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(state.done_mutex);
        state.done_cv.notify_one();
      }
    });
  }
  {
    std::unique_lock<std::mutex> lock(state.done_mutex);
    state.done_cv.wait(lock, [&state] {
      return state.remaining.load(std::memory_order_acquire) == 0;
    });
  }
  if (state.error) std::rethrow_exception(state.error);
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_chunks(begin, end, [&fn](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

ThreadPool& global_pool() {
  static ThreadPool* pool = [] {
    std::size_t threads = 0;
    if (const char* env = std::getenv("NOWSCHED_THREADS")) {
      const long parsed = std::atol(env);
      if (parsed > 0) threads = static_cast<std::size_t>(parsed);
    }
    return new ThreadPool(threads);
  }();
  return *pool;
}

}  // namespace nowsched::util
