#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <limits>
#include <stdexcept>

namespace nowsched::util {

TaskGraph::TaskId TaskGraph::add_task(std::function<void()> fn) {
  nodes_.push_back(Node{std::move(fn), {}, 0});
  return nodes_.size() - 1;
}

void TaskGraph::add_edge(TaskId before, TaskId after) {
  if (before >= nodes_.size() || after >= nodes_.size()) {
    throw std::out_of_range("TaskGraph::add_edge: unknown task id");
  }
  if (before == after) {
    throw std::logic_error("TaskGraph::add_edge: self-edge");
  }
  nodes_[before].dependents.push_back(after);
  ++nodes_[after].num_deps;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

namespace {

/// Stack-allocated completion latch for blocking dispatch calls. The "done"
/// transition is made and notified *under the mutex*: the waiter can only
/// observe it while holding the same mutex, so it cannot return (and destroy
/// this object) while the last worker is still inside count_down() — the
/// decrement-then-lock race a bare atomic predicate would have.
class CompletionLatch {
 public:
  explicit CompletionLatch(std::size_t count) : remaining_(count) {}

  /// Called once per task; the call that retires the last task flips done.
  void count_down() {
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mutex_);
      done_ = true;
      done_cv_.notify_one();
    }
  }

  /// Blocks until all `count` tasks have counted down. `count` must be > 0.
  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return done_; });
  }

 private:
  std::atomic<std::size_t> remaining_;
  std::mutex mutex_;
  std::condition_variable done_cv_;
  bool done_ = false;
};

}  // namespace

void ThreadPool::parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn, std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t min_chunk = std::max<std::size_t>(grain, 1);
  if (size() <= 1 || n < 2 * min_chunk) {
    fn(begin, end);
    return;
  }
  const std::size_t target_chunks = std::min(n / min_chunk, 4 * size());
  const std::size_t chunk = (n + target_chunks - 1) / target_chunks;

  std::size_t chunks = 0;
  for (std::size_t lo = begin; lo < end; lo += chunk) ++chunks;

  struct State {
    explicit State(std::size_t count) : latch(count) {}
    CompletionLatch latch;
    std::exception_ptr error;
    std::mutex error_mutex;
  } state(chunks);

  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(end, lo + chunk);
    enqueue([&state, &fn, lo, hi] {
      try {
        fn(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state.error_mutex);
        if (!state.error) state.error = std::current_exception();
      }
      state.latch.count_down();
    });
  }
  state.latch.wait();
  if (state.error) std::rethrow_exception(state.error);
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  parallel_for_chunks(
      begin, end,
      [&fn](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      },
      grain);
}

namespace {

/// Kahn counter pass over the graph's nodes: returns false iff some task
/// never becomes ready (i.e. the edge set contains a cycle). Touches only a
/// scratch copy of the in-degree counters.
template <typename Nodes>
bool dag_is_acyclic(const Nodes& nodes) {
  std::vector<std::size_t> deps(nodes.size());
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    deps[i] = nodes[i].num_deps;
    if (deps[i] == 0) ready.push_back(i);
  }
  std::size_t seen = 0;
  while (!ready.empty()) {
    const std::size_t id = ready.back();
    ready.pop_back();
    ++seen;
    for (const std::size_t dep : nodes[id].dependents) {
      if (--deps[dep] == 0) ready.push_back(dep);
    }
  }
  return seen == nodes.size();
}

}  // namespace

void ThreadPool::run_dag(TaskGraph& graph) {
  const std::size_t n = graph.nodes_.size();
  if (n == 0) return;

  if (!dag_is_acyclic(graph.nodes_)) {
    throw std::logic_error("ThreadPool::run_dag: task graph has a cycle");
  }

  if (size() <= 1) {
    // Serial fallback: fixed topological order — among ready tasks, lowest
    // id first — so a 1-thread pool is deterministic. First exception wins;
    // remaining task bodies are skipped but the walk completes (dependency
    // bookkeeping does not matter once nothing else will run).
    std::vector<std::size_t> deps(n);
    for (std::size_t i = 0; i < n; ++i) deps[i] = graph.nodes_[i].num_deps;
    // A min-ordered ready list keeps the order stable under out-of-id-order
    // edge insertion; the solver's graphs release dependents in id order
    // anyway, so this stays cheap (push_back + sorted insertion point).
    std::vector<std::size_t> ready;
    auto push_ready = [&ready](std::size_t id) {
      ready.insert(std::lower_bound(ready.begin(), ready.end(), id,
                                    std::greater<std::size_t>()),
                   id);  // descending storage: back() is the smallest id
    };
    for (std::size_t i = n; i-- > 0;) {
      if (graph.nodes_[i].num_deps == 0) push_ready(i);
    }
    std::exception_ptr error;
    while (!ready.empty()) {
      const std::size_t id = ready.back();
      ready.pop_back();
      if (!error) {
        try {
          graph.nodes_[id].fn();
        } catch (...) {
          error = std::current_exception();
        }
      }
      for (const std::size_t dep : graph.nodes_[id].dependents) {
        if (--deps[dep] == 0) push_ready(dep);
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }

  struct State {
    explicit State(std::size_t count)
        : deps(count), latch(count), cancelled(false) {}
    std::vector<std::atomic<std::size_t>> deps;  // per-task in-degree
    CompletionLatch latch;                       // tasks not yet finished
    std::atomic<bool> cancelled;                 // set on first exception
    std::exception_ptr error;
    std::mutex error_mutex;
  } state(n);
  for (std::size_t i = 0; i < n; ++i) {
    state.deps[i].store(graph.nodes_[i].num_deps, std::memory_order_relaxed);
  }

  // run(id) executes one task and releases its dependents. The acq_rel
  // fetch_sub on a dependent's counter is what publishes this task's writes
  // to the dependent: the thread that takes the counter to zero has
  // acquire-read every predecessor's release-decrement, and the queue mutex
  // carries the handover to whichever worker actually runs it.
  std::function<void(std::size_t)> run = [this, &state, &graph,
                                          &run](std::size_t id) {
    if (!state.cancelled.load(std::memory_order_acquire)) {
      try {
        graph.nodes_[id].fn();
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(state.error_mutex);
          if (!state.error) state.error = std::current_exception();
        }
        state.cancelled.store(true, std::memory_order_release);
      }
    }
    for (const std::size_t dep : graph.nodes_[id].dependents) {
      if (state.deps[dep].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        enqueue([&run, dep] { run(dep); });
      }
    }
    state.latch.count_down();
  };

  for (std::size_t i = 0; i < n; ++i) {
    if (graph.nodes_[i].num_deps == 0) {
      enqueue([&run, i] { run(i); });
    }
  }
  state.latch.wait();
  if (state.error) std::rethrow_exception(state.error);
}

double ThreadPool::dispatch_overhead_ns() {
  if (dispatch_overhead_ns_ >= 0.0) return dispatch_overhead_ns_;
  // One chain + fan-out of no-op cells, shaped like a small solver wavefront,
  // timed wall-clock and amortized per task. Done once per pool; the result
  // is intentionally pessimistic on a loaded machine — engagement should err
  // toward the always-correct sequential path.
  constexpr std::size_t kTasks = 256;
  TaskGraph g;
  for (std::size_t i = 0; i < kTasks; ++i) g.add_task([] {});
  for (std::size_t i = 1; i < kTasks; ++i) {
    g.add_edge(i - 1, i);
    if (i >= 4) g.add_edge(i - 4, i);
  }
  const auto start = std::chrono::steady_clock::now();
  run_dag(g);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double total_ns =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  dispatch_overhead_ns_ = std::max(1.0, total_ns / static_cast<double>(kTasks));
  return dispatch_overhead_ns_;
}

std::size_t threads_from_env_value(const char* value, std::string* warning) {
  if (warning) warning->clear();
  if (value == nullptr) return 0;
  const std::string s(value);
  auto fail = [&](const char* why) -> std::size_t {
    if (warning) {
      *warning = "NOWSCHED_THREADS=\"" + s + "\" " + why +
                 "; using the hardware default";
    }
    return 0;
  };
  if (s.empty()) return fail("is empty (expected a positive integer)");
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) {
    return fail("is not a number (expected a positive integer)");
  }
  if (errno == ERANGE || parsed > std::numeric_limits<int>::max()) {
    return fail("overflows (expected a positive integer)");
  }
  if (parsed <= 0) {
    return fail("must be a positive integer");
  }
  return static_cast<std::size_t>(parsed);
}

ThreadPool& global_pool() {
  static ThreadPool* pool = [] {
    std::string warning;
    const std::size_t threads =
        threads_from_env_value(std::getenv("NOWSCHED_THREADS"), &warning);
    if (!warning.empty()) {
      std::fprintf(stderr, "nowsched: %s\n", warning.c_str());
    }
    return new ThreadPool(threads);
  }();
  return *pool;
}

}  // namespace nowsched::util
