// Deterministic random number generation for simulations and property tests.
//
// We intentionally avoid std::mt19937 + std::uniform_*_distribution in
// experiment code: their exact output is implementation-defined across
// standard libraries, which would make EXPERIMENTS.md numbers unstable.
// SplitMix64 is tiny, fast, and has a published reference output stream.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace nowsched::util {

/// SplitMix64 PRNG (Steele, Lea, Flood 2014). Passes BigCrush when used as
/// a 64-bit generator; used here both directly and to seed streams.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept : state_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;
  result_type operator()() noexcept { return next(); }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  /// bound == 0 returns 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Exponential with rate lambda (> 0).
  double exponential(double lambda) noexcept;

  /// Pareto (type I) with scale x_m > 0 and shape alpha > 0.
  double pareto(double x_m, double alpha) noexcept;

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p) noexcept;

  /// Derive an independent child stream (for per-entity RNGs).
  Rng split() noexcept;

  /// k distinct integers sampled uniformly from [0, n), ascending order.
  /// Requires k <= n. Uses Floyd's algorithm, O(k) expected.
  std::vector<std::uint64_t> sample_distinct(std::uint64_t n, std::uint64_t k);

 private:
  std::uint64_t state_;
};

}  // namespace nowsched::util
