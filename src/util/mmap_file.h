// File I/O primitives for the persistent table store: a platform-stable
// 64-bit content checksum, a read-only memory mapping with RAII lifetime,
// and crash-safe whole-file publication (temp file + atomic rename).
//
// Checksumming uses the same SplitMix64 mixing chain as util/hash.h, so a
// store file's integrity verdict is identical on every platform — the same
// discipline that keeps SolveKey shard assignment and RNG stream derivation
// reproducible. A single flipped bit anywhere in the input avalanches
// through hash_combine, so corruption detection does not depend on where in
// the slab the damage landed.
//
// MappedFile is the zero-copy read path: the kernel's page cache IS the
// shared cache when N processes map one store file, and a mapping outlives
// the MappedFile only through the shared_ptr keepalive its users hold
// (solver::ValueTable views hold exactly that). On platforms without
// <sys/mman.h> the class degrades to read-the-file-into-memory — same
// interface, same correctness, no sharing.
//
// atomic_write_file is the build-once publication primitive: writers dump
// the full payload into a private sibling temp file and rename() it over the
// target, so a reader NEVER observes a half-written file — it sees the old
// file, the new file, or nothing. Concurrent writers of identical content
// (the table store's case: solves are deterministic) are safe by the same
// argument: last rename wins and every version was complete and identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#if defined(_WIN32)
#include <fstream>
#include <vector>
#else
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "util/hash.h"

namespace nowsched::util {

/// Platform-stable 64-bit checksum of a byte range: SplitMix64-mixed 8-byte
/// words chained with hash_combine, seeded with the length so that prefixes
/// and zero-padded extensions do not collide. Not cryptographic — this
/// guards against bit rot and truncation, not adversaries with write access
/// to the store directory.
[[nodiscard]] inline std::uint64_t checksum_bytes(const void* data,
                                                  std::size_t size) noexcept {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = hash_mix(0x6E777363u /* "nwsc" */ ^
                             static_cast<std::uint64_t>(size));
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t word;
    std::memcpy(&word, bytes + i, 8);
    h = hash_combine(h, word);
  }
  if (i < size) {
    std::uint64_t tail = 0;
    for (std::size_t k = 0; i < size; ++i, ++k) {
      tail |= static_cast<std::uint64_t>(bytes[i]) << (8 * k);
    }
    h = hash_combine(h, tail);
  }
  return h;
}

/// A whole file mapped (or, on non-POSIX platforms, read) into memory,
/// read-only. Open never throws — a missing or unreadable file is a null
/// return, because for the table store "cannot load" is a cache miss, not
/// an error.
class MappedFile {
 public:
  /// Maps `path` read-only; returns nullptr when the file cannot be opened
  /// or mapped. An empty file maps successfully with size() == 0.
  static std::unique_ptr<MappedFile> open(const std::string& path) {
#if defined(_WIN32)
    std::ifstream in(path, std::ios::binary);
    if (!in) return nullptr;
    std::vector<unsigned char> buffer((std::istreambuf_iterator<char>(in)),
                                      std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof()) return nullptr;
    auto file = std::unique_ptr<MappedFile>(new MappedFile());
    file->buffer_ = std::move(buffer);
    file->size_ = file->buffer_.size();
    file->data_ = file->buffer_.data();
    return file;
#else
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return nullptr;
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      return nullptr;
    }
    auto file = std::unique_ptr<MappedFile>(new MappedFile());
    file->size_ = static_cast<std::size_t>(st.st_size);
    if (file->size_ > 0) {
      void* base = ::mmap(nullptr, file->size_, PROT_READ, MAP_SHARED, fd, 0);
      if (base == MAP_FAILED) {
        ::close(fd);
        return nullptr;
      }
      file->mapping_ = base;
      file->data_ = static_cast<const unsigned char*>(base);
    }
    ::close(fd);  // the mapping keeps the inode alive; the fd is not needed
    return file;
#endif
  }

  ~MappedFile() {
#if !defined(_WIN32)
    if (mapping_ != nullptr) ::munmap(mapping_, size_);
#endif
  }

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const unsigned char* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }

 private:
  MappedFile() = default;

  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
#if defined(_WIN32)
  std::vector<unsigned char> buffer_;
#else
  void* mapping_ = nullptr;
#endif
};

/// Publishes `size` bytes at `path` atomically: the payload is written to a
/// sibling temp file (same directory, so rename cannot cross filesystems)
/// and renamed over the target. Returns false — leaving the target
/// untouched — on any I/O failure. `tag` disambiguates concurrent writers'
/// temp names (pass something process/thread-unique); the renames
/// themselves need no coordination because each is atomic and every writer
/// publishes identical complete content or none.
inline bool atomic_write_file(const std::string& path, const void* data,
                              std::size_t size, const std::string& tag) {
  const std::string tmp = path + ".tmp." + tag;
#if defined(_WIN32)
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(size));
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  // Windows rename() fails on an existing target; the table store's content
  // is deterministic per name, so replacing is equivalent to keeping.
  std::remove(path.c_str());
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
#else
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  std::size_t written = 0;
  while (written < size) {
    const ::ssize_t n = ::write(fd, bytes + written, size - written);
    if (n < 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  // Flush payload before publishing the name: after a crash the target is
  // either absent or complete, never garbage with a valid-looking header.
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
#endif
}

}  // namespace nowsched::util
