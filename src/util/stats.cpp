#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>

namespace nowsched::util {

void Accumulator::add(double x) noexcept {
  if (moments_.n == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  moments_.add(x);
}

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.moments_.n == 0) return;
  if (moments_.n == 0) {
    *this = other;
    return;
  }
  moments_.merge(other.moments_);
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Summary::Summary(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
  Accumulator acc;
  for (double v : sorted_) acc.add(v);
  mean_ = acc.mean();
  stddev_ = acc.stddev();
}

double Summary::min() const noexcept { return sorted_.empty() ? 0.0 : sorted_.front(); }
double Summary::max() const noexcept { return sorted_.empty() ? 0.0 : sorted_.back(); }

double Summary::quantile(double q) const {
  assert(q >= 0.0 && q <= 1.0);
  if (sorted_.empty()) return 0.0;
  if (sorted_.size() == 1) return sorted_[0];
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::string Summary::to_string() const {
  std::ostringstream os;
  os << "n=" << count() << " mean=" << mean() << " sd=" << stddev()
     << " min=" << min() << " p50=" << quantile(0.5) << " p95=" << quantile(0.95)
     << " max=" << max();
  return os.str();
}

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y) {
  assert(x.size() == y.size());
  LinearFit fit;
  const std::size_t n = x.size();
  if (n < 2) return fit;
  const double nx = static_cast<double>(n);
  const double mx = std::accumulate(x.begin(), x.end(), 0.0) / nx;
  const double my = std::accumulate(y.begin(), y.end(), 0.0) / nx;
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

}  // namespace nowsched::util
