// Minimal CSV writer so benches can emit machine-readable series alongside
// the human-readable tables (EXPERIMENTS.md links both).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace nowsched::util {

/// Writes RFC-4180-ish CSV (quotes fields containing comma/quote/newline).
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws
  /// std::runtime_error when the file cannot be opened.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  /// String row; must match header arity.
  void write_row(const std::vector<std::string>& cells);

  /// Numeric convenience row.
  void write_row(const std::vector<double>& values);

  const std::string& path() const noexcept { return path_; }

 private:
  static std::string escape(const std::string& field);
  std::string path_;
  std::ofstream out_;
  std::size_t arity_;
};

}  // namespace nowsched::util
