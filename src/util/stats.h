// Streaming and batch statistics used by the experiment harnesses.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/welford.h"

namespace nowsched::util {

/// Numerically stable streaming mean/variance (util::Welford) with min/max.
class Accumulator {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return moments_.n; }
  double mean() const noexcept { return moments_.mean; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const noexcept { return moments_.variance(); }
  double stddev() const noexcept { return moments_.stddev(); }
  double min() const noexcept { return moments_.n ? min_ : 0.0; }
  double max() const noexcept { return moments_.n ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

  /// The bare mergeable moment statistic (what the racing layer consumes).
  const Welford& moments() const noexcept { return moments_; }

  /// Merge another accumulator (parallel reduction; Chan et al. update).
  void merge(const Accumulator& other) noexcept;

 private:
  Welford moments_;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Batch summary with quantiles. Input copied and sorted once.
class Summary {
 public:
  explicit Summary(std::vector<double> samples);

  std::size_t count() const noexcept { return sorted_.size(); }
  double mean() const noexcept { return mean_; }
  double stddev() const noexcept { return stddev_; }
  double min() const noexcept;
  double max() const noexcept;
  /// Linear-interpolation quantile, q in [0, 1].
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  /// One-line human-readable rendering (used by benches).
  std::string to_string() const;

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
  double stddev_ = 0.0;
};

/// Least-squares fit of y = a + b*x. Returns {a, b}; b = 0 when degenerate.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace nowsched::util
