#include "util/socket.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <system_error>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace nowsched::util {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw std::invalid_argument("unix socket path empty or too long (max " +
                                std::to_string(sizeof(addr.sun_path) - 1) +
                                " bytes): '" + path + "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

void Fd::reset() noexcept {
  if (fd_ >= 0) {
    // EINTR on close is unrecoverable-by-retry on Linux; ignore it.
    ::close(fd_);
    fd_ = -1;
  }
}

Fd unix_listen(const std::string& path, int backlog) {
  const sockaddr_un addr = make_unix_addr(path);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket(AF_UNIX)");

  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EADDRINUSE) throw_errno("bind('" + path + "')");
    // A socket file exists. If something answers it, the address is truly
    // taken; if not, it is a leftover from a crashed daemon — reclaim it.
    Fd probe(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!probe.valid()) throw_errno("socket(AF_UNIX)");
    if (::connect(probe.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      errno = EADDRINUSE;
      throw_errno("bind('" + path + "'): daemon already listening");
    }
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      throw_errno("unlink('" + path + "')");
    }
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      throw_errno("bind('" + path + "')");
    }
  }
  if (::listen(fd.get(), backlog) != 0) throw_errno("listen('" + path + "')");
  return fd;
}

Fd unix_connect(const std::string& path) {
  const sockaddr_un addr = make_unix_addr(path);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket(AF_UNIX)");
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    if (errno == EINTR) continue;
    throw_errno("connect('" + path + "')");
  }
}

Fd accept_connection(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return Fd(fd);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Fd();
    // A connection that died between readiness and accept is not an error
    // for the listener — report "nothing to accept" and poll again.
    if (errno == ECONNABORTED) return Fd();
    throw_errno("accept");
  }
}

void set_nonblocking(int fd, bool enable) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int want = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags && ::fcntl(fd, F_SETFL, want) != 0) throw_errno("fcntl(F_SETFL)");
}

std::pair<Fd, Fd> make_wake_pipe() {
  int fds[2];
  if (::pipe(fds) != 0) throw_errno("pipe");
  Fd read_end(fds[0]);
  Fd write_end(fds[1]);
  set_nonblocking(read_end.get(), true);
  set_nonblocking(write_end.get(), true);
  return {std::move(read_end), std::move(write_end)};
}

IoStatus read_some(int fd, char* buf, std::size_t capacity, std::size_t& n) {
  n = 0;
  for (;;) {
    const ssize_t got = ::read(fd, buf, capacity);
    if (got > 0) {
      n = static_cast<std::size_t>(got);
      return IoStatus::kOk;
    }
    if (got == 0) return IoStatus::kEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kAgain;
    throw_errno("read");
  }
}

IoStatus write_some(int fd, const char* data, std::size_t len, std::size_t& written) {
  written = 0;
  while (written < len) {
    // send(MSG_NOSIGNAL), not write(2): a peer that closed mid-reply must
    // surface as an EPIPE system_error the caller can catch, not SIGPIPE
    // killing the whole daemon. Socket fds only (pipes use raw ::write).
    const ssize_t put = ::send(fd, data + written, len - written, MSG_NOSIGNAL);
    if (put > 0) {
      written += static_cast<std::size_t>(put);
      continue;
    }
    if (put < 0 && errno == EINTR) continue;
    if (put < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return IoStatus::kAgain;
    throw_errno("write");
  }
  return IoStatus::kOk;
}

void write_all(int fd, const char* data, std::size_t len) {
  std::size_t written = 0;
  while (written < len) {
    std::size_t n = 0;
    const IoStatus status = write_some(fd, data + written, len - written, n);
    written += n;
    if (status == IoStatus::kAgain) {
      // Blocking fds only reach here under SO_SNDTIMEO or similar; spinning
      // is wrong, so surface it.
      errno = EAGAIN;
      throw_errno("write_all on nonblocking fd");
    }
  }
}

}  // namespace nowsched::util
