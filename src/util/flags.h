// Tiny --key=value command-line parser for the examples and benches.
// Not a general-purpose CLI library; just enough to parameterize runs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nowsched::util {

class Flags {
 public:
  /// Parses argv entries of the form --key=value or --key (value "true").
  /// Non-flag arguments are collected as positionals. Unknown flags are kept
  /// (examples print them back in --help output).
  Flags(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::vector<std::string>& positionals() const noexcept { return positionals_; }
  const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

}  // namespace nowsched::util
