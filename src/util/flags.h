// Tiny --key=value command-line parser for the examples and benches.
// Not a general-purpose CLI library; just enough to parameterize runs.
//
// Grammar:
//   --key=value    set flag `key` to `value`
//   --key          set flag `key` to "true"
//   --             end-of-flags separator: everything after is positional
//   anything else  positional argument
//
// Malformed input is a hard error, not silent garbage: an empty flag name
// (`--=v`) aborts at parse time, and `get_int`/`get_double`/`get_bool` on a
// value that does not parse in full (e.g. `--u=12abc`) or overflows print a
// one-line usage error naming the flag and exit with status 2. Experiment
// grids are built from these flags; a mis-typed value must never become a
// silently corrupted run.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nowsched::util {

class Flags {
 public:
  /// Parses argv entries of the form --key=value or --key (value "true").
  /// A bare `--` ends flag parsing; later arguments are positionals even if
  /// they start with `--`. Non-flag arguments are collected as positionals.
  /// Unknown flags are kept (examples print them back in --help output).
  Flags(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;

  /// Numeric/boolean accessors validate the whole value; on a malformed or
  /// out-of-range value they print `usage error: --key ...` to stderr and
  /// exit(2) so every binary inherits the same diagnostic.
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::vector<std::string>& positionals() const noexcept { return positionals_; }
  const std::string& program() const noexcept { return program_; }

  /// The shared diagnostic the numeric accessors use: prints
  /// `<program>: usage error: --key expects <expected>, got "value"` to
  /// stderr and exits(2). Public so callers validating flag values the
  /// accessors cannot (enumerations, formats) fail identically.
  [[noreturn]] void usage_error(const std::string& key, const char* expected,
                                const std::string& value) const;

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

}  // namespace nowsched::util
