// Portable SIMD wrapper for the solver's level-scan kernel.
//
// The kernel needs exactly one shape: small fixed-width vectors of int64
// lanes (Ticks) with loads/stores, broadcast, add/sub, elementwise max,
// ordered compares reduced to a leading-lane count, an in-register prefix
// max, and a last-lane extract. Each ISA backend is a stateless traits
// struct over that vocabulary, so the kernel template in
// solver/fill_kernel.h instantiates once per ISA and the instantiations are
// textually identical code — the bit-for-bit SIMD-vs-scalar guarantee is
// structural, not a hope.
//
// Compile-time vs run-time split:
//   * A traits struct is only DEFINED in translation units whose target ISA
//     enables it (__AVX2__ / __aarch64__) — the AVX2 backend lives in
//     solver/fast_solver_avx2.cpp, compiled with -mavx2 even in a
//     baseline-ISA build.
//   * The cpu_supports_*() queries below compile everywhere and answer at
//     run time, so the dispatcher in fast_solver.cpp can select a kernel
//     the *build host* could not run. Dispatch policy lives there, not here.
//
// Scalar fallback: I64Scalar implements the same vocabulary with kLanes=1
// plain arithmetic, so every platform has a correct kernel and the
// differential tests always have a reference instantiation to diff against.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

#if defined(__AVX2__)
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace nowsched::util::simd {

/// True when the running CPU can execute AVX2 instructions. Callable from
/// baseline-ISA code (it is a CPUID probe, not an AVX2 instruction).
inline bool cpu_supports_avx2() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

/// True when the running CPU has AArch64 AdvSIMD (baseline on AArch64).
inline bool cpu_supports_neon() noexcept {
#if defined(__aarch64__)
  return true;
#else
  return false;
#endif
}

/// Width-1 "vector" of int64 — the scalar instantiation of the kernel.
struct I64Scalar {
  static constexpr int kLanes = 1;
  using Reg = std::int64_t;
  static Reg load(const std::int64_t* p) noexcept { return *p; }
  static void store(std::int64_t* p, Reg v) noexcept { *p = v; }
  static Reg set1(std::int64_t x) noexcept { return x; }
  static Reg add(Reg a, Reg b) noexcept { return a + b; }
  static Reg sub(Reg a, Reg b) noexcept { return a - b; }
  static Reg max(Reg a, Reg b) noexcept { return a > b ? a : b; }
  /// Lane indices 0..kLanes-1 as a vector.
  static Reg iota() noexcept { return 0; }
  /// Running max from lane 0 upward (lane i = max of lanes 0..i).
  static Reg prefix_max(Reg v) noexcept { return v; }
  static std::int64_t last_lane(Reg v) noexcept { return v; }
  /// Number of LEADING lanes with value <= bound. Callers only use this on
  /// lane-wise non-decreasing data, where the <=bound lanes form a prefix.
  static int leading_le(Reg v, std::int64_t bound) noexcept {
    return v <= bound ? 1 : 0;
  }
  /// Number of lanes strictly below bound (any position).
  static int count_lt(Reg v, std::int64_t bound) noexcept {
    return v < bound ? 1 : 0;
  }
};

#if defined(__AVX2__)
/// 4 x int64 on AVX2. Unaligned loads are used throughout — the ValueTable
/// slab is 64-byte aligned so full-vector accesses never split a cacheline,
/// but the kernel also reads at data-dependent offsets (crossover probes)
/// that carry no alignment guarantee.
struct I64x4Avx2 {
  static constexpr int kLanes = 4;
  using Reg = __m256i;
  static Reg load(const std::int64_t* p) noexcept {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store(std::int64_t* p, Reg v) noexcept {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static Reg set1(std::int64_t x) noexcept { return _mm256_set1_epi64x(x); }
  static Reg add(Reg a, Reg b) noexcept { return _mm256_add_epi64(a, b); }
  static Reg sub(Reg a, Reg b) noexcept { return _mm256_sub_epi64(a, b); }
  static Reg max(Reg a, Reg b) noexcept {
    // AVX2 has no 64-bit integer max; synthesize from signed compare+blend.
    return _mm256_blendv_epi8(b, a, _mm256_cmpgt_epi64(a, b));
  }
  static Reg iota() noexcept { return _mm256_set_epi64x(3, 2, 1, 0); }
  static Reg prefix_max(Reg v) noexcept {
    const Reg lowest = set1(std::numeric_limits<std::int64_t>::min());
    // y = max(v, [MIN, v0, v1, v2])
    Reg s1 = _mm256_permute4x64_epi64(v, _MM_SHUFFLE(2, 1, 0, 0));
    s1 = _mm256_blend_epi32(s1, lowest, 0x03);  // lane 0 <- MIN
    const Reg y = max(v, s1);
    // result = max(y, [MIN, MIN, y0, y1])
    Reg s2 = _mm256_permute4x64_epi64(y, _MM_SHUFFLE(1, 0, 0, 0));
    s2 = _mm256_blend_epi32(s2, lowest, 0x0F);  // lanes 0,1 <- MIN
    return max(y, s2);
  }
  static std::int64_t last_lane(Reg v) noexcept {
    return _mm256_extract_epi64(v, 3);
  }
  static int leading_le(Reg v, std::int64_t bound) noexcept {
    const __m256i gt = _mm256_cmpgt_epi64(v, set1(bound));
    const unsigned mask =
        static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(gt)));
    return mask == 0 ? 4 : __builtin_ctz(mask);
  }
  static int count_lt(Reg v, std::int64_t bound) noexcept {
    const __m256i lt = _mm256_cmpgt_epi64(set1(bound), v);
    return __builtin_popcount(
        static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(lt))));
  }
};
#endif  // __AVX2__

#if defined(__aarch64__)
/// 2 x int64 on AArch64 AdvSIMD.
struct I64x2Neon {
  static constexpr int kLanes = 2;
  using Reg = int64x2_t;
  static Reg load(const std::int64_t* p) noexcept { return vld1q_s64(p); }
  static void store(std::int64_t* p, Reg v) noexcept { vst1q_s64(p, v); }
  static Reg set1(std::int64_t x) noexcept { return vdupq_n_s64(x); }
  static Reg add(Reg a, Reg b) noexcept { return vaddq_s64(a, b); }
  static Reg sub(Reg a, Reg b) noexcept { return vsubq_s64(a, b); }
  static Reg max(Reg a, Reg b) noexcept {
    // No 64-bit integer max instruction; compare-and-select.
    return vbslq_s64(vcgtq_s64(a, b), a, b);
  }
  static Reg iota() noexcept {
    const std::int64_t lanes[2] = {0, 1};
    return vld1q_s64(lanes);
  }
  static Reg prefix_max(Reg v) noexcept {
    const Reg lowest = set1(std::numeric_limits<std::int64_t>::min());
    return max(v, vextq_s64(lowest, v, 1));  // [MIN, v0]
  }
  static std::int64_t last_lane(Reg v) noexcept { return vgetq_lane_s64(v, 1); }
  static int leading_le(Reg v, std::int64_t bound) noexcept {
    const uint64x2_t gt = vcgtq_s64(v, set1(bound));
    if (vgetq_lane_u64(gt, 0) != 0) return 0;
    return vgetq_lane_u64(gt, 1) != 0 ? 1 : 2;
  }
  static int count_lt(Reg v, std::int64_t bound) noexcept {
    const uint64x2_t lt = vcgtq_s64(set1(bound), v);
    return (vgetq_lane_u64(lt, 0) != 0 ? 1 : 0) +
           (vgetq_lane_u64(lt, 1) != 0 ? 1 : 0);
  }
};
#endif  // __aarch64__

}  // namespace nowsched::util::simd
