#include "util/table.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <ostream>
#include <sstream>

namespace nowsched::util {

Table::Table(std::vector<std::string> headers, std::vector<Align> aligns)
    : headers_(std::move(headers)), aligns_(std::move(aligns)) {
  if (aligns_.empty()) aligns_.assign(headers_.size(), Align::kRight);
  assert(aligns_.size() == headers_.size());
}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_rule() { rows_.emplace_back(); }

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    // Integral doubles print without a trailing ".000000".
    os << static_cast<long long>(v);
  } else {
    os.precision(precision);
    os << v;
  }
  return os.str();
}

std::string Table::fmt(long long v) { return std::to_string(v); }
std::string Table::fmt(unsigned long long v) { return std::to_string(v); }

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::size_t total = headers_.empty() ? 0 : 3 * (headers_.size() - 1);
  for (std::size_t w : widths) total += w;

  if (!title.empty()) os << title << '\n';
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      const std::size_t pad = widths[i] - cell.size();
      if (aligns_[i] == Align::kRight) os << std::string(pad, ' ') << cell;
      else os << cell << std::string(pad, ' ');
      if (i + 1 < headers_.size()) os << " | ";
    }
    os << '\n';
  };
  emit(headers_);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    if (row.empty()) os << std::string(total, '-') << '\n';
    else emit(row);
  }
}

std::string Table::to_markdown() const {
  auto escape = [](const std::string& cell) {
    std::string out;
    out.reserve(cell.size());
    for (char ch : cell) {
      if (ch == '|') out += "\\|";
      else out += ch;
    }
    return out;
  };
  std::ostringstream os;
  os << '|';
  for (const auto& h : headers_) os << ' ' << escape(h) << " |";
  os << "\n|";
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    os << (aligns_[i] == Align::kRight ? " ---: |" : " :--- |");
  }
  os << '\n';
  for (const auto& row : rows_) {
    if (row.empty()) continue;  // rules have no markdown equivalent
    os << '|';
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      os << ' ' << escape(i < row.size() ? row[i] : std::string{}) << " |";
    }
    os << '\n';
  }
  return os.str();
}

std::string Table::to_string(const std::string& title) const {
  std::ostringstream os;
  print(os, title);
  return os.str();
}

}  // namespace nowsched::util
