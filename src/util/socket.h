// Thin RAII + error-handling wrappers over the POSIX socket calls the rpc
// layer needs: a move-only owned fd, Unix-domain listen/connect, a
// nonblocking toggle, and EINTR-safe full-buffer read/write loops.
//
// Scope is deliberately narrow — Unix-domain stream sockets only (the
// nowsched daemon binds a filesystem path; no TCP, no name resolution).
// Failures throw std::system_error carrying errno, except the partial-read
// primitives which report EOF/again in-band (the framing layer owns retry
// policy).
#pragma once

#include <cstddef>
#include <string>
#include <utility>

namespace nowsched::util {

/// Move-only owned file descriptor; closes on destruction. -1 means empty.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept { return std::exchange(fd_, -1); }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// Creates, binds, and listens on a Unix-domain stream socket at `path`.
/// Throws std::system_error on any failure (including a live socket already
/// bound there); a dead leftover socket file is unlinked first.
Fd unix_listen(const std::string& path, int backlog = 16);

/// Connects to the Unix-domain stream socket at `path`.
Fd unix_connect(const std::string& path);

/// accept(2) on a listening fd; an empty Fd when the kernel has no pending
/// connection (EAGAIN on a nonblocking listener).
Fd accept_connection(int listen_fd);

void set_nonblocking(int fd, bool enable);

/// A pipe pair for self-wake: `first` is the read end, `second` the write
/// end; both nonblocking.
std::pair<Fd, Fd> make_wake_pipe();

/// Result of one read_some call.
enum class IoStatus {
  kOk,     ///< >= 1 byte transferred
  kEof,    ///< orderly peer close (read only)
  kAgain,  ///< nonblocking fd had nothing / no room
};

/// Reads up to `capacity` bytes once (EINTR retried). On kOk, `n` is the
/// byte count; otherwise n == 0. Hard errors (ECONNRESET, EBADF, ...) throw.
IoStatus read_some(int fd, char* buf, std::size_t capacity, std::size_t& n);

/// Writes as much of [data, data+len) as the socket fd accepts without
/// blocking (EINTR retried). `written` advances past the accepted prefix;
/// kAgain means the kernel buffer filled first. Uses send(MSG_NOSIGNAL), so
/// a vanished peer throws EPIPE instead of raising SIGPIPE — callers treat
/// it as a dropped connection. Socket fds only.
IoStatus write_some(int fd, const char* data, std::size_t len, std::size_t& written);

/// Blocking full-buffer write: loops write_some until every byte is out.
/// The fd must be blocking (the client library's sockets are).
void write_all(int fd, const char* data, std::size_t len);

}  // namespace nowsched::util
