#include "adversary/trace.h"

#include <stdexcept>

namespace nowsched::adversary {

InterruptTrace::InterruptTrace(std::vector<Ticks> times_abs)
    : times_(std::move(times_abs)) {
  for (std::size_t i = 0; i < times_.size(); ++i) {
    if (times_[i] < 1 || (i > 0 && times_[i] <= times_[i - 1])) {
      throw std::invalid_argument("InterruptTrace: times must be strictly increasing");
    }
  }
}

void InterruptTrace::append(Ticks time_abs) {
  if (time_abs < 1 || (!times_.empty() && time_abs <= times_.back())) {
    throw std::invalid_argument("InterruptTrace::append: non-increasing time");
  }
  times_.push_back(time_abs);
}

InterruptTrace InterruptTrace::shifted(Ticks offset) const {
  InterruptTrace out;
  for (const Ticks t : times_) {
    if (t > offset) out.append(t - offset);
  }
  return out;
}

TraceAdversary::TraceAdversary(InterruptTrace trace) : trace_(std::move(trace)) {}

std::optional<Ticks> TraceAdversary::plan_interrupt(const EpisodeSchedule& episode,
                                                    const EpisodeContext& ctx) {
  // Skip interrupts that fell before this episode began.
  while (next_ < trace_.size() && trace_.times()[next_] <= ctx.episode_start) ++next_;
  if (next_ >= trace_.size()) return std::nullopt;
  const Ticks offset = trace_.times()[next_] - ctx.episode_start;
  if (offset > episode.total()) return std::nullopt;  // beyond this episode
  ++next_;
  return offset;
}

void TraceAdversary::reset(std::uint64_t /*seed*/) { next_ = 0; }

std::optional<Ticks> RecordingAdversary::plan_interrupt(const EpisodeSchedule& episode,
                                                        const EpisodeContext& ctx) {
  const auto planned = inner_.plan_interrupt(episode, ctx);
  if (planned) trace_.append(ctx.episode_start + *planned);
  return planned;
}

void RecordingAdversary::reset(std::uint64_t seed) {
  inner_.reset(seed);
  trace_ = InterruptTrace{};
}

}  // namespace nowsched::adversary
