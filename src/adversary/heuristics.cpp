#include "adversary/heuristics.h"

namespace nowsched::adversary {

namespace {

/// Last-instant interrupt of 0-based period k: the interrupt lands during
/// tick T_{k+1}, so the period's work is lost and its full length is spent.
Ticks last_instant(const EpisodeSchedule& episode, std::size_t k) {
  return episode.end(k);
}

}  // namespace

std::optional<Ticks> FirstPeriodAdversary::plan_interrupt(const EpisodeSchedule& episode,
                                                          const EpisodeContext&) {
  if (episode.empty()) return std::nullopt;
  return last_instant(episode, 0);
}

std::optional<Ticks> LargestPeriodAdversary::plan_interrupt(
    const EpisodeSchedule& episode, const EpisodeContext&) {
  if (episode.empty()) return std::nullopt;
  std::size_t best = 0;
  for (std::size_t k = 1; k < episode.size(); ++k) {
    if (episode.period(k) > episode.period(best)) best = k;
  }
  return last_instant(episode, best);
}

std::optional<Ticks> ObservationAdversary::plan_interrupt(const EpisodeSchedule& episode,
                                                          const EpisodeContext& ctx) {
  // Obs (b) proviso: an episode with residual <= c cannot produce work,
  // so interrupting it wastes an interrupt.
  if (episode.empty() || ctx.residual <= ctx.params.c) return std::nullopt;
  // Obs (c): pick a period beginning before residual − p·c. Choose the
  // LATEST such period: it wastes the most banked-free lifespan while
  // respecting the observation's window.
  const Ticks window =
      ctx.residual - static_cast<Ticks>(ctx.interrupts_left) * ctx.params.c;
  std::optional<std::size_t> pick;
  for (std::size_t k = 0; k < episode.size(); ++k) {
    if (episode.start(k) < window) pick = k;
  }
  if (!pick) pick = 0;  // degenerate window: fall back to the first period
  return last_instant(episode, *pick);
}

}  // namespace nowsched::adversary
