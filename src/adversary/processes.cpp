#include "adversary/processes.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace nowsched::adversary {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Absolute arrival -> episode tick, if it lands inside this episode
/// (same mapping stochastic.cpp uses).
std::optional<Ticks> arrival_to_tick(Ticks arrival_abs, const EpisodeSchedule& episode,
                                     const EpisodeContext& ctx) {
  const Ticks offset = arrival_abs - ctx.episode_start;
  if (offset < 1 || offset > episode.total()) return std::nullopt;
  return offset;
}

/// Rounds a continuous arrival time to the integer tick grid while keeping
/// the stream strictly increasing (arrivals less than a tick apart merge
/// into consecutive ticks rather than colliding).
Ticks to_strictly_later_tick(double t_abs, Ticks previous) {
  return std::max<Ticks>(previous + 1, static_cast<Ticks>(std::llround(t_abs)));
}

}  // namespace

// ---------------------------------------------------------------------------
// MarkovModulatedAdversary
// ---------------------------------------------------------------------------

MarkovModulatedAdversary::MarkovModulatedAdversary(double calm_gap, double busy_gap,
                                                   double calm_dwell, double busy_dwell,
                                                   std::uint64_t seed)
    : calm_gap_(calm_gap),
      busy_gap_(busy_gap),
      calm_dwell_(calm_dwell),
      busy_dwell_(busy_dwell),
      rng_(seed) {
  // Negated-form checks so NaN parameters fail too (NaN passes x <= 0.0).
  if (!(calm_gap > 0.0) || !(busy_gap > 0.0) || !(calm_dwell > 0.0) ||
      !(busy_dwell > 0.0)) {
    throw std::invalid_argument(
        "MarkovModulatedAdversary: gaps and dwell times must be positive");
  }
  state_end_abs_ = rng_.exponential(1.0 / calm_dwell_);
  arm();
}

void MarkovModulatedAdversary::reset(std::uint64_t seed) {
  rng_ = util::Rng(seed);
  state_ = 0;
  clock_abs_ = 0.0;
  next_arrival_abs_ = 0;
  state_end_abs_ = rng_.exponential(1.0 / calm_dwell_);
  arm();
}

void MarkovModulatedAdversary::arm() {
  // Walk dwell segments until an arrival lands inside one. Discarding the
  // unexpired candidate at a state switch is exact: the exponential is
  // memoryless, so the post-switch process does not remember it.
  for (;;) {
    const double gap = rng_.exponential(1.0 / (state_ == 0 ? calm_gap_ : busy_gap_));
    const double candidate = clock_abs_ + gap;
    if (candidate <= state_end_abs_) {
      clock_abs_ = candidate;
      next_arrival_abs_ = to_strictly_later_tick(clock_abs_, next_arrival_abs_);
      return;
    }
    clock_abs_ = state_end_abs_;
    state_ = 1 - state_;
    state_end_abs_ =
        clock_abs_ + rng_.exponential(1.0 / (state_ == 0 ? calm_dwell_ : busy_dwell_));
  }
}

std::optional<Ticks> MarkovModulatedAdversary::plan_interrupt(
    const EpisodeSchedule& episode, const EpisodeContext& ctx) {
  while (next_arrival_abs_ <= ctx.episode_start) arm();
  const auto tick = arrival_to_tick(next_arrival_abs_, episode, ctx);
  if (tick) arm();
  return tick;
}

// ---------------------------------------------------------------------------
// InhomogeneousPoissonAdversary
// ---------------------------------------------------------------------------

InhomogeneousPoissonAdversary::InhomogeneousPoissonAdversary(double mean_gap,
                                                             double depth,
                                                             double period, double phase,
                                                             std::uint64_t seed)
    : mean_gap_(mean_gap), depth_(depth), period_(period), phase_(phase), rng_(seed) {
  if (!(mean_gap > 0.0) || !(depth >= 0.0 && depth <= 1.0) || !(period > 0.0)) {
    throw std::invalid_argument(
        "InhomogeneousPoissonAdversary: need mean_gap > 0, depth in [0,1], "
        "period > 0");
  }
  arm();
}

void InhomogeneousPoissonAdversary::reset(std::uint64_t seed) {
  rng_ = util::Rng(seed);
  clock_abs_ = 0.0;
  next_arrival_abs_ = 0;
  arm();
}

void InhomogeneousPoissonAdversary::arm() {
  // Lewis–Shedler thinning: candidates arrive at the constant peak rate;
  // each is accepted with probability lambda(t) / peak. The acceptance test
  // consumes exactly one uniform per candidate, so the stream is a pure
  // function of (parameters, seed).
  const double peak_rate = (1.0 + depth_) / mean_gap_;
  for (;;) {
    clock_abs_ += rng_.exponential(peak_rate);
    const double lambda_t =
        (1.0 + depth_ * std::sin(kTwoPi * clock_abs_ / period_ + phase_)) / mean_gap_;
    if (rng_.uniform01() * peak_rate <= lambda_t) {
      next_arrival_abs_ = to_strictly_later_tick(clock_abs_, next_arrival_abs_);
      return;
    }
  }
}

std::optional<Ticks> InhomogeneousPoissonAdversary::plan_interrupt(
    const EpisodeSchedule& episode, const EpisodeContext& ctx) {
  while (next_arrival_abs_ <= ctx.episode_start) arm();
  const auto tick = arrival_to_tick(next_arrival_abs_, episode, ctx);
  if (tick) arm();
  return tick;
}

// ---------------------------------------------------------------------------
// BurstyAdversary
// ---------------------------------------------------------------------------

BurstyAdversary::BurstyAdversary(double scale, double shape, double mean_burst,
                                 double intra_gap, std::uint64_t seed)
    : scale_(scale),
      shape_(shape),
      mean_burst_(mean_burst),
      intra_gap_(intra_gap),
      rng_(seed) {
  if (!(scale > 0.0) || !(shape > 0.0) || !(mean_burst >= 1.0) ||
      !(intra_gap > 0.0)) {
    throw std::invalid_argument(
        "BurstyAdversary: need scale > 0, shape > 0, mean_burst >= 1, "
        "intra_gap > 0");
  }
  arm();
}

void BurstyAdversary::reset(std::uint64_t seed) {
  rng_ = util::Rng(seed);
  clock_abs_ = 0.0;
  burst_left_ = 0;
  next_arrival_abs_ = 0;
  arm();
}

void BurstyAdversary::arm() {
  if (burst_left_ > 0) {
    // Inside a burst: short exponential gap to the next touch.
    --burst_left_;
    clock_abs_ += rng_.exponential(1.0 / intra_gap_);
  } else {
    // Between bursts: heavy-tailed absence, then a burst of
    // 1 + Geometric(1 / mean_burst) arrivals (mean total = mean_burst).
    clock_abs_ += rng_.pareto(scale_, shape_);
    burst_left_ = 0;
    if (mean_burst_ > 1.0) {
      const double q = 1.0 - 1.0 / mean_burst_;  // P(one more arrival)
      const double u = rng_.uniform01();
      const double extra = std::floor(std::log1p(-u) / std::log(q));
      // Cap the burst so a pathological uniform draw cannot stall the sim.
      burst_left_ = static_cast<int>(std::min(extra, 64.0));
    }
  }
  next_arrival_abs_ = to_strictly_later_tick(clock_abs_, next_arrival_abs_);
}

std::optional<Ticks> BurstyAdversary::plan_interrupt(const EpisodeSchedule& episode,
                                                     const EpisodeContext& ctx) {
  while (next_arrival_abs_ <= ctx.episode_start) arm();
  const auto tick = arrival_to_tick(next_arrival_abs_, episode, ctx);
  if (tick) arm();
  return tick;
}

// ---------------------------------------------------------------------------
// CorrelatedShockAdversary
// ---------------------------------------------------------------------------

CorrelatedShockAdversary::CorrelatedShockAdversary(double shock_gap,
                                                   double response_prob,
                                                   std::uint64_t group_seed,
                                                   std::uint64_t seed)
    : shock_gap_(shock_gap),
      response_prob_(response_prob),
      group_seed_(group_seed),
      shock_rng_(group_seed),
      private_rng_(seed) {
  if (!(shock_gap > 0.0) || !(response_prob >= 0.0 && response_prob <= 1.0)) {
    throw std::invalid_argument(
        "CorrelatedShockAdversary: need shock_gap > 0 and response_prob in "
        "[0, 1]");
  }
  arm();
}

void CorrelatedShockAdversary::reset(std::uint64_t seed) {
  shock_rng_ = util::Rng(group_seed_);
  private_rng_ = util::Rng(seed);
  shock_clock_abs_ = 0.0;
  next_arrival_abs_ = 0;
  arm();
}

void CorrelatedShockAdversary::arm() {
  // Exactly one shared draw and one private draw per shock, responded or
  // not — so every member of the group walks the shared stream in lockstep
  // and sees identical shock times regardless of its own response pattern.
  if (response_prob_ <= 0.0) {
    next_arrival_abs_ = std::numeric_limits<Ticks>::max() / 2;  // never responds
    return;
  }
  for (;;) {
    shock_clock_abs_ += shock_rng_.exponential(1.0 / shock_gap_);
    const bool respond = private_rng_.bernoulli(response_prob_);
    if (respond) {
      next_arrival_abs_ = to_strictly_later_tick(shock_clock_abs_, next_arrival_abs_);
      return;
    }
  }
}

std::optional<Ticks> CorrelatedShockAdversary::plan_interrupt(
    const EpisodeSchedule& episode, const EpisodeContext& ctx) {
  while (next_arrival_abs_ <= ctx.episode_start) arm();
  const auto tick = arrival_to_tick(next_arrival_abs_, episode, ctx);
  if (tick) arm();
  return tick;
}

}  // namespace nowsched::adversary
