// Owner-interrupt models ("adversaries") for the simulator.
//
// The paper's game-theoretic adversary is malicious and schedule-aware
// (§4: "a game against a malicious adversary"); real owners are oblivious
// stochastic processes. Both implement this interface: at the start of each
// episode the adversary sees the committed episode-schedule and decides
// where (if anywhere) inside it the interrupt lands.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/schedule.h"
#include "core/types.h"

namespace nowsched::adversary {

/// Episode-start context visible to the adversary.
struct EpisodeContext {
  Ticks episode_start = 0;  ///< absolute opportunity time at episode start
  Ticks residual = 0;       ///< residual lifespan (== episode total)
  int interrupts_left = 0;  ///< interrupts the owner may still use
  Params params;
};

class Adversary {
 public:
  virtual ~Adversary() = default;

  virtual std::string name() const = 0;

  /// 1-based tick in [1, episode.total()] *during* which the owner
  /// interrupts (consuming that many ticks of lifespan and killing the
  /// period containing the tick), or nullopt to let the episode run.
  /// Called only when interrupts_left > 0.
  virtual std::optional<Ticks> plan_interrupt(const EpisodeSchedule& episode,
                                              const EpisodeContext& ctx) = 0;

  /// Re-seed / reset internal state before a fresh opportunity.
  virtual void reset(std::uint64_t /*seed*/) {}
};

}  // namespace nowsched::adversary
