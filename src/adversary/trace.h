// Interrupt traces: record/replay of owner interruptions in absolute
// opportunity time. Used to (1) replay the minimax best response inside the
// simulator and check it reproduces the analytic guaranteed work, and
// (2) compare policies on identical owner behaviour.
#pragma once

#include <vector>

#include "adversary/adversary.h"

namespace nowsched::adversary {

/// Absolute opportunity times (1-based ticks) at which the owner interrupts.
/// Must be strictly increasing.
class InterruptTrace {
 public:
  InterruptTrace() = default;
  explicit InterruptTrace(std::vector<Ticks> times_abs);

  const std::vector<Ticks>& times() const noexcept { return times_; }
  std::size_t size() const noexcept { return times_.size(); }
  void append(Ticks time_abs);

  /// The trace re-based for a session resumed after `offset` consumed ticks:
  /// times <= offset are dropped (they were handled before the checkpoint)
  /// and the rest shift down by offset. Used by the checkpoint-restart tests
  /// to replay the tail of a recorded owner against a resumed session.
  InterruptTrace shifted(Ticks offset) const;

 private:
  std::vector<Ticks> times_;
};

/// Replays a trace: fires the next recorded interrupt when it falls inside
/// the current episode. Interrupts that fall into "dead" time (e.g. the
/// trace was recorded against a different policy) are skipped.
class TraceAdversary final : public Adversary {
 public:
  explicit TraceAdversary(InterruptTrace trace);
  std::string name() const override { return "trace-replay"; }
  std::optional<Ticks> plan_interrupt(const EpisodeSchedule& episode,
                                      const EpisodeContext& ctx) override;
  void reset(std::uint64_t seed) override;

 private:
  InterruptTrace trace_;
  std::size_t next_ = 0;
};

/// Records every interrupt another adversary issues (decorator).
class RecordingAdversary final : public Adversary {
 public:
  explicit RecordingAdversary(Adversary& inner) : inner_(inner) {}
  std::string name() const override { return inner_.name() + "+recorded"; }
  std::optional<Ticks> plan_interrupt(const EpisodeSchedule& episode,
                                      const EpisodeContext& ctx) override;
  void reset(std::uint64_t seed) override;

  const InterruptTrace& trace() const noexcept { return trace_; }

 private:
  Adversary& inner_;
  InterruptTrace trace_;
};

}  // namespace nowsched::adversary
