// Generative interrupt processes beyond the fixed i.i.d. owners of
// stochastic.h — the adversary side of the scenario-generation subsystem
// (DESIGN.md §8).
//
// The paper's optimality claims are worst-case over ALL interrupt patterns,
// so a simulation layer that only ever samples homogeneous Poisson/Pareto
// owners has barely opened the workload space. These processes add the
// structured non-i.i.d. behaviour real owner populations show:
//
//   * MarkovModulatedAdversary — a 2-state MMPP (calm/busy regimes with
//     their own arrival rates and exponential dwell times): owners whose
//     activity level itself evolves;
//   * InhomogeneousPoissonAdversary — a sinusoidally rate-modulated Poisson
//     process sampled by Lewis–Shedler thinning against the peak rate:
//     diurnal owner-return cycles;
//   * BurstyAdversary — heavy-tailed (Pareto) gaps between bursts, each
//     burst a short exponential-gap cluster of arrivals: the "owner comes
//     back, touches the machine five times, leaves for the night" shape;
//   * CorrelatedShockAdversary — stations of a farm group share one
//     Poisson shock stream (derived from a group seed) and each responds
//     to a shock with some probability from a private stream: correlated
//     failures across a heterogeneous farm (power events, lab meetings).
//
// All four follow the armed-absolute-arrival pattern of stochastic.h: the
// process is defined in absolute opportunity time, so it is consistent
// across episode boundaries, and every stream is seed-deterministic
// (util::Rng, no global state) so any scenario reproduces from its spec.
#pragma once

#include "adversary/adversary.h"
#include "util/rng.h"

namespace nowsched::adversary {

/// 2-state Markov-modulated Poisson process. State 0 ("calm") emits
/// arrivals with mean gap `calm_gap`; state 1 ("busy") with mean gap
/// `busy_gap`; dwell times in each state are exponential with means
/// `calm_dwell` / `busy_dwell`. All four parameters are in ticks and must
/// be positive. The chain starts in the calm state.
class MarkovModulatedAdversary final : public Adversary {
 public:
  MarkovModulatedAdversary(double calm_gap, double busy_gap, double calm_dwell,
                           double busy_dwell, std::uint64_t seed);
  std::string name() const override { return "markov-owner"; }
  std::optional<Ticks> plan_interrupt(const EpisodeSchedule& episode,
                                      const EpisodeContext& ctx) override;
  void reset(std::uint64_t seed) override;

 private:
  void arm();  ///< advance the chain to the next arrival past next_arrival_abs_
  double calm_gap_;
  double busy_gap_;
  double calm_dwell_;
  double busy_dwell_;
  util::Rng rng_;
  int state_ = 0;                  ///< 0 calm, 1 busy
  double state_end_abs_ = 0.0;     ///< when the current dwell expires
  double clock_abs_ = 0.0;         ///< process time (continuous, pre-rounding)
  Ticks next_arrival_abs_ = 0;
};

/// Inhomogeneous Poisson process with rate
///   lambda(t) = (1 / mean_gap) * (1 + depth * sin(2*pi*t / period + phase)),
/// sampled by thinning against the peak rate (1 + depth) / mean_gap.
/// Requires mean_gap > 0, depth in [0, 1], period > 0 (depth 0 degenerates
/// to the homogeneous Poisson owner, which the tests exploit).
class InhomogeneousPoissonAdversary final : public Adversary {
 public:
  InhomogeneousPoissonAdversary(double mean_gap, double depth, double period,
                                double phase, std::uint64_t seed);
  std::string name() const override { return "inhomogeneous-owner"; }
  std::optional<Ticks> plan_interrupt(const EpisodeSchedule& episode,
                                      const EpisodeContext& ctx) override;
  void reset(std::uint64_t seed) override;

 private:
  void arm();  ///< thin candidate arrivals until one is accepted
  double mean_gap_;
  double depth_;
  double period_;
  double phase_;
  util::Rng rng_;
  double clock_abs_ = 0.0;
  Ticks next_arrival_abs_ = 0;
};

/// Bursty owner-return process: gaps BETWEEN bursts are Pareto(scale,
/// shape) (heavy-tailed absences), each burst then delivers
/// 1 + Geometric(1 / mean_burst) arrivals separated by exponential gaps of
/// mean `intra_gap`. Requires scale > 0, shape > 0, mean_burst >= 1,
/// intra_gap > 0.
class BurstyAdversary final : public Adversary {
 public:
  BurstyAdversary(double scale, double shape, double mean_burst, double intra_gap,
                  std::uint64_t seed);
  std::string name() const override { return "bursty-owner"; }
  std::optional<Ticks> plan_interrupt(const EpisodeSchedule& episode,
                                      const EpisodeContext& ctx) override;
  void reset(std::uint64_t seed) override;

 private:
  void arm();
  double scale_;
  double shape_;
  double mean_burst_;
  double intra_gap_;
  util::Rng rng_;
  double clock_abs_ = 0.0;
  int burst_left_ = 0;  ///< arrivals remaining in the current burst
  Ticks next_arrival_abs_ = 0;
};

/// Correlated farm failures: every station constructed with the same
/// `group_seed` sees the IDENTICAL Poisson shock stream (mean gap
/// `shock_gap`); a station responds to each shock with probability
/// `response_prob` drawn from its private `seed` stream. Stations of a
/// group therefore fail together (response_prob -> 1 collapses them onto
/// one failure pattern) while staying individually stochastic.
/// Requires shock_gap > 0 and response_prob in [0, 1].
class CorrelatedShockAdversary final : public Adversary {
 public:
  CorrelatedShockAdversary(double shock_gap, double response_prob,
                           std::uint64_t group_seed, std::uint64_t seed);
  std::string name() const override { return "correlated-shock-owner"; }
  std::optional<Ticks> plan_interrupt(const EpisodeSchedule& episode,
                                      const EpisodeContext& ctx) override;
  void reset(std::uint64_t seed) override;

 private:
  void arm();  ///< advance the shared stream to the next RESPONDED shock
  double shock_gap_;
  double response_prob_;
  std::uint64_t group_seed_;
  util::Rng shock_rng_;    ///< shared stream: identical across the group
  util::Rng private_rng_;  ///< per-station response coin
  double shock_clock_abs_ = 0.0;
  Ticks next_arrival_abs_ = 0;
};

}  // namespace nowsched::adversary
