// Deterministic, schedule-aware adversary heuristics mirroring §4.1's
// Observations: interrupts at last instants, spent early, never wasted on a
// lifespan that cannot produce work.
#pragma once

#include "adversary/adversary.h"

namespace nowsched::adversary {

/// Never interrupts (the a = 0 realisation; Prop 4.1(b) baseline).
class NoOpAdversary final : public Adversary {
 public:
  std::string name() const override { return "no-op"; }
  std::optional<Ticks> plan_interrupt(const EpisodeSchedule&,
                                      const EpisodeContext&) override {
    return std::nullopt;
  }
};

/// Kills the FIRST period of every episode at its last instant — the
/// harshest "always interrupt immediately" owner (cf. Obs (b): the adversary
/// always interrupts while it can).
class FirstPeriodAdversary final : public Adversary {
 public:
  std::string name() const override { return "kill-first-period"; }
  std::optional<Ticks> plan_interrupt(const EpisodeSchedule& episode,
                                      const EpisodeContext& ctx) override;
};

/// Kills the longest period (ties: earliest) at its last instant — a greedy
/// "maximize wasted lifespan" owner.
class LargestPeriodAdversary final : public Adversary {
 public:
  std::string name() const override { return "kill-largest-period"; }
  std::optional<Ticks> plan_interrupt(const EpisodeSchedule& episode,
                                      const EpisodeContext& ctx) override;
};

/// Obs (c)-guided: kills, at its last instant, the latest period that still
/// begins before residual − p·c (leaving itself future leverage); skips the
/// episode when the residual is already unproductive (residual <= c).
class ObservationAdversary final : public Adversary {
 public:
  std::string name() const override { return "observation-guided"; }
  std::optional<Ticks> plan_interrupt(const EpisodeSchedule& episode,
                                      const EpisodeContext& ctx) override;
};

}  // namespace nowsched::adversary
