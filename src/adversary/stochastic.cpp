#include "adversary/stochastic.h"

#include <cmath>
#include <stdexcept>

namespace nowsched::adversary {

namespace {

/// Absolute arrival -> episode tick, if it lands inside this episode.
std::optional<Ticks> arrival_to_tick(Ticks arrival_abs, const EpisodeSchedule& episode,
                                     const EpisodeContext& ctx) {
  const Ticks offset = arrival_abs - ctx.episode_start;
  if (offset < 1 || offset > episode.total()) return std::nullopt;
  return offset;
}

}  // namespace

PoissonAdversary::PoissonAdversary(double mean_gap_ticks, std::uint64_t seed)
    : mean_gap_(mean_gap_ticks), rng_(seed) {
  // Negated form so a NaN gap fails too (NaN passes x <= 0.0).
  if (!(mean_gap_ticks > 0.0)) {
    throw std::invalid_argument("PoissonAdversary: mean gap must be positive");
  }
  arm(0);
}

void PoissonAdversary::reset(std::uint64_t seed) {
  rng_ = util::Rng(seed);
  next_arrival_abs_ = 0;
  arm(0);
}

void PoissonAdversary::arm(Ticks from_abs) {
  const double gap = rng_.exponential(1.0 / mean_gap_);
  next_arrival_abs_ = from_abs + std::max<Ticks>(1, static_cast<Ticks>(std::llround(gap)));
}

std::optional<Ticks> PoissonAdversary::plan_interrupt(const EpisodeSchedule& episode,
                                                      const EpisodeContext& ctx) {
  // Catch the armed arrival up to the present (arrivals in the past were
  // consumed by earlier episodes or fell between episodes).
  while (next_arrival_abs_ <= ctx.episode_start) arm(next_arrival_abs_);
  const auto tick = arrival_to_tick(next_arrival_abs_, episode, ctx);
  if (tick) arm(next_arrival_abs_);  // the arrival fires; arm the next one
  return tick;
}

ParetoSessionAdversary::ParetoSessionAdversary(double scale_ticks, double shape,
                                               std::uint64_t seed)
    : scale_(scale_ticks), shape_(shape), rng_(seed) {
  if (!(scale_ticks > 0.0) || !(shape > 0.0)) {
    throw std::invalid_argument("ParetoSessionAdversary: bad scale/shape");
  }
  arm(0);
}

void ParetoSessionAdversary::reset(std::uint64_t seed) {
  rng_ = util::Rng(seed);
  next_arrival_abs_ = 0;
  arm(0);
}

void ParetoSessionAdversary::arm(Ticks from_abs) {
  const double gap = rng_.pareto(scale_, shape_);
  next_arrival_abs_ = from_abs + std::max<Ticks>(1, static_cast<Ticks>(std::llround(gap)));
}

std::optional<Ticks> ParetoSessionAdversary::plan_interrupt(
    const EpisodeSchedule& episode, const EpisodeContext& ctx) {
  while (next_arrival_abs_ <= ctx.episode_start) arm(next_arrival_abs_);
  const auto tick = arrival_to_tick(next_arrival_abs_, episode, ctx);
  if (tick) arm(next_arrival_abs_);
  return tick;
}

UniformEpisodeAdversary::UniformEpisodeAdversary(double prob, std::uint64_t seed)
    : prob_(prob), rng_(seed) {
  if (!(prob >= 0.0 && prob <= 1.0)) {
    throw std::invalid_argument("UniformEpisodeAdversary: prob in [0,1]");
  }
}

void UniformEpisodeAdversary::reset(std::uint64_t seed) { rng_ = util::Rng(seed); }

std::optional<Ticks> UniformEpisodeAdversary::plan_interrupt(
    const EpisodeSchedule& episode, const EpisodeContext&) {
  if (episode.total() < 1 || !rng_.bernoulli(prob_)) return std::nullopt;
  return rng_.uniform_int(1, episode.total());
}

}  // namespace nowsched::adversary
