// Stochastic owner models. Real workstation owners are not malicious; they
// return at random times. These processes drive the Monte-Carlo experiments
// (bench_stochastic) that connect the guaranteed-output submodel studied
// here to the expected-output submodel of the companion paper [9].
#pragma once

#include "adversary/adversary.h"
#include "util/rng.h"

namespace nowsched::adversary {

/// Poisson owner: interrupts arrive as a Poisson process with mean
/// inter-arrival `mean_gap` ticks, measured in absolute opportunity time
/// (memorylessness makes the process consistent across episodes).
class PoissonAdversary final : public Adversary {
 public:
  PoissonAdversary(double mean_gap_ticks, std::uint64_t seed);
  std::string name() const override { return "poisson-owner"; }
  std::optional<Ticks> plan_interrupt(const EpisodeSchedule& episode,
                                      const EpisodeContext& ctx) override;
  void reset(std::uint64_t seed) override;

 private:
  void arm(Ticks from_abs);
  double mean_gap_;
  util::Rng rng_;
  Ticks next_arrival_abs_ = 0;
};

/// Pareto-session owner: absence durations are Pareto(x_m, alpha) — heavy
/// tails model "stepped out for coffee vs. gone for the night" (the classic
/// NOW workload observation). Each arrival is an interrupt.
class ParetoSessionAdversary final : public Adversary {
 public:
  ParetoSessionAdversary(double scale_ticks, double shape, std::uint64_t seed);
  std::string name() const override { return "pareto-owner"; }
  std::optional<Ticks> plan_interrupt(const EpisodeSchedule& episode,
                                      const EpisodeContext& ctx) override;
  void reset(std::uint64_t seed) override;

 private:
  void arm(Ticks from_abs);
  double scale_;
  double shape_;
  util::Rng rng_;
  Ticks next_arrival_abs_ = 0;
};

/// Uniform-position owner: with probability `prob` per episode, interrupts
/// at a uniformly random tick of the episode. A simple null model.
class UniformEpisodeAdversary final : public Adversary {
 public:
  UniformEpisodeAdversary(double prob, std::uint64_t seed);
  std::string name() const override { return "uniform-owner"; }
  std::optional<Ticks> plan_interrupt(const EpisodeSchedule& episode,
                                      const EpisodeContext& ctx) override;
  void reset(std::uint64_t seed) override;

 private:
  double prob_;
  util::Rng rng_;
};

}  // namespace nowsched::adversary
