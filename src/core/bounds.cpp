#include "core/bounds.h"

#include <cmath>

namespace nowsched::bounds {

double nonadaptive_work(double lifespan, int p, double c) {
  const double pd = static_cast<double>(p);
  return lifespan - 2.0 * std::sqrt(pd * c * lifespan) + pd * c;
}

double nonadaptive_work_ocr(double lifespan, int p, double c) {
  const double pd = static_cast<double>(p);
  return lifespan - std::sqrt(2.0 * pd * c * lifespan) + pd * c;
}

double adaptive_deficit_coefficient(int p) {
  return (2.0 - std::pow(2.0, 1.0 - static_cast<double>(p))) * std::sqrt(2.0);
}

double adaptive_work_leading(double lifespan, int p, double c) {
  return lifespan - adaptive_deficit_coefficient(p) * std::sqrt(c * lifespan);
}

double optimal_deficit_coefficient(int p) {
  double a = 0.0;
  for (int q = 1; q <= p; ++q) {
    a = (a + std::sqrt(a * a + 4.0)) / 2.0;
  }
  return a;
}

double optimal_p1_work(double lifespan, double c) {
  return lifespan - std::sqrt(2.0 * c * lifespan) - c / 2.0;
}

double optimal_p1_period_count(double lifespan, double c) {
  const double inner = 2.0 * lifespan / c - 1.75;
  return inner > 0.0 ? std::sqrt(inner) - 0.5 : 1.0;
}

nowsched::Ticks zero_work_threshold(int p, nowsched::Ticks c) {
  return (static_cast<nowsched::Ticks>(p) + 1) * c;
}

}  // namespace nowsched::bounds
