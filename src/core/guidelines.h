// The paper's published scheduling guidelines.
//
// §3.1 non-adaptive: S_na(p)[U] has m = ⌊√(pU/c)⌋ equal periods of √(cU/p).
// §3.2 adaptive:     Σ_a(p)[U] invokes episode-schedules S_a(p)[U],
//                    S_a(p-1)[·], ..., S_a(0)[·] after successive interrupts.
//
// S_a(p)[L] shape (p >= 1), reading §3.2 with ℓ_p = ⌈2p/3⌉ and step 4^{1−p}c:
//   * the last ℓ_p periods have length 3c/2 (the Thm-4.2 "immune tail"),
//   * the pivot period t_{m−ℓ_p} = (p − (2 − 2^{2−p})√(2p) + ½)·c,
//   * earlier periods grow arithmetically: t_k = t_{k+1} + 4^{1−p}c.
//
// The extended abstract's constants are printed for "large L"; a literal
// reading makes the pivot negative for p ∈ {3..6} and the printed period
// count over-fills L. Our builder therefore keeps the *shape* (tail, pivot,
// arithmetic ramp with the printed step) and derives the ramp length from
// the requirement Σ t_k = L exactly; the leftover ticks are absorbed by the
// first (longest) period. DESIGN.md §1 records the OCR ambiguity; the
// benches report our m alongside the printed formula's m.
#pragma once

#include <cstddef>

#include "core/policy.h"
#include "core/schedule.h"
#include "core/types.h"

namespace nowsched {

// ---------------------------------------------------------------------------
// §3.1 — non-adaptive guideline
// ---------------------------------------------------------------------------

/// m(p)[U] = ⌊√(pU/c)⌋, clamped to [1, U]. p == 0 yields 1 (single period).
std::size_t nonadaptive_period_count(Ticks lifespan, int p, const Params& params);

/// The equal-period non-adaptive schedule S_na(p)[U].
EpisodeSchedule nonadaptive_guideline(Ticks lifespan, int p, const Params& params);

// ---------------------------------------------------------------------------
// §3.2 — adaptive guideline
// ---------------------------------------------------------------------------

/// How to realize the pivot period t_{m−ℓ_p}.
enum class PivotRule {
  /// The printed formula (p − (2 − 2^{2−p})√(2p) + ½)·c, clamped below at
  /// c/2 (the formula is negative for p ∈ {3..6}; see header comment).
  kAsPrinted,
  /// Clamp the pivot into the Thm-4.2 band (c, 2c] by using 3c/2. Offered
  /// as a rationalized ablation; bench_adaptive_vs_optimal compares both.
  kRationalized,
};

/// ℓ_p = ⌈2p/3⌉, the number of short tail periods (0 when p == 0).
std::size_t adaptive_tail_count(int p);

/// The printed schedule-length formula ⌊2^{p−1/2}√(L/c)⌋ + p·2^{2p−1}
/// (reported for comparison; the builder derives its own count).
std::size_t adaptive_period_count_paper(Ticks lifespan, int p, const Params& params);

/// The printed pivot multiplier (p − (2 − 2^{2−p})√(2p) + ½); may be negative.
double adaptive_pivot_factor(int p);

/// Introspection data for benches/tests.
struct AdaptiveLayout {
  std::size_t tail_count = 0;      ///< ℓ_p short periods of 3c/2
  std::size_t ramp_count = 0;      ///< periods strictly above the pivot
  std::size_t total_periods = 0;   ///< m
  double pivot_ticks = 0.0;        ///< realized pivot length (real, ticks)
  double step_ticks = 0.0;         ///< 4^{1−p}·c
  Ticks residual_absorbed = 0;     ///< ticks folded into the first period
  bool degenerate = false;         ///< fell back to equal-split / single period
};

/// Builds the adaptive episode-schedule S_a(p)[L] summing exactly to L.
/// p == 0 returns the single period L (Prop 4.1(d) optimum).
EpisodeSchedule adaptive_episode_guideline(Ticks lifespan, int p, const Params& params,
                                           PivotRule rule = PivotRule::kAsPrinted,
                                           AdaptiveLayout* layout = nullptr);

// ---------------------------------------------------------------------------
// Policies wrapping the guidelines
// ---------------------------------------------------------------------------

/// Σ_a(p)[U]: on each (re-)invocation schedules S_a(p_left)[residual].
class AdaptiveGuidelinePolicy final : public SchedulingPolicy {
 public:
  explicit AdaptiveGuidelinePolicy(PivotRule rule = PivotRule::kAsPrinted)
      : rule_(rule) {}
  std::string name() const override;
  EpisodeSchedule episode(Ticks residual, int interrupts_left,
                          const Params& params) const override;

 private:
  PivotRule rule_;
};

/// The §3.1 rule re-applied after every interrupt ("restarted non-adaptive").
/// The committed-schedule semantics of §2.2 (tail + final long period) are
/// evaluated separately by solver/nonadaptive_eval.
class NonAdaptiveGuidelinePolicy final : public SchedulingPolicy {
 public:
  std::string name() const override { return "nonadaptive-restart"; }
  EpisodeSchedule episode(Ticks residual, int interrupts_left,
                          const Params& params) const override;
};

}  // namespace nowsched
