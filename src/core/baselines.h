// Baseline policies the paper's introduction argues against, plus the naive
// strategies of the related work (§1.3): auctioning off "large identical
// chunks" [Atallah et al. 1992] is modelled by FixedChunkPolicy.
#pragma once

#include <cstddef>

#include "core/policy.h"

namespace nowsched {

/// One long period spanning the whole residual lifespan. Optimal iff p = 0
/// (Prop 4.1(d)); guarantees zero work whenever an interrupt may occur.
class SingleBlockPolicy final : public SchedulingPolicy {
 public:
  std::string name() const override { return "single-block"; }
  EpisodeSchedule episode(Ticks residual, int interrupts_left,
                          const Params& params) const override;
};

/// Identical chunks of a fixed size (the last chunk takes the remainder).
/// Chunk size is expressed as a multiple of c (the only scale in the model).
class FixedChunkPolicy final : public SchedulingPolicy {
 public:
  explicit FixedChunkPolicy(double chunk_in_c);
  std::string name() const override;
  EpisodeSchedule episode(Ticks residual, int interrupts_left,
                          const Params& params) const override;

 private:
  double chunk_in_c_;
};

/// Geometric back-off: first period residual/divisor, then shrink by the
/// divisor each period, never below `floor_in_c * c`; the tail is merged
/// into one final period. A common folk strategy for uncertain deadlines.
class GeometricPolicy final : public SchedulingPolicy {
 public:
  explicit GeometricPolicy(double divisor = 2.0, double floor_in_c = 2.0);
  std::string name() const override;
  EpisodeSchedule episode(Ticks residual, int interrupts_left,
                          const Params& params) const override;

 private:
  double divisor_;
  double floor_in_c_;
};

/// Fixed number of equal periods regardless of (L, p).
class EqualSplitPolicy final : public SchedulingPolicy {
 public:
  explicit EqualSplitPolicy(std::size_t periods);
  std::string name() const override;
  EpisodeSchedule episode(Ticks residual, int interrupts_left,
                          const Params& params) const override;

 private:
  std::size_t periods_;
};

}  // namespace nowsched
