// Analytic formulas from the paper, used as reference curves by the benches
// and as oracles by the tests. All continuous-time, in double.
#pragma once

#include <cstddef>

#include "core/types.h"

namespace nowsched::bounds {

/// §3.1 guaranteed work of S_na(p)[U] as derived by direct optimization of
/// equal periods (adversary kills the last p periods at their last instant):
///   W = U − 2√(pcU) + pc.
double nonadaptive_work(double lifespan, int p, double c);

/// The OCR of §3.1 prints "U − √(2pcU) + pc + O(1)"; kept for comparison
/// (bench_nonadaptive reports measured work against both readings).
double nonadaptive_work_ocr(double lifespan, int p, double c);

/// Thm 5.1 leading terms: W(Σ_a(p)[U]) >= U − (2 − 2^{1−p})√(2cU) − O(U^{1/4} + pc).
/// Returns the bound *without* the O(·) slack, i.e. U − (2 − 2^{1−p})√(2cU);
/// callers subtract their own slack model.
double adaptive_work_leading(double lifespan, int p, double c);

/// The deficit coefficient (2 − 2^{1−p})√2 multiplying √(cU) in Thm 5.1.
double adaptive_deficit_coefficient(int p);

/// The EXACT asymptotic optimal deficit coefficient a_p in
///   W(p)[U] = U − a_p·√(2cU) − o(√U),
/// satisfying a_0 = 0 and a_p = a_{p−1} + 1/a_p, i.e.
///   a_p = (a_{p−1} + √(a_{p−1}² + 4)) / 2:
///   a_1 = 1,  a_2 = φ = 1.6180…,  a_3 = 2.0953…,  a_4 = 2.4959…, a_p ~ √(2p).
///
/// Derivation (variational, matching the equalization of Thm 4.3): the
/// optimal episode uses period lengths t(T) = c / D'_p(U−T) where
/// D_p(x) = a_p√(2cx) is the deficit, so the no-interrupt deficit mc equals
/// a_p√(2cU) and the kill-period-1 deficit is t(0) + D_{p−1}(U) =
/// (1/a_p + a_{p−1})√(2cU); equalizing gives a_p = a_{p−1} + 1/a_p.
///
/// Our exact DP measures these constants to three decimals (grid- and
/// scale-independent; see bench_theorem51 and EXPERIMENTS.md E4). They
/// exceed the surviving text's (2 − 2^{1−p}) for every p >= 2 — Table 2
/// pins p = 1 where both give 1 — so the printed Thm 5.1 coefficient is
/// unachievable as stated for p >= 2; we report both.
double optimal_deficit_coefficient(int p);

/// Table 2 approximation of the 1-interrupt optimum: W(1)[U] ≈ U − √(2cU) − c/2.
double optimal_p1_work(double lifespan, double c);

/// Table 2 approximation of the optimal period count: m(1)[U] ≈ √(2U/c − 7/4) − 1/2.
double optimal_p1_period_count(double lifespan, double c);

/// Prop 4.1(c): W(p)[U] = 0 whenever U <= (p+1)c.
nowsched::Ticks zero_work_threshold(int p, nowsched::Ticks c);

}  // namespace nowsched::bounds
