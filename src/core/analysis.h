// Schedule diagnostics: the quantities an operator (or a bench) wants to see
// about a proposed episode-schedule before committing a contract to it.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/schedule.h"
#include "core/types.h"

namespace nowsched {

struct ScheduleDiagnostics {
  std::size_t periods = 0;
  Ticks total = 0;
  Ticks min_period = 0;
  Ticks max_period = 0;
  double mean_period = 0.0;

  /// Periods exceeding c (Thm 4.1 "fully productive" count).
  std::size_t productive_periods = 0;
  /// Periods inside the Thm 4.2 immune band (c, 2c].
  std::size_t immune_band_periods = 0;

  /// Setup paid if the episode completes: Σ min(t_i, c).
  Ticks setup_overhead = 0;
  /// Σ (t_i ⊖ c).
  Ticks uninterrupted_work = 0;
  /// setup_overhead / total.
  double overhead_fraction = 0.0;
  /// Largest single-interrupt loss: max over k of (work in period k) + the
  /// lifespan beyond banked use, i.e. the worst kill's destroyed capacity.
  Ticks worst_kill_loss = 0;

  std::string to_string() const;
};

ScheduleDiagnostics analyze(const EpisodeSchedule& sched, const Params& params);

/// The adversary's kill-option values under optimal 0-interrupt
/// continuation: option[k] = banked(k) + (U − T_{k+1}) ⊖ c. For schedules
/// honouring Thm 4.3's equalization these are flat over the early periods.
std::vector<Ticks> kill_option_profile_p1(const EpisodeSchedule& sched, Ticks lifespan,
                                          const Params& params);

/// max − min of the kill-option profile restricted to the first
/// `periods − immune_tail` options (0 when fewer than 2 such options).
Ticks equalization_spread_p1(const EpisodeSchedule& sched, Ticks lifespan,
                             const Params& params, std::size_t immune_tail = 2);

}  // namespace nowsched
