#include "core/baselines.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace nowsched {

EpisodeSchedule SingleBlockPolicy::episode(Ticks residual, int /*interrupts_left*/,
                                           const Params& /*params*/) const {
  return EpisodeSchedule({residual});
}

FixedChunkPolicy::FixedChunkPolicy(double chunk_in_c) : chunk_in_c_(chunk_in_c) {
  if (chunk_in_c <= 0.0) {
    throw std::invalid_argument("FixedChunkPolicy: chunk size must be positive");
  }
}

std::string FixedChunkPolicy::name() const {
  return "fixed-chunk-" + std::to_string(chunk_in_c_).substr(0, 4) + "c";
}

EpisodeSchedule FixedChunkPolicy::episode(Ticks residual, int /*interrupts_left*/,
                                          const Params& params) const {
  const auto chunk = std::max<Ticks>(
      1, static_cast<Ticks>(std::llround(chunk_in_c_ * static_cast<double>(params.c))));
  std::vector<Ticks> periods;
  Ticks left = residual;
  while (left >= 2 * chunk) {
    periods.push_back(chunk);
    left -= chunk;
  }
  periods.push_back(left);  // remainder chunk in [chunk, 2*chunk)
  return EpisodeSchedule(std::move(periods));
}

GeometricPolicy::GeometricPolicy(double divisor, double floor_in_c)
    : divisor_(divisor), floor_in_c_(floor_in_c) {
  if (divisor <= 1.0) throw std::invalid_argument("GeometricPolicy: divisor must be > 1");
  if (floor_in_c <= 0.0) {
    throw std::invalid_argument("GeometricPolicy: floor must be positive");
  }
}

std::string GeometricPolicy::name() const {
  return "geometric-1/" + std::to_string(divisor_).substr(0, 3);
}

EpisodeSchedule GeometricPolicy::episode(Ticks residual, int /*interrupts_left*/,
                                         const Params& params) const {
  const auto floor_len = std::max<Ticks>(
      1, static_cast<Ticks>(std::llround(floor_in_c_ * static_cast<double>(params.c))));
  std::vector<Ticks> periods;
  Ticks left = residual;
  double next = static_cast<double>(residual) / divisor_;
  while (left > 0) {
    auto len = static_cast<Ticks>(std::llround(next));
    len = std::max(len, floor_len);
    if (len >= left || left - len < floor_len) {
      periods.push_back(left);  // merge the tail into one final period
      break;
    }
    periods.push_back(len);
    left -= len;
    next /= divisor_;
  }
  return EpisodeSchedule(std::move(periods));
}

EqualSplitPolicy::EqualSplitPolicy(std::size_t periods) : periods_(periods) {
  if (periods == 0) throw std::invalid_argument("EqualSplitPolicy: need >= 1 period");
}

std::string EqualSplitPolicy::name() const {
  return "equal-split-" + std::to_string(periods_);
}

EpisodeSchedule EqualSplitPolicy::episode(Ticks residual, int /*interrupts_left*/,
                                          const Params& /*params*/) const {
  const std::size_t m =
      std::min<std::size_t>(periods_, static_cast<std::size_t>(residual));
  return EpisodeSchedule::equal_split(residual, std::max<std::size_t>(1, m));
}

}  // namespace nowsched
