// The §4.2 "abstract guideline", made constructive.
//
// Thm 4.3 characterizes optimal episode-schedules by *equalizing the impact
// of every potential interruption*: for every period k, the adversary's
// payoff from killing period k at its last instant,
//     banked(k−1) + W(p−1)[L − T_k],
// is the same constant V — which also equals the no-interrupt work L − mc.
//
// The DP solver realizes this with exact W(p−1) tables; this header realizes
// it *analytically*, using the paper's own closed-form approximation
//     W(q)[x] ≈ x − (2 − 2^{1−q})·√(2cx) − c/2      (Thm 5.1 / Table 2),
// with the exact W(0)[x] = x ⊖ c base case. The episode for (L, p) is built
// by bisecting on the equalized value V: given V, period ends are forced by
//     W(p−1)[L − T_k] = V − banked(k−1)   ⇒   T_k = L − W(p−1)⁻¹(·),
// and once the banked prefix covers V the remainder is cut into the Thm-4.2
// immune band (periods of 3c/2).
//
// Unlike the §3.2 printed constants (garbled in the surviving text for
// p >= 2 — see DESIGN.md §1), this construction needs no magic numbers and
// tracks the DP optimum within low-order terms for every p (verified in
// tests/integration_test.cpp and bench_adaptive_vs_optimal).
#pragma once

#include <optional>
#include <vector>

#include "core/policy.h"
#include "core/schedule.h"
#include "core/types.h"

namespace nowsched {

/// The paper's analytic approximation of the optimal guaranteed work:
/// q == 0: x ⊖ c (exact, Prop 4.1(d));
/// q >= 1: max(0, x − (2 − 2^{1−q})√(2cx) − c/2).
double analytic_guaranteed_work(int q, double lifespan, double c);

/// Inverse on the increasing branch: the smallest x with
/// analytic_guaranteed_work(q, x) == v, for v >= 0.
double analytic_guaranteed_work_inverse(int q, double value, double c);

/// Builds the equalized episode-schedule for (L, p). p == 0 is the single
/// period L. Returns the realized equalized value via `value_out` if given.
EpisodeSchedule equalized_episode(Ticks lifespan, int p, const Params& params,
                                  double* value_out = nullptr);

/// Adaptive policy built on equalized episodes — the reference
/// implementation of the paper's abstract guidelines.
class EqualizedGuidelinePolicy final : public SchedulingPolicy {
 public:
  std::string name() const override { return "equalized-guideline"; }
  EpisodeSchedule episode(Ticks residual, int interrupts_left,
                          const Params& params) const override;
};

}  // namespace nowsched
