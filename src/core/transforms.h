// Schedule transformations proved safe by the paper.
//
// Thm 4.1: any schedule can be replaced by a *productive* one (every
// non-terminal period > c) without losing guaranteed work, by merging a
// non-productive period into its successor.
//
// Thm 4.2: in an r-immune schedule (the adversary never interrupts the last
// r periods), every immune period may be re-cut into lengths in (c, 2c]
// without decreasing work production — splitting a long period into equal
// halves only helps.
#pragma once

#include <cstddef>

#include "core/schedule.h"
#include "core/types.h"

namespace nowsched {

/// Thm 4.1 transformation: repeatedly merge any non-terminal period of
/// length <= c into its successor. Preserves total lifespan; the result is
/// productive. Idempotent.
EpisodeSchedule make_productive(const EpisodeSchedule& sched, const Params& params);

/// Thm 4.2 transformation: re-cut the last `immune_count` periods so each
/// piece lies in (c, 2c] where possible (periods of length <= 2c are kept;
/// longer ones are split into ⌈t/(2c)⌉ equal pieces, each in (c, 2c]).
/// Preserves total lifespan and all non-immune periods.
EpisodeSchedule split_immune_tail(const EpisodeSchedule& sched, std::size_t immune_count,
                                  const Params& params);

}  // namespace nowsched
