#include "core/guidelines.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace nowsched {

namespace {

void require_inputs(Ticks lifespan, int p, const Params& params) {
  require_valid(params);
  if (lifespan < 1) throw std::invalid_argument("guideline: lifespan must be >= 1");
  if (p < 0) throw std::invalid_argument("guideline: p must be >= 0");
}

}  // namespace

// ---------------------------------------------------------------------------
// §3.1
// ---------------------------------------------------------------------------

std::size_t nonadaptive_period_count(Ticks lifespan, int p, const Params& params) {
  require_inputs(lifespan, p, params);
  if (p == 0) return 1;
  const double u = static_cast<double>(lifespan);
  const double c = static_cast<double>(params.c);
  const double m = std::floor(std::sqrt(static_cast<double>(p) * u / c));
  const auto clamped =
      std::max<Ticks>(1, std::min<Ticks>(lifespan, static_cast<Ticks>(m)));
  return static_cast<std::size_t>(clamped);
}

EpisodeSchedule nonadaptive_guideline(Ticks lifespan, int p, const Params& params) {
  return EpisodeSchedule::equal_split(lifespan,
                                      nonadaptive_period_count(lifespan, p, params));
}

// ---------------------------------------------------------------------------
// §3.2
// ---------------------------------------------------------------------------

std::size_t adaptive_tail_count(int p) {
  if (p <= 0) return 0;
  return static_cast<std::size_t>((2 * p + 2) / 3);  // ⌈2p/3⌉
}

std::size_t adaptive_period_count_paper(Ticks lifespan, int p, const Params& params) {
  require_inputs(lifespan, p, params);
  if (p == 0) return 1;
  const double l = static_cast<double>(lifespan);
  const double c = static_cast<double>(params.c);
  const double sqrt_part =
      std::floor(std::pow(2.0, static_cast<double>(p) - 0.5) * std::sqrt(l / c));
  const double extra =
      static_cast<double>(p) * std::pow(2.0, 2.0 * static_cast<double>(p) - 1.0);
  return static_cast<std::size_t>(sqrt_part + extra);
}

double adaptive_pivot_factor(int p) {
  const double pd = static_cast<double>(p);
  return pd - (2.0 - std::pow(2.0, 2.0 - pd)) * std::sqrt(2.0 * pd) + 0.5;
}

EpisodeSchedule adaptive_episode_guideline(Ticks lifespan, int p, const Params& params,
                                           PivotRule rule, AdaptiveLayout* layout) {
  require_inputs(lifespan, p, params);
  AdaptiveLayout local;
  AdaptiveLayout& lay = layout ? *layout : local;
  lay = AdaptiveLayout{};

  if (p == 0) {
    // Prop 4.1(d): the unique 0-interrupt optimum is the single period U.
    lay.total_periods = 1;
    return EpisodeSchedule({lifespan});
  }

  const double c = static_cast<double>(params.c);
  const std::size_t tail = adaptive_tail_count(p);
  const double tail_len = 1.5 * c;
  const double step = std::pow(4.0, 1.0 - static_cast<double>(p)) * c;
  double pivot = 0.0;
  switch (rule) {
    case PivotRule::kAsPrinted:
      // The printed formula dips below zero for p in {3..6}; clamp at c/2
      // (the p = 2 printed value) so the schedule stays constructible.
      pivot = std::max(adaptive_pivot_factor(p), 0.5) * c;
      break;
    case PivotRule::kRationalized:
      pivot = 1.5 * c;
      break;
  }
  lay.pivot_ticks = pivot;
  lay.step_ticks = step;
  lay.tail_count = tail;

  const double l = static_cast<double>(lifespan);
  const double mandatory = tail_len * static_cast<double>(tail) + pivot;
  if (l < mandatory + 1.0) {
    // Degenerate: the printed shape does not fit. Use the Thm-4.2 band:
    // equal periods as close to 3c/2 as possible, else a single period.
    lay.degenerate = true;
    const auto m = static_cast<Ticks>(std::max(1.0, std::floor(l / tail_len)));
    const Ticks count = std::max<Ticks>(1, std::min<Ticks>(m, lifespan));
    lay.total_periods = static_cast<std::size_t>(count);
    return EpisodeSchedule::equal_split(lifespan, static_cast<std::size_t>(count));
  }

  // Largest r >= 0 with tail + pivot + sum_{j=1..r} (pivot + j*step) <= L,
  // i.e. mandatory + r*pivot + step*r(r+1)/2 <= L. Solve the quadratic,
  // then correct by linear scan (floating point safety).
  const double budget = l - mandatory;
  double r_est;
  if (step > 0.0) {
    const double a = step / 2.0;
    const double b = pivot + step / 2.0;
    r_est = (-b + std::sqrt(b * b + 4.0 * a * budget)) / (2.0 * a);
  } else {
    r_est = budget / std::max(pivot, 1.0);
  }
  auto ramp_sum = [&](double r) {
    return r * pivot + step * r * (r + 1.0) / 2.0;
  };
  auto r = static_cast<std::size_t>(std::max(0.0, std::floor(r_est)));
  while (ramp_sum(static_cast<double>(r + 1)) <= budget) ++r;
  while (r > 0 && ramp_sum(static_cast<double>(r)) > budget) --r;
  lay.ramp_count = r;

  // Assemble real-valued lengths: ramp (longest first), pivot, tail.
  std::vector<double> lengths;
  lengths.reserve(r + 1 + tail);
  for (std::size_t j = r; j >= 1; --j) {
    lengths.push_back(pivot + static_cast<double>(j) * step);
  }
  lengths.push_back(pivot);
  for (std::size_t i = 0; i < tail; ++i) lengths.push_back(tail_len);

  // Absorb the leftover into the first (longest) period so Σ t_k = L holds
  // exactly, as required by the model (§2.2).
  const double assigned = mandatory + ramp_sum(static_cast<double>(r));
  const double leftover = l - assigned;
  lengths.front() += leftover;
  lay.residual_absorbed = static_cast<Ticks>(std::llround(leftover));
  lay.total_periods = lengths.size();

  return EpisodeSchedule::from_real(lengths, lifespan);
}

std::string AdaptiveGuidelinePolicy::name() const {
  return rule_ == PivotRule::kAsPrinted ? "adaptive-guideline"
                                        : "adaptive-guideline-rationalized";
}

EpisodeSchedule AdaptiveGuidelinePolicy::episode(Ticks residual, int interrupts_left,
                                                 const Params& params) const {
  return adaptive_episode_guideline(residual, interrupts_left, params, rule_);
}

EpisodeSchedule NonAdaptiveGuidelinePolicy::episode(Ticks residual, int interrupts_left,
                                                    const Params& params) const {
  return nonadaptive_guideline(residual, interrupts_left, params);
}

}  // namespace nowsched
