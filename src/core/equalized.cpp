#include "core/equalized.h"

#include <cmath>
#include <stdexcept>

namespace nowsched {

namespace {

double deficit_coefficient(int q) {
  return 2.0 - std::pow(2.0, 1.0 - static_cast<double>(q));
}

/// Builds the real-valued period lengths for equalized value `v`, or nullopt
/// when `v` is too ambitious (some forced period would be unproductive or
/// the no-interrupt work falls short of v).
std::optional<std::vector<double>> try_build(double lifespan, int p, double c,
                                             double v) {
  std::vector<double> lengths;
  double t_begin = 0.0;  // running T_{k-1}
  double banked = 0.0;

  // Forced periods: each exposes the adversary option worth exactly v.
  while (true) {
    const double need = v - banked;
    if (need <= 0.0) break;
    const double x = analytic_guaranteed_work_inverse(p - 1, need, c);
    const double t_end = lifespan - x;
    const double t = t_end - t_begin;
    if (t <= c) return std::nullopt;  // unproductive forced period: v too big
    lengths.push_back(t);
    banked += t - c;
    t_begin = t_end;
    if (lengths.size() > 4096u) return std::nullopt;  // runaway guard
  }

  // Immune remainder: cut into the Thm-4.2 band (3c/2 pieces).
  double rest = lifespan - t_begin;
  double total_work = banked;
  while (rest > 3.0 * c) {
    lengths.push_back(1.5 * c);
    total_work += 0.5 * c;
    rest -= 1.5 * c;
  }
  if (rest > 0.0) {
    lengths.push_back(rest);
    total_work += std::max(0.0, rest - c);
  }
  if (lengths.empty()) return std::nullopt;
  // The no-interrupt option must also be worth at least v.
  if (total_work < v) return std::nullopt;
  return lengths;
}

}  // namespace

double analytic_guaranteed_work(int q, double lifespan, double c) {
  if (q < 0) throw std::invalid_argument("analytic_guaranteed_work: q >= 0");
  if (lifespan <= 0.0) return 0.0;
  if (q == 0) return std::max(0.0, lifespan - c);
  const double a = deficit_coefficient(q);
  return std::max(0.0, lifespan - a * std::sqrt(2.0 * c * lifespan) - c / 2.0);
}

double analytic_guaranteed_work_inverse(int q, double value, double c) {
  if (q < 0) throw std::invalid_argument("analytic_guaranteed_work_inverse: q >= 0");
  if (value < 0.0) throw std::invalid_argument("inverse: value >= 0");
  if (q == 0) return value + c;
  // x − a√(2cx) − c/2 = v with s = √x:  s² − (a√(2c))s − (v + c/2) = 0.
  const double a = deficit_coefficient(q);
  const double b = a * std::sqrt(2.0 * c);
  const double s = (b + std::sqrt(b * b + 4.0 * (value + c / 2.0))) / 2.0;
  return s * s;
}

EpisodeSchedule equalized_episode(Ticks lifespan, int p, const Params& params,
                                  double* value_out) {
  require_valid(params);
  if (lifespan < 1) throw std::invalid_argument("equalized_episode: lifespan >= 1");
  if (p < 0) throw std::invalid_argument("equalized_episode: p >= 0");
  if (value_out != nullptr) *value_out = 0.0;

  if (p == 0) {
    if (value_out != nullptr) {
      *value_out = static_cast<double>(positive_sub(lifespan, params.c));
    }
    return EpisodeSchedule({lifespan});  // Prop 4.1(d)
  }

  const double l = static_cast<double>(lifespan);
  const double c = static_cast<double>(params.c);

  // Bisect for the largest feasible equalized value V.
  double lo = 0.0, hi = std::max(0.0, l - c);
  std::optional<std::vector<double>> best = try_build(l, p, c, 0.0);
  double best_v = 0.0;
  for (int iter = 0; iter < 64 && hi - lo > 0.25; ++iter) {
    const double mid = (lo + hi) / 2.0;
    auto attempt = try_build(l, p, c, mid);
    if (attempt) {
      best = std::move(attempt);
      best_v = mid;
      lo = mid;
    } else {
      hi = mid;
    }
  }
  if (!best || best->empty()) {
    // No productive split exists (L at or below the Prop 4.1(c) threshold):
    // a single period is as good as anything.
    return EpisodeSchedule({lifespan});
  }
  if (value_out != nullptr) *value_out = best_v;
  return EpisodeSchedule::from_real(*best, lifespan);
}

EpisodeSchedule EqualizedGuidelinePolicy::episode(Ticks residual, int interrupts_left,
                                                  const Params& params) const {
  return equalized_episode(residual, interrupts_left, params);
}

}  // namespace nowsched
