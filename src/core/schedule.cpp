#include "core/schedule.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace nowsched {

EpisodeSchedule::EpisodeSchedule(std::vector<Ticks> periods)
    : periods_(std::move(periods)) {
  for (Ticks t : periods_) {
    if (t < 1) {
      throw std::invalid_argument("EpisodeSchedule: period lengths must be >= 1 tick");
    }
  }
  rebuild_prefix();
}

void EpisodeSchedule::rebuild_prefix() {
  prefix_.resize(periods_.size() + 1);
  prefix_[0] = 0;
  for (std::size_t i = 0; i < periods_.size(); ++i) {
    prefix_[i + 1] = prefix_[i] + periods_[i];
  }
}

EpisodeSchedule EpisodeSchedule::equal_split(Ticks total, std::size_t m) {
  if (m < 1 || static_cast<Ticks>(m) > total) {
    throw std::invalid_argument("equal_split: need 1 <= m <= total");
  }
  const Ticks base = total / static_cast<Ticks>(m);
  const Ticks extra = total % static_cast<Ticks>(m);
  std::vector<Ticks> periods(m, base);
  for (Ticks i = 0; i < extra; ++i) periods[static_cast<std::size_t>(i)] += 1;
  return EpisodeSchedule(std::move(periods));
}

EpisodeSchedule EpisodeSchedule::from_real(const std::vector<double>& lengths,
                                           Ticks total) {
  if (total < 1) throw std::invalid_argument("from_real: total must be >= 1");

  // Keep positive entries only, preserving order.
  std::vector<double> pos;
  pos.reserve(lengths.size());
  for (double x : lengths) {
    if (x > 0.0) pos.push_back(x);
  }
  if (pos.empty()) return EpisodeSchedule({total});

  // Scale so the real lengths sum to `total`, then apportion by largest
  // remainder. Floors can make some periods 0; such periods are bumped to 1
  // and the excess is taken back from the largest periods.
  const double sum = std::accumulate(pos.begin(), pos.end(), 0.0);
  const double scale = static_cast<double>(total) / sum;

  const std::size_t m = pos.size();
  if (static_cast<Ticks>(m) > total) {
    // More periods than ticks: collapse to the feasible maximum.
    return equal_split(total, static_cast<std::size_t>(total));
  }

  std::vector<Ticks> periods(m);
  std::vector<std::pair<double, std::size_t>> remainders(m);
  Ticks assigned = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const double scaled = pos[i] * scale;
    const double fl = std::floor(scaled);
    periods[i] = static_cast<Ticks>(fl);
    remainders[i] = {scaled - fl, i};
    assigned += periods[i];
  }
  // Hand out the leftover ticks to the largest fractional remainders.
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  Ticks leftover = total - assigned;
  for (std::size_t j = 0; leftover > 0; j = (j + 1) % m, --leftover) {
    periods[remainders[j].second] += 1;
  }
  // Repair zero-length periods (possible when a real length rounded to 0).
  for (std::size_t i = 0; i < m; ++i) {
    while (periods[i] < 1) {
      auto biggest = std::max_element(periods.begin(), periods.end());
      if (*biggest <= 1) {
        // Cannot repair (total too small for m periods); fall back.
        return equal_split(total, static_cast<std::size_t>(
                                      std::min<Ticks>(static_cast<Ticks>(m), total)));
      }
      *biggest -= 1;
      periods[i] += 1;
    }
  }
  return EpisodeSchedule(std::move(periods));
}

Ticks EpisodeSchedule::work_if_uninterrupted(const Params& params) const noexcept {
  Ticks work = 0;
  for (Ticks t : periods_) work += positive_sub(t, params.c);
  return work;
}

Ticks EpisodeSchedule::banked_work(std::size_t k, const Params& params) const {
  if (k > periods_.size()) {
    throw std::out_of_range("banked_work: period index out of range");
  }
  Ticks work = 0;
  for (std::size_t i = 0; i < k; ++i) work += positive_sub(periods_[i], params.c);
  return work;
}

bool EpisodeSchedule::is_productive(const Params& params) const noexcept {
  if (periods_.empty()) return true;
  for (std::size_t i = 0; i + 1 < periods_.size(); ++i) {
    if (periods_[i] <= params.c) return false;
  }
  return true;
}

bool EpisodeSchedule::is_fully_productive(const Params& params) const noexcept {
  return std::all_of(periods_.begin(), periods_.end(),
                     [&](Ticks t) { return t > params.c; });
}

std::string EpisodeSchedule::to_string() const {
  std::ostringstream os;
  const std::size_t limit = 12;
  for (std::size_t i = 0; i < periods_.size(); ++i) {
    if (i) os << ',';
    if (periods_.size() > limit && i == limit / 2) {
      os << "...";
      i = periods_.size() - limit / 2 - 1;
      continue;
    }
    os << periods_[i];
  }
  os << " (m=" << periods_.size() << ", sum=" << total() << ")";
  return os.str();
}

EpisodeOutcome interrupt_at_period_end(const EpisodeSchedule& sched, std::size_t k,
                                       Ticks residual_lifespan, const Params& params) {
  if (k >= sched.size()) {
    throw std::out_of_range("interrupt_at_period_end: no such period");
  }
  EpisodeOutcome out;
  out.interrupted = true;
  out.period = k;
  out.work = sched.banked_work(k, params);
  // Last-instant interrupt nullifies the full period: lifespan consumed is
  // T_{k+1} (the limit t -> T_{k+1} of Table 1's "U - t").
  out.residual = positive_sub(residual_lifespan, sched.end(k));
  return out;
}

EpisodeOutcome interrupt_at_time(const EpisodeSchedule& sched, Ticks when,
                                 Ticks residual_lifespan, const Params& params) {
  if (when < 1 || when > sched.total()) {
    throw std::out_of_range("interrupt_at_time: tick outside the episode");
  }
  // Find the period containing tick `when`: largest k with start(k) < when.
  std::size_t lo = 0, hi = sched.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi + 1) / 2;
    if (sched.start(mid) < when) lo = mid;
    else hi = mid - 1;
  }
  EpisodeOutcome out;
  out.interrupted = true;
  out.period = lo;
  out.work = sched.banked_work(lo, params);
  out.residual = positive_sub(residual_lifespan, when);
  return out;
}

EpisodeOutcome run_uninterrupted(const EpisodeSchedule& sched, Ticks residual_lifespan,
                                 const Params& params) {
  EpisodeOutcome out;
  out.work = sched.work_if_uninterrupted(params);
  out.residual = positive_sub(residual_lifespan, sched.total());
  return out;
}

}  // namespace nowsched
