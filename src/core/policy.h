// SchedulingPolicy: the strategy interface of the cycle-stealing game.
//
// A policy sees only what the paper's owner of A sees (§2.2): the residual
// lifespan and how many interrupts may still occur. It commits to an
// episode-schedule; the next decision point is the next interrupt.
#pragma once

#include <memory>
#include <string>

#include "core/schedule.h"
#include "core/types.h"

namespace nowsched {

class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  /// Identifier used in benches and EXPERIMENTS.md.
  virtual std::string name() const = 0;

  /// Episode-schedule for the coming episode. Must sum to exactly
  /// `residual`; `interrupts_left` >= 0 is the bound on future interrupts.
  /// Called only with residual >= 1.
  virtual EpisodeSchedule episode(Ticks residual, int interrupts_left,
                                  const Params& params) const = 0;
};

using PolicyPtr = std::shared_ptr<const SchedulingPolicy>;

}  // namespace nowsched
