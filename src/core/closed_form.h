// The closed-form optimal 1-interrupt episode-schedule S_opt(1)[U] (§5.2).
//
// Structure (the case p = 1 is 0-immune): there is α ∈ (0, 1] with
//   t_m = t_{m−1} = (1 + α)c,
//   t_k = t_{k+1} + c = (m − k + α)c   for k <= m − 2,
// and the optimal period count (eq. 5.1)
//   m(1)[U] = ⌈ √(2U/c − 7/4) − 1/2 ⌉.
// α is pinned by Σ t_k = U:  α = (U − c)/(mc) − (m − 1)/2.
#pragma once

#include <cstddef>

#include "core/schedule.h"
#include "core/types.h"

namespace nowsched {

/// eq. (5.1) period count, before the ±1 adjustment that keeps α in (0, 1].
std::size_t opt_p1_period_count_raw(Ticks lifespan, const Params& params);

struct OptP1 {
  std::size_t m = 0;       ///< realized period count
  double alpha = 0.0;      ///< α ∈ (0, 1] (meaningful when m >= 2)
  bool adjusted = false;   ///< eq. (5.1) needed a ±1 correction
  EpisodeSchedule schedule;
};

/// Constructs S_opt(1)[U] on the tick grid (largest-remainder rounding).
/// For lifespans too short for the two-period structure, degrades to a
/// single period (which is then optimal only when W(1)[U] = 0).
OptP1 optimal_p1_schedule(Ticks lifespan, const Params& params);

/// Exact guaranteed work of an arbitrary committed episode against one
/// potential interrupt, assuming optimal continuation afterwards
/// (Prop 4.1(d): the residual is run as a single period, worth (L−T_k) ⊖ c):
///   W = min( Σ(t_i ⊖ c),  min_k [ banked(k) + (U − T_{k+1}) ⊖ c ] ).
/// Requires sched.total() == lifespan.
Ticks guaranteed_work_p1(const EpisodeSchedule& sched, Ticks lifespan,
                         const Params& params);

}  // namespace nowsched
