// Fundamental model types for draconian cycle-stealing (Rosenberg 1999, §2).
//
// Time and work are measured in integer Ticks. The paper works in continuous
// time; we discretize so that game values are exact integers and properties
// such as 1-Lipschitz continuity of W(p)[L] can be asserted exactly.
// Experiments scale the setup cost c to >= 16 ticks so that discretization
// error is a sub-percent effect (quantified in EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace nowsched {

/// Discrete time / work quantity. Signed so that differences are natural;
/// all public APIs maintain non-negativity invariants.
using Ticks = std::int64_t;

/// Positive subtraction, the paper's ⊖ operator: x ⊖ y = max(0, x − y).
/// A period of length t yields t ⊖ c units of work (§2.2).
[[nodiscard]] constexpr Ticks positive_sub(Ticks x, Ticks y) noexcept {
  return x > y ? x - y : 0;
}

/// Model parameters of the architecture-independent framework (§2.1):
/// c is the fixed cost of the paired communications bracketing each period
/// (A sends work to B; B returns results), independent of data volume.
struct Params {
  Ticks c = 16;

  constexpr bool valid() const noexcept { return c >= 1; }
};

/// Throws std::invalid_argument unless params.valid().
inline void require_valid(const Params& params) {
  if (!params.valid()) {
    throw std::invalid_argument("Params: setup cost c must be >= 1 tick, got " +
                                std::to_string(params.c));
  }
}

/// A cycle-stealing opportunity (§2.1): usable lifespan U and an upper bound
/// p on the number of owner interruptions. The owner of A knows (U, p) but
/// not when (or whether) the interrupts occur.
struct Opportunity {
  Ticks lifespan = 0;  ///< U > 0
  int max_interrupts = 0;  ///< p >= 0

  constexpr bool valid() const noexcept {
    return lifespan >= 0 && max_interrupts >= 0;
  }
};

inline void require_valid(const Opportunity& opp) {
  if (!opp.valid()) {
    throw std::invalid_argument("Opportunity: need lifespan >= 0 and p >= 0");
  }
}

}  // namespace nowsched
