// Episode schedules and their work accounting (Rosenberg 1999, §2.2).
//
// An episode-schedule for residual lifespan L is a sequence of period
// lengths t_1..t_m with sum L. Period k begins at T_{k-1} = t_1+..+t_{k-1};
// if it completes it contributes t_k ⊖ c work; if the owner interrupts
// during it, the period's work is lost and the episode ends.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/types.h"

namespace nowsched {

class EpisodeSchedule {
 public:
  /// Empty schedule (zero periods, zero lifespan) — the p=0, L=0 base case.
  EpisodeSchedule() = default;

  /// Takes ownership of the period lengths. Every period must be >= 1 tick;
  /// throws std::invalid_argument otherwise.
  explicit EpisodeSchedule(std::vector<Ticks> periods);

  /// L split into m periods as evenly as possible (the first L mod m periods
  /// get the extra tick). Requires 1 <= m <= L.
  static EpisodeSchedule equal_split(Ticks total, std::size_t m);

  /// Builds a schedule from real-valued period lengths, rounded so the sum
  /// is exactly `total` (largest-remainder apportionment; every period >= 1).
  /// Non-positive real lengths are dropped. If the real lengths cannot
  /// accommodate `total` (e.g. all dropped), returns a single period.
  static EpisodeSchedule from_real(const std::vector<double>& lengths, Ticks total);

  std::size_t size() const noexcept { return periods_.size(); }
  bool empty() const noexcept { return periods_.empty(); }

  /// Period length t_{k+1} (0-based index k).
  Ticks period(std::size_t k) const { return periods_.at(k); }

  /// T_k, the start time of 0-based period k (T_0 = 0). start(size()) == total.
  Ticks start(std::size_t k) const { return prefix_.at(k); }

  /// End time of 0-based period k, i.e. T_{k+1}.
  Ticks end(std::size_t k) const { return prefix_.at(k + 1); }

  /// Total scheduled lifespan L = sum of period lengths.
  Ticks total() const noexcept { return prefix_.empty() ? 0 : prefix_.back(); }

  std::span<const Ticks> periods() const noexcept { return periods_; }

  /// Work accomplished when no interrupt occurs: sum of (t_i ⊖ c).
  Ticks work_if_uninterrupted(const Params& params) const noexcept;

  /// Work banked by the first k completed periods: sum_{i<k} (t_i ⊖ c).
  /// This is the episode's output when 0-based period k is interrupted.
  Ticks banked_work(std::size_t k, const Params& params) const;

  /// "Productive" (Thm 4.1): every period except possibly the last exceeds c.
  bool is_productive(const Params& params) const noexcept;

  /// "Fully productive" (§4.1): every period exceeds c.
  bool is_fully_productive(const Params& params) const noexcept;

  /// Human-readable rendering "t1,t2,...,tm (sum=L)"; long schedules elided.
  std::string to_string() const;

  friend bool operator==(const EpisodeSchedule& a, const EpisodeSchedule& b) {
    return a.periods_ == b.periods_;
  }

 private:
  void rebuild_prefix();

  std::vector<Ticks> periods_;
  std::vector<Ticks> prefix_;  // prefix_[k] = T_k; size == periods_.size() + 1
};

/// Outcome of one episode once the adversary's move is known.
struct EpisodeOutcome {
  Ticks work = 0;            ///< work banked by the episode
  Ticks residual = 0;        ///< lifespan remaining after the episode
  bool interrupted = false;  ///< whether the owner interrupted
  std::size_t period = 0;    ///< 0-based interrupted period (if interrupted)
};

/// Plays out an episode against a *last-instant* interrupt of 0-based period
/// `k` (the adversary's dominant choice, §4.1 Observation (a)): the episode
/// banks the first k periods' work, and the residual lifespan shrinks by T_{k+1}.
EpisodeOutcome interrupt_at_period_end(const EpisodeSchedule& sched, std::size_t k,
                                       Ticks residual_lifespan, const Params& params);

/// Plays out an episode against an interrupt *during* 1-based tick `when`
/// in [1, total]: the period containing that tick is killed and `when` ticks
/// of lifespan are consumed. `when == end(k)` is the last instant of period
/// k and consumes exactly T_{k+1} — the limit the paper's Table 1 analyzes.
/// Used to verify Observation (a): mid-period interrupts are dominated.
EpisodeOutcome interrupt_at_time(const EpisodeSchedule& sched, Ticks when,
                                 Ticks residual_lifespan, const Params& params);

/// Plays out an uninterrupted episode.
EpisodeOutcome run_uninterrupted(const EpisodeSchedule& sched, Ticks residual_lifespan,
                                 const Params& params);

}  // namespace nowsched
