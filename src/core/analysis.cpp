#include "core/analysis.h"

#include <algorithm>
#include <sstream>

namespace nowsched {

std::string ScheduleDiagnostics::to_string() const {
  std::ostringstream os;
  os << "m=" << periods << " total=" << total << " period[" << min_period << ","
     << max_period << "] mean=" << mean_period << " productive=" << productive_periods
     << " immune-band=" << immune_band_periods << " setup=" << setup_overhead << " ("
     << overhead_fraction * 100.0 << "%) work=" << uninterrupted_work
     << " worst-kill=" << worst_kill_loss;
  return os.str();
}

ScheduleDiagnostics analyze(const EpisodeSchedule& sched, const Params& params) {
  require_valid(params);
  ScheduleDiagnostics d;
  d.periods = sched.size();
  d.total = sched.total();
  if (sched.empty()) return d;

  d.min_period = sched.period(0);
  d.max_period = sched.period(0);
  for (std::size_t i = 0; i < sched.size(); ++i) {
    const Ticks t = sched.period(i);
    d.min_period = std::min(d.min_period, t);
    d.max_period = std::max(d.max_period, t);
    d.productive_periods += (t > params.c);
    d.immune_band_periods += (t > params.c && t <= 2 * params.c);
    d.setup_overhead += std::min(t, params.c);
    d.uninterrupted_work += positive_sub(t, params.c);
    d.worst_kill_loss = std::max(d.worst_kill_loss, t);
  }
  d.mean_period = static_cast<double>(d.total) / static_cast<double>(d.periods);
  d.overhead_fraction =
      static_cast<double>(d.setup_overhead) / static_cast<double>(d.total);
  return d;
}

std::vector<Ticks> kill_option_profile_p1(const EpisodeSchedule& sched, Ticks lifespan,
                                          const Params& params) {
  std::vector<Ticks> profile;
  profile.reserve(sched.size());
  Ticks banked = 0;
  for (std::size_t k = 0; k < sched.size(); ++k) {
    const Ticks rest = positive_sub(positive_sub(lifespan, sched.end(k)), params.c);
    profile.push_back(banked + rest);
    banked += positive_sub(sched.period(k), params.c);
  }
  return profile;
}

Ticks equalization_spread_p1(const EpisodeSchedule& sched, Ticks lifespan,
                             const Params& params, std::size_t immune_tail) {
  const auto profile = kill_option_profile_p1(sched, lifespan, params);
  if (profile.size() <= immune_tail + 1) return 0;
  const std::size_t n = profile.size() - immune_tail;
  const auto [lo, hi] = std::minmax_element(profile.begin(),
                                            profile.begin() + static_cast<std::ptrdiff_t>(n));
  return *hi - *lo;
}

}  // namespace nowsched
