#include "core/transforms.h"

#include <algorithm>
#include <vector>

namespace nowsched {

EpisodeSchedule make_productive(const EpisodeSchedule& sched, const Params& params) {
  std::vector<Ticks> periods(sched.periods().begin(), sched.periods().end());
  // Backward sweep: merging periods[i] into periods[i+1] can only grow the
  // successor, so one pass from the end suffices — after processing index i,
  // all non-terminal periods at indices >= i exceed c.
  for (std::size_t i = periods.size(); i-- > 1;) {
    // i-1 is non-terminal as long as anything follows it.
    if (periods[i - 1] <= params.c) {
      periods[i] += periods[i - 1];
      periods.erase(periods.begin() + static_cast<std::ptrdiff_t>(i - 1));
    }
  }
  return EpisodeSchedule(std::move(periods));
}

EpisodeSchedule split_immune_tail(const EpisodeSchedule& sched,
                                  std::size_t immune_count, const Params& params) {
  const std::size_t m = sched.size();
  immune_count = std::min(immune_count, m);
  const std::size_t first_immune = m - immune_count;

  std::vector<Ticks> periods;
  periods.reserve(m);
  for (std::size_t i = 0; i < first_immune; ++i) periods.push_back(sched.period(i));
  for (std::size_t i = first_immune; i < m; ++i) {
    const Ticks t = sched.period(i);
    if (t <= 2 * params.c) {
      periods.push_back(t);
      continue;
    }
    // q = ⌈t/(2c)⌉ equal pieces; each piece is > c because t > 2c.
    const Ticks q = (t + 2 * params.c - 1) / (2 * params.c);
    const EpisodeSchedule pieces =
        EpisodeSchedule::equal_split(t, static_cast<std::size_t>(q));
    for (Ticks piece : pieces.periods()) periods.push_back(piece);
  }
  return EpisodeSchedule(std::move(periods));
}

}  // namespace nowsched
