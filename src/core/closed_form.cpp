#include "core/closed_form.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace nowsched {

namespace {

double alpha_for(Ticks lifespan, std::size_t m, const Params& params) {
  const double u = static_cast<double>(lifespan);
  const double c = static_cast<double>(params.c);
  const double md = static_cast<double>(m);
  return (u - c) / (md * c) - (md - 1.0) / 2.0;
}

}  // namespace

std::size_t opt_p1_period_count_raw(Ticks lifespan, const Params& params) {
  require_valid(params);
  if (lifespan < 1) throw std::invalid_argument("opt_p1: lifespan must be >= 1");
  const double u = static_cast<double>(lifespan);
  const double c = static_cast<double>(params.c);
  const double inner = 2.0 * u / c - 1.75;
  if (inner <= 0.0) return 1;
  const double m = std::ceil(std::sqrt(inner) - 0.5);
  return static_cast<std::size_t>(std::max(1.0, m));
}

OptP1 optimal_p1_schedule(Ticks lifespan, const Params& params) {
  OptP1 out;
  std::size_t m = opt_p1_period_count_raw(lifespan, params);

  if (lifespan < 2 * (params.c + 1) || m < 2) {
    // Too short for the (1+α)c twin-tail structure; W(1) here is 0 or near 0
    // (Prop 4.1(c): zero for U <= 2c) and a single period is as good.
    out.m = 1;
    out.schedule = EpisodeSchedule({lifespan});
    return out;
  }

  // Keep α in (0, 1]; eq. (5.1) can land one off at band boundaries because
  // of the discretized U.
  double alpha = alpha_for(lifespan, m, params);
  const std::size_t m_raw = m;
  for (int guard = 0; guard < 64 && (alpha <= 0.0 || alpha > 1.0); ++guard) {
    if (alpha <= 0.0 && m > 2) --m;
    else if (alpha > 1.0) ++m;
    else break;
    alpha = alpha_for(lifespan, m, params);
  }
  out.adjusted = (m != m_raw);
  out.m = m;
  out.alpha = alpha;

  const double c = static_cast<double>(params.c);
  std::vector<double> lengths;
  lengths.reserve(m);
  for (std::size_t k = 1; k + 2 <= m; ++k) {
    lengths.push_back((static_cast<double>(m - k) + alpha) * c);
  }
  lengths.push_back((1.0 + alpha) * c);
  lengths.push_back((1.0 + alpha) * c);
  out.schedule = EpisodeSchedule::from_real(lengths, lifespan);
  return out;
}

Ticks guaranteed_work_p1(const EpisodeSchedule& sched, Ticks lifespan,
                         const Params& params) {
  if (sched.total() != lifespan) {
    throw std::invalid_argument("guaranteed_work_p1: schedule must span the lifespan");
  }
  Ticks best = sched.work_if_uninterrupted(params);
  Ticks banked = 0;
  for (std::size_t k = 0; k < sched.size(); ++k) {
    // Adversary kills 0-based period k at its last instant; afterwards the
    // unique optimal 0-interrupt continuation is one long period
    // (Prop 4.1(d)) worth (U − T_{k+1}) ⊖ c.
    const Ticks tail = positive_sub(positive_sub(lifespan, sched.end(k)), params.c);
    best = std::min(best, banked + tail);
    banked += positive_sub(sched.period(k), params.c);
  }
  return best;
}

}  // namespace nowsched
