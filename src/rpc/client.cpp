#include "rpc/client.h"

#include <utility>

#include "service/stats_format.h"

namespace nowsched::rpc {

Client::Client(const std::string& socket_path)
    : fd_(util::unix_connect(socket_path)) {}

Frame Client::call(MsgType request, const std::string& payload, MsgType expected) {
  if (!fd_.valid()) {
    throw RpcError("rpc::Client: connection is closed");
  }
  const std::string bytes = encode_frame(wire_code(request), payload);
  util::write_all(fd_.get(), bytes.data(), bytes.size());

  Frame frame;
  for (;;) {
    const DecodeStatus status = decoder_.next(frame);
    if (status == DecodeStatus::kFrame) break;
    if (status == DecodeStatus::kError) {
      close();
      throw RpcError(decoder_.error());
    }
    char buf[64 * 1024];
    std::size_t n = 0;
    const util::IoStatus io = util::read_some(fd_.get(), buf, sizeof(buf), n);
    if (io == util::IoStatus::kEof) {
      close();
      throw RpcError("rpc::Client: server closed the connection mid-call");
    }
    // kAgain cannot happen: the fd is blocking.
    decoder_.append(std::string_view(buf, n));
  }

  if (frame.type == wire_code(MsgType::kError)) {
    // The connection is still usable — the server only Errors on payload
    // problems; framing problems close from its side.
    throw RpcError(decode_error(frame.payload).message);
  }
  if (frame.type != wire_code(expected)) {
    close();
    throw RpcError(std::string("rpc::Client: expected ") + to_string(expected) +
                   " reply, got type " + std::to_string(int(frame.type)));
  }
  return frame;
}

SubmitReply Client::submit_batch(const std::string& tenant,
                                 const std::vector<sim::ScenarioSpec>& specs) {
  SubmitBatchRequest req;
  req.tenant = tenant;
  req.specs = specs;
  const Frame reply = call(MsgType::kSubmitBatch, encode_submit_batch(req),
                           MsgType::kSubmitReply);
  return decode_submit_reply(reply.payload);
}

service::JobState Client::job_state(service::JobId id) {
  const Frame reply = call(MsgType::kJobStatus, encode_job_status({id}),
                           MsgType::kJobStatusReply);
  return decode_job_status_reply(reply.payload).state;
}

JobResultReply Client::fetch_result(service::JobId id, bool wait) {
  const Frame reply = call(MsgType::kJobResult, encode_job_result({id, wait}),
                           MsgType::kJobResultReply);
  return decode_job_result_reply(reply.payload);
}

bool Client::cancel(service::JobId id) {
  const Frame reply =
      call(MsgType::kCancelJob, encode_cancel({id}), MsgType::kCancelReply);
  return decode_cancel_reply(reply.payload).cancelled;
}

service::ServiceStats Client::stats() {
  return service::stats_from_string(stats_text());
}

std::string Client::stats_text() {
  Frame reply = call(MsgType::kStats, encode_stats_request(), MsgType::kStatsReply);
  return std::move(reply.payload);
}

void Client::shutdown_server(service::SchedulerService::StopMode mode) {
  const Frame reply =
      call(MsgType::kShutdown, encode_shutdown({mode}), MsgType::kShutdownReply);
  decode_shutdown_reply(reply.payload);
}

}  // namespace nowsched::rpc
