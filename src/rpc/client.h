// Blocking nowsched-rpc v1 client: one Unix-domain connection, one
// outstanding request at a time (send, then block until the matching reply
// frame arrives — the ordering contract the server's parked-fetch logic
// guarantees per connection).
//
// Every method throws RpcError when the daemon answers with an Error frame,
// the reply type is unexpected, or the connection drops mid-call;
// std::system_error surfaces transport-level failures. The remote surface
// mirrors the in-process JobTicket API one-for-one, which is what lets the
// conformance differential drive both through the same test body.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "rpc/frame.h"
#include "rpc/protocol.h"
#include "service/service_stats.h"
#include "util/socket.h"

namespace nowsched::rpc {

class RpcError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Client {
 public:
  /// Connects immediately; throws std::system_error when nothing listens.
  explicit Client(const std::string& socket_path);

  /// Remote SchedulerService::submit_job. The reply's job_id is the ticket
  /// (0 when the status is a rejection).
  SubmitReply submit_batch(const std::string& tenant,
                           const std::vector<sim::ScenarioSpec>& specs);

  /// Remote SchedulerService::job_state.
  service::JobState job_state(service::JobId id);

  /// Remote SchedulerService::fetch_result. wait=true parks server-side
  /// until the job is terminal; wait=false returns the current state
  /// immediately (result fields filled only when state == kDone).
  JobResultReply fetch_result(service::JobId id, bool wait = true);

  /// Remote SchedulerService::cancel.
  bool cancel(service::JobId id);

  /// Stats snapshot, parsed from the daemon's `nowsched-stats v1` payload.
  service::ServiceStats stats();
  /// The raw `nowsched-stats v1` text (for printing / differential tests).
  std::string stats_text();

  /// Asks the daemon to shut down (drain or cancel-queued) and waits for
  /// the acknowledgement.
  void shutdown_server(service::SchedulerService::StopMode mode);

  /// Closes the connection; further calls throw. Idempotent.
  void close() noexcept { fd_.reset(); }
  bool connected() const noexcept { return fd_.valid(); }

 private:
  Frame call(MsgType request, const std::string& payload, MsgType expected);

  util::Fd fd_;
  FrameDecoder decoder_;
};

}  // namespace nowsched::rpc
