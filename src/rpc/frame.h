// nowsched-rpc v1 framing: the byte layout every message travels in, plus
// an incremental decoder that tolerates arbitrary read fragmentation.
//
//   offset  size  field
//   ------  ----  -----------------------------------------------
//        0     4  magic "NWRP"
//        4     1  version (== 1)
//        5     1  message type (rpc::MsgType wire code)
//        6     2  reserved, must be 0 (strict: nonzero is an error)
//        8     4  payload length, unsigned little-endian
//       12     N  payload bytes (text, format depends on type)
//
// The decoder is a pure state machine over appended bytes: it never reads a
// socket itself, so tests can split input at every byte boundary. Malformed
// input (bad magic, unknown version, nonzero reserved, oversized length)
// moves it into a sticky error state — framing corruption is never
// resynchronizable, the connection must be dropped. That is the typed-error
// guarantee the adversity tests pin: garbage in, DecodeStatus::kError out,
// never a crash or hang.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace nowsched::rpc {

inline constexpr char kMagic[4] = {'N', 'W', 'R', 'P'};
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderSize = 12;
/// Hard payload cap: a length field beyond this is rejected before any
/// allocation, so a corrupt or hostile header cannot balloon memory.
inline constexpr std::uint32_t kMaxPayload = 16u * 1024u * 1024u;

struct Frame {
  std::uint8_t type = 0;
  std::string payload;
};

/// Encodes one frame. Throws std::length_error when payload > kMaxPayload.
std::string encode_frame(std::uint8_t type, std::string_view payload);

enum class DecodeStatus {
  kNeedMore,  ///< no complete frame buffered yet — feed more bytes
  kFrame,     ///< `out` holds the next frame
  kError,     ///< stream corrupt (see error()); decoder is poisoned
};

class FrameDecoder {
 public:
  /// Appends raw bytes from the transport. No-op once poisoned.
  void append(std::string_view bytes);

  /// Extracts the next complete frame into `out` if one is buffered.
  /// kNeedMore leaves `out` untouched. Call in a loop: one append may
  /// complete several frames.
  DecodeStatus next(Frame& out);

  /// Human-readable reason after kError; empty otherwise.
  const std::string& error() const noexcept { return error_; }

  /// Bytes buffered but not yet consumed as frames (diagnostics/tests).
  std::size_t buffered() const noexcept { return buf_.size() - consumed_; }

 private:
  std::string buf_;
  std::size_t consumed_ = 0;  ///< prefix of buf_ already handed out
  bool poisoned_ = false;
  std::string error_;
};

}  // namespace nowsched::rpc
