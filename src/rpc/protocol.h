// nowsched-rpc v1 message vocabulary: the frozen MsgType wire codes and the
// text codecs for every request/reply payload.
//
// Payloads are versioned text records in the same strict idiom as the
// `nowsched-scenario v1` replay format (util/parse.h whole-string numbers,
// unknown keys are hard errors, %.17g doubles). Three formats are reused
// verbatim rather than re-invented:
//   - SubmitBatch embeds unmodified `nowsched-scenario v1` records, so the
//     wire path is bit-identical to replay files;
//   - StatsReply carries `nowsched-stats v1` (service/stats_format.h);
//   - status/state fields carry the frozen numeric wire codes from
//     service::SubmitStatus / service::JobState.
// Every decode_* throws std::invalid_argument on malformed input; the
// server catches and answers with an Error frame instead of dropping the
// connection (framing is intact — only the payload was bad).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "service/scheduler_service.h"
#include "sim/batch_runner.h"
#include "sim/metrics.h"

namespace nowsched::rpc {

/// FROZEN WIRE CODES — these bytes appear in the frame header's type field
/// and must never be renumbered or reused. Requests are odd, their replies
/// even (except the standalone Error reply).
enum class MsgType : std::uint8_t {
  kSubmitBatch = 1,
  kSubmitReply = 2,
  kJobStatus = 3,
  kJobStatusReply = 4,
  kJobResult = 5,
  kJobResultReply = 6,
  kStats = 7,
  kStatsReply = 8,
  kCancelJob = 9,
  kCancelReply = 10,
  kShutdown = 11,
  kShutdownReply = 12,
  kError = 13,  ///< reply to any request whose payload failed to decode
};

const char* to_string(MsgType type);
std::optional<MsgType> msg_type_from_wire(std::uint8_t code) noexcept;
constexpr std::uint8_t wire_code(MsgType type) noexcept {
  return static_cast<std::uint8_t>(type);
}

// ---------------------------------------------------------------------------
// SubmitBatch (tenant + scenario batch) -> SubmitReply (status + ticket id)
// ---------------------------------------------------------------------------

struct SubmitBatchRequest {
  std::string tenant;
  std::vector<sim::ScenarioSpec> specs;
};

struct SubmitReply {
  service::SubmitStatus status = service::SubmitStatus::kAccepted;
  std::string reason;           ///< rejection diagnostic; empty when accepted
  service::JobId job_id = 0;    ///< the ticket; 0 when rejected
};

std::string encode_submit_batch(const SubmitBatchRequest& req);
SubmitBatchRequest decode_submit_batch(const std::string& payload);
std::string encode_submit_reply(const SubmitReply& reply);
SubmitReply decode_submit_reply(const std::string& payload);

// ---------------------------------------------------------------------------
// JobStatus (poll) -> JobStatusReply
// ---------------------------------------------------------------------------

struct JobStatusRequest {
  service::JobId job_id = 0;
};

struct JobStatusReply {
  service::JobState state = service::JobState::kUnknown;
};

std::string encode_job_status(const JobStatusRequest& req);
JobStatusRequest decode_job_status(const std::string& payload);
std::string encode_job_status_reply(const JobStatusReply& reply);
JobStatusReply decode_job_status_reply(const std::string& payload);

// ---------------------------------------------------------------------------
// JobResult (fetch, optionally parking until terminal) -> JobResultReply
// ---------------------------------------------------------------------------

struct JobResultRequest {
  service::JobId job_id = 0;
  /// When true the server parks the request and replies once the job is
  /// terminal; when false a pending job answers immediately with its state.
  bool wait = true;
};

/// The full service::JobResult flattened for the wire. Every numeric field
/// of every sim::SessionMetrics crosses as a decimal integer and latency as
/// %.17g, so a decoded reply is field-for-field bit-identical to the
/// in-process result — the property the rpc conformance differential pins.
struct JobResultReply {
  service::JobState state = service::JobState::kUnknown;
  std::string error;  ///< set when state is kFailed or kCancelled

  // Meaningful only when state == kDone.
  std::string tenant;
  service::JobId job_id = 0;
  std::uint64_t completion_index = 0;
  double latency_ms = 0.0;
  std::vector<sim::SessionMetrics> per_scenario;
  sim::SessionMetrics aggregate;
  solver::SolveCacheStats cache;
};

std::string encode_job_result(const JobResultRequest& req);
JobResultRequest decode_job_result(const std::string& payload);
std::string encode_job_result_reply(const JobResultReply& reply);
JobResultReply decode_job_result_reply(const std::string& payload);

// ---------------------------------------------------------------------------
// Stats -> StatsReply (payload is `nowsched-stats v1` text, reused verbatim)
// ---------------------------------------------------------------------------

std::string encode_stats_request();
void decode_stats_request(const std::string& payload);  ///< throws unless empty

// ---------------------------------------------------------------------------
// CancelJob -> CancelReply
// ---------------------------------------------------------------------------

struct CancelRequest {
  service::JobId job_id = 0;
};

struct CancelReply {
  bool cancelled = false;  ///< false: unknown id or job already past queued
};

std::string encode_cancel(const CancelRequest& req);
CancelRequest decode_cancel(const std::string& payload);
std::string encode_cancel_reply(const CancelReply& reply);
CancelReply decode_cancel_reply(const std::string& payload);

// ---------------------------------------------------------------------------
// Shutdown -> ShutdownReply
// ---------------------------------------------------------------------------

struct ShutdownRequest {
  service::SchedulerService::StopMode mode = service::SchedulerService::StopMode::kDrain;
};

std::string encode_shutdown(const ShutdownRequest& req);
ShutdownRequest decode_shutdown(const std::string& payload);
std::string encode_shutdown_reply();
void decode_shutdown_reply(const std::string& payload);

// ---------------------------------------------------------------------------
// Error (server -> client, any request whose payload failed to decode)
// ---------------------------------------------------------------------------

struct ErrorReply {
  std::string message;
};

std::string encode_error(const ErrorReply& reply);
ErrorReply decode_error(const std::string& payload);

}  // namespace nowsched::rpc
