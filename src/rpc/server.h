// nowsched-rpc v1 daemon event loop: a poll(2)-based multi-client server
// over a Unix-domain socket, translating frames into SchedulerService
// JobTicket calls.
//
// Design notes:
//   - One FrameDecoder + output buffer per connection; all fds nonblocking,
//     so one slow client never stalls the others.
//   - Requests on a connection are processed strictly in order. A JobResult
//     request with wait=1 whose job is still pending PARKS the connection:
//     its reply (and any requests buffered behind it) waits until the
//     service's completion hook reports progress. Replies therefore always
//     arrive in request order — the invariant the blocking rpc::Client
//     relies on.
//   - Every ticket a connection submits is owned by it; when the connection
//     drops, un-fetched tickets are forget()ed so the daemon never leaks
//     job records to vanished clients (queued ones are cancelled too).
//   - A payload that fails to decode gets a typed Error reply and the
//     connection lives on; a FRAMING error (bad magic/version/length) is
//     unrecoverable — the server sends a best-effort Error frame and closes.
//   - Half-close is honoured: a peer that shutdown(SHUT_WR)s after
//     pipelining requests still receives every reply (parked fetches
//     included) before the server closes the connection.
//   - serve() blocks until stop() or a Shutdown RPC; poll_once() exposes
//     single deterministic pump steps for tests (pair it with a manual-mode
//     service and run_next()).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "rpc/frame.h"
#include "rpc/protocol.h"
#include "service/scheduler_service.h"
#include "util/socket.h"

namespace nowsched::rpc {

struct ServerOptions {
  std::string socket_path;
  int backlog = 16;
};

class Server {
 public:
  /// Binds and listens immediately (throws std::system_error on failure)
  /// and installs itself as `service`'s completion hook. The service must
  /// outlive the server; the server does not own it.
  Server(service::SchedulerService& service, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Blocks serving clients until stop() or a Shutdown RPC. On Shutdown it
  /// flushes the reply, exits the loop, and calls service.shutdown(mode).
  void serve();

  /// One pump step: polls with `timeout_ms` (0 = nonblocking probe, -1 =
  /// wait indefinitely) and handles whatever is ready. Returns true when
  /// any progress happened (connection accepted/closed, bytes moved, frame
  /// handled, parked reply released). Deterministic test mode — do not mix
  /// with a concurrent serve().
  bool poll_once(int timeout_ms);

  /// Thread-safe: wakes the loop and makes serve()/poll_once stop serving.
  void stop();

  /// True once a Shutdown RPC was accepted; mode() says which kind. In
  /// manual pumping the caller applies service.shutdown(mode()) itself.
  bool shutdown_requested() const noexcept { return shutdown_requested_; }
  service::SchedulerService::StopMode shutdown_mode() const noexcept { return shutdown_mode_; }

  const std::string& socket_path() const noexcept { return options_.socket_path; }
  std::size_t connection_count() const noexcept { return conns_.size(); }

 private:
  struct Connection {
    util::Fd fd;
    FrameDecoder decoder;
    std::string outbuf;
    std::size_t out_pos = 0;
    std::set<service::JobId> owned;            ///< tickets to forget on drop
    std::optional<service::JobId> parked;      ///< pending wait=1 fetch
    bool closing = false;                      ///< close once outbuf drains
    bool read_closed = false;                  ///< peer half-closed; still flush replies
    bool announced_shutdown = false;           ///< carries the Shutdown reply
  };

  /// Keeps the wake-pipe write end alive inside the completion-hook lambda
  /// even while the Server is being torn down (a worker thread may hold a
  /// copy of the hook past set_completion_hook(nullptr)).
  struct WakeHandle {
    util::Fd write_end;
    void ring() noexcept;
  };

  void accept_pending();
  bool read_from(Connection& conn);
  void process_frames(Connection& conn);
  void handle_frame(Connection& conn, const Frame& frame);
  bool check_parked(Connection& conn);
  bool flush(Connection& conn);
  void send(Connection& conn, MsgType type, const std::string& payload);

  service::SchedulerService& service_;
  ServerOptions options_;
  util::Fd listener_;
  util::Fd wake_read_;
  std::shared_ptr<WakeHandle> wake_;
  std::atomic<bool> running_{false};
  bool shutdown_requested_ = false;
  service::SchedulerService::StopMode shutdown_mode_ = service::SchedulerService::StopMode::kDrain;
  std::vector<std::unique_ptr<Connection>> conns_;
};

}  // namespace nowsched::rpc
