#include "rpc/frame.h"

#include <cstring>
#include <stdexcept>

namespace nowsched::rpc {

namespace {

void put_u32le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t get_u32le(const char* p) {
  const auto b = [p](int i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]));
  };
  return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

}  // namespace

std::string encode_frame(std::uint8_t type, std::string_view payload) {
  if (payload.size() > kMaxPayload) {
    throw std::length_error("nowsched-rpc: payload of " +
                            std::to_string(payload.size()) +
                            " bytes exceeds the " + std::to_string(kMaxPayload) +
                            "-byte frame cap");
  }
  std::string out;
  out.reserve(kHeaderSize + payload.size());
  out.append(kMagic, sizeof(kMagic));
  out.push_back(static_cast<char>(kProtocolVersion));
  out.push_back(static_cast<char>(type));
  out.push_back('\0');  // reserved
  out.push_back('\0');
  put_u32le(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

void FrameDecoder::append(std::string_view bytes) {
  if (poisoned_) return;
  // Compact lazily: only when the consumed prefix dominates the buffer, so
  // steady-state appends stay amortized O(1).
  if (consumed_ > 0 && consumed_ >= buf_.size() / 2) {
    buf_.erase(0, consumed_);
    consumed_ = 0;
  }
  buf_.append(bytes);
}

DecodeStatus FrameDecoder::next(Frame& out) {
  if (poisoned_) return DecodeStatus::kError;
  const std::size_t avail = buf_.size() - consumed_;
  if (avail < kHeaderSize) return DecodeStatus::kNeedMore;
  const char* header = buf_.data() + consumed_;

  // Validate eagerly — a bad header is reportable as soon as 12 bytes are
  // in, even if the (bogus) payload length never arrives.
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    poisoned_ = true;
    error_ = "nowsched-rpc: bad magic (not a nowsched-rpc stream)";
    return DecodeStatus::kError;
  }
  const auto version = static_cast<std::uint8_t>(header[4]);
  if (version != kProtocolVersion) {
    poisoned_ = true;
    error_ = "nowsched-rpc: unsupported protocol version " +
             std::to_string(static_cast<int>(version)) + " (expected " +
             std::to_string(static_cast<int>(kProtocolVersion)) + ")";
    return DecodeStatus::kError;
  }
  if (header[6] != 0 || header[7] != 0) {
    poisoned_ = true;
    error_ = "nowsched-rpc: nonzero reserved bytes in frame header";
    return DecodeStatus::kError;
  }
  const std::uint32_t payload_len = get_u32le(header + 8);
  if (payload_len > kMaxPayload) {
    poisoned_ = true;
    error_ = "nowsched-rpc: declared payload of " + std::to_string(payload_len) +
             " bytes exceeds the " + std::to_string(kMaxPayload) +
             "-byte frame cap";
    return DecodeStatus::kError;
  }

  if (avail < kHeaderSize + payload_len) return DecodeStatus::kNeedMore;
  out.type = static_cast<std::uint8_t>(header[5]);
  out.payload.assign(header + kHeaderSize, payload_len);
  consumed_ += kHeaderSize + payload_len;
  if (consumed_ == buf_.size()) {
    buf_.clear();
    consumed_ = 0;
  }
  return DecodeStatus::kFrame;
}

}  // namespace nowsched::rpc
