#include "rpc/protocol.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "sim/scenario_gen.h"
#include "util/parse.h"

namespace nowsched::rpc {

namespace {

std::string format_double(double x) {
  // max_digits10 == 17 round-trips IEEE doubles exactly through text.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", x);
  return buf;
}

[[noreturn]] void bad(const std::string& what) {
  throw std::invalid_argument("nowsched-rpc payload: " + what);
}

/// Free-text fields (reason/error/message) occupy the rest of one line; a
/// newline smuggled in via an exception message would corrupt the record,
/// so encoders flatten them.
std::string one_line(std::string text) {
  for (char& c : text) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return text;
}

std::uint64_t parse_u64(const std::string& value, const std::string& line) {
  const auto x = util::parse_uint64(value);
  if (!x) bad("malformed integer in '" + line + "'");
  return *x;
}

std::int64_t parse_i64(const std::string& value, const std::string& line) {
  const auto x = util::parse_int64(value);
  if (!x) bad("malformed integer in '" + line + "'");
  return *x;
}

double parse_dbl(const std::string& value, const std::string& line) {
  const auto x = util::parse_double(value);
  if (!x) bad("malformed number in '" + line + "'");
  return *x;
}

/// Sequential strict reader over a payload's lines: every expect_* names
/// exactly the next line, so any deviation (missing key, reordered field,
/// trailing junk) is a typed error with the offending line in the message.
class LineReader {
 public:
  explicit LineReader(const std::string& text) : is_(text) {}

  void expect_header(const char* header) {
    std::string line;
    if (!std::getline(is_, line) || line != header) {
      bad(std::string("missing '") + header + "' header");
    }
  }

  /// Next line must be `key=<value>`; returns the value (may be empty, may
  /// contain anything but a newline).
  std::string expect_value(const char* key) {
    std::string line;
    if (!std::getline(is_, line)) {
      bad(std::string("truncated record (expected '") + key + "=')");
    }
    const std::string prefix = std::string(key) + "=";
    if (line.compare(0, prefix.size(), prefix) != 0) {
      bad(std::string("expected '") + key + "=', got '" + line + "'");
    }
    return line.substr(prefix.size());
  }

  std::uint64_t expect_u64(const char* key) {
    const std::string value = expect_value(key);
    return parse_u64(value, std::string(key) + "=" + value);
  }

  double expect_double(const char* key) {
    const std::string value = expect_value(key);
    return parse_dbl(value, std::string(key) + "=" + value);
  }

  void expect_blank() {
    std::string line;
    if (!std::getline(is_, line) || !line.empty()) {
      bad("expected blank separator line, got '" + line + "'");
    }
  }

  /// Lines up to (not including) the next blank line or EOF, newline-joined
  /// with a trailing newline — the shape scenario_from_replay expects.
  std::string block() {
    std::string out;
    std::string line;
    while (std::getline(is_, line)) {
      if (line.empty()) break;
      out += line;
      out += '\n';
    }
    return out;
  }

  void expect_eof() {
    std::string line;
    if (std::getline(is_, line)) bad("trailing data after record: '" + line + "'");
  }

  bool peek_line(std::string& line) { return static_cast<bool>(std::getline(is_, line)); }

 private:
  std::istringstream is_;
};

service::SubmitStatus status_from_value(const std::string& value,
                                        const std::string& line) {
  const auto code = parse_i64(value, line);
  const auto status =
      service::submit_status_from_wire(static_cast<int>(code));
  if (!status) bad("unknown submit-status wire code in '" + line + "'");
  return *status;
}

service::JobState state_from_value(const std::string& value, const std::string& line) {
  const auto code = parse_i64(value, line);
  const auto state = service::job_state_from_wire(static_cast<int>(code));
  if (!state) bad("unknown job-state wire code in '" + line + "'");
  return *state;
}

// SessionMetrics crosses as 12 space-separated decimal integers in
// declaration order — all-integer, so bit-exactness is trivial.
std::string metrics_to_line(const sim::SessionMetrics& m) {
  std::ostringstream os;
  os << m.banked_work << ' ' << m.task_work << ' ' << m.comm_overhead << ' '
     << m.lost_work << ' ' << m.salvaged_work << ' ' << m.fragmentation << ' '
     << m.lifespan_used << ' ' << m.interrupts << ' ' << m.episodes << ' '
     << m.periods_completed << ' ' << m.periods_killed << ' '
     << m.tasks_completed;
  return os.str();
}

sim::SessionMetrics metrics_from_line(const std::string& value,
                                      const std::string& line) {
  std::istringstream is(value);
  std::string field;
  std::int64_t v[12];
  for (int i = 0; i < 12; ++i) {
    if (!(is >> field)) bad("metrics line has fewer than 12 fields: '" + line + "'");
    v[i] = parse_i64(field, line);
  }
  if (is >> field) bad("metrics line has more than 12 fields: '" + line + "'");
  sim::SessionMetrics m;
  m.banked_work = v[0];
  m.task_work = v[1];
  m.comm_overhead = v[2];
  m.lost_work = v[3];
  m.salvaged_work = v[4];
  m.fragmentation = v[5];
  m.lifespan_used = v[6];
  m.interrupts = static_cast<int>(v[7]);
  m.episodes = static_cast<std::size_t>(v[8]);
  m.periods_completed = static_cast<std::size_t>(v[9]);
  m.periods_killed = static_cast<std::size_t>(v[10]);
  m.tasks_completed = static_cast<std::size_t>(v[11]);
  return m;
}

void write_cache_stats(std::ostringstream& os, const solver::SolveCacheStats& c) {
  os << "cache_hits=" << c.hits << "\n";
  os << "cache_misses=" << c.misses << "\n";
  os << "cache_store_hits=" << c.store_hits << "\n";
  os << "cache_spills=" << c.spills << "\n";
  os << "cache_evictions=" << c.evictions << "\n";
  os << "cache_entries=" << c.entries << "\n";
  os << "cache_resident_bytes=" << c.resident_bytes << "\n";
}

solver::SolveCacheStats read_cache_stats(LineReader& r) {
  solver::SolveCacheStats c;
  c.hits = r.expect_u64("cache_hits");
  c.misses = r.expect_u64("cache_misses");
  c.store_hits = r.expect_u64("cache_store_hits");
  c.spills = r.expect_u64("cache_spills");
  c.evictions = r.expect_u64("cache_evictions");
  c.entries = static_cast<std::size_t>(r.expect_u64("cache_entries"));
  c.resident_bytes = static_cast<std::size_t>(r.expect_u64("cache_resident_bytes"));
  return c;
}

}  // namespace

const char* to_string(MsgType type) {
  switch (type) {
    case MsgType::kSubmitBatch: return "submit-batch";
    case MsgType::kSubmitReply: return "submit-reply";
    case MsgType::kJobStatus: return "job-status";
    case MsgType::kJobStatusReply: return "job-status-reply";
    case MsgType::kJobResult: return "job-result";
    case MsgType::kJobResultReply: return "job-result-reply";
    case MsgType::kStats: return "stats";
    case MsgType::kStatsReply: return "stats-reply";
    case MsgType::kCancelJob: return "cancel-job";
    case MsgType::kCancelReply: return "cancel-reply";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kShutdownReply: return "shutdown-reply";
    case MsgType::kError: return "error";
  }
  return "?";
}

std::optional<MsgType> msg_type_from_wire(std::uint8_t code) noexcept {
  if (code >= 1 && code <= 13) return static_cast<MsgType>(code);
  return std::nullopt;
}

// --------------------------------------------------------------------------
// SubmitBatch
// --------------------------------------------------------------------------

std::string encode_submit_batch(const SubmitBatchRequest& req) {
  // The tenant id is a line-oriented field but, unlike reason/error/message,
  // it is an identifier (quota bucket key), so flattening would silently
  // change which tenant gets billed — reject instead.
  if (req.tenant.find('\n') != std::string::npos ||
      req.tenant.find('\r') != std::string::npos) {
    bad("tenant id must not contain newline characters");
  }
  std::ostringstream os;
  os << "nowsched-submit v1\n";
  os << "tenant=" << req.tenant << "\n";
  os << "scenarios=" << req.specs.size() << "\n";
  for (const sim::ScenarioSpec& spec : req.specs) {
    os << "\n" << sim::to_replay_string(spec);
  }
  return os.str();
}

SubmitBatchRequest decode_submit_batch(const std::string& payload) {
  LineReader r(payload);
  r.expect_header("nowsched-submit v1");
  SubmitBatchRequest req;
  req.tenant = r.expect_value("tenant");
  if (req.tenant.empty()) bad("empty tenant id");
  if (req.tenant.find('\r') != std::string::npos) {
    bad("tenant id must not contain newline characters");
  }
  const std::uint64_t count = r.expect_u64("scenarios");
  // Bound the count before reserving: a valid scenario record is >130 bytes
  // of key=value lines, so any count beyond payload/64 is structurally bogus
  // and would otherwise drive reserve() into std::length_error/bad_alloc —
  // neither is the typed error the server's catch handles (remote DoS).
  if (count > payload.size() / 64) {
    bad("scenario count " + std::to_string(count) +
        " is impossible for a " + std::to_string(payload.size()) +
        "-byte payload");
  }
  req.specs.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    // block() consumes the blank line that terminates it, so only the first
    // record is still preceded by an unconsumed separator.
    if (i == 0) r.expect_blank();
    const std::string record = r.block();
    if (record.empty()) bad("missing scenario record " + std::to_string(i));
    req.specs.push_back(sim::scenario_from_replay(record));
  }
  r.expect_eof();
  return req;
}

std::string encode_submit_reply(const SubmitReply& reply) {
  std::ostringstream os;
  os << "nowsched-submit-reply v1\n";
  os << "status=" << service::wire_code(reply.status) << "\n";
  os << "reason=" << one_line(reply.reason) << "\n";
  os << "job_id=" << reply.job_id << "\n";
  return os.str();
}

SubmitReply decode_submit_reply(const std::string& payload) {
  LineReader r(payload);
  r.expect_header("nowsched-submit-reply v1");
  SubmitReply reply;
  const std::string status = r.expect_value("status");
  reply.status = status_from_value(status, "status=" + status);
  reply.reason = r.expect_value("reason");
  reply.job_id = r.expect_u64("job_id");
  r.expect_eof();
  return reply;
}

// --------------------------------------------------------------------------
// JobStatus
// --------------------------------------------------------------------------

std::string encode_job_status(const JobStatusRequest& req) {
  std::ostringstream os;
  os << "nowsched-job-status v1\n";
  os << "job_id=" << req.job_id << "\n";
  return os.str();
}

JobStatusRequest decode_job_status(const std::string& payload) {
  LineReader r(payload);
  r.expect_header("nowsched-job-status v1");
  JobStatusRequest req;
  req.job_id = r.expect_u64("job_id");
  r.expect_eof();
  return req;
}

std::string encode_job_status_reply(const JobStatusReply& reply) {
  std::ostringstream os;
  os << "nowsched-job-status-reply v1\n";
  os << "state=" << service::wire_code(reply.state) << "\n";
  return os.str();
}

JobStatusReply decode_job_status_reply(const std::string& payload) {
  LineReader r(payload);
  r.expect_header("nowsched-job-status-reply v1");
  JobStatusReply reply;
  const std::string state = r.expect_value("state");
  reply.state = state_from_value(state, "state=" + state);
  r.expect_eof();
  return reply;
}

// --------------------------------------------------------------------------
// JobResult
// --------------------------------------------------------------------------

std::string encode_job_result(const JobResultRequest& req) {
  std::ostringstream os;
  os << "nowsched-job-result v1\n";
  os << "job_id=" << req.job_id << "\n";
  os << "wait=" << (req.wait ? 1 : 0) << "\n";
  return os.str();
}

JobResultRequest decode_job_result(const std::string& payload) {
  LineReader r(payload);
  r.expect_header("nowsched-job-result v1");
  JobResultRequest req;
  req.job_id = r.expect_u64("job_id");
  const std::uint64_t wait = r.expect_u64("wait");
  if (wait > 1) bad("wait must be 0 or 1, got " + std::to_string(wait));
  req.wait = wait == 1;
  r.expect_eof();
  return req;
}

std::string encode_job_result_reply(const JobResultReply& reply) {
  std::ostringstream os;
  os << "nowsched-job-result-reply v1\n";
  os << "state=" << service::wire_code(reply.state) << "\n";
  switch (reply.state) {
    case service::JobState::kFailed:
    case service::JobState::kCancelled:
      os << "error=" << one_line(reply.error) << "\n";
      return os.str();
    case service::JobState::kDone:
      break;
    default:
      return os.str();  // pending / unknown: the state line says it all
  }
  os << "tenant=" << reply.tenant << "\n";
  os << "job_id=" << reply.job_id << "\n";
  os << "completion_index=" << reply.completion_index << "\n";
  os << "latency_ms=" << format_double(reply.latency_ms) << "\n";
  write_cache_stats(os, reply.cache);
  os << "scenarios=" << reply.per_scenario.size() << "\n";
  for (const sim::SessionMetrics& m : reply.per_scenario) {
    os << "metrics=" << metrics_to_line(m) << "\n";
  }
  os << "aggregate=" << metrics_to_line(reply.aggregate) << "\n";
  return os.str();
}

JobResultReply decode_job_result_reply(const std::string& payload) {
  LineReader r(payload);
  r.expect_header("nowsched-job-result-reply v1");
  JobResultReply reply;
  const std::string state = r.expect_value("state");
  reply.state = state_from_value(state, "state=" + state);
  switch (reply.state) {
    case service::JobState::kFailed:
    case service::JobState::kCancelled:
      reply.error = r.expect_value("error");
      r.expect_eof();
      return reply;
    case service::JobState::kDone:
      break;
    default:
      r.expect_eof();
      return reply;
  }
  reply.tenant = r.expect_value("tenant");
  reply.job_id = r.expect_u64("job_id");
  reply.completion_index = r.expect_u64("completion_index");
  reply.latency_ms = r.expect_double("latency_ms");
  reply.cache = read_cache_stats(r);
  const std::uint64_t count = r.expect_u64("scenarios");
  // Same bound discipline as decode_submit_batch: each metrics line is at
  // least 32 bytes ("metrics=" + 12 integers + 11 separators + newline), so
  // a larger count cannot be genuine and must not reach reserve().
  if (count > payload.size() / 32) {
    bad("metrics count " + std::to_string(count) +
        " is impossible for a " + std::to_string(payload.size()) +
        "-byte payload");
  }
  reply.per_scenario.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string value = r.expect_value("metrics");
    reply.per_scenario.push_back(metrics_from_line(value, "metrics=" + value));
  }
  const std::string aggregate = r.expect_value("aggregate");
  reply.aggregate = metrics_from_line(aggregate, "aggregate=" + aggregate);
  r.expect_eof();
  return reply;
}

// --------------------------------------------------------------------------
// Stats
// --------------------------------------------------------------------------

std::string encode_stats_request() { return std::string(); }

void decode_stats_request(const std::string& payload) {
  if (!payload.empty()) bad("stats request carries no payload");
}

// --------------------------------------------------------------------------
// CancelJob
// --------------------------------------------------------------------------

std::string encode_cancel(const CancelRequest& req) {
  std::ostringstream os;
  os << "nowsched-cancel v1\n";
  os << "job_id=" << req.job_id << "\n";
  return os.str();
}

CancelRequest decode_cancel(const std::string& payload) {
  LineReader r(payload);
  r.expect_header("nowsched-cancel v1");
  CancelRequest req;
  req.job_id = r.expect_u64("job_id");
  r.expect_eof();
  return req;
}

std::string encode_cancel_reply(const CancelReply& reply) {
  std::ostringstream os;
  os << "nowsched-cancel-reply v1\n";
  os << "cancelled=" << (reply.cancelled ? 1 : 0) << "\n";
  return os.str();
}

CancelReply decode_cancel_reply(const std::string& payload) {
  LineReader r(payload);
  r.expect_header("nowsched-cancel-reply v1");
  CancelReply reply;
  const std::uint64_t cancelled = r.expect_u64("cancelled");
  if (cancelled > 1) bad("cancelled must be 0 or 1, got " + std::to_string(cancelled));
  reply.cancelled = cancelled == 1;
  r.expect_eof();
  return reply;
}

// --------------------------------------------------------------------------
// Shutdown
// --------------------------------------------------------------------------

std::string encode_shutdown(const ShutdownRequest& req) {
  std::ostringstream os;
  os << "nowsched-shutdown v1\n";
  os << "mode="
     << (req.mode == service::SchedulerService::StopMode::kDrain ? "drain" : "cancel") << "\n";
  return os.str();
}

ShutdownRequest decode_shutdown(const std::string& payload) {
  LineReader r(payload);
  r.expect_header("nowsched-shutdown v1");
  ShutdownRequest req;
  const std::string mode = r.expect_value("mode");
  if (mode == "drain") {
    req.mode = service::SchedulerService::StopMode::kDrain;
  } else if (mode == "cancel") {
    req.mode = service::SchedulerService::StopMode::kCancelQueued;
  } else {
    bad("unknown shutdown mode '" + mode + "' (expected drain|cancel)");
  }
  r.expect_eof();
  return req;
}

std::string encode_shutdown_reply() { return "nowsched-shutdown-reply v1\n"; }

void decode_shutdown_reply(const std::string& payload) {
  LineReader r(payload);
  r.expect_header("nowsched-shutdown-reply v1");
  r.expect_eof();
}

// --------------------------------------------------------------------------
// Error
// --------------------------------------------------------------------------

std::string encode_error(const ErrorReply& reply) {
  std::ostringstream os;
  os << "nowsched-error v1\n";
  os << "message=" << one_line(reply.message) << "\n";
  return os.str();
}

ErrorReply decode_error(const std::string& payload) {
  LineReader r(payload);
  r.expect_header("nowsched-error v1");
  ErrorReply reply;
  reply.message = r.expect_value("message");
  r.expect_eof();
  return reply;
}

}  // namespace nowsched::rpc
