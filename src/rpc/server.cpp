#include "rpc/server.h"

#include <cerrno>
#include <stdexcept>
#include <utility>

#include <poll.h>
#include <unistd.h>

#include "service/stats_format.h"

namespace nowsched::rpc {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;

JobResultReply make_result_reply(service::JobId id, service::FetchOutcome&& out) {
  JobResultReply reply;
  reply.state = out.state;
  reply.error = std::move(out.error);
  reply.job_id = id;
  if (out.state == service::JobState::kDone) {
    reply.tenant = std::move(out.result.tenant);
    reply.job_id = out.result.job_id;
    reply.completion_index = out.result.completion_index;
    reply.latency_ms = out.result.latency_ms;
    reply.per_scenario = std::move(out.result.batch.per_scenario);
    reply.aggregate = out.result.batch.aggregate;
    reply.cache = out.result.batch.cache;
  }
  return reply;
}

}  // namespace

void Server::WakeHandle::ring() noexcept {
  if (!write_end.valid()) return;
  const char byte = 1;
  // Best effort: EAGAIN means a wake byte is already pending, which is all
  // a level-triggered poll loop needs; other errors mean the loop is gone.
  [[maybe_unused]] const ssize_t rc = ::write(write_end.get(), &byte, 1);
}

Server::Server(service::SchedulerService& service, ServerOptions options)
    : service_(service), options_(std::move(options)) {
  if (options_.socket_path.empty()) {
    throw std::invalid_argument("rpc::Server: empty socket path");
  }
  listener_ = util::unix_listen(options_.socket_path, options_.backlog);
  util::set_nonblocking(listener_.get(), true);

  auto [read_end, write_end] = util::make_wake_pipe();
  wake_read_ = std::move(read_end);
  wake_ = std::make_shared<WakeHandle>();
  wake_->write_end = std::move(write_end);
  // The hook holds the WakeHandle by shared_ptr: a worker thread that
  // copied the hook just before ~Server still writes into a live fd.
  std::shared_ptr<WakeHandle> wake = wake_;
  service_.set_completion_hook([wake](service::JobId) { wake->ring(); });
}

Server::~Server() {
  service_.set_completion_hook(nullptr);
  conns_.clear();
  listener_.reset();
  ::unlink(options_.socket_path.c_str());
}

void Server::stop() {
  running_.store(false);
  if (wake_) wake_->ring();
}

void Server::serve() {
  running_.store(true);
  while (running_.load()) {
    poll_once(-1);
  }
  if (shutdown_requested_) service_.shutdown(shutdown_mode_);
}

bool Server::poll_once(int timeout_ms) {
  bool progress = false;

  // Parked fetches first: in manual pumping the completion may have landed
  // between calls with no wake byte racing ahead of us, and rechecking is
  // one nonblocking fetch_result per parked connection.
  for (auto& conn : conns_) {
    if (check_parked(*conn)) progress = true;
  }

  // Snapshot the count: accept_pending below may grow conns_, and those
  // fresh connections have no pollfd this pass — they are polled next time.
  const std::size_t polled = conns_.size();
  std::vector<pollfd> fds;
  fds.reserve(polled + 2);
  fds.push_back({listener_.get(), POLLIN, 0});
  fds.push_back({wake_read_.get(), POLLIN, 0});
  for (std::size_t i = 0; i < polled; ++i) {
    Connection& conn = *conns_[i];
    short events = 0;
    if (!conn.read_closed) events |= POLLIN;
    if (conn.out_pos < conn.outbuf.size()) events |= POLLOUT;
    fds.push_back({conn.fd.get(), events, 0});
  }

  // A wake may already be pending (completion hook); progress made above
  // also means we should not block forever waiting for new bytes.
  const int wait_ms = progress ? 0 : timeout_ms;
  const int ready = ::poll(fds.data(), fds.size(), wait_ms);
  if (ready < 0) {
    if (errno == EINTR) return progress;
    throw std::system_error(errno, std::generic_category(), "poll");
  }

  if (fds[1].revents & POLLIN) {
    char buf[256];
    std::size_t n = 0;
    while (util::read_some(wake_read_.get(), buf, sizeof(buf), n) ==
           util::IoStatus::kOk) {
    }
    progress = true;
    for (auto& conn : conns_) {
      if (check_parked(*conn)) progress = true;
    }
  }

  if (fds[0].revents & POLLIN) {
    accept_pending();
    progress = true;
  }

  for (std::size_t i = 0; i < polled; ++i) {
    Connection& conn = *conns_[i];
    const pollfd& pfd = fds[i + 2];
    if (!conn.read_closed && (pfd.revents & (POLLIN | POLLHUP | POLLERR))) {
      if (read_from(conn)) progress = true;
    }
    if (!conn.closing || conn.out_pos < conn.outbuf.size()) {
      if (flush(conn)) progress = true;
    }
  }

  // Reap: a connection is dead when reading hit an error (fd already reset)
  // or when it finished flushing its goodbye. A half-closed peer (read side
  // EOF) still gets replies to everything it pipelined — including a parked
  // fetch — before the connection goes.
  for (std::size_t i = 0; i < conns_.size();) {
    Connection& conn = *conns_[i];
    const bool flushed = conn.out_pos >= conn.outbuf.size();
    const bool done = conn.closing || (conn.read_closed && !conn.parked);
    if (!conn.fd.valid() || (done && flushed)) {
      if (conn.announced_shutdown) running_.store(false);
      for (const service::JobId id : conn.owned) service_.forget(id);
      conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
      progress = true;
      continue;
    }
    ++i;
  }

  // The Shutdown reply left the building (or its connection died): stop.
  if (shutdown_requested_) {
    bool still_flushing = false;
    for (auto& conn : conns_) {
      if (conn->announced_shutdown && conn->out_pos < conn->outbuf.size()) {
        still_flushing = true;
      }
    }
    if (!still_flushing) running_.store(false);
  }

  return progress;
}

void Server::accept_pending() {
  for (;;) {
    util::Fd fd = util::accept_connection(listener_.get());
    if (!fd.valid()) return;
    util::set_nonblocking(fd.get(), true);
    auto conn = std::make_unique<Connection>();
    conn->fd = std::move(fd);
    conns_.push_back(std::move(conn));
  }
}

bool Server::read_from(Connection& conn) {
  bool progress = false;
  char buf[kReadChunk];
  for (;;) {
    std::size_t n = 0;
    util::IoStatus status;
    try {
      status = util::read_some(conn.fd.get(), buf, sizeof(buf), n);
    } catch (const std::system_error&) {
      // ECONNRESET and friends: the fd is dead both ways. Replies can no
      // longer flush, but frames already buffered still carry side effects
      // (a pipelined Shutdown must not be lost), so fall through to
      // process_frames before the reap pass drops the connection.
      conn.fd.reset();
      progress = true;
      break;
    }
    if (status == util::IoStatus::kOk) {
      conn.decoder.append(std::string_view(buf, n));
      progress = true;
      continue;
    }
    if (status == util::IoStatus::kEof) {
      // Half-close: the peer is done sending but may still be reading
      // (shutdown(SHUT_WR)). Process everything it pipelined and keep the
      // write side open; the reap pass closes once the outbuf drains.
      conn.read_closed = true;
      progress = true;
      break;
    }
    break;  // kAgain — drained the socket
  }
  if (progress) process_frames(conn);
  return progress;
}

void Server::process_frames(Connection& conn) {
  // In-order guarantee: while a fetch is parked, later frames stay encoded
  // in the decoder buffer untouched.
  while (!conn.parked && !conn.closing) {
    Frame frame;
    const DecodeStatus status = conn.decoder.next(frame);
    if (status == DecodeStatus::kNeedMore) return;
    if (status == DecodeStatus::kError) {
      // Framing is unrecoverable: best-effort typed goodbye, then close.
      send(conn, MsgType::kError, encode_error({conn.decoder.error()}));
      conn.closing = true;
      return;
    }
    handle_frame(conn, frame);
  }
}

void Server::handle_frame(Connection& conn, const Frame& frame) {
  const std::optional<MsgType> type = msg_type_from_wire(frame.type);
  try {
    if (!type) {
      throw std::invalid_argument("nowsched-rpc: unknown message type " +
                                  std::to_string(static_cast<int>(frame.type)));
    }
    switch (*type) {
      case MsgType::kSubmitBatch: {
        SubmitBatchRequest req = decode_submit_batch(frame.payload);
        const service::TicketSubmission sub =
            service_.submit_job(req.tenant, std::move(req.specs));
        SubmitReply reply;
        reply.status = sub.status;
        reply.reason = sub.reason;
        reply.job_id = sub.ticket.id;
        if (sub.accepted()) conn.owned.insert(sub.ticket.id);
        send(conn, MsgType::kSubmitReply, encode_submit_reply(reply));
        return;
      }
      case MsgType::kJobStatus: {
        const JobStatusRequest req = decode_job_status(frame.payload);
        send(conn, MsgType::kJobStatusReply,
             encode_job_status_reply({service_.job_state(req.job_id)}));
        return;
      }
      case MsgType::kJobResult: {
        const JobResultRequest req = decode_job_result(frame.payload);
        service::FetchOutcome out =
            service_.fetch_result(req.job_id, /*wait=*/false);
        const bool pending = out.state == service::JobState::kQueued ||
                             out.state == service::JobState::kRunning;
        if (pending && req.wait) {
          conn.parked = req.job_id;  // reply when the completion hook fires
          return;
        }
        if (!pending) conn.owned.erase(req.job_id);
        send(conn, MsgType::kJobResultReply,
             encode_job_result_reply(
                 make_result_reply(req.job_id, std::move(out))));
        return;
      }
      case MsgType::kStats: {
        decode_stats_request(frame.payload);
        send(conn, MsgType::kStatsReply,
             service::to_stats_string(service_.stats()));
        return;
      }
      case MsgType::kCancelJob: {
        const CancelRequest req = decode_cancel(frame.payload);
        send(conn, MsgType::kCancelReply,
             encode_cancel_reply({service_.cancel(req.job_id)}));
        return;
      }
      case MsgType::kShutdown: {
        const ShutdownRequest req = decode_shutdown(frame.payload);
        shutdown_requested_ = true;
        shutdown_mode_ = req.mode;
        conn.announced_shutdown = true;
        send(conn, MsgType::kShutdownReply, encode_shutdown_reply());
        return;
      }
      default:
        throw std::invalid_argument(
            std::string("nowsched-rpc: '") + to_string(*type) +
            "' is a reply type, not a request");
    }
  } catch (const std::invalid_argument& e) {
    // Payload-level problem: the stream is still framed correctly, so the
    // connection survives with a typed error reply.
    send(conn, MsgType::kError, encode_error({e.what()}));
  }
}

bool Server::check_parked(Connection& conn) {
  if (!conn.parked) return false;
  const service::JobId id = *conn.parked;
  service::FetchOutcome out = service_.fetch_result(id, /*wait=*/false);
  if (out.state == service::JobState::kQueued ||
      out.state == service::JobState::kRunning) {
    return false;
  }
  conn.parked.reset();
  conn.owned.erase(id);
  send(conn, MsgType::kJobResultReply,
       encode_job_result_reply(make_result_reply(id, std::move(out))));
  process_frames(conn);  // drain requests queued behind the parked fetch
  return true;
}

void Server::send(Connection& conn, MsgType type, const std::string& payload) {
  conn.outbuf.append(encode_frame(wire_code(type), payload));
  flush(conn);
}

bool Server::flush(Connection& conn) {
  if (!conn.fd.valid()) return false;
  if (conn.out_pos >= conn.outbuf.size()) return false;
  std::size_t n = 0;
  try {
    util::write_some(conn.fd.get(), conn.outbuf.data() + conn.out_pos,
                     conn.outbuf.size() - conn.out_pos, n);
  } catch (const std::system_error&) {
    conn.fd.reset();  // peer vanished mid-reply
    return true;
  }
  conn.out_pos += n;
  if (conn.out_pos >= conn.outbuf.size()) {
    conn.outbuf.clear();
    conn.out_pos = 0;
  }
  return n > 0;
}

}  // namespace nowsched::rpc
