#include "sim/batch_runner.h"

#include <memory>
#include <stdexcept>

#include "adversary/processes.h"
#include "adversary/stochastic.h"
#include "core/equalized.h"
#include "core/guidelines.h"
#include "sim/session.h"
#include "solver/extract.h"
#include "util/hash.h"

namespace nowsched::sim {

namespace {

void validate_spec(const ScenarioSpec& spec, std::size_t index) {
  try {
    require_valid(spec.params);
    require_valid(Opportunity{spec.lifespan, spec.max_interrupts});
    // The owner constructors are the single source of parameter-validation
    // truth (adversary/processes.cpp, adversary/stochastic.cpp); building
    // one and throwing it away re-uses their checks verbatim.
    (void)make_owner(spec);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument("BatchRunner: scenario #" + std::to_string(index) +
                                " invalid: " + e.what());
  }
}

}  // namespace

void validate_batch_specs(const std::vector<ScenarioSpec>& specs) {
  for (std::size_t i = 0; i < specs.size(); ++i) validate_spec(specs[i], i);
}

std::unique_ptr<adversary::Adversary> make_owner(const ScenarioSpec& spec) {
  const std::uint64_t seed = scenario_stream_seed(spec);
  switch (spec.owner) {
    case OwnerKind::kPoisson:
      return std::make_unique<adversary::PoissonAdversary>(spec.owner_a, seed);
    case OwnerKind::kPareto:
      return std::make_unique<adversary::ParetoSessionAdversary>(spec.owner_a,
                                                                 spec.owner_b, seed);
    case OwnerKind::kUniform:
      return std::make_unique<adversary::UniformEpisodeAdversary>(spec.owner_a, seed);
    case OwnerKind::kMarkovModulated:
      return std::make_unique<adversary::MarkovModulatedAdversary>(
          spec.owner_a, spec.owner_b, spec.owner_c, spec.owner_d, seed);
    case OwnerKind::kInhomogeneous:
      return std::make_unique<adversary::InhomogeneousPoissonAdversary>(
          spec.owner_a, spec.owner_b, spec.owner_c, spec.owner_d, seed);
    case OwnerKind::kBursty:
      return std::make_unique<adversary::BurstyAdversary>(
          spec.owner_a, spec.owner_b, spec.owner_c, spec.owner_d, seed);
    case OwnerKind::kCorrelatedShock:
      // The shock stream seeds from group_seed ALONE (not the contract mix):
      // heterogeneous stations of one group must replay identical shocks.
      return std::make_unique<adversary::CorrelatedShockAdversary>(
          spec.owner_a, spec.owner_b, spec.group_seed, seed);
  }
  throw std::logic_error("BatchRunner: unknown owner kind");
}

std::shared_ptr<const SchedulingPolicy> make_policy(const ScenarioSpec& spec) {
  switch (spec.policy) {
    case PolicyKind::kEqualized:
      return std::make_shared<EqualizedGuidelinePolicy>();
    case PolicyKind::kAdaptivePaper:
      return std::make_shared<AdaptiveGuidelinePolicy>();
    case PolicyKind::kNonAdaptiveRestart:
      return std::make_shared<NonAdaptiveGuidelinePolicy>();
    case PolicyKind::kDpOptimal: {
      const solver::SolveRequest req{spec.max_interrupts, spec.lifespan, spec.params};
      return std::make_shared<solver::OptimalPolicy>(solver::solve_shared(req));
    }
  }
  throw std::logic_error("BatchRunner: unknown policy kind");
}

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kEqualized: return "equalized";
    case PolicyKind::kAdaptivePaper: return "adaptive-paper";
    case PolicyKind::kNonAdaptiveRestart: return "nonadaptive-restart";
    case PolicyKind::kDpOptimal: return "dp-optimal";
  }
  return "?";
}

const char* to_string(OwnerKind kind) {
  switch (kind) {
    case OwnerKind::kPoisson: return "poisson";
    case OwnerKind::kPareto: return "pareto";
    case OwnerKind::kUniform: return "uniform";
    case OwnerKind::kMarkovModulated: return "markov";
    case OwnerKind::kInhomogeneous: return "inhomogeneous";
    case OwnerKind::kBursty: return "bursty";
    case OwnerKind::kCorrelatedShock: return "correlated-shock";
  }
  return "?";
}

std::uint64_t scenario_stream_seed(const ScenarioSpec& spec) {
  // Mix the seed with the contract so two specs differing only in (U, p, c)
  // do not replay the same owner arrival stream against both contracts.
  std::uint64_t h = util::hash_combine(0, spec.seed);
  h = util::hash_combine(h, static_cast<std::uint64_t>(spec.lifespan));
  h = util::hash_combine(h, static_cast<std::uint64_t>(spec.max_interrupts));
  return util::hash_combine(h, static_cast<std::uint64_t>(spec.params.c));
}

BatchRunner::BatchRunner(BatchOptions options)
    // With an external shared cache the private one is never consulted, so
    // build it minimal (one stripe, zero budget) instead of at full width.
    : options_(options),
      cache_(options.shared_cache != nullptr
                 ? solver::SolveCache::Options{1, 0, nullptr}
                 : options.cache) {}

SessionMetrics BatchRunner::run_one(const ScenarioSpec& spec) {
  // Solves inside the batch never touch the pool: run_dag is not reentrant
  // from a worker, and the batch itself is the parallelism (header comment).
  std::shared_ptr<const SchedulingPolicy> policy;
  if (spec.policy == PolicyKind::kDpOptimal && options_.cache_enabled) {
    const solver::SolveRequest req{spec.max_interrupts, spec.lifespan, spec.params};
    policy = std::make_shared<solver::OptimalPolicy>(
        active_cache().get_or_solve(req, nullptr));
  } else {
    policy = make_policy(spec);
  }

  auto owner = make_owner(spec);
  return run_session(*policy, *owner, Opportunity{spec.lifespan, spec.max_interrupts},
                     spec.params);
}

BatchResult BatchRunner::run(const std::vector<ScenarioSpec>& specs) {
  validate_batch_specs(specs);

  BatchResult result;
  result.scenarios = specs.size();
  result.per_scenario.resize(specs.size());

  // Each task writes only its own slot; parallel_for's return is the
  // barrier that publishes every slot to this thread. grain = 1 because
  // every index is an entire session simulation (ms-scale): dispatch
  // overhead is negligible against the body, and fine chunks are what let
  // a small batch use the whole pool and heavy naive-mode sessions balance.
  auto body = [&](std::size_t i) { result.per_scenario[i] = run_one(specs[i]); };
  if (options_.pool != nullptr && specs.size() > 1) {
    options_.pool->parallel_for(0, specs.size(), body, /*grain=*/1);
  } else {
    for (std::size_t i = 0; i < specs.size(); ++i) body(i);
  }

  for (const SessionMetrics& m : result.per_scenario) result.aggregate.merge(m);
  result.cache = active_cache().stats();
  return result;
}

}  // namespace nowsched::sim
