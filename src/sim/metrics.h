// Metrics collected by the simulator.
#pragma once

#include <cstddef>
#include <string>

#include "core/types.h"

namespace nowsched::sim {

struct SessionMetrics {
  /// Model-level work banked: Σ over completed periods of (t ⊖ c).
  Ticks banked_work = 0;
  /// Task ticks actually completed (<= banked_work when tasks fragment).
  Ticks task_work = 0;
  /// Setup cost paid on completed periods.
  Ticks comm_overhead = 0;
  /// Period capacity destroyed by interrupts (work in progress when killed).
  Ticks lost_work = 0;
  /// Work rescued by intra-period checkpoints (0 under the paper's model).
  Ticks salvaged_work = 0;
  /// Capacity no task fit into (indivisible-task fragmentation).
  Ticks fragmentation = 0;
  /// Lifespan ticks consumed (== U when the opportunity runs out).
  Ticks lifespan_used = 0;

  int interrupts = 0;
  std::size_t episodes = 0;
  std::size_t periods_completed = 0;
  std::size_t periods_killed = 0;
  std::size_t tasks_completed = 0;

  void merge(const SessionMetrics& other) noexcept {
    banked_work += other.banked_work;
    task_work += other.task_work;
    comm_overhead += other.comm_overhead;
    lost_work += other.lost_work;
    salvaged_work += other.salvaged_work;
    fragmentation += other.fragmentation;
    lifespan_used += other.lifespan_used;
    interrupts += other.interrupts;
    episodes += other.episodes;
    periods_completed += other.periods_completed;
    periods_killed += other.periods_killed;
    tasks_completed += other.tasks_completed;
  }

  std::string to_string() const;
};

}  // namespace nowsched::sim
