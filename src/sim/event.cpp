#include "sim/event.h"

#include <stdexcept>
#include <utility>

namespace nowsched::sim {

void Simulator::schedule_at(Ticks time, Callback cb) {
  if (time < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time is in the past");
  }
  queue_.push(Event{time, seq_++, std::move(cb)});
}

void Simulator::schedule_after(Ticks delay, Callback cb) {
  if (delay < 0) throw std::invalid_argument("Simulator::schedule_after: delay < 0");
  schedule_at(now_ + delay, std::move(cb));
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t processed = 0;
  while (!queue_.empty() && processed < max_events) {
    // Copy out before pop: the callback may schedule further events.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.cb(*this);
    ++processed;
  }
  return processed;
}

}  // namespace nowsched::sim
