#include "sim/session.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/parse.h"

namespace nowsched::sim {

std::string SessionMetrics::to_string() const {
  std::ostringstream os;
  os << "banked=" << banked_work << " tasks=" << tasks_completed
     << " task_work=" << task_work << " comm=" << comm_overhead
     << " lost=" << lost_work << " salvaged=" << salvaged_work
     << " frag=" << fragmentation
     << " interrupts=" << interrupts << " episodes=" << episodes
     << " periods=" << periods_completed << "+" << periods_killed << "killed";
  return os.str();
}

SessionActor::SessionActor(const SchedulingPolicy& policy,
                           adversary::Adversary& adversary, Opportunity opportunity,
                           Params params, TaskBag* bag,
                           std::optional<Checkpointing> checkpointing)
    : policy_(policy),
      adversary_(adversary),
      opportunity_(opportunity),
      params_(params),
      bag_(bag),
      checkpointing_(checkpointing) {
  require_valid(params_);
  require_valid(opportunity_);
  if (checkpointing_ && !checkpointing_->valid()) {
    throw std::invalid_argument("SessionActor: invalid checkpointing parameters");
  }
}

void SessionActor::start(Simulator& sim) {
  opportunity_start_ = sim.now();
  residual_ = opportunity_.lifespan;
  interrupts_left_ = opportunity_.max_interrupts;
  if (residual_ == 0) {
    finished_ = true;
    return;
  }
  begin_episode(sim);
}

void SessionActor::begin_episode(Simulator& sim) {
  episode_ = policy_.episode(residual_, interrupts_left_, params_);
  if (episode_.total() != residual_) {
    throw std::logic_error("SessionActor: policy episode does not span the residual");
  }
  episode_start_abs_ = sim.now();
  metrics_.episodes += 1;
  current_period_ = 0;
  interrupt_tick_.reset();

  if (interrupts_left_ > 0) {
    adversary::EpisodeContext ctx;
    ctx.episode_start = episode_start_abs_ - opportunity_start_;
    ctx.residual = residual_;
    ctx.interrupts_left = interrupts_left_;
    ctx.params = params_;
    auto planned = adversary_.plan_interrupt(episode_, ctx);
    if (planned) {
      if (*planned < 1 || *planned > episode_.total()) {
        throw std::logic_error("SessionActor: adversary interrupt outside episode");
      }
      interrupt_tick_ = planned;
    }
  }
  begin_period(sim);
}

void SessionActor::begin_period(Simulator& sim) {
  const std::size_t k = current_period_;
  const Ticks length = episode_.period(k);

  // Pack a batch into the productive capacity of this period.
  in_flight_capacity_ = positive_sub(length, params_.c);
  if (bag_ != nullptr && in_flight_capacity_ > 0) {
    in_flight_ = bag_->take_batch(in_flight_capacity_);
  } else {
    in_flight_.clear();
  }

  const std::uint64_t gen = generation_;
  // Does the planned interrupt land inside this period?
  if (interrupt_tick_ && *interrupt_tick_ <= episode_.end(k)) {
    const Ticks delay = *interrupt_tick_ - episode_.start(k);
    sim.schedule_after(delay, [this, gen](Simulator& s) {
      if (gen == generation_) handle_interrupt(s);
    });
  } else {
    sim.schedule_after(length, [this, gen](Simulator& s) {
      if (gen == generation_) finish_period(s);
    });
  }
}

void SessionActor::finish_period(Simulator& sim) {
  const std::size_t k = current_period_;
  Ticks produced = positive_sub(episode_.period(k), params_.c);
  if (checkpointing_) {
    produced = checkpointed_period_work(produced, *checkpointing_);
  }

  metrics_.periods_completed += 1;
  metrics_.banked_work += produced;
  metrics_.comm_overhead += std::min(episode_.period(k), params_.c);
  if (bag_ != nullptr) {
    const Ticks batch = TaskBag::batch_work(in_flight_);
    bag_->mark_completed(in_flight_);
    metrics_.tasks_completed += in_flight_.size();
    metrics_.task_work += batch;
    metrics_.fragmentation += in_flight_capacity_ - batch;
    in_flight_.clear();
  }

  ++current_period_;
  if (current_period_ < episode_.size()) {
    begin_period(sim);
    return;
  }
  // Episode ran to completion: the lifespan is exhausted (episodes span the
  // entire residual by construction).
  metrics_.lifespan_used += episode_.total();
  residual_ = 0;
  ++generation_;
  finished_ = true;
}

void SessionActor::handle_interrupt(Simulator& sim) {
  const Ticks tick = *interrupt_tick_;
  metrics_.interrupts += 1;
  metrics_.periods_killed += 1;
  metrics_.lifespan_used += tick;

  Ticks salvaged = 0;
  if (checkpointing_) {
    // Productive capacity elapsed in the killed period when the owner hit:
    // the setup prefix of length c produces nothing.
    const Ticks in_period = tick - episode_.start(current_period_);
    const Ticks elapsed =
        std::min(positive_sub(in_period, params_.c), in_flight_capacity_);
    salvaged = checkpoint_salvage(elapsed, *checkpointing_);
    metrics_.salvaged_work += salvaged;
    metrics_.banked_work += salvaged;
  }
  metrics_.lost_work += in_flight_capacity_ - salvaged;
  if (bag_ != nullptr && !in_flight_.empty()) {
    bag_->return_batch(in_flight_);
    in_flight_.clear();
  }

  residual_ -= tick;
  interrupts_left_ -= 1;
  ++generation_;

  if (residual_ <= 0) {
    finished_ = true;
    return;
  }
  if (pause_countdown_ > 0 && --pause_countdown_ == 0) {
    paused_ = true;  // interrupt boundary: no episode in flight to capture
    return;
  }
  begin_episode(sim);
}

void SessionActor::pause_after_interrupts(int n) {
  if (n < 1) {
    throw std::invalid_argument("SessionActor: pause_after_interrupts needs n >= 1");
  }
  pause_countdown_ = n;
}

SessionCheckpoint SessionActor::checkpoint() const {
  if (!paused_ && !finished_) {
    throw std::logic_error("SessionActor: checkpoint() while an episode is running");
  }
  SessionCheckpoint ckpt;
  ckpt.residual = finished_ ? 0 : residual_;
  ckpt.interrupts_left = interrupts_left_;
  ckpt.metrics = metrics_;
  ckpt.finished = finished_;
  return ckpt;
}

SessionMetrics run_session(const SchedulingPolicy& policy,
                           adversary::Adversary& adversary, Opportunity opportunity,
                           Params params, TaskBag* bag,
                           std::optional<Checkpointing> checkpointing) {
  Simulator sim;
  SessionActor actor(policy, adversary, opportunity, params, bag, checkpointing);
  actor.start(sim);
  sim.run();
  if (!actor.finished()) {
    throw std::logic_error("run_session: simulation stalled before completion");
  }
  return actor.metrics();
}

SessionCheckpoint run_session_until_interrupt(
    const SchedulingPolicy& policy, adversary::Adversary& adversary,
    Opportunity opportunity, Params params, int pause_after, TaskBag* bag,
    std::optional<Checkpointing> checkpointing) {
  Simulator sim;
  SessionActor actor(policy, adversary, opportunity, params, bag, checkpointing);
  actor.pause_after_interrupts(pause_after);
  actor.start(sim);
  sim.run();
  if (!actor.finished() && !actor.paused()) {
    throw std::logic_error(
        "run_session_until_interrupt: simulation stalled before completion");
  }
  return actor.checkpoint();
}

SessionMetrics resume_session(const SchedulingPolicy& policy,
                              adversary::Adversary& adversary,
                              const SessionCheckpoint& ckpt, Params params,
                              TaskBag* bag,
                              std::optional<Checkpointing> checkpointing) {
  SessionMetrics merged = ckpt.metrics;
  if (ckpt.finished) return merged;
  merged.merge(run_session(policy, adversary,
                           Opportunity{ckpt.residual, ckpt.interrupts_left}, params,
                           bag, checkpointing));
  return merged;
}

// ---------------------------------------------------------------------------
// Checkpoint text round-trip
// ---------------------------------------------------------------------------

namespace {

long long parse_ckpt_int(const std::string& value, const std::string& line) {
  const auto x = util::parse_int64(value);
  if (!x) {
    throw std::invalid_argument("session checkpoint: malformed integer in '" +
                                line + "'");
  }
  return *x;
}

}  // namespace

std::string serialize(const SessionCheckpoint& ckpt) {
  std::ostringstream os;
  os << "nowsched-session-checkpoint v1\n";
  os << "residual=" << ckpt.residual << "\n";
  os << "interrupts_left=" << ckpt.interrupts_left << "\n";
  os << "finished=" << (ckpt.finished ? 1 : 0) << "\n";
  const SessionMetrics& m = ckpt.metrics;
  os << "banked_work=" << m.banked_work << "\n";
  os << "task_work=" << m.task_work << "\n";
  os << "comm_overhead=" << m.comm_overhead << "\n";
  os << "lost_work=" << m.lost_work << "\n";
  os << "salvaged_work=" << m.salvaged_work << "\n";
  os << "fragmentation=" << m.fragmentation << "\n";
  os << "lifespan_used=" << m.lifespan_used << "\n";
  os << "interrupts=" << m.interrupts << "\n";
  os << "episodes=" << m.episodes << "\n";
  os << "periods_completed=" << m.periods_completed << "\n";
  os << "periods_killed=" << m.periods_killed << "\n";
  os << "tasks_completed=" << m.tasks_completed << "\n";
  return os.str();
}

SessionCheckpoint parse_session_checkpoint(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != "nowsched-session-checkpoint v1") {
    throw std::invalid_argument(
        "session checkpoint: missing 'nowsched-session-checkpoint v1' header");
  }
  SessionCheckpoint ckpt;
  // Every key serialize() writes is REQUIRED back: a truncated checkpoint
  // must be an error, never a silently zeroed session state.
  std::vector<std::string> missing = {
      "residual",      "interrupts_left", "finished",
      "banked_work",   "task_work",       "comm_overhead",
      "lost_work",     "salvaged_work",   "fragmentation",
      "lifespan_used", "interrupts",      "episodes",
      "periods_completed", "periods_killed", "tasks_completed"};
  const auto mark_seen = [&missing](const std::string& key) {
    for (auto it = missing.begin(); it != missing.end(); ++it) {
      if (*it == key) {
        missing.erase(it);
        return;
      }
    }
  };
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("session checkpoint: expected key=value, got '" +
                                  line + "'");
    }
    const std::string key = line.substr(0, eq);
    const long long v = parse_ckpt_int(line.substr(eq + 1), line);
    SessionMetrics& m = ckpt.metrics;
    if (key == "residual") ckpt.residual = v;
    else if (key == "interrupts_left") ckpt.interrupts_left = static_cast<int>(v);
    else if (key == "finished") ckpt.finished = v != 0;
    else if (key == "banked_work") m.banked_work = v;
    else if (key == "task_work") m.task_work = v;
    else if (key == "comm_overhead") m.comm_overhead = v;
    else if (key == "lost_work") m.lost_work = v;
    else if (key == "salvaged_work") m.salvaged_work = v;
    else if (key == "fragmentation") m.fragmentation = v;
    else if (key == "lifespan_used") m.lifespan_used = v;
    else if (key == "interrupts") m.interrupts = static_cast<int>(v);
    else if (key == "episodes") m.episodes = static_cast<std::size_t>(v);
    else if (key == "periods_completed") m.periods_completed = static_cast<std::size_t>(v);
    else if (key == "periods_killed") m.periods_killed = static_cast<std::size_t>(v);
    else if (key == "tasks_completed") m.tasks_completed = static_cast<std::size_t>(v);
    else {
      throw std::invalid_argument("session checkpoint: unknown key '" + key + "'");
    }
    mark_seen(key);
  }
  if (!missing.empty()) {
    throw std::invalid_argument("session checkpoint: incomplete record, missing '" +
                                missing.front() + "'");
  }
  return ckpt;
}

}  // namespace nowsched::sim
