// Minimal discrete-event simulation core: a time-ordered event queue with
// deterministic FIFO tie-breaking. Sessions and farms are actors scheduling
// callbacks on a shared clock.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "core/types.h"

namespace nowsched::sim {

class Simulator {
 public:
  using Callback = std::function<void(Simulator&)>;

  /// Schedule `cb` at absolute `time` (>= now()); throws on time travel.
  void schedule_at(Ticks time, Callback cb);

  /// Schedule `cb` `delay` ticks from now (delay >= 0).
  void schedule_after(Ticks delay, Callback cb);

  Ticks now() const noexcept { return now_; }
  bool empty() const noexcept { return queue_.empty(); }
  std::size_t pending() const noexcept { return queue_.size(); }

  /// Process events in (time, insertion) order until the queue drains or
  /// `max_events` have run. Returns the number processed.
  std::size_t run(std::size_t max_events = static_cast<std::size_t>(-1));

 private:
  struct Event {
    Ticks time;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Ticks now_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace nowsched::sim
