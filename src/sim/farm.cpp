#include "sim/farm.h"

#include <stdexcept>

namespace nowsched::sim {

FarmResult run_farm(const std::vector<WorkstationConfig>& stations, TaskBag& bag) {
  if (stations.empty()) throw std::invalid_argument("run_farm: no workstations");
  for (const auto& st : stations) {
    if (!st.policy || !st.owner) {
      throw std::invalid_argument("run_farm: station '" + st.name +
                                  "' missing policy or owner");
    }
    if (st.start_time < 0) {
      throw std::invalid_argument("run_farm: negative start time");
    }
  }

  Simulator sim;
  std::vector<std::unique_ptr<SessionActor>> actors;
  actors.reserve(stations.size());
  for (const auto& st : stations) {
    actors.push_back(std::make_unique<SessionActor>(*st.policy, *st.owner,
                                                    st.opportunity, st.params, &bag));
    SessionActor* actor = actors.back().get();
    sim.schedule_at(st.start_time, [actor](Simulator& s) { actor->start(s); });
  }

  FarmResult result;
  result.events = sim.run();
  result.makespan = sim.now();
  for (const auto& actor : actors) {
    if (!actor->finished()) {
      throw std::logic_error("run_farm: a session stalled before completion");
    }
    result.per_workstation.push_back(actor->metrics());
    result.aggregate.merge(actor->metrics());
  }
  result.tasks_left = bag.pending();
  result.task_work_left = bag.pending_work();
  return result;
}

}  // namespace nowsched::sim
