// One cycle-stealing opportunity, simulated end to end.
//
// SessionActor is a state machine on the shared Simulator clock:
//   episode start -> (period end)* -> interrupt | episode exhausted -> ...
// Interrupt semantics follow the model exactly: an interrupt during period k
// kills that period's work; periods checkpoint (B returns results) at their
// ends. With a TaskBag attached, each period carries a greedily packed batch
// of indivisible tasks; killed batches return to the bag.
//
// run_session() is the standalone convenience wrapper (own Simulator).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "adversary/adversary.h"
#include "core/policy.h"
#include "core/types.h"
#include "sim/checkpoint.h"
#include "sim/event.h"
#include "sim/metrics.h"
#include "sim/taskbag.h"

namespace nowsched::sim {

/// Resumable mid-session state, captured at an interrupt boundary — the only
/// points where no episode is in flight, so the whole session state is the
/// residual contract plus the metrics banked so far. A session resumed from
/// a checkpoint continues BIT-IDENTICALLY to the uninterrupted original:
/// policies are pure functions of (residual, interrupts_left), episodes span
/// the residual by construction, and the adversary side is re-based by
/// shifting its trace (InterruptTrace::shifted) by the consumed lifespan
/// (== metrics.lifespan_used). Asserted against generated interrupt traces
/// in tests/sim_checkpoint_test.cpp and the conformance suite.
struct SessionCheckpoint {
  Ticks residual = 0;       ///< lifespan remaining at the pause point
  int interrupts_left = 0;  ///< contract interrupts the owner may still use
  SessionMetrics metrics;   ///< accumulated up to the pause point
  bool finished = false;    ///< session completed before the requested pause
};

/// Text round-trip of a checkpoint ("nowsched-session-checkpoint v1" header
/// + key=value integer lines; parse(serialize(x)) == x exactly).
std::string serialize(const SessionCheckpoint& ckpt);
SessionCheckpoint parse_session_checkpoint(const std::string& text);

class SessionActor {
 public:
  /// `bag` may be nullptr (pure model-level accounting). `checkpointing`
  /// enables the intra-period checkpoint extension (sim/checkpoint.h);
  /// the paper's draconian model is the default (nullopt). Lifetime of all
  /// referenced objects must cover the simulation run.
  SessionActor(const SchedulingPolicy& policy, adversary::Adversary& adversary,
               Opportunity opportunity, Params params, TaskBag* bag = nullptr,
               std::optional<Checkpointing> checkpointing = std::nullopt);

  /// Schedules the first episode on `sim` (at the current sim time).
  void start(Simulator& sim);

  /// Halt instead of beginning the next episode once `n` further interrupts
  /// have been handled (n >= 1). Set before start(); when the session runs
  /// out of lifespan first, it simply finishes.
  void pause_after_interrupts(int n);

  bool finished() const noexcept { return finished_; }
  bool paused() const noexcept { return paused_; }

  /// The resumable state; call only when paused() or finished().
  SessionCheckpoint checkpoint() const;

  const SessionMetrics& metrics() const noexcept { return metrics_; }

 private:
  void begin_episode(Simulator& sim);
  void begin_period(Simulator& sim);
  void finish_period(Simulator& sim);
  void handle_interrupt(Simulator& sim);

  // Configuration.
  const SchedulingPolicy& policy_;
  adversary::Adversary& adversary_;
  Opportunity opportunity_;
  Params params_;
  TaskBag* bag_;
  std::optional<Checkpointing> checkpointing_;

  // Episode state.
  EpisodeSchedule episode_;
  Ticks episode_start_abs_ = 0;   ///< sim time at episode start
  Ticks opportunity_start_ = 0;   ///< sim time at session start
  Ticks residual_ = 0;
  int interrupts_left_ = 0;
  std::size_t current_period_ = 0;
  std::optional<Ticks> interrupt_tick_;  ///< episode-relative, 1-based
  std::vector<Task> in_flight_;
  Ticks in_flight_capacity_ = 0;

  // Staleness guard: events carry the generation they were scheduled in.
  std::uint64_t generation_ = 0;

  SessionMetrics metrics_;
  bool finished_ = false;
  int pause_countdown_ = -1;  ///< -1: never pause
  bool paused_ = false;
};

/// Runs a single session to completion on a private Simulator.
SessionMetrics run_session(const SchedulingPolicy& policy,
                           adversary::Adversary& adversary, Opportunity opportunity,
                           Params params, TaskBag* bag = nullptr,
                           std::optional<Checkpointing> checkpointing = std::nullopt);

/// Runs a session but pauses after `pause_after` interrupts (>= 1) have been
/// handled, returning the resumable state (checkpoint.finished when the
/// session completed first).
SessionCheckpoint run_session_until_interrupt(
    const SchedulingPolicy& policy, adversary::Adversary& adversary,
    Opportunity opportunity, Params params, int pause_after, TaskBag* bag = nullptr,
    std::optional<Checkpointing> checkpointing = std::nullopt);

/// Continues a paused session to completion and returns the FULL-session
/// metrics (checkpoint metrics merged with the continuation). The caller
/// re-bases time-dependent adversaries to the resume point — for traces,
/// TraceAdversary(trace.shifted(ckpt.metrics.lifespan_used)).
SessionMetrics resume_session(const SchedulingPolicy& policy,
                              adversary::Adversary& adversary,
                              const SessionCheckpoint& ckpt, Params params,
                              TaskBag* bag = nullptr,
                              std::optional<Checkpointing> checkpointing = std::nullopt);

}  // namespace nowsched::sim
