// One cycle-stealing opportunity, simulated end to end.
//
// SessionActor is a state machine on the shared Simulator clock:
//   episode start -> (period end)* -> interrupt | episode exhausted -> ...
// Interrupt semantics follow the model exactly: an interrupt during period k
// kills that period's work; periods checkpoint (B returns results) at their
// ends. With a TaskBag attached, each period carries a greedily packed batch
// of indivisible tasks; killed batches return to the bag.
//
// run_session() is the standalone convenience wrapper (own Simulator).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "adversary/adversary.h"
#include "core/policy.h"
#include "core/types.h"
#include "sim/checkpoint.h"
#include "sim/event.h"
#include "sim/metrics.h"
#include "sim/taskbag.h"

namespace nowsched::sim {

class SessionActor {
 public:
  /// `bag` may be nullptr (pure model-level accounting). `checkpointing`
  /// enables the intra-period checkpoint extension (sim/checkpoint.h);
  /// the paper's draconian model is the default (nullopt). Lifetime of all
  /// referenced objects must cover the simulation run.
  SessionActor(const SchedulingPolicy& policy, adversary::Adversary& adversary,
               Opportunity opportunity, Params params, TaskBag* bag = nullptr,
               std::optional<Checkpointing> checkpointing = std::nullopt);

  /// Schedules the first episode on `sim` (at the current sim time).
  void start(Simulator& sim);

  bool finished() const noexcept { return finished_; }
  const SessionMetrics& metrics() const noexcept { return metrics_; }

 private:
  void begin_episode(Simulator& sim);
  void begin_period(Simulator& sim);
  void finish_period(Simulator& sim);
  void handle_interrupt(Simulator& sim);

  // Configuration.
  const SchedulingPolicy& policy_;
  adversary::Adversary& adversary_;
  Opportunity opportunity_;
  Params params_;
  TaskBag* bag_;
  std::optional<Checkpointing> checkpointing_;

  // Episode state.
  EpisodeSchedule episode_;
  Ticks episode_start_abs_ = 0;   ///< sim time at episode start
  Ticks opportunity_start_ = 0;   ///< sim time at session start
  Ticks residual_ = 0;
  int interrupts_left_ = 0;
  std::size_t current_period_ = 0;
  std::optional<Ticks> interrupt_tick_;  ///< episode-relative, 1-based
  std::vector<Task> in_flight_;
  Ticks in_flight_capacity_ = 0;

  // Staleness guard: events carry the generation they were scheduled in.
  std::uint64_t generation_ = 0;

  SessionMetrics metrics_;
  bool finished_ = false;
};

/// Runs a single session to completion on a private Simulator.
SessionMetrics run_session(const SchedulingPolicy& policy,
                           adversary::Adversary& adversary, Opportunity opportunity,
                           Params params, TaskBag* bag = nullptr,
                           std::optional<Checkpointing> checkpointing = std::nullopt);

}  // namespace nowsched::sim
