// Batched many-session simulation: thousands of heterogeneous cycle-stealing
// sessions, executed in parallel, with the underlying W(p)[L] solves
// deduplicated through solver::SolveCache.
//
// Where sim::run_farm interleaves a handful of workstations on ONE shared
// clock (they drain a common task bag), BatchRunner is the throughput layer
// above it: every ScenarioSpec is an independent session (own Simulator, own
// adversary stream), so a batch is embarrassingly parallel — the only shared
// state is the solve cache, which is exactly the state worth sharing because
// dp-optimal scenarios with equal canonical solver inputs (see
// solver/solve_cache.h) re-use one table instead of re-solving per session.
//
// Determinism contract: run() fills per_scenario[i] from spec i alone — the
// adversary stream is derived from spec.seed via util::hash_combine (no
// global RNG, no time, no thread identity) and the aggregate is merged in
// index order after the parallel region. Results are therefore bit-identical
// across thread counts, submission orders, and cache on/off (the cache only
// changes WHO solves a table, never its contents). Verified by
// tests/sim_batch_determinism_test.cpp at 1/2/8 threads.
//
// Threading contract: run() drives options.pool through one blocking
// parallel_for, so call it from a thread that is not itself a pool worker
// (the ThreadPool contract). Solves triggered inside the batch always run
// sequentially — run_dag is not reentrant from a worker — which is the right
// trade anyway: the batch already saturates the pool with sessions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "core/policy.h"
#include "core/types.h"
#include "sim/metrics.h"
#include "solver/solve_cache.h"
#include "util/thread_pool.h"

namespace nowsched::sim {

/// Which scheduling policy a scenario runs. kDpOptimal is the one that
/// needs a W(p)[L] solve (and therefore exercises the cache); the guideline
/// policies are closed-form.
enum class PolicyKind {
  kEqualized,          ///< core/equalized.h (paper §4.2, Thm 4.3)
  kAdaptivePaper,      ///< core/guidelines.h §3.2 printed constants
  kNonAdaptiveRestart, ///< core/guidelines.h §3.1 re-applied per episode
  kDpOptimal,          ///< solver::OptimalPolicy over a (cached) value table
};

/// Which stochastic owner model interrupts the session. The first three live
/// in adversary/stochastic.h; the rest are the generative processes of
/// adversary/processes.h (see owner_a..owner_d in ScenarioSpec for how the
/// four generic parameter slots map onto each model).
enum class OwnerKind {
  kPoisson,          ///< a = mean inter-arrival gap
  kPareto,           ///< a = scale, b = shape
  kUniform,          ///< a = per-episode interrupt probability
  kMarkovModulated,  ///< a = calm gap, b = busy gap, c = calm dwell, d = busy dwell
  kInhomogeneous,    ///< a = mean gap, b = depth, c = period, d = phase
  kBursty,           ///< a = inter-burst scale, b = shape, c = mean burst, d = intra gap
  kCorrelatedShock,  ///< a = shock gap, b = response prob; shared group_seed stream
};

const char* to_string(PolicyKind kind);
const char* to_string(OwnerKind kind);

/// One session of the batch: policy kind, owner (lifetime) distribution,
/// contract (c, U, p), and the seed its private RNG stream derives from.
/// owner_a..owner_d are generic process-parameter slots interpreted per
/// OwnerKind (see the enum); unused slots are ignored by validation.
struct ScenarioSpec {
  PolicyKind policy = PolicyKind::kEqualized;
  OwnerKind owner = OwnerKind::kPoisson;
  double owner_a = 3000.0;  ///< slot 1 (e.g. Poisson mean gap)
  double owner_b = 1.5;     ///< slot 2 (e.g. Pareto shape)
  double owner_c = 0.0;     ///< slot 3 (process models only)
  double owner_d = 0.0;     ///< slot 4 (process models only)
  Params params;            ///< setup cost c
  Ticks lifespan = 0;       ///< contract lifespan U
  int max_interrupts = 0;   ///< contract interrupt bound p
  std::uint64_t seed = 0;   ///< root of this scenario's private RNG stream
  /// Correlation group: kCorrelatedShock owners constructed with equal
  /// group_seed share one shock stream (a farm failing together). Ignored
  /// by the other owners; 0 is just another group id.
  std::uint64_t group_seed = 0;
};

struct BatchOptions {
  /// Pool the sessions fan out on; nullptr runs the batch on the calling
  /// thread (still through the same code path, so results are identical).
  util::ThreadPool* pool = nullptr;
  /// When false every dp-optimal scenario re-solves its own table — the
  /// "naive per-session re-solving" baseline E13 measures against.
  bool cache_enabled = true;
  solver::SolveCache::Options cache;
  /// When non-null, dp-optimal solves go through this externally owned cache
  /// instead of the runner's private one, and `cache` is ignored. This is
  /// how service::SchedulerService layers per-tenant byte quotas on the
  /// batch engine: one quota-budgeted cache per tenant, shared by every job
  /// the tenant runs. The cache must outlive the runner; cache_enabled
  /// still gates whether ANY cache is consulted.
  solver::SolveCache* shared_cache = nullptr;
};

struct BatchResult {
  /// per_scenario[i] is the metrics of specs[i] — index-aligned, never
  /// reordered by scheduling.
  std::vector<SessionMetrics> per_scenario;
  /// All sessions merged in index order.
  SessionMetrics aggregate;
  /// Solve-cache counters for this runner (lifetime, so across run() calls).
  solver::SolveCacheStats cache;
  std::size_t scenarios = 0;
};

class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions options = {});

  /// Runs every scenario to completion and aggregates. Specs are validated
  /// up front (invalid ones throw std::invalid_argument naming the index —
  /// no session starts). The runner's cache persists across calls, so a
  /// second run() over similar specs starts warm.
  BatchResult run(const std::vector<ScenarioSpec>& specs);

  /// The cache this runner's dp-optimal solves go through: the external
  /// shared cache when BatchOptions::shared_cache is set, else the private
  /// one.
  const solver::SolveCache& cache() const noexcept { return active_cache(); }

 private:
  SessionMetrics run_one(const ScenarioSpec& spec);
  solver::SolveCache& active_cache() const noexcept {
    return options_.shared_cache != nullptr ? *options_.shared_cache : cache_;
  }

  BatchOptions options_;
  mutable solver::SolveCache cache_;
};

/// Validates every spec exactly like BatchRunner::run does up front: throws
/// std::invalid_argument naming the first invalid index. Exposed so the
/// service layer can reject a malformed scenario at admission time (with the
/// reason in the submit status) instead of poisoning a queued job.
void validate_batch_specs(const std::vector<ScenarioSpec>& specs);

/// Derives the deterministic adversary seed of `spec` (exposed so tests can
/// reproduce a batch entry with sim::run_session directly).
std::uint64_t scenario_stream_seed(const ScenarioSpec& spec);

/// Builds the spec's owner adversary, seeded from scenario_stream_seed —
/// exactly the one a BatchRunner session would face. Throws
/// std::invalid_argument on bad owner parameters.
std::unique_ptr<adversary::Adversary> make_owner(const ScenarioSpec& spec);

/// Builds the spec's scheduling policy. kDpOptimal solves its table through
/// solver::solve_shared (uncached — callers wanting the cache go through
/// BatchRunner). The conformance suite uses this + make_owner to rebuild a
/// replayed scenario's session bit-for-bit.
std::shared_ptr<const SchedulingPolicy> make_policy(const ScenarioSpec& spec);

}  // namespace nowsched::sim
