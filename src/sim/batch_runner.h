// Batched many-session simulation: thousands of heterogeneous cycle-stealing
// sessions, executed in parallel, with the underlying W(p)[L] solves
// deduplicated through solver::SolveCache.
//
// Where sim::run_farm interleaves a handful of workstations on ONE shared
// clock (they drain a common task bag), BatchRunner is the throughput layer
// above it: every ScenarioSpec is an independent session (own Simulator, own
// adversary stream), so a batch is embarrassingly parallel — the only shared
// state is the solve cache, which is exactly the state worth sharing because
// dp-optimal scenarios with equal canonical solver inputs (see
// solver/solve_cache.h) re-use one table instead of re-solving per session.
//
// Determinism contract: run() fills per_scenario[i] from spec i alone — the
// adversary stream is derived from spec.seed via util::hash_combine (no
// global RNG, no time, no thread identity) and the aggregate is merged in
// index order after the parallel region. Results are therefore bit-identical
// across thread counts, submission orders, and cache on/off (the cache only
// changes WHO solves a table, never its contents). Verified by
// tests/sim_batch_determinism_test.cpp at 1/2/8 threads.
//
// Threading contract: run() drives options.pool through one blocking
// parallel_for, so call it from a thread that is not itself a pool worker
// (the ThreadPool contract). Solves triggered inside the batch always run
// sequentially — run_dag is not reentrant from a worker — which is the right
// trade anyway: the batch already saturates the pool with sessions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"
#include "sim/metrics.h"
#include "solver/solve_cache.h"
#include "util/thread_pool.h"

namespace nowsched::sim {

/// Which scheduling policy a scenario runs. kDpOptimal is the one that
/// needs a W(p)[L] solve (and therefore exercises the cache); the guideline
/// policies are closed-form.
enum class PolicyKind {
  kEqualized,          ///< core/equalized.h (paper §4.2, Thm 4.3)
  kAdaptivePaper,      ///< core/guidelines.h §3.2 printed constants
  kNonAdaptiveRestart, ///< core/guidelines.h §3.1 re-applied per episode
  kDpOptimal,          ///< solver::OptimalPolicy over a (cached) value table
};

/// Which stochastic owner model interrupts the session (adversary/stochastic.h).
enum class OwnerKind {
  kPoisson,  ///< mean inter-arrival owner_a ticks
  kPareto,   ///< scale owner_a, shape owner_b
  kUniform,  ///< per-episode interrupt probability owner_a
};

const char* to_string(PolicyKind kind);
const char* to_string(OwnerKind kind);

/// One session of the batch: policy kind, owner (lifetime) distribution,
/// contract (c, U, p), and the seed its private RNG stream derives from.
struct ScenarioSpec {
  PolicyKind policy = PolicyKind::kEqualized;
  OwnerKind owner = OwnerKind::kPoisson;
  double owner_a = 3000.0;  ///< Poisson mean gap / Pareto scale / uniform prob
  double owner_b = 1.5;     ///< Pareto shape (ignored by the other owners)
  Params params;            ///< setup cost c
  Ticks lifespan = 0;       ///< contract lifespan U
  int max_interrupts = 0;   ///< contract interrupt bound p
  std::uint64_t seed = 0;   ///< root of this scenario's private RNG stream
};

struct BatchOptions {
  /// Pool the sessions fan out on; nullptr runs the batch on the calling
  /// thread (still through the same code path, so results are identical).
  util::ThreadPool* pool = nullptr;
  /// When false every dp-optimal scenario re-solves its own table — the
  /// "naive per-session re-solving" baseline E13 measures against.
  bool cache_enabled = true;
  solver::SolveCache::Options cache;
};

struct BatchResult {
  /// per_scenario[i] is the metrics of specs[i] — index-aligned, never
  /// reordered by scheduling.
  std::vector<SessionMetrics> per_scenario;
  /// All sessions merged in index order.
  SessionMetrics aggregate;
  /// Solve-cache counters for this runner (lifetime, so across run() calls).
  solver::SolveCacheStats cache;
  std::size_t scenarios = 0;
};

class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions options = {});

  /// Runs every scenario to completion and aggregates. Specs are validated
  /// up front (invalid ones throw std::invalid_argument naming the index —
  /// no session starts). The runner's cache persists across calls, so a
  /// second run() over similar specs starts warm.
  BatchResult run(const std::vector<ScenarioSpec>& specs);

  const solver::SolveCache& cache() const noexcept { return cache_; }

 private:
  SessionMetrics run_one(const ScenarioSpec& spec);

  BatchOptions options_;
  solver::SolveCache cache_;
};

/// Derives the deterministic adversary seed of `spec` (exposed so tests can
/// reproduce a batch entry with sim::run_session directly).
std::uint64_t scenario_stream_seed(const ScenarioSpec& spec);

}  // namespace nowsched::sim
