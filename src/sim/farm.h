// A network of workstations: several borrowed machines draining one shared
// data-parallel task bag on a common simulated clock — the setting the
// paper's introduction motivates (§1: "the use of a network of workstations
// as a parallel computer").
//
// Each workstation has its own contract (U_i, p_i), link cost c_i, owner
// model, and scheduling policy. The farm interleaves all sessions in event
// order, so batches are packed from the shared bag in true time order.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "core/policy.h"
#include "sim/metrics.h"
#include "sim/session.h"
#include "sim/taskbag.h"

namespace nowsched::sim {

struct WorkstationConfig {
  std::string name;
  Opportunity opportunity;
  Params params;
  PolicyPtr policy;
  std::shared_ptr<adversary::Adversary> owner;
  Ticks start_time = 0;  ///< when the contract begins (absolute sim time)
};

struct FarmResult {
  std::vector<SessionMetrics> per_workstation;
  SessionMetrics aggregate;
  Ticks makespan = 0;            ///< last event time
  std::size_t events = 0;        ///< DES events processed
  std::size_t tasks_left = 0;    ///< bag residue
  Ticks task_work_left = 0;
};

/// Runs every workstation against the shared bag until all sessions finish.
FarmResult run_farm(const std::vector<WorkstationConfig>& stations, TaskBag& bag);

}  // namespace nowsched::sim
