// Data-parallel task pool. The paper assumes "tasks are indivisible; task
// times may vary but are known perfectly" (§2.1); a period of length t holds
// a batch of tasks with total duration <= t ⊖ c. Unused capacity is internal
// fragmentation — a real-world cost the analytic model abstracts away, which
// the simulator measures (bench_sim_perf, examples/render_farm).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/types.h"
#include "util/rng.h"

namespace nowsched::sim {

struct Task {
  std::uint64_t id = 0;
  Ticks duration = 1;
};

class TaskBag {
 public:
  explicit TaskBag(std::vector<Task> tasks);

  /// `count` tasks all of the same duration.
  static TaskBag uniform(std::size_t count, Ticks duration);

  /// `count` tasks with durations uniform in [min_duration, max_duration].
  static TaskBag random(std::size_t count, Ticks min_duration, Ticks max_duration,
                        util::Rng& rng);

  /// Greedy FIFO packing: removes and returns the longest prefix of pending
  /// tasks whose total duration fits in `capacity`.
  std::vector<Task> take_batch(Ticks capacity);

  /// Puts a killed batch back at the FRONT (it retries first — the work is
  /// not lost from the job, only the cycles spent on it).
  void return_batch(const std::vector<Task>& batch);

  /// Credits a finished batch.
  void mark_completed(const std::vector<Task>& batch);

  std::size_t pending() const noexcept { return pending_.size(); }
  Ticks pending_work() const noexcept { return pending_work_; }
  std::size_t completed() const noexcept { return completed_count_; }
  Ticks completed_work() const noexcept { return completed_work_; }
  bool done() const noexcept { return pending_.empty(); }

  static Ticks batch_work(const std::vector<Task>& batch) noexcept;

 private:
  std::deque<Task> pending_;
  Ticks pending_work_ = 0;
  std::size_t completed_count_ = 0;
  Ticks completed_work_ = 0;
};

}  // namespace nowsched::sim
