// Intra-period checkpointing — an extension ablating the draconian model.
//
// In the paper, the ONLY checkpoints are period boundaries (B returns
// results to A), so an interrupt destroys the whole period in progress.
// Real systems can snapshot mid-period at some cost. This model inserts a
// checkpoint after every `interval` ticks of productive work, each costing
// `cost` ticks; an interrupt then loses only the work since the last
// completed checkpoint instead of the whole period.
//
// The accounting (used by SessionActor and tested directly):
//   * a period of length t has raw capacity w = t ⊖ c;
//   * the period alternates [interval work][cost checkpoint] cycles, so a
//     completed period banks productive(w) = w − floor(w/(interval+cost))·cost
//     (a trailing partial segment needs no checkpoint — period end is one);
//   * an interrupt after e < w elapsed capacity salvages
//     floor(e/(interval+cost))·interval ticks of checkpointed work.
#pragma once

#include <stdexcept>

#include "core/types.h"

namespace nowsched::sim {

struct Checkpointing {
  Ticks interval = 0;  ///< productive ticks between checkpoints (>= 1)
  Ticks cost = 0;      ///< ticks consumed per checkpoint (>= 0)

  bool valid() const noexcept { return interval >= 1 && cost >= 0; }
};

/// Work banked by a COMPLETED period of raw capacity `w` under `ckpt`.
/// Without checkpointing this is w itself.
inline Ticks checkpointed_period_work(Ticks w, const Checkpointing& ckpt) {
  if (!ckpt.valid()) throw std::invalid_argument("Checkpointing: bad parameters");
  if (w <= 0) return 0;
  const Ticks cycle = ckpt.interval + ckpt.cost;
  const Ticks full_cycles = w / cycle;
  // Checkpoint overhead is paid only for checkpoints fully taken; the final
  // partial segment is covered by the period-end checkpoint (cost c, already
  // accounted in the setup).
  return w - full_cycles * ckpt.cost;
}

/// Work SALVAGED when a period is interrupted after `elapsed` of its raw
/// capacity has run (elapsed in [0, w)). Without checkpointing this is 0.
inline Ticks checkpoint_salvage(Ticks elapsed, const Checkpointing& ckpt) {
  if (!ckpt.valid()) throw std::invalid_argument("Checkpointing: bad parameters");
  if (elapsed <= 0) return 0;
  const Ticks cycle = ckpt.interval + ckpt.cost;
  return (elapsed / cycle) * ckpt.interval;
}

}  // namespace nowsched::sim
