#include "sim/scenario_gen.h"

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "util/hash.h"
#include "util/parse.h"
#include "util/rng.h"

namespace nowsched::sim {

namespace {

// Domain tags keeping the independent derived streams (per-index, contract
// classes, farm groups) from colliding in hash space.
constexpr std::uint64_t kIndexTag = 0x5CE4A810;
constexpr std::uint64_t kClassTag = 0xC1A55E5;
constexpr std::uint64_t kGroupTag = 0xFA43A11;

const std::vector<PolicyKind>& all_policies() {
  static const std::vector<PolicyKind> kAll = {
      PolicyKind::kEqualized, PolicyKind::kAdaptivePaper,
      PolicyKind::kNonAdaptiveRestart, PolicyKind::kDpOptimal};
  return kAll;
}

const std::vector<OwnerKind>& all_owners() {
  static const std::vector<OwnerKind> kAll = {
      OwnerKind::kPoisson,       OwnerKind::kPareto,
      OwnerKind::kUniform,       OwnerKind::kMarkovModulated,
      OwnerKind::kInhomogeneous, OwnerKind::kBursty,
      OwnerKind::kCorrelatedShock};
  return kAll;
}

/// Log-uniform integer in [lo, hi] — contracts span orders of magnitude, so
/// uniform sampling would almost never produce small instances.
Ticks log_uniform(util::Rng& rng, Ticks lo, Ticks hi) {
  if (lo >= hi) return lo;
  const double x = rng.uniform(std::log(static_cast<double>(lo)),
                               std::log(static_cast<double>(hi)));
  const Ticks t = static_cast<Ticks>(std::llround(std::exp(x)));
  return std::max(lo, std::min(hi, t));
}

double positive(double x) { return x > 1.0 ? x : 1.0; }

}  // namespace

void ScenarioDomain::validate() const {
  if (min_c < 1 || max_c < min_c) {
    throw std::invalid_argument("ScenarioDomain: need 1 <= min_c <= max_c");
  }
  if (min_lifespan < 1 || max_lifespan < min_lifespan) {
    throw std::invalid_argument(
        "ScenarioDomain: need 1 <= min_lifespan <= max_lifespan");
  }
  if (min_interrupts < 0 || max_interrupts < min_interrupts) {
    throw std::invalid_argument(
        "ScenarioDomain: need 0 <= min_interrupts <= max_interrupts");
  }
  if (class_fraction < 0.0 || class_fraction > 1.0) {
    throw std::invalid_argument("ScenarioDomain: class_fraction in [0, 1]");
  }
  if (farm_size < 1) {
    throw std::invalid_argument("ScenarioDomain: farm_size >= 1");
  }
}

ScenarioGenerator::ScenarioGenerator(ScenarioDomain domain, std::uint64_t seed)
    : domain_(std::move(domain)), seed_(seed) {
  domain_.validate();
}

ScenarioSpec ScenarioGenerator::at(std::uint64_t index) const {
  // The whole scenario folds out of one per-index stream; nothing here
  // reads the cursor or any other mutable state.
  util::Rng rng(util::hash_combine(util::hash_combine(kIndexTag, seed_), index));
  ScenarioSpec spec;

  const auto& policies = domain_.policies.empty() ? all_policies() : domain_.policies;
  const auto& owners = domain_.owners.empty() ? all_owners() : domain_.owners;
  spec.policy = policies[static_cast<std::size_t>(rng.next_below(policies.size()))];
  spec.owner = owners[static_cast<std::size_t>(rng.next_below(owners.size()))];

  // Contract: fresh log-uniform draw, or one of the canonical classes.
  // Class contracts derive from (seed, class id) alone so every scenario of
  // a class shares the exact (c, U, p) — the canonical solver input folds.
  const bool from_class = domain_.contract_classes > 0 &&
                          rng.uniform01() < domain_.class_fraction;
  util::Rng class_rng(util::hash_combine(
      util::hash_combine(kClassTag, seed_),
      domain_.contract_classes > 0 ? rng.next_below(domain_.contract_classes) : 0));
  util::Rng& contract_rng = from_class ? class_rng : rng;
  spec.params = Params{log_uniform(contract_rng, domain_.min_c, domain_.max_c)};
  spec.lifespan =
      log_uniform(contract_rng, domain_.min_lifespan, domain_.max_lifespan);
  spec.max_interrupts = static_cast<int>(contract_rng.uniform_int(
      domain_.min_interrupts, domain_.max_interrupts));

  // Owner-process parameters, scaled to the contract so interrupts land
  // inside the lifespan often enough to matter.
  const double u = static_cast<double>(spec.lifespan);
  const double c = static_cast<double>(spec.params.c);
  switch (spec.owner) {
    case OwnerKind::kPoisson:
      spec.owner_a = positive(rng.uniform(u / 16.0, u));
      spec.owner_b = 0.0;
      break;
    case OwnerKind::kPareto:
      spec.owner_a = positive(rng.uniform(c, u / 2.0));
      spec.owner_b = rng.uniform(0.8, 2.5);
      break;
    case OwnerKind::kUniform:
      spec.owner_a = rng.uniform01();
      spec.owner_b = 0.0;
      break;
    case OwnerKind::kMarkovModulated:
      spec.owner_a = positive(rng.uniform(u / 4.0, u));         // calm gap
      spec.owner_b = positive(rng.uniform(c, c + u / 16.0));    // busy gap
      spec.owner_c = positive(rng.uniform(u / 8.0, u / 2.0));   // calm dwell
      spec.owner_d = positive(rng.uniform(u / 16.0, u / 4.0));  // busy dwell
      break;
    case OwnerKind::kInhomogeneous:
      spec.owner_a = positive(rng.uniform(u / 8.0, u / 2.0));  // mean gap
      spec.owner_b = rng.uniform01();                          // depth
      spec.owner_c = positive(rng.uniform(u / 4.0, u));        // period
      spec.owner_d = rng.uniform(0.0, 6.283185307179586);      // phase
      break;
    case OwnerKind::kBursty:
      spec.owner_a = positive(rng.uniform(u / 8.0, u / 2.0));  // absence scale
      spec.owner_b = rng.uniform(0.8, 2.0);                    // tail shape
      spec.owner_c = rng.uniform(1.0, 6.0);                    // mean burst
      spec.owner_d = positive(rng.uniform(1.0, 4.0 * c));      // intra gap
      break;
    case OwnerKind::kCorrelatedShock: {
      // The shock gap is a GROUP parameter (stations consume the shared
      // stream in lockstep only when their gaps agree), so it derives from
      // the group id, not this index; the response coin stays per-station.
      const std::uint64_t group = index / domain_.farm_size;
      spec.group_seed =
          util::hash_combine(util::hash_combine(kGroupTag, seed_), group);
      util::Rng group_rng(util::hash_combine(spec.group_seed, 1));
      spec.owner_a = positive(group_rng.uniform(
          static_cast<double>(domain_.min_lifespan) / 8.0,
          static_cast<double>(domain_.max_lifespan) / 2.0));
      spec.owner_b = rng.uniform(0.25, 1.0);
      break;
    }
  }

  spec.seed = rng.next();
  return spec;
}

ScenarioSpec ScenarioGenerator::next() { return at(cursor_++); }

std::vector<ScenarioSpec> ScenarioGenerator::batch(std::size_t n) {
  std::vector<ScenarioSpec> specs;
  specs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) specs.push_back(next());
  return specs;
}

std::vector<ScenarioSpec> ScenarioGenerator::farm_group(std::size_t stations) {
  // One shared shock process, per-station everything else: force every
  // member onto kCorrelatedShock with the group of the FIRST index so the
  // whole call lands in one group even when it straddles a farm_size
  // boundary.
  const std::uint64_t group = cursor_ / domain_.farm_size;
  const std::uint64_t group_seed =
      util::hash_combine(util::hash_combine(kGroupTag, seed_), group);
  util::Rng group_rng(util::hash_combine(group_seed, 1));
  const double shock_gap = positive(group_rng.uniform(
      static_cast<double>(domain_.min_lifespan) / 8.0,
      static_cast<double>(domain_.max_lifespan) / 2.0));

  std::vector<ScenarioSpec> specs;
  specs.reserve(stations);
  for (std::size_t i = 0; i < stations; ++i) {
    ScenarioSpec spec = next();
    util::Rng station_rng(util::hash_combine(group_seed, 2 + i));
    spec.owner = OwnerKind::kCorrelatedShock;
    spec.owner_a = shock_gap;
    spec.owner_b = station_rng.uniform(0.25, 1.0);
    spec.owner_c = 0.0;
    spec.owner_d = 0.0;
    spec.group_seed = group_seed;
    specs.push_back(spec);
  }
  return specs;
}

// ---------------------------------------------------------------------------
// Replay serialization
// ---------------------------------------------------------------------------

namespace {

std::string format_double(double x) {
  // max_digits10 == 17 round-trips IEEE doubles exactly through text.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", x);
  return buf;
}

double parse_double(const std::string& value, const std::string& line) {
  const auto x = util::parse_double(value);
  if (!x) {
    throw std::invalid_argument("scenario replay: malformed number in '" + line + "'");
  }
  return *x;
}

std::int64_t parse_int(const std::string& value, const std::string& line) {
  const auto x = util::parse_int64(value);
  if (!x) {
    throw std::invalid_argument("scenario replay: malformed integer in '" + line + "'");
  }
  return *x;
}

std::uint64_t parse_uint(const std::string& value, const std::string& line) {
  const auto x = util::parse_uint64(value);
  if (!x) {
    throw std::invalid_argument("scenario replay: malformed integer in '" + line + "'");
  }
  return *x;
}

}  // namespace

std::string to_replay_string(const ScenarioSpec& spec) {
  std::ostringstream os;
  os << "nowsched-scenario v1\n";
  os << "policy=" << to_string(spec.policy) << "\n";
  os << "owner=" << to_string(spec.owner) << "\n";
  os << "owner_a=" << format_double(spec.owner_a) << "\n";
  os << "owner_b=" << format_double(spec.owner_b) << "\n";
  os << "owner_c=" << format_double(spec.owner_c) << "\n";
  os << "owner_d=" << format_double(spec.owner_d) << "\n";
  os << "c=" << spec.params.c << "\n";
  os << "lifespan=" << spec.lifespan << "\n";
  os << "max_interrupts=" << spec.max_interrupts << "\n";
  os << "seed=" << spec.seed << "\n";
  os << "group_seed=" << spec.group_seed << "\n";
  return os.str();
}

PolicyKind policy_kind_from_string(const std::string& name) {
  for (PolicyKind kind : all_policies()) {
    if (name == to_string(kind)) return kind;
  }
  throw std::invalid_argument("unknown policy kind: '" + name + "'");
}

OwnerKind owner_kind_from_string(const std::string& name) {
  for (OwnerKind kind : all_owners()) {
    if (name == to_string(kind)) return kind;
  }
  throw std::invalid_argument("unknown owner kind: '" + name + "'");
}

ScenarioSpec scenario_from_replay(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != "nowsched-scenario v1") {
    throw std::invalid_argument(
        "scenario replay: missing 'nowsched-scenario v1' header");
  }
  ScenarioSpec spec;
  bool saw_policy = false, saw_owner = false, saw_c = false, saw_lifespan = false,
       saw_p = false, saw_seed = false;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;  // committed files may annotate
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("scenario replay: expected key=value, got '" +
                                  line + "'");
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "policy") {
      spec.policy = policy_kind_from_string(value);
      saw_policy = true;
    } else if (key == "owner") {
      spec.owner = owner_kind_from_string(value);
      saw_owner = true;
    } else if (key == "owner_a") {
      spec.owner_a = parse_double(value, line);
    } else if (key == "owner_b") {
      spec.owner_b = parse_double(value, line);
    } else if (key == "owner_c") {
      spec.owner_c = parse_double(value, line);
    } else if (key == "owner_d") {
      spec.owner_d = parse_double(value, line);
    } else if (key == "c") {
      spec.params = Params{parse_int(value, line)};
      saw_c = true;
    } else if (key == "lifespan") {
      spec.lifespan = parse_int(value, line);
      saw_lifespan = true;
    } else if (key == "max_interrupts") {
      spec.max_interrupts = static_cast<int>(parse_int(value, line));
      saw_p = true;
    } else if (key == "seed") {
      spec.seed = parse_uint(value, line);
      saw_seed = true;
    } else if (key == "group_seed") {
      spec.group_seed = parse_uint(value, line);
    } else {
      throw std::invalid_argument("scenario replay: unknown key '" + key + "'");
    }
  }
  if (!saw_policy || !saw_owner || !saw_c || !saw_lifespan || !saw_p || !saw_seed) {
    throw std::invalid_argument(
        "scenario replay: incomplete record (need policy, owner, c, lifespan, "
        "max_interrupts, seed)");
  }
  return spec;
}

}  // namespace nowsched::sim
