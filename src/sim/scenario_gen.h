// Composable, seed-deterministic scenario generation — the workload opener
// of DESIGN.md §8.
//
// A ScenarioGenerator samples ScenarioSpecs from a declared domain (policy
// mix, owner-process mix, contract ranges, contract-class structure,
// correlated-farm groups) and feeds them straight into sim::BatchRunner or
// the conformance suite. Its determinism contract is stronger than "same
// seed, same sequence": spec generation is RANDOM-ACCESS pure —
//
//     at(i) == f(domain, seed, i)
//
// with a private RNG stream derived per index (util::hash_combine of the
// generator seed and i), so the i-th scenario is identical no matter how
// many specs were drawn before it, from which thread, or in which batch
// grouping. That is what makes a replay file a complete repro: the spec
// alone rebuilds the session bit-for-bit (see tests/conformance/).
//
// Contract classes: real batch workloads are cache-friendly — thousands of
// contracts drawn from a handful of (c, U, p) classes. With
// contract_classes > 0, a class_fraction slice of scenarios draws its
// contract from one of that many canonical contracts (themselves derived
// from the generator seed) instead of sampling fresh, so generated batches
// sweep the cache-affinity axis from fully heterogeneous to fully folded.
//
// Correlated farms: farm_group(n) emits n stations sharing one
// kCorrelatedShock group_seed and shock gap — a heterogeneous farm whose
// owners fail together (adversary/processes.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/batch_runner.h"

namespace nowsched::sim {

/// The workload space a generator samples. Defaults describe a broad mixed
/// domain; narrow it per use (the conformance suite caps lifespans so the
/// O(P·N²) reference solver stays affordable).
struct ScenarioDomain {
  /// Candidate mixes; empty means "all kinds".
  std::vector<PolicyKind> policies;
  std::vector<OwnerKind> owners;

  Ticks min_c = 2;
  Ticks max_c = 64;
  Ticks min_lifespan = 64;
  Ticks max_lifespan = 8192;
  int min_interrupts = 0;
  int max_interrupts = 6;

  /// > 0 enables contract classes: class_fraction of scenarios draw their
  /// (c, U, p) from one of this many canonical contracts instead of fresh.
  std::size_t contract_classes = 0;
  double class_fraction = 0.75;

  /// Stations per farm_group() call (also the implicit group width that
  /// at() uses to assign kCorrelatedShock group seeds: indices i with equal
  /// i / farm_size share a group).
  std::size_t farm_size = 4;

  /// Throws std::invalid_argument on an unsatisfiable domain.
  void validate() const;
};

class ScenarioGenerator {
 public:
  /// Validates the domain up front (throws std::invalid_argument).
  ScenarioGenerator(ScenarioDomain domain, std::uint64_t seed);

  /// The i-th scenario of this (domain, seed) — pure and random-access.
  ScenarioSpec at(std::uint64_t index) const;

  /// at(cursor), advancing the cursor.
  ScenarioSpec next();

  /// The next n scenarios as one batch (cursor advances by n).
  std::vector<ScenarioSpec> batch(std::size_t n);

  /// A correlated farm: `stations` kCorrelatedShock scenarios sharing one
  /// group seed and shock gap, with per-station contracts, policies, and
  /// response probabilities. Cursor advances by `stations`.
  std::vector<ScenarioSpec> farm_group(std::size_t stations);

  const ScenarioDomain& domain() const noexcept { return domain_; }
  std::uint64_t seed() const noexcept { return seed_; }
  std::uint64_t cursor() const noexcept { return cursor_; }

 private:
  ScenarioDomain domain_;
  std::uint64_t seed_;
  std::uint64_t cursor_ = 0;
};

/// Replay-file serialization: a self-contained text record of one scenario
/// ("nowsched-scenario v1" header + key=value lines). Doubles round-trip
/// bit-exactly (max_digits10), so parse(to_replay_string(s)) rebuilds the
/// identical spec. The conformance suite writes failing (minimized)
/// scenarios in this format; `NOWSCHED_REPLAY=<file> conformance_test`
/// re-runs one.
std::string to_replay_string(const ScenarioSpec& spec);

/// Parses a replay record; throws std::invalid_argument naming the first
/// malformed line. Unknown keys are errors (typos must not silently change
/// the scenario being reproduced).
ScenarioSpec scenario_from_replay(const std::string& text);

/// Enum round-trips for the replay format ("dp-optimal", "bursty", ...).
/// Throw std::invalid_argument on unknown names.
PolicyKind policy_kind_from_string(const std::string& name);
OwnerKind owner_kind_from_string(const std::string& name);

}  // namespace nowsched::sim
