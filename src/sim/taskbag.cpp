#include "sim/taskbag.h"

#include <stdexcept>

namespace nowsched::sim {

TaskBag::TaskBag(std::vector<Task> tasks) {
  for (const Task& t : tasks) {
    if (t.duration < 1) throw std::invalid_argument("TaskBag: task duration >= 1");
    pending_work_ += t.duration;
  }
  pending_.assign(tasks.begin(), tasks.end());
}

TaskBag TaskBag::uniform(std::size_t count, Ticks duration) {
  std::vector<Task> tasks(count);
  for (std::size_t i = 0; i < count; ++i) tasks[i] = Task{i, duration};
  return TaskBag(std::move(tasks));
}

TaskBag TaskBag::random(std::size_t count, Ticks min_duration, Ticks max_duration,
                        util::Rng& rng) {
  if (min_duration < 1 || max_duration < min_duration) {
    throw std::invalid_argument("TaskBag::random: bad duration range");
  }
  std::vector<Task> tasks(count);
  for (std::size_t i = 0; i < count; ++i) {
    tasks[i] = Task{i, rng.uniform_int(min_duration, max_duration)};
  }
  return TaskBag(std::move(tasks));
}

std::vector<Task> TaskBag::take_batch(Ticks capacity) {
  std::vector<Task> batch;
  Ticks used = 0;
  while (!pending_.empty() && used + pending_.front().duration <= capacity) {
    batch.push_back(pending_.front());
    used += pending_.front().duration;
    pending_work_ -= pending_.front().duration;
    pending_.pop_front();
  }
  return batch;
}

void TaskBag::return_batch(const std::vector<Task>& batch) {
  // Reinsert preserving original order at the front.
  for (auto it = batch.rbegin(); it != batch.rend(); ++it) {
    pending_.push_front(*it);
    pending_work_ += it->duration;
  }
}

void TaskBag::mark_completed(const std::vector<Task>& batch) {
  completed_count_ += batch.size();
  completed_work_ += batch_work(batch);
}

Ticks TaskBag::batch_work(const std::vector<Task>& batch) noexcept {
  Ticks total = 0;
  for (const Task& t : batch) total += t.duration;
  return total;
}

}  // namespace nowsched::sim
