#include "race/race.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

namespace nowsched::race {

namespace {

std::size_t ceil_log2(std::size_t k) {
  std::size_t rounds = 0;
  std::size_t span = 1;
  while (span < k) {
    span *= 2;
    ++rounds;
  }
  return rounds == 0 ? 1 : rounds;
}

struct Engine {
  const RaceOptions& options;
  const ArmSampler& sampler;
  RaceResult result;

  Engine(std::size_t arms, const RaceOptions& opts, const ArmSampler& sample)
      : options(opts), sampler(sample) {
    result.arms.resize(arms);
  }

  void pull(std::size_t arm, std::size_t count) {
    ArmOutcome& outcome = result.arms[arm];
    const std::vector<double> scores =
        sampler(arm, static_cast<std::uint64_t>(outcome.stats.n), count);
    if (scores.size() != count) {
      throw std::logic_error("race: sampler returned " +
                             std::to_string(scores.size()) + " scores for " +
                             std::to_string(count) + " requested");
    }
    for (double s : scores) {
      if (std::isnan(s) || s < 0.0 || s > options.score_range) {
        throw std::logic_error("race: sampler score " + std::to_string(s) +
                               " outside [0, " +
                               std::to_string(options.score_range) + "]");
      }
      outcome.stats.add(s);
    }
    outcome.batches += 1;
    result.total_pulls += count;
  }

  /// Anytime-δ interval for the arm's CURRENT batch count (valid at every
  /// stopping time; see race/bounds.h).
  Interval interval(std::size_t arm) const {
    const ArmOutcome& outcome = result.arms[arm];
    return confidence_interval(
        outcome.stats, options.score_range,
        anytime_delta(options.delta, result.arms.size(), outcome.batches));
  }

  void refresh_bounds() {
    for (std::size_t a = 0; a < result.arms.size(); ++a) {
      const Interval ci = interval(a);
      result.arms[a].lower = ci.lower;
      result.arms[a].upper = ci.upper;
    }
  }

  /// Empirical leader among `candidates` (highest mean; ties to the lowest
  /// index — every tie-break in the engine is by index, for determinism).
  std::size_t leader(const std::vector<std::size_t>& candidates) const {
    std::size_t best = candidates.front();
    for (std::size_t a : candidates) {
      if (result.arms[a].stats.mean > result.arms[best].stats.mean) best = a;
    }
    return best;
  }

  /// The (δ, ε) stop check shared by kLucb and kUniform: with h the leader,
  /// confident iff lower(h) >= max_{a != h} upper(a) − ε. Returns the
  /// strongest challenger through `challenger`.
  bool separated(std::size_t h, std::size_t* challenger) {
    refresh_bounds();
    std::size_t l = h == 0 ? 1 : 0;
    for (std::size_t a = 0; a < result.arms.size(); ++a) {
      if (a == h) continue;
      if (result.arms[a].upper > result.arms[l].upper) l = a;
    }
    *challenger = l;
    return result.arms[h].lower >= result.arms[l].upper - options.epsilon;
  }

  void run_successive_halving() {
    const std::size_t arms = result.arms.size();
    const std::size_t rounds_total = ceil_log2(arms);
    std::vector<std::size_t> active(arms);
    std::iota(active.begin(), active.end(), 0);

    std::size_t round = 0;
    while (active.size() > 1) {
      ++round;
      const std::size_t per_arm =
          std::max<std::size_t>(1, options.budget / (active.size() * rounds_total));
      for (std::size_t a : active) pull(a, per_arm);

      // Rank survivors: mean descending, ties to the lower index. The kept
      // prefix is ceil(|active|/2); the reversed tail (worst first, ties
      // eliminating the higher index first) is this round's elimination
      // record.
      std::sort(active.begin(), active.end(), [this](std::size_t x, std::size_t y) {
        const double mx = result.arms[x].stats.mean;
        const double my = result.arms[y].stats.mean;
        return mx != my ? mx > my : x < y;
      });
      const std::size_t keep = (active.size() + 1) / 2;
      for (std::size_t i = active.size(); i-- > keep;) {
        result.arms[active[i]].round_eliminated = round;
        result.elimination_order.push_back(active[i]);
      }
      active.resize(keep);
    }
    result.rounds = round;
    result.best = active.front();

    // Post-hoc (δ, ε) assessment with the same anytime-δ intervals.
    std::size_t challenger = 0;
    result.confident = separated(result.best, &challenger);
  }

  void run_adaptive(bool uniform) {
    const std::size_t arms = result.arms.size();
    std::vector<std::size_t> all(arms);
    std::iota(all.begin(), all.end(), 0);

    // Warm-up: every arm gets one batch so means and bounds exist.
    for (std::size_t a = 0; a < arms; ++a) pull(a, options.batch);
    result.rounds = 1;

    for (;;) {
      const std::size_t h = leader(all);
      std::size_t l = 0;
      if (separated(h, &l)) {
        result.best = h;
        result.confident = true;
        return;
      }
      const std::size_t round_cost = (uniform ? arms : 2) * options.batch;
      if (result.total_pulls + round_cost > options.max_total_pulls) {
        result.best = h;  // budget exhausted: report the leader, unconfident
        return;
      }
      if (uniform) {
        for (std::size_t a = 0; a < arms; ++a) pull(a, options.batch);
      } else {
        pull(h, options.batch);
        pull(l, options.batch);
      }
      ++result.rounds;
    }
  }
};

}  // namespace

const char* to_string(Mode mode) {
  switch (mode) {
    case Mode::kSuccessiveHalving: return "successive-halving";
    case Mode::kLucb: return "lucb";
    case Mode::kUniform: return "uniform";
  }
  return "?";
}

void RaceOptions::validate(std::size_t arms) const {
  if (arms < 2) {
    throw std::invalid_argument("race: need at least 2 arms to race");
  }
  if (!(delta > 0.0) || !(delta < 1.0)) {
    throw std::invalid_argument("race: delta must lie in (0, 1)");
  }
  if (epsilon < 0.0) {
    throw std::invalid_argument("race: epsilon must be >= 0");
  }
  if (!(score_range > 0.0)) {
    throw std::invalid_argument("race: score_range must be > 0");
  }
  if (batch == 0) {
    throw std::invalid_argument("race: batch must be >= 1");
  }
  if (mode == Mode::kSuccessiveHalving) {
    if (budget == 0) {
      throw std::invalid_argument("race: successive halving needs budget >= 1");
    }
  } else if (max_total_pulls < arms * batch) {
    throw std::invalid_argument(
        "race: max_total_pulls below the warm-up cost (arms * batch)");
  }
}

RaceResult run_race(std::size_t arms, const RaceOptions& options,
                    const ArmSampler& sampler) {
  options.validate(arms);
  Engine engine(arms, options, sampler);
  if (options.mode == Mode::kSuccessiveHalving) {
    engine.run_successive_halving();
  } else {
    engine.run_adaptive(options.mode == Mode::kUniform);
  }
  engine.refresh_bounds();
  return std::move(engine.result);
}

}  // namespace nowsched::race
