#include "race/regret_hunt.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "race/bounds.h"
#include "solver/policy_eval.h"
#include "util/hash.h"

namespace nowsched::race {

namespace {

constexpr std::uint64_t kHuntTag = 0x4E64E77;

struct ExactValues {
  Ticks dp = 0;         ///< W(p)[U]
  Ticks guideline = 0;  ///< R_π(p, U)
};

ExactValues exact_values(const sim::ScenarioSpec& spec, solver::SolveCache& cache,
                         util::ThreadPool* pool) {
  const auto table = cache.get_or_solve(
      solver::SolveRequest{spec.max_interrupts, spec.lifespan, spec.params}, pool);
  ExactValues values;
  values.dp = table->value(spec.max_interrupts, spec.lifespan);
  if (spec.policy == sim::PolicyKind::kDpOptimal) {
    // R_opt == W is a conformance-pinned identity; skip the evaluation.
    values.guideline = values.dp;
    return values;
  }
  const auto policy = sim::make_policy(spec);
  values.guideline = solver::evaluate_policy(*policy, spec.lifespan,
                                             spec.max_interrupts, spec.params, pool);
  return values;
}

double log_width(Ticks lo, Ticks hi) {
  return std::log(static_cast<double>(hi) / static_cast<double>(lo));
}

/// Geometric midpoint — both split axes are sampled log-uniformly, so this
/// halves the sampling mass, not the linear range.
Ticks geometric_mid(Ticks lo, Ticks hi) {
  const auto mid = static_cast<Ticks>(
      std::floor(std::sqrt(static_cast<double>(lo) * static_cast<double>(hi))));
  return std::min(std::max(mid, lo), hi - 1);
}

}  // namespace

Ticks regret_ticks(const sim::ScenarioSpec& spec, solver::SolveCache& cache,
                   util::ThreadPool* pool) {
  const ExactValues values = exact_values(spec, cache, pool);
  return values.dp - values.guideline;
}

double regret_score(const sim::ScenarioSpec& spec, solver::SolveCache& cache,
                    util::ThreadPool* pool) {
  return static_cast<double>(regret_ticks(spec, cache, pool)) /
         static_cast<double>(spec.lifespan);
}

std::vector<Region> split_region(const Region& region) {
  region.domain.validate();
  Region lo = region;
  Region hi = region;
  lo.name += "/lo";
  hi.name += "/hi";

  const double wl = log_width(region.domain.min_lifespan, region.domain.max_lifespan);
  const double wc = log_width(region.domain.min_c, region.domain.max_c);
  const double wp = log_width(region.domain.min_interrupts + 1,
                              region.domain.max_interrupts + 1);

  // Widest axis wins; ties prefer lifespan, then c, then interrupts — the
  // order regret is most sensitive in.
  if (wl >= wc && wl >= wp && region.domain.min_lifespan < region.domain.max_lifespan) {
    const Ticks mid =
        geometric_mid(region.domain.min_lifespan, region.domain.max_lifespan);
    lo.domain.max_lifespan = mid;
    hi.domain.min_lifespan = mid + 1;
  } else if (wc >= wp && region.domain.min_c < region.domain.max_c) {
    const Ticks mid = geometric_mid(region.domain.min_c, region.domain.max_c);
    lo.domain.max_c = mid;
    hi.domain.min_c = mid + 1;
  } else if (region.domain.min_interrupts < region.domain.max_interrupts) {
    const int mid = (region.domain.min_interrupts + region.domain.max_interrupts) / 2;
    lo.domain.max_interrupts = mid;
    hi.domain.min_interrupts = mid + 1;
  }
  // Point region: both children are copies — the hunt keeps probing it with
  // fresh scenario indices rather than dying.
  return {std::move(lo), std::move(hi)};
}

void RegretHuntOptions::validate() const {
  if (probes_per_region == 0) {
    throw std::invalid_argument("regret hunt: probes_per_region must be >= 1");
  }
  if (rounds == 0) {
    throw std::invalid_argument("regret hunt: rounds must be >= 1");
  }
  if (beam == 0) {
    throw std::invalid_argument("regret hunt: beam must be >= 1");
  }
  if (!(delta > 0.0) || !(delta < 1.0)) {
    throw std::invalid_argument("regret hunt: delta must lie in (0, 1)");
  }
}

RegretHuntResult hunt_regret(const Region& root,
                             const std::vector<sim::PolicyKind>& policies,
                             const RegretHuntOptions& options,
                             solver::SolveCache& cache, util::ThreadPool* pool) {
  options.validate();
  root.domain.validate();
  if (policies.empty()) {
    throw std::invalid_argument("regret hunt: need at least one policy");
  }
  for (sim::PolicyKind policy : policies) {
    if (policy == sim::PolicyKind::kDpOptimal) {
      throw std::invalid_argument(
          "regret hunt: dp-optimal has regret 0 by definition; hunt guideline "
          "policies");
    }
  }

  RegretHuntResult result;
  struct FrontierRegion {
    Region region;
    std::uint64_t id = 0;  ///< creation-order id: the probe-stream seed root
  };
  std::uint64_t next_id = 0;
  std::vector<FrontierRegion> frontier;
  frontier.push_back({root, next_id++});

  for (std::size_t round = 1; round <= options.rounds; ++round) {
    std::vector<RegionRegret> probed;
    for (const FrontierRegion& fr : frontier) {
      // Matched design (see policy_race.h): one probe stream per REGION, the
      // policy forced via a one-element mix — every policy faces the same
      // contracts, so mean-regret differences are policy effects.
      const std::uint64_t region_seed = util::hash_combine(
          util::hash_combine(kHuntTag, options.seed), fr.id);
      for (sim::PolicyKind policy : policies) {
        sim::ScenarioDomain domain = fr.region.domain;
        domain.policies = {policy};
        const sim::ScenarioGenerator gen(std::move(domain), region_seed);

        RegionRegret rr;
        rr.region = fr.region;
        rr.policy = policy;
        rr.round = round;
        util::Welford dp_score, guideline_score;
        double worst = -1.0;
        for (std::size_t i = 0; i < options.probes_per_region; ++i) {
          const sim::ScenarioSpec spec = gen.at(i);
          const ExactValues values = exact_values(spec, cache, pool);
          const double u = static_cast<double>(spec.lifespan);
          const double regret =
              static_cast<double>(values.dp - values.guideline) / u;
          rr.regret.add(regret);
          dp_score.add(static_cast<double>(values.dp) / u);
          guideline_score.add(static_cast<double>(values.guideline) / u);
          if (regret > worst) {
            worst = regret;
            rr.worst = spec;
          }
        }
        rr.worst_regret = worst;
        rr.mean_dp = dp_score.mean;
        rr.mean_guideline = guideline_score.mean;
        result.scenarios_evaluated += options.probes_per_region;
        probed.push_back(std::move(rr));
      }
    }

    // Rank this round's pairs: mean regret descending, deterministic ties.
    std::sort(probed.begin(), probed.end(),
              [](const RegionRegret& x, const RegionRegret& y) {
                if (x.regret.mean != y.regret.mean) {
                  return x.regret.mean > y.regret.mean;
                }
                if (x.region.name != y.region.name) {
                  return x.region.name < y.region.name;
                }
                return static_cast<int>(x.policy) < static_cast<int>(y.policy);
              });

    // Descend: split the distinct regions of the top-`beam` pairs.
    if (round < options.rounds) {
      std::vector<FrontierRegion> next;
      for (std::size_t i = 0; i < probed.size() && i < options.beam; ++i) {
        const std::string& name = probed[i].region.name;
        const bool seen =
            std::any_of(next.begin(), next.end(), [&](const FrontierRegion& fr) {
              // Children carry the parent name as a prefix "<name>/".
              return fr.region.name.compare(0, name.size() + 1, name + "/") == 0;
            });
        if (seen) continue;
        for (Region& child : split_region(probed[i].region)) {
          next.push_back({std::move(child), next_id++});
        }
      }
      frontier = std::move(next);
    }

    for (RegionRegret& rr : probed) result.ranked.push_back(std::move(rr));
  }

  // Global ranking and the worst-region verdicts.
  std::sort(result.ranked.begin(), result.ranked.end(),
            [](const RegionRegret& x, const RegionRegret& y) {
              if (x.regret.mean != y.regret.mean) {
                return x.regret.mean > y.regret.mean;
              }
              if (x.round != y.round) return x.round < y.round;
              if (x.region.name != y.region.name) {
                return x.region.name < y.region.name;
              }
              return static_cast<int>(x.policy) < static_cast<int>(y.policy);
            });
  for (std::size_t i = 0; i < result.ranked.size() && i < options.beam; ++i) {
    const RegionRegret& rr = result.ranked[i];
    const double radius = confidence_radius(rr.regret, 1.0, options.delta);
    VerdictRecord v;
    v.kind = "regret";
    v.policy_a = sim::to_string(sim::PolicyKind::kDpOptimal);
    v.region_a = rr.region.name;
    v.policy_b = sim::to_string(rr.policy);
    v.region_b = rr.region.name;
    v.mean_a = rr.mean_dp;
    v.mean_b = rr.mean_guideline;
    v.gap_mean = rr.regret.mean;
    v.gap_lower = std::max(0.0, rr.regret.mean - radius);
    v.gap_upper = std::min(1.0, rr.regret.mean + radius);
    v.delta = options.delta;
    v.epsilon = 0.0;
    v.pulls_a = static_cast<std::uint64_t>(rr.regret.n);
    v.pulls_b = static_cast<std::uint64_t>(rr.regret.n);
    v.confident = rr.regret.mean - radius > 0.0;
    result.verdicts.push_back(std::move(v));
  }
  return result;
}

}  // namespace nowsched::race
