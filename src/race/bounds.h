// Confidence bounds for the policy-racing layer (DESIGN.md §9).
//
// Every bound here is a finite-sample, distribution-free deviation bound for
// i.i.d. samples in a KNOWN range [0, range]:
//
//   * Hoeffding          |x̄ − μ| <= range · sqrt( ln(2/δ) / (2n) )
//   * empirical Bernstein (Maurer & Pontil 2009; Audibert et al. 2009)
//                        |x̄ − μ| <= sqrt( 2·V̂·ln(3/δ) / n )
//                                   + 3·range·ln(3/δ) / n
//     where V̂ is the UNBIASED sample variance — tight when the arm's score
//     variance is far below the worst case range²/4, which is exactly the
//     low-variance regime the regret hunt lives in.
//
// confidence_radius charges δ/2 to each and takes the min, so the combined
// radius still holds with probability >= 1 − δ (union bound): low-variance
// arms get the Bernstein rate, tiny-n arms fall back to Hoeffding (whose
// radius has no 1/n slack term).
//
// anytime_delta is the δ schedule that makes the bounds valid at EVERY
// stopping time of an adaptive race: charging δ/(arms · t·(t+1)) to the t-th
// confidence evaluation of an arm telescopes (Σ_t 1/(t(t+1)) = 1) to δ/arms
// per arm, and to δ over all arms — so "stop when the leader's lower bound
// clears every challenger's upper bound" mis-identifies with probability at
// most δ no matter when the race stops. The derivation is written out in
// DESIGN.md §9 and pinned numerically by tests/race_bounds_test.cpp.
#pragma once

#include <cstddef>

#include "util/welford.h"

namespace nowsched::race {

/// Hoeffding deviation radius at confidence 1 − δ. n == 0 yields +infinity
/// (no data, no bound). Throws std::invalid_argument unless range > 0 and
/// 0 < δ < 1.
double hoeffding_radius(std::size_t n, double range, double delta);

/// Empirical-Bernstein deviation radius at confidence 1 − δ, using the
/// unbiased sample variance. Same domain contract as hoeffding_radius.
double empirical_bernstein_radius(std::size_t n, double sample_variance,
                                  double range, double delta);

/// min( Hoeffding(δ/2), empirical-Bernstein(δ/2) ) — valid at 1 − δ.
double confidence_radius(const util::Welford& stats, double range, double delta);

/// The anytime δ schedule: δ / (arms · t · (t+1)) for the t-th (1-based)
/// confidence evaluation of one of `arms` arms. Union-bounds to δ across
/// all arms and all stopping times. Throws on arms == 0, t == 0, or δ
/// outside (0, 1).
double anytime_delta(double delta, std::size_t arms, std::size_t batch_index);

/// A two-sided confidence interval for an arm mean, clamped into the score
/// range [0, range] (scores live there by contract, so clamping only
/// tightens). n == 0 yields the vacuous [0, range].
struct Interval {
  double lower = 0.0;
  double upper = 0.0;
};
Interval confidence_interval(const util::Welford& stats, double range, double delta);

}  // namespace nowsched::race
